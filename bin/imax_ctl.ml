(* imax_ctl: command-line driver for the iMAX-432 simulator.

   Subcommands boot a configured system, run a canned scenario, and print
   the run report and subsystem statistics.  This is the OEM's "selection
   of packages" knob surfaced as flags: processors, memory manager,
   scheduling policy, and the GC daemon are all chosen at boot. *)

open Cmdliner
open I432
open Imax
module K = I432_kernel
module U = I432_util
module Obs = I432_obs
module Fi = I432_fi.Fi
module Net = I432_net
module St = I432_store.Store
module Load = I432_load
module Ckpt = I432_store.Checkpoint

(* ---------------- exit codes ----------------

   Every scenario failure — a wrong payload sum, a violated invariant, a
   determinism or restore check that does not hold — exits through [die]:
   message on stderr, exit code 1.  Cmdliner keeps its own codes for bad
   invocations (124) and internal errors (125), so scripts can tell a
   failed check from a mistyped flag. *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

(* ---------------- shared flags ---------------- *)

let processors =
  let doc = "Number of general data processors." in
  Arg.(value & opt int 2 & info [ "p"; "processors" ] ~docv:"N" ~doc)

let memory_manager =
  let doc =
    "Memory manager: non-swapping, swapping-lru, swapping-fifo, \
     swapping-clock or swapping-level."
  in
  let choices =
    Arg.enum
      [
        ("non-swapping", System.Non_swapping);
        ("swapping-lru", System.Swapping_lru);
        ("swapping-fifo", System.Swapping_fifo);
        ("swapping-clock", System.Swapping_clock);
        ("swapping-level", System.Swapping_level);
      ]
  in
  Arg.(value & opt choices System.Non_swapping & info [ "memory-manager" ] ~doc)

let scheduling =
  let doc = "Scheduling policy: null, round-robin or fair-share." in
  let choices =
    Arg.enum
      [
        ("null", Scheduler.Null);
        ("round-robin", Scheduler.Round_robin);
        ("fair-share", Scheduler.Fair_share);
      ]
  in
  Arg.(value & opt choices Scheduler.Null & info [ "scheduling" ] ~doc)

let gc_daemon =
  let doc = "Run the on-the-fly garbage collector daemon." in
  Arg.(value & flag & info [ "gc" ] ~doc)

let snapshot =
  let doc = "Print a machine snapshot (processes, processors, ports) at exit." in
  Arg.(value & flag & info [ "snapshot" ] ~doc)

let maybe_snapshot snapshot machine =
  if snapshot then
    print_string (K.Snapshot.render (K.Snapshot.capture machine))

let config processors memory_manager scheduling gc_daemon =
  {
    System.default_config with
    System.processors;
    memory_manager;
    scheduling;
    run_gc_daemon = gc_daemon;
  }

let config_term =
  Term.(const config $ processors $ memory_manager $ scheduling $ gc_daemon)

(* The same flag means the same thing in every subcommand: trace, chaos,
   net, store, and checkpoint all build --seed/--chrome/--check from these
   three constructors instead of redeclaring them. *)

let seed_arg ~default ~doc =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"N" ~doc)

let chrome_arg ~doc =
  Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"PATH" ~doc)

let check_arg ~doc = Arg.(value & flag & info [ "check" ] ~doc)

let par_arg ~doc = Arg.(value & opt int 1 & info [ "par" ] ~docv:"N" ~doc)

(* Map --par N to a cluster engine, bounds-checked against the host: more
   domains than the OCaml runtime recommends only adds contention, and a
   result under oversubscription would be a meaningless speedup number. *)
let engine_of_par par =
  let limit = Stdlib.Domain.recommended_domain_count () in
  if par < 1 then die "--par %d: need at least one domain" par;
  if par > limit then
    die "--par %d: this host recommends at most %d domain(s)" par limit;
  if par = 1 then Net.Cluster.Seq else Net.Cluster.Par par

let print_report (r : K.Machine.run_report) =
  Printf.printf "elapsed: %.3f ms (virtual, 8 MHz)\n"
    (float_of_int r.K.Machine.elapsed_ns /. 1e6);
  Printf.printf "processes completed: %d, faulted: %d, dispatches: %d, preemptions: %d\n"
    r.K.Machine.completed r.K.Machine.faulted r.K.Machine.dispatches
    r.K.Machine.preemptions;
  match r.K.Machine.deadlocked with
  | [] -> ()
  | names -> Printf.printf "still blocked: %s\n" (String.concat ", " names)

(* ---------------- scenarios ---------------- *)

(* Producer/consumer rings through bounded ports. *)
let scenario_pipeline config snapshot stages messages =
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let ports =
    Array.init stages (fun _ -> Untyped_ports.create_port m ~message_count:8 ())
  in
  ignore
    (Process_manager.create_process pm ~name:"source" (fun () ->
         for i = 1 to messages do
           let o = K.Machine.allocate_generic m ~data_length:8 () in
           K.Machine.write_word m o ~offset:0 i;
           Untyped_ports.send m ~prt:ports.(0) ~msg:o
         done));
  for s = 1 to stages - 1 do
    ignore
      (Process_manager.create_process pm ~name:(Printf.sprintf "stage%d" s)
         (fun () ->
           for _ = 1 to messages do
             let msg = Untyped_ports.receive m ~prt:ports.(s - 1) in
             K.Machine.compute m 5;
             Untyped_ports.send m ~prt:ports.(s) ~msg
           done))
  done;
  let sum = ref 0 in
  ignore
    (Process_manager.create_process pm ~name:"sink" (fun () ->
         for _ = 1 to messages do
           let msg = Untyped_ports.receive m ~prt:ports.(stages - 1) in
           sum := !sum + K.Machine.read_word m msg ~offset:0
         done));
  let report = System.run sys in
  Printf.printf "pipeline: %d messages through %d stages, payload sum %d\n"
    messages stages !sum;
  print_report report;
  maybe_snapshot snapshot m;
  if !sum <> messages * (messages + 1) / 2 then
    die "pipeline: payload sum %d, expected %d" !sum
      (messages * (messages + 1) / 2)

(* Allocation churn with or without the GC daemon. *)
let scenario_churn config snapshot rounds =
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let table = K.Machine.table m in
  ignore
    (Process_manager.create_process pm ~name:"churner" (fun () ->
         let root = K.Machine.allocate_generic m ~access_length:8 () in
         K.Machine.add_root m root;
         for _ = 1 to rounds do
           for i = 0 to 7 do
             let o = K.Machine.allocate_generic m ~data_length:64 () in
             Segment.store_access table root ~slot:i (Some o)
           done;
           for i = 0 to 7 do
             Segment.store_access table root ~slot:i None
           done;
           K.Machine.yield m
         done));
  let report = System.run sys in
  Printf.printf "churn: %d rounds (%d objects allocated)\n" rounds (rounds * 8);
  Printf.printf "descriptors live at halt: %d\n" (Object_table.count_valid table);
  (match System.collector sys with
  | Some c ->
    let st = I432_gc.Collector.stats c in
    Printf.printf "gc: %d cycles, %d reclaimed\n" st.I432_gc.Collector.cycles
      st.I432_gc.Collector.swept
  | None -> print_endline "gc: daemon not configured");
  print_report report;
  maybe_snapshot snapshot m

(* The tape farm recovery story end to end. *)
let scenario_tapes config snapshot drives =
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let farm = Device_io.create_tape_farm m ~drives in
  for i = 1 to drives do
    ignore
      (Process_manager.create_process pm ~name:(Printf.sprintf "client%d" i)
         (fun () ->
           match Device_io.acquire_drive farm with
           | Some h ->
             let (module T) = Device_io.device_of farm h in
             T.write (Printf.sprintf "dataset-%d" i)
           | None -> ()))
  done;
  let _ = System.run sys in
  Printf.printf "drives free after careless clients: %d/%d\n"
    (Device_io.free_drive_count farm)
    drives;
  let collector = I432_gc.Collector.create m in
  ignore
    (Process_manager.create_process pm ~name:"recovery" (fun () ->
         ignore (I432_gc.Collector.cycle collector);
         ignore (Device_io.recover_lost_drives farm)));
  let report = System.run sys in
  Printf.printf "drives free after recovery: %d/%d\n"
    (Device_io.free_drive_count farm)
    drives;
  print_report report;
  maybe_snapshot snapshot m

(* Rendezvous demo: an adder task serving entry calls. *)
let scenario_rendezvous config snapshot calls =
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let adder_entry = Ada_tasks.create_entry m ~name:"add_one" () in
  ignore
    (Ada_tasks.create_task m ~name:"adder" (fun () ->
         for _ = 1 to calls do
           Ada_tasks.accept adder_entry ~body:(fun parameter ->
               let v = K.Machine.read_word m parameter ~offset:0 in
               K.Machine.write_word m parameter ~offset:0 (v + 1);
               parameter)
         done));
  let final = ref 0 in
  ignore
    (Ada_tasks.create_task m ~name:"caller" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.write_word m x ~offset:0 0;
         for _ = 1 to calls do
           ignore (Ada_tasks.call adder_entry ~parameter:x)
         done;
         final := K.Machine.read_word m x ~offset:0));
  let report = System.run sys in
  Printf.printf "rendezvous: %d entry calls, final value %d\n" calls !final;
  print_report report;
  maybe_snapshot snapshot m;
  if !final <> calls then
    die "rendezvous: final value %d, expected %d" !final calls

(* Print-spooler workload: clients submit jobs to a spool port, a spooler
   daemon forwards them to a slow printer behind a shallow port (so senders
   block), clients sleep between submissions.  Exercises every traced seam:
   spawn/dispatch/preempt, send/receive/block, sleep/wake, allocation. *)
let run_spooler ~config ~clients ~jobs =
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let spool = Untyped_ports.create_port m ~message_count:8 () in
  let printer = Untyped_ports.create_port m ~message_count:2 () in
  let total = clients * jobs in
  let printed = ref 0 in
  let sum = ref 0 in
  ignore
    (Process_manager.create_process pm ~name:"spooler" (fun () ->
         for _ = 1 to total do
           let job = Untyped_ports.receive m ~prt:spool in
           K.Machine.compute m 2;
           Untyped_ports.send m ~prt:printer ~msg:job
         done));
  ignore
    (Process_manager.create_process pm ~name:"printer" (fun () ->
         for _ = 1 to total do
           let job = Untyped_ports.receive m ~prt:printer in
           K.Machine.compute m 10;
           printed := !printed + 1;
           sum := !sum + K.Machine.read_word m job ~offset:0
         done));
  for c = 1 to clients do
    ignore
      (Process_manager.create_process pm ~name:(Printf.sprintf "client%d" c)
         (fun () ->
           for j = 1 to jobs do
             let job = K.Machine.allocate_generic m ~data_length:16 () in
             K.Machine.write_word m job ~offset:0 ((c * 100) + j);
             Untyped_ports.send m ~prt:spool ~msg:job;
             K.Machine.delay m ~ns:50_000
           done))
  done;
  (* A low-priority batch job whose compute bursts outrun the hardware time
     slice, so the trace also shows involuntary preemption. *)
  ignore
    (Process_manager.create_process pm ~name:"batch" ~priority:4 (fun () ->
         for _ = 1 to 2 do
           K.Machine.compute m 12_000
         done));
  let report = System.run sys in
  (m, report, !printed, !sum)

let scenario_trace config snapshot clients jobs chrome_out dump legacy =
  let config =
    {
      config with
      System.trace_level =
        (if legacy then Obs.Tracer.Events_and_legacy_lines
         else Obs.Tracer.Events);
    }
  in
  let m, report, printed, _sum = run_spooler ~config ~clients ~jobs in
  let tracer = K.Machine.tracer m in
  Printf.printf "spooler: %d clients x %d jobs, %d printed\n" clients jobs
    printed;
  Printf.printf "trace: %d events emitted, %d retained, %d dropped\n"
    (Obs.Tracer.emitted tracer)
    (Obs.Tracer.retained tracer)
    (Obs.Tracer.dropped tracer);
  print_report report;
  if dump then
    List.iter
      (fun e -> print_endline (Obs.Event.to_string e))
      (K.Machine.events m);
  if legacy then List.iter print_endline (K.Machine.trace_lines m);
  (match chrome_out with
  | Some path ->
    let json =
      Obs.Export.chrome_trace
        ~processors:(K.Machine.processor_count m)
        (K.Machine.events m)
    in
    Obs.Jout.write_file ~path json;
    Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  maybe_snapshot snapshot m

let scenario_metrics config snapshot clients jobs json_out =
  let config = { config with System.trace_level = Obs.Tracer.Events } in
  let m, report, printed, _sum = run_spooler ~config ~clients ~jobs in
  Printf.printf "spooler: %d clients x %d jobs, %d printed\n" clients jobs
    printed;
  print_report report;
  print_string (Obs.Metrics.render (K.Machine.metrics m));
  (match json_out with
  | Some path ->
    Obs.Jout.write_file ~path (Obs.Metrics.to_json (K.Machine.metrics m));
    Printf.printf "metrics written to %s\n" path
  | None -> ());
  maybe_snapshot snapshot m

(* Chaos: the spooler workload hardened with timed operations, bounded
   allocation retry, and supervised producers — run under a seeded fault
   plan.  One processor hard-fault mid-run is the default; the system must
   degrade to N-1 processors and still drain every surviving job. *)
let run_chaos ~config ~seed ~clients ~jobs ~faults =
  let config = { config with System.trace_level = Obs.Tracer.Events } in
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let spool = Untyped_ports.create_port m ~message_count:8 () in
  let printer = Untyped_ports.create_port m ~message_count:2 () in
  let horizon_ns = max 300_000 (jobs * 50_000) in
  let plan =
    Fi.random ~seed ~horizon_ns ~processors:config.System.processors
      ~count:4 ~cpu_faults:faults
  in
  Fi.arm m plan;
  let printed = ref 0 in
  let dropped = ref 0 in
  (* Stages drain until quiet rather than counting to a fixed total:
     faulted producers may send fewer jobs, restarted ones more. *)
  ignore
    (Process_manager.create_process pm ~name:"spooler" (fun () ->
         let quiet = ref 0 in
         while !quiet < 3 do
           match K.Machine.receive_timeout m ~port:spool ~timeout_ns:200_000 with
           | Some job ->
             quiet := 0;
             K.Machine.compute m 2;
             if
               not
                 (K.Machine.send_timeout m ~port:printer ~msg:job
                    ~timeout_ns:200_000)
             then incr dropped
           | None -> incr quiet
         done));
  ignore
    (Process_manager.create_process pm ~name:"printer" (fun () ->
         let quiet = ref 0 in
         while !quiet < 3 do
           match
             K.Machine.receive_timeout m ~port:printer ~timeout_ns:200_000
           with
           | Some job ->
             quiet := 0;
             K.Machine.compute m 10;
             ignore (K.Machine.read_word m job ~offset:0);
             incr printed
           | None -> incr quiet
         done));
  for c = 1 to clients do
    ignore
      (Process_manager.create_supervised pm
         ~name:(Printf.sprintf "prod%d" c)
         (fun () ->
           for j = 1 to jobs do
             let job =
               K.Machine.allocate_retry m (K.Machine.global_sro m)
                 ~data_length:16 ~access_length:4 ~otype:Obj_type.Generic ()
             in
             K.Machine.write_word m job ~offset:0 ((c * 100) + j);
             if not (K.Machine.send_timeout m ~port:spool ~msg:job
                       ~timeout_ns:300_000)
             then incr dropped;
             K.Machine.delay m ~ns:30_000
           done))
  done;
  let report = System.run sys in
  (m, plan, report, !printed, !dropped)

let chaos_event_kind (k : Obs.Event.kind) =
  match k with
  | Obs.Event.Fi_inject | Obs.Event.Cpu_offline | Obs.Event.Proc_requeued
  | Obs.Event.Alloc_retry | Obs.Event.Timeout_fired | Obs.Event.Proc_restarted
  | Obs.Event.Fault ->
    true
  | _ -> false

let scenario_chaos config snapshot seed clients jobs faults chrome_out check =
  let run () = run_chaos ~config ~seed ~clients ~jobs ~faults in
  let m, plan, report, printed, dropped = run () in
  print_string (Fi.to_string plan);
  Printf.printf "chaos: %d clients x %d jobs, %d printed, %d dropped\n" clients
    jobs printed dropped;
  Printf.printf "processors online at halt: %d/%d\n"
    (K.Machine.online_processors m)
    (K.Machine.processor_count m);
  print_endline "recovery log:";
  List.iter
    (fun (e : Obs.Event.t) ->
      if chaos_event_kind e.Obs.Event.kind then
        Printf.printf "  %s\n" (Obs.Event.to_string e))
    (K.Machine.events m);
  print_report report;
  (match Fi.check_invariants m with
  | [] -> print_endline "invariants: ok"
  | violations ->
    print_endline "invariants VIOLATED:";
    List.iter (Printf.printf "  %s\n") violations;
    die "chaos: %d invariant violations" (List.length violations));
  (match chrome_out with
  | Some path ->
    let json =
      Obs.Export.chrome_trace
        ~processors:(K.Machine.processor_count m)
        (K.Machine.events m)
    in
    Obs.Jout.write_file ~path json;
    Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  maybe_snapshot snapshot m;
  if check then begin
    (* Same seed, fresh machine: the event streams must be identical. *)
    let m2, _, _, printed2, dropped2 = run () in
    let stream mach =
      List.map Obs.Event.to_string (K.Machine.events mach)
    in
    if stream m <> stream m2 || printed <> printed2 || dropped <> dropped2
    then die "determinism check FAILED: event streams differ"
    else print_endline "determinism check: identical event streams"
  end

(* Scratch files (checkpoint journals, store demos) default under
   _build/imax-scratch so repeated runs never litter the source tree. *)
let rec mkdir_p dir =
  if not (dir = "" || dir = "." || dir = "/" || Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let scratch_path name =
  Filename.concat (Filename.concat "_build" "imax-scratch") name

let fresh_journal path =
  mkdir_p (Filename.dirname path);
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".tmp" ]

(* Net: the spooler split across an N-node star cluster joined by the
   virtual interconnect, optionally under a seeded link-fault plan.
   Nodes 0..N-2 each run [clients] users sending composite jobs through
   an imported surrogate port; node N-1 (the printshop) owns the real
   queue.  The printer drains until quiet so a plan hostile enough to
   lose frames still halts cleanly.

   [kill = Some (name, kill_ns, restart_at)] stages the whole-node
   failure story: run to the round boundary at or below [kill_ns],
   checkpoint every node into a scratch journal, then arm a node-fault
   plan that kills [name] at [kill_ns] and (when [restart_at] is set)
   splices a checkpoint replay back in at the restart instant.  The
   boot closure rebuilds the identical scenario, which is what makes
   the replay — and therefore the rejoin — deterministic. *)
let run_net ~processors ~nodes ~engine ~seed ~clients ~jobs ~link_faults
    ~partitions ~latency ~kill =
  let quantum_ns = 200_000 in
  let boot () =
    let cluster = Net.Cluster.create ~default_latency_ns:latency () in
    let config =
      {
        K.Machine.default_config with
        K.Machine.processors;
        trace_level = Obs.Tracer.Events;
      }
    in
    let client_nodes =
      Array.init (nodes - 1) (fun i ->
          Net.Cluster.boot_node cluster
            ~name:
              (if nodes = 2 then "clients"
               else Printf.sprintf "clients%d" (i + 1))
            ~config ())
    in
    let node_b, mb =
      Net.Cluster.boot_node cluster ~name:"printshop" ~config ()
    in
    Array.iter
      (fun (id, _) -> ignore (Net.Cluster.connect cluster id node_b))
      client_nodes;
    let plan =
      if link_faults > 0 || partitions > 0 then begin
        let horizon_ns = max 2_000_000 (clients * jobs * 300_000) in
        let p =
          Fi.random_links ~seed ~horizon_ns ~links:(nodes - 1)
            ~count:link_faults ~partitions
        in
        Net.Cluster.arm_links cluster p;
        Some p
      end
      else None
    in
    let queue =
      K.Machine.create_port mb ~capacity:8 ~discipline:K.Port.Fifo ()
    in
    Net.Remote_port.export cluster ~node:node_b ~name:"printer"
      ~mask:Rights.read_only queue;
    let printed = ref [] in
    ignore
      (K.Machine.spawn mb ~name:"printer" (fun () ->
           let quiet = ref 0 in
           while !quiet < 3 do
             match
               K.Machine.receive_timeout mb ~port:queue ~timeout_ns:2_000_000
             with
             | Some job ->
               quiet := 0;
               let owner = K.Machine.read_word mb job ~offset:0 in
               let seq = K.Machine.read_word mb job ~offset:4 in
               K.Machine.compute mb 25;
               printed := (owner, seq) :: !printed
             | None -> incr quiet
           done));
    Array.iteri
      (fun i (id, ma) ->
        let surrogate =
          Net.Remote_port.import cluster ~node:id ~name:"printer"
        in
        for u = 1 to clients do
          (* Users are numbered globally so every job's owner field is
             unique cluster-wide (and unchanged in the 2-node case). *)
          let u = (i * clients) + u in
          ignore
            (K.Machine.spawn ma
               ~name:(Printf.sprintf "user%d" u)
               (fun () ->
                 for j = 1 to jobs do
                   let job =
                     K.Machine.allocate_generic ma ~data_length:16 ()
                   in
                   K.Machine.write_word ma job ~offset:0 u;
                   K.Machine.write_word ma job ~offset:4 j;
                   K.Machine.compute ma 10;
                   K.Machine.send ma ~port:surrogate ~msg:job;
                   (* Spread traffic across the fault plan's horizon so armed
                      link faults actually meet frames in flight. *)
                   K.Machine.delay ma ~ns:400_000
                 done))
        done)
      client_nodes;
    (cluster, plan, printed)
  in
  let cluster, plan, printed = boot () in
  let staged =
    match kill with
    | None -> None
    | Some (victim_name, kill_ns, restart_at) ->
      let victim =
        let rec find i =
          if i >= nodes then
            die "--kill-node %s: no such node (try --topology)" victim_name
          else if String.equal (Net.Cluster.node_name cluster i) victim_name
          then i
          else find (i + 1)
        in
        find 0
      in
      if kill_ns < quantum_ns then
        die "--kill-node %s@%d: kill instant must be at least one %d ns round"
          victim_name kill_ns quantum_ns;
      (match restart_at with
      | Some at when at <= kill_ns ->
        die "--restart-at %d: must come after the kill at %d ns" at kill_ns
      | _ -> ());
      (* Phase A: advance to the last round boundary at or below the kill
         instant and file every node's image.  The rejoin replays from
         this checkpoint; work the victim did inside the final partial
         round is rolled back and re-done after the restart (the
         at-least-once seam DESIGN.md documents). *)
      let r1 =
        Net.Cluster.run cluster ~engine ~quantum_ns
          ~max_rounds:(kill_ns / quantum_ns) ()
      in
      let path = scratch_path "imax_net_ckpt.journal" in
      fresh_journal path;
      let store = St.open_ path in
      ignore
        (Ckpt.save_cluster store ~key:"net" ~rounds:r1.Net.Cluster.rounds
           ~quantum_ns cluster);
      let events =
        { Fi.n_at_ns = kill_ns; n_node = victim; n_act = Fi.N_kill }
        ::
        (match restart_at with
        | Some at ->
          [ { Fi.n_at_ns = at; n_node = victim; n_act = Fi.N_restart } ]
        | None -> [])
      in
      let nplan = { Fi.n_seed = seed; n_events = events } in
      Net.Cluster.arm_nodes cluster
        ~restore:(fun ~node ~at_ns:_ ->
          Ckpt.restore_node store ~key:"net" ~node
            ~boot:(fun () ->
              let c, _, _ = boot () in
              c))
        nplan;
      Some (store, nplan, victim)
  in
  (* Counters and the round/horizon clock are cumulative across resumed
     runs, so this report covers phase A too. *)
  let report = Net.Cluster.run cluster ~engine ~quantum_ns () in
  let nplan =
    match staged with
    | None -> None
    | Some (store, nplan, victim) ->
      St.close store;
      Some (nplan, victim)
  in
  (* Re-fetch from the cluster: a restarted node's machine record was
     replaced by the checkpoint replay mid-run. *)
  let machines = Array.init nodes (Net.Cluster.machine cluster) in
  (cluster, plan, nplan, report, List.rev !printed, machines)

let scenario_net config nodes par seed clients jobs link_faults partitions
    latency kill_spec restart_at topology chrome_out check =
  let processors = config.System.processors in
  if nodes < 2 then die "--nodes %d: a cluster needs at least 2 nodes" nodes;
  let kill =
    match (kill_spec, restart_at) with
    | None, None -> None
    | None, Some _ -> die "--restart-at: requires --kill-node"
    | Some spec, restart_at -> (
      match String.rindex_opt spec '@' with
      | None -> die "--kill-node %s: expected NAME@NS" spec
      | Some i ->
        let name = String.sub spec 0 i in
        let at =
          String.sub spec (i + 1) (String.length spec - i - 1)
        in
        (match int_of_string_opt at with
        | Some at when at > 0 -> Some (name, at, restart_at)
        | _ -> die "--kill-node %s: expected NAME@NS with NS > 0" spec))
  in
  let engine = engine_of_par par in
  let run ~engine () =
    run_net ~processors ~nodes ~engine ~seed ~clients ~jobs ~link_faults
      ~partitions ~latency ~kill
  in
  let cluster, plan, nplan, report, printed, machines = run ~engine () in
  (match plan with
  | Some p -> print_string (Fi.link_plan_to_string p)
  | None -> ());
  (match nplan with
  | Some (p, _) -> print_string (Fi.node_plan_to_string p)
  | None -> ());
  Printf.printf "net: %d clients x %d jobs across %d nodes, %d printed\n"
    ((nodes - 1) * clients) jobs nodes (List.length printed);
  print_string (Net.Cluster.report_to_string report);
  (match nplan with
  | Some (_, victim) ->
    (* A node-failure run must terminate cleanly: every remote send either
       delivered or dead-lettered; nothing may still hang in the
       interconnect at halt. *)
    if
      Net.Cluster.frames_in_flight cluster <> 0
      || Net.Cluster.total_unacked cluster <> 0
      || Net.Cluster.total_backlog cluster <> 0
    then die "net --kill-node: frames still pending at halt";
    Array.iteri
      (fun i m ->
        if Net.Cluster.node_alive cluster i then
          match Fi.check_invariants m with
          | [] -> ()
          | violations ->
            List.iter (Printf.printf "  %s\n") violations;
            die "net --kill-node: node %S violates %d invariant(s)"
              (Net.Cluster.node_name cluster i)
              (List.length violations))
      machines;
    if Net.Cluster.node_alive cluster victim then
      Printf.printf
        "rejoin: node %S restored from its checkpoint and re-homed (name \
         service at epoch %d)\n"
        (Net.Cluster.node_name cluster victim)
        (Net.Name_service.epoch (Net.Cluster.name_service cluster))
    else
      Printf.printf "node %S still down at halt (no --restart-at)\n"
        (Net.Cluster.node_name cluster victim)
  | None -> ());
  if topology then print_string (Net.Cluster.topology cluster);
  (match chrome_out with
  | Some path ->
    Obs.Jout.write_file ~path (Net.Cluster.chrome_trace cluster);
    Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  if check then begin
    (* Loud-loss gate: with no fault plan of any kind armed, a lost frame
       means the ARQ gave up on a healthy fabric — always a bug. *)
    if
      report.Net.Cluster.frames_lost > 0
      && Option.is_none plan && Option.is_none nplan
    then
      die "net --check: %d frame(s) lost with no fault plan armed"
        report.Net.Cluster.frames_lost;
    (* Same seed, fresh cluster, SEQUENTIAL engine: printed output and
       every node's event stream must be identical.  With --par this is
       the cross-engine gate — a parallel run proven byte-identical to
       the sequential one.  A --kill-node run re-stages the whole
       checkpoint/kill/rejoin sequence. *)
    let _, _, _, report2, printed2, machines2 =
      run ~engine:Net.Cluster.Seq ()
    in
    let stream m = List.map Obs.Event.to_string (K.Machine.events m) in
    let streams ms = Array.to_list (Array.map stream ms) in
    if
      printed <> printed2 || report <> report2
      || streams machines <> streams machines2
    then die "determinism check FAILED: runs differ"
    else if engine = Net.Cluster.Seq then
      print_endline "determinism check: identical event streams on all nodes"
    else
      Printf.printf
        "determinism check: %d-domain run identical to sequential on all \
         nodes\n"
        par
  end

(* Store: file composite graphs (sharing and a cycle included) into a
   fresh journal, tombstone a third, optionally compact, and — with
   --check — close, reopen, and verify every surviving graph reconstructs
   isomorphically on a fresh machine. *)
exception Check_failed of string

let scenario_store config path graphs compact_flag par check =
  let par_domains =
    match engine_of_par par with Net.Cluster.Par d -> d | _ -> 1
  in
  let config = { config with System.trace_level = Obs.Tracer.Events } in
  let sys = System.boot ~config () in
  let m = System.machine sys in
  let table = K.Machine.table m in
  fresh_journal path;
  let store = St.open_ path in
  St.attach store m;
  let shared = K.Machine.allocate_generic m ~data_length:8 () in
  K.Machine.write_word m shared ~offset:0 432;
  let key i = Printf.sprintf "g%03d" i in
  let filed = ref 0 in
  for i = 0 to graphs - 1 do
    let root =
      K.Machine.allocate_generic m ~data_length:16 ~access_length:3 ()
    in
    K.Machine.write_word m root ~offset:0 i;
    Segment.store_access table root ~slot:0 (Some shared);
    Segment.store_access table root ~slot:1 (Some root);
    filed := !filed + St.store_graph store m ~key:(key i) root
  done;
  for i = 0 to graphs - 1 do
    if i mod 3 = 0 then St.delete store ~key:(key i)
  done;
  let reclaimed = if compact_flag then St.compact store else 0 in
  Printf.printf "store: %d graphs filed (%d objects), %d live after tombstones\n"
    graphs !filed (St.count store);
  let appends, syncs, compactions, written, freed = St.stats store in
  Printf.printf
    "journal: %d appends, %d syncs, %d compactions, %d bytes written, %d \
     reclaimed\n"
    appends syncs compactions written freed;
  if compact_flag then
    Printf.printf "compaction reclaimed %d bytes (file now %d live records)\n"
      reclaimed (St.count store);
  St.close store;
  if check then begin
    (* The journal handle is a single-domain object, so the parallel check
       reads every wire image up front; verification — reconstruct on a
       fresh machine, re-capture, compare — shares nothing and fans out
       over the key space round-robin, each domain on its own machine. *)
    let store2 = St.open_ path in
    let wires =
      Array.of_list
        (List.map
           (fun key ->
             match St.get_wire store2 ~key with
             | Some w -> (key, w)
             | None -> die "store check: %S lost its wire image" key)
           (St.keys store2))
    in
    St.close store2;
    let verify_slice d =
      let sys2 = System.boot ~config () in
      let m2 = System.machine sys2 in
      Array.iteri
        (fun idx (key, stored) ->
          if idx mod par_domains = d then begin
            let root = Object_filing.reconstruct m2 stored in
            let rebuilt = Object_filing.capture m2 root in
            if not (Object_filing.wire_equal stored rebuilt) then
              raise (Check_failed key)
          end)
        wires
    in
    (try
       if par_domains = 1 then verify_slice 0
       else begin
         let pool = Net.Par_exec.create ~domains:par_domains in
         Fun.protect
           ~finally:(fun () -> Net.Par_exec.shutdown pool)
           (fun () -> Net.Par_exec.run pool ~tasks:par_domains verify_slice)
       end
     with Check_failed key ->
       die "store check: %S not isomorphic after reopen" key);
    Printf.printf
      "store check: %d graphs verified across close/reopen (%d domain(s))\n"
      (Array.length wires) par_domains
  end

(* Checkpoint: run a deterministic spooler workload, kill it at a chosen
   virtual-time instant (or a cluster at a round boundary), checkpoint,
   re-boot + replay + resume, and — with --check — fail unless the resumed
   event stream is bit-identical to an uninterrupted run's. *)

let kconfig processors =
  {
    K.Machine.default_config with
    K.Machine.processors;
    trace_level = Obs.Tracer.Events;
  }

let boot_spool_machine ~processors ~clients ~jobs () =
  let m = K.Machine.create ~config:(kconfig processors) () in
  let spool = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  let printer =
    K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo ()
  in
  let total = clients * jobs in
  ignore
    (K.Machine.spawn m ~name:"spooler" (fun () ->
         for _ = 1 to total do
           let job = K.Machine.receive m ~port:spool in
           K.Machine.compute m 2;
           K.Machine.send m ~port:printer ~msg:job
         done));
  ignore
    (K.Machine.spawn m ~name:"printer" (fun () ->
         for _ = 1 to total do
           let job = K.Machine.receive m ~port:printer in
           K.Machine.compute m 10;
           ignore (K.Machine.read_word m job ~offset:0)
         done));
  for c = 1 to clients do
    ignore
      (K.Machine.spawn m
         ~name:(Printf.sprintf "client%d" c)
         (fun () ->
           for j = 1 to jobs do
             let job = K.Machine.allocate_generic m ~data_length:16 () in
             K.Machine.write_word m job ~offset:0 ((c * 100) + j);
             K.Machine.send m ~port:spool ~msg:job;
             K.Machine.delay m ~ns:50_000
           done))
  done;
  m

let boot_spool_cluster ~processors ~clients ~jobs () =
  let cluster = Net.Cluster.create () in
  let config = kconfig processors in
  let node_a, ma = Net.Cluster.boot_node cluster ~name:"clients" ~config () in
  let node_b, mb =
    Net.Cluster.boot_node cluster ~name:"printshop" ~config ()
  in
  ignore (Net.Cluster.connect cluster node_a node_b);
  let queue = K.Machine.create_port mb ~capacity:8 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:node_b ~name:"printer" queue;
  let total = clients * jobs in
  ignore
    (K.Machine.spawn mb ~name:"printer" (fun () ->
         for _ = 1 to total do
           let job = K.Machine.receive mb ~port:queue in
           K.Machine.compute mb 25;
           ignore (K.Machine.read_word mb job ~offset:0)
         done));
  let surrogate =
    Net.Cluster.import cluster ~node:node_a ~name:"printer"
  in
  for u = 1 to clients do
    ignore
      (K.Machine.spawn ma
         ~name:(Printf.sprintf "user%d" u)
         (fun () ->
           for j = 1 to jobs do
             let job = K.Machine.allocate_generic ma ~data_length:16 () in
             K.Machine.write_word ma job ~offset:0 ((u * 100) + j);
             K.Machine.send ma ~port:surrogate ~msg:job;
             K.Machine.delay ma ~ns:100_000
           done))
  done;
  cluster

let stream m = List.map Obs.Event.to_string (K.Machine.events m)

let checkpoint_single ~processors ~clients ~jobs ~path ~kill_ns ~check =
  let boot = boot_spool_machine ~processors ~clients ~jobs in
  let straight = boot () in
  ignore (K.Machine.run straight);
  let victim = boot () in
  ignore (K.Machine.run ~max_ns:kill_ns victim);
  fresh_journal path;
  let store = St.open_ path in
  let r =
    Ckpt.save store ~key:"machine" ~bound:(Ckpt.Virtual_ns kill_ns) victim
  in
  let image_bytes =
    List.fold_left (fun a (_, i) -> a + String.length i) 0 r.Ckpt.c_nodes
  in
  Printf.printf
    "checkpoint: killed at %d virtual ns (machine clock %d ns), image %d \
     bytes, filed under \"machine\"\n"
    kill_ns r.Ckpt.c_now_ns image_bytes;
  (* The victim is dropped here: the only way back is through the store. *)
  let resumed = Ckpt.restore store ~key:"machine" ~boot in
  ignore (K.Machine.run resumed);
  Printf.printf "restore: replayed to the kill point and resumed to %d ns\n"
    (K.Machine.now resumed);
  St.close store;
  if check then
    if stream straight = stream resumed then
      Printf.printf
        "kill/restore check: resumed stream identical to the straight run \
         (%d events)\n"
        (List.length (stream straight))
    else die "kill/restore check FAILED: resumed event stream diverges"

let checkpoint_cluster ~processors ~clients ~jobs ~path ~rounds ~quantum_ns
    ~engine ~check =
  let boot = boot_spool_cluster ~processors ~clients ~jobs in
  (* The straight run always uses the sequential engine; the victim and
     the restored cluster use --par's engine.  With --check this proves
     checkpoint/restore composes with the parallel engine: kill a
     parallel run, restore it, and the streams still match a sequential
     run that was never killed. *)
  let straight = boot () in
  ignore (Net.Cluster.run straight ~quantum_ns ());
  let victim = boot () in
  ignore (Net.Cluster.run victim ~engine ~quantum_ns ~max_rounds:rounds ());
  fresh_journal path;
  let store = St.open_ path in
  let r =
    Ckpt.save_cluster store ~key:"cluster" ~rounds ~quantum_ns victim
  in
  Printf.printf
    "checkpoint: killed the cluster after %d rounds of %d ns, %d node \
     images filed under \"cluster\"\n"
    rounds quantum_ns
    (List.length r.Ckpt.c_nodes);
  let resumed = Ckpt.restore_cluster store ~key:"cluster" ~boot in
  ignore (Net.Cluster.run resumed ~engine ~quantum_ns ());
  print_endline "restore: replayed the recorded rounds and resumed to halt";
  St.close store;
  if check then
    for i = 0 to Net.Cluster.node_count straight - 1 do
      let name = Net.Cluster.node_name straight i in
      if
        stream (Net.Cluster.machine straight i)
        = stream (Net.Cluster.machine resumed i)
      then
        Printf.printf
          "kill/restore check: node %S stream identical to the straight run \
           (%d events)\n"
          name
          (List.length (stream (Net.Cluster.machine straight i)))
      else
        die "kill/restore check FAILED: node %S event stream diverges" name
    done

let scenario_checkpoint config path kill_ns rounds quantum_ns cluster clients
    jobs par check =
  let processors = config.System.processors in
  let engine = engine_of_par par in
  if cluster then
    checkpoint_cluster ~processors ~clients ~jobs ~path ~rounds ~quantum_ns
      ~engine ~check
  else begin
    if par > 1 then
      die "--par %d: only --cluster checkpoints run on multiple domains" par;
    checkpoint_single ~processors ~clients ~jobs ~path ~kill_ns ~check
  end

(* ---------------- commands ---------------- *)

let pipeline_cmd =
  let stages =
    Arg.(value & opt int 4 & info [ "stages" ] ~docv:"N" ~doc:"Pipeline stages.")
  in
  let messages =
    Arg.(value & opt int 100 & info [ "messages" ] ~docv:"N" ~doc:"Messages.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Multi-stage port pipeline across processors.")
    Term.(const scenario_pipeline $ config_term $ snapshot $ stages $ messages)

let churn_cmd =
  let rounds =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N" ~doc:"Churn rounds.")
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Allocation churn; pair with --gc to reclaim.")
    Term.(const scenario_churn $ config_term $ snapshot $ rounds)

let tapes_cmd =
  let drives =
    Arg.(value & opt int 6 & info [ "drives" ] ~docv:"N" ~doc:"Tape drives.")
  in
  Cmd.v
    (Cmd.info "tapes" ~doc:"Lost tape drives recovered by destruction filters.")
    Term.(const scenario_tapes $ config_term $ snapshot $ drives)

let rendezvous_cmd =
  let calls =
    Arg.(value & opt int 50 & info [ "calls" ] ~docv:"N" ~doc:"Entry calls.")
  in
  Cmd.v
    (Cmd.info "rendezvous" ~doc:"Ada rendezvous implemented on 432 ports.")
    Term.(const scenario_rendezvous $ config_term $ snapshot $ calls)

let clients_arg =
  Arg.(value & opt int 3 & info [ "clients" ] ~docv:"N" ~doc:"Spooler clients.")

let jobs_arg =
  Arg.(value & opt int 5 & info [ "jobs" ] ~docv:"N" ~doc:"Jobs per client.")

let trace_cmd =
  let chrome =
    chrome_arg ~doc:"Write a Chrome trace-event JSON file (Perfetto-loadable)."
  in
  let dump =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print every retained event.")
  in
  let legacy =
    Arg.(
      value & flag
      & info [ "legacy" ]
          ~doc:"Also render and print the legacy-format trace lines.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the spooler workload with event tracing enabled.")
    Term.(
      const scenario_trace $ config_term $ snapshot $ clients_arg $ jobs_arg
      $ chrome $ dump $ legacy)

let metrics_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Write the metrics registry as JSON.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run the spooler workload and dump the metrics registry.")
    Term.(
      const scenario_metrics $ config_term $ snapshot $ clients_arg $ jobs_arg
      $ json)

let chaos_cmd =
  let seed = seed_arg ~default:7 ~doc:"Fault-plan seed." in
  let faults =
    Arg.(
      value & opt int 1
      & info [ "faults" ] ~docv:"N"
          ~doc:"Processor hard-faults to inject (capped at processors - 1).")
  in
  let chrome =
    chrome_arg ~doc:"Write a Chrome trace-event JSON file (Perfetto-loadable)."
  in
  let check =
    check_arg
      ~doc:
        "Re-run with the same seed and fail unless the event streams are \
         identical."
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a timeout-tolerant spooler under a seeded fault-injection \
          plan and check post-run invariants.")
    Term.(
      const scenario_chaos $ config_term $ snapshot $ seed $ clients_arg
      $ jobs_arg $ faults $ chrome $ check)

let net_cmd =
  let nodes =
    Arg.(
      value & opt int 2
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Cluster size: N-1 client nodes in a star around one printshop \
             node.")
  in
  let par =
    par_arg
      ~doc:
        "Step cluster nodes on this many OCaml domains (1 = sequential \
         engine); results are byte-identical either way."
  in
  let seed = seed_arg ~default:11 ~doc:"Link-fault seed." in
  let link_faults =
    Arg.(
      value & opt int 0
      & info [ "link-faults" ] ~docv:"N"
          ~doc:"Drop/duplicate/reorder bursts to draw into the plan.")
  in
  let partitions =
    Arg.(
      value & opt int 0
      & info [ "partitions" ] ~docv:"N"
          ~doc:"Partition windows to draw into the plan.")
  in
  let latency =
    Arg.(
      value & opt int 250_000
      & info [ "latency" ] ~docv:"NS" ~doc:"Per-hop link latency (virtual ns).")
  in
  let topology =
    Arg.(
      value & flag
      & info [ "topology" ]
          ~doc:"Dump nodes, links, channels, and exported names at exit.")
  in
  let chrome =
    chrome_arg
      ~doc:
        "Write a multi-process Chrome trace with cross-node frame flow \
         arrows."
  in
  let kill_node =
    Arg.(
      value
      & opt (some string) None
      & info [ "kill-node" ] ~docv:"NAME@NS"
          ~doc:
            "Checkpoint the cluster, then kill node NAME at virtual instant \
             NS; sends to the dead node retry with bounded backoff and \
             dead-letter instead of hanging.")
  in
  let restart_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "restart-at" ] ~docv:"NS"
          ~doc:
            "With --kill-node: splice a checkpoint replay of the dead node \
             back in at this instant, republishing its names under a bumped \
             name-service epoch.")
  in
  let check =
    check_arg
      ~doc:
        "Re-run with the same seed and fail unless printed output and every \
         node's event stream are identical.  Also fails loudly if any frame \
         was lost with no fault plan armed."
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Run the spooler split across an N-node star cluster over the \
          virtual interconnect, optionally under a seeded link-fault plan, \
          a staged whole-node kill/rejoin, and on multiple OCaml domains.")
    Term.(
      const scenario_net $ config_term $ nodes $ par $ seed $ clients_arg
      $ jobs_arg $ link_faults $ partitions $ latency $ kill_node $ restart_at
      $ topology $ chrome $ check)

let path_arg ~default =
  Arg.(
    value & opt string default
    & info [ "path" ] ~docv:"PATH"
        ~doc:"Journal file (recreated; PATH.tmp is the compaction scratch).")

let store_cmd =
  let graphs =
    Arg.(
      value & opt int 24
      & info [ "graphs" ] ~docv:"N" ~doc:"Composite graphs to file.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ] ~doc:"Compact the journal after tombstoning.")
  in
  let check =
    check_arg
      ~doc:
        "Close, reopen, and fail unless every surviving graph reconstructs \
         isomorphically on a fresh machine."
  in
  let par =
    par_arg
      ~doc:
        "With --check: verify graphs on this many OCaml domains, each with \
         its own fresh machine."
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "File object graphs into the persistent store's journal, tombstone \
          some, and verify recovery across close/reopen.")
    Term.(
      const scenario_store $ config_term
      $ path_arg ~default:(scratch_path "imax_store.journal")
      $ graphs $ compact $ par $ check)

let checkpoint_cmd =
  let kill_ns =
    Arg.(
      value & opt int 200_000
      & info [ "kill-ns" ] ~docv:"NS"
          ~doc:"Kill the single-machine run at this virtual-time instant.")
  in
  let rounds =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~docv:"N"
          ~doc:"With --cluster: kill after this many interconnect rounds.")
  in
  let quantum =
    Arg.(
      value & opt int 100_000
      & info [ "quantum" ] ~docv:"NS"
          ~doc:"With --cluster: interconnect round quantum (virtual ns).")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Checkpoint a two-node cluster at a round boundary instead of a \
             single machine.")
  in
  let check =
    check_arg
      ~doc:
        "Fail unless the killed-and-restored run's event stream is \
         bit-identical to an uninterrupted run's."
  in
  let par =
    par_arg
      ~doc:
        "With --cluster: run the victim and the restored cluster on this \
         many OCaml domains (the straight reference run stays sequential)."
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Kill a deterministic run at a chosen instant, checkpoint it into \
          the store, then restore by replay and resume — provably \
          bit-identical to a run that was never killed.")
    Term.(
      const scenario_checkpoint $ config_term
      $ path_arg ~default:(scratch_path "imax_ckpt.journal")
      $ kill_ns $ rounds $ quantum $ cluster $ clients_arg $ jobs_arg $ par
      $ check)

(* Open-loop traffic harness: replay a seeded arrival schedule through the
   typed-port request path and report end-to-end latency quantiles from
   the request spans.  --nodes >= 2 drives the same schedule across the
   virtual interconnect; --check proves the whole run — arrival stream,
   span stream, merged metrics — is a pure function of the seed (and with
   --par, byte-identical to the sequential cluster engine). *)
let scenario_loadgen config users rate sessions requests mix pattern seed nodes
    par workers pumps chrome_out check =
  let processors = config.System.processors in
  let profile =
    match Load.Mix.profile_of_string mix with
    | Some p -> p
    | None ->
      die "--mix %s: expected one of %s" mix
        (String.concat ", "
           (Array.to_list
              (Array.map Load.Mix.profile_name Load.Mix.profiles)))
  in
  let pattern =
    match Load.Arrival.pattern_of_string pattern with
    | Some p -> p
    | None -> die "--pattern %s: expected poisson or bursty" pattern
  in
  if nodes < 1 then die "--nodes %d: need at least one node" nodes;
  let spec =
    {
      Load.Arrival.seed;
      users;
      sessions;
      requests_per_session = requests;
      rate_rps = rate;
      pattern;
      profile;
    }
  in
  let engine = engine_of_par par in
  let opt n = if n > 0 then Some n else None in
  let run ~engine () =
    if nodes = 1 then
      Load.Loadgen.run_machine ~processors ?workers:(opt workers)
        ?pumps:(opt pumps) ~trace_level:Obs.Tracer.Events ~spec ()
    else
      Load.Loadgen.run_cluster ~nodes ~processors ?workers:(opt workers)
        ?pumps:(opt pumps) ~engine ~trace_level:Obs.Tracer.Events ~spec ()
  in
  let o = run ~engine () in
  let total = Load.Arrival.total spec in
  if o.Load.Loadgen.o_completed <> total then
    die "loadgen: %d of %d requests completed (%d issued, %d blocked)"
      o.Load.Loadgen.o_completed total o.Load.Loadgen.o_issued
      o.Load.Loadgen.o_deadlocked;
  if o.Load.Loadgen.o_deadlocked <> 0 then
    die "loadgen: %d processes still blocked at halt"
      o.Load.Loadgen.o_deadlocked;
  let us ns = ns /. 1e3 in
  Printf.printf
    "loadgen: %d users x %d sessions x %d requests = %d (%s, %s mix)\n" users
    sessions requests total
    (Load.Arrival.pattern_name pattern)
    (Load.Mix.profile_name profile);
  Printf.printf "offered %.0f rps (realized %.0f), achieved %.0f rps\n" rate
    (Load.Arrival.offered_rps o.Load.Loadgen.o_requests)
    (Load.Loadgen.achieved_rps o);
  Printf.printf "horizon %.1f ms, last request retired at %.1f ms\n"
    (float_of_int (Load.Arrival.horizon_ns o.Load.Loadgen.o_requests) /. 1e6)
    (float_of_int o.Load.Loadgen.o_last_done_ns /. 1e6);
  Printf.printf "latency p50 %.1f us  p99 %.1f us  p999 %.1f us\n"
    (us (Load.Loadgen.quantile o 0.5))
    (us (Load.Loadgen.quantile o 0.99))
    (us (Load.Loadgen.quantile o 0.999));
  Array.iter
    (fun cls ->
      match
        Obs.Metrics.find_log_histogram o.Load.Loadgen.o_metrics
          (Obs.Span.latency_name cls)
      with
      | Some lh when lh.Obs.Metrics.l_hist.U.Stats.lh_count > 0 ->
        Printf.printf "  %-10s %6d reqs  p50 %8.1f us  p99 %8.1f us\n" cls
          lh.Obs.Metrics.l_hist.U.Stats.lh_count
          (us (Load.Loadgen.class_quantile o ~cls 0.5))
          (us (Load.Loadgen.class_quantile o ~cls 0.99))
      | _ -> ())
    Load.Mix.names;
  (match chrome_out with
  | Some path ->
    let json =
      match o.Load.Loadgen.o_machines with
      | [ (_, m) ] ->
        Obs.Export.chrome_trace
          ~processors:(K.Machine.processor_count m)
          (K.Machine.events m)
      | machines ->
        Obs.Export.chrome_trace_cluster
          (List.map
             (fun (name, m) ->
               (name, K.Machine.processor_count m, K.Machine.events m))
             machines)
    in
    Obs.Jout.write_file ~path json;
    Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  if check then begin
    (* Same seed, fresh run: the arrival schedule, the request-span event
       stream, and the merged metrics must all be byte-identical.  With
       --par on a cluster the re-run uses the SEQUENTIAL engine, so this
       is also the cross-engine determinism gate. *)
    let check_engine =
      if nodes > 1 && par > 1 then Net.Cluster.Seq else engine
    in
    let o2 = run ~engine:check_engine () in
    if
      Load.Arrival.render o.Load.Loadgen.o_requests
      <> Load.Arrival.render o2.Load.Loadgen.o_requests
    then die "loadgen --check: arrival streams differ for seed %d" seed;
    if Load.Loadgen.span_stream o <> Load.Loadgen.span_stream o2 then
      die "loadgen --check: request-span streams differ for seed %d%s" seed
        (if check_engine <> engine then " (Par vs Seq engine)" else "");
    if
      Obs.Metrics.render o.Load.Loadgen.o_metrics
      <> Obs.Metrics.render o2.Load.Loadgen.o_metrics
    then die "loadgen --check: merged metrics differ for seed %d" seed;
    Printf.printf
      "loadgen check passed: arrival, span, and metrics streams \
       byte-identical%s\n"
      (if check_engine <> engine then " across Par/Seq engines" else "")
  end

let loadgen_cmd =
  let users =
    Arg.(
      value & opt int 100
      & info [ "users" ] ~docv:"N" ~doc:"Simulated users issuing requests.")
  in
  let rate =
    Arg.(
      value & opt float 20_000.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Aggregate offered load, requests per virtual second.")
  in
  let sessions =
    Arg.(
      value & opt int 2
      & info [ "sessions" ] ~docv:"N" ~doc:"Sessions per user, back to back.")
  in
  let requests =
    Arg.(
      value & opt int 4
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per session.")
  in
  let mix =
    Arg.(
      value & opt string "typical"
      & info [ "mix" ] ~docv:"PROFILE"
          ~doc:
            "CPI weight profile: typical, compute, memory, control, or mixed.")
  in
  let pattern =
    Arg.(
      value & opt string "poisson"
      & info [ "pattern" ] ~docv:"P"
          ~doc:"Arrival pattern: poisson or bursty.")
  in
  let seed = seed_arg ~default:42 ~doc:"Arrival-schedule seed." in
  let nodes =
    Arg.(
      value & opt int 1
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "1 = single machine; >= 2 drives the schedule across an \
             N-node cluster (node 0 serves, the rest issue).")
  in
  let par =
    par_arg
      ~doc:
        "With --nodes >= 2: step cluster nodes on this many OCaml domains \
         (1 = sequential engine); results are byte-identical either way."
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Serving processes (0 = twice the processor count).")
  in
  let pumps =
    Arg.(
      value & opt int 0
      & info [ "pumps" ] ~docv:"N"
          ~doc:"Issuing processes (per client node when clustered).")
  in
  let chrome =
    chrome_arg
      ~doc:
        "Write a Chrome trace (request spans as async slices) to this path."
  in
  let check =
    check_arg
      ~doc:
        "Re-run the same seed and fail unless arrival, request-span, and \
         merged-metrics streams are byte-identical (with --par: against \
         the sequential engine)."
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a seeded open-loop arrival schedule through the typed-port \
          request path and report end-to-end latency quantiles from the \
          request spans.")
    Term.(
      const scenario_loadgen $ config_term $ users $ rate $ sessions
      $ requests $ mix $ pattern $ seed $ nodes $ par $ workers $ pumps
      $ chrome $ check)

(* Swap: the virtual-memory tier end to end.  A multiuser touch workload
   runs against a swapping memory manager whose resident set is bounded
   by --ram-bytes and whose evicted segment images live in a store-backed
   swap device (journaled, CRC-framed, compacted in virtual time).  Every
   read verifies the payload written at allocation, so a corrupt image
   cannot go unnoticed.  --check re-runs the seed on a fresh journal and
   compares event streams, then kills a third run mid-swap, checkpoints
   it, restores by replay, and requires the resumed stream to be
   bit-identical to the straight run's. *)
let scenario_swap config path policy objects object_bytes users touches
    ram_bytes seed kill_ns chrome_out check =
  if objects <= 0 then die "--objects %d: need at least one object" objects;
  if object_bytes <= 0 then die "--object-bytes %d: need a positive size"
      object_bytes;
  if users <= 0 then die "--users %d: need at least one user" users;
  let ws = objects * object_bytes in
  let ram_bytes = if ram_bytes > 0 then ram_bytes else max object_bytes (ws / 4) in
  let heap_bytes = ram_bytes + max ram_bytes (64 * 1024) in
  let memory_bytes =
    max System.default_config.System.memory_bytes
      ((2 * heap_bytes) + (1 lsl 20))
  in
  let boots = ref 0 in
  let stores = ref [] in
  let errors = ref 0 in
  let verified = ref 0 in
  let boot_sys () =
    incr boots;
    let jp = if !boots = 1 then path else Printf.sprintf "%s.%d" path !boots in
    fresh_journal jp;
    (* A million-object working set appends constantly: raise the fsync
       cadence and make compaction wait for MB-scale garbage. *)
    let store =
      St.open_ ~sync_every:256 ~compact_interval_ns:1_000_000
        ~min_garbage_bytes:(max 4096 (ram_bytes / 2))
        jp
    in
    stores := store :: !stores;
    errors := 0;
    verified := 0;
    let sys =
      System.boot
        ~config:
          {
            config with
            System.memory_manager = policy;
            heap_bytes;
            memory_bytes;
            swap_ram_bytes = Some ram_bytes;
            swap_device = Some (I432_store.Swap_store.device store);
            trace_level = Obs.Tracer.Events;
          }
        ()
    in
    let m = System.machine sys in
    St.attach store m;
    (* Populate: each object carries its index as payload; the envelope
       is enforced during this loop, so most of the set is already on the
       swap device when the users start. *)
    let objs =
      Array.init objects (fun i ->
          let o =
            System.mm_allocate sys ~data_length:object_bytes ~access_length:0
              ~otype:Obj_type.Generic
          in
          K.Machine.write_word m o ~offset:0 (i + 1);
          o)
    in
    for u = 1 to users do
      let prng = U.Prng.create ~seed:(seed + (u * 7919)) in
      ignore
        (K.Machine.spawn m
           ~name:(Printf.sprintf "user%d" u)
           (fun () ->
             for _ = 1 to touches do
               let i = U.Prng.int prng objects in
               let o = objs.(i) in
               (* Fault-and-retry: a preemption between the touch and the
                  read can let another user's fault-in evict [o] again. *)
               let rec read_back () =
                 System.mm_touch sys o;
                 match K.Machine.read_word m o ~offset:0 with
                 | v -> v
                 | exception Fault.Fault (Fault.Segment_swapped_out _) ->
                   read_back ()
               in
               if read_back () <> i + 1 then incr errors;
               incr verified;
               K.Machine.compute m 4
             done))
    done;
    sys
  in
  let sys = boot_sys () in
  let m = System.machine sys in
  let report = System.run sys in
  let straight_stream = stream m in
  let straight_errors = !errors and straight_verified = !verified in
  Printf.printf "swap: %s policy, %d objects x %d B = %d KB working set\n"
    (System.memory_choice_to_string policy)
    objects object_bytes (ws / 1024);
  Printf.printf "envelope: %d KB RAM (%.1fx over-commit), %d KB heap\n"
    (ram_bytes / 1024)
    (float_of_int ws /. float_of_int ram_bytes)
    (heap_bytes / 1024);
  print_report report;
  let st = System.mm_stats sys in
  let faults =
    match Obs.Metrics.find_counter (K.Machine.metrics m) "swap.faults" with
    | Some c -> Obs.Metrics.counter_value c
    | None -> 0
  in
  Printf.printf "swap traffic: %d faults, %d ins, %d outs, %d pressure events\n"
    faults st.Memory_manager.swap_ins st.Memory_manager.swap_outs
    st.Memory_manager.alloc_faults;
  (match (System.mm_resident_count sys, System.mm_resident_bytes sys) with
  | Some n, Some b ->
    Printf.printf "residents at halt: %d (%d KB of %d KB envelope)\n" n
      (b / 1024) (ram_bytes / 1024);
    if b > ram_bytes then
      die "swap: resident set (%d B) exceeds the RAM envelope (%d B)" b
        ram_bytes
  | _ -> ());
  (match System.mm_device sys with
  | Some dev ->
    let ds = I432_vm.Swap_device.stats dev in
    Printf.printf
      "device %S: %d writes (%d KB), %d reads (%d KB), %d drops\n"
      (I432_vm.Swap_device.name dev)
      ds.I432_vm.Swap_device.writes
      (ds.I432_vm.Swap_device.bytes_written / 1024)
      ds.I432_vm.Swap_device.reads
      (ds.I432_vm.Swap_device.bytes_read / 1024)
      ds.I432_vm.Swap_device.drops
  | None -> ());
  if straight_errors > 0 then
    die "swap: %d of %d payload reads came back corrupt" straight_errors
      straight_verified;
  Printf.printf "payload check: %d reads verified, 0 corrupt\n"
    straight_verified;
  (match chrome_out with
  | Some cpath ->
    let json =
      Obs.Export.chrome_trace
        ~processors:(K.Machine.processor_count m)
        (K.Machine.events m)
    in
    Obs.Jout.write_file ~path:cpath json;
    Printf.printf "chrome trace written to %s\n" cpath
  | None -> ());
  if check then begin
    (* Same seed, fresh journal: the event stream — swap events, journal
       appends, the lot — must be identical. *)
    let sys2 = boot_sys () in
    ignore (System.run sys2);
    if stream (System.machine sys2) <> straight_stream then
      die "swap check FAILED: same-seed event streams differ";
    Printf.printf "determinism check: identical event streams (%d events)\n"
      (List.length straight_stream);
    (* Kill mid-swap, checkpoint, restore by replay, resume: the resumed
       stream must match the straight run exactly. *)
    let kill_ns =
      if kill_ns > 0 then kill_ns
      else max 1 (report.K.Machine.elapsed_ns / 2)
    in
    let victim_sys = boot_sys () in
    let victim = System.machine victim_sys in
    ignore (K.Machine.run ~max_ns:kill_ns victim);
    let ckpt_path = path ^ ".ckpt" in
    fresh_journal ckpt_path;
    let ckpt_store = St.open_ ckpt_path in
    ignore
      (Ckpt.save ckpt_store ~key:"swap" ~bound:(Ckpt.Virtual_ns kill_ns)
         victim);
    let resumed =
      Ckpt.restore ckpt_store ~key:"swap" ~boot:(fun () ->
          System.machine (boot_sys ()))
    in
    ignore (K.Machine.run resumed);
    St.close ckpt_store;
    if stream resumed <> straight_stream then
      die
        "swap kill/restore check FAILED: resumed stream diverges from the \
         straight run";
    Printf.printf
      "kill/restore check: killed at %d ns mid-swap, resumed stream \
       identical\n"
      kill_ns
  end;
  List.iter St.close !stores

let swap_cmd =
  let policy =
    let doc = "Victim policy: lru, fifo, clock or level." in
    let choices =
      Arg.enum
        [
          ("lru", System.Swapping_lru);
          ("fifo", System.Swapping_fifo);
          ("clock", System.Swapping_clock);
          ("level", System.Swapping_level);
        ]
    in
    Arg.(value & opt choices System.Swapping_lru & info [ "policy" ] ~doc)
  in
  let objects =
    Arg.(
      value & opt int 4096
      & info [ "objects" ] ~docv:"N" ~doc:"Live objects in the working set.")
  in
  let object_bytes =
    Arg.(
      value & opt int 256
      & info [ "object-bytes" ] ~docv:"B" ~doc:"Data bytes per object.")
  in
  let users =
    Arg.(
      value & opt int 8
      & info [ "users" ] ~docv:"N" ~doc:"Concurrent touching processes.")
  in
  let touches =
    Arg.(
      value & opt int 400
      & info [ "touches" ] ~docv:"N" ~doc:"Random touches per user.")
  in
  let ram_bytes =
    Arg.(
      value & opt int 0
      & info [ "ram-bytes" ] ~docv:"B"
          ~doc:
            "Resident-set RAM envelope in bytes (0 = a quarter of the \
             working set).")
  in
  let seed = seed_arg ~default:7 ~doc:"Touch-schedule seed." in
  let kill_ns =
    Arg.(
      value & opt int 0
      & info [ "kill-ns" ] ~docv:"NS"
          ~doc:
            "With --check: kill the victim run at this virtual instant (0 \
             = halfway through the straight run).")
  in
  let chrome =
    chrome_arg
      ~doc:"Write a Chrome trace (fault-in slices, vm category) to this path."
  in
  let check =
    check_arg
      ~doc:
        "Fail unless a same-seed re-run's event stream is byte-identical, \
         and a run killed mid-swap, checkpointed, and restored by replay \
         resumes bit-identically."
  in
  Cmd.v
    (Cmd.info "swap"
       ~doc:
         "Multiuser working set held inside a bounded RAM envelope by the \
          swapping memory manager, with evicted segments on a store-backed \
          swap device.")
    Term.(
      const scenario_swap $ config_term
      $ path_arg ~default:(scratch_path "imax_swap.journal")
      $ policy $ objects $ object_bytes $ users $ touches $ ram_bytes $ seed
      $ kill_ns $ chrome $ check)

(* ---------------- txn: transactional banking ---------------- *)

let scenario_txn path accounts transfers workers seed cluster kill_ns
    restart_ns ckpt_ns check =
  if accounts < 2 then die "--accounts %d: need at least 2" accounts;
  if kill_ns > 0 && not cluster then
    die "--kill-ns: the kill/rejoin variant needs --cluster";
  let restart_ns =
    if kill_ns > 0 && restart_ns = 0 then 2 * kill_ns else restart_ns
  in
  if kill_ns > 0 && restart_ns <= kill_ns then
    die "--restart-ns %d: must come after the kill at %d ns" restart_ns kill_ns;
  if ckpt_ns > 0 && kill_ns = 0 then
    die "--ckpt-ns: only meaningful with --kill-ns";
  if ckpt_ns > kill_ns then
    die "--ckpt-ns %d: the checkpoint must precede the kill at %d ns" ckpt_ns
      kill_ns;
  let stream m = List.map Obs.Event.to_string (K.Machine.events m) in
  let txn_counters m =
    List.filter
      (fun c ->
        String.length c.Obs.Metrics.c_name >= 4
        && String.sub c.Obs.Metrics.c_name 0 4 = "txn.")
      (Obs.Metrics.counters (K.Machine.metrics m))
  in
  let print_result tag (r : I432_txn.Banking.result) =
    Printf.printf "%s: %s\n" tag (I432_txn.Banking.result_to_string r);
    let lats = List.sort compare r.I432_txn.Banking.latencies in
    let n = List.length lats in
    if n > 0 then begin
      let q p = List.nth lats (min (n - 1) (p * n / 100)) in
      Printf.printf
        "completion latency: p50 %d ns, p99 %d ns over %d samples\n" (q 50)
        (q 99) n
    end
  in
  let die_unless_sound tag (r : I432_txn.Banking.result) =
    if not (I432_txn.Banking.conserved r) then
      die "%s: balance NOT conserved (%d != %d)" tag
        r.I432_txn.Banking.final_total r.I432_txn.Banking.initial_total;
    if r.I432_txn.Banking.completions <> r.I432_txn.Banking.committed then
      die "%s: %d commits but %d completions — not exactly-once" tag
        r.I432_txn.Banking.committed r.I432_txn.Banking.completions;
    if r.I432_txn.Banking.dup_completions <> 0 then
      die "%s: %d duplicate completions reached the auditor" tag
        r.I432_txn.Banking.dup_completions
  in
  fresh_journal path;
  let store = St.open_ path in
  if cluster then begin
    let kill = if kill_ns > 0 then Some (kill_ns, restart_ns) else None in
    let ckpt_path = path ^ ".ckpt" in
    let ckpt_store =
      match kill with
      | None -> None
      | Some _ ->
        fresh_journal ckpt_path;
        Some (St.open_ ckpt_path)
    in
    let go () =
      I432_txn.Banking.run_cluster ~workers ?kill
        ?ckpt_ns:(if ckpt_ns > 0 then Some ckpt_ns else None)
        ?ckpt_store ~history_store:store ~accounts ~transfers ~seed ()
    in
    let cr = go () in
    let r = cr.I432_txn.Banking.res in
    Printf.printf "banking cluster: %d accounts on %s, auditor on %s%s\n"
      accounts
      (Net.Cluster.node_name cr.I432_txn.Banking.cluster
         cr.I432_txn.Banking.bank_node)
      (Net.Cluster.node_name cr.I432_txn.Banking.cluster
         cr.I432_txn.Banking.audit_node)
      (match kill with
      | Some (k, rs) ->
        Printf.sprintf ", bank killed at %d ns, rejoined at %d ns" k rs
      | None -> "");
    print_result "cluster" r;
    Printf.printf "%s\n"
      (Net.Cluster.report_to_string cr.I432_txn.Banking.report);
    Printf.printf "txn-level dup frames dropped by the NIC: %d\n"
      (Net.Cluster.txn_dup_drops cr.I432_txn.Banking.cluster);
    die_unless_sound "cluster" r;
    if check then begin
      (match kill with
      | None -> ()
      | Some _ ->
        if not
             (Net.Cluster.node_alive cr.I432_txn.Banking.cluster
                cr.I432_txn.Banking.bank_node)
        then die "check FAILED: bank node did not rejoin");
      (* An early checkpoint leaves a rollback window of commits whose
         completions already escaped — the rejoin MUST re-send them and
         the audit NIC MUST drop them. *)
      if
        ckpt_ns > 0
        && Net.Cluster.txn_dup_drops cr.I432_txn.Banking.cluster = 0
      then
        die
          "check FAILED: checkpoint at %d ns predates the kill yet the NIC \
           dropped no duplicate frames"
          ckpt_ns;
      Printf.printf
        "check: %s exactly-once across %s\n"
        (match kill with
        | Some _ -> "kill-mid-commit rejoin kept delivery"
        | None -> "cluster delivery")
        (Printf.sprintf "%d commits" r.I432_txn.Banking.committed)
    end;
    (match ckpt_store with Some s -> St.close s | None -> ())
  end
  else begin
    let machine, history, r =
      I432_txn.Banking.run ~workers ~history_store:store ~accounts ~transfers
        ~seed ()
    in
    Printf.printf "banking: %d accounts, %d transfers, %d tellers, seed %d\n"
      accounts transfers workers seed;
    print_result "banking" r;
    List.iter
      (fun c ->
        Printf.printf "  %s = %d\n" c.Obs.Metrics.c_name
          c.Obs.Metrics.c_value)
      (txn_counters machine);
    die_unless_sound "banking" r;
    let h = Option.get history in
    List.iter
      (fun (name, _) ->
        if not (I432_txn.History.verify h ~name) then
          die "history FAILED: %s does not replay to its live state" name)
      (I432_txn.History.tracked h);
    Printf.printf
      "history: %d accounts tracked, every one replays to its live balance \
       (imax_ctl history acct0 --path %s)\n"
      accounts path;
    if check then begin
      (* Same seed, same configuration (history journaled to a scratch
         twin), same bytes. *)
      let twin = path ^ ".check" in
      fresh_journal twin;
      let twin_store = St.open_ twin in
      let machine2, _, r2 =
        I432_txn.Banking.run ~workers ~history_store:twin_store ~accounts
          ~transfers ~seed ()
      in
      St.close twin_store;
      if r2.I432_txn.Banking.committed <> r.I432_txn.Banking.committed then
        die "check FAILED: re-run committed %d vs %d"
          r2.I432_txn.Banking.committed r.I432_txn.Banking.committed;
      if stream machine2 <> stream machine then
        die "check FAILED: same-seed event streams diverge";
      (* Kill-mid-commit rejoin on the cluster variant proves the
         exactly-once seam end to end.  Checkpointing well before the
         kill rolls already-completed commits back, so the audit NIC has
         real duplicate frames to drop. *)
      let ckpt_path = path ^ ".ckpt" in
      fresh_journal ckpt_path;
      let ckpt_store = St.open_ ckpt_path in
      let cr =
        I432_txn.Banking.run_cluster ~workers ~kill:(600_000, 900_000)
          ~ckpt_ns:200_000 ~ckpt_store ~accounts ~transfers ~seed ()
      in
      die_unless_sound "kill/rejoin" cr.I432_txn.Banking.res;
      let drops = Net.Cluster.txn_dup_drops cr.I432_txn.Banking.cluster in
      if drops = 0 then
        die
          "check FAILED: rollback window produced no duplicate frames for \
           the NIC to drop";
      St.close ckpt_store;
      Printf.printf
        "check: same-seed streams identical; kill-mid-commit rejoin kept %d \
         commits exactly-once (%d duplicate frames dropped)\n"
        cr.I432_txn.Banking.res.I432_txn.Banking.committed drops
    end
  end;
  St.close store

let txn_cmd =
  let accounts =
    Arg.(
      value & opt int 6
      & info [ "accounts" ] ~docv:"N" ~doc:"Bank accounts (token-guarded).")
  in
  let transfers =
    Arg.(
      value & opt int 60
      & info [ "transfers" ] ~docv:"N" ~doc:"Transfers in the seeded mix.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Concurrent teller processes.")
  in
  let seed = seed_arg ~default:7 ~doc:"Transfer-mix seed." in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Two-node variant: accounts and tellers on node $(b,bank), the \
             auditor behind an exported port on node $(b,audit).")
  in
  let kill_ns =
    Arg.(
      value & opt int 0
      & info [ "kill-ns" ] ~docv:"NS"
          ~doc:
            "With --cluster: kill the bank node at this virtual instant and \
             rejoin it from its checkpoint.")
  in
  let restart_ns =
    Arg.(
      value & opt int 0
      & info [ "restart-ns" ] ~docv:"NS"
          ~doc:"With --kill-ns: rejoin instant (must follow the kill).")
  in
  let ckpt_ns =
    Arg.(
      value & opt int 0
      & info [ "ckpt-ns" ] ~docv:"NS"
          ~doc:
            "With --kill-ns: checkpoint instant (default: the kill itself). \
             Setting it well before the kill rolls committed work back on \
             rejoin, forcing the audit NIC to dedup re-sent completions.")
  in
  let check =
    check_arg
      ~doc:
        "Fail unless the run conserves total balance with exactly-once \
         completion, a same-seed re-run's event stream is byte-identical, \
         and a kill-mid-commit checkpoint/rejoin of the bank node still \
         delivers every commit exactly once."
  in
  Cmd.v
    (Cmd.info "txn"
       ~doc:
         "Transactional banking: atomic multi-port transfer groups with \
          idempotency keys and event-sourced account history.")
    Term.(
      const scenario_txn
      $ path_arg ~default:(scratch_path "imax_txn.journal")
      $ accounts $ transfers $ workers $ seed $ cluster $ kill_ns $ restart_ns
      $ ckpt_ns $ check)

(* ---------------- history: audit an object's event log ---------------- *)

let scenario_history path name to_ns =
  if not (Sys.file_exists path) then
    die "%s: no journal (run `imax_ctl txn` first or pass --path)" path;
  let store = St.open_ path in
  let recs = I432_txn.History.records store ~name in
  (match I432_txn.History.replay store ~name ~to_ns:0 with
  | None -> die "%s: no history filed under this name" name
  | Some base ->
    Printf.printf "%s: base image %d bytes, %d committed mutations\n" name
      (Bytes.length base) (List.length recs));
  List.iteri
    (fun i (commit_ns, key, writes) ->
      Printf.printf "  #%d at %d ns key=%d %s\n" (i + 1) commit_ns key
        (String.concat ", "
           (List.map
              (fun (off, w) -> Printf.sprintf "[%d]=%d" off w)
              writes)))
    recs;
  let bound = if to_ns > 0 then to_ns else max_int in
  (match I432_txn.History.replay store ~name ~to_ns:bound with
  | None -> ()
  | Some img ->
    Printf.printf "replayed to %s: word[0] = %ld\n"
      (if to_ns > 0 then Printf.sprintf "%d ns" to_ns else "end of history")
      (Bytes.get_int32_le img 0));
  St.close store

let history_cmd =
  let obj_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Tracked object name (e.g. acct0).")
  in
  let to_ns =
    Arg.(
      value & opt int 0
      & info [ "to-ns" ] ~docv:"NS"
          ~doc:"Replay only mutations committed at or before this instant.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "Audit an object's event-sourced history: list its committed \
          mutations and replay its state to a point in virtual time.")
    Term.(
      const scenario_history
      $ path_arg ~default:(scratch_path "imax_txn.journal")
      $ obj_name $ to_ns)

let main =
  Cmd.group
    (Cmd.info "imax_ctl" ~version:"1.0"
       ~doc:"Drive the iMAX-432 object-based multiprocessor simulator.")
    [
      pipeline_cmd; churn_cmd; tapes_cmd; rendezvous_cmd; trace_cmd;
      metrics_cmd; chaos_cmd; net_cmd; store_cmd; checkpoint_cmd; swap_cmd;
      loadgen_cmd; txn_cmd; history_cmd;
    ]

let () = exit (Cmd.eval main)
