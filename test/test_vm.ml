(* The virtual-memory tier: resident-set victim order under every
   policy (level-aware strictness, clock second chance, cross-processor
   clock regression), observational equality of the swapping and
   non-swapping managers when the working set fits in RAM, and crash
   safety of the store-backed swap device across a swap-out write. *)

open I432
module K = I432_kernel
module Obs = I432_obs
module Vm = I432_vm
module MM = Imax.Memory_manager
module Store = I432_store.Store
module Swap_store = I432_store.Swap_store

let mk ?(processors = 1) ?(trace = false) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        processors;
        trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
      }
    ()

let everything _ = true

(* Drain the controller pick → remove, recording the victim order. *)
let drain rset =
  let rec go acc =
    match Vm.Resident_set.pick rset ~avoid:(-1) ~evictable:everything with
    | None -> List.rev acc
    | Some i ->
      Vm.Resident_set.remove rset ~index:i;
      go (i :: acc)
  in
  go []

(* ---------------- Resident_set: policy order ---------------- *)

(* Level-aware: strictly higher levels first — a level-2 segment touched
   a moment ago still goes before a level-0 segment idle for ages — and
   LRU order (touch, then arrival) within a level. *)
let test_level_aware_order () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Level_aware () in
  let ins index level now =
    Vm.Resident_set.insert rs ~index ~bytes:16 ~level ~now
  in
  ins 1 0 10;
  ins 2 2 50;
  (* most recent of all, but highest level *)
  ins 3 1 5;
  ins 4 2 1;
  ins 5 0 100;
  ins 6 1 100;
  Alcotest.(check (list int))
    "levels drain high-to-low, LRU within a level"
    [ 4; 2; 3; 6; 1; 5 ] (drain rs)

(* Equal recency everywhere: only the level decides, arrival breaks the
   within-level tie. *)
let test_level_aware_equal_recency () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Level_aware () in
  List.iter
    (fun (index, level) ->
      Vm.Resident_set.insert rs ~index ~bytes:8 ~level ~now:7)
    [ (1, 0); (2, 1); (3, 2); (4, 0); (5, 1); (6, 2) ];
  Alcotest.(check (list int))
    "same stamp: level order, then arrival" [ 3; 6; 2; 5; 1; 4 ] (drain rs)

(* LRU with touch stamps that go *backwards*: processors keep private
   virtual clocks, so an object shared across processors can be touched
   at a smaller [now] than its current stamp.  The lowered key must win
   the next pick. *)
let test_lru_clock_regression () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Lru () in
  Vm.Resident_set.insert rs ~index:1 ~bytes:16 ~level:0 ~now:100;
  Vm.Resident_set.insert rs ~index:2 ~bytes:16 ~level:0 ~now:50;
  (* Another processor, clock behind: index 1 is now the least recent. *)
  Vm.Resident_set.touch rs ~index:1 ~now:10;
  Alcotest.(check (list int)) "lowered stamp picks first" [ 1; 2 ] (drain rs)

(* LRU raising touches (the common case, deferred restamp in the heap):
   the re-touched entry moves behind the untouched ones. *)
let test_lru_restamp () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Lru () in
  List.iter
    (fun i -> Vm.Resident_set.insert rs ~index:i ~bytes:16 ~level:0 ~now:i)
    [ 1; 2; 3 ];
  Vm.Resident_set.touch rs ~index:1 ~now:99;
  Alcotest.(check (list int)) "touched entry evicts last" [ 2; 3; 1 ]
    (drain rs)

(* Clock: the hand clears reference bits as it passes — a touched
   segment survives one sweep, an untouched one is taken. *)
let test_clock_second_chance () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Clock () in
  List.iter
    (fun i -> Vm.Resident_set.insert rs ~index:i ~bytes:16 ~level:0 ~now:i)
    [ 1; 2; 3 ];
  Vm.Resident_set.touch rs ~index:2 ~now:9;
  Alcotest.(check (list int))
    "ring order with 2's reference bit spent on the first pass"
    [ 1; 3; 2 ] (drain rs)

(* Index reuse: the table hands an index back out after a free the
   controller heard about only through re-admission; the stale
   incarnation must never be picked. *)
let test_incarnation_reuse () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Lru () in
  Vm.Resident_set.insert rs ~index:5 ~bytes:16 ~level:0 ~now:1;
  Vm.Resident_set.insert rs ~index:9 ~bytes:16 ~level:0 ~now:2;
  (* Force the old incarnation's node into the heap. *)
  ignore (Vm.Resident_set.pick rs ~avoid:9 ~evictable:everything);
  Vm.Resident_set.remove rs ~index:5;
  Vm.Resident_set.insert rs ~index:5 ~bytes:16 ~level:0 ~now:50;
  Alcotest.(check (list int))
    "reused index sorts by its new stamp" [ 9; 5 ] (drain rs);
  Alcotest.(check int) "drained empty" 0 (Vm.Resident_set.count rs)

let test_envelope_accounting () =
  let rs = Vm.Resident_set.create ~policy:Vm.Policy.Lru ~ram_bytes:100 () in
  Vm.Resident_set.insert rs ~index:1 ~bytes:60 ~level:0 ~now:1;
  Alcotest.(check bool) "60/100 fits" false
    (Vm.Resident_set.over_envelope rs ~extra:0);
  Alcotest.(check bool) "60+50 would not" true
    (Vm.Resident_set.over_envelope rs ~extra:50);
  Vm.Resident_set.insert rs ~index:2 ~bytes:60 ~level:0 ~now:2;
  Alcotest.(check bool) "120/100 is over" true
    (Vm.Resident_set.over_envelope rs ~extra:0);
  Alcotest.(check int) "bytes tracked" 120 (Vm.Resident_set.resident_bytes rs);
  Vm.Resident_set.remove rs ~index:1;
  Alcotest.(check int) "bytes released" 60 (Vm.Resident_set.resident_bytes rs)

(* ---------------- Manager: level-aware end to end ---------------- *)

(* Under a RAM envelope, the level-aware manager evicts the level-2
   segment — the most recently touched object in the set — before any
   level-0 one. *)
let test_manager_level_aware () =
  let m = mk () in
  let table = K.Machine.table m in
  let mm =
    MM.Swapping_level.create_with ~ram_bytes:96 m ~heap_bytes:(64 * 1024)
  in
  let alloc_global () =
    MM.Swapping_level.allocate mm ~data_length:32 ~access_length:0
      ~otype:Obj_type.Generic
  in
  let a0 = alloc_global () in
  let b2 =
    MM.Swapping_level.allocate_local mm ~level:2 ~data_length:32
      ~access_length:0 ~otype:Obj_type.Generic
  in
  let _c0 = alloc_global () in
  (* b2 is the most recently used object in the set... *)
  MM.Swapping_level.touch mm b2;
  Alcotest.(check int) "three residents, envelope full" 96
    (MM.Swapping_level.resident_bytes mm);
  (* ...and the next admission still evicts it first. *)
  let _d0 = alloc_global () in
  let swapped a = (Object_table.entry_of_access table a).Object_table.swapped_out in
  Alcotest.(check bool) "level-2 segment went out" true (swapped b2);
  Alcotest.(check bool) "level-0 stayed" false (swapped a0);
  Alcotest.(check int) "one eviction" 1 (MM.Swapping_level.stats mm).MM.swap_outs;
  (* Touch brings it back (and evicts a level-0 victim to make room). *)
  MM.Swapping_level.touch mm b2;
  Alcotest.(check bool) "touch faulted it in" false (swapped b2)

(* ---------------- Swapping vs Nonswapping equality ---------------- *)

type ops = {
  op_alloc : data_length:int -> Access.t;
  op_touch : Access.t -> unit;
  op_free : Access.t -> unit;
  op_swap_outs : unit -> int;
}

let nonswap_ops m =
  let mm = MM.Nonswapping.create m ~heap_bytes:(1 lsl 20) in
  {
    op_alloc =
      (fun ~data_length ->
        MM.Nonswapping.allocate mm ~data_length ~access_length:0
          ~otype:Obj_type.Generic);
    op_touch = (fun a -> MM.Nonswapping.touch mm a);
    op_free = (fun a -> MM.Nonswapping.free mm a);
    op_swap_outs = (fun () -> (MM.Nonswapping.stats mm).MM.swap_outs);
  }

let swap_ops m =
  let mm = MM.Swapping.create m ~heap_bytes:(1 lsl 20) in
  {
    op_alloc =
      (fun ~data_length ->
        MM.Swapping.allocate mm ~data_length ~access_length:0
          ~otype:Obj_type.Generic);
    op_touch = (fun a -> MM.Swapping.touch mm a);
    op_free = (fun a -> MM.Swapping.free mm a);
    op_swap_outs = (fun () -> (MM.Swapping.stats mm).MM.swap_outs);
  }

(* Interpret one random script — slot-indexed allocate/touch/free with
   reads folded into a checksum — against a manager. *)
let run_script mk_ops script =
  let m = mk ~trace:true () in
  let ops = mk_ops m in
  let slots = Array.make 8 None in
  let sum = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"worker" (fun () ->
         List.iter
           (fun (code, v) ->
             let s = v mod 8 in
             (match code with
             | 0 ->
               (match slots.(s) with
               | Some o -> ops.op_free o
               | None -> ());
               let o = ops.op_alloc ~data_length:(16 + (8 * (v mod 4))) in
               K.Machine.write_word m o ~offset:0 v;
               slots.(s) <- Some o
             | 1 -> (
               match slots.(s) with
               | Some o ->
                 ops.op_touch o;
                 sum := !sum + K.Machine.read_word m o ~offset:0
               | None -> ())
             | _ -> (
               match slots.(s) with
               | Some o ->
                 ops.op_free o;
                 slots.(s) <- None
               | None -> ()));
             K.Machine.compute m 1)
           script));
  ignore (K.Machine.run m);
  let stream = List.map Obs.Event.to_string (K.Machine.events m) in
  (stream, !sum, ops.op_swap_outs ())

(* qcheck: on any workload whose live set fits in RAM, the swapping
   manager is observationally identical to the non-swapping one — same
   event stream byte for byte, same read-back checksum — and it never
   evicts. *)
let prop_swap_nonswap_equal =
  QCheck2.Test.make
    ~name:"swapping == non-swapping when the working set fits" ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 60) (pair (int_range 0 2) (int_range 0 1000)))
    (fun script ->
      let s_ns, sum_ns, _ = run_script nonswap_ops script in
      let s_sw, sum_sw, outs = run_script swap_ops script in
      s_ns = s_sw && sum_ns = sum_sw && outs = 0)

(* ---------------- Swap-store crash sweep ---------------- *)

let temp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "test_vm_%d_%d.journal" (Unix.getpid ()) !n

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Truncate the journal at every byte across a superseding swap-out
   write: recovery must never raise, and the image read back is always
   whole — the new image once its frame committed, the old one (or
   nothing) before that.  A torn tail can lose a swap-out; it can never
   corrupt one. *)
let test_swap_out_crash_sweep () =
  let path = temp_path () in
  let torn = path ^ ".torn" in
  let index = 3 in
  let image_a = Bytes.make 64 'a' in
  let image_b = Bytes.make 96 'b' in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; torn; torn ^ ".tmp" ])
    (fun () ->
      let store = Store.open_ ~sync_every:1 path in
      let dev = Swap_store.device store in
      Vm.Swap_device.write dev ~index ~now_ns:1000 image_a;
      Store.close store;
      let len_a = String.length (read_file path) in
      let store = Store.open_ ~sync_every:1 path in
      let dev = Swap_store.device store in
      Vm.Swap_device.write dev ~index ~now_ns:2000 image_b;
      Store.close store;
      let whole = read_file path in
      let total = String.length whole in
      Alcotest.(check bool) "second write extended the journal" true
        (total > len_a);
      for cut = 0 to total do
        write_file torn (String.sub whole 0 cut);
        (* Reopen at the torn point: recovery never raises. *)
        let s = Store.open_ torn in
        let d = Swap_store.device s in
        (match Vm.Swap_device.read d ~index with
        | None ->
          Alcotest.(check bool)
            (Printf.sprintf "no image only before the first commit (cut %d)"
               cut)
            true (cut < len_a)
        | Some img ->
          let expected = if cut >= total then image_b else image_a in
          Alcotest.(check bytes)
            (Printf.sprintf "image whole at cut %d" cut)
            expected img);
        Store.close s
      done)

(* ---------------- Clean evictions (dirty bit) ---------------- *)

let counter_value m name =
  match Obs.Metrics.find_counter (K.Machine.metrics m) name with
  | Some c -> Obs.Metrics.counter_value c
  | None -> 0

(* A victim whose data never changed since its last swap-in, and whose
   image the device still holds, goes out without a device write: the
   device's write count and swap.bytes_out stand still while
   swap.clean_evictions ticks. *)
let test_clean_eviction_skips_write () =
  let m = mk () in
  let dev = Vm.Swap_device.in_memory () in
  (* Envelope fits exactly two 32-byte segments, LRU victims. *)
  let mm = MM.Swapping.create_with ~ram_bytes:64 ~device:dev m ~heap_bytes:(1 lsl 16) in
  let alloc () =
    MM.Swapping.allocate mm ~data_length:32 ~access_length:0
      ~otype:Obj_type.Generic
  in
  let a = alloc () in
  K.Machine.write_word m a ~offset:0 7;  (* a is dirty *)
  let b = alloc () in
  let _c = alloc () in
  (* a (LRU, dirty) went to the device. *)
  Alcotest.(check int) "first eviction wrote" 1 (Vm.Swap_device.stats dev).Vm.Swap_device.writes;
  MM.Swapping.touch mm a;  (* back in: dirty cleared, image retained *)
  Alcotest.(check bool) "image retained across swap-in" true
    (Vm.Swap_device.mem dev ~index:(Access.index a));
  MM.Swapping.touch mm b;  (* evicts c (no image: writes), reloads b *)
  let writes_before = (Vm.Swap_device.stats dev).Vm.Swap_device.writes in
  let bytes_before = counter_value m "swap.bytes_out" in
  MM.Swapping.touch mm _c;  (* evicts a: untouched since swap-in => clean *)
  Alcotest.(check int) "clean eviction skipped the device write"
    writes_before (Vm.Swap_device.stats dev).Vm.Swap_device.writes;
  Alcotest.(check int) "no bytes charged out" bytes_before
    (counter_value m "swap.bytes_out");
  Alcotest.(check int) "swap.clean_evictions ticked" 1
    (counter_value m "swap.clean_evictions");
  (* The clean victim still reads back whole. *)
  MM.Swapping.touch mm a;
  Alcotest.(check int) "content survived the writeless eviction" 7
    (K.Machine.read_word m a ~offset:0)

(* Re-dirtying a resident segment voids the shortcut: the next eviction
   writes the device again. *)
let test_dirty_eviction_rewrites () =
  let m = mk () in
  let dev = Vm.Swap_device.in_memory () in
  let mm = MM.Swapping.create_with ~ram_bytes:64 ~device:dev m ~heap_bytes:(1 lsl 16) in
  let alloc () =
    MM.Swapping.allocate mm ~data_length:32 ~access_length:0
      ~otype:Obj_type.Generic
  in
  let a = alloc () in
  K.Machine.write_word m a ~offset:0 1;
  let b = alloc () in
  let _c = alloc () in  (* evicts a (dirty: writes) *)
  MM.Swapping.touch mm a;  (* back in, clean *)
  K.Machine.write_word m a ~offset:0 2;  (* dirty again *)
  MM.Swapping.touch mm b;  (* evicts c *)
  let writes_before = (Vm.Swap_device.stats dev).Vm.Swap_device.writes in
  MM.Swapping.touch mm _c;  (* evicts a: dirty => must write *)
  Alcotest.(check int) "dirty victim wrote the device" (writes_before + 1)
    (Vm.Swap_device.stats dev).Vm.Swap_device.writes;
  Alcotest.(check int) "no clean eviction counted" 0
    (counter_value m "swap.clean_evictions");
  MM.Swapping.touch mm a;
  Alcotest.(check int) "latest content read back" 2
    (K.Machine.read_word m a ~offset:0)

(* Index reuse after a free must never let a stale retained image satisfy
   a clean eviction for the new object. *)
let test_stale_image_invalidated () =
  let m = mk () in
  let dev = Vm.Swap_device.in_memory () in
  let mm = MM.Swapping.create_with ~ram_bytes:64 ~device:dev m ~heap_bytes:(1 lsl 16) in
  let alloc () =
    MM.Swapping.allocate mm ~data_length:32 ~access_length:0
      ~otype:Obj_type.Generic
  in
  let a = alloc () in
  K.Machine.write_word m a ~offset:0 99;
  let b = alloc () in
  let _c = alloc () in  (* evicts a *)
  MM.Swapping.touch mm a;  (* retained image for a's index *)
  let a_index = Access.index a in
  MM.Swapping.free mm a;  (* free drops the stale image *)
  Alcotest.(check bool) "free invalidated the retained image" false
    (Vm.Swap_device.mem dev ~index:a_index);
  (* A fresh allocation reusing the index round-trips its own image: the
     clean-eviction shortcut may only ever serve bytes this incarnation
     wrote. *)
  let d = alloc () in
  K.Machine.write_word m d ~offset:0 5;
  MM.Swapping.touch mm b;  (* evict the LRU resident, reload b *)
  MM.Swapping.touch mm d;
  MM.Swapping.touch mm b;
  MM.Swapping.touch mm d;  (* second pass can ride the retained image *)
  Alcotest.(check int) "reused index reads its own image" 5
    (K.Machine.read_word m d ~offset:0)

let suite =
  [
    Alcotest.test_case "level-aware: high levels evict first" `Quick
      test_level_aware_order;
    Alcotest.test_case "level-aware: equal recency, level decides" `Quick
      test_level_aware_equal_recency;
    Alcotest.test_case "lru: backwards clock lowers the key" `Quick
      test_lru_clock_regression;
    Alcotest.test_case "lru: re-touch defers restamp" `Quick test_lru_restamp;
    Alcotest.test_case "clock: second chance" `Quick test_clock_second_chance;
    Alcotest.test_case "reused index supersedes its incarnation" `Quick
      test_incarnation_reuse;
    Alcotest.test_case "envelope accounting" `Quick test_envelope_accounting;
    Alcotest.test_case "manager: level-aware eviction end to end" `Quick
      test_manager_level_aware;
    QCheck_alcotest.to_alcotest prop_swap_nonswap_equal;
    Alcotest.test_case "swap store: crash sweep across a swap-out" `Quick
      test_swap_out_crash_sweep;
    Alcotest.test_case "clean eviction skips the device write" `Quick
      test_clean_eviction_skips_write;
    Alcotest.test_case "dirty eviction writes the device" `Quick
      test_dirty_eviction_rewrites;
    Alcotest.test_case "stale retained image is invalidated on reuse" `Quick
      test_stale_image_invalidated;
  ]
