(* Fault injection, recovery, and timed operations (DESIGN.md §8).

   Covers the fault-record ordering contract, fault-port routing, timed
   send/receive (both firing and non-firing), bounded allocation retry,
   processor hard-fault recovery (the machine must degrade to N-1, not
   panic), supervision restart policies, and — via qcheck — the post-run
   invariants of whole machines run under random seeded fault plans. *)

open I432
open Imax
module K = I432_kernel
module Obs = I432_obs
module Fi = I432_fi.Fi

let mk ?(processors = 1) ?(trace = false) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        K.Machine.processors;
        trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
      }
    ()

let has_kind m kind =
  List.exists (fun (e : Obs.Event.t) -> e.Obs.Event.kind = kind)
    (K.Machine.events m)

(* ---------------- fault recording ---------------- *)

(* Regression for the documented contract: Machine.faults returns emission
   order (first fault recorded first), even though the machine accumulates
   newest-first internally. *)
let test_faults_ordering () =
  let m = mk () in
  List.iter
    (fun (name, prio) ->
      ignore
        (K.Machine.spawn m ~name ~priority:prio (fun () ->
             Fault.raise_fault (Fault.Protocol name))))
    [ ("first", 12); ("second", 8); ("third", 4) ];
  let _ = K.Machine.run m in
  Alcotest.(check (list string))
    "emission order" [ "first"; "second"; "third" ]
    (List.map fst (K.Machine.faults m))

let test_fault_port_routing () =
  let m = mk () in
  let fault_port =
    K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo ()
  in
  K.Machine.set_fault_port m fault_port;
  List.iter
    (fun (name, prio) ->
      ignore
        (K.Machine.spawn m ~name ~priority:prio (fun () ->
             Fault.raise_fault (Fault.Protocol "bang"))))
    [ ("loud", 12); ("quiet", 4) ];
  let corpses = ref [] in
  ignore
    (K.Machine.spawn m ~name:"supervisor" ~priority:1 (fun () ->
         for _ = 1 to 2 do
           let corpse = K.Machine.receive m ~port:fault_port in
           corpses :=
             (K.Machine.process_state m corpse).K.Process.name :: !corpses
         done));
  let _ = K.Machine.run m in
  Alcotest.(check (list string))
    "corpses in fault order" [ "loud"; "quiet" ] (List.rev !corpses);
  Alcotest.(check int) "both recorded" 2 (List.length (K.Machine.faults m))

(* ---------------- timed operations ---------------- *)

let test_receive_timeout_fires () =
  let m = mk ~trace:true () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let got = ref (Some (Access.make ~index:0 ~rights:Rights.full)) in
  ignore
    (K.Machine.spawn m ~name:"waiter" (fun () ->
         got := K.Machine.receive_timeout m ~port ~timeout_ns:50_000));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "timed out" true (!got = None);
  Alcotest.(check bool) "Timeout_fired emitted" true
    (has_kind m Obs.Event.Timeout_fired);
  (* The waiter must have left the port's receiver queue behind it. *)
  Alcotest.(check (list string)) "no invariant violations" []
    (Fi.check_invariants m)

let test_receive_timeout_delivered () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let got = ref None in
  ignore
    (K.Machine.spawn m ~name:"waiter" (fun () ->
         got := K.Machine.receive_timeout m ~port ~timeout_ns:5_000_000));
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         K.Machine.delay m ~ns:10_000;
         let o = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.write_word m o ~offset:0 77;
         K.Machine.send m ~port ~msg:o));
  let _ = K.Machine.run m in
  (match !got with
  | Some msg ->
    Alcotest.(check int) "payload" 77 (K.Machine.read_word m msg ~offset:0)
  | None -> Alcotest.fail "receive timed out despite a sender");
  Alcotest.(check int) "no faults" 0 (List.length (K.Machine.faults m))

let test_receive_timeout_poll () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let polled = ref (Some (Access.make ~index:0 ~rights:Rights.full)) in
  ignore
    (K.Machine.spawn m ~name:"poller" (fun () ->
         polled := K.Machine.receive_timeout m ~port ~timeout_ns:0));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "empty poll returns None" true (!polled = None)

let test_send_timeout_fires () =
  let m = mk ~trace:true () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let accepted = ref true in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         let a = K.Machine.allocate_generic m ~data_length:8 () in
         let b = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.send m ~port ~msg:a;
         (* port now full; nobody ever receives *)
         accepted := K.Machine.send_timeout m ~port ~msg:b ~timeout_ns:40_000));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "send timed out" false !accepted;
  Alcotest.(check bool) "Timeout_fired emitted" true
    (has_kind m Obs.Event.Timeout_fired);
  Alcotest.(check (list string)) "no invariant violations" []
    (Fi.check_invariants m)

let test_send_timeout_accepted () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let accepted = ref false in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         let a = K.Machine.allocate_generic m ~data_length:8 () in
         let b = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.send m ~port ~msg:a;
         accepted :=
           K.Machine.send_timeout m ~port ~msg:b ~timeout_ns:5_000_000));
  ignore
    (K.Machine.spawn m ~name:"drain" (fun () ->
         K.Machine.delay m ~ns:20_000;
         ignore (K.Machine.receive m ~port);
         ignore (K.Machine.receive m ~port)));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "late space still accepts" true !accepted;
  Alcotest.(check int) "drained" 0
    (let table = K.Machine.table m in
     let left = ref 0 in
     Object_table.iter_valid
       (fun e ->
         match e.Object_table.payload with
         | Some (K.Port.Port_state p) -> left := !left + K.Port.queue_length p
         | Some _ | None -> ())
       table;
     !left)

(* ---------------- bounded allocation retry ---------------- *)

let test_allocate_retry_recovers () =
  let m = mk ~trace:true () in
  K.Machine.schedule_injection m ~at_ns:0 (K.Machine.Inj_alloc_fault 2);
  let reclaims = ref 0 in
  K.Machine.set_reclaim_hook m (Some (fun () -> incr reclaims; 0));
  let ok = ref false in
  ignore
    (K.Machine.spawn m ~name:"alloc" (fun () ->
         let o =
           K.Machine.allocate_retry m (K.Machine.global_sro m) ~data_length:16
             ~access_length:4 ~otype:Obj_type.Generic ()
         in
         K.Machine.write_word m o ~offset:0 1;
         ok := true));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "allocation eventually succeeded" true !ok;
  Alcotest.(check int) "reclaim hook ran per retry" 2 !reclaims;
  Alcotest.(check bool) "Alloc_retry emitted" true
    (has_kind m Obs.Event.Alloc_retry);
  Alcotest.(check int) "no faults" 0 (List.length (K.Machine.faults m))

let test_allocate_retry_exhausts () =
  let m = mk () in
  (* More forced failures than 1 + max_retries attempts: must re-raise. *)
  K.Machine.schedule_injection m ~at_ns:0 (K.Machine.Inj_alloc_fault 10);
  ignore
    (K.Machine.spawn m ~name:"alloc" (fun () ->
         ignore
           (K.Machine.allocate_retry m (K.Machine.global_sro m) ~max_retries:2
              ~backoff_ns:1_000 ~data_length:16 ~access_length:4
              ~otype:Obj_type.Generic ())));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "faulted with Storage_exhausted" true
    (match K.Machine.faults m with
    | [ (_, Fault.Storage_exhausted _) ] -> true
    | _ -> false)

(* ---------------- processor hard-fault recovery ---------------- *)

(* 4 GDPs, one hard-faulted mid-run: the workload must complete on the
   remaining 3 without a panic, the victim's process must be requeued, and
   the same seed must replay an identical event stream. *)
let chaos_run () =
  let m = mk ~processors:4 ~trace:true () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let consumed = ref 0 in
  for c = 1 to 4 do
    ignore
      (K.Machine.spawn m
         ~name:(Printf.sprintf "p%d" c)
         (fun () ->
           for _ = 1 to 8 do
             let o = K.Machine.allocate_generic m ~data_length:16 () in
             ignore (K.Machine.send_timeout m ~port ~msg:o ~timeout_ns:400_000);
             K.Machine.compute m 20
           done))
  done;
  ignore
    (K.Machine.spawn m ~name:"sink" (fun () ->
         let quiet = ref 0 in
         while !quiet < 3 do
           match K.Machine.receive_timeout m ~port ~timeout_ns:100_000 with
           | Some _ ->
             quiet := 0;
             incr consumed
           | None -> incr quiet
         done));
  K.Machine.schedule_injection m ~at_ns:120_000 (K.Machine.Inj_cpu_fault 2);
  let report = K.Machine.run m in
  (m, report, !consumed)

let test_processor_failure_recovery () =
  let m, report, consumed = chaos_run () in
  Alcotest.(check int) "one GDP offline" 3 (K.Machine.online_processors m);
  Alcotest.(check bool) "work still completed" true (consumed > 0);
  Alcotest.(check int) "all processes ran to completion" 5
    report.K.Machine.completed;
  Alcotest.(check bool) "Cpu_offline emitted" true
    (has_kind m Obs.Event.Cpu_offline);
  Alcotest.(check (list string)) "no invariant violations" []
    (Fi.check_invariants m)

let test_processor_failure_deterministic () =
  let m1, _, c1 = chaos_run () in
  let m2, _, c2 = chaos_run () in
  let stream m = List.map Obs.Event.to_string (K.Machine.events m) in
  Alcotest.(check int) "same consumption" c1 c2;
  Alcotest.(check bool) "identical event streams" true (stream m1 = stream m2)

let test_fail_processor_idempotent () =
  let m = mk ~processors:3 () in
  K.Machine.fail_processor m 1;
  K.Machine.fail_processor m 1;
  Alcotest.(check int) "counted once" 2 (K.Machine.online_processors m)

(* ---------------- supervision ---------------- *)

let test_supervised_restart () =
  let m = mk ~trace:true () in
  let pm = Process_manager.create m in
  let attempts = ref 0 in
  let finished = ref false in
  let access =
    Process_manager.create_supervised pm ~name:"flaky"
      ~policy:{ Process_manager.max_restarts = 3; backoff_ns = 10_000 }
      (fun () ->
        incr attempts;
        if !attempts = 1 then Fault.raise_fault (Fault.Protocol "first try")
        else finished := true)
  in
  let _ = K.Machine.run m in
  Alcotest.(check int) "two incarnations ran" 2 !attempts;
  Alcotest.(check bool) "second incarnation finished" true !finished;
  Alcotest.(check int) "one restart consumed" 1
    (Process_manager.restart_count pm access);
  Alcotest.(check bool) "Proc_restarted emitted" true
    (has_kind m Obs.Event.Proc_restarted);
  Alcotest.(check bool) "incarnation chain followed" true
    (Access.index (Process_manager.current_incarnation pm access)
    <> Access.index access)

let test_supervised_budget () =
  let m = mk () in
  let pm = Process_manager.create m in
  let attempts = ref 0 in
  let access =
    Process_manager.create_supervised pm ~name:"doomed"
      ~policy:{ Process_manager.max_restarts = 2; backoff_ns = 1_000 }
      (fun () ->
        incr attempts;
        Fault.raise_fault (Fault.Protocol "always"))
  in
  let _ = K.Machine.run m in
  Alcotest.(check int) "initial run + 2 restarts" 3 !attempts;
  Alcotest.(check int) "budget spent" 2
    (Process_manager.restart_count pm access);
  Alcotest.(check int) "every incarnation recorded a fault" 3
    (List.length (K.Machine.faults m))

let test_unsupervised_untouched () =
  let m = mk () in
  let pm = Process_manager.create m in
  let attempts = ref 0 in
  ignore
    (Process_manager.create_process pm ~name:"mortal" (fun () ->
         incr attempts;
         Fault.raise_fault (Fault.Protocol "once")));
  let _ = K.Machine.run m in
  Alcotest.(check int) "no restart" 1 !attempts

(* ---------------- whole-machine chaos invariants ---------------- *)

(* A small timeout-tolerant workload run under a seeded random plan; after
   the run every Fi invariant must hold, whatever the plan did. *)
let run_under_plan seed =
  let m = mk ~processors:3 ~trace:true () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  for c = 1 to 3 do
    ignore
      (K.Machine.spawn m
         ~name:(Printf.sprintf "p%d" c)
         (fun () ->
           for _ = 1 to 5 do
             let o = K.Machine.allocate_generic m ~data_length:16 () in
             ignore (K.Machine.send_timeout m ~port ~msg:o ~timeout_ns:100_000);
             K.Machine.delay m ~ns:10_000
           done))
  done;
  ignore
    (K.Machine.spawn m ~name:"sink" (fun () ->
         let quiet = ref 0 in
         while !quiet < 3 do
           match K.Machine.receive_timeout m ~port ~timeout_ns:50_000 with
           | Some _ -> quiet := 0
           | None -> incr quiet
         done));
  let plan =
    Fi.random ~seed ~horizon_ns:200_000 ~processors:3 ~count:3 ~cpu_faults:1
  in
  Fi.arm m plan;
  ignore (K.Machine.run ~max_ns:50_000_000 m);
  m

let test_chaos_invariants_fixed_seed () =
  let m = run_under_plan 42 in
  Alcotest.(check (list string)) "invariants hold" [] (Fi.check_invariants m);
  Alcotest.(check bool) "plan fired" true (has_kind m Obs.Event.Fi_inject)

let prop_chaos_invariants =
  QCheck2.Test.make ~name:"random fault plans preserve machine invariants"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> Fi.check_invariants (run_under_plan seed) = [])

let test_plan_generation_deterministic () =
  let gen () =
    Fi.random ~seed:9 ~horizon_ns:1_000_000 ~processors:4 ~count:6
      ~cpu_faults:2
  in
  Alcotest.(check string) "same seed, same plan" (Fi.to_string (gen ()))
    (Fi.to_string (gen ()));
  let p = gen () in
  Alcotest.(check bool) "events sorted by instant" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Fi.at_ns <= b.Fi.at_ns && sorted rest
       | _ -> true
     in
     sorted p.Fi.events);
  (* 2 cpu faults requested over 4 processors: both may fire, but the ids
     must be distinct and leave a survivor. *)
  let cpu_ids =
    List.filter_map
      (fun (e : Fi.event) ->
        match e.Fi.inj with
        | K.Machine.Inj_cpu_fault id -> Some id
        | _ -> None)
      p.Fi.events
  in
  Alcotest.(check bool) "distinct victims" true
    (List.length (List.sort_uniq compare cpu_ids) = List.length cpu_ids);
  Alcotest.(check bool) "a survivor remains" true (List.length cpu_ids <= 3)

let suite =
  [
    Alcotest.test_case "faults list is emission-ordered" `Quick
      test_faults_ordering;
    Alcotest.test_case "fault port routes corpses in order" `Quick
      test_fault_port_routing;
    Alcotest.test_case "receive timeout fires" `Quick test_receive_timeout_fires;
    Alcotest.test_case "receive timeout beaten by sender" `Quick
      test_receive_timeout_delivered;
    Alcotest.test_case "zero-timeout receive polls" `Quick
      test_receive_timeout_poll;
    Alcotest.test_case "send timeout fires on a full port" `Quick
      test_send_timeout_fires;
    Alcotest.test_case "send timeout beaten by receiver" `Quick
      test_send_timeout_accepted;
    Alcotest.test_case "allocation retry recovers" `Quick
      test_allocate_retry_recovers;
    Alcotest.test_case "allocation retry re-raises when spent" `Quick
      test_allocate_retry_exhausts;
    Alcotest.test_case "hard fault degrades to N-1" `Quick
      test_processor_failure_recovery;
    Alcotest.test_case "hard-fault run is deterministic" `Quick
      test_processor_failure_deterministic;
    Alcotest.test_case "fail_processor is idempotent" `Quick
      test_fail_processor_idempotent;
    Alcotest.test_case "supervised process restarts" `Quick
      test_supervised_restart;
    Alcotest.test_case "restart budget is enforced" `Quick
      test_supervised_budget;
    Alcotest.test_case "unsupervised faults do not restart" `Quick
      test_unsupervised_untouched;
    Alcotest.test_case "fixed-seed chaos keeps invariants" `Quick
      test_chaos_invariants_fixed_seed;
    QCheck_alcotest.to_alcotest prop_chaos_invariants;
    Alcotest.test_case "plan generation is deterministic" `Quick
      test_plan_generation_deterministic;
  ]
