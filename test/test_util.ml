(* Tests for the utility substrate: PRNG determinism, statistics, ring
   buffers — including qcheck properties on the ring buffer invariants. *)

open I432_util

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create ~seed:7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_prng_float_range () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_exponential_positive () =
  let t = Prng.create ~seed:13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential t ~mean:5.0 > 0.0)
  done

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential t ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 3.0" mean)
    true
    (mean > 2.8 && mean < 3.2)

let test_prng_choose () =
  let t = Prng.create ~seed:19 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = Prng.choose t arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) arr)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:23 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ---------------- Stats ---------------- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "mean" 3.0 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "p50" 3.0 s.Stats.p50;
  Alcotest.(check int) "count" 5 s.Stats.count

let test_stats_stddev () =
  let s = Stats.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check bool)
    "sample stddev ~2.138" true
    (abs_float (s.Stats.stddev -. 2.13809) < 1e-4)

let test_stats_percentile_interpolates () =
  let v = Stats.percentile [| 10.0; 20.0 |] 0.5 in
  check_float "interpolated median" 15.0 v

let test_stats_empty () =
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize [||]))

let test_jain_equal () =
  check_float "equal shares" 1.0 (Stats.jain_fairness [| 5.0; 5.0; 5.0 |])

let test_jain_skewed () =
  let j = Stats.jain_fairness [| 1.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "one-taker ~1/3" true (abs_float (j -. (1.0 /. 3.0)) < 1e-9)

let test_jain_all_zero () =
  check_float "degenerate zeros" 1.0 (Stats.jain_fairness [| 0.0; 0.0 |])

let test_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; 4.5 |] in
  Alcotest.(check (array int)) "bucket counts" [| 1; 2; 0; 1 |] h.Stats.in_range;
  Alcotest.(check int) "no underflow" 0 h.Stats.underflow;
  Alcotest.(check int) "4.5 overflows" 1 h.Stats.overflow

let test_histogram_edges () =
  (* Exactly-lo lands in the first bucket; exactly-hi overflows; NaN is
     ignored entirely. *)
  let h =
    Stats.histogram ~buckets:2 ~lo:0.0 ~hi:2.0
      [| 0.0; 2.0; -0.001; 1.999; Float.nan |]
  in
  Alcotest.(check (array int)) "lo inclusive, hi exclusive" [| 1; 1 |]
    h.Stats.in_range;
  Alcotest.(check int) "below lo underflows" 1 h.Stats.underflow;
  Alcotest.(check int) "hi itself overflows" 1 h.Stats.overflow

(* ---------------- Table ---------------- *)

let test_table_renders () =
  let s =
    Table.render ~title:"T" ~header:[ "a"; "b" ]
      ~aligns:[ Table.Left; Table.Right ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  Alcotest.(check bool) "mentions header" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "yy" && contains "22")

let test_table_ragged () =
  Alcotest.check_raises "ragged rows" (Invalid_argument "Table.render: ragged rows")
    (fun () ->
      ignore
        (Table.render ~title:"T" ~header:[ "a"; "b" ]
           ~aligns:[ Table.Left; Table.Right ]
           [ [ "only-one" ] ]))

let test_fmt_us () = Alcotest.(check string) "65us" "65.00" (Table.fmt_us 65_000)

(* ---------------- Ring buffer ---------------- *)

let test_ring_fifo_order () =
  let rb = Ring_buffer.create 4 in
  Ring_buffer.push rb 1;
  Ring_buffer.push rb 2;
  Ring_buffer.push rb 3;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ring_buffer.pop rb);
  Ring_buffer.push rb 4;
  Ring_buffer.push rb 5;
  Alcotest.(check (list int)) "order preserved" [ 2; 3; 4; 5 ]
    (Ring_buffer.to_list rb)

let test_ring_full () =
  let rb = Ring_buffer.create 2 in
  Ring_buffer.push rb 1;
  Ring_buffer.push rb 2;
  Alcotest.(check bool) "full" true (Ring_buffer.is_full rb);
  Alcotest.check_raises "push on full" (Invalid_argument "Ring_buffer.push: full")
    (fun () -> Ring_buffer.push rb 3)

let test_ring_empty () =
  let rb = Ring_buffer.create 2 in
  Alcotest.(check (option int)) "pop empty" None (Ring_buffer.pop rb);
  Alcotest.(check (option int)) "peek empty" None (Ring_buffer.peek rb)

let test_ring_clear () =
  let rb = Ring_buffer.create 3 in
  Ring_buffer.push rb 1;
  Ring_buffer.clear rb;
  Alcotest.(check bool) "empty after clear" true (Ring_buffer.is_empty rb)

let test_ring_wraparound () =
  let rb = Ring_buffer.create 3 in
  for round = 0 to 9 do
    Ring_buffer.push rb round;
    Alcotest.(check (option int)) "wrap pop" (Some round) (Ring_buffer.pop rb)
  done

(* qcheck: a ring buffer driven by an arbitrary push/pop script behaves like
   a FIFO queue. *)
let prop_ring_matches_queue =
  QCheck2.Test.make ~name:"ring buffer behaves as bounded FIFO" ~count:300
    QCheck2.Gen.(list (pair bool small_int))
    (fun script ->
      let rb = Ring_buffer.create 8 in
      let q = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then
            if Ring_buffer.is_full rb then true
            else begin
              Ring_buffer.push rb v;
              Queue.push v q;
              Ring_buffer.length rb = Queue.length q
            end
          else
            let expected = if Queue.is_empty q then None else Some (Queue.pop q) in
            Ring_buffer.pop rb = expected)
        script)

let prop_stats_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let p25 = Stats.percentile arr 0.25 in
      let p75 = Stats.percentile arr 0.75 in
      p25 <= p75)

let prop_jain_bounds =
  QCheck2.Test.make ~name:"Jain index in (0,1]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_bound_inclusive 100.0))
    (fun xs ->
      let j = Stats.jain_fairness (Array.of_list xs) in
      j > 0.0 && j <= 1.0 +. 1e-9)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int invalid", `Quick, test_prng_int_invalid);
    ("prng float range", `Quick, test_prng_float_range);
    ("prng exponential positive", `Quick, test_prng_exponential_positive);
    ("prng exponential mean", `Quick, test_prng_exponential_mean);
    ("prng choose", `Quick, test_prng_choose);
    ("prng shuffle permutation", `Quick, test_prng_shuffle_permutation);
    ("stats summary", `Quick, test_stats_summary);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percentile interpolates", `Quick, test_stats_percentile_interpolates);
    ("stats empty", `Quick, test_stats_empty);
    ("jain equal", `Quick, test_jain_equal);
    ("jain skewed", `Quick, test_jain_skewed);
    ("jain all zero", `Quick, test_jain_all_zero);
    ("histogram", `Quick, test_histogram);
    ("histogram edges", `Quick, test_histogram_edges);
    ("table renders", `Quick, test_table_renders);
    ("table ragged", `Quick, test_table_ragged);
    ("fmt us", `Quick, test_fmt_us);
    ("ring fifo order", `Quick, test_ring_fifo_order);
    ("ring full", `Quick, test_ring_full);
    ("ring empty", `Quick, test_ring_empty);
    ("ring clear", `Quick, test_ring_clear);
    ("ring wraparound", `Quick, test_ring_wraparound);
    QCheck_alcotest.to_alcotest prop_ring_matches_queue;
    QCheck_alcotest.to_alcotest prop_stats_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_jain_bounds;
  ]
