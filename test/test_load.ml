(* Load-generator tests: the log-bucketed latency histogram, the seeded
   arrival streams, the CPI mix, and the open-loop harness itself —
   including the determinism gates the PR promises (same seed => byte
   identical arrival stream, request-span stream, and merged metrics,
   sequential or parallel cluster engine alike). *)

open I432_util
module K = I432_kernel
module Obs = I432_obs
module Net = I432_net
module Load = I432_load

(* ---------------- Stats.log_hist ---------------- *)

let test_log_hist_basic () =
  let h = Stats.log_hist_create ~per_decade:16 ~lo:10.0 ~decades:6 () in
  Alcotest.(check int) "empty count" 0 h.Stats.lh_count;
  Alcotest.(check (float 1e-9)) "empty quantile" 0.0 (Stats.log_hist_quantile h 0.5);
  List.iter (Stats.log_hist_observe h) [ 100.0; 1_000.0; 10_000.0 ];
  Alcotest.(check int) "count" 3 h.Stats.lh_count;
  Alcotest.(check (float 1e-9)) "mean" (11_100.0 /. 3.0) (Stats.log_hist_mean h);
  Alcotest.(check (float 1e-9)) "min" 100.0 h.Stats.lh_min;
  Alcotest.(check (float 1e-9)) "max" 10_000.0 h.Stats.lh_max;
  (* Geometric buckets at 16/decade have <= ~15.5% relative width; the
     quantile must land within one bucket of the true value. *)
  let q50 = Stats.log_hist_quantile h 0.5 in
  Alcotest.(check bool) "p50 near 1000" true (q50 > 850.0 && q50 < 1200.0);
  Alcotest.(check (float 1e-9)) "p0 = min" 100.0 (Stats.log_hist_quantile h 0.0);
  Alcotest.(check (float 1e-9)) "p1 = max" 10_000.0 (Stats.log_hist_quantile h 1.0)

let test_log_hist_under_overflow () =
  let h = Stats.log_hist_create ~per_decade:8 ~lo:100.0 ~decades:2 () in
  Stats.log_hist_observe h 1.0;
  (* below lo *)
  Stats.log_hist_observe h 1e9;
  (* beyond the last bucket *)
  Stats.log_hist_observe h Float.nan;
  (* ignored *)
  Alcotest.(check int) "underflow" 1 h.Stats.lh_underflow;
  Alcotest.(check int) "overflow" 1 h.Stats.lh_overflow;
  Alcotest.(check int) "count excludes nan" 2 h.Stats.lh_count;
  Alcotest.(check (float 1e-9)) "min is underflowed obs" 1.0 h.Stats.lh_min;
  Alcotest.(check (float 1e-9)) "max is overflowed obs" 1e9 h.Stats.lh_max

let test_log_hist_invalid () =
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Stats.log_hist_create: per_decade") (fun () ->
      ignore (Stats.log_hist_create ~per_decade:0 ~lo:10.0 ~decades:3 ()));
  let h = Stats.log_hist_create ~per_decade:4 ~lo:1.0 ~decades:3 () in
  Alcotest.check_raises "bad q" (Invalid_argument "Stats.log_hist_quantile")
    (fun () -> ignore (Stats.log_hist_quantile h 1.5))

let test_log_hist_merge_shape () =
  let a = Stats.log_hist_create ~per_decade:8 ~lo:10.0 ~decades:3 () in
  let b = Stats.log_hist_create ~per_decade:16 ~lo:10.0 ~decades:3 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Stats.log_hist_merge_into: shape mismatch") (fun () ->
      Stats.log_hist_merge_into ~dst:a ~src:b)

let pos_float_gen = QCheck2.Gen.(map (fun f -> 1.0 +. f) (float_bound_inclusive 1e6))

let prop_log_hist_quantile_bounds =
  QCheck2.Test.make ~name:"log_hist quantile within [min, max], monotone"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) pos_float_gen)
    (fun xs ->
      let h = Stats.log_hist_create ~per_decade:16 ~lo:10.0 ~decades:9 () in
      List.iter (Stats.log_hist_observe h) xs;
      let qs = List.map (Stats.log_hist_quantile h) [ 0.0; 0.5; 0.9; 0.99; 1.0 ] in
      let mn = List.fold_left min infinity xs
      and mx = List.fold_left max neg_infinity xs in
      List.for_all (fun q -> q >= mn -. 1e-9 && q <= mx +. 1e-9) qs
      && List.sort compare qs = qs)

let prop_log_hist_merge_is_union =
  QCheck2.Test.make ~name:"log_hist merge == observing the union" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) pos_float_gen)
        (list_size (int_range 0 40) pos_float_gen))
    (fun (xs, ys) ->
      let mk () = Stats.log_hist_create ~per_decade:16 ~lo:10.0 ~decades:9 () in
      let a = mk () and b = mk () and u = mk () in
      List.iter (Stats.log_hist_observe a) xs;
      List.iter (Stats.log_hist_observe b) ys;
      List.iter (Stats.log_hist_observe u) (xs @ ys);
      Stats.log_hist_merge_into ~dst:a ~src:b;
      a.Stats.lh_counts = u.Stats.lh_counts
      && a.Stats.lh_count = u.Stats.lh_count
      && a.Stats.lh_underflow = u.Stats.lh_underflow
      && a.Stats.lh_overflow = u.Stats.lh_overflow
      && (xs @ ys = []
         || Stats.log_hist_quantile a 0.5 = Stats.log_hist_quantile u 0.5))

(* ---------------- Mix ---------------- *)

let test_mix_tables () =
  Alcotest.(check int) "class count" 5 Load.Mix.class_count;
  Array.iter
    (fun cls ->
      Alcotest.(check bool) "code roundtrip" true
        (Load.Mix.of_code (Load.Mix.code cls) = cls))
    Load.Mix.all;
  Array.iter
    (fun p ->
      Alcotest.(check int) "weights sum to 100" 100
        (Array.fold_left ( + ) 0 (Load.Mix.weights p)))
    Load.Mix.profiles;
  (* CPI model at 8 MHz: alu 25 cycles x 16 insns x 125 ns. *)
  Alcotest.(check int) "alu service" 50_000 (Load.Mix.service_ns Load.Mix.Alu);
  Alcotest.(check int) "objops service" 240_000
    (Load.Mix.service_ns Load.Mix.Object_ops)

let test_mix_service_charges_budget () =
  let m = K.Machine.create () in
  let scratch = ref None in
  ignore
    (K.Machine.spawn m ~name:"svc" (fun () ->
         let s = K.Machine.allocate_generic m ~data_length:256 ~access_length:0 () in
         let t0 = K.Machine.now m in
         Array.iter (fun cls -> Load.Mix.service m ~scratch:s cls) Load.Mix.all;
         scratch := Some (K.Machine.now m - t0)));
  ignore (K.Machine.run m);
  let expected =
    Array.fold_left (fun acc c -> acc + Load.Mix.service_ns c) 0 Load.Mix.all
  in
  match !scratch with
  | Some elapsed ->
    (* Each recipe's wrappers plus remainder must land exactly on the CPI
       budget (single processor: no bus contention adjustment). *)
    Alcotest.(check int) "service time = CPI budget" expected elapsed
  | None -> Alcotest.fail "service process did not run"

(* ---------------- Arrival streams ---------------- *)

let spec ?(seed = 7) ?(users = 6) ?(sessions = 2) ?(requests = 2)
    ?(rate = 9_000.0) ?(pattern = Load.Arrival.Poisson)
    ?(profile = Load.Mix.Typical) () =
  {
    Load.Arrival.seed;
    users;
    sessions;
    requests_per_session = requests;
    rate_rps = rate;
    pattern;
    profile;
  }

let test_arrival_shape () =
  let s = spec () in
  let reqs = Load.Arrival.generate s in
  Alcotest.(check int) "total" (Load.Arrival.total s) (Array.length reqs);
  Array.iteri
    (fun i r ->
      Alcotest.(check int) "dense ids" i r.Load.Arrival.r_id;
      if i > 0 then
        Alcotest.(check bool) "sorted by arrival" true
          (reqs.(i - 1).Load.Arrival.r_at_ns <= r.Load.Arrival.r_at_ns))
    reqs

let prop_arrival_same_seed_identical =
  QCheck2.Test.make ~name:"same seed => byte-identical arrival stream"
    ~count:60
    QCheck2.Gen.(
      quad (int_range 1 1000) (int_range 1 8) (int_range 1 4) bool)
    (fun (seed, users, sessions, bursty) ->
      let pattern =
        if bursty then Load.Arrival.Bursty else Load.Arrival.Poisson
      in
      let s = spec ~seed ~users ~sessions ~pattern () in
      Load.Arrival.render (Load.Arrival.generate s)
      = Load.Arrival.render (Load.Arrival.generate s))

(* The aggregate rate splits evenly across users, so the per-user stream
   is a function of (seed, user, rate/users): doubling users AND rate
   keeps every existing user's schedule bit-identical (the x2 rate scale
   is exact in binary floating point). *)
let prop_arrival_user_streams_stable =
  QCheck2.Test.make ~name:"doubling users at fixed per-user rate is stable"
    ~count:40
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, users) ->
      let small = Load.Arrival.generate (spec ~seed ~users ~rate:9_000.0 ()) in
      let big =
        Load.Arrival.generate
          (spec ~seed ~users:(2 * users) ~rate:18_000.0 ())
      in
      let key (r : Load.Arrival.request) =
        (r.Load.Arrival.r_user, r.Load.Arrival.r_session, r.Load.Arrival.r_at_ns, r.Load.Arrival.r_cls)
      in
      let keep arr =
        Array.to_list arr
        |> List.filter_map (fun r ->
               if r.Load.Arrival.r_user < users then Some (key r) else None)
      in
      keep small = keep big)

let test_arrival_invalid () =
  Alcotest.check_raises "zero users" (Invalid_argument "Arrival.generate: users")
    (fun () -> ignore (Load.Arrival.generate (spec ~users:0 ())))

(* ---------------- Harness: single machine ---------------- *)

let run_machine ?(trace = Obs.Tracer.Events) s =
  Load.Loadgen.run_machine ~processors:2 ~trace_level:trace ~spec:s ()

let test_machine_completes_all () =
  let s = spec () in
  let o = run_machine s in
  let total = Load.Arrival.total s in
  Alcotest.(check int) "issued" total o.Load.Loadgen.o_issued;
  Alcotest.(check int) "completed" total o.Load.Loadgen.o_completed;
  Alcotest.(check int) "no blocked processes" 0 o.Load.Loadgen.o_deadlocked;
  Alcotest.(check bool) "achieved > 0" true (Load.Loadgen.achieved_rps o > 0.0);
  (* Latency can never be below the cheapest service recipe. *)
  Alcotest.(check bool) "p50 >= min service" true
    (Load.Loadgen.quantile o 0.5
    >= float_of_int (Load.Mix.service_ns Load.Mix.Alu));
  Alcotest.(check bool) "p99 >= p50" true
    (Load.Loadgen.quantile o 0.99 >= Load.Loadgen.quantile o 0.5)

let test_machine_span_stream_deterministic () =
  let s = spec ~seed:13 () in
  let a = run_machine s and b = run_machine s in
  Alcotest.(check string) "span streams identical"
    (Load.Loadgen.span_stream a) (Load.Loadgen.span_stream b);
  Alcotest.(check string) "merged metrics identical"
    (Obs.Metrics.render a.Load.Loadgen.o_metrics)
    (Obs.Metrics.render b.Load.Loadgen.o_metrics);
  (* One span pair per request: issue and done both present. *)
  let contains line needle =
    let nl = String.length needle and ll = String.length line in
    let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
    go 0
  in
  let count needle s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> contains l needle)
    |> List.length
  in
  let total = Load.Arrival.total s in
  let stream = Load.Loadgen.span_stream a in
  Alcotest.(check int) "req-issue spans" total (count "req-issue" stream);
  Alcotest.(check int) "req-done spans" total (count "req-done" stream)

let test_machine_spans_off_when_untraced () =
  let o = run_machine ~trace:Obs.Tracer.Off (spec ()) in
  Alcotest.(check string) "no span events without tracing" ""
    (Load.Loadgen.span_stream o);
  (* Metrics still measure: spans are counters/histograms, not events. *)
  Alcotest.(check int) "metrics unaffected" (Load.Arrival.total (spec ()))
    o.Load.Loadgen.o_completed

(* ---------------- Harness: cluster, Seq vs Par ---------------- *)

let run_cluster ~engine s =
  Load.Loadgen.run_cluster ~nodes:3 ~processors:2 ~engine
    ~trace_level:Obs.Tracer.Events ~spec:s ()

let test_cluster_completes_all () =
  let s = spec ~seed:21 () in
  let o = run_cluster ~engine:Net.Cluster.Seq s in
  Alcotest.(check int) "completed" (Load.Arrival.total s)
    o.Load.Loadgen.o_completed;
  Alcotest.(check int) "three machines" 3
    (List.length o.Load.Loadgen.o_machines)

let prop_cluster_par_equals_seq =
  QCheck2.Test.make ~name:"cluster loadgen: Par 2 == Seq byte-identical"
    ~count:6
    QCheck2.Gen.(pair (int_range 1 500) (int_range 2 5))
    (fun (seed, users) ->
      let s = spec ~seed ~users ~sessions:1 () in
      let a = run_cluster ~engine:Net.Cluster.Seq s in
      let b = run_cluster ~engine:(Net.Cluster.Par 2) s in
      Load.Loadgen.span_stream a = Load.Loadgen.span_stream b
      && Obs.Metrics.render a.Load.Loadgen.o_metrics
         = Obs.Metrics.render b.Load.Loadgen.o_metrics
      && a.Load.Loadgen.o_completed = Load.Arrival.total s
      && b.Load.Loadgen.o_completed = Load.Arrival.total s)

(* Overload: offered far above capacity must still complete every request
   (open-loop backpressure, the premature-quiescence regression guard for
   the cluster round loop). *)
let test_cluster_overload_drains () =
  let s = spec ~seed:5 ~users:8 ~sessions:2 ~requests:4 ~rate:60_000.0 () in
  let o = run_cluster ~engine:Net.Cluster.Seq s in
  Alcotest.(check int) "all requests served under overload"
    (Load.Arrival.total s) o.Load.Loadgen.o_completed

let suite =
  [
    ("log_hist basic", `Quick, test_log_hist_basic);
    ("log_hist under/overflow", `Quick, test_log_hist_under_overflow);
    ("log_hist invalid args", `Quick, test_log_hist_invalid);
    ("log_hist merge shape", `Quick, test_log_hist_merge_shape);
    QCheck_alcotest.to_alcotest prop_log_hist_quantile_bounds;
    QCheck_alcotest.to_alcotest prop_log_hist_merge_is_union;
    ("mix tables", `Quick, test_mix_tables);
    ("mix service charges budget", `Quick, test_mix_service_charges_budget);
    ("arrival shape", `Quick, test_arrival_shape);
    QCheck_alcotest.to_alcotest prop_arrival_same_seed_identical;
    QCheck_alcotest.to_alcotest prop_arrival_user_streams_stable;
    ("arrival invalid", `Quick, test_arrival_invalid);
    ("machine completes all", `Quick, test_machine_completes_all);
    ("machine span stream deterministic", `Quick, test_machine_span_stream_deterministic);
    ("machine spans off when untraced", `Quick, test_machine_spans_off_when_untraced);
    ("cluster completes all", `Quick, test_cluster_completes_all);
    QCheck_alcotest.to_alcotest prop_cluster_par_equals_seq;
    ("cluster overload drains", `Quick, test_cluster_overload_drains);
  ]
