(* Unit tests for the lower-level pieces not covered through the machine:
   physical memory, timing tables, the bus model, the dispatch queue, and
   port queue ordering — plus deeper qcheck properties (segment I/O
   round-trips, swapping content preservation, composite-filing
   isomorphism over random graphs). *)

open I432
open Imax
module K = I432_kernel

(* ---------------- Memory ---------------- *)

let test_memory_rw_widths () =
  let m = Memory.create ~size_bytes:64 in
  Memory.write_u8 m 0 0xAB;
  Alcotest.(check int) "u8" 0xAB (Memory.read_u8 m 0);
  Memory.write_u16 m 2 0x1234;
  Alcotest.(check int) "u16 little-endian" 0x34 (Memory.read_u8 m 2);
  Alcotest.(check int) "u16" 0x1234 (Memory.read_u16 m 2);
  Memory.write_i32 m 4 (-123456);
  Alcotest.(check int) "i32 sign extension" (-123456) (Memory.read_i32 m 4)

let test_memory_bounds () =
  let m = Memory.create ~size_bytes:8 in
  Alcotest.(check bool) "oob faults" true
    (match Memory.read_u16 m 7 with
    | _ -> false
    | exception Fault.Fault (Fault.Bounds _) -> true);
  Alcotest.(check bool) "negative faults" true
    (match Memory.read_u8 m (-1) with
    | _ -> false
    | exception Fault.Fault (Fault.Bounds _) -> true)

let test_memory_blit_and_fill () =
  let m = Memory.create ~size_bytes:32 in
  Memory.blit_from_bytes m ~src:(Bytes.of_string "abcdef") ~dst_addr:4;
  Alcotest.(check string) "blit back" "cde"
    (Bytes.to_string (Memory.blit_to_bytes m ~src_addr:6 ~len:3));
  Memory.fill m ~addr:4 ~len:6 ~byte:'z';
  Alcotest.(check string) "filled" "zzzzzz"
    (Bytes.to_string (Memory.blit_to_bytes m ~src_addr:4 ~len:6))

let test_memory_traffic_counters () =
  let m = Memory.create ~size_bytes:16 in
  let r0 = Memory.read_count m and w0 = Memory.write_count m in
  Memory.write_u8 m 0 1;
  ignore (Memory.read_u8 m 0);
  Alcotest.(check int) "one read" (r0 + 1) (Memory.read_count m);
  Alcotest.(check int) "one write" (w0 + 1) (Memory.write_count m)

(* ---------------- Timings ---------------- *)

let test_timings_paper_anchors () =
  let t = Timings.default in
  Alcotest.(check int) "65us domain call" 65_000 t.Timings.domain_call_ns;
  Alcotest.(check int) "80us allocation" 80_000 t.Timings.allocate_ns;
  Alcotest.(check int) "8MHz cycle" 125 t.Timings.cycle_ns

let test_timings_scale () =
  let t = Timings.scale Timings.default ~num:2 ~den:1 in
  Alcotest.(check int) "doubled" 130_000 t.Timings.domain_call_ns;
  let h = Timings.scale Timings.default ~num:1 ~den:2 in
  Alcotest.(check int) "halved" 40_000 h.Timings.allocate_ns

let test_timings_us () =
  Alcotest.(check (float 1e-9)) "ns to us" 65.0 (Timings.us 65_000)

(* ---------------- Bus ---------------- *)

let test_bus_no_contention_single () =
  let b = K.Bus.create ~alpha_per_mille:20 ~processors:1 () in
  Alcotest.(check int) "uniprocessor unpenalized" 1000 (K.Bus.penalize b 1000);
  Alcotest.(check (float 1e-9)) "factor 1.0" 1.0 (K.Bus.factor b)

let test_bus_linear_growth () =
  let b = K.Bus.create ~alpha_per_mille:20 ~processors:11 () in
  (* 10 extra processors at 2% each: +20%. *)
  Alcotest.(check int) "20% penalty" 1200 (K.Bus.penalize b 1000);
  K.Bus.set_processors b 2;
  Alcotest.(check int) "2% penalty" 1020 (K.Bus.penalize b 1000)

let test_bus_zero_alpha () =
  let b = K.Bus.create ~alpha_per_mille:0 ~processors:16 () in
  Alcotest.(check int) "no penalty" 777 (K.Bus.penalize b 777)

let test_bus_invalid () =
  Alcotest.check_raises "zero processors"
    (Invalid_argument "Bus.create: processors") (fun () ->
      ignore (K.Bus.create ~processors:0 ()))

(* ---------------- Dispatch queue ---------------- *)

let test_dispatch_priority_then_fifo () =
  let d = K.Dispatch.create () in
  K.Dispatch.enqueue d ~process:1 ~priority:5;
  K.Dispatch.enqueue d ~process:2 ~priority:9;
  K.Dispatch.enqueue d ~process:3 ~priority:5;
  let all = fun _ -> true in
  Alcotest.(check (option int)) "highest" (Some 2) (K.Dispatch.pop d ~eligible:all);
  Alcotest.(check (option int)) "fifo within priority" (Some 1)
    (K.Dispatch.pop d ~eligible:all);
  Alcotest.(check (option int)) "last" (Some 3) (K.Dispatch.pop d ~eligible:all);
  Alcotest.(check (option int)) "empty" None (K.Dispatch.pop d ~eligible:all)

let test_dispatch_skips_ineligible () =
  let d = K.Dispatch.create () in
  K.Dispatch.enqueue d ~process:1 ~priority:9;
  K.Dispatch.enqueue d ~process:2 ~priority:5;
  Alcotest.(check (option int)) "skips head" (Some 2)
    (K.Dispatch.pop d ~eligible:(fun p -> p <> 1));
  Alcotest.(check bool) "head kept" true (K.Dispatch.mem d ~process:1)

let test_dispatch_remove () =
  let d = K.Dispatch.create () in
  K.Dispatch.enqueue d ~process:1 ~priority:5;
  K.Dispatch.enqueue d ~process:2 ~priority:5;
  K.Dispatch.remove d ~process:1;
  Alcotest.(check int) "one left" 1 (K.Dispatch.length d);
  Alcotest.(check bool) "gone" false (K.Dispatch.mem d ~process:1)

(* ---------------- Port queue ordering ---------------- *)

let mk_port ?(capacity = 8) ?(discipline = K.Port.Fifo) () =
  K.Port.make ~self:0 ~capacity ~discipline

let msg i = Access.make ~index:i ~rights:Rights.full

let test_port_queue_fifo () =
  let p = mk_port () in
  K.Port.enqueue p ~msg:(msg 10) ~priority:1 ~now:0;
  K.Port.enqueue p ~msg:(msg 11) ~priority:9 ~now:0;
  Alcotest.(check (option int)) "fifo ignores priority" (Some 10)
    (Option.map Access.index (K.Port.dequeue p ~now:0))

let test_port_queue_priority () =
  let p = mk_port ~discipline:K.Port.Priority () in
  K.Port.enqueue p ~msg:(msg 10) ~priority:1 ~now:0;
  K.Port.enqueue p ~msg:(msg 11) ~priority:9 ~now:0;
  K.Port.enqueue p ~msg:(msg 12) ~priority:9 ~now:0;
  Alcotest.(check (option int)) "highest first" (Some 11)
    (Option.map Access.index (K.Port.dequeue p ~now:0));
  Alcotest.(check (option int)) "fifo within priority" (Some 12)
    (Option.map Access.index (K.Port.dequeue p ~now:0));
  Alcotest.(check (option int)) "lowest last" (Some 10)
    (Option.map Access.index (K.Port.dequeue p ~now:0))

let test_port_queue_capacity () =
  let p = mk_port ~capacity:2 () in
  K.Port.enqueue p ~msg:(msg 1) ~priority:0 ~now:0;
  K.Port.enqueue p ~msg:(msg 2) ~priority:0 ~now:0;
  Alcotest.(check bool) "full" true (K.Port.is_full p);
  Alcotest.check_raises "enqueue on full" (Invalid_argument "Port.enqueue: full")
    (fun () -> K.Port.enqueue p ~msg:(msg 3) ~priority:0 ~now:0)

let test_port_queue_wait_accounting () =
  let p = mk_port () in
  K.Port.enqueue p ~msg:(msg 1) ~priority:0 ~now:100;
  p.K.Port.receives <- 1;
  ignore (K.Port.dequeue p ~now:600);
  Alcotest.(check (float 1e-9)) "mean wait" 500.0 (K.Port.mean_queue_wait_ns p)

(* ---------------- qcheck: deeper properties ---------------- *)

(* Segment word I/O round-trips at random in-bounds offsets and faults at
   random out-of-bounds offsets. *)
let prop_segment_word_roundtrip =
  QCheck2.Test.make ~name:"segment word I/O roundtrip + bounds" ~count:200
    QCheck2.Gen.(triple (int_range 4 256) (int_range 0 300) int)
    (fun (size, offset, value) ->
      let table = Object_table.create () in
      let memory = Memory.create ~size_bytes:4096 in
      let sro = Sro.create table ~level:0 ~base:0 ~length:4096 in
      let a =
        Sro.allocate table sro ~data_length:size ~access_length:0
          ~otype:Obj_type.Generic
      in
      let value = value land 0x7FFFFFFF in
      if offset + 4 <= size then begin
        Segment.write_i32 table memory a ~offset value;
        Segment.read_i32 table memory a ~offset = value
      end
      else
        match Segment.write_i32 table memory a ~offset value with
        | () -> false
        | exception Fault.Fault (Fault.Bounds _) -> true)

(* Random touch scripts on an overcommitted swapping heap never lose
   content: each object always reads back the last value written. *)
let prop_swapping_preserves_content =
  QCheck2.Test.make ~name:"swapping preserves content under random touches"
    ~count:25
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 11) small_int))
    (fun script ->
      let sys =
        System.boot
          ~config:
            {
              System.default_config with
              System.memory_manager = System.Swapping_lru;
              heap_bytes = 4 * 1024;
            }
          ()
      in
      let m = System.machine sys in
      (* 12 KB of objects on a 4 KB heap. *)
      let objs =
        Array.init 12 (fun _ ->
            System.mm_allocate sys ~data_length:1024 ~access_length:0
              ~otype:Obj_type.Generic)
      in
      let shadow = Array.make 12 0 in
      let ok = ref true in
      ignore
        (K.Machine.spawn m ~name:"mutator" (fun () ->
             List.iter
               (fun (idx, v) ->
                 System.mm_touch sys objs.(idx);
                 if K.Machine.read_word m objs.(idx) ~offset:0 <> shadow.(idx)
                 then ok := false;
                 K.Machine.write_word m objs.(idx) ~offset:0 v;
                 shadow.(idx) <- v)
               script));
      let r = System.run sys in
      !ok && r.K.Machine.faulted = 0)

(* Composite filing rebuilds random DAGs-with-cycles isomorphic: same
   payloads, same edge structure, all-fresh descriptors. *)
let prop_filing_isomorphism =
  QCheck2.Test.make ~name:"composite filing is an isomorphism" ~count:30
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 16) (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, edges) ->
      let sys = System.boot () in
      let m = System.machine sys in
      let table = K.Machine.table m in
      let filing = Object_filing.create m in
      let nodes =
        Array.init n (fun i ->
            let a =
              K.Machine.allocate_generic m ~data_length:8 ~access_length:8 ()
            in
            (Object_table.entry_of_access table a).Object_table.base
            |> ignore;
            K.Machine.write_bytes m a ~offset:0
              (Bytes.make 8 (Char.chr (65 + i)));
            a)
      in
      let edges =
        List.filter (fun (s, d) -> s < n && d < n) edges
        |> List.sort_uniq compare
      in
      (* slot number = destination id keeps edges distinguishable. *)
      List.iter
        (fun (s, d) -> Segment.store_access table nodes.(s) ~slot:d (Some nodes.(d)))
        edges;
      ignore (Object_filing.store_graph filing ~key:"g" nodes.(0));
      let root' = Object_filing.retrieve_graph filing ~key:"g" () in
      (* Walk both graphs in lockstep comparing payloads and edges. *)
      let visited = Hashtbl.create 8 in
      let rec compare_nodes a b =
        match Hashtbl.find_opt visited (Access.index a) with
        | Some mapped -> mapped = Access.index b
        | None ->
          Hashtbl.add visited (Access.index a) (Access.index b);
          let ea = Object_table.entry_of_access table a in
          let eb = Object_table.entry_of_access table b in
          ea.Object_table.data_length = eb.Object_table.data_length
          && Access.index a <> Access.index b
          && Segment.read_bytes table (K.Machine.memory m) a ~offset:0
               ~len:ea.Object_table.data_length
             = Segment.read_bytes table (K.Machine.memory m) b ~offset:0
                 ~len:eb.Object_table.data_length
          && Array.for_all2
               (fun sa sb ->
                 match sa, sb with
                 | None, None -> true
                 | Some ca, Some cb -> compare_nodes ca cb
                 | Some _, None | None, Some _ -> false)
               ea.Object_table.access_part eb.Object_table.access_part
      in
      compare_nodes nodes.(0) root')

(* Priority-port dequeue order is a stable sort of enqueue order. *)
let prop_priority_port_stable_sort =
  QCheck2.Test.make ~name:"priority port = stable sort by priority" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 0 5))
    (fun priorities ->
      let p = mk_port ~capacity:64 ~discipline:K.Port.Priority () in
      List.iteri
        (fun i prio -> K.Port.enqueue p ~msg:(msg i) ~priority:prio ~now:0)
        priorities;
      let drained = ref [] in
      let rec drain () =
        match K.Port.dequeue p ~now:0 with
        | Some a ->
          drained := Access.index a :: !drained;
          drain ()
        | None -> ()
      in
      drain ();
      let got = List.rev !drained in
      let expected =
        List.mapi (fun i prio -> (-prio, i)) priorities
        |> List.sort compare
        |> List.map snd
      in
      got = expected)

let suite =
  [
    ("memory rw widths", `Quick, test_memory_rw_widths);
    ("memory bounds", `Quick, test_memory_bounds);
    ("memory blit and fill", `Quick, test_memory_blit_and_fill);
    ("memory traffic counters", `Quick, test_memory_traffic_counters);
    ("timings paper anchors", `Quick, test_timings_paper_anchors);
    ("timings scale", `Quick, test_timings_scale);
    ("timings us", `Quick, test_timings_us);
    ("bus no contention single", `Quick, test_bus_no_contention_single);
    ("bus linear growth", `Quick, test_bus_linear_growth);
    ("bus zero alpha", `Quick, test_bus_zero_alpha);
    ("bus invalid", `Quick, test_bus_invalid);
    ("dispatch priority then fifo", `Quick, test_dispatch_priority_then_fifo);
    ("dispatch skips ineligible", `Quick, test_dispatch_skips_ineligible);
    ("dispatch remove", `Quick, test_dispatch_remove);
    ("port queue fifo", `Quick, test_port_queue_fifo);
    ("port queue priority", `Quick, test_port_queue_priority);
    ("port queue capacity", `Quick, test_port_queue_capacity);
    ("port queue wait accounting", `Quick, test_port_queue_wait_accounting);
    QCheck_alcotest.to_alcotest prop_segment_word_roundtrip;
    QCheck_alcotest.to_alcotest prop_swapping_preserves_content;
    QCheck_alcotest.to_alcotest prop_filing_isomorphism;
    QCheck_alcotest.to_alcotest prop_priority_port_stable_sort;
  ]
