(* Tests for the observability layer: tracer rings (overflow, drop
   accounting), the legacy trace-line compat shim (byte identity with the
   seed's formats), cross-run determinism of events and metrics, the
   Chrome trace exporter, the metrics registry, and the snapshot
   extensions. *)

module K = I432_kernel
module Obs = I432_obs

let mk ?(processors = 1) ~level () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        K.Machine.processors;
        trace_level = level;
      }
    ()

let run m = K.Machine.run ~max_ns:2_000_000_000 ~max_steps:2_000_000 m

(* A small deterministic two-processor workload touching every traced
   subsystem: ports (send/receive/block), allocation, yields. *)
let workload ?(processors = 2) ~level () =
  let m = mk ~processors ~level () in
  let port =
    K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo ()
  in
  ignore
    (K.Machine.spawn m ~name:"producer" (fun () ->
         for i = 1 to 8 do
           let msg = K.Machine.allocate_generic m ~data_length:16 () in
           K.Machine.write_word m msg ~offset:0 i;
           K.Machine.send m ~port ~msg
         done));
  ignore
    (K.Machine.spawn m ~name:"consumer" (fun () ->
         for _ = 1 to 8 do
           let msg = K.Machine.receive m ~port in
           ignore (K.Machine.read_word m msg ~offset:0);
           K.Machine.yield m
         done));
  let _ = run m in
  m

(* ---------------- Tracer rings ---------------- *)

let test_ring_overflow () =
  (* Capacity 4, 7 events: the ring keeps the newest 4 and counts the 3 it
     recycled. *)
  let t = Obs.Tracer.create ~capacity:4 ~level:Obs.Tracer.Events ~processors:1 () in
  for i = 1 to 7 do
    Obs.Tracer.emit t ~ts_ns:(i * 10) ~cpu:0 ~a:i Obs.Event.Yield
  done;
  Alcotest.(check int) "emitted" 7 (Obs.Tracer.emitted t);
  Alcotest.(check int) "retained" 4 (Obs.Tracer.retained t);
  Alcotest.(check int) "dropped" 3 (Obs.Tracer.dropped t);
  Alcotest.(check int) "dropped on cpu 0" 3 (Obs.Tracer.dropped_on t ~cpu:0);
  let events = Obs.Tracer.events t in
  Alcotest.(check (list int)) "oldest three recycled" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Obs.Event.seq) events);
  Alcotest.(check (list int)) "payloads survive" [ 4; 5; 6; 7 ]
    (List.map (fun e -> e.Obs.Event.a) events)

let test_rings_are_per_processor () =
  let t = Obs.Tracer.create ~capacity:2 ~level:Obs.Tracer.Events ~processors:2 () in
  (* Overflow cpu 0 only; cpu 1 and the boot ring (-1) are untouched. *)
  for i = 1 to 5 do
    Obs.Tracer.emit t ~ts_ns:i ~cpu:0 Obs.Event.Yield
  done;
  Obs.Tracer.emit t ~ts_ns:6 ~cpu:1 Obs.Event.Yield;
  Obs.Tracer.emit t ~ts_ns:7 ~cpu:(-1) Obs.Event.Spawn;
  Alcotest.(check int) "cpu 0 dropped" 3 (Obs.Tracer.dropped_on t ~cpu:0);
  Alcotest.(check int) "cpu 1 kept all" 0 (Obs.Tracer.dropped_on t ~cpu:1);
  Alcotest.(check int) "boot ring kept all" 0 (Obs.Tracer.dropped_on t ~cpu:(-1));
  Alcotest.(check int) "retained across rings" 4 (Obs.Tracer.retained t)

let test_off_level_is_inert () =
  let t = Obs.Tracer.create ~level:Obs.Tracer.Off ~processors:1 () in
  Obs.Tracer.emit t ~ts_ns:1 ~cpu:0 ~name:"ghost" Obs.Event.Spawn;
  Alcotest.(check int) "nothing emitted" 0 (Obs.Tracer.emitted t);
  Alcotest.(check int) "nothing retained" 0 (Obs.Tracer.retained t);
  Alcotest.(check (list string)) "no legacy lines" [] (Obs.Tracer.legacy_lines t)

let test_kind_codes_roundtrip () =
  (* The packed rings store kinds as dense ints; the mapping must be a
     bijection over the full range. *)
  for i = 0 to Obs.Event.kind_count - 1 do
    Alcotest.(check int) "roundtrip"
      i
      (Obs.Event.kind_to_int (Obs.Event.kind_of_int i))
  done;
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Event.kind_of_int: %d" Obs.Event.kind_count))
    (fun () -> ignore (Obs.Event.kind_of_int Obs.Event.kind_count))

let test_subsystem_filter () =
  let t = Obs.Tracer.create ~level:Obs.Tracer.Events ~processors:1 () in
  (* Keep only the port subsystem: process events are skipped before any
     interning or ring store, and [wants] reports the mask so emitters
     can skip timestamp computation too. *)
  Obs.Tracer.set_filter t ~keep:(Some [ "port" ]);
  Alcotest.(check bool) "wants port" true
    (Obs.Tracer.wants t ~kind_code:(Obs.Event.kind_to_int Obs.Event.Send));
  Alcotest.(check bool) "rejects proc" false
    (Obs.Tracer.wants t ~kind_code:(Obs.Event.kind_to_int Obs.Event.Spawn));
  Obs.Tracer.emit t ~ts_ns:1 ~cpu:0 ~name:"p" Obs.Event.Spawn;
  Obs.Tracer.emit t ~ts_ns:2 ~cpu:0 ~name:"q" Obs.Event.Send;
  Alcotest.(check int) "only port event stored" 1 (Obs.Tracer.emitted t);
  (match Obs.Tracer.events t with
  | [ e ] -> Alcotest.(check string) "kept the send" "send"
      (Obs.Event.kind_to_string e.Obs.Event.kind)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* None restores the all-pass mask. *)
  Obs.Tracer.set_filter t ~keep:None;
  Obs.Tracer.emit t ~ts_ns:3 ~cpu:0 ~name:"r" Obs.Event.Spawn;
  Alcotest.(check int) "unfiltered again" 2 (Obs.Tracer.emitted t);
  (* Unknown subsystem names are refused. *)
  Alcotest.check_raises "bad subsystem"
    (Invalid_argument "Tracer.set_filter: subsystem \"nope\"") (fun () ->
      Obs.Tracer.set_filter t ~keep:(Some [ "nope" ]));
  (* Off level wins over any mask. *)
  let off = Obs.Tracer.create ~level:Obs.Tracer.Off ~processors:1 () in
  Alcotest.(check bool) "off never wants" false
    (Obs.Tracer.wants off ~kind_code:(Obs.Event.kind_to_int Obs.Event.Send))

(* ---------------- Legacy compat shim ---------------- *)

let test_legacy_lines_byte_identical () =
  (* The shim must render the seed's exact strings from structured
     events. *)
  let m = mk ~level:Obs.Tracer.Events_and_legacy_lines () in
  let p =
    K.Machine.spawn m ~name:"traced" (fun () -> K.Machine.yield m)
  in
  let _ = run m in
  let index = (K.Machine.process_state m p).K.Process.index in
  let lines = K.Machine.trace_lines m in
  let mem line = List.mem line lines in
  Alcotest.(check bool) "seed spawn format" true
    (mem (Printf.sprintf "spawn traced as process %d" index));
  Alcotest.(check bool) "seed finish format" true
    (mem "process traced finished");
  (* Every legacy line is the rendering of some retained or shim-recorded
     event, in event order. *)
  let from_events =
    List.filter_map Obs.Event.legacy_line (K.Machine.events m)
  in
  Alcotest.(check (list string)) "shim agrees with structured stream"
    from_events lines

let test_events_level_has_no_legacy_lines () =
  let m = workload ~level:Obs.Tracer.Events () in
  Alcotest.(check (list string)) "no lines at Events" []
    (K.Machine.trace_lines m);
  Alcotest.(check bool) "but events recorded" true
    (K.Machine.events m <> [])

let test_legacy_lines_survive_ring_overflow () =
  (* The shim is unbounded: overflowing the event rings must not lose
     lines, because legacy consumers expect the full history. *)
  let t =
    Obs.Tracer.create ~capacity:2
      ~level:Obs.Tracer.Events_and_legacy_lines ~processors:1 ()
  in
  for i = 1 to 6 do
    Obs.Tracer.emit t ~ts_ns:i ~cpu:0 ~name:"p" ~a:i Obs.Event.Spawn
  done;
  Alcotest.(check int) "rings overflowed" 4 (Obs.Tracer.dropped t);
  Alcotest.(check int) "all lines kept" 6
    (List.length (Obs.Tracer.legacy_lines t))

(* ---------------- Determinism ---------------- *)

let test_event_stream_determinism () =
  let trace () =
    let m = workload ~level:Obs.Tracer.Events () in
    ( List.map Obs.Event.to_string (K.Machine.events m),
      Obs.Jout.to_string (Obs.Metrics.to_json (K.Machine.metrics m)) )
  in
  let events_a, metrics_a = trace () in
  let events_b, metrics_b = trace () in
  Alcotest.(check bool) "stream is non-trivial" true
    (List.length events_a > 20);
  Alcotest.(check (list string)) "identical event streams" events_a events_b;
  Alcotest.(check string) "identical metrics JSON" metrics_a metrics_b

(* ---------------- Chrome trace export ---------------- *)

let test_chrome_export_structure () =
  let m = workload ~level:Obs.Tracer.Events () in
  let events = K.Machine.events m in
  let kinds =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Event.kind) events)
  in
  Alcotest.(check bool) "at least 5 event kinds observed" true
    (List.length kinds >= 5);
  let json = Obs.Export.chrome_trace ~processors:2 events in
  let s = Obs.Jout.to_string json in
  let contains sub =
    let n = String.length s and m' = String.length sub in
    let rec go i = i + m' <= n && (String.sub s i m' = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "top-level traceEvents array" true
    (contains "\"traceEvents\"");
  Alcotest.(check bool) "microsecond unit" true
    (contains "\"displayTimeUnit\"");
  Alcotest.(check bool) "per-processor track names" true
    (contains "\"cpu0\"" && contains "\"cpu1\"" && contains "\"boot\"");
  Alcotest.(check bool) "port flow arrows bind send to receive" true
    (contains "\"ph\": \"s\"" && contains "\"ph\": \"f\"");
  (* Identical runs must export identical files. *)
  let m2 = workload ~level:Obs.Tracer.Events () in
  let s2 =
    Obs.Jout.to_string
      (Obs.Export.chrome_trace ~processors:2 (K.Machine.events m2))
  in
  Alcotest.(check string) "export is deterministic" s s2

(* ---------------- Metrics registry ---------------- *)

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "kernel.dispatches" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create is stable" true
    (Obs.Metrics.counter r "kernel.dispatches" == c);
  let g = Obs.Metrics.gauge r "gc.phase" in
  Obs.Metrics.set g 2;
  Alcotest.(check int) "gauge" 2 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram r ~buckets:4 ~lo:0.0 ~hi:8.0 "port.wait" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 3.0; 9.0; -1.0 ];
  Alcotest.(check int) "histogram overflow bucket" 1
    h.Obs.Metrics.m_hist.I432_util.Stats.h_overflow;
  Alcotest.(check int) "histogram underflow bucket" 1
    h.Obs.Metrics.m_hist.I432_util.Stats.h_underflow;
  Alcotest.(check bool) "lookup misses are None" true
    (Obs.Metrics.find_counter r "no.such" = None);
  (* Dumps are sorted by name, so JSON is deterministic. *)
  let names = List.map (fun c -> c.Obs.Metrics.c_name) (Obs.Metrics.counters r) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_machine_metrics_populated () =
  let m = workload ~level:Obs.Tracer.Events () in
  let r = K.Machine.metrics m in
  let counter name =
    match Obs.Metrics.find_counter r name with
    | Some c -> Obs.Metrics.counter_value c
    | None -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check bool) "dispatches counted" true
    (counter "dispatch.dispatches" > 0);
  Alcotest.(check int) "sends counted" 8 (counter "port.sends");
  Alcotest.(check int) "receives counted" 8 (counter "port.receives")

(* ---------------- Snapshot extensions ---------------- *)

let test_snapshot_observability_fields () =
  let m = workload ~level:Obs.Tracer.Events () in
  let snap = K.Snapshot.capture m in
  Alcotest.(check string) "gc idle outside collections" "idle"
    snap.K.Snapshot.gc_phase;
  Alcotest.(check int) "emitted matches tracer"
    (Obs.Tracer.emitted (K.Machine.tracer m))
    snap.K.Snapshot.events_emitted;
  Alcotest.(check bool) "events retained" true
    (snap.K.Snapshot.events_retained > 0);
  (match snap.K.Snapshot.sros with
  | [] -> Alcotest.fail "expected at least the global SRO"
  | sro :: _ ->
    Alcotest.(check bool) "free-store stats present" true
      (sro.K.Snapshot.s_free_bytes > 0 && sro.K.Snapshot.s_region_count > 0));
  let rendered = K.Snapshot.render snap in
  Alcotest.(check bool) "render mentions events" true
    (String.length rendered > 0)

let suite =
  [
    ("tracer: ring overflow", `Quick, test_ring_overflow);
    ("tracer: per-processor rings", `Quick, test_rings_are_per_processor);
    ("tracer: off level inert", `Quick, test_off_level_is_inert);
    ("tracer: kind codes roundtrip", `Quick, test_kind_codes_roundtrip);
    ("tracer: subsystem filter", `Quick, test_subsystem_filter);
    ("shim: byte-identical lines", `Quick, test_legacy_lines_byte_identical);
    ("shim: silent at Events", `Quick, test_events_level_has_no_legacy_lines);
    ( "shim: survives ring overflow",
      `Quick,
      test_legacy_lines_survive_ring_overflow );
    ("determinism: events and metrics", `Quick, test_event_stream_determinism);
    ("export: chrome trace", `Quick, test_chrome_export_structure);
    ("metrics: registry", `Quick, test_metrics_registry);
    ("metrics: machine instruments", `Quick, test_machine_metrics_populated);
    ("snapshot: observability fields", `Quick, test_snapshot_observability_fields);
  ]
