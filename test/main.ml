(* Aggregate test runner: one alcotest binary covering every library. *)

let () =
  Alcotest.run "imax432"
    [
      ("util", Test_util.suite);
      ("model", Test_model.suite);
      ("arch", Test_arch.suite);
      ("obs", Test_obs.suite);
      ("kernel", Test_kernel.suite);
      ("gc", Test_gc.suite);
      ("imax", Test_imax.suite);
      ("extensions", Test_extensions.suite);
      ("fi", Test_fi.suite);
      ("net", Test_net.suite);
      ("store", Test_store.suite);
      ("vm", Test_vm.suite);
      ("load", Test_load.suite);
      ("txn", Test_txn.suite);
      ("units", Test_units.suite);
      ("integration", Test_integration.suite);
    ]
