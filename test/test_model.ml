(* Model-based qcheck tests for the O(log n) hot-path structures.

   Each property drives the live implementation and an inline reference
   model (the seed's O(n) sorted-list algorithm) with the same random op
   script and demands observational equality at every step.  This is the
   evidence that swapping pairing heaps / fit trees under Dispatch, Port,
   and Sro changed host cost only — service order, placement, and
   statistics are bit-identical, which is what keeps every E1-E11
   virtual-time number unchanged. *)

open I432
open I432_util
module K = I432_kernel

(* ------------------------------------------------------------------ *)
(* Pqueue vs a sorted-list priority queue                              *)
(* ------------------------------------------------------------------ *)

let prop_pqueue_matches_sorted_list =
  QCheck2.Test.make ~name:"pqueue = sorted list (priority desc, seq asc)"
    ~count:300
    QCheck2.Gen.(list (pair bool (int_range 0 7)))
    (fun script ->
      let q = Pqueue.create () in
      let model = ref [] in  (* (prio, seq, v) in service order *)
      let seq = ref 0 in
      let insert_model prio v =
        let rec go = function
          | [] -> [ (prio, !seq, v) ]
          | ((p, s, _) as x) :: rest ->
            if prio > p || (prio = p && !seq < s) then (prio, !seq, v) :: x :: rest
            else x :: go rest
        in
        model := go !model
      in
      List.for_all
        (fun (is_insert, prio) ->
          if is_insert then begin
            Pqueue.insert q ~priority:prio ~seq:!seq !seq;
            insert_model prio !seq;
            incr seq;
            Pqueue.size q = List.length !model
          end
          else
            let expected =
              match !model with
              | [] -> None
              | (_, _, v) :: rest ->
                model := rest;
                Some v
            in
            Pqueue.pop q = expected)
        script
      && Pqueue.to_sorted_list q = List.map (fun (_, _, v) -> v) !model)

(* ------------------------------------------------------------------ *)
(* Dispatch vs the seed's sorted-list ready queue                      *)
(* ------------------------------------------------------------------ *)

module Model_dispatch = struct
  type entry = { process : int; priority : int; seq : int }
  type t = { mutable ready : entry list; mutable seq : int }

  let create () = { ready = []; seq = 0 }

  let enqueue t ~process ~priority =
    let e = { process; priority; seq = t.seq } in
    t.seq <- t.seq + 1;
    let rec go = function
      | [] -> [ e ]
      | x :: rest ->
        if e.priority > x.priority then e :: x :: rest else x :: go rest
    in
    t.ready <- go t.ready

  let pop t ~eligible =
    let rec go acc = function
      | [] -> None
      | e :: rest ->
        if eligible e.process then begin
          t.ready <- List.rev_append acc rest;
          Some e.process
        end
        else go (e :: acc) rest
    in
    go [] t.ready

  let remove t ~process =
    t.ready <- List.filter (fun e -> e.process <> process) t.ready

  let mem t ~process = List.exists (fun e -> e.process = process) t.ready
  let length t = List.length t.ready
end

type dispatch_op = D_enq of int * int | D_pop of int | D_rem of int

let dispatch_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun p prio -> D_enq (p, prio)) (int_range 0 7) (int_range 0 5);
        map (fun k -> D_pop k) (int_range 0 4);
        map (fun p -> D_rem p) (int_range 0 7);
      ])

let prop_dispatch_matches_model =
  QCheck2.Test.make ~name:"dispatch = seed sorted-list ready queue" ~count:300
    QCheck2.Gen.(list dispatch_op_gen)
    (fun script ->
      let d = K.Dispatch.create () in
      let m = Model_dispatch.create () in
      List.for_all
        (fun op ->
          (match op with
          | D_enq (process, priority) ->
            K.Dispatch.enqueue d ~process ~priority;
            Model_dispatch.enqueue m ~process ~priority;
            true
          | D_pop k ->
            (* k = 4 accepts everyone; otherwise processes congruent to k
               mod 4 are ineligible and must keep their position. *)
            let eligible p = k = 4 || p mod 4 <> k in
            K.Dispatch.pop d ~eligible = Model_dispatch.pop m ~eligible
          | D_rem process ->
            K.Dispatch.remove d ~process;
            Model_dispatch.remove m ~process;
            true)
          && K.Dispatch.length d = Model_dispatch.length m
          && List.for_all
               (fun p ->
                 K.Dispatch.mem d ~process:p = Model_dispatch.mem m ~process:p)
               [ 0; 1; 2; 3; 4; 5; 6; 7 ])
        script)

(* ------------------------------------------------------------------ *)
(* Port queues vs the seed's service-ordered message list              *)
(* ------------------------------------------------------------------ *)

let prop_port_matches_model =
  QCheck2.Test.make ~name:"port queue = seed service-ordered list (both disciplines)"
    ~count:300
    QCheck2.Gen.(pair bool (list (pair bool (int_range 0 5))))
    (fun (priority_discipline, script) ->
      let discipline = if priority_discipline then K.Port.Priority else K.Port.Fifo in
      let p = K.Port.make ~self:0 ~capacity:8 ~discipline in
      (* Model: list of (prio, seq, msg_index) in service order. *)
      let model = ref [] in
      let seq = ref 0 in
      let insert_model prio v =
        match discipline with
        | K.Port.Fifo -> model := !model @ [ (prio, !seq, v) ]
        | K.Port.Priority ->
          let rec go = function
            | [] -> [ (prio, !seq, v) ]
            | ((mp, ms, _) as x) :: rest ->
              if prio > mp || (prio = mp && !seq < ms) then
                (prio, !seq, v) :: x :: rest
              else x :: go rest
          in
          model := go !model
      in
      let counter = ref 0 in
      List.for_all
        (fun (is_send, prio) ->
          (if is_send then begin
             if K.Port.is_full p then List.length !model = 8
             else begin
               let i = !counter in
               incr counter;
               K.Port.enqueue p ~msg:(Access.make ~index:i ~rights:Rights.full)
                 ~priority:prio ~now:0;
               insert_model prio i;
               incr seq;
               true
             end
           end
           else
             let got = Option.map Access.index (K.Port.dequeue p ~now:0) in
             let expected =
               match !model with
               | [] -> None
               | (_, _, v) :: rest ->
                 model := rest;
                 Some v
             in
             got = expected)
          && K.Port.queue_length p = List.length !model
          && K.Port.is_empty p = (!model = []))
        script)

(* ------------------------------------------------------------------ *)
(* Free_store vs the seed's first-fit region list                      *)
(* ------------------------------------------------------------------ *)

module Model_free_store = struct
  type region = { base : int; length : int }

  type t = { mutable free_regions : region list }

  let create length = { free_regions = [ { base = 0; length } ] }

  let take t size =
    let rec go acc = function
      | [] -> None
      | r :: rest when r.length >= size ->
        let remainder =
          if r.length = size then rest
          else { base = r.base + size; length = r.length - size } :: rest
        in
        t.free_regions <- List.rev_append acc remainder;
        Some r.base
      | r :: rest -> go (r :: acc) rest
    in
    go [] t.free_regions

  let give t ~base ~length =
    if length = 0 then ()
    else begin
      let rec insert = function
        | [] -> [ { base; length } ]
        | r :: rest ->
          if base + length < r.base then { base; length } :: r :: rest
          else if base + length = r.base then
            { base; length = length + r.length } :: rest
          else if r.base + r.length = base then
            insert_after { base = r.base; length = r.length + length } rest
          else r :: insert rest
      and insert_after grown = function
        | r :: rest when grown.base + grown.length = r.base ->
          { grown with length = grown.length + r.length } :: rest
        | rest -> grown :: rest
      in
      t.free_regions <- insert t.free_regions
    end

  let to_list t = List.map (fun r -> (r.base, r.length)) t.free_regions
  let total t = List.fold_left (fun a r -> a + r.length) 0 t.free_regions
  let largest t = List.fold_left (fun a r -> max a r.length) 0 t.free_regions
end

type store_op = F_alloc of int | F_free of int

let store_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> F_alloc s) (int_range 1 96);
        map (fun i -> F_free i) (int_range 0 200);
      ])

let prop_free_store_matches_model =
  QCheck2.Test.make
    ~name:"fit-tree free store = seed first-fit region list" ~count:200
    QCheck2.Gen.(list_size (int_range 1 80) store_op_gen)
    (fun script ->
      let heap = 2048 in
      let fs = Free_store.create () in
      Free_store.insert fs ~base:0 ~length:heap;
      let m = Model_free_store.create heap in
      let live = ref [] in  (* (base, size) of outstanding carves *)
      List.for_all
        (fun op ->
          (match op with
          | F_alloc size ->
            let got = Free_store.take_first_fit fs ~size in
            let expected = Model_free_store.take m size in
            (* Identical placement decisions, not just identical success. *)
            got = expected
            &&
            (match got with
            | Some base ->
              live := (base, size) :: !live;
              true
            | None -> true)
          | F_free i -> (
            match !live with
            | [] -> true
            | _ ->
              let n = List.length !live in
              let base, size = List.nth !live (i mod n) in
              live := List.filteri (fun j _ -> j <> i mod n) !live;
              Free_store.insert fs ~base ~length:size;
              Model_free_store.give m ~base ~length:size;
              true))
          && Free_store.to_list fs = Model_free_store.to_list m
          && Free_store.total fs = Model_free_store.total m
          && Free_store.largest fs = Model_free_store.largest m
          && Free_store.region_count fs = List.length (Model_free_store.to_list m))
        script)

(* ------------------------------------------------------------------ *)
(* SRO end-to-end: coalescing + E2's size-independence invariant       *)
(* ------------------------------------------------------------------ *)

(* Random alloc/release scripts against a real SRO: exhaustion must depend
   only on whether a large-enough region exists (size-independence of the
   fit), releasing everything must coalesce back to one region, and the
   byte accounting must balance throughout. *)
let prop_sro_coalescing_and_fit =
  QCheck2.Test.make ~name:"SRO free store: coalescing + size-independent fit"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 60) (pair bool (int_range 1 128)))
    (fun script ->
      let table = Object_table.create () in
      let total = 4096 in
      let sro = Sro.create table ~level:0 ~base:0 ~length:total in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc then (
            match
              Sro.allocate table sro ~data_length:size ~access_length:0
                ~otype:Obj_type.Generic
            with
            | a -> live := (a, size) :: !live
            | exception Fault.Fault (Fault.Storage_exhausted _) ->
              (* Exhaustion is legitimate only when no region fits. *)
              if Sro.largest_free table sro >= size then ok := false)
          else
            match !live with
            | [] -> ()
            | (a, _) :: rest ->
              Sro.release_by_access table sro ~index:(Access.index a);
              live := rest)
        script;
      let live_bytes = List.fold_left (fun acc (_, s) -> acc + s) 0 !live in
      ok := !ok && Sro.free_bytes table sro = total - live_bytes;
      (* Release everything: the store must coalesce to one full region. *)
      List.iter
        (fun (a, _) -> Sro.release_by_access table sro ~index:(Access.index a))
        !live;
      !ok
      && Sro.free_bytes table sro = total
      && Sro.region_count table sro = 1
      && Sro.largest_free table sro = total
      && Sro.live_objects table sro = 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pqueue_matches_sorted_list;
    QCheck_alcotest.to_alcotest prop_dispatch_matches_model;
    QCheck_alcotest.to_alcotest prop_port_matches_model;
    QCheck_alcotest.to_alcotest prop_free_store_matches_model;
    QCheck_alcotest.to_alcotest prop_sro_coalescing_and_fit;
  ]
