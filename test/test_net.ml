(* The virtual interconnect: wire codec, kernel hooks, cluster delivery,
   link faults, and determinism. *)

open I432
module K = I432_kernel
module Obs = I432_obs
module Fi = I432_fi.Fi
module Net = I432_net
module Filing = Imax.Object_filing
module St = I432_store.Store
module Ckpt = I432_store.Checkpoint

let mk ?(processors = 1) ?(trace = false) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        processors;
        trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
      }
    ()

let alloc m ?(data_length = 16) ?(access_length = 0) () =
  K.Machine.allocate_generic m ~data_length ~access_length ()

(* ---------------- Wire codec ---------------- *)

(* A shared, cyclic graph survives capture/reconstruct across machines:
   root -> a, root -> b, a -> shared, b -> shared, shared -> root. *)
let test_wire_cycle_and_sharing () =
  let src = mk () and dst = mk () in
  let root = alloc src ~access_length:2 () in
  let a = alloc src ~access_length:1 () in
  let b = alloc src ~access_length:1 () in
  let shared = alloc src ~access_length:1 () in
  K.Machine.write_word src root ~offset:0 1;
  K.Machine.write_word src a ~offset:0 2;
  K.Machine.write_word src b ~offset:0 3;
  K.Machine.write_word src shared ~offset:0 4;
  K.Machine.store_access src root ~slot:0 (Some a);
  K.Machine.store_access src root ~slot:1 (Some b);
  K.Machine.store_access src a ~slot:0 (Some shared);
  K.Machine.store_access src b ~slot:0 (Some shared);
  K.Machine.store_access src shared ~slot:0 (Some root);
  let wire = Filing.capture src root in
  Alcotest.(check int) "four nodes" 4 (Filing.wire_nodes wire);
  let root' = Filing.reconstruct dst wire in
  let word o = K.Machine.read_word dst o ~offset:0 in
  Alcotest.(check int) "root data" 1 (word root');
  let a' = Option.get (K.Machine.load_access dst root' ~slot:0) in
  let b' = Option.get (K.Machine.load_access dst root' ~slot:1) in
  Alcotest.(check int) "a data" 2 (word a');
  Alcotest.(check int) "b data" 3 (word b');
  let sa = Option.get (K.Machine.load_access dst a' ~slot:0) in
  let sb = Option.get (K.Machine.load_access dst b' ~slot:0) in
  Alcotest.(check int) "sharing preserved" (Access.index sa) (Access.index sb);
  Alcotest.(check int) "shared data" 4 (word sa);
  let back = Option.get (K.Machine.load_access dst sa ~slot:0) in
  Alcotest.(check int) "cycle closes at root" (Access.index root')
    (Access.index back);
  (* It's a copy: fresh indices on the destination's table. *)
  Alcotest.(check bool) "fresh identity" false
    (Access.index root = Access.index root'
    && K.Machine.table src == K.Machine.table dst)

let test_wire_rights_mask () =
  let src = mk () and dst = mk () in
  let root = alloc src ~access_length:1 () in
  let child = alloc src () in
  K.Machine.write_word src child ~offset:0 77;
  K.Machine.store_access src root ~slot:0 (Some child);
  let wire = Filing.capture src ~mask:Rights.read_only root in
  let root' = Filing.reconstruct dst wire in
  Alcotest.(check bool) "root write stripped" false
    (Rights.has_write (Access.rights root'));
  Alcotest.(check bool) "root read kept" true
    (Rights.has_read (Access.rights root'));
  let child' = Option.get (K.Machine.load_access dst root' ~slot:0) in
  Alcotest.(check bool) "edge write stripped" false
    (Rights.has_write (Access.rights child'));
  Alcotest.(check bool) "edge never amplifies" true
    (Rights.subset ~of_:(Access.rights child) (Access.rights child'));
  Alcotest.(check int) "data still crossed" 77
    (K.Machine.read_word dst child' ~offset:0)

let test_wire_sealed_instance () =
  let src = mk () and dst = mk () in
  let table = K.Machine.table src in
  let sro = K.Machine.global_sro src in
  let td = Type_def.create table sro ~name:"mailbox" in
  let inst =
    Type_def.create_instance table td sro ~data_length:8 ~access_length:0
  in
  let root = alloc src ~access_length:1 () in
  K.Machine.store_access src root ~slot:0 (Some inst);
  let wire = Filing.capture src root in
  let root' = Filing.reconstruct dst wire in
  let inst' = Option.get (K.Machine.load_access dst root' ~slot:0) in
  let e = Object_table.entry_of_access table inst in
  let e' = Object_table.entry_of_access (K.Machine.table dst) inst' in
  Alcotest.(check bool) "seal crossed intact" true
    (e.Object_table.otype = e'.Object_table.otype);
  Alcotest.(check bool) "still a sealed custom type" true
    (match e'.Object_table.otype with Obj_type.Custom _ -> true | _ -> false)

(* qcheck: random DAG-with-back-edges graphs reconstruct isomorphic — same
   canonical (discovery-order) walk on both machines. *)
let canonical_walk m root =
  let table = K.Machine.table m in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let count = ref 0 in
  let rec go access =
    let idx = Access.index access in
    match Hashtbl.find_opt seen idx with
    | Some serial -> out := `Ref serial :: !out
    | None ->
      let serial = !count in
      incr count;
      Hashtbl.add seen idx serial;
      let e = Object_table.entry_of_access table access in
      out :=
        `Node
          ( serial,
            K.Machine.read_bytes m access ~offset:0
              ~len:e.Object_table.data_length,
            Access.rights access )
        :: !out;
      Array.iter
        (function Some child -> go child | None -> out := `Hole :: !out)
        e.Object_table.access_part
  in
  go root;
  List.rev !out

let prop_wire_isomorphic =
  QCheck2.Test.make ~name:"wire codec reconstructs isomorphic graphs"
    ~count:40
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1000000))
    (fun (n, salt) ->
      let src = mk () and dst = mk () in
      let objs =
        Array.init n (fun i ->
            let o = alloc src ~data_length:8 ~access_length:3 () in
            K.Machine.write_word src o ~offset:0 ((salt * 31) + i);
            o)
      in
      (* Deterministic pseudo-random edges from the salt, including back
         edges (cycles) and sharing. *)
      let state = ref (salt + (n * 7919) + 1) in
      let next bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      Array.iteri
        (fun i o ->
          for slot = 0 to 2 do
            if next 3 > 0 then
              K.Machine.store_access src o ~slot (Some objs.(next n))
            else ignore i
          done)
        objs;
      let wire = Filing.capture src objs.(0) in
      let root' = Filing.reconstruct dst wire in
      canonical_walk src objs.(0) = canonical_walk dst root')

(* ---------------- Kernel interconnect hooks ---------------- *)

let test_deliver_external_wakes_receiver () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let got = ref (-1) in
  ignore
    (K.Machine.spawn m ~name:"rx" (fun () ->
         let msg = K.Machine.receive m ~port in
         got := K.Machine.read_word m msg ~offset:0));
  (* Park the receiver first. *)
  ignore (K.Machine.run m);
  Alcotest.(check int) "still blocked" (-1) !got;
  let msg = alloc m () in
  K.Machine.write_word m msg ~offset:0 42;
  Alcotest.(check bool) "accepted" true
    (K.Machine.deliver_external m ~port ~msg ~priority:0 ());
  ignore (K.Machine.run m);
  Alcotest.(check int) "woken with the message" 42 !got

let test_deliver_external_full_port () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  Alcotest.(check bool) "first fits" true
    (K.Machine.deliver_external m ~port ~msg:(alloc m ()) ~priority:0 ());
  Alcotest.(check bool) "second refused" false
    (K.Machine.deliver_external m ~port ~msg:(alloc m ()) ~priority:0 ())

let test_drain_port_admits_blocked_senders () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  for i = 1 to 3 do
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "tx%d" i) (fun () ->
           let msg = alloc m () in
           K.Machine.write_word m msg ~offset:0 i;
           K.Machine.send m ~port ~msg))
  done;
  (* One message queued, two senders blocked. *)
  ignore (K.Machine.run m);
  let drained = K.Machine.drain_port m ~max:2 ~port () in
  Alcotest.(check int) "bounded drain" 2 (List.length drained);
  (* The drain admitted a blocked sender into the freed slots; draining
     again (after letting it run) yields the rest in order. *)
  ignore (K.Machine.run m);
  let rest = K.Machine.drain_port m ~port () in
  let payloads =
    List.map (fun (msg, _, _, _) -> K.Machine.read_word m msg ~offset:0)
      (drained @ rest)
  in
  Alcotest.(check (list int)) "service order survives" [ 1; 2; 3 ] payloads

(* ---------------- Cluster delivery ---------------- *)

let two_nodes ?(trace = false) ?window ?max_retries () =
  let cluster = Net.Cluster.create ?window ?max_retries () in
  let config =
    {
      K.Machine.default_config with
      processors = 1;
      trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
    }
  in
  let a, ma = Net.Cluster.boot_node cluster ~name:"a" ~config () in
  let b, mb = Net.Cluster.boot_node cluster ~name:"b" ~config () in
  let link = Net.Cluster.connect cluster a b in
  (cluster, (a, ma), (b, mb), link)

(* Wire a [count]-message producer on node a and a consumer on node b
   through an exported port named "chan"; returns the consumer's payload
   list (in delivery order) after the cluster runs. *)
let ping_scenario ?(count = 5) ?(capacity = 4) (cluster, (a, ma), (b, mb), _link)
    =
  let home = K.Machine.create_port mb ~capacity ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"chan" home;
  let got = ref [] in
  ignore
    (K.Machine.spawn mb ~name:"consumer" (fun () ->
         for _ = 1 to count do
           let msg = K.Machine.receive mb ~port:home in
           got := K.Machine.read_word mb msg ~offset:0 :: !got
         done));
  let surrogate = Net.Cluster.import cluster ~node:a ~name:"chan" in
  ignore
    (K.Machine.spawn ma ~name:"producer" (fun () ->
         for i = 1 to count do
           let msg = alloc ma () in
           K.Machine.write_word ma msg ~offset:0 (i * 10);
           K.Machine.send ma ~port:surrogate ~msg
         done));
  let report = Net.Cluster.run cluster () in
  (report, List.rev !got)

let test_two_node_delivery () =
  let report, got = ping_scenario (two_nodes ()) in
  Alcotest.(check (list int)) "payloads in order" [ 10; 20; 30; 40; 50 ] got;
  Alcotest.(check int) "all delivered" 5 report.Net.Cluster.frames_delivered;
  Alcotest.(check int) "nothing lost" 0 report.Net.Cluster.frames_lost;
  Alcotest.(check int) "acks flowed back" 5 report.Net.Cluster.acks

let test_remote_latency_observable () =
  (* The consumer cannot see a message before frame latency has elapsed:
     the destination's clock at halt covers at least one one-way trip. *)
  let ((_, (_, _), (_, mb), link) as nodes) = two_nodes () in
  let _report, got = ping_scenario ~count:1 nodes in
  Alcotest.(check (list int)) "delivered" [ 10 ] got;
  Alcotest.(check bool) "consumer saw the link latency" true
    (K.Machine.now mb >= link.Net.Link.latency_ns)

let test_drop_retransmit () =
  let ((cluster, _, _, _) as nodes) = two_nodes () in
  let plan =
    {
      Fi.l_seed = 0;
      l_events = [ { Fi.l_at_ns = 0; l_link = 0; l_act = Fi.L_drop 2 } ];
    }
  in
  Net.Cluster.arm_links cluster plan;
  let report, got = ping_scenario nodes in
  Alcotest.(check int) "every message still arrives" 5 (List.length got);
  Alcotest.(check int) "delivered exactly once each" 5
    report.Net.Cluster.frames_delivered;
  Alcotest.(check bool) "recovery retransmitted" true
    (report.Net.Cluster.retransmits >= 2);
  Alcotest.(check int) "nothing permanently lost" 0
    report.Net.Cluster.frames_lost

let test_dup_detection () =
  let ((cluster, _, _, _) as nodes) = two_nodes () in
  let plan =
    {
      Fi.l_seed = 0;
      l_events = [ { Fi.l_at_ns = 0; l_link = 0; l_act = Fi.L_dup 3 } ];
    }
  in
  Net.Cluster.arm_links cluster plan;
  let report, got = ping_scenario nodes in
  Alcotest.(check (list int)) "no double delivery" [ 10; 20; 30; 40; 50 ] got;
  Alcotest.(check bool) "duplicates were filtered" true
    (report.Net.Cluster.dup_drops >= 1)

let test_partition_heal () =
  let ((cluster, _, _, link) as nodes) = two_nodes () in
  (* Sever the link for 2 ms starting immediately; traffic starts inside
     the window and must all get through after the heal. *)
  let plan =
    {
      Fi.l_seed = 0;
      l_events = [ { Fi.l_at_ns = 0; l_link = 0; l_act = Fi.L_partition 2_000_000 } ];
    }
  in
  Net.Cluster.arm_links cluster plan;
  let report, got = ping_scenario nodes in
  Alcotest.(check int) "all messages after heal" 5 (List.length got);
  Alcotest.(check int) "exactly once" 5 report.Net.Cluster.frames_delivered;
  Alcotest.(check bool) "partition dropped frames" true (link.Net.Link.dropped > 0);
  Alcotest.(check int) "none abandoned" 0 report.Net.Cluster.frames_lost

let test_partition_forever_counts_lost () =
  let ((cluster, _, _, _) as nodes) = two_nodes ~max_retries:2 () in
  let plan =
    {
      Fi.l_seed = 0;
      l_events =
        [ { Fi.l_at_ns = 0; l_link = 0; l_act = Fi.L_partition max_int } ];
    }
  in
  Net.Cluster.arm_links cluster plan;
  let report, got = ping_scenario ~count:2 nodes in
  Alcotest.(check (list int)) "nothing delivered" [] got;
  Alcotest.(check int) "both given up on" 2 report.Net.Cluster.frames_lost

let test_window_backpressure () =
  (* Window 2, surrogate capacity 2, 12 messages: senders must block and
     be re-admitted repeatedly; everything still arrives in order. *)
  let report, got =
    ping_scenario ~count:12 ~capacity:2 (two_nodes ~window:2 ())
  in
  Alcotest.(check int) "all delivered" 12 (List.length got);
  Alcotest.(check (list int)) "in order"
    (List.init 12 (fun i -> (i + 1) * 10))
    got;
  Alcotest.(check int) "frames match" 12 report.Net.Cluster.frames_delivered

let test_determinism_under_faults () =
  let run_once () =
    let ((cluster, ((_, ma)), ((_, mb)), _) as nodes) = two_nodes ~trace:true () in
    let plan = Fi.random_links ~seed:11 ~horizon_ns:5_000_000 ~links:1 ~count:6 ~partitions:1 in
    Net.Cluster.arm_links cluster plan;
    let report, got = ping_scenario ~count:8 nodes in
    ( report,
      got,
      List.map Obs.Event.to_string (K.Machine.events ma),
      List.map Obs.Event.to_string (K.Machine.events mb) )
  in
  let r1, got1, ea1, eb1 = run_once () in
  let r2, got2, ea2, eb2 = run_once () in
  Alcotest.(check bool) "same report" true (r1 = r2);
  Alcotest.(check (list int)) "same payload order" got1 got2;
  Alcotest.(check (list string)) "node a stream byte-identical" ea1 ea2;
  Alcotest.(check (list string)) "node b stream byte-identical" eb1 eb2

(* ---------------- Names, rights, routing ---------------- *)

let test_name_service_errors () =
  let cluster, (a, _ma), (b, mb), _ = two_nodes () in
  let home = K.Machine.create_port mb ~capacity:2 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"svc" home;
  Alcotest.check_raises "duplicate export"
    (Net.Name_service.Already_exported "svc") (fun () ->
      Net.Cluster.export cluster ~node:b ~name:"svc" home);
  Alcotest.check_raises "unknown import" (Net.Cluster.Not_exported "nope")
    (fun () -> ignore (Net.Cluster.import cluster ~node:a ~name:"nope"));
  let c, _mc = Net.Cluster.boot_node cluster ~name:"c" () in
  (* c has no link to b. *)
  (try
     ignore (Net.Cluster.import cluster ~node:c ~name:"svc");
     Alcotest.fail "expected No_route"
   with Net.Cluster.No_route _ -> ());
  Alcotest.(check (list string)) "names sorted" [ "svc" ]
    (Net.Remote_port.names cluster);
  Alcotest.(check (option (pair int int))) "resolve" (Some (b, 2))
    (Net.Remote_port.resolve cluster "svc");
  ignore a

let test_surrogate_is_send_only () =
  let cluster, (a, ma), (b, mb), _ = two_nodes () in
  let home = K.Machine.create_port mb ~capacity:2 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"svc" home;
  let surrogate = Net.Cluster.import cluster ~node:a ~name:"svc" in
  Alcotest.(check bool) "send right kept" true
    (Rights.has_type_right (Access.rights surrogate) Rights.t1);
  Alcotest.(check bool) "receive right withheld" false
    (Rights.has_type_right (Access.rights surrogate) Rights.t2);
  (* A local process trying to receive from the surrogate faults: the
     kernel routes the rights violation to the process's fault state. *)
  let thief =
    K.Machine.spawn ma ~name:"thief" (fun () ->
        ignore (K.Machine.receive ma ~port:surrogate))
  in
  ignore (Net.Cluster.run cluster ());
  let faulted =
    match (K.Machine.process_state ma thief).K.Process.status with
    | K.Process.Faulted (Fault.Rights_violation _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "receive denied" true faulted;
  ignore b

let test_import_on_home_node () =
  let cluster, (_a, _ma), (b, mb), _ = two_nodes () in
  let home = K.Machine.create_port mb ~capacity:4 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"svc" home;
  let local = Net.Cluster.import cluster ~node:b ~name:"svc" in
  let got = ref 0 in
  ignore
    (K.Machine.spawn mb ~name:"rx" (fun () ->
         got := K.Machine.read_word mb (K.Machine.receive mb ~port:home) ~offset:0));
  ignore
    (K.Machine.spawn mb ~name:"tx" (fun () ->
         let msg = alloc mb () in
         K.Machine.write_word mb msg ~offset:0 9;
         K.Machine.send mb ~port:local ~msg));
  let report = Net.Cluster.run cluster () in
  Alcotest.(check int) "local resolution short-circuits" 9 !got;
  Alcotest.(check int) "no frames crossed" 0 report.Net.Cluster.frames_sent

let test_link_plan_deterministic () =
  let p1 = Fi.random_links ~seed:5 ~horizon_ns:1_000_000 ~links:3 ~count:8 ~partitions:2 in
  let p2 = Fi.random_links ~seed:5 ~horizon_ns:1_000_000 ~links:3 ~count:8 ~partitions:2 in
  Alcotest.(check string) "same seed, same plan" (Fi.link_plan_to_string p1)
    (Fi.link_plan_to_string p2);
  let sorted = List.for_all2
      (fun (a : Fi.link_event) b -> a.Fi.l_at_ns <= b.Fi.l_at_ns)
      (List.filteri (fun i _ -> i < List.length p1.Fi.l_events - 1) p1.Fi.l_events)
      (List.tl p1.Fi.l_events)
  in
  Alcotest.(check bool) "sorted by instant" true sorted;
  let p3 = Fi.random_links ~seed:6 ~horizon_ns:1_000_000 ~links:3 ~count:8 ~partitions:2 in
  Alcotest.(check bool) "different seed, different plan" true
    (Fi.link_plan_to_string p1 <> Fi.link_plan_to_string p3)

(* ---------------- Parallel engine: seq == par, byte for byte -------- *)

(* A star cluster: node 0 is the hub, nodes 1..n-1 are clients, each
   linked to the hub.  Every client streams [count] messages to the hub's
   exported port while a seeded link-fault plan shakes the wires.
   Returns every observable the determinism contract covers: the report,
   delivery order, per-node event streams, per-node state images, and the
   deterministically merged metrics dump. *)
let star_scenario ~engine ~nodes:n ~seed ~count () =
  let cluster = Net.Cluster.create () in
  let config =
    {
      K.Machine.default_config with
      processors = 1;
      trace_level = Obs.Tracer.Events;
    }
  in
  let ids =
    Array.init n (fun i ->
        Net.Cluster.boot_node cluster ~name:(Printf.sprintf "n%d" i) ~config ())
  in
  let hub, mhub = ids.(0) in
  for i = 1 to n - 1 do
    ignore (Net.Cluster.connect cluster (fst ids.(i)) hub)
  done;
  let home = K.Machine.create_port mhub ~capacity:4 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:hub ~name:"hub" home;
  let total = (n - 1) * count in
  let got = ref [] in
  ignore
    (K.Machine.spawn mhub ~name:"consumer" (fun () ->
         for _ = 1 to total do
           let msg = K.Machine.receive mhub ~port:home in
           got := K.Machine.read_word mhub msg ~offset:0 :: !got
         done));
  for i = 1 to n - 1 do
    let id, mi = ids.(i) in
    let surrogate = Net.Cluster.import cluster ~node:id ~name:"hub" in
    ignore
      (K.Machine.spawn mi ~name:(Printf.sprintf "producer%d" i) (fun () ->
           for j = 1 to count do
             let msg = alloc mi () in
             K.Machine.write_word mi msg ~offset:0 ((i * 1000) + j);
             K.Machine.send mi ~port:surrogate ~msg
           done))
  done;
  let plan =
    Fi.random_links ~seed ~horizon_ns:5_000_000 ~links:(n - 1) ~count:5
      ~partitions:1
  in
  Net.Cluster.arm_links cluster plan;
  let report = Net.Cluster.run cluster ~engine () in
  let streams =
    Array.map
      (fun (_, m) -> List.map Obs.Event.to_string (K.Machine.events m))
      ids
  in
  let snaps = Array.map (fun (_, m) -> K.Snapshot.state_image m) ids in
  let merged = Obs.Metrics.create () in
  Array.iter
    (fun (_, m) ->
      Obs.Metrics.merge_into ~dst:merged ~src:(K.Machine.metrics m))
    ids;
  ( report,
    List.rev !got,
    streams,
    snaps,
    Obs.Jout.to_string (Obs.Metrics.to_json merged) )

let prop_par_engine_identical =
  QCheck2.Test.make
    ~name:"par engine: 2- and 4-domain runs byte-identical to sequential"
    ~count:8
    QCheck2.Gen.(triple (int_range 2 5) (int_range 0 10_000) (int_range 1 6))
    (fun (n, seed, count) ->
      let observe engine = star_scenario ~engine ~nodes:n ~seed ~count () in
      let base = observe Net.Cluster.Seq in
      List.for_all
        (fun d -> observe (Net.Cluster.Par d) = base)
        [ 2; 4 ])

(* The bench scenario (bench/par_speedup.ml): a fault-free spoke cluster
   where each client spools compute-heavy jobs to the hub.  The speedup
   number is only meaningful if both engines produce the same run, so the
   parity is pinned here as a unit test too. *)
let spool_scenario ~engine ~clients ~jobs () =
  let cluster = Net.Cluster.create () in
  let config =
    {
      K.Machine.default_config with
      processors = 1;
      trace_level = Obs.Tracer.Events;
    }
  in
  let n = clients + 1 in
  let ids =
    Array.init n (fun i ->
        Net.Cluster.boot_node cluster ~name:(Printf.sprintf "s%d" i) ~config ())
  in
  let hub, mhub = ids.(0) in
  for i = 1 to clients do
    ignore (Net.Cluster.connect cluster (fst ids.(i)) hub)
  done;
  let home = K.Machine.create_port mhub ~capacity:8 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:hub ~name:"spool" home;
  ignore
    (K.Machine.spawn mhub ~name:"printshop" (fun () ->
         for _ = 1 to clients * jobs do
           ignore (K.Machine.receive mhub ~port:home)
         done));
  for i = 1 to clients do
    let id, mi = ids.(i) in
    let surrogate = Net.Cluster.import cluster ~node:id ~name:"spool" in
    ignore
      (K.Machine.spawn mi ~name:(Printf.sprintf "client%d" i) (fun () ->
           for j = 1 to jobs do
             let msg = alloc mi ~data_length:64 () in
             K.Machine.write_word mi msg ~offset:0 ((i * 100) + j);
             K.Machine.send mi ~port:surrogate ~msg
           done))
  done;
  let report = Net.Cluster.run cluster ~engine () in
  let streams =
    Array.map
      (fun (_, m) -> List.map Obs.Event.to_string (K.Machine.events m))
      ids
  in
  let snaps = Array.map (fun (_, m) -> K.Snapshot.state_image m) ids in
  (report, streams, snaps)

let test_par_bench_scenario_parity () =
  let seq = spool_scenario ~engine:Net.Cluster.Seq ~clients:3 ~jobs:4 () in
  let par2 = spool_scenario ~engine:(Net.Cluster.Par 2) ~clients:3 ~jobs:4 () in
  let par4 = spool_scenario ~engine:(Net.Cluster.Par 4) ~clients:3 ~jobs:4 () in
  Alcotest.(check bool) "2 domains match sequential" true (par2 = seq);
  Alcotest.(check bool) "4 domains match sequential" true (par4 = seq);
  let report, _, _ = seq in
  Alcotest.(check int) "all jobs crossed the wire" 12
    report.Net.Cluster.frames_delivered

(* ---------------- Whole-node failure and rejoin ---------------- *)

let test_name_service_epochs () =
  let cluster, _, (b, mb), _ = two_nodes () in
  let ns = Net.Cluster.name_service cluster in
  Alcotest.(check int) "fresh service at epoch 0" 0 (Net.Name_service.epoch ns);
  let p1 = K.Machine.create_port mb ~capacity:2 ~discipline:K.Port.Fifo () in
  let p2 = K.Machine.create_port mb ~capacity:2 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"one" p1;
  Net.Cluster.export cluster ~node:b ~name:"two" p2;
  Alcotest.(check int) "each publish bumps" 2 (Net.Name_service.epoch ns);
  let e1 = Option.get (Net.Name_service.lookup ns "one") in
  let e2 = Option.get (Net.Name_service.lookup ns "two") in
  Alcotest.(check int) "entry stamped with its epoch" 1
    e1.Net.Name_service.e_epoch;
  Alcotest.(check int) "later entry, later stamp" 2
    e2.Net.Name_service.e_epoch;
  Net.Name_service.unpublish ns "one";
  Alcotest.(check int) "unpublish bumps too" 3 (Net.Name_service.epoch ns);
  Alcotest.(check bool) "withdrawn name gone" true
    (Net.Name_service.lookup ns "one" = None);
  Alcotest.(check (list string)) "survivor listed" [ "two" ]
    (Net.Name_service.names ns);
  (match Net.Name_service.unpublish ns "one" with
  | () -> Alcotest.fail "expected Not_published"
  | exception Net.Name_service.Not_published n ->
    Alcotest.(check string) "exception names the name" "one" n);
  Net.Cluster.export cluster ~node:b ~name:"one" p1;
  let e1' = Option.get (Net.Name_service.lookup ns "one") in
  Alcotest.(check int) "republished entry carries the new epoch" 4
    e1'.Net.Name_service.e_epoch

(* A send to a node that died and never comes back must terminate with a
   typed, counted failure — never hang the sender.  Jobs spaced so some
   frames can only arrive after the kill: those retry with the doubling
   backoff, exhaust [max_retries], and surface as Frame_dead + Dead_letter
   events with matching channel counters. *)
let test_dead_node_sends_dead_letter_loudly () =
  let cluster, (a, ma), (b, mb), _ = two_nodes ~trace:true ~max_retries:2 () in
  let home = K.Machine.create_port mb ~capacity:4 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"sink" home;
  ignore
    (K.Machine.spawn mb ~name:"consumer" (fun () ->
         for _ = 1 to 4 do
           ignore (K.Machine.receive mb ~port:home)
         done));
  let surrogate = Net.Cluster.import cluster ~node:a ~name:"sink" in
  ignore
    (K.Machine.spawn ma ~name:"producer" (fun () ->
         for i = 1 to 4 do
           let msg = alloc ma () in
           K.Machine.write_word ma msg ~offset:0 i;
           K.Machine.send ma ~port:surrogate ~msg;
           K.Machine.delay ma ~ns:200_000
         done));
  Net.Cluster.arm_nodes cluster
    ~restore:(fun ~node:_ ~at_ns:_ -> Alcotest.fail "no restart in this plan")
    {
      Fi.n_seed = 0;
      n_events = [ { Fi.n_at_ns = 300_000; n_node = b; n_act = Fi.N_kill } ];
    };
  (* The run returning at all is the headline: bounded retry, no hang. *)
  let report = Net.Cluster.run cluster () in
  Alcotest.(check bool) "victim stayed down" false
    (Net.Cluster.node_alive cluster b);
  Alcotest.(check bool) "some frames gave up" true
    (report.Net.Cluster.frames_lost >= 2);
  Alcotest.(check int) "every loss was a dead letter"
    report.Net.Cluster.frames_lost report.Net.Cluster.dead_letters;
  Alcotest.(check int) "cluster counter agrees"
    report.Net.Cluster.dead_letters
    (Net.Cluster.dead_letters cluster);
  let count kind =
    List.length
      (List.filter
         (fun (e : Obs.Event.t) -> e.Obs.Event.kind = kind)
         (K.Machine.events ma))
  in
  Alcotest.(check int) "one Frame_dead event per lost frame"
    report.Net.Cluster.frames_lost
    (count Obs.Event.Frame_dead);
  Alcotest.(check int) "one Dead_letter event per dead letter"
    report.Net.Cluster.dead_letters
    (count Obs.Event.Dead_letter);
  let dead, letters =
    List.fold_left
      (fun (d, l) (ch : Net.Cluster.channel) ->
        (d + ch.Net.Cluster.ch_frames_dead, l + ch.Net.Cluster.ch_dead_letters))
      (0, 0) (Net.Cluster.channels cluster)
  in
  Alcotest.(check int) "per-channel dead counters sum to the report"
    report.Net.Cluster.frames_lost dead;
  Alcotest.(check int) "per-channel dead-letter counters sum to the report"
    report.Net.Cluster.dead_letters letters;
  Alcotest.(check int) "nothing left pending" 0
    (Net.Cluster.frames_in_flight cluster
    + Net.Cluster.total_unacked cluster
    + Net.Cluster.total_backlog cluster)

(* The kill-restart-rejoin scenario: a producer on node 0 streams jobs to
   a consumer on node 1 across the wire, spaced so traffic straddles any
   kill instant. *)
let rejoin_boot () =
  let cluster = Net.Cluster.create () in
  let config =
    {
      K.Machine.default_config with
      processors = 1;
      trace_level = Obs.Tracer.Events;
    }
  in
  let a, ma = Net.Cluster.boot_node cluster ~name:"prod" ~config () in
  let b, mb = Net.Cluster.boot_node cluster ~name:"cons" ~config () in
  ignore (Net.Cluster.connect cluster a b);
  let home = K.Machine.create_port mb ~capacity:4 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"sink" home;
  ignore
    (K.Machine.spawn mb ~name:"consumer" (fun () ->
         for _ = 1 to 6 do
           ignore (K.Machine.receive mb ~port:home)
         done));
  let surrogate = Net.Cluster.import cluster ~node:a ~name:"sink" in
  ignore
    (K.Machine.spawn ma ~name:"producer" (fun () ->
         for i = 1 to 6 do
           let msg = alloc ma () in
           K.Machine.write_word ma msg ~offset:0 i;
           K.Machine.send ma ~port:surrogate ~msg;
           K.Machine.delay ma ~ns:150_000
         done));
  cluster

(* Checkpoint at round boundary [k], kill the consumer exactly there,
   splice a verified checkpoint replay back in 300 us later, run to
   completion.  Returns every observable the rejoin contract covers. *)
let rejoin_staged ~quantum_ns k =
  let path = Filename.temp_file "imax_rejoin" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".tmp" ])
    (fun () ->
      let cluster = rejoin_boot () in
      let r1 = Net.Cluster.run cluster ~quantum_ns ~max_rounds:k () in
      let store = St.open_ path in
      Fun.protect
        ~finally:(fun () -> St.close store)
        (fun () ->
          ignore
            (Ckpt.save_cluster store ~key:"rejoin"
               ~rounds:r1.Net.Cluster.rounds ~quantum_ns cluster);
          let kill_at = r1.Net.Cluster.horizon_ns in
          Net.Cluster.arm_nodes cluster
            ~restore:(fun ~node ~at_ns:_ ->
              Ckpt.restore_node store ~key:"rejoin" ~node ~boot:rejoin_boot)
            {
              Fi.n_seed = k;
              n_events =
                [
                  { Fi.n_at_ns = kill_at; n_node = 1; n_act = Fi.N_kill };
                  {
                    Fi.n_at_ns = kill_at + 300_000;
                    n_node = 1;
                    n_act = Fi.N_restart;
                  };
                ];
            };
          let report = Net.Cluster.run cluster ~quantum_ns () in
          let machines =
            List.init 2 (fun i -> Net.Cluster.machine cluster i)
          in
          let streams =
            List.map
              (fun m -> List.map Obs.Event.to_string (K.Machine.events m))
              machines
          in
          let invariants = List.concat_map Fi.check_invariants machines in
          let pending =
            Net.Cluster.frames_in_flight cluster
            + Net.Cluster.total_unacked cluster
            + Net.Cluster.total_backlog cluster
          in
          ( report,
            streams,
            Net.Cluster.node_alive cluster 1,
            pending,
            invariants,
            Net.Name_service.epoch (Net.Cluster.name_service cluster) )))

(* Sweep the kill instant across every round boundary of the run: at each
   one the rejoin must complete the full workload with nothing lost, the
   victim back up under a bumped name-service epoch, and a second
   identically staged run byte-identical — the kill lands on the
   checkpoint horizon, so the rollback window is empty by construction. *)
let test_kill_restart_every_boundary () =
  let quantum_ns = 100_000 in
  let probe = Net.Cluster.run (rejoin_boot ()) ~quantum_ns () in
  let total_rounds = probe.Net.Cluster.rounds in
  Alcotest.(check bool) "scenario spans several rounds" true (total_rounds >= 5);
  for k = 1 to total_rounds - 1 do
    let ((report, _, alive, pending, invariants, epoch) as once) =
      rejoin_staged ~quantum_ns k
    in
    let ctx fmt = Printf.sprintf (fmt ^^ " (kill at round %d)") k in
    Alcotest.(check bool)
      (ctx "staged rerun byte-identical")
      true
      (rejoin_staged ~quantum_ns k = once);
    Alcotest.(check int) (ctx "all jobs delivered") 6
      report.Net.Cluster.frames_delivered;
    Alcotest.(check int) (ctx "nothing lost") 0 report.Net.Cluster.frames_lost;
    Alcotest.(check int) (ctx "no dead letters") 0
      report.Net.Cluster.dead_letters;
    Alcotest.(check bool) (ctx "victim rejoined") true alive;
    Alcotest.(check int) (ctx "nothing pending") 0 pending;
    Alcotest.(check (list string)) (ctx "invariants hold") [] invariants;
    (* Export at epoch 1; the kill withdraws (2) and the restart
       republishes (3). *)
    Alcotest.(check int) (ctx "name republished under bumped epoch") 3 epoch
  done

(* Random star topology under a seeded random node-fault plan: kills and
   restarts at arbitrary instants, with a replay-equivalent restore hook
   (rebuild the scenario, replay whole rounds below the kill, then the
   partial slice — exactly the state the dead incarnation had).  The
   parallel engine must reproduce the sequential run byte for byte:
   report, delivery order, event streams, state images, merged metrics. *)
let node_chaos_scenario ~engine ~nodes:n ~seed ~count ~kills () =
  let quantum_ns = 100_000 in
  let build () =
    let cluster = Net.Cluster.create () in
    let config =
      {
        K.Machine.default_config with
        processors = 1;
        trace_level = Obs.Tracer.Events;
      }
    in
    let ids =
      Array.init n (fun i ->
          Net.Cluster.boot_node cluster ~name:(Printf.sprintf "c%d" i) ~config
            ())
    in
    let hub, mhub = ids.(0) in
    for i = 1 to n - 1 do
      ignore (Net.Cluster.connect cluster (fst ids.(i)) hub)
    done;
    let home =
      K.Machine.create_port mhub ~capacity:4 ~discipline:K.Port.Fifo ()
    in
    Net.Cluster.export cluster ~node:hub ~name:"hub" home;
    let total = (n - 1) * count in
    ignore
      (K.Machine.spawn mhub ~name:"consumer" (fun () ->
           for _ = 1 to total do
             ignore (K.Machine.receive mhub ~port:home)
           done));
    for i = 1 to n - 1 do
      let id, mi = ids.(i) in
      let surrogate = Net.Cluster.import cluster ~node:id ~name:"hub" in
      ignore
        (K.Machine.spawn mi ~name:(Printf.sprintf "producer%d" i) (fun () ->
             for j = 1 to count do
               let msg = alloc mi () in
               K.Machine.write_word mi msg ~offset:0 ((i * 1000) + j);
               K.Machine.send mi ~port:surrogate ~msg;
               K.Machine.delay mi ~ns:200_000
             done))
    done;
    cluster
  in
  let cluster = build () in
  let plan = Fi.random_nodes ~seed ~horizon_ns:4_000_000 ~nodes:n ~kills in
  let restore ~node ~at_ns:_ =
    let kill_at =
      List.fold_left
        (fun acc (e : Fi.node_event) ->
          if e.Fi.n_node = node && e.Fi.n_act = Fi.N_kill then
            max acc e.Fi.n_at_ns
          else acc)
        0 plan.Fi.n_events
    in
    let shadow = build () in
    let full = ((kill_at + quantum_ns - 1) / quantum_ns) - 1 in
    if full > 0 then
      ignore (Net.Cluster.run shadow ~quantum_ns ~max_rounds:full ());
    let m = Net.Cluster.machine shadow node in
    ignore (K.Machine.run ~max_ns:kill_at m);
    m
  in
  Net.Cluster.arm_nodes cluster ~restore plan;
  let report = Net.Cluster.run cluster ~engine ~quantum_ns () in
  let machines = List.init n (fun i -> Net.Cluster.machine cluster i) in
  let streams =
    List.map (fun m -> List.map Obs.Event.to_string (K.Machine.events m))
      machines
  in
  let snaps = List.map K.Snapshot.state_image machines in
  let merged = Obs.Metrics.create () in
  List.iter
    (fun m -> Obs.Metrics.merge_into ~dst:merged ~src:(K.Machine.metrics m))
    machines;
  (report, streams, snaps, Obs.Jout.to_string (Obs.Metrics.to_json merged))

let prop_node_chaos_par_identical =
  QCheck2.Test.make
    ~name:"chaos: node kill/rejoin plans byte-identical under Par 2" ~count:6
    QCheck2.Gen.(
      quad (int_range 2 4) (int_range 0 10_000) (int_range 1 4) (int_range 1 2))
    (fun (n, seed, count, kills) ->
      let observe engine =
        node_chaos_scenario ~engine ~nodes:n ~seed ~count ~kills ()
      in
      observe (Net.Cluster.Par 2) = observe Net.Cluster.Seq)

(* ---------------- Par_exec pool ---------------- *)

exception Boom of int

let test_par_exec_runs_every_task () =
  let pool = Net.Par_exec.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Net.Par_exec.shutdown pool)
    (fun () ->
      let hits = Array.make 64 0 in
      Net.Par_exec.run pool ~tasks:64 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (list int))
        "each task exactly once"
        (List.init 64 (fun _ -> 1))
        (Array.to_list hits);
      (* The pool is reusable across batches, including empty ones. *)
      Net.Par_exec.run pool ~tasks:0 (fun _ -> assert false);
      Net.Par_exec.run pool ~tasks:64 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (list int))
        "second batch too"
        (List.init 64 (fun _ -> 2))
        (Array.to_list hits))

let test_par_exec_lowest_failure_wins () =
  let pool = Net.Par_exec.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Net.Par_exec.shutdown pool)
    (fun () ->
      (try
         Net.Par_exec.run pool ~tasks:10 (fun i ->
             if i mod 3 = 1 then raise (Boom i));
         Alcotest.fail "expected Boom"
       with Boom i -> Alcotest.(check int) "lowest failing index" 1 i);
      (* A failed batch leaves the pool healthy. *)
      let ok = ref 0 in
      Net.Par_exec.run pool ~tasks:5 (fun _ -> incr ok);
      Alcotest.(check bool) "pool survives a failure" true (!ok >= 1))

let test_metrics_single_writer () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.claim r;
  (* Re-claiming from the same domain is fine (Machine.run nests). *)
  Obs.Metrics.claim r;
  let refused =
    Stdlib.Domain.join
      (Stdlib.Domain.spawn (fun () ->
           match Obs.Metrics.claim r with
           | () -> false
           | exception Failure _ -> true))
  in
  Alcotest.(check bool) "second domain refused while claimed" true refused;
  Obs.Metrics.release r;
  let ok =
    Stdlib.Domain.join
      (Stdlib.Domain.spawn (fun () ->
           match Obs.Metrics.claim r with
           | () ->
             Obs.Metrics.release r;
             true
           | exception Failure _ -> false))
  in
  Alcotest.(check bool) "claimable again after release" true ok

let test_metrics_merge_deterministic () =
  let mk_reg salt =
    let r = Obs.Metrics.create () in
    Obs.Metrics.incr ~by:(10 + salt) (Obs.Metrics.counter r "net.frames_tx");
    Obs.Metrics.set (Obs.Metrics.gauge r "ready.len") salt;
    let h = Obs.Metrics.histogram r ~buckets:4 ~lo:0.0 ~hi:100.0 "lat" in
    Obs.Metrics.observe h (float_of_int (salt * 30));
    r
  in
  let merge regs =
    let dst = Obs.Metrics.create () in
    List.iter (fun src -> Obs.Metrics.merge_into ~dst ~src) regs;
    Obs.Jout.to_string (Obs.Metrics.to_json dst)
  in
  let a () = mk_reg 1 and b () = mk_reg 2 in
  Alcotest.(check string) "same node order, same bytes"
    (merge [ a (); b () ])
    (merge [ a (); b () ]);
  let merged = merge [ a (); b () ] in
  Alcotest.(check bool) "counters summed" true
    (let dst = Obs.Metrics.create () in
     List.iter (fun src -> Obs.Metrics.merge_into ~dst ~src) [ a (); b () ];
     Obs.Metrics.counter_value (Obs.Metrics.counter dst "net.frames_tx") = 23);
  Alcotest.(check bool) "dump is non-empty json" true
    (String.length merged > 2)

let suite =
  [
    Alcotest.test_case "wire: cycle and sharing cross nodes" `Quick
      test_wire_cycle_and_sharing;
    Alcotest.test_case "wire: export mask caps rights" `Quick
      test_wire_rights_mask;
    Alcotest.test_case "wire: sealed instance keeps its type" `Quick
      test_wire_sealed_instance;
    QCheck_alcotest.to_alcotest prop_wire_isomorphic;
    Alcotest.test_case "hook: deliver_external wakes receiver" `Quick
      test_deliver_external_wakes_receiver;
    Alcotest.test_case "hook: deliver_external refuses when full" `Quick
      test_deliver_external_full_port;
    Alcotest.test_case "hook: drain_port admits blocked senders" `Quick
      test_drain_port_admits_blocked_senders;
    Alcotest.test_case "cluster: two-node delivery in order" `Quick
      test_two_node_delivery;
    Alcotest.test_case "cluster: latency is observable" `Quick
      test_remote_latency_observable;
    Alcotest.test_case "cluster: drops recovered by retransmit" `Quick
      test_drop_retransmit;
    Alcotest.test_case "cluster: duplicates filtered" `Quick test_dup_detection;
    Alcotest.test_case "cluster: partition heals" `Quick test_partition_heal;
    Alcotest.test_case "cluster: permanent partition counts lost" `Quick
      test_partition_forever_counts_lost;
    Alcotest.test_case "cluster: window backpressure" `Quick
      test_window_backpressure;
    Alcotest.test_case "cluster: same seed, same streams" `Quick
      test_determinism_under_faults;
    Alcotest.test_case "names: errors and resolution" `Quick
      test_name_service_errors;
    Alcotest.test_case "rights: surrogate is send-only" `Quick
      test_surrogate_is_send_only;
    Alcotest.test_case "names: import on home node" `Quick
      test_import_on_home_node;
    Alcotest.test_case "fi: link plans are deterministic" `Quick
      test_link_plan_deterministic;
    Alcotest.test_case "chaos: name service epochs and unpublish" `Quick
      test_name_service_epochs;
    Alcotest.test_case "chaos: sends to a dead node dead-letter loudly" `Quick
      test_dead_node_sends_dead_letter_loudly;
    Alcotest.test_case "chaos: kill/restart at every round boundary" `Quick
      test_kill_restart_every_boundary;
    QCheck_alcotest.to_alcotest prop_node_chaos_par_identical;
    QCheck_alcotest.to_alcotest prop_par_engine_identical;
    Alcotest.test_case "par: bench scenario identical on both engines" `Quick
      test_par_bench_scenario_parity;
    Alcotest.test_case "par: pool runs every task once" `Quick
      test_par_exec_runs_every_task;
    Alcotest.test_case "par: lowest-index failure re-raised" `Quick
      test_par_exec_lowest_failure_wins;
    Alcotest.test_case "par: metrics registry single-writer" `Quick
      test_metrics_single_writer;
    Alcotest.test_case "par: metrics merge is deterministic" `Quick
      test_metrics_merge_deterministic;
  ]
