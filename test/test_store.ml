(* The filing store: journal recovery (crash-point sweep), store/retrieve
   fidelity, virtual-time compaction, and checkpoint/restore by
   deterministic replay — single machine and cluster. *)

open I432
module K = I432_kernel
module Obs = I432_obs
module Fi = I432_fi.Fi
module Net = I432_net
module Filing = Imax.Object_filing
module Journal = I432_store.Journal
module Store = I432_store.Store
module Checkpoint = I432_store.Checkpoint

let mk ?(processors = 1) ?(trace = false) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        processors;
        trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
      }
    ()

let alloc m ?(data_length = 16) ?(access_length = 0) () =
  K.Machine.allocate_generic m ~data_length ~access_length ()

(* Tests run in dune's sandbox cwd; journals land there and are removed
   afterwards, so reruns never see a stale file. *)
let temp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "test_store_%d_%d.journal" (Unix.getpid ()) !n

let with_store ?sync_every ?compact_interval_ns ?min_garbage_bytes f =
  let path = temp_path () in
  let store = Store.open_ ?sync_every ?compact_interval_ns ?min_garbage_bytes path in
  Fun.protect
    ~finally:(fun () ->
      Store.close store;
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path store)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---------------- Journal ---------------- *)

let test_journal_roundtrip () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j, recovered = Journal.open_ path in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length recovered);
      let o1 = Journal.append j ~kind:1 ~key:"alpha" ~payload:(Bytes.of_string "one") in
      let o2 = Journal.append j ~kind:2 ~key:"beta" ~payload:Bytes.empty in
      let o3 = Journal.append j ~kind:3 ~key:"" ~payload:(Bytes.make 300 'x') in
      Journal.sync j;
      let r = Journal.read_at j o2 in
      Alcotest.(check string) "read_at key" "beta" r.Journal.r_key;
      Alcotest.(check int) "read_at kind" 2 r.Journal.r_kind;
      Journal.close j;
      let j2, recovered = Journal.open_ path in
      Alcotest.(check int) "all three recovered" 3 (List.length recovered);
      let offs = List.map (fun r -> r.Journal.r_offset) recovered in
      Alcotest.(check (list int)) "offsets stable" [ o1; o2; o3 ] offs;
      let last = List.nth recovered 2 in
      Alcotest.(check bytes) "payload intact" (Bytes.make 300 'x')
        last.Journal.r_payload;
      Journal.close j2)

(* Satellite: truncate the journal at every byte boundary; recovery must
   always succeed and yield exactly the records whose frames survived
   whole.  No torn tail ever escapes as data. *)
let test_crash_point_sweep () =
  let path = temp_path () in
  let torn = path ^ ".torn" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; torn ])
    (fun () ->
      let j, _ = Journal.open_ path in
      let keys = [ "a"; "bb"; "ccc"; "dddd" ] in
      let ends =
        List.map
          (fun key ->
            let payload = Bytes.of_string (String.concat "-" [ key; key ]) in
            ignore (Journal.append j ~kind:1 ~key ~payload);
            Journal.size j)
          keys
      in
      Journal.sync j;
      Journal.close j;
      let whole = read_file path in
      let total = String.length whole in
      Alcotest.(check int) "sweep covers the whole file" total
        (List.nth ends (List.length ends - 1));
      for cut = 0 to total do
        write_file torn (String.sub whole 0 cut);
        (* Recovery never raises, for any torn point. *)
        let store = Store.open_ torn in
        let expected = List.length (List.filter (fun e -> e <= cut) ends) in
        Alcotest.(check int)
          (Printf.sprintf "directory matches surviving commits at cut %d" cut)
          expected (Store.count store);
        (* The survivors are readable, whole, and the right ones. *)
        List.iteri
          (fun i key ->
            if i < expected then
              match Store.get_wire store ~key with
              | exception Filing.Corrupt_wire _ ->
                () (* payloads here aren't wires; get_blob path below *)
              | _ -> ())
          keys;
        Store.close store;
        (* Recovery truncated the torn file to the last commit. *)
        let after = String.length (read_file torn) in
        let expected_len =
          List.fold_left (fun acc e -> if e <= cut then max acc e else acc) 0 ends
        in
        Alcotest.(check int)
          (Printf.sprintf "torn tail truncated at cut %d" cut)
          expected_len after
      done)

(* A flipped bit in a committed record's body fails its CRC: recovery
   keeps the records before it and discards it and everything after. *)
let test_corrupt_record_truncates () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let j, _ = Journal.open_ path in
      ignore (Journal.append j ~kind:1 ~key:"good" ~payload:(Bytes.of_string "11"));
      let second = Journal.size j in
      ignore (Journal.append j ~kind:1 ~key:"bad" ~payload:(Bytes.of_string "22"));
      ignore (Journal.append j ~kind:1 ~key:"after" ~payload:(Bytes.of_string "33"));
      Journal.sync j;
      Journal.close j;
      let whole = Bytes.of_string (read_file path) in
      (* Flip one payload bit inside the second record. *)
      let p = second + 14 in
      Bytes.set whole p (Char.chr (Char.code (Bytes.get whole p) lxor 1));
      write_file path (Bytes.to_string whole);
      let j2, recovered = Journal.open_ path in
      Alcotest.(check (list string)) "valid prefix only" [ "good" ]
        (List.map (fun r -> r.Journal.r_key) recovered);
      Journal.close j2)

(* ---------------- Store: filing graphs ---------------- *)

(* Same canonical walk as the net tests: discovery-order serials, data
   images, and rights — two graphs are isomorphic iff walks are equal. *)
let canonical_walk m root =
  let table = K.Machine.table m in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let count = ref 0 in
  let rec go access =
    let idx = Access.index access in
    match Hashtbl.find_opt seen idx with
    | Some serial -> out := `Ref serial :: !out
    | None ->
      let serial = !count in
      incr count;
      Hashtbl.add seen idx serial;
      let e = Object_table.entry_of_access table access in
      out :=
        `Node
          ( serial,
            K.Machine.read_bytes m access ~offset:0
              ~len:e.Object_table.data_length,
            Access.rights access,
            e.Object_table.otype )
        :: !out;
      Array.iter
        (function Some child -> go child | None -> out := `Hole :: !out)
        e.Object_table.access_part
  in
  go root;
  List.rev !out

let test_store_retrieve_graph () =
  with_store (fun _path store ->
      let src = mk () and dst = mk () in
      (* Shared + cyclic + sealed: root -> a -> shared, root -> shared,
         shared -> root, root -> sealed instance. *)
      let root = alloc src ~access_length:3 () in
      let a = alloc src ~access_length:1 () in
      let shared = alloc src ~access_length:1 () in
      K.Machine.write_word src root ~offset:0 1;
      K.Machine.write_word src a ~offset:0 2;
      K.Machine.write_word src shared ~offset:0 3;
      K.Machine.store_access src root ~slot:0 (Some a);
      K.Machine.store_access src root ~slot:1 (Some shared);
      K.Machine.store_access src a ~slot:0 (Some shared);
      K.Machine.store_access src shared ~slot:0 (Some root);
      let table = K.Machine.table src in
      let sro = K.Machine.global_sro src in
      let td = Type_def.create table sro ~name:"mailbox" in
      let inst =
        Type_def.create_instance table td sro ~data_length:8 ~access_length:0
      in
      K.Machine.store_access src root ~slot:2 (Some inst);
      let filed = Store.store_graph store src ~key:"g" root in
      Alcotest.(check int) "four objects filed" 4 filed;
      let root' = Store.retrieve_graph store dst ~key:"g" () in
      Alcotest.(check bool) "isomorphic after disk round trip" true
        (canonical_walk src root = canonical_walk dst root');
      let inst' = Option.get (K.Machine.load_access dst root' ~slot:2) in
      let e' = Object_table.entry_of_access (K.Machine.table dst) inst' in
      Alcotest.(check bool) "seal survived the disk" true
        (match e'.Object_table.otype with Obj_type.Custom _ -> true | _ -> false);
      Alcotest.check_raises "unknown key" (Filing.Not_filed "nope") (fun () ->
          ignore (Store.retrieve_graph store dst ~key:"nope" ())))

let test_store_rights_mask () =
  with_store (fun _path store ->
      let src = mk () and dst = mk () in
      let root = alloc src ~access_length:1 () in
      let child = alloc src () in
      K.Machine.write_word src child ~offset:0 77;
      K.Machine.store_access src root ~slot:0 (Some child);
      ignore (Store.store_graph store src ~key:"m" ~mask:Rights.read_only root);
      let root' = Store.retrieve_graph store dst ~key:"m" () in
      Alcotest.(check bool) "root write stripped" false
        (Rights.has_write (Access.rights root'));
      let child' = Option.get (K.Machine.load_access dst root' ~slot:0) in
      Alcotest.(check bool) "edge write stripped" false
        (Rights.has_write (Access.rights child'));
      Alcotest.(check int) "data intact" 77
        (K.Machine.read_word dst child' ~offset:0))

(* qcheck satellite, first half: store -> retrieve is observationally
   identical to capture/reconstruct for random graphs. *)
let prop_store_equals_capture =
  QCheck2.Test.make ~name:"store/retrieve ≡ capture/reconstruct" ~count:30
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1000000))
    (fun (n, salt) ->
      let src = mk () in
      let objs =
        Array.init n (fun i ->
            let o = alloc src ~data_length:8 ~access_length:3 () in
            K.Machine.write_word src o ~offset:0 ((salt * 31) + i);
            o)
      in
      let state = ref (salt + (n * 7919) + 1) in
      let next bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      Array.iter
        (fun o ->
          for slot = 0 to 2 do
            if next 3 > 0 then
              K.Machine.store_access src o ~slot (Some objs.(next n))
          done)
        objs;
      let via_mem = mk () and via_disk = mk () in
      let direct = Filing.reconstruct via_mem (Filing.capture src objs.(0)) in
      let path = temp_path () in
      let store = Store.open_ path in
      let from_disk =
        Fun.protect
          ~finally:(fun () ->
            Store.close store;
            if Sys.file_exists path then Sys.remove path)
          (fun () ->
            ignore (Store.store_graph store src ~key:"q" objs.(0));
            Store.retrieve_graph store via_disk ~key:"q" ())
      in
      canonical_walk via_mem direct = canonical_walk via_disk from_disk)

(* Binary codec: encode/decode is the identity on captured wires, and a
   truncated buffer raises instead of yielding a malformed graph. *)
let test_wire_codec_roundtrip () =
  let src = mk () in
  let root = alloc src ~access_length:2 () in
  let child = alloc src ~access_length:1 () in
  K.Machine.store_access src root ~slot:1 (Some child);
  K.Machine.store_access src child ~slot:0 (Some root);
  K.Machine.write_word src root ~offset:0 99;
  let wire = Filing.capture src root in
  let bytes = Filing.encode_wire wire in
  Alcotest.(check bool) "decode inverts encode" true
    (Filing.wire_equal wire (Filing.decode_wire bytes));
  for cut = 0 to Bytes.length bytes - 1 do
    match Filing.decode_wire (Bytes.sub bytes 0 cut) with
    | exception Filing.Corrupt_wire _ -> ()
    | _ -> Alcotest.failf "truncation to %d bytes decoded" cut
  done

(* ---------------- Store: directory and compaction ---------------- *)

let test_directory_rebuild_and_delete () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let store = Store.open_ path in
      Store.put_blob store ~key:"k1" (Bytes.of_string "v1");
      Store.put_blob store ~key:"k1" (Bytes.of_string "v2");
      Store.put_blob store ~key:"k2" (Bytes.of_string "w");
      Store.delete store ~key:"k2";
      Store.delete store ~key:"ghost";
      (* deleting an absent key journals nothing *)
      Alcotest.(check (list string)) "directory" [ "k1" ] (Store.keys store);
      Store.close store;
      let store = Store.open_ path in
      Alcotest.(check (list string)) "directory rebuilt on open" [ "k1" ]
        (Store.keys store);
      Alcotest.(check (option bytes)) "latest version wins"
        (Some (Bytes.of_string "v2"))
        (Store.get_blob store ~key:"k1");
      Alcotest.(check (option bytes)) "tombstone holds" None
        (Store.get_blob store ~key:"k2");
      Alcotest.(check bool) "garbage accumulated" true
        (Store.garbage_bytes store > 0);
      Store.close store)

let test_compaction_reclaims_and_preserves () =
  with_store (fun path store ->
      let m = mk () in
      let root = alloc m ~access_length:1 () in
      let child = alloc m () in
      K.Machine.write_word m child ~offset:0 5;
      K.Machine.store_access m root ~slot:0 (Some child);
      for i = 1 to 20 do
        K.Machine.write_word m root ~offset:0 i;
        ignore (Store.store_graph store m ~key:"hot" root)
      done;
      Store.put_blob store ~key:"cold" (Bytes.of_string "keep");
      Store.delete store ~key:"hot";
      ignore (Store.store_graph store m ~key:"hot" root);
      let before = Store.garbage_bytes store in
      Alcotest.(check bool) "garbage before compaction" true (before > 0);
      let reclaimed = Store.compact store in
      Alcotest.(check bool) "bytes reclaimed" true (reclaimed > 0);
      Alcotest.(check int) "no garbage after" 0 (Store.garbage_bytes store);
      Alcotest.(check (option bytes)) "blob survived" (Some (Bytes.of_string "keep"))
        (Store.get_blob store ~key:"cold");
      let fresh = mk () in
      let root' = Store.retrieve_graph store fresh ~key:"hot" () in
      Alcotest.(check bool) "graph survived compaction" true
        (canonical_walk m root = canonical_walk fresh root');
      Alcotest.(check bool) "tmp file removed" false
        (Sys.file_exists (path ^ ".tmp"));
      (* The compacted file recovers like any other journal. *)
      Store.close store;
      let store2 = Store.open_ path in
      Alcotest.(check (list string)) "compacted file reopens" [ "cold"; "hot" ]
        (Store.keys store2);
      Store.close store2)

let test_compaction_virtual_time_driver () =
  (* min_garbage 1: any garbage is enough; the interval alone gates. *)
  with_store ~compact_interval_ns:1_000 ~min_garbage_bytes:1
    (fun _path store ->
      Store.put_blob store ~key:"k" (Bytes.of_string "a");
      Store.put_blob store ~key:"k" (Bytes.of_string "b");
      let _, _, compactions0, _, _ = Store.stats store in
      Alcotest.(check int) "no compaction before the interval" 0 compactions0;
      (* Virtual time crosses the interval: the next append compacts. *)
      Store.put_blob store ~now_ns:5_000 ~key:"k" (Bytes.of_string "c");
      let _, _, compactions1, _, _ = Store.stats store in
      Alcotest.(check int) "compacted once after the interval" 1 compactions1;
      (* Within the same interval, garbage accrues but no second sweep. *)
      Store.put_blob store ~now_ns:5_100 ~key:"k" (Bytes.of_string "d");
      let _, _, compactions2, _, _ = Store.stats store in
      Alcotest.(check int) "interval gates resweep" 1 compactions2)

let test_store_observability () =
  with_store ~sync_every:2 (fun _path store ->
      let m = mk ~trace:true () in
      Store.attach store m;
      Store.put_blob store ~key:"a" (Bytes.of_string "1");
      Store.put_blob store ~key:"b" (Bytes.of_string "2");
      let kinds = List.map (fun e -> e.Obs.Event.kind) (K.Machine.events m) in
      Alcotest.(check bool) "append events emitted" true
        (List.mem Obs.Event.Journal_append kinds);
      Alcotest.(check bool) "sync barrier event emitted" true
        (List.mem Obs.Event.Journal_sync kinds);
      let counter name =
        match Obs.Metrics.find_counter (K.Machine.metrics m) name with
        | Some c -> Obs.Metrics.counter_value c
        | None -> Alcotest.failf "counter %s missing" name
      in
      Alcotest.(check int) "append counter" 2 (counter "store.journal_appends");
      Alcotest.(check int) "sync counter" 1 (counter "store.journal_syncs"))

(* ---------------- Checkpoint: single machine ---------------- *)

(* A deterministic multi-process workload with traced events: producers
   and a consumer through a bounded port, staggered delays, plus an armed
   FI plan so pending injections cross the checkpoint too. *)
let boot_workload ?(chaos = false) () =
  let m = mk ~processors:2 ~trace:true () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  ignore
    (K.Machine.spawn m ~name:"consumer" (fun () ->
         for _ = 1 to 8 do
           let msg = K.Machine.receive m ~port in
           K.Machine.compute m (100 * K.Machine.read_word m msg ~offset:0)
         done));
  for p = 1 to 2 do
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "producer%d" p) (fun () ->
           for i = 1 to 4 do
             K.Machine.delay m ~ns:(10_000 * p);
             let msg = alloc m () in
             K.Machine.write_word m msg ~offset:0 ((p * 10) + i);
             K.Machine.send m ~port ~msg
           done))
  done;
  if chaos then
    Fi.arm m
      (Fi.random ~seed:7 ~horizon_ns:2_000_000 ~processors:2 ~count:6
         ~cpu_faults:1);
  m

let stream m = List.map Obs.Event.to_string (K.Machine.events m)

let check_kill_restore ~chaos ~bound () =
  with_store (fun _path store ->
      let straight = boot_workload ~chaos () in
      ignore (K.Machine.run straight);
      (* Kill: run to the bound, checkpoint, drop the machine. *)
      let victim = boot_workload ~chaos () in
      (match bound with
      | Checkpoint.Steps n -> ignore (K.Machine.run ~max_steps:n victim)
      | Checkpoint.Virtual_ns n -> ignore (K.Machine.run ~max_ns:n victim)
      | Checkpoint.Rounds _ -> assert false);
      ignore (Checkpoint.save store ~key:"ck" ~bound victim);
      (* Restore in a world where [victim] is gone, and continue. *)
      let revived =
        Checkpoint.restore store ~key:"ck" ~boot:(fun () ->
            boot_workload ~chaos ())
      in
      ignore (K.Machine.run revived);
      Alcotest.(check (list string))
        "restored run's stream is bit-identical to the straight run's"
        (stream straight) (stream revived))

let test_checkpoint_restore_steps () =
  check_kill_restore ~chaos:false ~bound:(Checkpoint.Steps 5) ()

let test_checkpoint_restore_virtual_ns () =
  check_kill_restore ~chaos:false ~bound:(Checkpoint.Virtual_ns 45_000) ()

let test_checkpoint_restore_mid_chaos () =
  (* The kill instant falls inside the FI plan's horizon: unfired
     injections are part of the image and refire identically on replay. *)
  check_kill_restore ~chaos:true ~bound:(Checkpoint.Virtual_ns 300_000) ()

let test_checkpoint_record_survives_reopen () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let store = Store.open_ path in
      let victim = boot_workload () in
      ignore (K.Machine.run ~max_steps:4 victim);
      ignore (Checkpoint.save store ~key:"ck" ~bound:(Checkpoint.Steps 4) victim);
      Store.close store;
      (* A different process opens the store after the "crash". *)
      let store = Store.open_ path in
      (match Checkpoint.load store ~key:"ck" with
      | Some r ->
        Alcotest.(check bool) "bound survived" true
          (r.Checkpoint.c_bound = Checkpoint.Steps 4)
      | None -> Alcotest.fail "checkpoint lost across reopen");
      let straight = boot_workload () in
      ignore (K.Machine.run straight);
      let revived = Checkpoint.restore store ~key:"ck" ~boot:boot_workload in
      ignore (K.Machine.run revived);
      Alcotest.(check (list string)) "stream equal across reopen"
        (stream straight) (stream revived);
      Store.close store)

let test_restore_mismatch_detected () =
  with_store (fun _path store ->
      let victim = boot_workload () in
      ignore (K.Machine.run ~max_steps:6 victim);
      ignore (Checkpoint.save store ~key:"ck" ~bound:(Checkpoint.Steps 6) victim);
      (* A boot closure that arms different chaos is not the same run. *)
      match
        Checkpoint.restore store ~key:"ck" ~boot:(fun () ->
            boot_workload ~chaos:true ())
      with
      | exception Checkpoint.Restore_mismatch _ -> ()
      | _ -> Alcotest.fail "divergent replay accepted")

(* qcheck satellite, second half: restore-then-run equals
   run-straight-through on the event stream, for any kill step. *)
let prop_kill_anywhere =
  QCheck2.Test.make ~name:"restore-then-run ≡ run-straight-through" ~count:15
    QCheck2.Gen.(int_range 1 60)
    (fun kill_step ->
      let path = temp_path () in
      let store = Store.open_ path in
      Fun.protect
        ~finally:(fun () ->
          Store.close store;
          if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let straight = boot_workload () in
          ignore (K.Machine.run straight);
          let victim = boot_workload () in
          ignore (K.Machine.run ~max_steps:kill_step victim);
          ignore
            (Checkpoint.save store ~key:"ck"
               ~bound:(Checkpoint.Steps kill_step) victim);
          let revived =
            Checkpoint.restore store ~key:"ck" ~boot:(fun () ->
                boot_workload ())
          in
          ignore (K.Machine.run revived);
          stream straight = stream revived))

(* ---------------- Checkpoint: cluster node ---------------- *)

let boot_ping_cluster () =
  let cluster = Net.Cluster.create () in
  let config =
    {
      K.Machine.default_config with
      processors = 1;
      trace_level = Obs.Tracer.Events;
    }
  in
  let a, ma = Net.Cluster.boot_node cluster ~name:"a" ~config () in
  let b, mb = Net.Cluster.boot_node cluster ~name:"b" ~config () in
  ignore (Net.Cluster.connect cluster a b);
  let home = K.Machine.create_port mb ~capacity:4 ~discipline:K.Port.Fifo () in
  Net.Cluster.export cluster ~node:b ~name:"chan" home;
  ignore
    (K.Machine.spawn mb ~name:"consumer" (fun () ->
         for _ = 1 to 6 do
           let msg = K.Machine.receive mb ~port:home in
           K.Machine.compute mb (10 * K.Machine.read_word mb msg ~offset:0)
         done));
  let surrogate = Net.Cluster.import cluster ~node:a ~name:"chan" in
  ignore
    (K.Machine.spawn ma ~name:"producer" (fun () ->
         for i = 1 to 6 do
           let msg = alloc ma () in
           K.Machine.write_word ma msg ~offset:0 (i * 10);
           K.Machine.send ma ~port:surrogate ~msg
         done));
  cluster

let cluster_streams c =
  List.init (Net.Cluster.node_count c) (fun i ->
      stream (Net.Cluster.machine c i))

let test_cluster_checkpoint_restore () =
  with_store (fun _path store ->
      let straight = boot_ping_cluster () in
      ignore (Net.Cluster.run straight ());
      (* Kill the whole cluster at a round boundary mid-transfer. *)
      let victim = boot_ping_cluster () in
      let report = Net.Cluster.run victim ~max_rounds:4 () in
      Alcotest.(check bool) "killed mid-run" true
        (report.Net.Cluster.rounds = 4);
      ignore
        (Checkpoint.save_cluster store ~key:"cl"
           ~rounds:report.Net.Cluster.rounds ~quantum_ns:100_000 victim);
      let revived =
        Checkpoint.restore_cluster store ~key:"cl" ~boot:boot_ping_cluster
      in
      ignore (Net.Cluster.run revived ());
      List.iter2
        (Alcotest.(check (list string)) "node stream bit-identical")
        (cluster_streams straight) (cluster_streams revived))

let test_cluster_run_resumable () =
  (* The property cluster checkpoints stand on: a split run equals a
     straight run on every node's event stream. *)
  let straight = boot_ping_cluster () in
  ignore (Net.Cluster.run straight ());
  let split = boot_ping_cluster () in
  ignore (Net.Cluster.run split ~max_rounds:3 ());
  ignore (Net.Cluster.run split ());
  List.iter2
    (Alcotest.(check (list string)) "split ≡ straight")
    (cluster_streams straight) (cluster_streams split)

let suite =
  [
    Alcotest.test_case "journal: append/recover/read_at" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal: crash-point sweep, every byte" `Quick
      test_crash_point_sweep;
    Alcotest.test_case "journal: corrupt record truncates" `Quick
      test_corrupt_record_truncates;
    Alcotest.test_case "store: graph round trip (cycle/sharing/seal)" `Quick
      test_store_retrieve_graph;
    Alcotest.test_case "store: rights mask survives disk" `Quick
      test_store_rights_mask;
    QCheck_alcotest.to_alcotest prop_store_equals_capture;
    Alcotest.test_case "wire codec: encode/decode identity + truncation"
      `Quick test_wire_codec_roundtrip;
    Alcotest.test_case "store: directory rebuild, supersede, delete" `Quick
      test_directory_rebuild_and_delete;
    Alcotest.test_case "store: compaction reclaims and preserves" `Quick
      test_compaction_reclaims_and_preserves;
    Alcotest.test_case "store: compaction driven from virtual time" `Quick
      test_compaction_virtual_time_driver;
    Alcotest.test_case "store: events and counters when attached" `Quick
      test_store_observability;
    Alcotest.test_case "checkpoint: kill at step bound, restore" `Quick
      test_checkpoint_restore_steps;
    Alcotest.test_case "checkpoint: kill at virtual-time bound, restore"
      `Quick test_checkpoint_restore_virtual_ns;
    Alcotest.test_case "checkpoint: kill mid-chaos, injections survive"
      `Quick test_checkpoint_restore_mid_chaos;
    Alcotest.test_case "checkpoint: record survives store reopen" `Quick
      test_checkpoint_record_survives_reopen;
    Alcotest.test_case "checkpoint: divergent replay rejected" `Quick
      test_restore_mismatch_detected;
    QCheck_alcotest.to_alcotest prop_kill_anywhere;
    Alcotest.test_case "cluster: checkpoint a node mid-transfer, restore"
      `Quick test_cluster_checkpoint_restore;
    Alcotest.test_case "cluster: split run ≡ straight run" `Quick
      test_cluster_run_resumable;
  ]
