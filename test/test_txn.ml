(* Transactional multi-object send: kernel atomicity, idempotent keyed
   commits, the banking invariants (conservation, exactly-once) under
   chaos and node kill+rejoin, engine-independence, and event-sourced
   history replay. *)

module K = I432_kernel
module Obs = I432_obs
module Fi = I432_fi.Fi
module Net = I432_net
module Store = I432_store.Store
module Txn = I432_txn.Txn
module History = I432_txn.History
module Banking = I432_txn.Banking

let mk ?(processors = 1) ?(trace = false) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        processors;
        trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
      }
    ()

let temp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "test_txn_%d_%d.journal" (Unix.getpid ()) !n

let with_store f =
  let path = temp_path () in
  let store = Store.open_ path in
  Fun.protect
    ~finally:(fun () ->
      Store.close store;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f store)

(* ---------------- Kernel atomicity ---------------- *)

(* A group with a send, a receive, and a write applies all three at one
   instant; staging a receive from an empty port applies none of them. *)
let test_all_or_nothing () =
  let m = mk () in
  let full = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let empty = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let out = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let cell = K.Machine.allocate_generic m ~data_length:8 () in
  let seeded = K.Machine.allocate_generic m ~data_length:8 () in
  assert (K.Machine.deliver_external m ~port:full ~msg:seeded ~priority:0 ());
  let outcomes = ref [] in
  ignore
    (K.Machine.spawn m ~name:"t" (fun () ->
         let note = K.Machine.allocate_generic m ~data_length:8 () in
         (* Conflict: [empty] has nothing to receive — nothing applies. *)
         let g1 = Txn.group () in
         Txn.receive g1 empty;
         Txn.send g1 ~port:out ~msg:note;
         Txn.write g1 cell ~offset:0 ~word:7;
         outcomes := Txn.commit m ~retries:0 g1 :: !outcomes;
         Alcotest.(check int)
           "conflict applied nothing" 0
           (K.Machine.read_word m cell ~offset:0);
         (* Fresh: receive from [full], write, send — all at once. *)
         let g2 = Txn.group () in
         Txn.receive g2 full;
         Txn.send g2 ~port:out ~msg:note;
         Txn.write g2 cell ~offset:0 ~word:42;
         outcomes := Txn.commit m ~retries:0 g2 :: !outcomes));
  ignore (K.Machine.run m);
  (match !outcomes with
  | [ Txn.Committed { received; fresh; _ }; Txn.Aborted { reason; _ } ] ->
    Alcotest.(check string) "conflict reason" "empty" reason;
    Alcotest.(check bool) "fresh" true fresh;
    Alcotest.(check int) "received the seeded msg" 1 (List.length received)
  | _ -> Alcotest.fail "unexpected outcomes");
  Alcotest.(check int) "write applied" 42 (K.Machine.read_word m cell ~offset:0);
  let drained = K.Machine.drain_port m ~port:out () in
  Alcotest.(check int) "send applied once" 1 (List.length drained)

(* A keyed group that already committed skips receives and writes and
   re-issues its sends with the same per-send tags. *)
let test_duplicate_key () =
  let m = mk () in
  let out = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let cell = K.Machine.allocate_generic m ~data_length:8 () in
  let key = Txn.key ~origin:3 ~seq:5 in
  let fresh_flags = ref [] in
  ignore
    (K.Machine.spawn m ~name:"t" (fun () ->
         let note = K.Machine.allocate_generic m ~data_length:8 () in
         for i = 1 to 2 do
           let g = Txn.group () in
           Txn.write g cell ~offset:0 ~word:(100 * i);
           Txn.send g ~port:out ~msg:note;
           match Txn.commit m ~key g with
           | Txn.Committed { fresh; _ } ->
             fresh_flags := fresh :: !fresh_flags
           | Txn.Aborted _ -> Alcotest.fail "unexpected abort"
         done));
  ignore (K.Machine.run m);
  Alcotest.(check (list bool)) "second commit is a duplicate" [ false; true ]
    !fresh_flags;
  Alcotest.(check int) "duplicate skipped the write" 100
    (K.Machine.read_word m cell ~offset:0);
  let drained = K.Machine.drain_port m ~port:out () in
  Alcotest.(check int) "both sends delivered" 2 (List.length drained);
  List.iter
    (fun (_, _, _, tag) ->
      Alcotest.(check int) "per-send tag is key + 0" key tag)
    drained;
  Alcotest.(check (list int)) "key recorded once" [ key ]
    (K.Machine.txn_applied_keys m)

(* ---------------- Banking: single machine ---------------- *)

let check_exactly_once r =
  Alcotest.(check bool) "balance conserved" true (Banking.conserved r);
  Alcotest.(check int) "every commit completed exactly once"
    r.Banking.committed r.Banking.completions;
  Alcotest.(check int) "no duplicate completions" 0 r.Banking.dup_completions;
  Alcotest.(check int) "every transfer accounted" r.Banking.transfers
    (r.Banking.committed + r.Banking.aborted)

let test_banking_conserves () =
  let _, _, r =
    Banking.run ~processors:2 ~accounts:6 ~transfers:40 ~seed:7 ()
  in
  Alcotest.(check bool) "some transfers committed" true (r.Banking.committed > 0);
  check_exactly_once r

(* Same seed, same machine shape: byte-identical state image and event
   stream — the scenario inherits the kernel's determinism. *)
let test_banking_deterministic () =
  let go () =
    let m, _, r =
      Banking.run ~processors:2 ~accounts:5 ~transfers:25 ~seed:11 ()
    in
    ( K.Snapshot.state_image m,
      List.map Obs.Event.to_string (K.Machine.events m),
      r )
  in
  let s1, e1, r1 = go () in
  let s2, e2, r2 = go () in
  Alcotest.(check string) "state image" s1 s2;
  Alcotest.(check (list string)) "event stream" e1 e2;
  Alcotest.(check int) "committed" r1.Banking.committed r2.Banking.committed

(* ---------------- History ---------------- *)

let test_history_replay () =
  with_store (fun store ->
      let _, history, r =
        Banking.run ~processors:2 ~accounts:4 ~transfers:30 ~seed:3
          ~history_store:store ()
      in
      Alcotest.(check bool) "committed > 0" true (r.Banking.committed > 0);
      check_exactly_once r;
      let h = Option.get history in
      List.iter
        (fun (name, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s replays to live state" name)
            true
            (History.verify h ~name))
        (History.tracked h);
      (* The audit path needs only the store: replaying acct0 to the end
         of history matches its live balance word. *)
      let img = Option.get (History.replay store ~name:"acct0" ~to_ns:max_int) in
      Alcotest.(check int32) "replayed balance word"
        (Int32.of_int r.Banking.balances.(0))
        (Bytes.get_int32_le img 0);
      (* Replay to virtual time 0 is the base image: the initial balance. *)
      let base = Option.get (History.replay store ~name:"acct0" ~to_ns:0) in
      Alcotest.(check int32) "base balance"
        (Int32.of_int Banking.initial_balance)
        (Bytes.get_int32_le base 0);
      (* Records carry monotonically nondecreasing commit instants. *)
      let recs = History.records store ~name:"acct0" in
      Alcotest.(check bool) "acct0 has history" true (List.length recs > 0);
      ignore
        (List.fold_left
           (fun prev (ns, _, _) ->
             Alcotest.(check bool) "commit_ns nondecreasing" true (ns >= prev);
             ns)
           0 recs))

(* An untracked run writes nothing under hist/. *)
let test_history_opt_in () =
  with_store (fun store ->
      let _, _, _ =
        Banking.run ~processors:1 ~accounts:3 ~transfers:10 ~seed:5 ()
      in
      Alcotest.(check (list string)) "store untouched" [] (Store.keys store))

(* ---------------- Banking: chaos (qcheck) ---------------- *)

(* Under a random §8 fault plan every transaction is still all-or-nothing:
   total balance conserved, completions match commits, no duplicates. *)
let prop_atomic_under_chaos =
  QCheck2.Test.make ~name:"banking atomic under random fault plans" ~count:12
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 0 4))
    (fun (seed, faults) ->
      let plan =
        Fi.random ~seed ~horizon_ns:3_000_000 ~processors:2 ~count:faults
          ~cpu_faults:0
      in
      let _, _, r =
        Banking.run ~processors:2 ~trace:false ~accounts:4 ~transfers:20
          ~seed ~plan ()
      in
      Banking.conserved r
      && r.Banking.completions = r.Banking.committed
      && r.Banking.dup_completions = 0)

(* ---------------- Banking: cluster ---------------- *)

let test_banking_cluster_engines () =
  let go engine =
    let cr =
      Banking.run_cluster ~engine ~accounts:4 ~transfers:16 ~seed:21 ()
    in
    check_exactly_once cr.Banking.res;
    List.map
      (fun i -> K.Snapshot.state_image (Net.Cluster.machine cr.Banking.cluster i))
      [ cr.Banking.bank_node; cr.Banking.audit_node ]
  in
  let seq = go Net.Cluster.Seq in
  let par = go (Net.Cluster.Par 2) in
  Alcotest.(check (list string)) "Seq and Par 2 byte-identical" seq par

(* Chaos on the interconnect: link faults delay or drop frames, ARQ
   retries them, and the transaction invariants still hold. *)
let test_banking_cluster_link_chaos () =
  let link_plan =
    Fi.random_links ~seed:31 ~horizon_ns:8_000_000 ~links:1 ~count:6
      ~partitions:1
  in
  let cr =
    Banking.run_cluster ~accounts:4 ~transfers:16 ~seed:31 ~link_plan ()
  in
  check_exactly_once cr.Banking.res

(* Kill the bank node mid-stream and rejoin it from its checkpoint: the
   replayed tellers re-commit deterministically, re-issued completion
   frames that had already escaped are dropped by the audit NIC's
   per-tag dedup, and delivery stays exactly-once. *)
let test_banking_kill_rejoin () =
  with_store (fun ckpt_store ->
      let cr =
        Banking.run_cluster ~accounts:4 ~transfers:24 ~seed:13
          ~kill:(400_000, 700_000) ~ckpt_store ()
      in
      let r = cr.Banking.res in
      Alcotest.(check bool) "some transfers committed" true (r.Banking.committed > 0);
      check_exactly_once r;
      (* The rejoin actually happened and the audit node saw the replay's
         re-sent frames as duplicates (NIC-level, so the collector never
         had to dedup). *)
      Alcotest.(check bool) "bank node alive" true
        (Net.Cluster.node_alive cr.Banking.cluster cr.Banking.bank_node))

(* Checkpoint WELL BEFORE the kill: commits from the window between
   checkpoint and kill already delivered their completions to the audit
   node, the rejoin rolls them back and re-commits them, and the audit
   NIC must drop the re-sent frames by transaction tag.  This is the
   configuration that proves the dedup path actually fires (the
   boundary-checkpoint test above never rolls a commit back). *)
let test_banking_rollback_window_dedup () =
  with_store (fun ckpt_store ->
      with_store (fun history_store ->
          let cr =
            Banking.run_cluster ~accounts:4 ~transfers:24 ~seed:13
              ~kill:(600_000, 900_000) ~ckpt_ns:200_000 ~ckpt_store
              ~history_store ()
          in
          let r = cr.Banking.res in
          check_exactly_once r;
          Alcotest.(check bool) "NIC dropped re-sent duplicate frames" true
            (Net.Cluster.txn_dup_drops cr.Banking.cluster > 0);
          (* The rolled-back timeline also appended history records; the
             re-executed timeline must overwrite/truncate them so replay
             still lands on the live balances. *)
          Array.iteri
            (fun i bal ->
              let name = Printf.sprintf "acct%d" i in
              let img =
                Option.get (History.replay history_store ~name ~to_ns:max_int)
              in
              Alcotest.(check int32)
                (Printf.sprintf "%s history replays through rollback" name)
                (Int32.of_int bal)
                (Bytes.get_int32_le img 0))
            r.Banking.balances))

(* History survives the kill+rejoin: the replayed bank re-appends
   byte-identical records up to the checkpoint and continues past it, so
   replaying any account from the store reproduces the final live
   balance. *)
let test_banking_kill_rejoin_history () =
  with_store (fun ckpt_store ->
      with_store (fun history_store ->
          let cr =
            Banking.run_cluster ~accounts:3 ~transfers:18 ~seed:17
              ~kill:(400_000, 700_000) ~ckpt_store ~history_store ()
          in
          let r = cr.Banking.res in
          check_exactly_once r;
          Array.iteri
            (fun i bal ->
              let name = Printf.sprintf "acct%d" i in
              let img =
                Option.get (History.replay history_store ~name ~to_ns:max_int)
              in
              Alcotest.(check int32)
                (Printf.sprintf "%s history replays to live balance" name)
                (Int32.of_int bal)
                (Bytes.get_int32_le img 0))
            r.Banking.balances))

let suite =
  [
    Alcotest.test_case "txn: all-or-nothing" `Quick test_all_or_nothing;
    Alcotest.test_case "txn: duplicate key is idempotent" `Quick
      test_duplicate_key;
    Alcotest.test_case "banking: conserves and completes exactly once" `Quick
      test_banking_conserves;
    Alcotest.test_case "banking: same seed, same bytes" `Quick
      test_banking_deterministic;
    Alcotest.test_case "history: replay reproduces live state" `Quick
      test_history_replay;
    Alcotest.test_case "history: opt-in leaves the store untouched" `Quick
      test_history_opt_in;
    QCheck_alcotest.to_alcotest prop_atomic_under_chaos;
    Alcotest.test_case "banking cluster: Seq = Par 2" `Quick
      test_banking_cluster_engines;
    Alcotest.test_case "banking cluster: link chaos" `Quick
      test_banking_cluster_link_chaos;
    Alcotest.test_case "banking cluster: kill + rejoin is exactly-once" `Quick
      test_banking_kill_rejoin;
    Alcotest.test_case "banking cluster: rollback window exercises NIC dedup"
      `Quick test_banking_rollback_window_dedup;
    Alcotest.test_case "banking cluster: history survives rejoin" `Quick
      test_banking_kill_rejoin_history;
  ]
