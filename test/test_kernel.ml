(* Tests for the kernel: the run loop, processes, ports (blocking, rights,
   disciplines), dispatching, time slicing, domain calls, local heaps, bus
   contention, and determinism across runs. *)

open I432
module K = I432_kernel

let mk ?(processors = 1) ?(alpha = 0) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        K.Machine.processors;
        bus_alpha_per_mille = alpha;
      }
    ()

let run = K.Machine.run

(* ---------------- Basic process execution ---------------- *)

let test_single_process_runs () =
  let m = mk () in
  let hits = ref 0 in
  let _ = K.Machine.spawn m ~name:"p" (fun () -> hits := 42) in
  let r = run m in
  Alcotest.(check int) "body ran" 42 !hits;
  Alcotest.(check int) "completed" 1 r.K.Machine.completed

let test_processes_accumulate_time () =
  let m = mk () in
  let p = K.Machine.spawn m ~name:"p" (fun () -> K.Machine.compute m 100) in
  let _ = run m in
  let st = K.Machine.process_state m p in
  Alcotest.(check bool) "cpu time charged" true (st.K.Process.cpu_ns >= 100_000)

let test_spawn_many () =
  let m = mk () in
  let n = ref 0 in
  for i = 1 to 50 do
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "p%d" i) (fun () -> incr n))
  done;
  let r = run m in
  Alcotest.(check int) "all ran" 50 !n;
  Alcotest.(check int) "all completed" 50 r.K.Machine.completed

let test_priority_order_single_cpu () =
  let m = mk () in
  let order = ref [] in
  let mk_proc name prio =
    ignore
      (K.Machine.spawn m ~name ~priority:prio (fun () ->
           order := name :: !order))
  in
  mk_proc "low" 1;
  mk_proc "high" 10;
  mk_proc "mid" 5;
  let _ = run m in
  Alcotest.(check (list string)) "highest first" [ "high"; "mid"; "low" ]
    (List.rev !order)

let test_yield_interleaves () =
  let m = mk () in
  let log = ref [] in
  let worker name () =
    for i = 1 to 3 do
      log := (name, i) :: !log;
      K.Machine.yield m
    done
  in
  ignore (K.Machine.spawn m ~name:"a" (worker "a"));
  ignore (K.Machine.spawn m ~name:"b" (worker "b"));
  let _ = run m in
  let names = List.rev_map fst !log in
  (* With equal priorities and yields, the two processes alternate. *)
  Alcotest.(check (list string)) "alternation"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    names

let test_exit_process () =
  let m = mk () in
  let after = ref false in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         if true then K.Machine.exit_process m;
         after := true));
  let r = run m in
  Alcotest.(check bool) "code after exit unreached" false !after;
  Alcotest.(check int) "completed" 1 r.K.Machine.completed

let test_delay_advances_clock () =
  let m = mk () in
  ignore (K.Machine.spawn m ~name:"p" (fun () -> K.Machine.delay m ~ns:5_000_000));
  let r = run m in
  Alcotest.(check bool) "elapsed >= delay" true
    (r.K.Machine.elapsed_ns >= 5_000_000)

let test_delays_order_events () =
  let m = mk () in
  let log = ref [] in
  ignore
    (K.Machine.spawn m ~name:"late" (fun () ->
         K.Machine.delay m ~ns:2_000_000;
         log := "late" :: !log));
  ignore
    (K.Machine.spawn m ~name:"early" (fun () ->
         K.Machine.delay m ~ns:1_000_000;
         log := "early" :: !log));
  let _ = run m in
  Alcotest.(check (list string)) "wake order" [ "early"; "late" ] (List.rev !log)

let test_fault_recorded () =
  let m = mk () in
  let victim = K.Machine.allocate_generic m ~data_length:4 () in
  ignore
    (K.Machine.spawn m ~name:"bad" (fun () ->
         ignore (K.Machine.read_word m victim ~offset:100)));
  let r = run m in
  Alcotest.(check int) "faulted" 1 r.K.Machine.faulted;
  match K.Machine.faults m with
  | [ ("bad", Fault.Bounds _) ] -> ()
  | _ -> Alcotest.fail "expected one bounds fault from 'bad'"

let test_fault_below_level3_panics () =
  let m = mk () in
  ignore
    (K.Machine.spawn m ~name:"sys" ~system_level:2 (fun () ->
         Fault.raise_fault (Fault.Protocol "boom")));
  Alcotest.(check bool) "panics" true
    (match run m with
    | _ -> false
    | exception K.Machine.Kernel_panic _ -> true)

let test_fault_at_level4_does_not_panic () =
  let m = mk () in
  ignore
    (K.Machine.spawn m ~name:"user" ~system_level:4 (fun () ->
         Fault.raise_fault (Fault.Protocol "boom")));
  let r = run m in
  Alcotest.(check int) "contained" 1 r.K.Machine.faulted

(* ---------------- Ports ---------------- *)

let test_port_send_receive () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  let got = ref (-1) in
  let obj = K.Machine.allocate_generic m () in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         K.Machine.write_word m obj ~offset:0 7;
         K.Machine.send m ~port ~msg:obj));
  ignore
    (K.Machine.spawn m ~name:"receiver" (fun () ->
         let msg = K.Machine.receive m ~port in
         got := K.Machine.read_word m msg ~offset:0));
  let _ = run m in
  Alcotest.(check int) "payload" 7 !got

let test_port_fifo_order () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  let order = ref [] in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         for i = 1 to 5 do
           let o = K.Machine.allocate_generic m () in
           K.Machine.write_word m o ~offset:0 i;
           K.Machine.send m ~port ~msg:o
         done));
  ignore
    (K.Machine.spawn m ~name:"receiver" (fun () ->
         for _ = 1 to 5 do
           let msg = K.Machine.receive m ~port in
           order := K.Machine.read_word m msg ~offset:0 :: !order
         done));
  let _ = run m in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_port_priority_discipline () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Priority () in
  let order = ref [] in
  (* Three senders with different priorities enqueue before the receiver
     starts (receiver has lowest priority so it runs last). *)
  let send_with prio v =
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "s%d" v) ~priority:prio
         (fun () ->
           let o = K.Machine.allocate_generic m () in
           K.Machine.write_word m o ~offset:0 v;
           K.Machine.send m ~port ~msg:o))
  in
  send_with 3 30;
  send_with 9 90;
  send_with 6 60;
  ignore
    (K.Machine.spawn m ~name:"receiver" ~priority:1 (fun () ->
         for _ = 1 to 3 do
           let msg = K.Machine.receive m ~port in
           order := K.Machine.read_word m msg ~offset:0 :: !order
         done));
  let _ = run m in
  Alcotest.(check (list int)) "highest priority first" [ 90; 60; 30 ]
    (List.rev !order)

let test_port_sender_blocks_when_full () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let sent = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         for _ = 1 to 5 do
           let o = K.Machine.allocate_generic m () in
           K.Machine.send m ~port ~msg:o;
           incr sent
         done));
  let _ = run m in
  (* No receiver: the sender fills the queue (2) and blocks on the third. *)
  Alcotest.(check int) "sent until full" 2 !sent;
  let _, _, send_blocks, _, _, _ = K.Machine.port_stats m port in
  Alcotest.(check int) "one blocking send" 1 send_blocks

let test_port_blocked_sender_resumes () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let sent = ref 0 and received = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"sender" (fun () ->
         for _ = 1 to 4 do
           let o = K.Machine.allocate_generic m () in
           K.Machine.send m ~port ~msg:o;
           incr sent
         done));
  ignore
    (K.Machine.spawn m ~name:"receiver" (fun () ->
         for _ = 1 to 4 do
           let _ = K.Machine.receive m ~port in
           incr received
         done));
  let r = run m in
  Alcotest.(check int) "all sent" 4 !sent;
  Alcotest.(check int) "all received" 4 !received;
  Alcotest.(check (list string)) "no deadlock" [] r.K.Machine.deadlocked

let test_port_receiver_blocks_then_wakes () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let got = ref false in
  ignore
    (K.Machine.spawn m ~name:"receiver" ~priority:10 (fun () ->
         let _ = K.Machine.receive m ~port in
         got := true));
  ignore
    (K.Machine.spawn m ~name:"sender" ~priority:1 (fun () ->
         K.Machine.delay m ~ns:1_000_000;
         let o = K.Machine.allocate_generic m () in
         K.Machine.send m ~port ~msg:o));
  let _ = run m in
  Alcotest.(check bool) "receiver woke" true !got

let test_port_send_requires_right () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let no_send = Access.without_type_right port Rights.t1 in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         let o = K.Machine.allocate_generic m () in
         K.Machine.send m ~port:no_send ~msg:o));
  let r = run m in
  Alcotest.(check int) "rights fault" 1 r.K.Machine.faulted

let test_port_receive_requires_right () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:2 ~discipline:K.Port.Fifo () in
  let no_recv = Access.without_type_right port Rights.t2 in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         ignore (K.Machine.receive m ~port:no_recv)));
  let r = run m in
  Alcotest.(check int) "rights fault" 1 r.K.Machine.faulted

let test_port_wrong_object_type () =
  let m = mk () in
  let not_a_port = K.Machine.allocate_generic m () in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         let o = K.Machine.allocate_generic m () in
         K.Machine.send m ~port:not_a_port ~msg:o));
  let r = run m in
  Alcotest.(check int) "type fault" 1 r.K.Machine.faulted

let test_cond_send_on_full () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let results = ref [] in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         for _ = 1 to 3 do
           let o = K.Machine.allocate_generic m () in
           results := K.Machine.cond_send m ~port ~msg:o :: !results
         done));
  let _ = run m in
  Alcotest.(check (list bool)) "first accepted, rest refused"
    [ true; false; false ] (List.rev !results)

let test_cond_receive_on_empty () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let got = ref (Some (Access.make ~index:0 ~rights:Rights.none)) in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         got := K.Machine.cond_receive m ~port));
  let _ = run m in
  Alcotest.(check bool) "none on empty" true (!got = None)

let test_deadlock_detected () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  ignore
    (K.Machine.spawn m ~name:"waiter" (fun () ->
         ignore (K.Machine.receive m ~port)));
  let r = run m in
  Alcotest.(check (list string)) "reported" [ "waiter" ] r.K.Machine.deadlocked

(* ---------------- Multiprocessor ---------------- *)

let test_multiprocessor_parallel_speedup () =
  let work machine () = K.Machine.compute machine 2000 in
  let elapsed n =
    let m = mk ~processors:n () in
    for i = 1 to 8 do
      ignore (K.Machine.spawn m ~name:(Printf.sprintf "w%d" i) (work m))
    done;
    (run m).K.Machine.elapsed_ns
  in
  let t1 = elapsed 1 in
  let t4 = elapsed 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 cpus faster (t1=%d t4=%d)" t1 t4)
    true
    (float_of_int t1 /. float_of_int t4 > 3.0)

let test_multiprocessor_all_used () =
  let m = mk ~processors:4 () in
  for i = 1 to 8 do
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "w%d" i) (fun () ->
           K.Machine.compute m 1000))
  done;
  let _ = run m in
  Array.iter
    (fun u -> Alcotest.(check bool) "utilized" true (u > 0.0))
    (K.Machine.processor_utilizations m)

let test_bus_contention_slows () =
  let m1 = mk ~processors:1 ~alpha:50 () in
  let m8 = mk ~processors:8 ~alpha:50 () in
  Alcotest.(check bool) "more cpus, more contention" true
    (K.Bus.factor (K.Machine.bus m8) > K.Bus.factor (K.Machine.bus m1))
  [@@warning "-a"]

let test_determinism () =
  let trial () =
    let m = mk ~processors:3 () in
    let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
    let total = ref 0 in
    for i = 1 to 5 do
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "s%d" i) (fun () ->
             for j = 1 to 10 do
               let o = K.Machine.allocate_generic m () in
               K.Machine.write_word m o ~offset:0 (i * j);
               K.Machine.send m ~port ~msg:o
             done))
    done;
    ignore
      (K.Machine.spawn m ~name:"r" (fun () ->
           for _ = 1 to 50 do
             let msg = K.Machine.receive m ~port in
             total := (!total * 31) + K.Machine.read_word m msg ~offset:0
           done));
    let r = run m in
    (!total, r.K.Machine.elapsed_ns)
  in
  let a = trial () in
  let b = trial () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* ---------------- Time slice and preemption ---------------- *)

let test_time_slice_preempts () =
  let m = mk () in
  let log = ref [] in
  let hog name () =
    for _ = 1 to 3 do
      (* Each burst far exceeds the 10 ms default slice. *)
      K.Machine.compute m 15_000;
      log := name :: !log
    done
  in
  ignore (K.Machine.spawn m ~name:"a" (hog "a"));
  ignore (K.Machine.spawn m ~name:"b" (hog "b"));
  let r = run m in
  Alcotest.(check bool) "preemptions happened" true (r.K.Machine.preemptions > 0);
  (* Preemption interleaves the two hogs rather than running a then b. *)
  let seq = List.rev !log in
  Alcotest.(check bool) "interleaved" true
    (match seq with
    | "a" :: rest -> List.exists (fun x -> x = "b") (List.filteri (fun i _ -> i < 3) rest)
    | "b" :: rest -> List.exists (fun x -> x = "a") (List.filteri (fun i _ -> i < 3) rest)
    | _ -> false)

(* ---------------- Stop / start (kernel bit) ---------------- *)

let test_stopped_process_does_not_run () =
  let m = mk () in
  let hits = ref 0 in
  let p = K.Machine.spawn m ~name:"p" (fun () -> incr hits) in
  K.Machine.set_stopped m p true;
  let _ = run m in
  Alcotest.(check int) "never ran" 0 !hits;
  K.Machine.set_stopped m p false;
  let _ = run m in
  Alcotest.(check int) "ran after start" 1 !hits

let test_stop_blocked_process_defers_wake () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let got = ref false in
  let receiver =
    K.Machine.spawn m ~name:"receiver" (fun () ->
        let _ = K.Machine.receive m ~port in
        got := true)
  in
  ignore
    (K.Machine.spawn m ~name:"sender" ~priority:1 (fun () ->
         K.Machine.delay m ~ns:1_000;
         let o = K.Machine.allocate_generic m () in
         K.Machine.send m ~port ~msg:o));
  (* Stop the receiver before its message arrives: delivery must not run
     it. *)
  K.Machine.set_stopped m receiver true;
  let _ = run m in
  Alcotest.(check bool) "stopped receiver did not run" false !got;
  K.Machine.set_stopped m receiver false;
  let _ = run m in
  Alcotest.(check bool) "ran after start" true !got

let test_scheduler_port_notified () =
  let m = mk () in
  let sched_port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  let p = K.Machine.spawn m ~name:"p" (fun () -> K.Machine.compute m 1) in
  K.Machine.set_scheduler_port m p sched_port;
  K.Machine.set_stopped m p true;
  K.Machine.set_stopped m p false;
  let sends, _, _, _, _, _ = K.Machine.port_stats m sched_port in
  Alcotest.(check int) "two mix transitions" 2 sends

(* ---------------- Domains and local heaps ---------------- *)

let test_domain_call_charges_65us () =
  let m = mk () in
  let sro = K.Machine.global_sro m in
  let dom = K.Domain.create (K.Machine.table m) sro ~name:"pkg" in
  let p =
    K.Machine.spawn m ~name:"caller" (fun () ->
        K.Machine.domain_call m dom (fun () -> ()))
  in
  let _ = run m in
  let st = K.Machine.process_state m p in
  let tm = K.Machine.timings m in
  let expected =
    tm.Timings.dispatch_ns + tm.Timings.domain_call_ns
    + tm.Timings.domain_return_ns
  in
  Alcotest.(check int) "65us call + return charged" expected st.K.Process.cpu_ns

let test_domain_call_nesting_depth () =
  let m = mk () in
  let sro = K.Machine.global_sro m in
  let dom = K.Domain.create (K.Machine.table m) sro ~name:"pkg" in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         K.Machine.domain_call m dom (fun () ->
             K.Machine.domain_call m dom (fun () -> ()))));
  let _ = run m in
  let d = K.Domain.state_of (K.Machine.table m) dom in
  Alcotest.(check int) "two calls" 2 d.K.Domain.calls;
  Alcotest.(check int) "max depth 2" 2 d.K.Domain.max_depth;
  Alcotest.(check int) "balanced" 0 d.K.Domain.depth

let test_domain_call_propagates_exception () =
  let m = mk () in
  let sro = K.Machine.global_sro m in
  let dom = K.Domain.create (K.Machine.table m) sro ~name:"pkg" in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         K.Machine.domain_call m dom (fun () ->
             Fault.raise_fault (Fault.Protocol "inner"))));
  let _ = run m in
  let d = K.Domain.state_of (K.Machine.table m) dom in
  Alcotest.(check int) "return accounted despite raise" 1 d.K.Domain.returns

let test_domain_private_environment () =
  let m = mk () in
  let sro = K.Machine.global_sro m in
  let table = K.Machine.table m in
  let dom = K.Domain.create table sro ~name:"pkg" in
  let secret = K.Machine.allocate_generic m () in
  K.Domain.set_private table dom ~slot:0 secret;
  match K.Domain.get_private table dom ~slot:0 with
  | Some got -> Alcotest.(check int) "kept" (Access.index secret) (Access.index got)
  | None -> Alcotest.fail "missing private capability"

let test_local_heap_lifecycle () =
  let m = mk () in
  let reclaimed = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         let local = K.Machine.create_local_sro m ~level:1 ~bytes:4096 in
         let _a =
           K.Machine.allocate m local ~data_length:64 ~access_length:0
             ~otype:Obj_type.Generic
         in
         let _b =
           K.Machine.allocate m local ~data_length:64 ~access_length:0
             ~otype:Obj_type.Generic
         in
         reclaimed := K.Machine.destroy_sro m local));
  let _ = run m in
  Alcotest.(check int) "bulk reclaim" 2 !reclaimed

let test_local_heap_level_confinement () =
  let m = mk () in
  let table = K.Machine.table m in
  let faulted = ref false in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         let local = K.Machine.create_local_sro m ~level:1 ~bytes:4096 in
         let local_obj =
           K.Machine.allocate m local ~data_length:16 ~access_length:0
             ~otype:Obj_type.Generic
         in
         let global_obj = K.Machine.allocate_generic m () in
         (match Segment.store_access table global_obj ~slot:0 (Some local_obj) with
         | () -> ()
         | exception Fault.Fault (Fault.Level_violation _) -> faulted := true);
         ignore (K.Machine.destroy_sro m local)));
  let _ = run m in
  Alcotest.(check bool) "escape prevented" true !faulted

(* ---------------- Allocation cost ---------------- *)

let test_allocation_charges_80us () =
  let m = mk () in
  let p =
    K.Machine.spawn m ~name:"alloc" (fun () ->
        ignore (K.Machine.allocate_generic m ()))
  in
  let _ = run m in
  let st = K.Machine.process_state m p in
  let tm = K.Machine.timings m in
  Alcotest.(check int) "80us + dispatch"
    (tm.Timings.dispatch_ns + tm.Timings.allocate_ns)
    st.K.Process.cpu_ns

(* ---------------- Run-loop edges ---------------- *)

let test_boot_time_operations_are_free () =
  (* Outside the run loop there is no executing processor: configuration
     work is charged to nobody. *)
  let m = mk () in
  let _ = K.Machine.allocate_generic m () in
  K.Machine.charge m 1_000_000;
  Alcotest.(check int) "clock untouched" 0 (K.Machine.now m)

let test_run_respects_max_steps () =
  let m = mk () in
  ignore
    (K.Machine.spawn m ~name:"spinner" (fun () ->
         while true do
           K.Machine.yield m
         done));
  let r = K.Machine.run m ~max_steps:100 in
  Alcotest.(check bool) "terminated by step bound" true
    (r.K.Machine.completed = 0)

let test_run_respects_max_ns () =
  let m = mk () in
  ignore
    (K.Machine.spawn m ~name:"sleeper" (fun () ->
         K.Machine.delay m ~ns:1_000_000_000));
  let r = K.Machine.run m ~max_ns:2_000_000 in
  Alcotest.(check bool) "halted near the bound" true
    (r.K.Machine.elapsed_ns < 100_000_000)

let test_empty_machine_runs () =
  let m = mk () in
  let r = K.Machine.run m in
  Alcotest.(check int) "nothing completed" 0 r.K.Machine.completed;
  Alcotest.(check int) "no time passed" 0 r.K.Machine.elapsed_ns

let test_spawn_from_local_sro () =
  (* Processes are created from an SRO like any object (§5). *)
  let m = mk () in
  let sro = K.Machine.create_local_sro m ~level:1 ~bytes:4096 in
  let hits = ref 0 in
  let p = K.Machine.spawn m ~name:"local" ~sro (fun () -> incr hits) in
  let _ = run m in
  Alcotest.(check int) "ran" 1 !hits;
  let e = Object_table.entry_of_access (K.Machine.table m) p in
  Alcotest.(check int) "process object at SRO's level" 1 e.Object_table.level

let test_trace_records_lifecycle () =
  let m =
    K.Machine.create
      ~config:
        {
          K.Machine.default_config with
          K.Machine.trace_level = I432_obs.Tracer.Events_and_legacy_lines;
        }
      ()
  in
  ignore (K.Machine.spawn m ~name:"traced" (fun () -> K.Machine.yield m));
  let _ = run m in
  let lines = K.Machine.trace_lines m in
  let mentions sub line =
    let n = String.length line and m' = String.length sub in
    let rec go i = i + m' <= n && (String.sub line i m' = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "spawn traced" true
    (List.exists (mentions "spawn traced") lines);
  Alcotest.(check bool) "finish traced" true
    (List.exists (mentions "finished") lines)

let test_trace_disabled_by_default () =
  let m = mk () in
  ignore (K.Machine.spawn m ~name:"quiet" (fun () -> ()));
  let _ = run m in
  Alcotest.(check (list string)) "no trace" [] (K.Machine.trace_lines m)

let test_obj_type_helpers () =
  Alcotest.(check bool) "process is system" true (Obj_type.is_system Obj_type.Process);
  Alcotest.(check bool) "generic is not" false (Obj_type.is_system Obj_type.Generic);
  Alcotest.(check bool) "custom is not" false (Obj_type.is_system (Obj_type.Custom 3));
  Alcotest.(check bool) "custom ids distinguish" false
    (Obj_type.equal (Obj_type.Custom 1) (Obj_type.Custom 2));
  Alcotest.(check string) "custom prints id" "custom(7)"
    (Obj_type.to_string (Obj_type.Custom 7))

(* ---------------- Processor affinity ---------------- *)

let test_affinity_pins_process () =
  let m = mk ~processors:2 () in
  let p =
    K.Machine.spawn m ~name:"pinned" (fun () -> K.Machine.compute m 500)
  in
  K.Machine.set_affinity m p (Some 1);
  let _ = run m in
  (* All the work landed on processor 1. *)
  let utils = K.Machine.processor_utilizations m in
  Alcotest.(check bool) "cpu1 busy" true (utils.(1) > 0.0);
  let st = K.Machine.process_state m p in
  Alcotest.(check bool) "completed" true (st.K.Process.status = K.Process.Finished)

let test_affinity_partition () =
  let m = mk ~processors:2 () in
  let log = ref [] in
  (* Two workers pinned to different processors interleave in virtual time
     rather than serializing. *)
  let spawn_pinned name cpu =
    let p =
      K.Machine.spawn m ~name (fun () ->
          for _ = 1 to 3 do
            K.Machine.compute m 100;
            log := name :: !log;
            K.Machine.yield m
          done)
    in
    K.Machine.set_affinity m p (Some cpu)
  in
  spawn_pinned "a" 0;
  spawn_pinned "b" 1;
  let r = run m in
  Alcotest.(check int) "both completed" 2 r.K.Machine.completed;
  Alcotest.(check int) "six work items" 6 (List.length !log);
  Alcotest.(check bool) "interleaved across processors" true
    (match List.rev !log with
    | first :: second :: _ -> first <> second
    | _ -> false)

let test_affinity_invalid_processor () =
  let m = mk ~processors:2 () in
  let p = K.Machine.spawn m ~name:"p" (fun () -> ()) in
  Alcotest.check_raises "bad id"
    (Invalid_argument "Machine.set_affinity: no such processor") (fun () ->
      K.Machine.set_affinity m p (Some 5))

let test_affinity_lift_rebalances () =
  let m = mk ~processors:2 () in
  let p =
    K.Machine.spawn m ~name:"pinned" (fun () ->
        for _ = 1 to 2 do
          K.Machine.compute m 10;
          K.Machine.yield m
        done)
  in
  K.Machine.set_affinity m p (Some 0);
  K.Machine.set_affinity m p None;
  let r = run m in
  Alcotest.(check int) "completed after lifting" 1 r.K.Machine.completed

(* qcheck: random send/receive scripts over random port capacities preserve
   messages — everything sent is received exactly once, in FIFO order. *)
let prop_port_conservation =
  QCheck2.Test.make ~name:"ports conserve messages (random scripts)" ~count:60
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 40))
    (fun (capacity, count) ->
      let m = mk () in
      let port = K.Machine.create_port m ~capacity ~discipline:K.Port.Fifo () in
      let received = ref [] in
      ignore
        (K.Machine.spawn m ~name:"s" (fun () ->
             for i = 1 to count do
               let o = K.Machine.allocate_generic m ~data_length:8 () in
               K.Machine.write_word m o ~offset:0 i;
               K.Machine.send m ~port ~msg:o
             done));
      ignore
        (K.Machine.spawn m ~name:"r" (fun () ->
             for _ = 1 to count do
               let msg = K.Machine.receive m ~port in
               received := K.Machine.read_word m msg ~offset:0 :: !received
             done));
      let r = run m in
      r.K.Machine.deadlocked = []
      && List.rev !received = List.init count (fun i -> i + 1))

(* qcheck: N senders, M receivers, no message lost or duplicated. *)
let prop_port_many_to_many =
  QCheck2.Test.make ~name:"N:M port traffic conserves payload sum" ~count:40
    QCheck2.Gen.(triple (int_range 1 4) (int_range 1 4) (int_range 1 20))
    (fun (senders, receivers, per_sender) ->
      let m = mk ~processors:2 () in
      let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
      let total = senders * per_sender in
      (* Distribute receives across receivers. *)
      let base = total / receivers and extra = total mod receivers in
      let received_sum = ref 0 and received_n = ref 0 in
      for s = 1 to senders do
        ignore
          (K.Machine.spawn m ~name:(Printf.sprintf "s%d" s) (fun () ->
               for i = 1 to per_sender do
                 let o = K.Machine.allocate_generic m ~data_length:8 () in
                 K.Machine.write_word m o ~offset:0 ((s * 1000) + i);
                 K.Machine.send m ~port ~msg:o
               done))
      done;
      for r = 1 to receivers do
        let quota = base + if r <= extra then 1 else 0 in
        ignore
          (K.Machine.spawn m ~name:(Printf.sprintf "r%d" r) (fun () ->
               for _ = 1 to quota do
                 let msg = K.Machine.receive m ~port in
                 received_sum := !received_sum + K.Machine.read_word m msg ~offset:0;
                 incr received_n
               done))
      done;
      let report = run m in
      let expected_sum =
        let s = ref 0 in
        for snd = 1 to senders do
          for i = 1 to per_sender do
            s := !s + (snd * 1000) + i
          done
        done;
        !s
      in
      report.K.Machine.deadlocked = []
      && !received_n = total
      && !received_sum = expected_sum)

let suite =
  [
    ("single process runs", `Quick, test_single_process_runs);
    ("processes accumulate time", `Quick, test_processes_accumulate_time);
    ("spawn many", `Quick, test_spawn_many);
    ("priority order single cpu", `Quick, test_priority_order_single_cpu);
    ("yield interleaves", `Quick, test_yield_interleaves);
    ("exit process", `Quick, test_exit_process);
    ("delay advances clock", `Quick, test_delay_advances_clock);
    ("delays order events", `Quick, test_delays_order_events);
    ("fault recorded", `Quick, test_fault_recorded);
    ("fault below level 3 panics", `Quick, test_fault_below_level3_panics);
    ("fault at level 4 contained", `Quick, test_fault_at_level4_does_not_panic);
    ("port send receive", `Quick, test_port_send_receive);
    ("port fifo order", `Quick, test_port_fifo_order);
    ("port priority discipline", `Quick, test_port_priority_discipline);
    ("port sender blocks when full", `Quick, test_port_sender_blocks_when_full);
    ("port blocked sender resumes", `Quick, test_port_blocked_sender_resumes);
    ("port receiver blocks then wakes", `Quick, test_port_receiver_blocks_then_wakes);
    ("port send requires right", `Quick, test_port_send_requires_right);
    ("port receive requires right", `Quick, test_port_receive_requires_right);
    ("port wrong object type", `Quick, test_port_wrong_object_type);
    ("cond send on full", `Quick, test_cond_send_on_full);
    ("cond receive on empty", `Quick, test_cond_receive_on_empty);
    ("deadlock detected", `Quick, test_deadlock_detected);
    ("multiprocessor parallel speedup", `Quick, test_multiprocessor_parallel_speedup);
    ("multiprocessor all used", `Quick, test_multiprocessor_all_used);
    ("bus contention slows", `Quick, test_bus_contention_slows);
    ("determinism", `Quick, test_determinism);
    ("time slice preempts", `Quick, test_time_slice_preempts);
    ("stopped process does not run", `Quick, test_stopped_process_does_not_run);
    ("stop blocked process defers wake", `Quick, test_stop_blocked_process_defers_wake);
    ("scheduler port notified", `Quick, test_scheduler_port_notified);
    ("domain call charges 65us", `Quick, test_domain_call_charges_65us);
    ("domain call nesting depth", `Quick, test_domain_call_nesting_depth);
    ("domain call propagates exception", `Quick, test_domain_call_propagates_exception);
    ("domain private environment", `Quick, test_domain_private_environment);
    ("local heap lifecycle", `Quick, test_local_heap_lifecycle);
    ("local heap level confinement", `Quick, test_local_heap_level_confinement);
    ("allocation charges 80us", `Quick, test_allocation_charges_80us);
    ("boot-time operations are free", `Quick, test_boot_time_operations_are_free);
    ("run respects max_steps", `Quick, test_run_respects_max_steps);
    ("run respects max_ns", `Quick, test_run_respects_max_ns);
    ("empty machine runs", `Quick, test_empty_machine_runs);
    ("spawn from local sro", `Quick, test_spawn_from_local_sro);
    ("trace records lifecycle", `Quick, test_trace_records_lifecycle);
    ("trace disabled by default", `Quick, test_trace_disabled_by_default);
    ("obj_type helpers", `Quick, test_obj_type_helpers);
    ("affinity pins process", `Quick, test_affinity_pins_process);
    ("affinity partition", `Quick, test_affinity_partition);
    ("affinity invalid processor", `Quick, test_affinity_invalid_processor);
    ("affinity lift rebalances", `Quick, test_affinity_lift_rebalances);
    QCheck_alcotest.to_alcotest prop_port_conservation;
    QCheck_alcotest.to_alcotest prop_port_many_to_many;
  ]
