(* Tests for the on-the-fly collector: reachability, barrier cooperation,
   destruction filters, local-heap reclamation, and process recovery. *)

open I432
module K = I432_kernel
module G = I432_gc

let mk () =
  let m =
    K.Machine.create
      ~config:{ K.Machine.default_config with K.Machine.processors = 1 }
      ()
  in
  (m, G.Collector.create m)

(* Run one collection cycle from inside a process so virtual time flows. *)
let collect m c =
  let dead = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"collector-driver" (fun () ->
         dead := G.Collector.cycle c));
  let _ = K.Machine.run m in
  !dead

let test_unreachable_collected () =
  let m, c = mk () in
  let garbage = K.Machine.allocate_generic m ~data_length:32 () in
  let table = K.Machine.table m in
  Alcotest.(check bool) "exists" true
    (Object_table.is_valid table (Access.index garbage));
  let dead = collect m c in
  Alcotest.(check bool) "collected at least one" true (dead >= 1);
  Alcotest.(check bool) "descriptor freed" false
    (Object_table.is_valid table (Access.index garbage))

let test_rooted_object_survives () =
  let m, c = mk () in
  let precious = K.Machine.allocate_generic m ~data_length:32 () in
  K.Machine.add_root m precious;
  let _ = collect m c in
  Alcotest.(check bool) "survived" true
    (Object_table.is_valid (K.Machine.table m) (Access.index precious))

let test_reachable_graph_survives () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let root = K.Machine.allocate_generic m ~access_length:2 () in
  let child = K.Machine.allocate_generic m ~access_length:2 () in
  let grandchild = K.Machine.allocate_generic m () in
  Segment.store_access table root ~slot:0 (Some child);
  Segment.store_access table child ~slot:0 (Some grandchild);
  K.Machine.add_root m root;
  let _ = collect m c in
  List.iter
    (fun a ->
      Alcotest.(check bool) "alive" true
        (Object_table.is_valid table (Access.index a)))
    [ root; child; grandchild ]

let test_severed_subgraph_collected () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let root = K.Machine.allocate_generic m ~access_length:2 () in
  let child = K.Machine.allocate_generic m ~access_length:2 () in
  let grandchild = K.Machine.allocate_generic m () in
  Segment.store_access table root ~slot:0 (Some child);
  Segment.store_access table child ~slot:0 (Some grandchild);
  K.Machine.add_root m root;
  let _ = collect m c in
  (* Sever: child and grandchild become garbage together. *)
  Segment.store_access table root ~slot:0 None;
  let _ = collect m c in
  Alcotest.(check bool) "root alive" true
    (Object_table.is_valid table (Access.index root));
  Alcotest.(check bool) "child dead" false
    (Object_table.is_valid table (Access.index child));
  Alcotest.(check bool) "grandchild dead" false
    (Object_table.is_valid table (Access.index grandchild))

let test_cycle_collected () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let a = K.Machine.allocate_generic m ~access_length:1 () in
  let b = K.Machine.allocate_generic m ~access_length:1 () in
  Segment.store_access table a ~slot:0 (Some b);
  Segment.store_access table b ~slot:0 (Some a);
  let _ = collect m c in
  Alcotest.(check bool) "cycle dead" false
    (Object_table.is_valid table (Access.index a)
    || Object_table.is_valid table (Access.index b))

let test_port_messages_are_roots () =
  let m, c = mk () in
  let port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m () in
         K.Machine.send m ~port ~msg:o));
  let _ = K.Machine.run m in
  let dead0 = collect m c in
  ignore dead0;
  (* The in-flight message must survive. *)
  let got = ref None in
  ignore
    (K.Machine.spawn m ~name:"r" (fun () -> got := Some (K.Machine.receive m ~port)));
  let _ = K.Machine.run m in
  match !got with
  | Some msg ->
    Alcotest.(check bool) "message object valid" true
      (Object_table.is_valid (K.Machine.table m) (Access.index msg))
  | None -> Alcotest.fail "message lost"

let test_shadow_stack_roots () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let survived = ref false in
  ignore
    (K.Machine.spawn m ~name:"mutator" (fun () ->
         let mine = K.Machine.allocate_generic m () in
         let self = K.Machine.all_processes m in
         (* Pin via the process shadow stack (the stand-in for ADs held in
            context objects). *)
         (match self with
         | p :: _ -> p.K.Process.local_roots <- [ mine ]
         | [] -> ());
         let _ = G.Collector.cycle c in
         survived := Object_table.is_valid table (Access.index mine)));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "pinned object survived" true !survived

let test_write_barrier_preserves_concurrent_store () =
  (* Build the Dijkstra race: the collector is mid-mark; the mutator moves
     the only reference to a white object into an already-black object.  The
     barrier's shading must keep the object alive. *)
  let m, c = mk () in
  let table = K.Machine.table m in
  let black_holder = K.Machine.allocate_generic m ~access_length:1 () in
  let staging = K.Machine.allocate_generic m ~access_length:1 () in
  let precious = K.Machine.allocate_generic m ~access_length:0 () in
  Segment.store_access table staging ~slot:0 (Some precious);
  K.Machine.add_root m black_holder;
  K.Machine.add_root m staging;
  let cfg = { G.Collector.default_config with G.Collector.scan_quantum = 1 } in
  let c2 = G.Collector.create ~config:cfg m in
  ignore c;
  let mutated = ref false in
  ignore
    (K.Machine.spawn m ~name:"collector" ~priority:5 (fun () ->
         ignore
           (G.Collector.cycle c2 ~step:(fun () ->
                (* Between quanta, let the mutator interleave once. *)
                if not !mutated then K.Machine.yield m))));
  ignore
    (K.Machine.spawn m ~name:"mutator" ~priority:5 (fun () ->
         (* Move the only reference: staging -> black_holder. *)
         Segment.store_access table black_holder ~slot:0 (Some precious);
         Segment.store_access table staging ~slot:0 None;
         mutated := true));
  let _ = K.Machine.run m in
  Alcotest.(check bool) "precious survived the race" true
    (Object_table.is_valid table (Access.index precious))

let test_allocation_during_mark_survives () =
  let m, _ = mk () in
  let table = K.Machine.table m in
  let cfg = { G.Collector.default_config with G.Collector.scan_quantum = 1 } in
  let c = G.Collector.create ~config:cfg m in
  (* Some pre-existing population so marking takes several quanta. *)
  let keeproot = K.Machine.allocate_generic m ~access_length:16 () in
  K.Machine.add_root m keeproot;
  for i = 0 to 9 do
    let o = K.Machine.allocate_generic m ~access_length:1 () in
    Segment.store_access table keeproot ~slot:i (Some o)
  done;
  let fresh = ref None in
  ignore
    (K.Machine.spawn m ~name:"collector" ~priority:5 (fun () ->
         ignore (G.Collector.cycle c ~step:(fun () -> K.Machine.yield m))));
  ignore
    (K.Machine.spawn m ~name:"allocator" ~priority:5 (fun () ->
         let o = K.Machine.allocate_generic m () in
         (* Immediately root it through a reachable object. *)
         Segment.store_access table keeproot ~slot:15 (Some o);
         fresh := Some o));
  let _ = K.Machine.run m in
  match !fresh with
  | Some o ->
    Alcotest.(check bool) "fresh object survived" true
      (Object_table.is_valid table (Access.index o))
  | None -> Alcotest.fail "allocator did not run"

let test_destruction_filter_delivers () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let td = Type_def.create table sro ~name:"resource" in
  let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  G.Destruction_filter.register table ~typedef:td ~port;
  let inst = Type_def.create_instance table td sro ~data_length:16 ~access_length:0 in
  let inst_index = Access.index inst in
  (* Drop the only reference by never rooting it; collect. *)
  let _ = collect m c in
  Alcotest.(check bool) "not freed" true (Object_table.is_valid table inst_index);
  Alcotest.(check int) "filtered count" 1 (G.Collector.stats c).G.Collector.filtered;
  (* The type manager drains the corpse. *)
  let drained = ref [] in
  ignore
    (K.Machine.spawn m ~name:"manager" (fun () ->
         drained :=
           G.Destruction_filter.drain m ~port ~finalize:(fun _ -> ())));
  let _ = K.Machine.run m in
  match !drained with
  | [ corpse ] -> Alcotest.(check int) "same object" inst_index (Access.index corpse)
  | _ -> Alcotest.fail "expected exactly one corpse"

let test_unfiltered_custom_freed () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let td = Type_def.create table sro ~name:"plain" in
  let inst = Type_def.create_instance table td sro ~data_length:16 ~access_length:0 in
  let idx = Access.index inst in
  let _ = collect m c in
  Alcotest.(check bool) "freed (no filter)" false (Object_table.is_valid table idx)

let test_filtered_corpse_not_recollected () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let td = Type_def.create table sro ~name:"resource" in
  let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  G.Destruction_filter.register table ~typedef:td ~port;
  let inst = Type_def.create_instance table td sro ~data_length:16 ~access_length:0 in
  let idx = Access.index inst in
  let _ = collect m c in
  (* Second cycle: the corpse sits in the filter port queue, which is a
     root, so it must not be double-delivered or freed. *)
  let _ = collect m c in
  Alcotest.(check bool) "still valid" true (Object_table.is_valid table idx);
  Alcotest.(check int) "delivered once" 1 (G.Collector.stats c).G.Collector.filtered

let test_lost_process_recovered () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  G.Destruction_filter.register_process_filter table port;
  let p = K.Machine.spawn m ~name:"shortlived" (fun () -> ()) in
  let _ = K.Machine.run m in
  let _ = collect m c in
  G.Destruction_filter.clear_process_filter table;
  Alcotest.(check int) "process recovered" 1
    (G.Collector.stats c).G.Collector.processes_recovered;
  Alcotest.(check bool) "object kept for manager" true
    (Object_table.is_valid table (Access.index p))

let test_live_process_not_collected () =
  let m, c = mk () in
  let table = K.Machine.table m in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  (* Blocked forever, but alive: must not be collected. *)
  let p = K.Machine.spawn m ~name:"blocked" (fun () ->
      ignore (K.Machine.receive m ~port))
  in
  let _ = K.Machine.run m in
  let _ = collect m c in
  Alcotest.(check bool) "blocked process survives" true
    (Object_table.is_valid table (Access.index p))

let test_local_heap_cheaper_than_gc () =
  (* The §5/§8.1 claim: objects confined to a local heap are reclaimed in
     bulk by SRO destruction, far cheaper per object than a global scan. *)
  let m, c = mk () in
  ignore c;
  let count = 50 in
  let bulk = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         let local = K.Machine.create_local_sro m ~level:1 ~bytes:(16 * 1024) in
         for _ = 1 to count do
           ignore
             (K.Machine.allocate m local ~data_length:32 ~access_length:0
                ~otype:Obj_type.Generic)
         done;
         bulk := K.Machine.destroy_sro m local));
  let _ = K.Machine.run m in
  Alcotest.(check int) "all reclaimed in bulk" count !bulk

let test_daemon_collects_continuously () =
  let m, _ = mk () in
  let cfg =
    { G.Collector.default_config with G.Collector.idle_sleep_ns = 100_000 }
  in
  let c = G.Collector.create ~config:cfg m in
  ignore (G.Collector.spawn_daemon ~cycles:3 c);
  ignore
    (K.Machine.spawn m ~name:"churn" (fun () ->
         for _ = 1 to 30 do
           ignore (K.Machine.allocate_generic m ~data_length:16 ());
           K.Machine.delay m ~ns:50_000
         done));
  let _ = K.Machine.run m in
  let st = G.Collector.stats c in
  Alcotest.(check bool) "multiple cycles ran" true (st.G.Collector.cycles >= 2);
  Alcotest.(check bool) "garbage swept" true (st.G.Collector.swept > 0)

(* qcheck: random graph mutations never let the collector free a reachable
   object, and repeated collection reaches a fixpoint. *)
let prop_gc_never_frees_reachable =
  QCheck2.Test.make ~name:"GC never frees reachable objects" ~count:40
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 9) (int_range 0 9)))
    (fun edges ->
      let m, c = mk () in
      let table = K.Machine.table m in
      let nodes =
        Array.init 10 (fun _ -> K.Machine.allocate_generic m ~access_length:10 ())
      in
      K.Machine.add_root m nodes.(0);
      (* Wire the requested edges (slot = destination id). *)
      List.iter
        (fun (src, dst) ->
          Segment.store_access table nodes.(src) ~slot:dst (Some nodes.(dst)))
        edges;
      let _ = collect m c in
      (* Everything reachable from node 0 must still be valid. *)
      let reachable = Array.make 10 false in
      let rec dfs i =
        if not reachable.(i) then begin
          reachable.(i) <- true;
          List.iter (fun (s, d) -> if s = i then dfs d) edges
        end
      in
      dfs 0;
      let ok = ref true in
      Array.iteri
        (fun i r ->
          if r && not (Object_table.is_valid table (Access.index nodes.(i))) then
            ok := false)
        reachable;
      !ok)

let suite =
  [
    ("unreachable collected", `Quick, test_unreachable_collected);
    ("rooted object survives", `Quick, test_rooted_object_survives);
    ("reachable graph survives", `Quick, test_reachable_graph_survives);
    ("severed subgraph collected", `Quick, test_severed_subgraph_collected);
    ("cycle collected", `Quick, test_cycle_collected);
    ("port messages are roots", `Quick, test_port_messages_are_roots);
    ("shadow stack roots", `Quick, test_shadow_stack_roots);
    ("write barrier preserves concurrent store", `Quick,
     test_write_barrier_preserves_concurrent_store);
    ("allocation during mark survives", `Quick, test_allocation_during_mark_survives);
    ("destruction filter delivers", `Quick, test_destruction_filter_delivers);
    ("unfiltered custom freed", `Quick, test_unfiltered_custom_freed);
    ("filtered corpse not recollected", `Quick, test_filtered_corpse_not_recollected);
    ("lost process recovered", `Quick, test_lost_process_recovered);
    ("live process not collected", `Quick, test_live_process_not_collected);
    ("local heap cheaper than gc", `Quick, test_local_heap_cheaper_than_gc);
    ("daemon collects continuously", `Quick, test_daemon_collects_continuously);
    QCheck_alcotest.to_alcotest prop_gc_never_frees_reachable;
  ]
