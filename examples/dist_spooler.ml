(* The print spooler, split across a two-node cluster.

   Node "clients" runs the user sessions; node "printshop" owns the print
   queue and the printer task.  The queue port is exported cluster-wide as
   "printer"; clients import it and send jobs through the resulting local
   surrogate with the ordinary send syscall — blocking and backpressure
   included — while the virtual interconnect marshals each job (a small
   composite: header object plus a payload object hanging off an access
   slot) to the printshop's heap.

   The export mask strips the write right, so the printshop can read jobs
   but never scribble on them — and because marshalling rebuilds the graph
   on the far heap, the client's originals are untouchable from there
   anyway.

   Determinism gate (like E1-E11): the whole scenario runs twice and must
   produce identical printed output and byte-identical event streams on
   both nodes. *)

open I432
module K = I432_kernel
module Obs = I432_obs

let clients = 3
let jobs_per_client = 4
let total = clients * jobs_per_client

let run_once () =
  let cluster = I432_net.Cluster.create () in
  let config =
    {
      K.Machine.default_config with
      processors = 2;
      trace_level = Obs.Tracer.Events;
    }
  in
  let node_a, ma = I432_net.Cluster.boot_node cluster ~name:"clients" ~config () in
  let node_b, mb =
    I432_net.Cluster.boot_node cluster ~name:"printshop" ~config ()
  in
  ignore (I432_net.Cluster.connect cluster node_a node_b);

  (* Printshop side: the real queue, exported read-only. *)
  let queue = K.Machine.create_port mb ~capacity:8 ~discipline:K.Port.Fifo () in
  I432_net.Remote_port.export cluster ~node:node_b ~name:"printer"
    ~mask:Rights.read_only queue;
  let printed = ref [] in
  ignore
    (K.Machine.spawn mb ~name:"printer" (fun () ->
         for _ = 1 to total do
           let job = K.Machine.receive mb ~port:queue in
           (* The mask stripped the write right on the way over. *)
           assert (not (Rights.has_write (Access.rights job)));
           let owner = K.Machine.read_word mb job ~offset:0 in
           let seq = K.Machine.read_word mb job ~offset:4 in
           let body =
             match K.Machine.load_access mb job ~slot:0 with
             | Some b -> b
             | None -> assert false
           in
           let words = K.Machine.read_word mb body ~offset:0 in
           K.Machine.compute mb 25;  (* print time *)
           printed := (owner, seq, words) :: !printed
         done));

  (* Client side: the imported surrogate behaves like any local port. *)
  let surrogate = I432_net.Remote_port.import cluster ~node:node_a ~name:"printer" in
  for u = 1 to clients do
    ignore
      (K.Machine.spawn ma ~name:(Printf.sprintf "user%d" u) (fun () ->
           for j = 1 to jobs_per_client do
             let body = K.Machine.allocate_generic ma ~data_length:8 () in
             K.Machine.write_word ma body ~offset:0 ((100 * u) + j);
             let job =
               K.Machine.allocate_generic ma ~data_length:16 ~access_length:1 ()
             in
             K.Machine.write_word ma job ~offset:0 u;
             K.Machine.write_word ma job ~offset:4 j;
             K.Machine.store_access ma job ~slot:0 (Some body);
             K.Machine.compute ma 10;  (* composing the job *)
             K.Machine.send ma ~port:surrogate ~msg:job
           done))
  done;

  let report = I432_net.Cluster.run cluster ~quantum_ns:200_000 () in
  ( report,
    List.rev !printed,
    List.map Obs.Event.to_string (K.Machine.events ma),
    List.map Obs.Event.to_string (K.Machine.events mb) )

let () =
  let r1, printed1, ea1, eb1 = run_once () in
  let r2, printed2, ea2, eb2 = run_once () in
  List.iter
    (fun (owner, seq, words) ->
      Printf.printf "printed user%d job%d (payload %d)\n" owner seq words)
    printed1;
  Printf.printf "frames: sent=%d delivered=%d lost=%d retx=%d acks=%d\n"
    r1.I432_net.Cluster.frames_sent r1.I432_net.Cluster.frames_delivered
    r1.I432_net.Cluster.frames_lost r1.I432_net.Cluster.retransmits
    r1.I432_net.Cluster.acks;
  (* Every job arrived, exactly once, payload intact. *)
  assert (List.length printed1 = total);
  assert (r1.I432_net.Cluster.frames_delivered = total);
  assert (r1.I432_net.Cluster.frames_lost = 0);
  List.iter
    (fun (owner, seq, words) -> assert (words = (100 * owner) + seq))
    printed1;
  (* Each client's jobs print in submission order (clean link: channel
     delivery follows send order). *)
  for u = 1 to clients do
    let seqs = List.filter_map
        (fun (owner, seq, _) -> if owner = u then Some seq else None)
        printed1
    in
    assert (seqs = List.init jobs_per_client (fun j -> j + 1))
  done;
  (* The determinism gate: identical output and event streams, both nodes. *)
  assert (printed1 = printed2);
  assert (r1 = r2);
  assert (ea1 = ea2);
  assert (eb1 = eb2);
  print_endline "dist_spooler OK"
