(* Shared-bus contention model.

   The 432's processors share one memory through a common bussing scheme;
   the paper (§3) claims "a factor of 10 in total processing power of a
   single 432 system is realizable".  We model contention as a per-mille
   slowdown applied to every charged instruction, linear in the number of
   *other* processors: with alpha = 20 per-mille, ten processors each run at
   1/1.18 speed, so the system delivers ~8.5x, and the envelope tops out
   around 10x near 13-14 processors before flattening. *)

type t = {
  mutable processors : int;
  alpha_per_mille : int;
}

let create ?(alpha_per_mille = 20) ~processors () =
  if processors <= 0 then invalid_arg "Bus.create: processors";
  if alpha_per_mille < 0 then invalid_arg "Bus.create: alpha";
  { processors; alpha_per_mille }

let set_processors t n =
  if n <= 0 then invalid_arg "Bus.set_processors";
  t.processors <- n

let processors t = t.processors

(* Effective cost of an instruction under contention. *)
let penalize t cost =
  let extra = cost * t.alpha_per_mille * (t.processors - 1) / 1000 in
  cost + extra

(* Slowdown factor as a float, for reporting. *)
let factor t =
  1.0 +. (float_of_int (t.alpha_per_mille * (t.processors - 1)) /. 1000.0)
