lib/kernel/context.ml: Fault I432 Obj_type Object_table Segment Sro
