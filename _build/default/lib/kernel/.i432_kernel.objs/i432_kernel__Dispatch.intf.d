lib/kernel/dispatch.mli:
