lib/kernel/machine.ml: Access Array Bus Bytes Context Dispatch Domain Fault I432 List Memory Obj_type Object_table Port Printexc Printf Process Processor Rights Segment Sro Syscall Timings
