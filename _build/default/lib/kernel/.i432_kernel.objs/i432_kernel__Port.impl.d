lib/kernel/port.ml: Access Fault I432 List Obj_type Object_table Rights Segment
