lib/kernel/bus.mli:
