lib/kernel/processor.ml: I432 Object_table
