lib/kernel/bus.ml:
