lib/kernel/syscall.ml: Access Effect I432 Printf
