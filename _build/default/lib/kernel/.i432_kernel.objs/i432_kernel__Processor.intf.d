lib/kernel/processor.mli: I432 Object_table
