lib/kernel/machine.mli: Access Bus Bytes Fault I432 Memory Obj_type Object_table Port Process Timings
