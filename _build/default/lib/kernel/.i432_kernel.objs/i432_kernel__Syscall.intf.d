lib/kernel/syscall.mli: Access Effect I432
