lib/kernel/process.mli: Access Effect Fault I432 Object_table Syscall
