lib/kernel/snapshot.mli: Machine
