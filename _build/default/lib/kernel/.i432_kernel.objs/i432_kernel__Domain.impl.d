lib/kernel/domain.ml: Fault I432 Obj_type Object_table Segment Sro
