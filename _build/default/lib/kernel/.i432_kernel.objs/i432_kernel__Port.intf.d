lib/kernel/port.mli: Access I432 Object_table
