lib/kernel/domain.mli: Access I432 Object_table
