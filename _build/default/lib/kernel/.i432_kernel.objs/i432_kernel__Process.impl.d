lib/kernel/process.ml: Access Effect Fault I432 Obj_type Object_table Printf Segment Syscall
