lib/kernel/context.mli: Access I432 Object_table
