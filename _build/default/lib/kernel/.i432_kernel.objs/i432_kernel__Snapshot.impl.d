lib/kernel/snapshot.ml: Buffer I432 List Machine Object_table Port Printf Process Processor
