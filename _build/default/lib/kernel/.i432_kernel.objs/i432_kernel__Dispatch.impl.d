lib/kernel/dispatch.ml: List
