(** Communication port objects: bounded message queues with a queueing
    discipline.  Messages are access descriptors; a full queue blocks the
    sender, an empty one the receiver.

    Type rights on a port access: {!I432.Rights.t1} = send,
    {!I432.Rights.t2} = receive.

    This module holds the pure queue state; the blocking protocol lives in
    the machine's syscall handler. *)

open I432

type discipline = Fifo | Priority

type queued_message = {
  msg : Access.t;
  msg_priority : int;
  seq : int;
  enqueued_at : int;
}

type waiting_sender = {
  sender : int;  (** process object index *)
  sender_msg : Access.t;
  sender_priority : int;
  sender_seq : int;
}

type t = {
  self : int;
  capacity : int;
  discipline : discipline;
  mutable queue : queued_message list;
  mutable senders : waiting_sender list;
  mutable receivers : int list;
  mutable seq : int;
  mutable sends : int;
  mutable receives : int;
  mutable send_blocks : int;
  mutable receive_blocks : int;
  mutable total_queue_wait_ns : int;
  mutable max_depth : int;
}

type Object_table.payload += Port_state of t

val state_of : Object_table.t -> Access.t -> t
val state_of_index : Object_table.t -> int -> t

(** Raise [Fault Rights_violation] without the respective type right. *)
val check_send_right : Access.t -> unit

val check_receive_right : Access.t -> unit

val queue_length : t -> int
val is_full : t -> bool
val is_empty : t -> bool
val has_blocked_receiver : t -> bool
val has_blocked_sender : t -> bool

(** Enqueue in service order (FIFO appends; Priority orders by descending
    priority, FIFO within).  Raises [Invalid_argument] when full. *)
val enqueue : t -> msg:Access.t -> priority:int -> now:int -> unit

val dequeue : t -> now:int -> Access.t option
val pop_receiver : t -> int option
val push_receiver : t -> int -> unit
val pop_sender : t -> waiting_sender option
val push_sender : t -> sender:int -> msg:Access.t -> priority:int -> unit
val mean_queue_wait_ns : t -> float
val discipline_to_string : discipline -> string
