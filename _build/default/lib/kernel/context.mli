(** Context objects: activation records with lifetime levels.

    Each context within a process has a level one greater than its
    caller's; the hardware level rule then confines capabilities for
    deeper-lived objects to deeper contexts, which is what makes local-heap
    reclamation safe. *)

open I432

(** [create table sro ~depth ~caller ~slots] allocates an activation record
    whose descriptor level is [depth]. *)
val create :
  Object_table.t ->
  Access.t ->
  depth:int ->
  caller:int option ->
  slots:int ->
  Access.t

val depth : Object_table.t -> Access.t -> int
val caller : Object_table.t -> Access.t -> int option

(** Capability locals; stores are subject to the level rule. *)
val set_local :
  Object_table.t -> Access.t -> slot:int -> Access.t option -> unit

val get_local : Object_table.t -> Access.t -> slot:int -> Access.t option

(** Return: the activation record is released to its SRO. *)
val destroy : Object_table.t -> Access.t -> unit
