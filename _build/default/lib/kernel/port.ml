(* Communication port objects (paper §2, §4).

   A port is "a queueing structure for interprocess communications" with a
   bounded message queue and a queueing discipline.  Send and receive are
   single hardware instructions; a full queue blocks the sender, an empty
   one blocks the receiver.  Messages are arbitrary access descriptors.

   Type rights on a port access: t1 = send right, t2 = receive right. *)

open I432

type discipline = Fifo | Priority

type queued_message = {
  msg : Access.t;
  msg_priority : int;
  seq : int;  (* FIFO tiebreak *)
  enqueued_at : int;  (* virtual ns, for latency statistics *)
}

type waiting_sender = {
  sender : int;  (* process object index *)
  sender_msg : Access.t;
  sender_priority : int;
  sender_seq : int;
}

type t = {
  self : int;
  capacity : int;
  discipline : discipline;
  mutable queue : queued_message list;  (* kept in service order *)
  mutable senders : waiting_sender list;  (* blocked senders, service order *)
  mutable receivers : int list;  (* blocked receiver process indices, FIFO *)
  mutable seq : int;
  (* statistics *)
  mutable sends : int;
  mutable receives : int;
  mutable send_blocks : int;
  mutable receive_blocks : int;
  mutable total_queue_wait_ns : int;
  mutable max_depth : int;
}

type Object_table.payload += Port_state of t

let state_of table access =
  Segment.check_type table access Obj_type.Port;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Port_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "port object has no port state")

let state_of_index table index =
  let e = Object_table.lookup table index in
  match e.Object_table.payload with
  | Some (Port_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "port object has no port state")

let check_send_right access =
  if not (Rights.has_type_right (Access.rights access) Rights.t1) then
    Fault.raise_fault
      (Fault.Rights_violation { needed = "send (t1)"; held = Access.rights access })

let check_receive_right access =
  if not (Rights.has_type_right (Access.rights access) Rights.t2) then
    Fault.raise_fault
      (Fault.Rights_violation
         { needed = "receive (t2)"; held = Access.rights access })

(* Insert in service order: FIFO appends; Priority orders by descending
   message priority, FIFO within a priority. *)
let insert_message t qm =
  match t.discipline with
  | Fifo -> t.queue <- t.queue @ [ qm ]
  | Priority ->
    let rec go = function
      | [] -> [ qm ]
      | x :: rest ->
        if
          qm.msg_priority > x.msg_priority
          || (qm.msg_priority = x.msg_priority && qm.seq < x.seq)
        then qm :: x :: rest
        else x :: go rest
    in
    t.queue <- go t.queue

let insert_sender t ws =
  match t.discipline with
  | Fifo -> t.senders <- t.senders @ [ ws ]
  | Priority ->
    let rec go = function
      | [] -> [ ws ]
      | x :: rest ->
        if
          ws.sender_priority > x.sender_priority
          || (ws.sender_priority = x.sender_priority && ws.sender_seq < x.sender_seq)
        then ws :: x :: rest
        else x :: go rest
    in
    t.senders <- go t.senders

let queue_length t = List.length t.queue
let is_full t = queue_length t >= t.capacity
let is_empty t = t.queue = []
let has_blocked_receiver t = t.receivers <> []
let has_blocked_sender t = t.senders <> []

let next_seq t =
  let s = t.seq in
  t.seq <- t.seq + 1;
  s

let enqueue t ~msg ~priority ~now =
  if is_full t then invalid_arg "Port.enqueue: full";
  insert_message t
    { msg; msg_priority = priority; seq = next_seq t; enqueued_at = now };
  let d = queue_length t in
  if d > t.max_depth then t.max_depth <- d

let dequeue t ~now =
  match t.queue with
  | [] -> None
  | qm :: rest ->
    t.queue <- rest;
    (* Clamp: the receiver's processor clock can trail the sender's. *)
    t.total_queue_wait_ns <-
      t.total_queue_wait_ns + max 0 (now - qm.enqueued_at);
    Some qm.msg

let pop_receiver t =
  match t.receivers with
  | [] -> None
  | r :: rest ->
    t.receivers <- rest;
    Some r

let push_receiver t index = t.receivers <- t.receivers @ [ index ]

let pop_sender t =
  match t.senders with
  | [] -> None
  | s :: rest ->
    t.senders <- rest;
    Some s

let push_sender t ~sender ~msg ~priority =
  insert_sender t
    { sender; sender_msg = msg; sender_priority = priority; sender_seq = next_seq t }

(* Mean time a message spent queued, in ns. *)
let mean_queue_wait_ns t =
  if t.receives = 0 then 0.0
  else float_of_int t.total_queue_wait_ns /. float_of_int t.receives

let discipline_to_string = function Fifo -> "FIFO" | Priority -> "priority"
