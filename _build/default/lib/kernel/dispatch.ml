(* Dispatching ports (paper §2): "ready processes are dispatched on
   processors automatically by the hardware via algorithms that involve
   processor, process, and dispatching port objects."

   The ready queue orders by descending process priority, FIFO within a
   priority.  Stopped or otherwise non-ready processes may linger in the
   queue after state changes; the pop operation skips them (they re-enter
   explicitly when restarted). *)

type entry = { process : int; priority : int; seq : int }

type t = {
  mutable ready : entry list;  (* in service order *)
  mutable seq : int;
  mutable enqueues : int;
  mutable dispatches : int;
  mutable max_ready : int;
}

let create () = { ready = []; seq = 0; enqueues = 0; dispatches = 0; max_ready = 0 }

let enqueue t ~process ~priority =
  let e = { process; priority; seq = t.seq } in
  t.seq <- t.seq + 1;
  let rec go = function
    | [] -> [ e ]
    | x :: rest ->
      if e.priority > x.priority then e :: x :: rest else x :: go rest
  in
  t.ready <- go t.ready;
  t.enqueues <- t.enqueues + 1;
  let n = List.length t.ready in
  if n > t.max_ready then t.max_ready <- n

(* Pop the first entry accepted by [eligible]; ineligible entries stay. *)
let pop t ~eligible =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
      if eligible e.process then begin
        t.ready <- List.rev_append acc rest;
        t.dispatches <- t.dispatches + 1;
        Some e.process
      end
      else go (e :: acc) rest
  in
  go [] t.ready

let remove t ~process =
  t.ready <- List.filter (fun e -> e.process <> process) t.ready

let mem t ~process = List.exists (fun e -> e.process = process) t.ready
let length t = List.length t.ready
let dispatches_of t = t.dispatches
let enqueues_of t = t.enqueues
let max_ready_of t = t.max_ready
