(* Domain objects (paper §2): "the 432 supports small protection domains
   with domain objects.  These correspond to the package construct in Ada
   ... a structure for grouping and restricting accesses to the
   implementation of a module.  The 432 subprogram call instruction performs
   the dynamic transition between domains."

   A domain's access part holds the capabilities that constitute the
   package's private environment; the entry points are OCaml closures that
   run with virtual-time accounting for the ~65 us domain switch. *)

open I432

type t = {
  self : int;
  domain_name : string;
  mutable calls : int;
  mutable returns : int;
  mutable max_depth : int;
  mutable depth : int;
}

type Object_table.payload += Domain_state of t

let state_of table access =
  Segment.check_type table access Obj_type.Domain;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Domain_state d) -> d
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "domain object has no domain state")

let create table sro_access ~name =
  let access =
    Sro.allocate table sro_access ~data_length:0 ~access_length:16
      ~otype:Obj_type.Domain
  in
  let e = Object_table.entry_of_access table access in
  e.Object_table.payload <-
    Some
      (Domain_state
         { self = e.Object_table.index; domain_name = name; calls = 0;
           returns = 0; max_depth = 0; depth = 0 });
  access

let name table access = (state_of table access).domain_name
let calls table access = (state_of table access).calls

(* Store a private capability into the domain's environment. *)
let set_private table access ~slot capability =
  Segment.store_access table access ~slot (Some capability)

let get_private table access ~slot = Segment.load_access table access ~slot
