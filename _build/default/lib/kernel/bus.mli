(** Shared-bus contention model for the multiprocessor scaling experiment.

    Every charged instruction is slowed by [alpha] per-mille per additional
    processor sharing the memory bus. *)

type t

val create : ?alpha_per_mille:int -> processors:int -> unit -> t
val set_processors : t -> int -> unit
val processors : t -> int

(** Effective cost (ns) of an instruction under current contention. *)
val penalize : t -> int -> int

(** Current slowdown factor (1.0 = no contention). *)
val factor : t -> float
