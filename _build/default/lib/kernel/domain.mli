(** Domain objects: small protection domains corresponding to the Ada
    package construct.  A domain's access part holds the capabilities that
    form the package's private environment; inter-domain calls are charged
    the ~65 µs domain switch by {!Machine.domain_call}. *)

open I432

type t = {
  self : int;
  domain_name : string;
  mutable calls : int;
  mutable returns : int;
  mutable max_depth : int;
  mutable depth : int;
}

type Object_table.payload += Domain_state of t

val state_of : Object_table.t -> Access.t -> t
val create : Object_table.t -> Access.t -> name:string -> Access.t
val name : Object_table.t -> Access.t -> string
val calls : Object_table.t -> Access.t -> int

(** Park a private capability in the domain's environment. *)
val set_private : Object_table.t -> Access.t -> slot:int -> Access.t -> unit

val get_private : Object_table.t -> Access.t -> slot:int -> Access.t option
