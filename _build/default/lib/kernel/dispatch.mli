(** The hardware dispatching port: a priority-ordered ready queue binding
    ready processes to idle processors. *)

type t

val create : unit -> t

(** Insert in service order: descending priority, FIFO within one
    priority. *)
val enqueue : t -> process:int -> priority:int -> unit

(** Pop the first entry accepted by [eligible]; rejected entries keep
    their position. *)
val pop : t -> eligible:(int -> bool) -> int option

val remove : t -> process:int -> unit
val mem : t -> process:int -> bool
val length : t -> int

(**/**)

(* Statistics consumed by the machine's run report. *)
val dispatches_of : t -> int
val enqueues_of : t -> int
val max_ready_of : t -> int
