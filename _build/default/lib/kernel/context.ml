(* Context objects (paper §2, §5).

   "The 432 subprogram call instruction performs the dynamic transition
   between domains, providing the proper addressing environment for any
   invoked subprogram via a context object."  And: "Each context object
   (i.e., activation record) within a process has a level one greater than
   that of its caller."

   A context is a real 432 object holding the activation's capability
   locals in its access part.  Its lifetime level equals its dynamic depth,
   so the hardware level rule stops any capability for a deeper (shorter
   lived) object from escaping into a shallower one — the mechanism that
   makes local heaps safe. *)

open I432

type t = {
  self : int;
  depth : int;  (* dynamic call depth = lifetime level *)
  caller : int option;  (* object index of the caller's context *)
  mutable live : bool;
}

type Object_table.payload += Context_state of t

let state_of table access =
  Segment.check_type table access Obj_type.Context;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Context_state c) -> c
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "context object has no context state")

(* Create an activation record at [depth]; its descriptor's level is the
   depth, which is what the store-access level check consults. *)
let create table sro_access ~depth ~caller ~slots =
  let access =
    Sro.allocate table sro_access ~data_length:0 ~access_length:slots
      ~otype:Obj_type.Context
  in
  let e = Object_table.entry_of_access table access in
  e.Object_table.level <- depth;
  e.Object_table.payload <-
    Some
      (Context_state
         { self = e.Object_table.index; depth; caller; live = true });
  access

let depth table access = (state_of table access).depth
let caller table access = (state_of table access).caller

(* Capability locals: ordinary checked access-part stores, so the level
   rule applies — a deeper context's object cannot be parked here. *)
let set_local table access ~slot v = Segment.store_access table access ~slot v
let get_local table access ~slot = Segment.load_access table access ~slot

(* Return from the activation: the context dies with its frame. *)
let destroy table access =
  let c = state_of table access in
  if not c.live then Fault.raise_fault (Fault.Protocol "context already destroyed");
  c.live <- false;
  match Sro.state_of_object table ~index:c.self with
  | Some s -> Sro.release table ~sro_state:s ~index:c.self
  | None -> Object_table.free_entry table c.self
