(** Physical memory of one tightly-coupled 432 system.

    Raw, unchecked-by-rights storage; all protection checks happen in
    {!Segment}, which translates access descriptors to physical ranges.
    Reads and writes are counted for the bus-contention model. *)

type t

val create : size_bytes:int -> t
val size : t -> int
val read_count : t -> int
val write_count : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit

(** 32-bit signed little-endian. *)
val read_i32 : t -> int -> int

val write_i32 : t -> int -> int -> unit
val blit_from_bytes : t -> src:Bytes.t -> dst_addr:int -> unit
val blit_to_bytes : t -> src_addr:int -> len:int -> Bytes.t
val fill : t -> addr:int -> len:int -> byte:char -> unit
