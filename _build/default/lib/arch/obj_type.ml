(* Hardware-recognized object types of the 432 (paper §2), plus user-defined
   types created through type-definition objects (paper §7.2). *)

type t =
  | Generic
  | Processor
  | Process
  | Port
  | Dispatching_port
  | Storage_resource
  | Domain
  | Context
  | Type_definition
  | Custom of int  (** identified by the id of its type-definition object *)

let equal a b =
  match a, b with
  | Generic, Generic
  | Processor, Processor
  | Process, Process
  | Port, Port
  | Dispatching_port, Dispatching_port
  | Storage_resource, Storage_resource
  | Domain, Domain
  | Context, Context
  | Type_definition, Type_definition -> true
  | Custom i, Custom j -> i = j
  | ( Generic | Processor | Process | Port | Dispatching_port
    | Storage_resource | Domain | Context | Type_definition | Custom _ ), _ ->
    false

let to_string = function
  | Generic -> "generic"
  | Processor -> "processor"
  | Process -> "process"
  | Port -> "port"
  | Dispatching_port -> "dispatching-port"
  | Storage_resource -> "storage-resource"
  | Domain -> "domain"
  | Context -> "context"
  | Type_definition -> "type-definition"
  | Custom id -> Printf.sprintf "custom(%d)" id

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* System objects are the types the processor interprets; their payloads are
   maintained by the kernel rather than by user stores. *)
let is_system = function
  | Processor | Process | Port | Dispatching_port | Storage_resource
  | Domain | Context | Type_definition -> true
  | Generic | Custom _ -> false
