(** Access descriptors — the 432's capabilities.

    An access descriptor names an object-table entry and carries rights.
    Rights can only be restricted through this interface; amplification is
    the privilege of the type manager (see {!Type_def.amplify}). *)

type t

(** Raises [Invalid_argument] on a negative index. *)
val make : index:int -> rights:Rights.t -> t

val index : t -> int
val rights : t -> Rights.t

(** Intersect the descriptor's rights with the given set. *)
val restrict : t -> Rights.t -> t

val read_only : t -> t
val without_type_right : t -> int -> t
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
