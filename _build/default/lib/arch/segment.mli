(** Checked segment access.

    Every operation takes an access descriptor and validates rights, bounds,
    and presence; storing into the access part additionally enforces the
    level (lifetime) rule and runs the garbage collector's gray-bit write
    barrier. *)

(** {1 Data part} *)

val read_u8 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int
val write_u8 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int -> unit
val read_u16 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int
val write_u16 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int -> unit
val read_i32 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int
val write_i32 : Object_table.t -> Memory.t -> Access.t -> offset:int -> int -> unit

val read_bytes :
  Object_table.t -> Memory.t -> Access.t -> offset:int -> len:int -> Bytes.t

val write_bytes :
  Object_table.t -> Memory.t -> Access.t -> offset:int -> Bytes.t -> unit

(** {1 Access part} *)

val load_access : Object_table.t -> Access.t -> slot:int -> Access.t option

(** Enforces the level rule: an access for a shorter-lived (higher-level)
    object may not be stored into a longer-lived (lower-level) object.
    Shades the stored object's descriptor gray (GC barrier). *)
val store_access :
  Object_table.t -> Access.t -> slot:int -> Access.t option -> unit

(** {1 Inspection} *)

val otype : Object_table.t -> Access.t -> Obj_type.t
val level : Object_table.t -> Access.t -> int
val data_length : Object_table.t -> Access.t -> int
val access_length : Object_table.t -> Access.t -> int

(** Raises [Fault Type_mismatch] unless the object has the expected type. *)
val check_type : Object_table.t -> Access.t -> Obj_type.t -> unit
