(* Virtual-time instruction costs.

   All simulator time is integer nanoseconds on an 8 MHz 432 (one cycle =
   125 ns), so the two costs the paper publishes anchor the calibration:

     - "a domain switch on the 432 takes about 65 microseconds" (§2)
     - "80 microseconds ... to allocate a segment from an SRO" (§5)

   The remaining costs are estimates chosen to be consistent with the
   companion IPC paper (Cox et al., SOSP 1981) and with the paper's remark
   that a domain switch "compares reasonably with the cost of procedure
   activation on other contemporary processors".  They are collected in a
   record so benchmarks can ablate them. *)

type t = {
  cycle_ns : int;  (* one processor cycle *)
  domain_call_ns : int;  (* inter-domain subprogram call *)
  domain_return_ns : int;
  intra_call_ns : int;  (* call within a domain: ordinary activation *)
  intra_return_ns : int;
  allocate_ns : int;  (* create-object from an SRO, size independent *)
  destroy_ns : int;  (* return a segment to its SRO *)
  send_ns : int;  (* port send, no blocking *)
  receive_ns : int;  (* port receive, no blocking *)
  dispatch_ns : int;  (* bind a ready process to an idle processor *)
  block_ns : int;  (* queue a process at a port and save its state *)
  read_word_ns : int;  (* 32-bit data read through an AD *)
  write_word_ns : int;
  move_access_ns : int;  (* copy an access descriptor between slots *)
  gc_scan_object_ns : int;  (* collector marks one object *)
  gc_sweep_object_ns : int;
  compute_unit_ns : int;  (* one abstract unit of user computation *)
  time_slice_ns : int;  (* default hardware time slice *)
}

let default =
  {
    cycle_ns = 125;
    domain_call_ns = 65_000;
    domain_return_ns = 22_000;
    intra_call_ns = 5_000;
    intra_return_ns = 2_000;
    allocate_ns = 80_000;
    destroy_ns = 18_000;
    send_ns = 12_000;
    receive_ns = 12_000;
    dispatch_ns = 22_000;
    block_ns = 16_000;
    read_word_ns = 500;
    write_word_ns = 625;
    move_access_ns = 1_250;
    gc_scan_object_ns = 6_000;
    gc_sweep_object_ns = 4_000;
    compute_unit_ns = 1_000;
    time_slice_ns = 10_000_000;
  }

let us ns = float_of_int ns /. 1_000.0

(* Scale every cost by a rational factor; used by ablation benches. *)
let scale t ~num ~den =
  let f x = x * num / den in
  {
    cycle_ns = f t.cycle_ns;
    domain_call_ns = f t.domain_call_ns;
    domain_return_ns = f t.domain_return_ns;
    intra_call_ns = f t.intra_call_ns;
    intra_return_ns = f t.intra_return_ns;
    allocate_ns = f t.allocate_ns;
    destroy_ns = f t.destroy_ns;
    send_ns = f t.send_ns;
    receive_ns = f t.receive_ns;
    dispatch_ns = f t.dispatch_ns;
    block_ns = f t.block_ns;
    read_word_ns = f t.read_word_ns;
    write_word_ns = f t.write_word_ns;
    move_access_ns = f t.move_access_ns;
    gc_scan_object_ns = f t.gc_scan_object_ns;
    gc_sweep_object_ns = f t.gc_sweep_object_ns;
    compute_unit_ns = f t.compute_unit_ns;
    time_slice_ns = f t.time_slice_ns;
  }
