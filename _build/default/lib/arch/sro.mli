(** Storage resource objects (SROs).

    An SRO describes free memory and allocates segments at a fixed lifetime
    level: a level-0 SRO is a global heap; a deeper-level SRO is a local
    heap whose entire population can be destroyed in bulk when the SRO dies,
    because the level rule guarantees no reference escaped.

    The allocate right is {!Rights.t1} on the SRO's access descriptor. *)

(** Create an SRO governing physical region [base, base+length) that creates
    objects at [level].  Returns a full-rights access to the SRO. *)
val create :
  Object_table.t -> level:int -> base:int -> length:int -> Access.t

(** The create-object instruction: allocate a segment and its descriptor.
    Raises [Fault Storage_exhausted] when no free region fits, and
    [Fault Rights_violation] without the allocate right. *)
val allocate :
  Object_table.t ->
  Access.t ->
  data_length:int ->
  access_length:int ->
  otype:Obj_type.t ->
  Access.t

(** Return one object (by table index) to the SRO that created it. *)
val release_by_access : Object_table.t -> Access.t -> index:int -> unit

(** Carve a child SRO from this SRO's free store — the tree structure of
    §5.  Destroying the parent cascades to children. *)
val create_child : Object_table.t -> Access.t -> level:int -> bytes:int -> Access.t

(** Destroy a local heap: bulk-free every object it created (cascading
    through child SROs), then the SRO itself.  Returns the number of
    objects reclaimed across the subtree. *)
val destroy : Object_table.t -> Access.t -> int

val child_count : Object_table.t -> Access.t -> int

val free_bytes : Object_table.t -> Access.t -> int
val level : Object_table.t -> Access.t -> int
val alloc_count : Object_table.t -> Access.t -> int
val destroy_count : Object_table.t -> Access.t -> int
val live_objects : Object_table.t -> Access.t -> int
val allocated_indices : Object_table.t -> Access.t -> int list
val is_live : Object_table.t -> Access.t -> bool
val largest_free : Object_table.t -> Access.t -> int
val region_count : Object_table.t -> Access.t -> int

(**/**)

(* Exposed for the collector's sweep, which frees garbage through the
   owning SRO without holding a user access descriptor. *)
type state

type Object_table.payload += Sro_state of state

val release : Object_table.t -> sro_state:state -> index:int -> unit
val state_of : Object_table.t -> Access.t -> state

(* Swapper support: locate the owning SRO of an object, donate a reclaimed
   physical frame to a free store, and carve a raw frame from one. *)
val state_of_object : Object_table.t -> index:int -> state option
val donate : Object_table.t -> sro_state:state -> base:int -> length:int -> unit
val carve : Object_table.t -> sro_state:state -> size:int -> int option
