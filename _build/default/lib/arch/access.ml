(* Access descriptors: the 432's capabilities.

   An access descriptor names an entry in the global object table and
   carries the rights available through it (paper §2).  Possession of an
   access descriptor is the only way to reach an object. *)

type t = {
  index : int;  (* object-table index *)
  rights : Rights.t;
}

let make ~index ~rights =
  if index < 0 then invalid_arg "Access.make: negative index";
  { index; rights }

let index t = t.index
let rights t = t.rights

(* Weaken the descriptor; rights can only shrink through this path. *)
let restrict t rights = { t with rights = Rights.restrict t.rights rights }

let read_only t = restrict t Rights.read_only

let without_type_right t bit =
  { t with rights = Rights.remove_type_right t.rights bit }

let equal a b = a.index = b.index && Rights.equal a.rights b.rights

let to_string t = Printf.sprintf "#%d[%s]" t.index (Rights.to_string t.rights)
let pp fmt t = Format.pp_print_string fmt (to_string t)
