(* Physical memory of one tightly-coupled 432 system.

   All processors see this single homogeneous memory (paper §3).  The data
   parts of segments live here; access parts are simulated as descriptor-side
   arrays (see Object_table) since on the 432 they are only reachable via
   checked access instructions anyway. *)

type t = {
  bytes : Bytes.t;
  mutable reads : int;  (* counters for the bus-contention model *)
  mutable writes : int;
}

let create ~size_bytes =
  if size_bytes <= 0 then invalid_arg "Memory.create: size";
  { bytes = Bytes.make size_bytes '\000'; reads = 0; writes = 0 }

let size t = Bytes.length t.bytes
let read_count t = t.reads
let write_count t = t.writes

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.bytes then
    Fault.raise_fault
      (Fault.Bounds { part = "physical"; offset = addr; length = Bytes.length t.bytes })

let read_u8 t addr =
  check t addr 1;
  t.reads <- t.reads + 1;
  Char.code (Bytes.get t.bytes addr)

let write_u8 t addr v =
  check t addr 1;
  t.writes <- t.writes + 1;
  Bytes.set t.bytes addr (Char.chr (v land 0xff))

let read_u16 t addr =
  check t addr 2;
  t.reads <- t.reads + 1;
  Char.code (Bytes.get t.bytes addr)
  lor (Char.code (Bytes.get t.bytes (addr + 1)) lsl 8)

let write_u16 t addr v =
  check t addr 2;
  t.writes <- t.writes + 1;
  Bytes.set t.bytes addr (Char.chr (v land 0xff));
  Bytes.set t.bytes (addr + 1) (Char.chr ((v lsr 8) land 0xff))

let read_i32 t addr =
  check t addr 4;
  t.reads <- t.reads + 1;
  let b i = Char.code (Bytes.get t.bytes (addr + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (* sign-extend from 32 bits *)
  (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let write_i32 t addr v =
  check t addr 4;
  t.writes <- t.writes + 1;
  for i = 0 to 3 do
    Bytes.set t.bytes (addr + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let blit_from_bytes t ~src ~dst_addr =
  check t dst_addr (Bytes.length src);
  t.writes <- t.writes + 1;
  Bytes.blit src 0 t.bytes dst_addr (Bytes.length src)

let blit_to_bytes t ~src_addr ~len =
  check t src_addr len;
  t.reads <- t.reads + 1;
  Bytes.sub t.bytes src_addr len

let fill t ~addr ~len ~byte =
  check t addr len;
  t.writes <- t.writes + 1;
  Bytes.fill t.bytes addr len byte
