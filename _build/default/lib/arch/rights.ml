(* Rights carried by an access descriptor (paper §2: "Each access descriptor
   ... contains rights flags that control the access available via that
   access descriptor").

   Base rights are read/write; three type rights are interpreted by the type
   manager of the object's type (for ports: send/receive; for processes:
   control; for SROs: allocate). Rights can only ever be restricted, never
   amplified, except through a type-definition object (Type_def.amplify). *)

type t = {
  read : bool;
  write : bool;
  type_rights : int;  (* 3-bit mask, bits 0..2 *)
}

let full = { read = true; write = true; type_rights = 0b111 }
let none = { read = false; write = false; type_rights = 0 }
let read_only = { read = true; write = false; type_rights = 0 }

(* Named type-right bits.  The interpretation is per-type; these names cover
   the uses in this repository. *)
let t1 = 0b001
let t2 = 0b010
let t3 = 0b100

let has_read t = t.read
let has_write t = t.write
let has_type_right t bit = t.type_rights land bit <> 0

(* Intersection: the result never exceeds either argument. *)
let restrict a b =
  {
    read = a.read && b.read;
    write = a.write && b.write;
    type_rights = a.type_rights land b.type_rights;
  }

let remove_type_right t bit = { t with type_rights = t.type_rights land lnot bit }

let equal a b =
  a.read = b.read && a.write = b.write && a.type_rights = b.type_rights

let subset ~of_ t =
  (not t.read || of_.read)
  && (not t.write || of_.write)
  && t.type_rights land lnot of_.type_rights = 0

let to_string t =
  Printf.sprintf "%c%c%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if has_type_right t t1 then '1' else '-')
    (if has_type_right t t2 then '2' else '-')
    (if has_type_right t t3 then '3' else '-')

let pp fmt t = Format.pp_print_string fmt (to_string t)
