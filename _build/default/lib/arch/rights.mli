(** Rights flags carried by an access descriptor.

    Base rights ([read]/[write]) gate the data and access parts of the
    segment; the three type rights are interpreted by the type manager of the
    object's type (e.g. send/receive for ports).  Rights can only be
    restricted through this interface; amplification requires the
    type-definition object (see {!Type_def}). *)

type t = {
  read : bool;
  write : bool;
  type_rights : int;  (** 3-bit mask *)
}

val full : t
val none : t
val read_only : t

(** Named type-right bits (per-type interpretation). *)
val t1 : int

val t2 : int
val t3 : int

val has_read : t -> bool
val has_write : t -> bool
val has_type_right : t -> int -> bool

(** Intersection of two rights sets. *)
val restrict : t -> t -> t

val remove_type_right : t -> int -> t
val equal : t -> t -> bool

(** [subset ~of_ t] is true when [t] grants nothing that [of_] does not. *)
val subset : of_:t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
