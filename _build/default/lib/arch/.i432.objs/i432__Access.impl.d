lib/arch/access.ml: Format Printf Rights
