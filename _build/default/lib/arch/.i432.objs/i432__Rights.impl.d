lib/arch/rights.ml: Format Printf
