lib/arch/timings.mli:
