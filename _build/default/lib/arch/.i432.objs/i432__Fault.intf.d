lib/arch/fault.mli: Format Obj_type Rights
