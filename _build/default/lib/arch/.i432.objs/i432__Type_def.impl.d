lib/arch/type_def.ml: Access Fault Obj_type Object_table Rights Segment Sro
