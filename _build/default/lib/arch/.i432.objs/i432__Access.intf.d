lib/arch/access.mli: Format Rights
