lib/arch/memory.ml: Bytes Char Fault Sys
