lib/arch/obj_type.ml: Format Printf
