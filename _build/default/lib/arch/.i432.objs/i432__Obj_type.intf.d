lib/arch/obj_type.mli: Format
