lib/arch/segment.mli: Access Bytes Memory Obj_type Object_table
