lib/arch/sro.ml: Access Fault List Obj_type Object_table Rights Segment
