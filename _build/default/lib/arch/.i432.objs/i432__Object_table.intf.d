lib/arch/object_table.mli: Access Obj_type
