lib/arch/timings.ml:
