lib/arch/fault.ml: Format Obj_type Printexc Printf Rights
