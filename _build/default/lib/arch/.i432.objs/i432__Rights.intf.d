lib/arch/rights.mli: Format
