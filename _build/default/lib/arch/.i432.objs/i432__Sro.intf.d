lib/arch/sro.mli: Access Obj_type Object_table
