lib/arch/segment.ml: Access Array Bytes Fault Memory Obj_type Object_table Rights
