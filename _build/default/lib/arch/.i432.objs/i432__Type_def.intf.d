lib/arch/type_def.mli: Access Object_table Rights
