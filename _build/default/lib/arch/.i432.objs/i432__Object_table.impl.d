lib/arch/object_table.ml: Access Array Fault Obj_type
