(** Virtual-time instruction costs for the simulated 8 MHz 432.

    Calibrated to the two figures the paper publishes: 65 µs per domain
    switch (§2) and 80 µs per SRO segment allocation (§5).  All times are in
    integer nanoseconds. *)

type t = {
  cycle_ns : int;
  domain_call_ns : int;
  domain_return_ns : int;
  intra_call_ns : int;
  intra_return_ns : int;
  allocate_ns : int;
  destroy_ns : int;
  send_ns : int;
  receive_ns : int;
  dispatch_ns : int;
  block_ns : int;
  read_word_ns : int;
  write_word_ns : int;
  move_access_ns : int;
  gc_scan_object_ns : int;
  gc_sweep_object_ns : int;
  compute_unit_ns : int;
  time_slice_ns : int;
}

val default : t

(** Nanoseconds to microseconds. *)
val us : int -> float

(** Scale every cost by [num/den] (integer arithmetic). *)
val scale : t -> num:int -> den:int -> t
