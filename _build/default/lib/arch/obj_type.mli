(** Hardware-recognized object types of the 432, plus user-defined types.

    The processor gives special semantics to the system types (dispatching,
    IPC, storage allocation, domain transfer); [Generic] and [Custom] objects
    carry no hardware semantics beyond protection. *)

type t =
  | Generic
  | Processor
  | Process
  | Port
  | Dispatching_port
  | Storage_resource
  | Domain
  | Context
  | Type_definition
  | Custom of int  (** identified by the id of its type-definition object *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** True for the types whose payload the kernel interprets. *)
val is_system : t -> bool
