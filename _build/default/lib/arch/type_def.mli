(** Type-definition objects: user-defined, hardware-checked types.

    A type manager creates a type definition, seals its instances with it,
    and alone can amplify rights on those instances.  The definition also
    records the type's destruction-filter port, consulted by the garbage
    collector when an instance becomes garbage.

    Type rights on a type-definition access: {!Rights.t1} = seal/create,
    {!Rights.t2} = amplify. *)

val create : Object_table.t -> Access.t -> name:string -> Access.t
val id : Object_table.t -> Access.t -> int
val name : Object_table.t -> Access.t -> string

(** Seal a [Generic] object as an instance of this type. *)
val seal : Object_table.t -> Access.t -> target:Access.t -> unit

(** Allocate from the SRO and seal in one step. *)
val create_instance :
  Object_table.t ->
  Access.t ->
  Access.t ->
  data_length:int ->
  access_length:int ->
  Access.t

(** Raises [Fault Type_mismatch] unless an instance of this type. *)
val check_instance : Object_table.t -> Access.t -> Access.t -> unit

val is_instance : Object_table.t -> Access.t -> Access.t -> bool

(** Type-manager-only rights amplification. *)
val amplify :
  Object_table.t -> Access.t -> Access.t -> rights:Rights.t -> Access.t

val sealed_count : Object_table.t -> Access.t -> int

(** {1 Destruction filters (paper §8.2)} *)

val set_filter_port : Object_table.t -> Access.t -> port_index:int -> unit
val clear_filter_port : Object_table.t -> Access.t -> unit
val filter_port : Object_table.t -> Access.t -> int option

(** Filter port registered for the given [Custom] type id, if any. *)
val filter_port_for_id : Object_table.t -> id:int -> int option
