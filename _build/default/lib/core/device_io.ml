(* Device-independent I/O (paper §6.3).

   "A single specification is defined for device independent input and
   another for device independent output.  Each instance of an I/O device
   may have a distinct implementation. ...  it avoids any centralized I/O
   control or interface.  Any user can create a new device implementation
   which will behave identically to existing ones without in any way
   altering system code, say to update a master I/O device list."

   The paper's Ada extension "raising packages to the status of types" maps
   directly to OCaml first-class modules: a device instance is a value of
   type [(module DEVICE)], created dynamically, with no central registry.

   "We actually go one step further ... by requiring only that a device
   implementation provide the common device independent interface as a
   subset": class-dependent interfaces (BLOCK_DEVICE, TAPE_DEVICE) include
   DEVICE, and instances are downcast by the holder, never by a central
   controller. *)

open I432
module K = I432_kernel

exception Device_error of string

(* The device-independent interface: every device provides at least this. *)
module type DEVICE = sig
  val name : string
  val kind : string

  (** Device-independent output: write a line/record. *)
  val write : string -> unit

  (** Device-independent input: read the next record; [None] at end. *)
  val read : unit -> string option

  val close : unit -> unit
  val is_open : unit -> bool
end

(* Class-dependent but device-independent: block devices. *)
module type BLOCK_DEVICE = sig
  include DEVICE

  val block_size : int
  val read_block : int -> Bytes.t
  val write_block : int -> Bytes.t -> unit
  val block_count : unit -> int
end

(* Class-dependent but device-independent: tapes, with their
   device-specific operations beyond the common subset. *)
module type TAPE_DEVICE = sig
  include DEVICE

  val rewind : unit -> unit
  val position : unit -> int
  val at_end : unit -> bool
end

type device = (module DEVICE)
type block_device = (module BLOCK_DEVICE)
type tape_device = (module TAPE_DEVICE)

(* A device instance is also a 432 object, so possession of the capability
   is what authorizes use.  Each maker seals its instances with its own
   type-definition object — that is how the tape farm experiment recovers
   lost drives through the destruction filter. *)

(* ---------------- Terminal (record-oriented) ---------------- *)

let make_terminal ~name:dev_name () : device =
  let module T = struct
    let name = dev_name
    let kind = "terminal"
    let opened = ref true
    let output : string list ref = ref []
    let input : string list ref = ref []

    let check () = if not !opened then raise (Device_error (dev_name ^ ": closed"))

    let write s =
      check ();
      output := s :: !output

    let read () =
      check ();
      match !input with
      | [] -> None
      | x :: rest ->
        input := rest;
        Some x

    let close () = opened := false
    let is_open () = !opened
  end in
  (module T)

(* Test/demo hook: terminals are loopback devices; feed and drain them. *)
let make_loopback_terminal ~name:dev_name () =
  let output : string list ref = ref [] in
  let input : string list ref = ref [] in
  let module T = struct
    let name = dev_name
    let kind = "terminal"
    let opened = ref true
    let check () = if not !opened then raise (Device_error (dev_name ^ ": closed"))

    let write s =
      check ();
      output := s :: !output

    let read () =
      check ();
      match !input with
      | [] -> None
      | x :: rest ->
        input := rest;
        Some x

    let close () = opened := false
    let is_open () = !opened
  end in
  let feed lines = input := !input @ lines in
  let drain () =
    let lines = List.rev !output in
    output := [];
    lines
  in
  ((module T : DEVICE), feed, drain)

(* ---------------- Disk (block device) ---------------- *)

let make_disk ~name:dev_name ~blocks ~block_size:bs () : block_device =
  let module D = struct
    let name = dev_name
    let kind = "disk"
    let block_size = bs
    let store = Array.init blocks (fun _ -> Bytes.make bs '\000')
    let opened = ref true
    let check () = if not !opened then raise (Device_error (dev_name ^ ": closed"))

    let check_block i =
      if i < 0 || i >= blocks then
        raise (Device_error (Printf.sprintf "%s: block %d out of range" dev_name i))

    let read_block i =
      check ();
      check_block i;
      Bytes.copy store.(i)

    let write_block i b =
      check ();
      check_block i;
      if Bytes.length b <> bs then
        raise (Device_error (dev_name ^ ": bad block size"));
      store.(i) <- Bytes.copy b

    let block_count () = blocks

    (* The device-independent subset: record I/O over block 0 cursor. *)
    let cursor = ref 0

    let write s =
      check ();
      let b = Bytes.make bs '\000' in
      Bytes.blit_string s 0 b 0 (min (String.length s) bs);
      check_block !cursor;
      store.(!cursor) <- b;
      incr cursor

    let read () =
      check ();
      if !cursor >= blocks then None
      else begin
        let b = store.(!cursor) in
        incr cursor;
        let len =
          match Bytes.index_opt b '\000' with
          | Some i -> i
          | None -> Bytes.length b
        in
        Some (Bytes.sub_string b 0 len)
      end

    let close () = opened := false
    let is_open () = !opened
  end in
  (module D)

(* ---------------- Tape drive ---------------- *)

(* Tape drives are the paper's lost-object example (§8.2): "an
   implementation of a tape drive in which each drive is represented by an
   object of type tape_drive".  The farm below is the type manager. *)

let make_tape ~name:dev_name ~capacity () : tape_device =
  let module T = struct
    let name = dev_name
    let kind = "tape"
    let records : string array = Array.make capacity ""
    let used = ref 0
    let pos = ref 0
    let opened = ref true
    let check () = if not !opened then raise (Device_error (dev_name ^ ": closed"))

    let write s =
      check ();
      if !used >= capacity then raise (Device_error (dev_name ^ ": tape full"));
      records.(!used) <- s;
      incr used;
      pos := !used

    let read () =
      check ();
      if !pos >= !used then None
      else begin
        let r = records.(!pos) in
        incr pos;
        Some r
      end

    let rewind () =
      check ();
      pos := 0

    let position () = !pos
    let at_end () = !pos >= !used
    let close () = opened := false
    let is_open () = !opened
  end in
  (module T)

(* ---------------- The tape-drive type manager ---------------- *)

type tape_farm = {
  machine : K.Machine.t;
  typedef : Access.t;  (* tape_drive type definition *)
  filter_port : Access.t;  (* destruction filter for lost drives *)
  mutable pool : (int * tape_device) list;  (* object index -> device *)
  mutable free_drives : Access.t list;
  mutable issued : int;
  mutable reclaimed : int;
  total : int;
}

(* Create a farm of [drives] physical tape drives, each represented by a
   sealed tape_drive object.  The farm registers a destruction filter so
   drives lost by careless clients return to the pool instead of vanishing
   with the garbage. *)
let create_tape_farm machine ~drives =
  let table = K.Machine.table machine in
  let sro = K.Machine.global_sro machine in
  let typedef = Type_def.create table sro ~name:"tape_drive" in
  let filter_port =
    K.Machine.create_port machine ~capacity:(max 4 drives) ~discipline:K.Port.Fifo ()
  in
  I432_gc.Destruction_filter.register table ~typedef ~port:filter_port;
  let farm =
    {
      machine;
      typedef;
      filter_port;
      pool = [];
      free_drives = [];
      issued = 0;
      reclaimed = 0;
      total = drives;
    }
  in
  for i = 0 to drives - 1 do
    let dev = make_tape ~name:(Printf.sprintf "tape%d" i) ~capacity:4096 () in
    let handle =
      Type_def.create_instance table typedef sro ~data_length:16
        ~access_length:0
    in
    farm.pool <- (Access.index handle, dev) :: farm.pool;
    farm.free_drives <- handle :: farm.free_drives;
    (* Pooled drives are reachable from the farm's domain: root them. *)
    K.Machine.add_root machine handle
  done;
  farm

(* Issue a drive capability to a client.  The client holds the only access
   descriptor; the farm deliberately forgets it (no central table of issued
   drives — §7.1), which is what makes loss possible. *)
let acquire_drive farm =
  match farm.free_drives with
  | [] -> None
  | handle :: rest ->
    farm.free_drives <- rest;
    farm.issued <- farm.issued + 1;
    (* The client now holds the only access: the farm forgets it. *)
    K.Machine.remove_root farm.machine handle;
    Some handle

(* Resolve a drive capability to its device implementation; only instances
   sealed by this farm's type definition are accepted. *)
let device_of farm handle =
  let table = K.Machine.table farm.machine in
  Type_def.check_instance table farm.typedef handle;
  match List.assoc_opt (Access.index handle) farm.pool with
  | Some dev -> dev
  | None -> raise (Device_error "unknown tape drive")

(* Orderly return of a drive. *)
let release_drive farm handle =
  let table = K.Machine.table farm.machine in
  Type_def.check_instance table farm.typedef handle;
  let (module T) = device_of farm handle in
  T.rewind ();
  farm.free_drives <- handle :: farm.free_drives;
  K.Machine.add_root farm.machine handle

(* Drain the destruction filter: every corpse is a drive some client lost.
   Rewind it and return it to the pool.  Must run inside a process body.
   Returns the number recovered. *)
let recover_lost_drives farm =
  let corpses =
    I432_gc.Destruction_filter.drain farm.machine ~port:farm.filter_port
      ~finalize:(fun corpse ->
        let (module T) = device_of farm corpse in
        T.rewind ();
        farm.free_drives <- corpse :: farm.free_drives;
        K.Machine.add_root farm.machine corpse)
  in
  farm.reclaimed <- farm.reclaimed + List.length corpses;
  List.length corpses

let free_drive_count farm = List.length farm.free_drives
let reclaimed_count farm = farm.reclaimed
let farm_typedef farm = farm.typedef
