(* The Ada intertask communication model, implemented on 432 ports.

   Paper §4: the port mechanism "is more flexible than the Ada intertask
   communication model.  It is used by the Ada compiler to implement the
   Ada model but is also available to the user who wishes the more general
   mechanism."  This module is that compiler mapping: Ada tasks are 432
   processes, an entry is a request port plus per-call reply ports, and a
   rendezvous is a send (entry call) matched by a receive/accept and a
   reply send.

   Paper §5: "Processes themselves are each created from an SRO and have
   their lifetimes constrained just as described for all objects.  This
   corresponds exactly to the Ada task model. ...  A group of tasks
   communicate with each other via ports defined in a scope common to all
   tasks in the group."

   Calls carry one 432 object as the in/out parameter, matching the
   any-access message model of Figure 1; typed views come from wrapping an
   entry with Typed_ports conversions. *)

open I432
module K = I432_kernel

type task = {
  process : Access.t;
  task_name : string;
}

(* An entry: the request port carries (parameter, reply port) pairs.  The
   pair itself is a 432 object with two access slots, so the whole
   rendezvous is visible to the protection system and the collector. *)
type entry = {
  machine : K.Machine.t;
  request_port : Access.t;
  entry_name : string;
  mutable calls : int;
  mutable accepts : int;
}

(* An accepted call, handed to the accept body. *)
type rendezvous = {
  parameter : Access.t;
  reply_port : Access.t;
  carrier : Access.t;  (* the pair object; reusable for the reply *)
}

let create_task machine ?(priority = 8) ~name body =
  let process = K.Machine.spawn machine ~priority ~name body in
  { process; task_name = name }

let task_process t = t.process
let task_name t = t.task_name

(* Declare an entry with a bounded call queue. *)
let create_entry machine ?(queue = 8) ~name () =
  {
    machine;
    request_port =
      K.Machine.create_port machine ~capacity:queue ~discipline:K.Port.Fifo ();
    entry_name = name;
    calls = 0;
    accepts = 0;
  }

let entry_name e = e.entry_name
let call_count e = e.calls
let accept_count e = e.accepts

(* Entry call: send the parameter and block until the accept body replies —
   Ada's synchronous rendezvous.  Returns the (possibly different) result
   object. *)
let call e ~parameter =
  let m = e.machine in
  e.calls <- e.calls + 1;
  let reply_port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let carrier =
    K.Machine.allocate m (K.Machine.global_sro m) ~data_length:0
      ~access_length:2 ~otype:Obj_type.Generic
  in
  K.Machine.store_access m carrier ~slot:0 (Some parameter);
  K.Machine.store_access m carrier ~slot:1 (Some reply_port);
  K.Machine.send m ~port:e.request_port ~msg:carrier;
  (* Rendezvous: the caller is suspended until the server replies. *)
  K.Machine.receive m ~port:reply_port

(* Accept one call: receive a request, run the body, send the body's result
   back on the caller's reply port. *)
let accept e ~body =
  let m = e.machine in
  let carrier = K.Machine.receive m ~port:e.request_port in
  e.accepts <- e.accepts + 1;
  let get slot =
    match K.Machine.load_access m carrier ~slot with
    | Some a -> a
    | None -> Fault.raise_fault (Fault.Protocol "malformed entry call carrier")
  in
  let rendezvous =
    { parameter = get 0; reply_port = get 1; carrier }
  in
  let result = body rendezvous.parameter in
  K.Machine.send m ~port:rendezvous.reply_port ~msg:result

(* Conditional accept (Ada's "select ... else"): accept only if a call is
   already queued.  Returns false when no caller was waiting. *)
let try_accept e ~body =
  let m = e.machine in
  match K.Machine.cond_receive m ~port:e.request_port with
  | None -> false
  | Some carrier ->
    e.accepts <- e.accepts + 1;
    let get slot =
      match K.Machine.load_access m carrier ~slot with
      | Some a -> a
      | None -> Fault.raise_fault (Fault.Protocol "malformed entry call carrier")
    in
    let result = body (get 0) in
    K.Machine.send m ~port:(get 1) ~msg:result;
    true

(* Selective wait over several entries (Ada's select): poll for a queued
   call, yielding between sweeps; accept the first available.  [until]
   bounds the wait in virtual time; None means wait forever. *)
let select ?until e_bodies =
  match e_bodies with
  | [] -> invalid_arg "Ada_tasks.select: no alternatives"
  | (first, _) :: _ ->
    let m = first.machine in
    let rec sweep () =
      let accepted =
        List.exists (fun (e, body) -> try_accept e ~body) e_bodies
      in
      if accepted then true
      else
        match until with
        | Some deadline when K.Machine.now m >= deadline -> false
        | Some _ | None ->
          K.Machine.yield m;
          sweep ()
    in
    sweep ()
