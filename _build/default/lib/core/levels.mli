(** The internal level discipline of iMAX (paper §7.3).

    Levels are orthogonal to abstractions.  Below system level 3, processes
    are not permitted to fault (level 2 only timeouts, level 1 nothing);
    all communication across the 2/3 boundary must be asynchronous, and
    upward communication must never depend on a reply. *)

open I432
module K := I432_kernel

type level = Level1 | Level2 | Level3 | User

val to_int : level -> int
val of_int : int -> level
val to_string : level -> string

(** May a process at this level raise this fault? *)
val may_fault : level -> Fault.cause -> bool

(** Is the src/dst pairing required to communicate asynchronously? *)
val must_be_asynchronous : src:level -> dst:level -> bool

(** May [src] block awaiting a reply from [dst]? *)
val may_await_reply : src:level -> dst:level -> bool

exception Discipline_violation of string

(** Spawn a process pinned to an iMAX level (the kernel panics if a
    process below level 3 faults). *)
val spawn :
  K.Machine.t ->
  level:level ->
  ?priority:int ->
  ?daemon:bool ->
  name:string ->
  (unit -> unit) ->
  Access.t

(** The only legal upward channel from level 2: a non-blocking post.
    Returns acceptance. *)
val async_notify :
  K.Machine.t -> src:level -> port:Access.t -> msg:Access.t -> bool

(** Guarded synchronous entry call: raises [Discipline_violation] for the
    call shapes the discipline forbids. *)
val sync_call :
  K.Machine.t ->
  src:level ->
  dst:level ->
  entry:Ada_tasks.entry ->
  parameter:Access.t ->
  Access.t
