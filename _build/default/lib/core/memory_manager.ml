(* Memory management via alternate implementations (paper §6.2).

   "Virtually all processes make use of memory management facilities via a
   standard interface that permits allocation of new objects.  Few processes
   depend upon whether the underlying implementation includes swapping or
   not.  A single Ada specification defines the common interface. ...  Both
   a swapping and a non-swapping implementation meet this specification but
   are optimized internally to the level of function they provide.  Each may
   provide an additional management interface."

   The common interface is the module type S below; the system is configured
   by picking one first-class module (see {!System}).  The interface covers
   the three allocation mechanisms of §5: stack allocation (per-call local
   heaps), global heap allocation, and local heap allocation. *)

open I432
module K = I432_kernel

type stats = {
  mutable allocations : int;
  mutable frees : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable alloc_faults : int;  (* storage exhausted on first attempt *)
}

let fresh_stats () =
  { allocations = 0; frees = 0; swap_ins = 0; swap_outs = 0; alloc_faults = 0 }

module type S = sig
  type t

  val name : string
  val create : K.Machine.t -> heap_bytes:int -> t

  (** Global heap allocation: the object lives at level 0 until
      unreachable. *)
  val allocate :
    t -> data_length:int -> access_length:int -> otype:Obj_type.t -> Access.t

  (** Local heap allocation at a lifetime level (a new SRO per level). *)
  val allocate_local :
    t ->
    level:int ->
    data_length:int ->
    access_length:int ->
    otype:Obj_type.t ->
    Access.t

  (** Explicit release (garbage collection frees the rest). *)
  val free : t -> Access.t -> unit

  (** Touch an object before direct data access: the swapping implementation
      brings the segment in; the non-swapping one checks validity only. *)
  val touch : t -> Access.t -> unit

  (** The common interface ends here; [stats] is the per-implementation
      management interface the paper allows. *)
  val stats : t -> stats
end

(* Shared plumbing: per-level local SROs and descriptor release. *)

let release_to_owner table index st =
  match Sro.state_of_object table ~index with
  | Some s ->
    Sro.release table ~sro_state:s ~index;
    st.frees <- st.frees + 1
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Non-swapping implementation (the paper's first release)             *)
(* ------------------------------------------------------------------ *)

module Nonswapping : S = struct
  type t = {
    machine : K.Machine.t;
    heap : Access.t;  (* level-0 SRO *)
    mutable locals : (int * Access.t) list;  (* level -> SRO *)
    st : stats;
  }

  let name = "non-swapping"

  let create machine ~heap_bytes =
    let heap = K.Machine.create_local_sro machine ~level:0 ~bytes:heap_bytes in
    { machine; heap; locals = []; st = fresh_stats () }

  let allocate t ~data_length ~access_length ~otype =
    match
      K.Machine.allocate t.machine t.heap ~data_length ~access_length ~otype
    with
    | a ->
      t.st.allocations <- t.st.allocations + 1;
      a
    | exception Fault.Fault (Fault.Storage_exhausted _ as cause) ->
      t.st.alloc_faults <- t.st.alloc_faults + 1;
      Fault.raise_fault cause

  let local_sro t ~level =
    match List.assoc_opt level t.locals with
    | Some sro when Sro.is_live (K.Machine.table t.machine) sro -> sro
    | Some _ | None ->
      let sro =
        K.Machine.create_local_sro t.machine ~level ~bytes:(64 * 1024)
      in
      t.locals <- (level, sro) :: List.remove_assoc level t.locals;
      sro

  let allocate_local t ~level ~data_length ~access_length ~otype =
    let sro = local_sro t ~level in
    let a = K.Machine.allocate t.machine sro ~data_length ~access_length ~otype in
    t.st.allocations <- t.st.allocations + 1;
    a

  let free t access =
    release_to_owner (K.Machine.table t.machine) (Access.index access) t.st

  let touch t access =
    (* Validity check only: a non-swapping system never has absent
       segments. *)
    ignore (Object_table.entry_of_access (K.Machine.table t.machine) access)

  let stats t = t.st
end

(* ------------------------------------------------------------------ *)
(* Swapping implementation (the paper's second release)                *)
(* ------------------------------------------------------------------ *)

type victim_policy = Lru | Fifo_policy

module type SWAP_CONFIG = sig
  val victim_policy : victim_policy
  val swap_in_ns : int
  val swap_out_ns : int
end

module Default_swap_config = struct
  let victim_policy = Lru
  let swap_in_ns = 400_000  (* ~0.4 ms: a fast backing store *)
  let swap_out_ns = 400_000
end

module Make_swapping (C : SWAP_CONFIG) : S = struct
  type resident = {
    index : int;
    mutable last_touch : int;  (* virtual ns, for LRU *)
    arrival : int;  (* monotonic, for FIFO *)
  }

  type t = {
    machine : K.Machine.t;
    heap : Access.t;
    mutable locals : (int * Access.t) list;
    mutable residents : resident list;
    backing : (int, Bytes.t) Hashtbl.t;  (* swapped-out segment images *)
    mutable arrivals : int;
    st : stats;
  }

  let name =
    match C.victim_policy with
    | Lru -> "swapping/lru"
    | Fifo_policy -> "swapping/fifo"

  let create machine ~heap_bytes =
    let heap = K.Machine.create_local_sro machine ~level:0 ~bytes:heap_bytes in
    {
      machine;
      heap;
      locals = [];
      residents = [];
      backing = Hashtbl.create 64;
      arrivals = 0;
      st = fresh_stats ();
    }

  let note_resident t index =
    t.arrivals <- t.arrivals + 1;
    t.residents <-
      { index; last_touch = K.Machine.now t.machine; arrival = t.arrivals }
      :: t.residents

  (* Pick a victim among resident, non-system, non-empty segments. *)
  let pick_victim t ~avoid =
    let table = K.Machine.table t.machine in
    let candidates =
      List.filter
        (fun r ->
          r.index <> avoid
          && Object_table.is_valid table r.index
          &&
          let e = Object_table.lookup table r.index in
          (not e.Object_table.swapped_out)
          && (not (Obj_type.is_system e.Object_table.otype))
          && e.Object_table.data_length > 0)
        t.residents
    in
    match candidates with
    | [] -> None
    | first :: rest ->
      let better a b =
        (* Arrival breaks ties so equal-timestamp residents evict
           oldest-first. *)
        match C.victim_policy with
        | Lru ->
          if (a.last_touch, a.arrival) <= (b.last_touch, b.arrival) then a
          else b
        | Fifo_policy -> if a.arrival <= b.arrival then a else b
      in
      Some (List.fold_left better first rest)

  (* Swap one segment out: save its data image, mark the descriptor absent,
     and return its frame to the owning SRO's free store. *)
  let swap_out t victim =
    let table = K.Machine.table t.machine in
    let memory = K.Machine.memory t.machine in
    let e = Object_table.lookup table victim.index in
    let image =
      Memory.blit_to_bytes memory ~src_addr:e.Object_table.base
        ~len:e.Object_table.data_length
    in
    Hashtbl.replace t.backing victim.index image;
    (match Sro.state_of_object table ~index:victim.index with
    | Some s ->
      Sro.donate table ~sro_state:s ~base:e.Object_table.base
        ~length:e.Object_table.data_length
    | None -> ());
    e.Object_table.swapped_out <- true;
    t.residents <- List.filter (fun r -> r.index <> victim.index) t.residents;
    K.Machine.charge t.machine C.swap_out_ns;
    t.st.swap_outs <- t.st.swap_outs + 1

  (* Evict until [sro_state] can supply [size] bytes, or no victims remain. *)
  let rec make_room t ~sro_state ~size ~avoid =
    let table = K.Machine.table t.machine in
    match Sro.carve table ~sro_state ~size with
    | Some base -> Some base
    | None -> (
      match pick_victim t ~avoid with
      | None -> None
      | Some victim ->
        swap_out t victim;
        make_room t ~sro_state ~size ~avoid)

  (* Bring a swapped-out segment back, evicting residents as needed. *)
  let swap_in t index =
    let table = K.Machine.table t.machine in
    let memory = K.Machine.memory t.machine in
    let e = Object_table.lookup table index in
    if e.Object_table.swapped_out then begin
      let size = e.Object_table.data_length in
      match Sro.state_of_object table ~index with
      | None -> Fault.raise_fault Fault.Sro_destroyed
      | Some s -> (
        match make_room t ~sro_state:s ~size ~avoid:index with
        | None ->
          Fault.raise_fault
            (Fault.Storage_exhausted { requested = size; available = 0 })
        | Some base ->
          (match Hashtbl.find_opt t.backing index with
          | Some image ->
            Memory.blit_from_bytes memory ~src:image ~dst_addr:base
          | None -> Memory.fill memory ~addr:base ~len:size ~byte:'\000');
          Hashtbl.remove t.backing index;
          e.Object_table.base <- base;
          e.Object_table.swapped_out <- false;
          note_resident t index;
          K.Machine.charge t.machine C.swap_in_ns;
          t.st.swap_ins <- t.st.swap_ins + 1)
    end

  let allocate_with_pressure t sro ~data_length ~access_length ~otype =
    match
      K.Machine.allocate t.machine sro ~data_length ~access_length ~otype
    with
    | a ->
      t.st.allocations <- t.st.allocations + 1;
      note_resident t (Access.index a);
      a
    | exception Fault.Fault (Fault.Storage_exhausted _) -> (
      t.st.alloc_faults <- t.st.alloc_faults + 1;
      let table = K.Machine.table t.machine in
      let s = Sro.state_of table sro in
      match make_room t ~sro_state:s ~size:data_length ~avoid:(-1) with
      | None ->
        Fault.raise_fault
          (Fault.Storage_exhausted { requested = data_length; available = 0 })
      | Some base ->
        (* Return the carved frame and let the allocator place the new
           object there. *)
        Sro.donate table ~sro_state:s ~base ~length:data_length;
        let a =
          K.Machine.allocate t.machine sro ~data_length ~access_length ~otype
        in
        t.st.allocations <- t.st.allocations + 1;
        note_resident t (Access.index a);
        a)

  let allocate t ~data_length ~access_length ~otype =
    allocate_with_pressure t t.heap ~data_length ~access_length ~otype

  let local_sro t ~level =
    match List.assoc_opt level t.locals with
    | Some sro when Sro.is_live (K.Machine.table t.machine) sro -> sro
    | Some _ | None ->
      let sro =
        K.Machine.create_local_sro t.machine ~level ~bytes:(64 * 1024)
      in
      t.locals <- (level, sro) :: List.remove_assoc level t.locals;
      sro

  let allocate_local t ~level ~data_length ~access_length ~otype =
    let sro = local_sro t ~level in
    allocate_with_pressure t sro ~data_length ~access_length ~otype

  let free t access =
    let table = K.Machine.table t.machine in
    let e = Object_table.entry_of_access table access in
    Hashtbl.remove t.backing e.Object_table.index;
    t.residents <-
      List.filter (fun r -> r.index <> e.Object_table.index) t.residents;
    if e.Object_table.swapped_out then begin
      (* No physical frame to return; make the release a descriptor-only
         operation. *)
      e.Object_table.data_length <- 0;
      e.Object_table.swapped_out <- false
    end;
    release_to_owner table e.Object_table.index t.st

  let touch t access =
    let table = K.Machine.table t.machine in
    let e = Object_table.entry_of_access table access in
    if e.Object_table.swapped_out then swap_in t e.Object_table.index;
    List.iter
      (fun r ->
        if r.index = e.Object_table.index then
          r.last_touch <- K.Machine.now t.machine)
      t.residents

  let stats t = t.st
end

module Swapping = Make_swapping (Default_swap_config)

module Swapping_fifo = Make_swapping (struct
  let victim_policy = Fifo_policy
  let swap_in_ns = Default_swap_config.swap_in_ns
  let swap_out_ns = Default_swap_config.swap_out_ns
end)
