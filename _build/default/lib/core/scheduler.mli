(** Resource-control policies layered on the basic process manager
    (paper §6.1): the null pass-through policy, a round-robin equalizer,
    and a fair-share user-process manager whose daemon samples per-group
    CPU consumption and renices over-served groups. *)

open I432
module K := I432_kernel

type group
type policy = Null | Round_robin | Fair_share
type t

val create : ?quantum_ns:int -> K.Machine.t -> Process_manager.t -> policy -> t

(** Declare an accounting group (a "user"). *)
val add_group : t -> string -> group

(** Place a managed process under a group's account. *)
val enroll : t -> group -> Access.t -> unit

(** One fair-share rebalancing pass (the daemon calls this periodically). *)
val rebalance : t -> unit

(** Spawn the policy daemon; a no-op body for policies that need none. *)
val spawn_daemon : t -> Access.t

val adjustments : t -> int
val groups : t -> group list
val policy_to_string : policy -> string
