(* The iMAX package Untyped_Ports (paper §4, Figure 1).

   "The type any_access ... corresponds to an otherwise untyped access
   descriptor. ...  Of the three subprograms ... Send and Receive will
   correspond to single instructions, while Create is software implemented."

   Send and Receive map to the kernel's single-instruction port syscalls
   (the Ada inline pragma); Create_port is implemented conventionally here,
   in the only package holding the environment needed to construct port
   objects — the 432 protection structures guarantee as much, since the
   port-creating SRO access is confined to this module's closure. *)

open I432
module K = I432_kernel

(* any_access: an otherwise untyped access descriptor. *)
type any_access = Access.t

type port = Access.t

type q_discipline = K.Port.discipline = Fifo | Priority

let max_msg_cnt = 4096

(* Create a port with the given size and queueing discipline. *)
let create_port machine ?(message_count = 16) ?(port_discipline = Fifo) () =
  if message_count < 1 || message_count > max_msg_cnt then
    Fault.raise_fault
      (Fault.Protocol
         (Printf.sprintf "message_count %d outside 1..%d" message_count
            max_msg_cnt));
  K.Machine.create_port machine ~capacity:message_count
    ~discipline:port_discipline ()

(* The calling process sends [msg] to [prt], blocking while the message
   queue is full. *)
let send machine ~prt ~(msg : any_access) = K.Machine.send machine ~port:prt ~msg

(* The calling process receives a message from [prt], blocking until one is
   available. *)
let receive machine ~prt : any_access = K.Machine.receive machine ~port:prt

(* Non-blocking variants (the 432's conditional send/receive). *)
let cond_send machine ~prt ~(msg : any_access) =
  K.Machine.cond_send machine ~port:prt ~msg

let cond_receive machine ~prt : any_access option =
  K.Machine.cond_receive machine ~port:prt

(* Restrict a port access to one capability direction: a send-only or
   receive-only descriptor to hand to clients. *)
let send_only prt = Access.without_type_right prt Rights.t2
let receive_only prt = Access.without_type_right prt Rights.t1
