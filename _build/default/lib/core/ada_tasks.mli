(** The Ada intertask (rendezvous) model, implemented on 432 ports — the
    compiler mapping the paper describes in §4.

    Tasks are 432 processes; an entry is a request port carrying
    (parameter, reply-port) carrier objects; a rendezvous suspends the
    caller until the acceptor replies. *)

open I432

type task
type entry

val create_task :
  I432_kernel.Machine.t -> ?priority:int -> name:string -> (unit -> unit) -> task

val task_process : task -> Access.t
val task_name : task -> string

val create_entry :
  I432_kernel.Machine.t -> ?queue:int -> name:string -> unit -> entry

val entry_name : entry -> string
val call_count : entry -> int
val accept_count : entry -> int

(** Synchronous entry call: blocks until the acceptor replies.  Returns the
    result object. *)
val call : entry -> parameter:Access.t -> Access.t

(** Accept one queued (or future) call, run [body] on the parameter, and
    reply with its result. *)
val accept : entry -> body:(Access.t -> Access.t) -> unit

(** Accept only if a caller is already queued ("select ... else"). *)
val try_accept : entry -> body:(Access.t -> Access.t) -> bool

(** Selective wait: accept the first available alternative, yielding
    between sweeps; [until] is a virtual-time deadline. *)
val select : ?until:int -> (entry * (Access.t -> Access.t)) list -> bool
