lib/core/interpose.ml: Access I432 I432_kernel List Untyped_ports
