lib/core/scheduler.mli: Access I432 I432_kernel Process_manager
