lib/core/system.mli: Access I432 I432_gc I432_kernel Memory_manager Obj_type Process_manager Scheduler Timings
