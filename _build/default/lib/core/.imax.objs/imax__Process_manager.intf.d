lib/core/process_manager.mli: Access I432 I432_kernel
