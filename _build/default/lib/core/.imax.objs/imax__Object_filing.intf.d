lib/core/object_filing.mli: Access I432 I432_kernel Obj_type
