lib/core/object_filing.ml: Access Array Bytes Fault Hashtbl I432 I432_kernel List Obj_type Object_table Rights Segment
