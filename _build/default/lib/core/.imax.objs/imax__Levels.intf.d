lib/core/levels.mli: Access Ada_tasks Fault I432 I432_kernel
