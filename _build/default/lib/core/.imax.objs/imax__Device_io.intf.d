lib/core/device_io.mli: Access Bytes I432 I432_kernel
