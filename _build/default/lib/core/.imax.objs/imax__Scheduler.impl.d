lib/core/scheduler.ml: Access I432 I432_kernel List Process_manager
