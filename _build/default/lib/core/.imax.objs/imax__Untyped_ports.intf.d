lib/core/untyped_ports.mli: Access I432 I432_kernel
