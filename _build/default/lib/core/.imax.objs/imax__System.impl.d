lib/core/system.ml: I432 I432_gc I432_kernel Memory_manager Process_manager Scheduler
