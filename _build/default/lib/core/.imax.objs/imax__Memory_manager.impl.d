lib/core/memory_manager.ml: Access Bytes Fault Hashtbl I432 I432_kernel List Memory Obj_type Object_table Sro
