lib/core/typed_ports.ml: Access I432 I432_kernel Option Type_def Untyped_ports
