lib/core/ada_tasks.mli: Access I432 I432_kernel
