lib/core/untyped_ports.ml: Access Fault I432 I432_kernel Printf Rights
