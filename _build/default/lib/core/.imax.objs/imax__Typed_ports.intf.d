lib/core/typed_ports.mli: Access I432 I432_kernel Untyped_ports
