lib/core/interpose.mli: Access I432 I432_kernel Untyped_ports
