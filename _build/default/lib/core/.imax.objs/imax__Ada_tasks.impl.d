lib/core/ada_tasks.ml: Access Fault I432 I432_kernel List Obj_type
