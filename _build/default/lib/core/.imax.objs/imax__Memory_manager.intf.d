lib/core/memory_manager.mli: Access I432 I432_kernel Obj_type
