lib/core/process_manager.ml: Access Fault I432 I432_gc I432_kernel List Object_table Option Sro
