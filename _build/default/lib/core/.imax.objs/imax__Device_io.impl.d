lib/core/device_io.ml: Access Array Bytes I432 I432_gc I432_kernel List Printf String Type_def
