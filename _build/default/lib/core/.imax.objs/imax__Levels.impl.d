lib/core/levels.ml: Ada_tasks Fault I432 I432_kernel Printf String
