(* The generic package Typed_Ports (paper §4, Figure 2).

   "The user may create an instance of this package for any access type,
   thus creating a new Ada level type user_port that can be type checked at
   compile time ...  The implementation of this package is in terms of
   Untyped_Ports and an unchecked_conversion from any_access to the
   user_message type.  The inline facility allows the code generated for any
   instance of this package to be identical to that generated for the
   untyped port package."

   In OCaml the generic package is a functor and the unchecked conversions
   are the coercions the MESSAGE argument supplies.  For messages that are
   themselves 432 objects the conversions are the identity, so the compiled
   instance performs exactly the Untyped_ports operations — the
   zero-overhead claim benchmarked in experiment E4.

   Make_checked goes "one step further ... to provide the type checking
   dynamically at runtime" using the 432's user-defined types: each send and
   receive also verifies the hardware type of the message object. *)

open I432
module K = I432_kernel

module type MESSAGE = sig
  type t

  val to_access : t -> Access.t
  val of_access : Access.t -> t
end

module type S = sig
  type user_message
  type user_port

  val create :
    K.Machine.t ->
    ?message_count:int ->
    ?port_discipline:Untyped_ports.q_discipline ->
    unit ->
    user_port

  val send : K.Machine.t -> prt:user_port -> msg:user_message -> unit
  val receive : K.Machine.t -> prt:user_port -> user_message
  val cond_send : K.Machine.t -> prt:user_port -> msg:user_message -> bool
  val cond_receive : K.Machine.t -> prt:user_port -> user_message option
end

module Make (M : MESSAGE) : S with type user_message = M.t = struct
  type user_message = M.t

  (* "type user_port is new port" — a fresh strong type over the hardware
     port, so ports of different instances cannot be confused. *)
  type user_port = Untyped_ports.port

  let create machine ?message_count ?port_discipline () =
    Untyped_ports.create_port machine ?message_count ?port_discipline ()

  let send machine ~prt ~msg =
    Untyped_ports.send machine ~prt ~msg:(M.to_access msg)

  let receive machine ~prt = M.of_access (Untyped_ports.receive machine ~prt)

  let cond_send machine ~prt ~msg =
    Untyped_ports.cond_send machine ~prt ~msg:(M.to_access msg)

  let cond_receive machine ~prt =
    Option.map M.of_access (Untyped_ports.cond_receive machine ~prt)
end

(* Identity message module: messages that already are access descriptors.
   An instance over it compiles to exactly the untyped operations. *)
module Access_message = struct
  type t = Access.t

  let to_access a = a
  let of_access a = a
end

(* Runtime-checked variant: every message must be a hardware-sealed instance
   of the given user-defined type. *)
module Make_checked (T : sig
  val machine : K.Machine.t
  val typedef : Access.t
end) : S with type user_message = Access.t = struct
  type user_message = Access.t
  type user_port = Untyped_ports.port

  let table = K.Machine.table T.machine

  let create machine ?message_count ?port_discipline () =
    Untyped_ports.create_port machine ?message_count ?port_discipline ()

  let check msg = Type_def.check_instance table T.typedef msg

  let send machine ~prt ~msg =
    check msg;
    Untyped_ports.send machine ~prt ~msg

  let receive machine ~prt =
    let msg = Untyped_ports.receive machine ~prt in
    check msg;
    msg

  let cond_send machine ~prt ~msg =
    check msg;
    Untyped_ports.cond_send machine ~prt ~msg

  let cond_receive machine ~prt =
    match Untyped_ports.cond_receive machine ~prt with
    | Some msg ->
      check msg;
      Some msg
    | None -> None
end
