(* Interposition on system interfaces (paper §4).

   "Unlike many systems for which calls to the operating system are very
   different from calls to other subprograms, the iMAX user sees no
   difference whatsoever ...  any system interface can be mimicked by a
   user package.  This makes it straightforward for a user to extend the
   system interface, trap certain system calls, or otherwise alter iMAX
   services."

   This module demonstrates the technique on the port interface: a wrapper
   that satisfies the same signature as Untyped_ports but routes every
   operation through user hooks — tracing, filtering, or transforming
   messages — without the wrapped code being able to tell the difference.
   Because the interface is plain subprogram calls, no compiler or kernel
   support is involved. *)

open I432
module K = I432_kernel

(* The common port interface both the real package and wrappers satisfy. *)
module type PORT_INTERFACE = sig
  val create_port :
    K.Machine.t ->
    ?message_count:int ->
    ?port_discipline:Untyped_ports.q_discipline ->
    unit ->
    Untyped_ports.port

  val send :
    K.Machine.t -> prt:Untyped_ports.port -> msg:Untyped_ports.any_access -> unit

  val receive : K.Machine.t -> prt:Untyped_ports.port -> Untyped_ports.any_access
end

(* The genuine iMAX package, as a first-class instance of the interface. *)
module Real : PORT_INTERFACE = struct
  let create_port = Untyped_ports.create_port
  let send = Untyped_ports.send
  let receive = Untyped_ports.receive
end

type hooks = {
  on_send : Access.t -> Access.t option;
      (** return [None] to drop the message, [Some m] (possibly rewritten)
          to pass it on *)
  on_receive : Access.t -> Access.t;
  on_create : unit -> unit;
}

let default_hooks =
  { on_send = (fun m -> Some m); on_receive = (fun m -> m); on_create = (fun () -> ()) }

type trace_entry = Sent of Access.t | Dropped of Access.t | Received of Access.t

(* Build an interposed package: same signature, user policy inside.  The
   wrapped package is a parameter, so interposers stack. *)
let wrap ?(hooks = default_hooks) (module Base : PORT_INTERFACE) =
  let log : trace_entry list ref = ref [] in
  let module Wrapped = struct
    let create_port machine ?message_count ?port_discipline () =
      hooks.on_create ();
      Base.create_port machine ?message_count ?port_discipline ()

    let send machine ~prt ~msg =
      match hooks.on_send msg with
      | Some msg' ->
        log := Sent msg' :: !log;
        Base.send machine ~prt ~msg:msg'
      | None -> log := Dropped msg :: !log

    let receive machine ~prt =
      let msg = hooks.on_receive (Base.receive machine ~prt) in
      log := Received msg :: !log;
      msg
  end in
  ((module Wrapped : PORT_INTERFACE), fun () -> List.rev !log)

(* A ready-made auditing interposer: counts operations without altering
   behaviour — the "trap certain system calls" case. *)
let auditor (module Base : PORT_INTERFACE) =
  let sends = ref 0 and receives = ref 0 in
  let module Audited = struct
    let create_port = Base.create_port

    let send machine ~prt ~msg =
      incr sends;
      Base.send machine ~prt ~msg

    let receive machine ~prt =
      incr receives;
      Base.receive machine ~prt
  end in
  ((module Audited : PORT_INTERFACE), fun () -> (!sends, !receives))
