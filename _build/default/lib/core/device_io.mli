(** Device-independent I/O (paper §6.3).

    Each device instance is its own package — here a first-class module —
    created dynamically, with no central device table.  Class-dependent
    interfaces (block devices, tapes) include the common interface as a
    subset, so any device can be used through the device-independent view. *)

open I432
module K := I432_kernel

exception Device_error of string

(** The device-independent subset every device provides. *)
module type DEVICE = sig
  val name : string
  val kind : string
  val write : string -> unit
  val read : unit -> string option
  val close : unit -> unit
  val is_open : unit -> bool
end

module type BLOCK_DEVICE = sig
  include DEVICE

  val block_size : int
  val read_block : int -> Bytes.t
  val write_block : int -> Bytes.t -> unit
  val block_count : unit -> int
end

module type TAPE_DEVICE = sig
  include DEVICE

  val rewind : unit -> unit
  val position : unit -> int
  val at_end : unit -> bool
end

type device = (module DEVICE)
type block_device = (module BLOCK_DEVICE)
type tape_device = (module TAPE_DEVICE)

val make_terminal : name:string -> unit -> device

(** A terminal plus [feed] (inject input lines) and [drain] (collect
    output) hooks for tests and demos. *)
val make_loopback_terminal :
  name:string -> unit -> device * (string list -> unit) * (unit -> string list)

val make_disk : name:string -> blocks:int -> block_size:int -> unit -> block_device
val make_tape : name:string -> capacity:int -> unit -> tape_device

(** {1 The tape-drive type manager (paper §8.2)}

    Each drive is a sealed [tape_drive] object; clients hold the only
    access descriptor.  The farm registers a destruction filter so drives
    lost by careless clients return to the pool after collection. *)

type tape_farm

val create_tape_farm : K.Machine.t -> drives:int -> tape_farm

(** Hand a drive capability to a client ([None] when the pool is empty);
    the farm deliberately forgets it. *)
val acquire_drive : tape_farm -> Access.t option

(** Resolve a drive capability; only instances sealed by this farm are
    accepted. *)
val device_of : tape_farm -> Access.t -> tape_device

val release_drive : tape_farm -> Access.t -> unit

(** Drain the destruction filter, rewinding and pooling each recovered
    drive.  Must run inside a process body. *)
val recover_lost_drives : tape_farm -> int

val free_drive_count : tape_farm -> int
val reclaimed_count : tape_farm -> int
val farm_typedef : tape_farm -> Access.t
