(** Memory management via alternate implementations of one specification
    (paper §6.2).

    The common interface is the module type {!S}; the system is configured
    by selecting one implementation (see {!System}).  It covers the three
    allocation mechanisms of §5 — stack (per-level local heaps), global
    heap, and local heap — plus explicit release and the presence [touch]
    the swapping implementation needs. *)

open I432
module K := I432_kernel

type stats = {
  mutable allocations : int;
  mutable frees : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable alloc_faults : int;  (** storage exhausted on first attempt *)
}

module type S = sig
  type t

  val name : string
  val create : K.Machine.t -> heap_bytes:int -> t

  val allocate :
    t -> data_length:int -> access_length:int -> otype:Obj_type.t -> Access.t

  val allocate_local :
    t ->
    level:int ->
    data_length:int ->
    access_length:int ->
    otype:Obj_type.t ->
    Access.t

  val free : t -> Access.t -> unit

  (** Bring the segment in (swapping) or just validate (non-swapping). *)
  val touch : t -> Access.t -> unit

  (** The per-implementation management interface the paper allows. *)
  val stats : t -> stats
end

(** The paper's first release: no swapping; exhaustion faults. *)
module Nonswapping : S

type victim_policy = Lru | Fifo_policy

module type SWAP_CONFIG = sig
  val victim_policy : victim_policy
  val swap_in_ns : int
  val swap_out_ns : int
end

module Default_swap_config : SWAP_CONFIG

(** The second release: segments move to a backing store under pressure
    and return on [touch]; direct access to an absent segment faults with
    [Segment_swapped_out]. *)
module Make_swapping (_ : SWAP_CONFIG) : S

module Swapping : S
module Swapping_fifo : S
