(** The generic package [Typed_Ports] (paper §4, Figure 2).

    A functor instance gives a strongly typed port view with code identical
    to [Untyped_Ports] — the paper's zero-overhead claim, measured by
    experiment E4.  [Make_checked] adds the 432's dynamic type check on
    every message, the runtime extension the paper sketches. *)

open I432
module K := I432_kernel

(** The instance argument: the user message type and its conversions to and
    from [any_access] (the Ada instance's unchecked conversions). *)
module type MESSAGE = sig
  type t

  val to_access : t -> Access.t
  val of_access : Access.t -> t
end

module type S = sig
  type user_message

  (** "type user_port is new port": a fresh strong type per instance. *)
  type user_port

  val create :
    K.Machine.t ->
    ?message_count:int ->
    ?port_discipline:Untyped_ports.q_discipline ->
    unit ->
    user_port

  val send : K.Machine.t -> prt:user_port -> msg:user_message -> unit
  val receive : K.Machine.t -> prt:user_port -> user_message
  val cond_send : K.Machine.t -> prt:user_port -> msg:user_message -> bool
  val cond_receive : K.Machine.t -> prt:user_port -> user_message option
end

module Make (M : MESSAGE) : S with type user_message = M.t

(** Identity instance: messages that already are access descriptors. *)
module Access_message : MESSAGE with type t = Access.t

(** Runtime-checked instance: every message must be a hardware-sealed
    instance of [typedef]. *)
module Make_checked (_ : sig
  val machine : K.Machine.t
  val typedef : Access.t
end) : S with type user_message = Access.t
