(** Interposition on system interfaces (paper §4): a user package that
    satisfies the same signature as an iMAX package and can therefore
    stand in for it — extending, tracing, or filtering — with no kernel
    or compiler cooperation. *)

open I432
module K := I432_kernel

(** The interface both the real port package and wrappers satisfy. *)
module type PORT_INTERFACE = sig
  val create_port :
    K.Machine.t ->
    ?message_count:int ->
    ?port_discipline:Untyped_ports.q_discipline ->
    unit ->
    Untyped_ports.port

  val send :
    K.Machine.t -> prt:Untyped_ports.port -> msg:Untyped_ports.any_access -> unit

  val receive :
    K.Machine.t -> prt:Untyped_ports.port -> Untyped_ports.any_access
end

(** The genuine iMAX package as a first-class instance. *)
module Real : PORT_INTERFACE

type hooks = {
  on_send : Access.t -> Access.t option;
      (** [None] drops the message; [Some m] (possibly rewritten) passes *)
  on_receive : Access.t -> Access.t;
  on_create : unit -> unit;
}

val default_hooks : hooks

type trace_entry = Sent of Access.t | Dropped of Access.t | Received of Access.t

(** Wrap a package with user policy; returns the wrapped package and a
    trace reader.  Interposers stack. *)
val wrap :
  ?hooks:hooks ->
  (module PORT_INTERFACE) ->
  (module PORT_INTERFACE) * (unit -> trace_entry list)

(** A counting interposer: (sends, receives) observed. *)
val auditor :
  (module PORT_INTERFACE) -> (module PORT_INTERFACE) * (unit -> int * int)
