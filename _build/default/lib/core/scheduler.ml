(* Resource-control policies layered on the basic process manager (paper
   §6.1): "Using this basic process manager, many resource control policies
   are possible."

   - Null: passes the hardware dispatching parameters through untouched —
     "completely acceptable for simple embedded systems in which the system
     load can be pre-evaluated".
   - Round_robin: equalizes priorities and relies on the hardware time
     slice, a minimal arbitration layer.
   - Fair_share: a user-process manager enforcing fairness across accounting
     groups in "a multi-user environment where the processing resource must
     be allocated fairly": a daemon samples consumed CPU per group and
     renices processes of over-served groups.

   The system "is configured by selecting those packages that provide the
   facilities needed": pick one of these modules at boot (see {!System}). *)

open I432
module K = I432_kernel

type group = {
  group_name : string;
  mutable members : Access.t list;
  mutable consumed_ns : int;
}

type policy = Null | Round_robin | Fair_share

type t = {
  machine : K.Machine.t;
  pm : Process_manager.t;
  policy : policy;
  mutable groups : group list;
  quantum_ns : int;  (* fair-share sampling period *)
  mutable adjustments : int;
}

let create ?(quantum_ns = 5_000_000) machine pm policy =
  { machine; pm; policy; groups = []; quantum_ns; adjustments = 0 }

let add_group t name =
  let g = { group_name = name; members = []; consumed_ns = 0 } in
  t.groups <- t.groups @ [ g ];
  g

let enroll t group access =
  group.members <- access :: group.members;
  match t.policy with
  | Null -> ()  (* dispatching parameters pass through *)
  | Round_robin -> Process_manager.set_priority t.pm access 8
  | Fair_share -> ()

let group_consumed t group =
  let sum = ref 0 in
  List.iter
    (fun a ->
      let p = K.Machine.process_state t.machine a in
      sum := !sum + p.K.Process.cpu_ns)
    group.members;
  group.consumed_ns <- !sum;
  ignore t;
  !sum

(* One fair-share rebalancing pass: groups above the mean consumption get
   demoted, groups below get promoted.  Priorities stay in [2, 14]. *)
let rebalance t =
  match t.groups with
  | [] -> ()
  | groups ->
    let consumptions = List.map (fun g -> float_of_int (group_consumed t g)) groups in
    let mean =
      List.fold_left ( +. ) 0.0 consumptions
      /. float_of_int (List.length groups)
    in
    List.iter2
      (fun g c ->
        let prio =
          if mean <= 0.0 then 8
          else if c > mean *. 1.1 then 4
          else if c < mean *. 0.9 then 12
          else 8
        in
        List.iter
          (fun a ->
            let p = K.Machine.process_state t.machine a in
            if not (K.Process.is_terminal p) then begin
              Process_manager.set_priority t.pm a prio;
              t.adjustments <- t.adjustments + 1
            end)
          g.members)
      groups consumptions

(* The scheduler daemon: periodically samples and rebalances.  Null and
   Round_robin need no daemon. *)
let daemon_body t () =
  match t.policy with
  | Null | Round_robin ->
    (* Nothing to arbitrate; the hardware dispatches on its own. *)
    ()
  | Fair_share ->
    let live () =
      List.exists
        (fun g ->
          List.exists
            (fun a ->
              not (K.Process.is_terminal (K.Machine.process_state t.machine a)))
            g.members)
        t.groups
    in
    while live () do
      rebalance t;
      K.Machine.delay t.machine ~ns:t.quantum_ns
    done

let spawn_daemon t =
  K.Machine.spawn t.machine ~daemon:true ~priority:14 ~system_level:3
    ~name:"scheduler" (daemon_body t)

let adjustments t = t.adjustments
let groups t = t.groups

let policy_to_string = function
  | Null -> "null"
  | Round_robin -> "round-robin"
  | Fair_share -> "fair-share"
