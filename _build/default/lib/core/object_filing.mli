(** Object filing: type-preserving passive storage (paper §7.2).

    A filed object's data image and hardware type identity are captured
    together; retrieval reconstructs the object with its type intact, so a
    sealed instance comes back sealed and a wrong type assertion faults.
    Composite filing captures the reachable graph (cycles and sharing
    included) and rebuilds it isomorphic. *)

open I432
module K := I432_kernel

type t

exception Not_filed of string

val create : K.Machine.t -> t

(** File one object's data image and type under [key]. *)
val store : t -> key:string -> Access.t -> unit

(** Recreate a filed object (allocated from [sro], default global heap). *)
val retrieve : t -> ?sro:Access.t -> key:string -> unit -> Access.t

(** Retrieve with a hardware type assertion; wrong type faults. *)
val retrieve_as :
  t -> ?sro:Access.t -> key:string -> expected:Obj_type.t -> unit -> Access.t

(** {1 Composite filing} *)

(** File everything reachable from the root through access parts.
    Returns the number of objects filed. *)
val store_graph : t -> key:string -> Access.t -> int

(** Rebuild a filed graph isomorphic (fresh objects, same shapes, types,
    data, sharing, and cycles).  Returns the new root. *)
val retrieve_graph : t -> ?sro:Access.t -> key:string -> unit -> Access.t

val graph_size : t -> key:string -> int option

(** {1 Introspection} *)

val filed_type : t -> key:string -> Obj_type.t option
val mem : t -> key:string -> bool
val remove : t -> key:string -> unit
val count : t -> int
val stores : t -> int
val retrievals : t -> int
