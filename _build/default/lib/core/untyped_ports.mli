(** The iMAX package [Untyped_Ports] (paper §4, Figure 1).

    Messages are [any_access] — otherwise untyped access descriptors.  Send
    and Receive correspond to single 432 instructions; port creation is
    software-implemented and confined to this package. *)

open I432

type any_access = Access.t
type port = Access.t
type q_discipline = I432_kernel.Port.discipline = Fifo | Priority

val max_msg_cnt : int

(** Create a port with the given queue size (default 16) and queueing
    discipline (default [Fifo]). *)
val create_port :
  I432_kernel.Machine.t ->
  ?message_count:int ->
  ?port_discipline:q_discipline ->
  unit ->
  port

(** Blocks while the port's message queue is full. *)
val send : I432_kernel.Machine.t -> prt:port -> msg:any_access -> unit

(** Blocks until a message is available. *)
val receive : I432_kernel.Machine.t -> prt:port -> any_access

val cond_send : I432_kernel.Machine.t -> prt:port -> msg:any_access -> bool
val cond_receive : I432_kernel.Machine.t -> prt:port -> any_access option

(** Capability-restricted views of a port. *)
val send_only : port -> port

val receive_only : port -> port
