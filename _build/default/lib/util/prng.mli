(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Prng.t] so that runs are exactly reproducible. *)

type t

(** [create ~seed] returns a generator whose stream is a pure function of
    [seed]. *)
val create : seed:int -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** Uniform pick from a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
