lib/util/table.mli:
