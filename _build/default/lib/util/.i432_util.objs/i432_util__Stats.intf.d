lib/util/stats.mli:
