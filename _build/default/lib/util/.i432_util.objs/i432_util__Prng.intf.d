lib/util/prng.mli:
