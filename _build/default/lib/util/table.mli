(** ASCII table rendering for experiment output. *)

type align = Left | Right

(** [render ~title ~header ~aligns rows] draws a boxed table.  All rows must
    have the same arity as [header] and [aligns]. *)
val render :
  title:string ->
  header:string list ->
  aligns:align list ->
  string list list ->
  string

val print :
  title:string ->
  header:string list ->
  aligns:align list ->
  string list list ->
  unit

(** Format a float with the given number of decimals (default 2). *)
val fmt_float : ?decimals:int -> float -> string

val fmt_int : int -> string

(** Render a nanosecond count as microseconds with two decimals. *)
val fmt_us : int -> string
