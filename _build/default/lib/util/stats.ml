(* Small statistics toolkit used by the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 sorted
    /. float_of_int (Stdlib.max 1 (n - 1))
  in
  {
    count = n;
    mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.50;
    p90 = percentile sorted 0.90;
    p99 = percentile sorted 0.99;
  }

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

(* Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair. *)
let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.jain_fairness: empty";
  let s = Array.fold_left ( +. ) 0.0 xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)

let histogram ~buckets ~lo ~hi samples =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  Array.iter
    (fun x ->
      if x >= lo && x < hi then begin
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= buckets then buckets - 1 else b in
        counts.(b) <- counts.(b) + 1
      end)
    samples;
  counts
