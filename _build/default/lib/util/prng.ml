(* Deterministic splitmix64 PRNG.  The simulator must be reproducible, so no
   use of [Random] or wall-clock anywhere in the repository. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative int in [0, bound).  Mask to 62 bits so the Int64 -> int
   conversion can never wrap negative on a 63-bit OCaml int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(* Exponentially distributed value with the given mean. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* Pick uniformly from a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
