(* ASCII table rendering for the benchmark harness, in the style of the
   tables a paper would print. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~title ~header ~aligns rows =
  let ncols = List.length header in
  if List.exists (fun r -> List.length r <> ncols) rows then
    invalid_arg "Table.render: ragged rows";
  let widths = Array.make ncols 0 in
  let update row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  update header;
  List.iter update rows;
  let aligns = Array.of_list aligns in
  if Array.length aligns <> ncols then invalid_arg "Table.render: aligns";
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  line '-';
  row header;
  line '=';
  List.iter row rows;
  line '-';
  Buffer.contents buf

let print ~title ~header ~aligns rows =
  print_string (render ~title ~header ~aligns rows)

let fmt_float ?(decimals = 2) v =
  Printf.sprintf "%.*f" decimals v

let fmt_int = string_of_int

let fmt_us ns = Printf.sprintf "%.2f" (float_of_int ns /. 1000.0)
