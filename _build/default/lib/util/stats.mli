(** Descriptive statistics for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** [percentile sorted p] with [p] in [0, 1]; [sorted] must be sorted
    ascending and non-empty. *)
val percentile : float array -> float -> float

(** Full summary of a non-empty sample array. *)
val summarize : float array -> summary

val mean : float array -> float

(** Jain's fairness index in (0, 1]; 1.0 means all values equal. *)
val jain_fairness : float array -> float

(** Fixed-width histogram of values falling in [lo, hi). *)
val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
