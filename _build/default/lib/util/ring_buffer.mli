(** Fixed-capacity FIFO ring buffer.

    Capacity is part of the semantics: a full 432 communication port blocks
    its sender, so the buffer refuses pushes when full rather than growing. *)

type 'a t

(** Raises [Invalid_argument] if capacity is not positive. *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** Raises [Invalid_argument] when full. *)
val push : 'a t -> 'a -> unit

(** [None] when empty. *)
val pop : 'a t -> 'a option

val peek : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
