(* Fixed-capacity FIFO ring buffer.  Used for port message queues and
   bounded traces, where capacity is part of the semantics (a full 432 port
   blocks its sender). *)

type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of the oldest element *)
  mutable length : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity";
  { slots = Array.make capacity None; head = 0; length = 0 }

let capacity t = Array.length t.slots
let length t = t.length
let is_empty t = t.length = 0
let is_full t = t.length = Array.length t.slots

let push t x =
  if is_full t then invalid_arg "Ring_buffer.push: full";
  let tail = (t.head + t.length) mod Array.length t.slots in
  t.slots.(tail) <- Some x;
  t.length <- t.length + 1

let pop t =
  if is_empty t then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.slots;
    t.length <- t.length - 1;
    x
  end

let peek t = if is_empty t then None else t.slots.(t.head)

let iter f t =
  for i = 0 to t.length - 1 do
    match t.slots.((t.head + i) mod Array.length t.slots) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.length <- 0
