(** The system-wide on-the-fly garbage collector (paper §8.1).

    Dijkstra tri-color marking with the hardware gray bit: the segment
    write barrier shades moved access descriptors; the collector runs as a
    daemon process charging virtual time for every object scanned or swept,
    so mutators on other processors genuinely overlap with collection.

    Roots: registered machine roots, live process objects (including their
    local-root shadow stacks), and all in-flight port messages.  Only
    [Generic], [Custom] and terminated [Process] objects are collected;
    sweep delivers corpses of filtered types to their destruction-filter
    port instead of freeing them. *)

type config = {
  scan_quantum : int;  (** objects marked per collector step *)
  idle_sleep_ns : int;  (** pause between collection cycles *)
  collect_processes : bool;
}

val default_config : config

type stats = {
  mutable cycles : int;
  mutable marked : int;
  mutable swept : int;
  mutable filtered : int;
  mutable processes_recovered : int;
  mutable mark_ns : int;
  mutable sweep_ns : int;
}

type t

val create : ?config:config -> I432_kernel.Machine.t -> t
val stats : t -> stats

(** Run one full collection cycle; [step] is called between scan quanta (the
    daemon yields there).  Returns the number of objects found dead. *)
val cycle : ?step:(unit -> unit) -> t -> int

(** Body of the collector daemon: repeat [cycle] then sleep. *)
val daemon_body : ?cycles:int -> t -> unit -> unit

(** Spawn the collector as a daemon process on the machine. *)
val spawn_daemon : ?cycles:int -> ?priority:int -> t -> I432.Access.t
