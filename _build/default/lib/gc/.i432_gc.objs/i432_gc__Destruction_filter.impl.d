lib/gc/destruction_filter.ml: Access I432 I432_kernel List Type_def
