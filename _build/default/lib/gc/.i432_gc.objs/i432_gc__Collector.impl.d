lib/gc/collector.ml: Access Array Destruction_filter Fault I432 I432_kernel List Obj_type Object_table Rights Sro Timings Type_def
