lib/gc/destruction_filter.mli: Access I432 I432_kernel Object_table
