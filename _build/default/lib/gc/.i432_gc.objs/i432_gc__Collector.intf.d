lib/gc/collector.mli: I432 I432_kernel
