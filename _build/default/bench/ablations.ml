(* Ablation benches for the design choices DESIGN.md §5 calls out:
   bus-contention coefficient, port queue capacity, GC scan quantum, and
   swap victim policy. *)

open I432
open Imax
module K = I432_kernel
module G = I432_gc
module U = I432_util

let fi = float_of_int

(* How much bus contention does the ~10x envelope tolerate?  Sweep alpha. *)
let bus_alpha () =
  let throughput ~processors ~alpha =
    let m =
      K.Machine.create
        ~config:
          {
            K.Machine.default_config with
            K.Machine.processors;
            bus_alpha_per_mille = alpha;
          }
        ()
    in
    for i = 1 to 32 do
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "j%d" i) (fun () ->
             K.Machine.compute m 2_000))
    done;
    let r = K.Machine.run m in
    fi (32 * 2_000) /. (fi r.K.Machine.elapsed_ns /. 1e9)
  in
  let rows =
    List.map
      (fun alpha ->
        let base = throughput ~processors:1 ~alpha in
        string_of_int alpha
        :: List.map
             (fun n -> U.Table.fmt_float (throughput ~processors:n ~alpha /. base))
             [ 4; 8; 12; 16 ])
      [ 0; 10; 20; 40; 80 ]
  in
  U.Table.print
    ~title:"Ablation: bus contention coefficient vs scaling envelope"
    ~header:[ "alpha (per-mille/cpu)"; "4 cpus"; "8 cpus"; "12 cpus"; "16 cpus" ]
    ~aligns:[ U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right ]
    rows

(* Port queue capacity vs sender blocking: deeper queues absorb bursts. *)
let port_capacity () =
  let messages = 4_000 in
  let run capacity =
    let m =
      K.Machine.create
        ~config:{ K.Machine.default_config with K.Machine.processors = 2 }
        ()
    in
    let port = K.Machine.create_port m ~capacity ~discipline:K.Port.Fifo () in
    ignore
      (K.Machine.spawn m ~name:"s" (fun () ->
           let payload = K.Machine.allocate_generic m ~data_length:8 () in
           for _ = 1 to messages do
             K.Machine.send m ~port ~msg:payload
           done));
    ignore
      (K.Machine.spawn m ~name:"r" (fun () ->
           for _ = 1 to messages do
             ignore (K.Machine.receive m ~port);
             (* Slow consumer: bursty imbalance. *)
             K.Machine.compute m 2
           done));
    let r = K.Machine.run m in
    let _, _, send_blocks, recv_blocks, depth, _ = K.Machine.port_stats m port in
    [
      string_of_int capacity;
      string_of_int send_blocks;
      string_of_int recv_blocks;
      string_of_int depth;
      U.Table.fmt_float (fi r.K.Machine.elapsed_ns /. 1e6);
    ]
  in
  U.Table.print
    ~title:"Ablation: port queue capacity under a slow consumer (4k msgs)"
    ~header:[ "capacity"; "send blocks"; "recv blocks"; "max depth"; "elapsed (ms)" ]
    ~aligns:[ U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right ]
    (List.map run [ 1; 4; 16; 64; 256 ])

(* GC scan quantum: bigger quanta finish cycles faster but hog the
   processor in longer increments. *)
let gc_quantum () =
  let run quantum =
    let m =
      K.Machine.create
        ~config:{ K.Machine.default_config with K.Machine.processors = 1 }
        ()
    in
    let table = K.Machine.table m in
    let collector =
      G.Collector.create
        ~config:
          {
            G.Collector.default_config with
            G.Collector.scan_quantum = quantum;
            idle_sleep_ns = 200_000;
          }
        m
    in
    ignore (G.Collector.spawn_daemon collector);
    ignore
      (K.Machine.spawn m ~name:"mutator" (fun () ->
           let root = K.Machine.allocate_generic m ~access_length:16 () in
           K.Machine.add_root m root;
           for _ = 1 to 40 do
             for i = 0 to 11 do
               let o = K.Machine.allocate_generic m ~access_length:1 () in
               Segment.store_access table root ~slot:(i mod 16) (Some o)
             done;
             for i = 0 to 15 do
               Segment.store_access table root ~slot:i None
             done;
             K.Machine.yield m
           done));
    let r = K.Machine.run m in
    let st = G.Collector.stats collector in
    [
      string_of_int quantum;
      string_of_int st.G.Collector.cycles;
      string_of_int st.G.Collector.swept;
      U.Table.fmt_float (fi r.K.Machine.elapsed_ns /. 1e6);
    ]
  in
  U.Table.print
    ~title:"Ablation: collector scan quantum (480 dead objects offered)"
    ~header:[ "scan quantum"; "cycles"; "reclaimed"; "elapsed (ms)" ]
    ~aligns:[ U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right ]
    (List.map run [ 4; 16; 64; 256 ])

(* Swap victim policy: LRU vs FIFO on a loop that re-touches a hot set. *)
let swap_policy () =
  let run choice =
    let sys =
      System.boot
        ~config:
          {
            System.default_config with
            System.memory_manager = choice;
            heap_bytes = 8 * 1024;
          }
        ()
    in
    let m = System.machine sys in
    let objs =
      Array.init 16 (fun _ ->
          System.mm_allocate sys ~data_length:1024 ~access_length:0
            ~otype:Obj_type.Generic)
    in
    (* Hot set: objects 0-3 touched 4x more often than the rest. *)
    let prng = U.Prng.create ~seed:5 in
    ignore
      (K.Machine.spawn m ~name:"mutator" (fun () ->
           for _ = 1 to 600 do
             let hot = U.Prng.int prng 5 < 4 in
             let idx =
               if hot then U.Prng.int prng 4 else 4 + U.Prng.int prng 12
             in
             System.mm_touch sys objs.(idx);
             K.Machine.write_word m objs.(idx) ~offset:0 1
           done));
    let _ = System.run sys in
    let st = System.mm_stats sys in
    [
      System.memory_choice_to_string choice;
      string_of_int st.Memory_manager.swap_ins;
      string_of_int st.Memory_manager.swap_outs;
    ]
  in
  U.Table.print
    ~title:
      "Ablation: swap victim policy, 16K working set on 8K heap, 80% of \
       touches to a 4K hot set"
    ~header:[ "policy"; "swap-ins"; "swap-outs" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right ]
    [ run System.Swapping_lru; run System.Swapping_fifo ]

(* Hardware time-slice length: shorter slices interleave hogs faster but
   pay a dispatch charge per preemption. *)
let time_slice () =
  let run slice_us =
    let timings =
      { I432.Timings.default with I432.Timings.time_slice_ns = slice_us * 1000 }
    in
    let m =
      K.Machine.create
        ~config:
          { K.Machine.default_config with K.Machine.processors = 1; timings }
        ()
    in
    for i = 1 to 4 do
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "hog%d" i) (fun () ->
             (* 20 ms of work in 100 us instructions: preemption can bite
                at every instruction boundary. *)
             for _ = 1 to 200 do
               K.Machine.compute m 100
             done))
    done;
    let r = K.Machine.run m in
    [
      string_of_int slice_us;
      string_of_int r.K.Machine.preemptions;
      string_of_int r.K.Machine.dispatches;
      U.Table.fmt_float (fi r.K.Machine.elapsed_ns /. 1e6);
    ]
  in
  U.Table.print
    ~title:"Ablation: hardware time slice vs preemption overhead (4 hogs x 20 ms)"
    ~header:[ "slice (us)"; "preemptions"; "dispatches"; "elapsed (ms)" ]
    ~aligns:[ U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right ]
    (List.map run [ 1_000; 5_000; 10_000; 50_000 ])

let all =
  [
    ("bus-alpha", "bus coefficient vs scaling envelope", bus_alpha);
    ("time-slice", "time-slice length vs preemption cost", time_slice);
    ("port-capacity", "port queue depth vs blocking", port_capacity);
    ("gc-quantum", "collector scan quantum", gc_quantum);
    ("swap-policy", "LRU vs FIFO victim selection", swap_policy);
  ]
