(* Benchmark entry point.

     dune exec bench/main.exe            # every experiment + ablations
     dune exec bench/main.exe e3         # one experiment
     dune exec bench/main.exe ablations  # ablations only
     dune exec bench/main.exe micro      # bechamel wall-clock micro-benches

   Experiment ids and their paper sources are listed in DESIGN.md §4 and
   EXPERIMENTS.md. *)

let run_named name =
  match List.assoc_opt name (List.map (fun (n, _, f) -> (n, f)) Experiments.all) with
  | Some f ->
    f ();
    print_newline ();
    true
  | None -> false

let run_all_experiments () =
  List.iter
    (fun (id, description, f) ->
      Printf.printf "== %s: %s ==\n" id description;
      f ();
      print_newline ())
    Experiments.all

let run_ablations () =
  List.iter
    (fun (id, description, f) ->
      Printf.printf "== ablation %s: %s ==\n" id description;
      f ();
      print_newline ())
    Ablations.all

let usage () =
  print_endline "usage: main.exe [all|micro|ablations|<experiment-id>]";
  print_endline "experiments:";
  List.iter
    (fun (id, description, _) -> Printf.printf "  %-6s %s\n" id description)
    Experiments.all;
  List.iter
    (fun (id, description, _) -> Printf.printf "  %-14s %s\n" id description)
    Ablations.all

let () =
  match Sys.argv with
  | [| _ |] | [| _; "all" |] ->
    print_endline "iMAX-432 reproduction benchmarks (virtual time at 8 MHz)";
    print_newline ();
    run_all_experiments ();
    run_ablations ();
    Micro.run ()
  | [| _; "micro" |] -> Micro.run ()
  | [| _; "ablations" |] -> run_ablations ()
  | [| _; name |] -> if not (run_named name) then usage ()
  | _ -> usage ()
