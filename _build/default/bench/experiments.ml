(* The reproduction harness: one experiment per quantitative claim or
   mechanism in the paper.  Each experiment prints a table; EXPERIMENTS.md
   records paper-vs-measured for each.

   The paper has no numbered evaluation tables; the ids E1..E10 are defined
   in DESIGN.md §4 and map to the paper's sections. *)

open I432
open Imax
module K = I432_kernel
module G = I432_gc
module U = I432_util

let fmt_us = U.Table.fmt_us
let fi = float_of_int

let boot ?(processors = 1) ?(alpha = 20) () =
  K.Machine.create
    ~config:
      {
        K.Machine.default_config with
        K.Machine.processors;
        bus_alpha_per_mille = alpha;
      }
    ()

(* ------------------------------------------------------------------ *)
(* E1: domain switch cost (§2: "about 65 microseconds ... compares
   reasonably with the cost of procedure activation on other contemporary
   processors")                                                        *)
(* ------------------------------------------------------------------ *)

let e1_domain_switch () =
  let iterations = 10_000 in
  let measure ~inter =
    let m = boot ~alpha:0 () in
    let dom = K.Domain.create (K.Machine.table m) (K.Machine.global_sro m) ~name:"pkg" in
    let p =
      K.Machine.spawn m ~name:"caller" (fun () ->
          for _ = 1 to iterations do
            if inter then K.Machine.domain_call m dom (fun () -> ())
            else K.Machine.intra_call m (fun () -> ())
          done)
    in
    let _ = K.Machine.run m in
    let st = K.Machine.process_state m p in
    let tm = K.Machine.timings m in
    (* Remove the one-time dispatch cost, then per-call. *)
    fi (st.K.Process.cpu_ns - tm.Timings.dispatch_ns) /. fi iterations
  in
  let inter = measure ~inter:true in
  let intra = measure ~inter:false in
  U.Table.print ~title:"E1: domain switch vs intra-domain call (10k calls)"
    ~header:[ "call kind"; "per call (us)"; "paper (us)" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right ]
    [
      [ "inter-domain (call+return)"; U.Table.fmt_float (inter /. 1000.0); "~65 + return" ];
      [ "intra-domain activation"; U.Table.fmt_float (intra /. 1000.0); "\"contemporary\"" ];
      [ "ratio"; U.Table.fmt_float (inter /. intra); "~10x" ];
    ]

(* ------------------------------------------------------------------ *)
(* E2: allocation cost (§5: "80 microseconds at 8 megahertz to allocate a
   segment from an SRO")                                               *)
(* ------------------------------------------------------------------ *)

let e2_allocation () =
  let iterations = 5_000 in
  let measure ~size ~local =
    let m = boot ~alpha:0 () in
    let p =
      K.Machine.spawn m ~name:"alloc" (fun () ->
          let sro =
            if local then K.Machine.create_local_sro m ~level:1 ~bytes:(1 lsl 21)
            else K.Machine.global_sro m
          in
          for _ = 1 to iterations do
            let a =
              K.Machine.allocate m sro ~data_length:size ~access_length:0
                ~otype:Obj_type.Generic
            in
            (* Free immediately so the heap never exhausts. *)
            K.Machine.release m sro ~index:(Access.index a)
          done)
    in
    let _ = K.Machine.run m in
    let st = K.Machine.process_state m p in
    let tm = K.Machine.timings m in
    let per =
      fi (st.K.Process.cpu_ns - tm.Timings.dispatch_ns) /. fi iterations
    in
    (* Subtract the release cost to isolate creation. *)
    per -. fi tm.Timings.destroy_ns
    -. if local then fi tm.Timings.allocate_ns /. fi iterations else 0.0
  in
  let rows =
    List.map
      (fun size ->
        [
          Printf.sprintf "%d B, global heap" size;
          U.Table.fmt_float (measure ~size ~local:false /. 1000.0);
          "80";
        ])
      [ 16; 256; 4096; 65536 ]
    @ [
        [
          "256 B, local heap";
          U.Table.fmt_float (measure ~size:256 ~local:true /. 1000.0);
          "80";
        ];
      ]
  in
  U.Table.print ~title:"E2: segment allocation from an SRO (5k create/destroy)"
    ~header:[ "allocation"; "create (us)"; "paper (us)" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: multiprocessor scaling (§3: "a factor of 10 in total processing
   power of a single 432 system is realizable")                        *)
(* ------------------------------------------------------------------ *)

let e3_scaling () =
  let work_units = 3_000 in
  let jobs = 32 in
  let throughput ~processors ~alpha =
    let m = boot ~processors ~alpha () in
    for i = 1 to jobs do
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "job%d" i) (fun () ->
             K.Machine.compute m work_units))
    done;
    let r = K.Machine.run m in
    (* Units of useful work per second of wall (virtual) time. *)
    fi (jobs * work_units) /. (fi r.K.Machine.elapsed_ns /. 1e9)
  in
  let base = throughput ~processors:1 ~alpha:20 in
  let base_ideal = throughput ~processors:1 ~alpha:0 in
  let rows =
    List.map
      (fun n ->
        let contended = throughput ~processors:n ~alpha:20 /. base in
        let ideal = throughput ~processors:n ~alpha:0 /. base_ideal in
        [
          string_of_int n;
          U.Table.fmt_float ideal;
          U.Table.fmt_float contended;
        ])
      [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]
  in
  U.Table.print
    ~title:
      "E3: total processing power vs processors (32 compute jobs; paper: \
       ~10x realizable)"
    ~header:[ "processors"; "speedup (no bus contention)"; "speedup (2%/cpu bus)" ]
    ~aligns:[ U.Table.Right; U.Table.Right; U.Table.Right ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: typed ports cost exactly what untyped ports cost (§4, Figs 1-2) *)
(* ------------------------------------------------------------------ *)

module Ap = Typed_ports.Make (Typed_ports.Access_message)

let e4_typed_untyped () =
  let messages = 20_000 in
  let run_variant variant =
    let m = boot ~alpha:0 () in
    let untyped = Untyped_ports.create_port m ~message_count:64 () in
    let typed = Ap.create m ~message_count:64 () in
    let payload = K.Machine.allocate_generic m ~data_length:8 () in
    let sender =
      K.Machine.spawn m ~name:"s" (fun () ->
          for _ = 1 to messages do
            match variant with
            | `Untyped -> Untyped_ports.send m ~prt:untyped ~msg:payload
            | `Typed -> Ap.send m ~prt:typed ~msg:payload
          done)
    in
    let receiver =
      K.Machine.spawn m ~name:"r" (fun () ->
          for _ = 1 to messages do
            match variant with
            | `Untyped -> ignore (Untyped_ports.receive m ~prt:untyped)
            | `Typed -> ignore (Ap.receive m ~prt:typed)
          done)
    in
    let _ = K.Machine.run m in
    let cpu p = (K.Machine.process_state m p).K.Process.cpu_ns in
    (fi (cpu sender) /. fi messages, fi (cpu receiver) /. fi messages)
  in
  let us, ur = run_variant `Untyped in
  let ts, tr = run_variant `Typed in
  U.Table.print
    ~title:"E4: Typed_Ports vs Untyped_Ports per-message cost (20k msgs)"
    ~header:[ "interface"; "send (us)"; "receive (us)"; "penalty" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Right ]
    [
      [ "Untyped_Ports (Fig. 1)"; fmt_us (int_of_float us); fmt_us (int_of_float ur); "-" ];
      [
        "Typed_Ports (Fig. 2)";
        fmt_us (int_of_float ts);
        fmt_us (int_of_float tr);
        Printf.sprintf "%.2fx (paper: identical)" (ts /. us);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E5: IPC latency and throughput across disciplines and fan-in        *)
(* ------------------------------------------------------------------ *)

let e5_ipc () =
  let messages_per_sender = 2_000 in
  let scenario ~senders ~receivers ~discipline =
    let m = boot ~processors:(senders + receivers) ~alpha:0 () in
    let port = K.Machine.create_port m ~capacity:16 ~discipline () in
    let total = senders * messages_per_sender in
    let base = total / receivers and extra = total mod receivers in
    for s = 1 to senders do
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "s%d" s) ~priority:s
           (fun () ->
             let payload = K.Machine.allocate_generic m ~data_length:8 () in
             for _ = 1 to messages_per_sender do
               K.Machine.send m ~port ~msg:payload
             done))
    done;
    for r = 1 to receivers do
      let quota = base + if r <= extra then 1 else 0 in
      ignore
        (K.Machine.spawn m ~name:(Printf.sprintf "r%d" r) (fun () ->
             for _ = 1 to quota do
               ignore (K.Machine.receive m ~port)
             done))
    done;
    let report = K.Machine.run m in
    let _, receives, send_blocks, recv_blocks, depth, wait =
      K.Machine.port_stats m port
    in
    let throughput = fi receives /. (fi report.K.Machine.elapsed_ns /. 1e9) in
    [
      Printf.sprintf "%d->%d %s" senders receivers
        (K.Port.discipline_to_string discipline);
      Printf.sprintf "%.0f" (throughput /. 1000.0);
      U.Table.fmt_float (wait /. 1000.0);
      string_of_int send_blocks;
      string_of_int recv_blocks;
      string_of_int depth;
    ]
  in
  U.Table.print
    ~title:"E5: port IPC (2k msgs/sender, queue capacity 16)"
    ~header:
      [ "scenario"; "kmsg/s"; "mean queue wait (us)"; "send blocks";
        "recv blocks"; "max depth" ]
    ~aligns:
      [ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Right;
        U.Table.Right; U.Table.Right ]
    [
      scenario ~senders:1 ~receivers:1 ~discipline:K.Port.Fifo;
      scenario ~senders:4 ~receivers:1 ~discipline:K.Port.Fifo;
      scenario ~senders:4 ~receivers:1 ~discipline:K.Port.Priority;
      scenario ~senders:4 ~receivers:4 ~discipline:K.Port.Fifo;
    ]

(* ------------------------------------------------------------------ *)
(* E6: scheduling policies (§6.1)                                      *)
(* ------------------------------------------------------------------ *)

let e6_schedulers () =
  let run_policy policy =
    let sys =
      System.boot
        ~config:{ System.default_config with System.scheduling = policy } ()
    in
    let m = System.machine sys in
    let pm = System.process_manager sys in
    let sched = System.scheduler sys in
    let users =
      List.map
        (fun (name, prio) ->
          let g = Scheduler.add_group sched name in
          let p =
            Process_manager.create_process pm ~name ~priority:prio (fun () ->
                for _ = 1 to 2_000 do
                  K.Machine.compute m 10;
                  K.Machine.yield m
                done)
          in
          Scheduler.enroll sched g p;
          p)
        [ ("user-a(prio 14)", 14); ("user-b(prio 8)", 8); ("user-c(prio 2)", 2) ]
    in
    let horizon = 50_000_000 in
    let _ = System.run sys ~max_ns:horizon in
    let consumed =
      List.map
        (fun p -> fi (K.Machine.process_state m p).K.Process.cpu_ns /. 1e6)
        users
    in
    let fairness = U.Stats.jain_fairness (Array.of_list consumed) in
    let total = List.fold_left ( +. ) 0.0 consumed in
    (consumed, fairness, total)
  in
  let rows =
    List.map
      (fun policy ->
        let consumed, fairness, total = run_policy policy in
        Scheduler.policy_to_string policy
        :: List.map (fun c -> U.Table.fmt_float c) consumed
        @ [ U.Table.fmt_float ~decimals:3 fairness; U.Table.fmt_float total ])
      [ Scheduler.Null; Scheduler.Round_robin; Scheduler.Fair_share ]
  in
  U.Table.print
    ~title:
      "E6: resource-control policies over the basic process manager (50 ms \
       horizon, 3 users)"
    ~header:
      [ "policy"; "user-a CPU (ms)"; "user-b CPU (ms)"; "user-c CPU (ms)";
        "Jain"; "total (ms)" ]
    ~aligns:
      [ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Right;
        U.Table.Right; U.Table.Right ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: swapping vs non-swapping memory manager (§6.2)                  *)
(* ------------------------------------------------------------------ *)

let e7_memory_managers () =
  let object_bytes = 1024 in
  let objects = 48 in  (* 48 KB working set *)
  let touches = 400 in
  let run_mm choice ~heap_bytes =
    let sys =
      System.boot
        ~config:
          {
            System.default_config with
            System.memory_manager = choice;
            heap_bytes;
          }
        ()
    in
    let m = System.machine sys in
    match
      Array.init objects (fun _ ->
          System.mm_allocate sys ~data_length:object_bytes ~access_length:0
            ~otype:Obj_type.Generic)
    with
    | exception Fault.Fault (Fault.Storage_exhausted _) ->
      [
        Printf.sprintf "%s, %dK heap"
          (System.memory_choice_to_string choice)
          (heap_bytes / 1024);
        "failed";
        "-";
        "-";
        "-";
      ]
    | objs ->
      let prng = U.Prng.create ~seed:99 in
      let p =
        K.Machine.spawn m ~name:"mutator" (fun () ->
            for _ = 1 to touches do
              let target = objs.(U.Prng.int prng objects) in
              System.mm_touch sys target;
              K.Machine.write_word m target ~offset:0 1
            done)
      in
      let _ = System.run sys in
      let st = System.mm_stats sys in
      let cpu = (K.Machine.process_state m p).K.Process.cpu_ns in
      [
        Printf.sprintf "%s, %dK heap"
          (System.memory_choice_to_string choice)
          (heap_bytes / 1024);
        "ok";
        Printf.sprintf "%d/%d" st.Memory_manager.swap_ins
          st.Memory_manager.swap_outs;
        U.Table.fmt_float (fi cpu /. fi touches /. 1000.0);
        string_of_int st.Memory_manager.alloc_faults;
      ]
  in
  U.Table.print
    ~title:
      "E7: memory-manager implementations under a 48K working set (400 \
       random touches)"
    ~header:
      [ "configuration"; "workload"; "swaps in/out"; "us/touch";
        "pressure events" ]
    ~aligns:
      [ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Right; U.Table.Right ]
    [
      run_mm System.Non_swapping ~heap_bytes:(128 * 1024);
      run_mm System.Non_swapping ~heap_bytes:(16 * 1024);
      run_mm System.Swapping_lru ~heap_bytes:(128 * 1024);
      run_mm System.Swapping_lru ~heap_bytes:(16 * 1024);
      run_mm System.Swapping_fifo ~heap_bytes:(16 * 1024);
    ]

(* ------------------------------------------------------------------ *)
(* E8: the on-the-fly garbage collector (§8.1)                         *)
(* ------------------------------------------------------------------ *)

let e8_gc () =
  (* Mutators churn: allocate short-lived objects linked under a root, then
     sever.  Compare mutator progress with the collector daemon off/on, and
     global collection vs local-heap bulk destruction. *)
  let churn_rounds = 60 in
  let objs_per_round = 12 in
  let run ~daemon ~local =
    let m = boot ~processors:2 ~alpha:0 () in
    let table = K.Machine.table m in
    let collector =
      G.Collector.create
        ~config:
          {
            G.Collector.default_config with
            G.Collector.idle_sleep_ns = 300_000;
          }
        m
    in
    if daemon then ignore (G.Collector.spawn_daemon collector);
    let p =
      K.Machine.spawn m ~name:"mutator" (fun () ->
          if local then
            for _ = 1 to churn_rounds do
              let heap = K.Machine.create_local_sro m ~level:1 ~bytes:(64 * 1024) in
              for _ = 1 to objs_per_round do
                ignore
                  (K.Machine.allocate m heap ~data_length:64 ~access_length:2
                     ~otype:Obj_type.Generic)
              done;
              ignore (K.Machine.destroy_sro m heap)
            done
          else begin
            let root = K.Machine.allocate_generic m ~access_length:16 () in
            K.Machine.add_root m root;
            for _ = 1 to churn_rounds do
              for i = 0 to objs_per_round - 1 do
                let o = K.Machine.allocate_generic m ~data_length:64 ~access_length:2 () in
                Segment.store_access table root ~slot:(i mod 16) (Some o)
              done;
              for i = 0 to 15 do
                Segment.store_access table root ~slot:i None
              done;
              K.Machine.yield m
            done
          end)
    in
    (* Capture the process record up front: once the mutator finishes, the
       collector may legitimately reclaim its process *object*. *)
    let pstate = K.Machine.process_state m p in
    let report = K.Machine.run m in
    let st = G.Collector.stats collector in
    let live = Object_table.count_valid table in
    let mutator_ms = fi pstate.K.Process.cpu_ns /. 1e6 in
    ( report.K.Machine.elapsed_ns,
      st.G.Collector.swept,
      st.G.Collector.cycles,
      live,
      mutator_ms )
  in
  let no_gc = run ~daemon:false ~local:false in
  let with_gc = run ~daemon:true ~local:false in
  let local = run ~daemon:false ~local:true in
  let row label (elapsed, swept, cycles, live, mutator_ms) =
    [
      label;
      U.Table.fmt_float (fi elapsed /. 1e6);
      string_of_int swept;
      string_of_int cycles;
      string_of_int live;
      U.Table.fmt_float mutator_ms;
    ]
  in
  U.Table.print
    ~title:
      "E8: reclamation of 720 short-lived objects (2 processors; collector \
       runs on the spare)"
    ~header:
      [ "configuration"; "elapsed (ms)"; "objects reclaimed"; "GC cycles";
        "descriptors live at end"; "mutator CPU (ms)" ]
    ~aligns:
      [ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Right;
        U.Table.Right; U.Table.Right ]
    [
      row "no collection (leak)" no_gc;
      row "on-the-fly daemon (global heap)" with_gc;
      row "local heaps, bulk destroy" local;
    ]

(* ------------------------------------------------------------------ *)
(* E9: destruction filters recover lost objects (§8.2)                 *)
(* ------------------------------------------------------------------ *)

let e9_destruction_filters () =
  let drives = 8 in
  let run ~with_filter =
    let sys = System.boot () in
    let m = System.machine sys in
    let pm = System.process_manager sys in
    let farm = Device_io.create_tape_farm m ~drives in
    if not with_filter then
      (* Disable the filter: lost drives are then simply collected. *)
      Type_def.clear_filter_port (K.Machine.table m)
        (Device_io.farm_typedef farm);
    for i = 1 to drives do
      ignore
        (Process_manager.create_process pm ~name:(Printf.sprintf "client%d" i)
           (fun () ->
             match Device_io.acquire_drive farm with
             | Some h ->
               let (module T) = Device_io.device_of farm h in
               T.write "data";
               K.Machine.compute m 20
             | None -> ()))
    done;
    let _ = System.run sys in
    let lost_before = drives - Device_io.free_drive_count farm in
    let collector = G.Collector.create m in
    ignore
      (K.Machine.spawn m ~name:"recovery" (fun () ->
           ignore (G.Collector.cycle collector);
           ignore (Device_io.recover_lost_drives farm)));
    let _ = System.run sys in
    (lost_before, Device_io.free_drive_count farm)
  in
  let lost_f, free_f = run ~with_filter:true in
  let lost_n, free_n = run ~with_filter:false in
  U.Table.print
    ~title:"E9: lost tape drives with and without destruction filters"
    ~header:
      [ "configuration"; "drives lost by clients"; "drives usable after GC";
        "paper" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right; U.Table.Left ]
    [
      [
        "destruction filter registered";
        string_of_int lost_f;
        Printf.sprintf "%d/%d" free_f drives;
        "all recovered";
      ];
      [
        "no filter";
        string_of_int lost_n;
        Printf.sprintf "%d/%d" free_n drives;
        "\"short one tape drive\"";
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E10: nested stop/start over process trees (§6.1)                    *)
(* ------------------------------------------------------------------ *)

let e10_stop_start () =
  let sys = System.boot () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let prng = U.Prng.create ~seed:7 in
  (* A three-level tree of workers. *)
  let progress = Array.make 7 0 in
  let body i () =
    for _ = 1 to 200 do
      progress.(i) <- progress.(i) + 1;
      K.Machine.compute m 5;
      K.Machine.yield m
    done
  in
  let root = Process_manager.create_process pm ~name:"root" (body 0) in
  let mids =
    List.init 2 (fun i ->
        Process_manager.create_process pm ~parent:root
          ~name:(Printf.sprintf "mid%d" i)
          (body (1 + i)))
  in
  let _leaves =
    List.concat_map
      (fun (j, parent) ->
        List.init 2 (fun i ->
            Process_manager.create_process pm ~parent
              ~name:(Printf.sprintf "leaf%d.%d" j i)
              (body (3 + (2 * j) + i))))
      (List.mapi (fun j p -> (j, p)) mids)
  in
  (* Storm: random stop/start pairs on random subtree roots, interleaved
     with execution. *)
  let storms = ref 0 in
  let violations = ref 0 in
  let targets = Array.of_list (root :: mids) in
  for _ = 1 to 30 do
    let target = U.Prng.choose prng targets in
    Process_manager.stop pm target;
    incr storms;
    (* While stopped, none of the subtree's counters may advance. *)
    let snapshot = Array.copy progress in
    let _ = System.run sys ~max_ns:(K.Machine.now m + 2_000_000) in
    if Process_manager.stop_count pm target > 0 then begin
      (* Workers outside the stopped subtree advanced; inside must not. *)
      if Process_manager.is_runnable pm target then incr violations
    end;
    ignore snapshot;
    Process_manager.start pm target
  done;
  let _ = System.run sys in
  let all_done = Array.for_all (fun p -> p = 200) progress in
  U.Table.print
    ~title:"E10: nested stop/start storms over a 7-process tree"
    ~header:[ "metric"; "value"; "expected" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right ]
    [
      [ "stop/start storms applied"; string_of_int !storms; "30" ];
      [ "invariant violations"; string_of_int !violations; "0" ];
      [ "all workers completed"; string_of_bool all_done; "true" ];
    ]

(* ------------------------------------------------------------------ *)
(* E11: the Ada rendezvous built on ports (§4: the port mechanism "is
   used by the Ada compiler to implement the Ada model")               *)
(* ------------------------------------------------------------------ *)

let e11_rendezvous () =
  let calls = 2_000 in
  (* Raw one-way port messaging: the general mechanism. *)
  let raw () =
    let m = boot ~alpha:0 () in
    let port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
    ignore
      (K.Machine.spawn m ~name:"s" (fun () ->
           let payload = K.Machine.allocate_generic m ~data_length:8 () in
           for _ = 1 to calls do
             K.Machine.send m ~port ~msg:payload
           done));
    ignore
      (K.Machine.spawn m ~name:"r" (fun () ->
           for _ = 1 to calls do
             ignore (K.Machine.receive m ~port)
           done));
    (K.Machine.run m).K.Machine.elapsed_ns
  in
  (* Synchronous rendezvous: entry call + accept + reply. *)
  let rendezvous () =
    let m = boot ~alpha:0 () in
    let e = Ada_tasks.create_entry m ~name:"entry" () in
    ignore
      (K.Machine.spawn m ~name:"server" (fun () ->
           for _ = 1 to calls do
             Ada_tasks.accept e ~body:(fun p -> p)
           done));
    ignore
      (K.Machine.spawn m ~name:"client" (fun () ->
           let x = K.Machine.allocate_generic m ~data_length:8 () in
           for _ = 1 to calls do
             ignore (Ada_tasks.call e ~parameter:x)
           done));
    (K.Machine.run m).K.Machine.elapsed_ns
  in
  let raw_ns = raw () in
  let rdv_ns = rendezvous () in
  U.Table.print
    ~title:
      "E11: Ada rendezvous vs raw port messaging (2k interactions, 1 \
       processor)"
    ~header:[ "mechanism"; "us/interaction"; "vs raw" ]
    ~aligns:[ U.Table.Left; U.Table.Right; U.Table.Right ]
    [
      [ "raw send/receive (one-way)"; U.Table.fmt_float (fi raw_ns /. fi calls /. 1000.0); "1.00x" ];
      [
        "Ada entry call (synchronous, with reply)";
        U.Table.fmt_float (fi rdv_ns /. fi calls /. 1000.0);
        Printf.sprintf "%.2fx" (fi rdv_ns /. fi raw_ns);
      ];
    ]

let all =
  [
    ("e1", "domain switch cost (paper: ~65 us)", e1_domain_switch);
    ("e2", "SRO allocation cost (paper: ~80 us)", e2_allocation);
    ("e3", "multiprocessor scaling (paper: ~10x)", e3_scaling);
    ("e4", "typed vs untyped ports (paper: identical)", e4_typed_untyped);
    ("e5", "IPC latency/throughput across disciplines", e5_ipc);
    ("e6", "scheduling policies and fairness", e6_schedulers);
    ("e7", "swapping vs non-swapping memory managers", e7_memory_managers);
    ("e8", "on-the-fly GC vs local-heap reclamation", e8_gc);
    ("e9", "destruction filters recover lost objects", e9_destruction_filters);
    ("e10", "nested stop/start over process trees", e10_stop_start);
    ("e11", "Ada rendezvous built on ports", e11_rendezvous);
  ]
