bench/main.ml: Ablations Experiments List Micro Printf Sys
