bench/ablations.ml: Array I432 I432_gc I432_kernel I432_util Imax List Memory_manager Obj_type Printf Segment System
