bench/main.mli:
