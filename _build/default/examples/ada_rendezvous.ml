(* Ada rendezvous on 432 ports: a bounded-buffer task with two entries
   (put/get) served by a selective wait — the textbook Ada shape, compiled
   to the port mechanism exactly as §4 of the paper describes.

   Producers and consumers make synchronous entry calls; the buffer task
   selects whichever entry can make progress, refusing puts when full and
   gets when empty. *)

open Imax
module K = I432_kernel

let items = 40
let buffer_capacity = 4

let () =
  let sys =
    System.boot ~config:{ System.default_config with processors = 2 } ()
  in
  let m = System.machine sys in

  let put = Ada_tasks.create_entry m ~name:"put" () in
  let get = Ada_tasks.create_entry m ~name:"get" () in

  (* The buffer task: state lives in 432 objects owned by the task. *)
  ignore
    (Ada_tasks.create_task m ~name:"bounded_buffer" (fun () ->
         let slots = Queue.create () in
         let served = ref 0 in
         while !served < 2 * items do
           let can_put = Queue.length slots < buffer_capacity in
           let can_get = not (Queue.is_empty slots) in
           let alternatives =
             (if can_put then
                [
                  ( put,
                    fun parameter ->
                      Queue.push parameter slots;
                      incr served;
                      parameter );
                ]
              else [])
             @
             if can_get then
               [
                 ( get,
                   fun token ->
                     incr served;
                     ignore token;
                     Queue.pop slots );
               ]
             else []
           in
           if not (Ada_tasks.select alternatives) then ()
         done));

  ignore
    (Ada_tasks.create_task m ~name:"producer" (fun () ->
         for i = 1 to items do
           let item = K.Machine.allocate_generic m ~data_length:8 () in
           K.Machine.write_word m item ~offset:0 i;
           ignore (Ada_tasks.call put ~parameter:item)
         done));

  let sum = ref 0 in
  ignore
    (Ada_tasks.create_task m ~name:"consumer" (fun () ->
         let token = K.Machine.allocate_generic m ~data_length:8 () in
         for _ = 1 to items do
           let item = Ada_tasks.call get ~parameter:token in
           sum := !sum + K.Machine.read_word m item ~offset:0
         done));

  let report = System.run sys in
  Printf.printf "ada_rendezvous: %d items through a %d-slot buffer, sum %d\n"
    items buffer_capacity !sum;
  Printf.printf "entries: put accepted %d, get accepted %d; elapsed %.2f ms\n"
    (Ada_tasks.accept_count put) (Ada_tasks.accept_count get)
    (float_of_int report.K.Machine.elapsed_ns /. 1e6);
  assert (!sum = items * (items + 1) / 2);
  assert (report.K.Machine.deadlocked = []);
  print_endline "ada_rendezvous OK"
