examples/tape_farm.mli:
