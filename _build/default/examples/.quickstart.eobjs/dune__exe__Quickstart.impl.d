examples/quickstart.ml: I432_kernel Imax Printf Process_manager System Typed_ports
