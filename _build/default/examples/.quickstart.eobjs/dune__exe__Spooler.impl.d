examples/spooler.ml: Ada_tasks Array Device_io I432_kernel Imax Levels List Printf Process_manager System
