examples/quickstart.mli:
