examples/tape_farm.ml: Device_io I432_gc I432_kernel Imax Printf Process_manager System
