examples/pipeline.mli:
