examples/multiuser.mli:
