examples/multiuser.ml: Array I432_kernel I432_util Imax List Printf Process_manager Scheduler System
