examples/pipeline.ml: I432_kernel Imax Printf Process_manager System Untyped_ports
