examples/spooler.mli:
