examples/supervisor.ml: I432_kernel Imax Interpose List Printf Process_manager System
