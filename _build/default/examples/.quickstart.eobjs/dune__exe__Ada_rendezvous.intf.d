examples/ada_rendezvous.mli:
