examples/supervisor.mli:
