examples/ada_rendezvous.ml: Ada_tasks I432_kernel Imax Printf Queue System
