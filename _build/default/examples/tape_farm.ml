(* Tape farm: the paper's lost-object scenario (§8.2).

   Each physical tape drive is represented by a sealed object of type
   tape_drive.  Careless client processes acquire drives, write to them,
   and drop the capability without returning it — so the drive object
   becomes garbage and, absent countermeasures, "the system will be short
   one tape drive".

   The farm registers a destruction filter on its type definition, so the
   garbage collector manufactures an access descriptor for each lost drive
   and sends it to the farm's port; the recovery process rewinds the drive
   and returns it to the pool. *)

open Imax
module K = I432_kernel

let drives = 6

let () =
  let sys =
    System.boot ~config:{ System.default_config with processors = 2 } ()
  in
  let machine = System.machine sys in
  let pm = System.process_manager sys in
  let farm = Device_io.create_tape_farm machine ~drives in

  (* Careless clients: use a drive, never call release_drive. *)
  let client id () =
    match Device_io.acquire_drive farm with
    | None -> ()
    | Some handle ->
      let (module T) = Device_io.device_of farm handle in
      T.write (Printf.sprintf "backup from client %d" id);
      K.Machine.compute machine 50;
      (* ... and walk away; the only capability dies with this body. *)
      ()
  in
  for i = 1 to drives do
    ignore
      (Process_manager.create_process pm ~name:(Printf.sprintf "client%d" i)
         (client i))
  done;
  let _ = System.run sys in
  Printf.printf "after clients: %d of %d drives free (the rest are lost)\n"
    (Device_io.free_drive_count farm)
    drives;
  assert (Device_io.free_drive_count farm = 0);

  (* One collection cycle finds the lost drives and posts them to the
     farm's filter port; the recovery process drains it. *)
  let collector = I432_gc.Collector.create machine in
  let recovered = ref 0 in
  let recovery () =
    let _ = I432_gc.Collector.cycle collector in
    recovered := Device_io.recover_lost_drives farm
  in
  ignore (Process_manager.create_process pm ~name:"recovery" recovery);
  let _ = System.run sys in
  Printf.printf "recovery: %d lost drives recovered, %d free now\n" !recovered
    (Device_io.free_drive_count farm);
  assert (Device_io.free_drive_count farm = drives);
  print_endline "tape_farm OK"
