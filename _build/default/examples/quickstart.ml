(* Quickstart: boot a two-processor iMAX system, create a typed port, and
   run a producer/consumer pair communicating through it.

   Demonstrates the public API end to end: System.boot, the basic process
   manager, Typed_ports (Figure 2 of the paper), and the virtual-time
   run report. *)

open Imax
module K = I432_kernel

(* A typed port instance over plain access descriptors — the identity
   MESSAGE module; richer messages wrap their own conversions. *)
module Ap = Typed_ports.Make (Typed_ports.Access_message)

let () =
  let sys =
    System.boot
      ~config:{ System.default_config with processors = 2 }
      ()
  in
  let machine = System.machine sys in
  let pm = System.process_manager sys in

  (* A typed port with room for 8 messages. *)
  let port = Ap.create machine ~message_count:8 () in

  let produced = ref 0 in
  let consumed = ref 0 in

  let producer () =
    for i = 1 to 20 do
      (* Allocate a fresh 432 object carrying the payload. *)
      let obj = K.Machine.allocate_generic machine ~data_length:16 () in
      K.Machine.write_word machine obj ~offset:0 i;
      Ap.send machine ~prt:port ~msg:obj;
      incr produced
    done
  in

  let consumer () =
    for _ = 1 to 20 do
      let msg = Ap.receive machine ~prt:port in
      let v = K.Machine.read_word machine msg ~offset:0 in
      consumed := !consumed + v
    done
  in

  let _p = Process_manager.create_process pm ~name:"producer" producer in
  let _c = Process_manager.create_process pm ~name:"consumer" consumer in

  let report = System.run sys in
  Printf.printf "quickstart: %d messages produced, payload sum %d\n" !produced
    !consumed;
  Printf.printf "elapsed virtual time: %.2f ms on %d processors\n"
    (float_of_int report.K.Machine.elapsed_ns /. 1e6)
    (K.Machine.processor_count machine);
  Printf.printf "processes completed: %d, faulted: %d\n"
    report.K.Machine.completed report.K.Machine.faulted;
  assert (!produced = 20);
  assert (!consumed = 20 * 21 / 2);
  print_endline "quickstart OK"
