(* Multi-user: the configurability story of §6.1.

   The same workload — three users with very different appetites — is run
   twice: once under the null policy ("completely acceptable for simple
   embedded systems ... clearly unacceptable in a multi-user environment")
   and once under the fair-share user-process manager layered on the basic
   process manager.  Fairness is measured with Jain's index over per-user
   CPU consumption. *)

open Imax
module K = I432_kernel

let run_policy policy =
  let sys =
    System.boot
      ~config:
        {
          System.default_config with
          processors = 1;
          scheduling = policy;
        }
      ()
  in
  let machine = System.machine sys in
  let pm = System.process_manager sys in
  let sched = System.scheduler sys in

  (* Users ask for wildly different priorities; under the null policy the
     hardware simply obeys. *)
  let mk_user name priority =
    let group = Scheduler.add_group sched name in
    let body () =
      for _ = 1 to 400 do
        K.Machine.compute machine 10;
        K.Machine.yield machine
      done
    in
    let p = Process_manager.create_process pm ~name ~priority body in
    Scheduler.enroll sched group p;
    (group, p)
  in
  let users =
    [ mk_user "greedy" 14; mk_user "normal" 8; mk_user "meek" 2 ]
  in
  let horizon = 40_000_000 in
  let _ = System.run sys ~max_ns:horizon in
  let consumed =
    List.map
      (fun (_, p) ->
        let st = K.Machine.process_state machine p in
        float_of_int st.K.Process.cpu_ns)
      users
  in
  (I432_util.Stats.jain_fairness (Array.of_list consumed), consumed)

let () =
  let fair_null, consumed_null = run_policy Scheduler.Null in
  let fair_fs, consumed_fs = run_policy Scheduler.Fair_share in
  let show label (fair, consumed) =
    Printf.printf "%-12s Jain fairness %.3f  per-user CPU (ms):" label fair;
    List.iter (fun c -> Printf.printf " %.2f" (c /. 1e6)) consumed;
    print_newline ()
  in
  show "null" (fair_null, consumed_null);
  show "fair-share" (fair_fs, consumed_fs);
  assert (fair_fs > fair_null);
  print_endline "multiuser OK"
