(* Pipeline: an OEM-style embedded workload of the kind the paper's
   introduction motivates — a multi-stage processing pipeline where stages
   are processes connected by 432 ports, spread across several processors.

   Stage 1 acquires "samples", stage 2 filters them, stage 3 accumulates.
   Messages are 432 objects; back-pressure comes entirely from bounded port
   queues (a full port blocks its sender — §4). *)

open Imax
module K = I432_kernel

let samples = 200

let () =
  let sys =
    System.boot ~config:{ System.default_config with processors = 4 } ()
  in
  let machine = System.machine sys in
  let pm = System.process_manager sys in

  let raw = Untyped_ports.create_port machine ~message_count:4 () in
  let filtered = Untyped_ports.create_port machine ~message_count:4 () in
  let accumulated = ref 0 in
  let dropped = ref 0 in

  let acquire () =
    for i = 1 to samples do
      let obj = K.Machine.allocate_generic machine ~data_length:8 () in
      K.Machine.write_word machine obj ~offset:0 (i mod 32);
      K.Machine.compute machine 5;  (* sensor conversion time *)
      Untyped_ports.send machine ~prt:raw ~msg:obj
    done
  in

  let filter () =
    for _ = 1 to samples do
      let msg = Untyped_ports.receive machine ~prt:raw in
      let v = K.Machine.read_word machine msg ~offset:0 in
      K.Machine.compute machine 12;  (* filtering work *)
      if v >= 8 then Untyped_ports.send machine ~prt:filtered ~msg
      else incr dropped
    done;
    (* Close the stream with a sentinel object. *)
    let sentinel = K.Machine.allocate_generic machine ~data_length:8 () in
    K.Machine.write_word machine sentinel ~offset:0 (-1);
    Untyped_ports.send machine ~prt:filtered ~msg:sentinel
  in

  let accumulate () =
    let rec loop () =
      let msg = Untyped_ports.receive machine ~prt:filtered in
      let v = K.Machine.read_word machine msg ~offset:0 in
      if v >= 0 then begin
        K.Machine.compute machine 3;
        accumulated := !accumulated + v;
        loop ()
      end
    in
    loop ()
  in

  let _a = Process_manager.create_process pm ~name:"acquire" acquire in
  let _f = Process_manager.create_process pm ~name:"filter" filter in
  let _c = Process_manager.create_process pm ~name:"accumulate" accumulate in

  let report = System.run sys in
  let sends, receives, send_blocks, _, max_depth, wait =
    K.Machine.port_stats machine raw
  in
  Printf.printf "pipeline: %d samples, %d dropped, sum %d\n" samples !dropped
    !accumulated;
  Printf.printf
    "raw port: %d sends, %d receives, %d sender blocks, max depth %d, mean \
     queue wait %.1f us\n"
    sends receives send_blocks max_depth (wait /. 1000.0);
  Printf.printf "elapsed %.2f ms, completed %d\n"
    (float_of_int report.K.Machine.elapsed_ns /. 1e6)
    report.K.Machine.completed;
  assert (report.K.Machine.completed = 3);
  assert (report.K.Machine.deadlocked = []);
  print_endline "pipeline OK"
