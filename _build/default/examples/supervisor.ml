(* Fault supervision and interface interposition.

   Two mechanisms from the paper in one scenario:

   - §5: faulted processes are "sent back to software"; here a supervisor
     process receives every faulted process object on a fault port and
     inspects the corpse (name, consumed CPU, cause is in the machine log).
   - §4: "any system interface can be mimicked by a user package ... trap
     certain system calls"; the workers talk through an interposed port
     package that audits traffic and censors forbidden messages, with no
     cooperation from the wrapped code. *)

open Imax
module K = I432_kernel

let () =
  let sys =
    System.boot ~config:{ System.default_config with processors = 2 } ()
  in
  let m = System.machine sys in
  let pm = System.process_manager sys in

  (* Interpose on the port interface: drop any message whose first word is
     negative, and audit the rest. *)
  let censored = ref 0 in
  let hooks =
    {
      Interpose.default_hooks with
      Interpose.on_send =
        (fun msg ->
          if K.Machine.read_word m msg ~offset:0 < 0 then begin
            incr censored;
            None
          end
          else Some msg);
    }
  in
  let (module Ports), _trace = Interpose.wrap ~hooks (module Interpose.Real) in
  let channel = Ports.create_port m ~message_count:8 () in

  (* A fault port: the supervisor sees every crashed worker. *)
  let fault_port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  K.Machine.set_fault_port m fault_port;

  (* Workers: one well-behaved, one sending forbidden values, one that
     faults on an out-of-bounds access. *)
  ignore
    (Process_manager.create_process pm ~name:"polite" (fun () ->
         for i = 1 to 5 do
           let o = K.Machine.allocate_generic m ~data_length:8 () in
           K.Machine.write_word m o ~offset:0 i;
           Ports.send m ~prt:channel ~msg:o
         done));
  ignore
    (Process_manager.create_process pm ~name:"rude" (fun () ->
         for i = 1 to 5 do
           let o = K.Machine.allocate_generic m ~data_length:8 () in
           K.Machine.write_word m o ~offset:0 (-i);
           Ports.send m ~prt:channel ~msg:o
         done));
  ignore
    (Process_manager.create_process pm ~name:"crasher" (fun () ->
         let o = K.Machine.allocate_generic m ~data_length:8 () in
         ignore (K.Machine.read_word m o ~offset:4096)));

  let received = ref 0 in
  ignore
    (Process_manager.create_process pm ~name:"consumer" (fun () ->
         for _ = 1 to 5 do
           ignore (Ports.receive m ~prt:channel)
         done;
         received := 5));

  let inspected = ref [] in
  ignore
    (Process_manager.create_process pm ~name:"supervisor" (fun () ->
         let corpse = K.Machine.receive m ~port:fault_port in
         let st = K.Machine.process_state m corpse in
         inspected :=
           (st.K.Process.name, K.Process.status_to_string st.K.Process.status)
           :: !inspected));

  let report = System.run sys in
  Printf.printf "supervisor: censored %d messages, delivered %d\n" !censored
    !received;
  List.iter
    (fun (name, status) ->
      Printf.printf "supervisor inspected crashed process %S (%s)\n" name status)
    !inspected;
  Printf.printf "machine fault log: %d entries; elapsed %.2f ms\n"
    (List.length (K.Machine.faults m))
    (float_of_int report.K.Machine.elapsed_ns /. 1e6);
  assert (!censored = 5);
  assert (!received = 5);
  assert (List.length !inspected = 1);
  print_endline "supervisor OK"
