(* A print spooler: the kind of OEM embedded system the paper positions the
   432 for, built from the full breadth of the public API.

   Structure:
   - terminals feed jobs to a spool entry (Ada rendezvous, §4);
   - the spooler task owns the printer devices through the device-
     independent interface (§6.3) and round-robins jobs across them;
   - the device driver runs at iMAX level 3 while user sessions run at
     user level, and driver-to-scheduler notifications use the
     asynchronous-only upward channel (§7.3);
   - an operator process can pause and resume the whole spooling subtree
     with one stop/start on its root (§6.1). *)

open Imax
module K = I432_kernel

let jobs_per_user = 6
let users = 3
let printers = 2

let () =
  let sys =
    System.boot ~config:{ System.default_config with processors = 2 } ()
  in
  let m = System.machine sys in
  let pm = System.process_manager sys in

  (* Printers: per-device packages with the common interface. *)
  let printer_devices =
    Array.init printers (fun i ->
        Device_io.make_terminal ~name:(Printf.sprintf "lp%d" i) ())
  in

  let spool = Ada_tasks.create_entry m ~name:"spool" ~queue:16 () in
  let printed = ref 0 in
  let notify_port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in

  (* The spooler subtree root: a driver at system level 3. *)
  let spooler_root =
    Process_manager.create_process pm ~name:"spooler" ~system_level:3
      (fun () ->
        let total = users * jobs_per_user in
        for n = 1 to total do
          Ada_tasks.accept spool ~body:(fun job ->
              let owner = K.Machine.read_word m job ~offset:0 in
              let seq = K.Machine.read_word m job ~offset:4 in
              let (module P) = printer_devices.(n mod printers) in
              P.write (Printf.sprintf "user%d job%d" owner seq);
              K.Machine.compute m 25;  (* print time *)
              incr printed;
              job);
          (* Progress notification upward: must never block (§7.3). *)
          let note = K.Machine.allocate_generic m ~data_length:8 () in
          ignore
            (Levels.async_notify m ~src:Levels.Level2 ~port:notify_port
               ~msg:note)
        done)
  in

  (* User sessions submit jobs through the entry. *)
  for u = 1 to users do
    ignore
      (Process_manager.create_process pm ~name:(Printf.sprintf "user%d" u)
         (fun () ->
           for j = 1 to jobs_per_user do
             let job = K.Machine.allocate_generic m ~data_length:16 () in
             K.Machine.write_word m job ~offset:0 u;
             K.Machine.write_word m job ~offset:4 j;
             K.Machine.compute m 10;  (* composing the job *)
             ignore (Ada_tasks.call spool ~parameter:job)
           done))
  done;

  (* The operator pauses the whole spooler subtree mid-run, checks nothing
     prints while paused, then resumes.  Control needs only the root. *)
  Process_manager.stop pm spooler_root;
  let _ = System.run sys ~max_ns:5_000_000 in
  let printed_while_paused = !printed in
  Process_manager.start pm spooler_root;
  let report = System.run sys in

  Printf.printf "spooler: %d jobs printed on %d printers (paused at %d)\n"
    !printed printers printed_while_paused;
  Array.iter
    (fun (module P : Device_io.DEVICE) ->
      Printf.printf "  %s processed its share\n" P.name)
    printer_devices;
  Printf.printf "elapsed %.2f ms, completed %d, deadlocked %d\n"
    (float_of_int report.K.Machine.elapsed_ns /. 1e6)
    report.K.Machine.completed
    (List.length report.K.Machine.deadlocked);
  assert (printed_while_paused = 0);
  assert (!printed = users * jobs_per_user);
  assert (report.K.Machine.deadlocked = []);
  print_endline "spooler OK"
