(* Tests for the architecture substrate: rights, access descriptors, the
   object table, segments (bounds/rights/levels/barrier), SROs (allocation,
   coalescing, local-heap destroy), and user type definitions. *)

open I432

let mk () =
  let table = Object_table.create () in
  let memory = Memory.create ~size_bytes:(1 lsl 20) in
  let sro = Sro.create table ~level:0 ~base:0 ~length:(1 lsl 20) in
  (table, memory, sro)

let alloc ?(data = 64) ?(acc = 4) ?(otype = Obj_type.Generic) table sro =
  Sro.allocate table sro ~data_length:data ~access_length:acc ~otype

let expect_fault name pred f =
  match f () with
  | _ -> Alcotest.failf "%s: expected fault" name
  | exception Fault.Fault cause ->
    Alcotest.(check bool)
      (name ^ ": " ^ Fault.to_string cause)
      true (pred cause)

(* ---------------- Rights ---------------- *)

let test_rights_restrict () =
  let r = Rights.restrict Rights.full Rights.read_only in
  Alcotest.(check bool) "read kept" true (Rights.has_read r);
  Alcotest.(check bool) "write dropped" false (Rights.has_write r);
  Alcotest.(check bool) "type rights dropped" false
    (Rights.has_type_right r Rights.t1)

let test_rights_never_amplify () =
  let weak = Rights.read_only in
  let r = Rights.restrict weak Rights.full in
  Alcotest.(check bool) "subset of weak" true (Rights.subset ~of_:weak r)

let test_rights_remove_type_right () =
  let r = Rights.remove_type_right Rights.full Rights.t2 in
  Alcotest.(check bool) "t1 kept" true (Rights.has_type_right r Rights.t1);
  Alcotest.(check bool) "t2 gone" false (Rights.has_type_right r Rights.t2);
  Alcotest.(check bool) "t3 kept" true (Rights.has_type_right r Rights.t3)

let test_rights_to_string () =
  Alcotest.(check string) "full" "rw123" (Rights.to_string Rights.full);
  Alcotest.(check string) "none" "-----" (Rights.to_string Rights.none)

(* ---------------- Access ---------------- *)

let test_access_restrict_chain () =
  let a = Access.make ~index:3 ~rights:Rights.full in
  let b = Access.read_only a in
  Alcotest.(check int) "index preserved" 3 (Access.index b);
  Alcotest.(check bool) "no write" false (Rights.has_write (Access.rights b));
  let c = Access.restrict b Rights.full in
  Alcotest.(check bool) "restrict cannot re-amplify" false
    (Rights.has_write (Access.rights c))

let test_access_negative_index () =
  Alcotest.check_raises "negative" (Invalid_argument "Access.make: negative index")
    (fun () -> ignore (Access.make ~index:(-1) ~rights:Rights.full))

(* ---------------- Object table ---------------- *)

let test_table_lookup_invalid () =
  let table, _, _ = mk () in
  expect_fault "invalid descriptor"
    (function Fault.Invalid_descriptor 999 -> true | _ -> false)
    (fun () -> Object_table.lookup table 999)

let test_table_free_then_lookup () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  Object_table.free_entry table (Access.index a);
  expect_fault "freed descriptor"
    (function Fault.Invalid_descriptor _ -> true | _ -> false)
    (fun () -> Object_table.lookup table (Access.index a))

let test_table_index_recycling () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let i = Access.index a in
  Object_table.free_entry table i;
  let b = alloc table sro in
  Alcotest.(check int) "index recycled" i (Access.index b)

let test_table_growth () =
  let table = Object_table.create ~initial_capacity:2 () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:(1 lsl 18) in
  for _ = 1 to 100 do
    ignore (alloc ~data:8 ~acc:0 table sro)
  done;
  Alcotest.(check bool) "grew" true (Object_table.capacity table >= 101);
  Alcotest.(check int) "valid count" 101 (Object_table.count_valid table)

let test_table_data_part_limit () =
  let table, _, sro = mk () in
  Alcotest.check_raises "64K+1 rejected"
    (Invalid_argument "Sro.allocate: data part exceeds 64K") (fun () ->
      ignore (alloc ~data:((64 * 1024) + 1) table sro))

let test_table_shade () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let e = Object_table.entry_of_access table a in
  (* Fresh objects are allocated gray so an in-progress collection cannot
     reclaim them before the mutator roots them. *)
  Alcotest.(check bool) "starts gray (allocate-gray)" true
    (e.Object_table.color = Object_table.Gray);
  (* Once whitened (as a collection cycle does), the barrier shades it. *)
  e.Object_table.color <- Object_table.White;
  Object_table.shade table (Access.index a);
  Alcotest.(check bool) "now gray" true (e.Object_table.color = Object_table.Gray);
  Alcotest.(check int) "one barrier shade" 1 (Object_table.barrier_shades table)

(* ---------------- Segments ---------------- *)

let test_segment_rw_roundtrip () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  Segment.write_i32 table memory a ~offset:0 123456;
  Segment.write_i32 table memory a ~offset:4 (-77);
  Alcotest.(check int) "word 0" 123456 (Segment.read_i32 table memory a ~offset:0);
  Alcotest.(check int) "word 1 sign-extended" (-77)
    (Segment.read_i32 table memory a ~offset:4)

let test_segment_bytes_roundtrip () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  Segment.write_bytes table memory a ~offset:8 (Bytes.of_string "hello 432");
  Alcotest.(check string) "bytes back" "hello 432"
    (Bytes.to_string (Segment.read_bytes table memory a ~offset:8 ~len:9))

let test_segment_u16 () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  Segment.write_u16 table memory a ~offset:2 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Segment.read_u16 table memory a ~offset:2)

let test_segment_bounds () =
  let table, memory, sro = mk () in
  let a = alloc ~data:16 table sro in
  expect_fault "data bounds"
    (function Fault.Bounds { part = "data"; _ } -> true | _ -> false)
    (fun () -> Segment.read_i32 table memory a ~offset:13)

let test_segment_rights_read () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  let w = Access.restrict a { Rights.none with Rights.write = true } in
  expect_fault "needs read"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> Segment.read_u8 table memory w ~offset:0)

let test_segment_rights_write () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  let r = Access.read_only a in
  expect_fault "needs write"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> Segment.write_u8 table memory r ~offset:0 1)

let test_access_part_roundtrip () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let b = alloc table sro in
  Segment.store_access table a ~slot:0 (Some b);
  match Segment.load_access table a ~slot:0 with
  | Some got -> Alcotest.(check int) "stored AD" (Access.index b) (Access.index got)
  | None -> Alcotest.fail "expected stored access"

let test_access_part_bounds () =
  let table, _, sro = mk () in
  let a = alloc ~acc:2 table sro in
  expect_fault "access bounds"
    (function Fault.Bounds { part = "access"; _ } -> true | _ -> false)
    (fun () -> Segment.load_access table a ~slot:2)

let test_access_part_clear () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let b = alloc table sro in
  Segment.store_access table a ~slot:1 (Some b);
  Segment.store_access table a ~slot:1 None;
  Alcotest.(check bool) "cleared" true (Segment.load_access table a ~slot:1 = None)

(* The level rule (§5): a shorter-lived (higher level) object's access may
   not be stored into a longer-lived (lower level) object. *)
let test_level_rule_violation () =
  let table, _, sro0 = mk () in
  let sro2 = Sro.create table ~level:2 ~base:(1 lsl 19) ~length:4096 in
  let global_obj = alloc table sro0 in
  let local_obj = alloc table sro2 in
  expect_fault "level violation"
    (function
      | Fault.Level_violation { stored_level = 2; target_level = 0 } -> true
      | _ -> false)
    (fun () -> Segment.store_access table global_obj ~slot:0 (Some local_obj))

let test_level_rule_allowed_down () =
  let table, _, sro0 = mk () in
  let sro2 = Sro.create table ~level:2 ~base:(1 lsl 19) ~length:4096 in
  let global_obj = alloc table sro0 in
  let local_obj = alloc table sro2 in
  (* Global into local is fine: the target dies first. *)
  Segment.store_access table local_obj ~slot:0 (Some global_obj);
  Alcotest.(check bool) "stored" true
    (Segment.load_access table local_obj ~slot:0 <> None)

let test_level_rule_same_level () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let b = alloc table sro in
  Segment.store_access table a ~slot:0 (Some b);
  Alcotest.(check bool) "same level ok" true
    (Segment.load_access table a ~slot:0 <> None)

let test_store_access_runs_barrier () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  let b = alloc table sro in
  (* Whiten the target first, as a collection cycle would. *)
  let eb = Object_table.entry_of_access table b in
  eb.Object_table.color <- Object_table.White;
  let before = Object_table.barrier_shades table in
  Segment.store_access table a ~slot:0 (Some b);
  Alcotest.(check int) "barrier ran" (before + 1) (Object_table.barrier_shades table);
  Alcotest.(check bool) "target shaded" true
    (eb.Object_table.color = Object_table.Gray)

let test_check_type () =
  let table, _, sro = mk () in
  let a = alloc table sro in
  Segment.check_type table a Obj_type.Generic;
  expect_fault "wrong type"
    (function Fault.Type_mismatch _ -> true | _ -> false)
    (fun () -> Segment.check_type table a Obj_type.Port)

let test_swapped_out_faults () =
  let table, memory, sro = mk () in
  let a = alloc table sro in
  (Object_table.entry_of_access table a).Object_table.swapped_out <- true;
  expect_fault "absent segment"
    (function Fault.Segment_swapped_out _ -> true | _ -> false)
    (fun () -> Segment.read_u8 table memory a ~offset:0)

(* ---------------- SRO ---------------- *)

let test_sro_allocate_updates_accounting () =
  let table, _, sro = mk () in
  let free0 = Sro.free_bytes table sro in
  let _ = alloc ~data:256 table sro in
  Alcotest.(check int) "free shrank" (free0 - 256) (Sro.free_bytes table sro);
  Alcotest.(check int) "alloc count" 1 (Sro.alloc_count table sro);
  Alcotest.(check int) "live objects" 1 (Sro.live_objects table sro)

let test_sro_exhaustion () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:128 in
  let _ = alloc ~data:128 ~acc:0 table sro in
  expect_fault "exhausted"
    (function Fault.Storage_exhausted _ -> true | _ -> false)
    (fun () -> alloc ~data:1 ~acc:0 table sro)

let test_sro_release_and_reuse () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:128 in
  let a = alloc ~data:128 ~acc:0 table sro in
  Sro.release_by_access table sro ~index:(Access.index a);
  Alcotest.(check int) "all free again" 128 (Sro.free_bytes table sro);
  let b = alloc ~data:128 ~acc:0 table sro in
  Alcotest.(check bool) "reusable" true (Object_table.is_valid table (Access.index b))

let test_sro_coalescing () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:300 in
  let a = alloc ~data:100 ~acc:0 table sro in
  let b = alloc ~data:100 ~acc:0 table sro in
  let c = alloc ~data:100 ~acc:0 table sro in
  (* Free middle, then neighbours: regions must coalesce back to one. *)
  Sro.release_by_access table sro ~index:(Access.index b);
  Sro.release_by_access table sro ~index:(Access.index a);
  Sro.release_by_access table sro ~index:(Access.index c);
  Alcotest.(check int) "one region" 1 (Sro.region_count table sro);
  Alcotest.(check int) "largest block 300" 300 (Sro.largest_free table sro)

let test_sro_first_fit_fragmentation () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:300 in
  let a = alloc ~data:100 ~acc:0 table sro in
  let _b = alloc ~data:100 ~acc:0 table sro in
  let _c = alloc ~data:100 ~acc:0 table sro in
  Sro.release_by_access table sro ~index:(Access.index a);
  (* 100 free in one hole: a 150-byte request must fault even though... no,
     total free is 100 < 150.  Allocate 60 into the hole instead, leaving a
     split region. *)
  let d = alloc ~data:60 ~acc:0 table sro in
  Alcotest.(check int) "hole split" 40 (Sro.largest_free table sro);
  ignore d

let test_sro_foreign_release_rejected () =
  let table = Object_table.create () in
  let sro1 = Sro.create table ~level:0 ~base:0 ~length:128 in
  let sro2 = Sro.create table ~level:0 ~base:128 ~length:128 in
  let a = alloc ~data:32 ~acc:0 table sro1 in
  expect_fault "foreign SRO"
    (function Fault.Protocol _ -> true | _ -> false)
    (fun () -> Sro.release_by_access table sro2 ~index:(Access.index a))

let test_sro_needs_allocate_right () =
  let table, _, sro = mk () in
  let weak = Access.without_type_right sro Rights.t1 in
  expect_fault "no allocate right"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> alloc table weak)

let test_sro_destroy_bulk () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:3 ~base:0 ~length:1024 in
  let objs = List.init 5 (fun _ -> alloc ~data:64 ~acc:0 table sro) in
  let n = Sro.destroy table sro in
  Alcotest.(check int) "all reclaimed" 5 n;
  List.iter
    (fun a ->
      Alcotest.(check bool) "descriptor gone" false
        (Object_table.is_valid table (Access.index a)))
    objs

let test_sro_destroyed_rejects_use () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:3 ~base:0 ~length:1024 in
  let _ = Sro.destroy table sro in
  expect_fault "destroyed SRO"
    (function Fault.Invalid_descriptor _ | Fault.Sro_destroyed -> true | _ -> false)
    (fun () -> alloc table sro)

let test_sro_child_tree () =
  let table = Object_table.create () in
  let root = Sro.create table ~level:0 ~base:0 ~length:4096 in
  let child = Sro.create_child table root ~level:1 ~bytes:1024 in
  let grandchild = Sro.create_child table child ~level:2 ~bytes:256 in
  Alcotest.(check int) "root has one child" 1 (Sro.child_count table root);
  Alcotest.(check int) "child level" 1 (Sro.level table child);
  Alcotest.(check int) "grandchild level" 2 (Sro.level table grandchild);
  (* Parent's free store shrank by the child's whole region. *)
  Alcotest.(check int) "root free" (4096 - 1024) (Sro.free_bytes table root)

let test_sro_destroy_cascades () =
  let table = Object_table.create () in
  let root = Sro.create table ~level:0 ~base:0 ~length:4096 in
  let child = Sro.create_child table root ~level:1 ~bytes:1024 in
  let grandchild = Sro.create_child table child ~level:2 ~bytes:256 in
  let o1 = alloc ~data:32 ~acc:0 table child in
  let o2 = alloc ~data:32 ~acc:0 table grandchild in
  let reclaimed = Sro.destroy table child in
  Alcotest.(check int) "both descendants' objects reclaimed" 2 reclaimed;
  List.iter
    (fun a ->
      Alcotest.(check bool) "object gone" false
        (Object_table.is_valid table (Access.index a)))
    [ o1; o2; child; grandchild ];
  Alcotest.(check bool) "root survives" true
    (Object_table.is_valid table (Access.index root))

let test_sro_child_needs_allocate_right () =
  let table = Object_table.create () in
  let root = Sro.create table ~level:0 ~base:0 ~length:4096 in
  let weak = Access.without_type_right root Rights.t1 in
  expect_fault "child needs t1"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> Sro.create_child table weak ~level:1 ~bytes:128)

let test_sro_child_exhausts_parent () =
  let table = Object_table.create () in
  let root = Sro.create table ~level:0 ~base:0 ~length:512 in
  expect_fault "too big for parent"
    (function Fault.Storage_exhausted _ -> true | _ -> false)
    (fun () -> Sro.create_child table root ~level:1 ~bytes:1024)

let test_sro_zero_length_object () =
  let table, _, sro = mk () in
  let a = alloc ~data:0 ~acc:2 table sro in
  Alcotest.(check int) "no data part" 0 (Segment.data_length table a);
  Alcotest.(check int) "access part present" 2 (Segment.access_length table a)

let test_sro_donate_carve () =
  let table = Object_table.create () in
  let sro = Sro.create table ~level:0 ~base:0 ~length:256 in
  let s = Sro.state_of table sro in
  (match Sro.carve table ~sro_state:s ~size:200 with
  | Some base -> Alcotest.(check int) "carved at base" 0 base
  | None -> Alcotest.fail "carve failed");
  Alcotest.(check int) "free after carve" 56 (Sro.free_bytes table sro);
  Sro.donate table ~sro_state:s ~base:0 ~length:200;
  Alcotest.(check int) "free after donate" 256 (Sro.free_bytes table sro);
  Alcotest.(check int) "coalesced" 1 (Sro.region_count table sro)

(* ---------------- Type definitions ---------------- *)

let test_typedef_seal_and_check () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"mailbox" in
  let inst = Type_def.create_instance table td sro ~data_length:32 ~access_length:0 in
  Type_def.check_instance table td inst;
  Alcotest.(check bool) "is instance" true (Type_def.is_instance table td inst);
  Alcotest.(check int) "sealed count" 1 (Type_def.sealed_count table td)

let test_typedef_distinct_types () =
  let table, _, sro = mk () in
  let td1 = Type_def.create table sro ~name:"a" in
  let td2 = Type_def.create table sro ~name:"b" in
  let inst = Type_def.create_instance table td1 sro ~data_length:8 ~access_length:0 in
  Alcotest.(check bool) "not instance of other" false
    (Type_def.is_instance table td2 inst)

let test_typedef_seal_requires_right () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  let weak = Access.without_type_right td Rights.t1 in
  let target = alloc table sro in
  expect_fault "seal needs t1"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> Type_def.seal table weak ~target)

let test_typedef_seal_generic_only () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  let port_obj =
    Sro.allocate table sro ~data_length:0 ~access_length:1 ~otype:Obj_type.Port
  in
  expect_fault "cannot reseal system object"
    (function Fault.Type_mismatch _ -> true | _ -> false)
    (fun () -> Type_def.seal table td ~target:port_obj)

let test_typedef_amplify () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  let inst = Type_def.create_instance table td sro ~data_length:8 ~access_length:0 in
  let weak = Access.restrict inst Rights.none in
  Alcotest.(check bool) "weak has nothing" false
    (Rights.has_read (Access.rights weak));
  let strong = Type_def.amplify table td weak ~rights:Rights.full in
  Alcotest.(check bool) "amplified" true (Rights.has_write (Access.rights strong));
  Alcotest.(check int) "same object" (Access.index inst) (Access.index strong)

let test_typedef_amplify_requires_manager_right () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  let inst = Type_def.create_instance table td sro ~data_length:8 ~access_length:0 in
  let not_manager = Access.without_type_right td Rights.t2 in
  expect_fault "amplify needs t2"
    (function Fault.Rights_violation _ -> true | _ -> false)
    (fun () -> Type_def.amplify table not_manager inst ~rights:Rights.full)

let test_typedef_amplify_checks_type () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  let other = alloc table sro in
  expect_fault "amplify wrong type"
    (function Fault.Type_mismatch _ -> true | _ -> false)
    (fun () -> Type_def.amplify table td other ~rights:Rights.full)

let test_typedef_filter_port_registry () =
  let table, _, sro = mk () in
  let td = Type_def.create table sro ~name:"t" in
  Alcotest.(check (option int)) "no filter" None (Type_def.filter_port table td);
  Type_def.set_filter_port table td ~port_index:42;
  Alcotest.(check (option int)) "registered" (Some 42) (Type_def.filter_port table td);
  let id = Type_def.id table td in
  Alcotest.(check (option int)) "found by id" (Some 42)
    (Type_def.filter_port_for_id table ~id);
  Type_def.clear_filter_port table td;
  Alcotest.(check (option int)) "cleared" None (Type_def.filter_port table td)

(* qcheck: random alloc/free scripts never corrupt SRO accounting: free
   bytes + live bytes = total, and coalescing keeps regions sorted. *)
let prop_sro_accounting =
  QCheck2.Test.make ~name:"SRO alloc/free conserves bytes" ~count:100
    QCheck2.Gen.(list_size (int_range 1 60) (pair bool (int_range 1 64)))
    (fun script ->
      let total = 4096 in
      let table = Object_table.create () in
      let sro = Sro.create table ~level:0 ~base:0 ~length:total in
      let live = ref [] in
      let live_bytes = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc then (
            match Sro.allocate table sro ~data_length:size ~access_length:0
                    ~otype:Obj_type.Generic
            with
            | a ->
              live := (a, size) :: !live;
              live_bytes := !live_bytes + size
            | exception Fault.Fault (Fault.Storage_exhausted _) -> ())
          else
            match !live with
            | [] -> ()
            | (a, size) :: rest ->
              Sro.release_by_access table sro ~index:(Access.index a);
              live := rest;
              live_bytes := !live_bytes - size)
        script;
      Sro.free_bytes table sro = total - !live_bytes
      && Sro.live_objects table sro = List.length !live)

(* qcheck: rights restriction is monotone — restricting never grants. *)
let prop_rights_monotone =
  QCheck2.Test.make ~name:"rights restriction is monotone" ~count:300
    QCheck2.Gen.(
      pair
        (triple bool bool (int_range 0 7))
        (triple bool bool (int_range 0 7)))
    (fun ((r1, w1, t1), (r2, w2, t2)) ->
      let a = { Rights.read = r1; write = w1; type_rights = t1 } in
      let b = { Rights.read = r2; write = w2; type_rights = t2 } in
      let c = Rights.restrict a b in
      Rights.subset ~of_:a c && Rights.subset ~of_:b c)

let suite =
  [
    ("rights restrict", `Quick, test_rights_restrict);
    ("rights never amplify", `Quick, test_rights_never_amplify);
    ("rights remove type right", `Quick, test_rights_remove_type_right);
    ("rights to_string", `Quick, test_rights_to_string);
    ("access restrict chain", `Quick, test_access_restrict_chain);
    ("access negative index", `Quick, test_access_negative_index);
    ("table lookup invalid", `Quick, test_table_lookup_invalid);
    ("table free then lookup", `Quick, test_table_free_then_lookup);
    ("table index recycling", `Quick, test_table_index_recycling);
    ("table growth", `Quick, test_table_growth);
    ("table data part limit", `Quick, test_table_data_part_limit);
    ("table shade", `Quick, test_table_shade);
    ("segment rw roundtrip", `Quick, test_segment_rw_roundtrip);
    ("segment bytes roundtrip", `Quick, test_segment_bytes_roundtrip);
    ("segment u16", `Quick, test_segment_u16);
    ("segment bounds", `Quick, test_segment_bounds);
    ("segment rights read", `Quick, test_segment_rights_read);
    ("segment rights write", `Quick, test_segment_rights_write);
    ("access part roundtrip", `Quick, test_access_part_roundtrip);
    ("access part bounds", `Quick, test_access_part_bounds);
    ("access part clear", `Quick, test_access_part_clear);
    ("level rule violation", `Quick, test_level_rule_violation);
    ("level rule allowed down", `Quick, test_level_rule_allowed_down);
    ("level rule same level", `Quick, test_level_rule_same_level);
    ("store access runs barrier", `Quick, test_store_access_runs_barrier);
    ("check type", `Quick, test_check_type);
    ("swapped out faults", `Quick, test_swapped_out_faults);
    ("sro accounting", `Quick, test_sro_allocate_updates_accounting);
    ("sro exhaustion", `Quick, test_sro_exhaustion);
    ("sro release and reuse", `Quick, test_sro_release_and_reuse);
    ("sro coalescing", `Quick, test_sro_coalescing);
    ("sro first fit fragmentation", `Quick, test_sro_first_fit_fragmentation);
    ("sro foreign release rejected", `Quick, test_sro_foreign_release_rejected);
    ("sro needs allocate right", `Quick, test_sro_needs_allocate_right);
    ("sro destroy bulk", `Quick, test_sro_destroy_bulk);
    ("sro destroyed rejects use", `Quick, test_sro_destroyed_rejects_use);
    ("sro child tree", `Quick, test_sro_child_tree);
    ("sro destroy cascades", `Quick, test_sro_destroy_cascades);
    ("sro child needs allocate right", `Quick, test_sro_child_needs_allocate_right);
    ("sro child exhausts parent", `Quick, test_sro_child_exhausts_parent);
    ("sro zero length object", `Quick, test_sro_zero_length_object);
    ("sro donate carve", `Quick, test_sro_donate_carve);
    ("typedef seal and check", `Quick, test_typedef_seal_and_check);
    ("typedef distinct types", `Quick, test_typedef_distinct_types);
    ("typedef seal requires right", `Quick, test_typedef_seal_requires_right);
    ("typedef seal generic only", `Quick, test_typedef_seal_generic_only);
    ("typedef amplify", `Quick, test_typedef_amplify);
    ("typedef amplify requires manager right", `Quick,
     test_typedef_amplify_requires_manager_right);
    ("typedef amplify checks type", `Quick, test_typedef_amplify_checks_type);
    ("typedef filter port registry", `Quick, test_typedef_filter_port_registry);
    QCheck_alcotest.to_alcotest prop_sro_accounting;
    QCheck_alcotest.to_alcotest prop_rights_monotone;
  ]
