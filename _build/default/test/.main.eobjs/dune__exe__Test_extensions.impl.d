test/test_extensions.ml: Access Ada_tasks Alcotest Fault I432 I432_kernel Imax Interpose Levels List Obj_type Object_table Option Printf Segment Sro System
