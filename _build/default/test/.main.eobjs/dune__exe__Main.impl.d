test/main.ml: Alcotest Test_arch Test_extensions Test_gc Test_imax Test_integration Test_kernel Test_units Test_util
