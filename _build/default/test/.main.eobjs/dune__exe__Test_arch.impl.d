test/test_arch.ml: Access Alcotest Bytes Fault I432 List Memory Obj_type Object_table QCheck2 QCheck_alcotest Rights Segment Sro Type_def
