test/main.mli:
