test/test_util.ml: Alcotest Array Fun I432_util List Printf Prng QCheck2 QCheck_alcotest Queue Ring_buffer Stats String Table
