test/test_gc.ml: Access Alcotest Array I432 I432_gc I432_kernel List Obj_type Object_table QCheck2 QCheck_alcotest Segment Type_def
