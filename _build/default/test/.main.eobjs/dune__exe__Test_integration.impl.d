test/test_integration.ml: Ada_tasks Alcotest Device_io I432 I432_gc I432_kernel Imax List Memory_manager Obj_type Option Printf Process_manager Scheduler String System Untyped_ports
