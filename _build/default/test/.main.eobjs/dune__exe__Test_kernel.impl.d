test/test_kernel.ml: Access Alcotest Array Fault I432 I432_kernel List Obj_type Object_table Printf QCheck2 QCheck_alcotest Rights Segment String Timings
