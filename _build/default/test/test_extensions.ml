(* Tests for the extended surface: context objects (activation records with
   levels), fault ports, the Ada rendezvous layer, interface interposition,
   and the §7.3 level discipline. *)

open I432
open Imax
module K = I432_kernel

let mk ?(processors = 1) () =
  K.Machine.create
    ~config:{ K.Machine.default_config with K.Machine.processors }
    ()

let boot ?(processors = 1) () =
  System.boot ~config:{ System.default_config with System.processors } ()

(* ---------------- Context objects ---------------- *)

let test_context_create_destroy () =
  let m = mk () in
  let table = K.Machine.table m in
  let ctx =
    K.Context.create table (K.Machine.global_sro m) ~depth:1 ~caller:None
      ~slots:4
  in
  Alcotest.(check int) "depth" 1 (K.Context.depth table ctx);
  Alcotest.(check bool) "no caller" true (K.Context.caller table ctx = None);
  Alcotest.(check bool) "typed as context" true
    (Obj_type.equal (Segment.otype table ctx) Obj_type.Context);
  K.Context.destroy table ctx;
  Alcotest.(check bool) "descriptor freed" false
    (Object_table.is_valid table (Access.index ctx))

let test_context_double_destroy () =
  let m = mk () in
  let table = K.Machine.table m in
  let ctx =
    K.Context.create table (K.Machine.global_sro m) ~depth:1 ~caller:None
      ~slots:4
  in
  K.Context.destroy table ctx;
  Alcotest.(check bool) "second destroy faults" true
    (match K.Context.destroy table ctx with
    | () -> false
    | exception Fault.Fault _ -> true)

let test_context_locals_level_rule () =
  (* A deeper context's object may not be parked in a shallower context. *)
  let m = mk () in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let shallow = K.Context.create table sro ~depth:1 ~caller:None ~slots:4 in
  let deep_sro = Sro.create table ~level:3 ~base:(1 lsl 21) ~length:4096 in
  let deep_obj =
    Sro.allocate table deep_sro ~data_length:16 ~access_length:0
      ~otype:Obj_type.Generic
  in
  Alcotest.(check bool) "level rule enforced" true
    (match K.Context.set_local table shallow ~slot:0 (Some deep_obj) with
    | () -> false
    | exception Fault.Fault (Fault.Level_violation _) -> true);
  (* The other direction is fine. *)
  let deep_ctx = K.Context.create table sro ~depth:3 ~caller:None ~slots:4 in
  let global_obj = K.Machine.allocate_generic m () in
  K.Context.set_local table deep_ctx ~slot:0 (Some global_obj);
  Alcotest.(check bool) "global into deep ok" true
    (K.Context.get_local table deep_ctx ~slot:0 <> None)

let test_call_in_context_nesting () =
  let m = mk () in
  let table = K.Machine.table m in
  let depths = ref [] in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         K.Machine.call_in_context m (fun outer ->
             depths := K.Context.depth table outer :: !depths;
             K.Machine.call_in_context m (fun inner ->
                 depths := K.Context.depth table inner :: !depths;
                 Alcotest.(check (option int))
                   "inner's caller is outer"
                   (Some (Access.index outer))
                   (K.Context.caller table inner)))));
  let _ = K.Machine.run m in
  Alcotest.(check (list int)) "depths 1 then 2" [ 1; 2 ] (List.rev !depths)

let test_call_in_context_cleans_up () =
  let m = mk () in
  let table = K.Machine.table m in
  let before = Object_table.count_valid table in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         K.Machine.call_in_context m (fun _ -> ());
         K.Machine.call_in_context m (fun _ -> ())));
  let _ = K.Machine.run m in
  (* Only the process object itself remains beyond the baseline. *)
  Alcotest.(check int) "contexts freed" (before + 1)
    (Object_table.count_valid table)

let test_call_in_context_outside_process () =
  let m = mk () in
  Alcotest.(check bool) "refused outside process" true
    (match K.Machine.call_in_context m (fun _ -> ()) with
    | () -> false
    | exception Fault.Fault (Fault.Protocol _) -> true)

let test_current_context () =
  let m = mk () in
  let saw = ref None in
  ignore
    (K.Machine.spawn m ~name:"p" (fun () ->
         K.Machine.call_in_context m (fun ctx ->
             saw :=
               Option.map
                 (fun c -> Access.index c = Access.index ctx)
                 (K.Machine.current_context m))));
  let _ = K.Machine.run m in
  Alcotest.(check (option bool)) "current context visible" (Some true) !saw

(* ---------------- Fault ports ---------------- *)

let test_fault_port_delivery () =
  let m = mk () in
  let fault_port = K.Machine.create_port m ~capacity:4 ~discipline:K.Port.Fifo () in
  K.Machine.set_fault_port m fault_port;
  let victim = K.Machine.allocate_generic m ~data_length:8 () in
  ignore
    (K.Machine.spawn m ~name:"crasher" (fun () ->
         ignore (K.Machine.read_word m victim ~offset:999)));
  let seen = ref None in
  ignore
    (K.Machine.spawn m ~name:"supervisor" (fun () ->
         let corpse = K.Machine.receive m ~port:fault_port in
         let st = K.Machine.process_state m corpse in
         seen := Some st.K.Process.name));
  let _ = K.Machine.run m in
  Alcotest.(check (option string)) "corpse delivered" (Some "crasher") !seen

let test_fault_port_multiple () =
  let m = mk () in
  let fault_port = K.Machine.create_port m ~capacity:8 ~discipline:K.Port.Fifo () in
  K.Machine.set_fault_port m fault_port;
  for i = 1 to 3 do
    ignore
      (K.Machine.spawn m ~name:(Printf.sprintf "c%d" i) (fun () ->
           Fault.raise_fault (Fault.Protocol "bang")))
  done;
  let names = ref [] in
  ignore
    (K.Machine.spawn m ~name:"supervisor" ~priority:1 (fun () ->
         for _ = 1 to 3 do
           let corpse = K.Machine.receive m ~port:fault_port in
           names := (K.Machine.process_state m corpse).K.Process.name :: !names
         done));
  let _ = K.Machine.run m in
  Alcotest.(check int) "three corpses" 3 (List.length !names)

let test_fault_port_requires_port () =
  let m = mk () in
  let not_port = K.Machine.allocate_generic m () in
  Alcotest.(check bool) "rejects non-port" true
    (match K.Machine.set_fault_port m not_port with
    | () -> false
    | exception Fault.Fault (Fault.Type_mismatch _) -> true)

(* ---------------- Ada tasks ---------------- *)

let test_rendezvous_roundtrip () =
  let sys = boot () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"double" () in
  ignore
    (Ada_tasks.create_task m ~name:"server" (fun () ->
         Ada_tasks.accept e ~body:(fun parameter ->
             let v = K.Machine.read_word m parameter ~offset:0 in
             K.Machine.write_word m parameter ~offset:0 (2 * v);
             parameter)));
  let result = ref 0 in
  ignore
    (Ada_tasks.create_task m ~name:"client" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.write_word m x ~offset:0 21;
         let r = Ada_tasks.call e ~parameter:x in
         result := K.Machine.read_word m r ~offset:0));
  let report = System.run sys in
  Alcotest.(check int) "doubled" 42 !result;
  Alcotest.(check (list string)) "no deadlock" [] report.K.Machine.deadlocked;
  Alcotest.(check int) "one call" 1 (Ada_tasks.call_count e);
  Alcotest.(check int) "one accept" 1 (Ada_tasks.accept_count e)

let test_rendezvous_caller_blocks_until_reply () =
  (* The caller must not proceed before the server replies: server delays,
     caller's completion time must reflect it. *)
  let sys = boot ~processors:2 () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"slow" () in
  let order = ref [] in
  ignore
    (Ada_tasks.create_task m ~name:"server" (fun () ->
         Ada_tasks.accept e ~body:(fun p ->
             K.Machine.delay m ~ns:5_000_000;
             order := "served" :: !order;
             p)));
  ignore
    (Ada_tasks.create_task m ~name:"client" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         ignore (Ada_tasks.call e ~parameter:x);
         order := "returned" :: !order));
  let _ = System.run sys in
  Alcotest.(check (list string)) "rendezvous order" [ "served"; "returned" ]
    (List.rev !order)

let test_rendezvous_fifo_service () =
  let sys = boot () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"entry" () in
  let served = ref [] in
  ignore
    (Ada_tasks.create_task m ~name:"server" ~priority:1 (fun () ->
         for _ = 1 to 3 do
           Ada_tasks.accept e ~body:(fun p ->
               served := K.Machine.read_word m p ~offset:0 :: !served;
               p)
         done));
  for i = 1 to 3 do
    ignore
      (Ada_tasks.create_task m ~name:(Printf.sprintf "client%d" i) ~priority:(10 - i)
         (fun () ->
           let x = K.Machine.allocate_generic m ~data_length:8 () in
           K.Machine.write_word m x ~offset:0 i;
           ignore (Ada_tasks.call e ~parameter:x)))
  done;
  let _ = System.run sys in
  Alcotest.(check (list int)) "calls served in queue order" [ 1; 2; 3 ]
    (List.rev !served)

let test_try_accept_else_branch () =
  let sys = boot () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"entry" () in
  let took_else = ref false in
  ignore
    (Ada_tasks.create_task m ~name:"server" (fun () ->
         if not (Ada_tasks.try_accept e ~body:(fun p -> p)) then
           took_else := true));
  let _ = System.run sys in
  Alcotest.(check bool) "else branch taken" true !took_else

let test_select_two_entries () =
  let sys = boot () in
  let m = System.machine sys in
  let a = Ada_tasks.create_entry m ~name:"a" () in
  let b = Ada_tasks.create_entry m ~name:"b" () in
  let hits = ref [] in
  ignore
    (Ada_tasks.create_task m ~name:"server" ~priority:1 (fun () ->
         for _ = 1 to 2 do
           ignore
             (Ada_tasks.select
                [
                  (a, fun p -> hits := "a" :: !hits; p);
                  (b, fun p -> hits := "b" :: !hits; p);
                ])
         done));
  ignore
    (Ada_tasks.create_task m ~name:"caller-b" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         ignore (Ada_tasks.call b ~parameter:x)));
  ignore
    (Ada_tasks.create_task m ~name:"caller-a" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         ignore (Ada_tasks.call a ~parameter:x)));
  let report = System.run sys in
  Alcotest.(check (list string)) "no deadlock" [] report.K.Machine.deadlocked;
  Alcotest.(check int) "both served" 2 (List.length !hits);
  Alcotest.(check bool) "one of each" true
    (List.mem "a" !hits && List.mem "b" !hits)

let test_select_timeout () =
  let sys = boot () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"never" () in
  let result = ref true in
  ignore
    (Ada_tasks.create_task m ~name:"server" (fun () ->
         result := Ada_tasks.select ~until:2_000_000 [ (e, fun p -> p) ]));
  let _ = System.run sys in
  Alcotest.(check bool) "timed out without accepting" false !result

(* ---------------- Interposition ---------------- *)

let test_interposer_transparent () =
  let sys = boot () in
  let m = System.machine sys in
  let (module Ports), trace = Interpose.wrap (module Interpose.Real) in
  let prt = Ports.create_port m ~message_count:4 () in
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.write_word m o ~offset:0 5;
         Ports.send m ~prt ~msg:o));
  ignore
    (K.Machine.spawn m ~name:"r" (fun () ->
         got := K.Machine.read_word m (Ports.receive m ~prt) ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "payload intact" 5 !got;
  Alcotest.(check int) "trace has send+receive" 2 (List.length (trace ()))

let test_interposer_censors () =
  let sys = boot () in
  let m = System.machine sys in
  let hooks =
    {
      Interpose.default_hooks with
      Interpose.on_send =
        (fun msg ->
          if K.Machine.read_word m msg ~offset:0 < 0 then None else Some msg);
    }
  in
  let (module Ports), trace = Interpose.wrap ~hooks (module Interpose.Real) in
  let prt = Ports.create_port m ~message_count:8 () in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         List.iter
           (fun v ->
             let o = K.Machine.allocate_generic m ~data_length:8 () in
             K.Machine.write_word m o ~offset:0 v;
             Ports.send m ~prt ~msg:o)
           [ 1; -2; 3 ]));
  let got = ref [] in
  ignore
    (K.Machine.spawn m ~name:"r" (fun () ->
         for _ = 1 to 2 do
           got := K.Machine.read_word m (Ports.receive m ~prt) ~offset:0 :: !got
         done));
  let _ = System.run sys in
  Alcotest.(check (list int)) "censored stream" [ 1; 3 ] (List.rev !got);
  let dropped =
    List.length
      (List.filter
         (function Interpose.Dropped _ -> true | _ -> false)
         (trace ()))
  in
  Alcotest.(check int) "one dropped" 1 dropped

let test_interposer_receive_hook_transforms () =
  (* The on_receive hook can rewrite what the wrapped code sees — here it
     substitutes a sanitized copy for every delivered message. *)
  let sys = boot () in
  let m = System.machine sys in
  let hooks =
    {
      Interpose.default_hooks with
      Interpose.on_receive =
        (fun msg ->
          let copy = K.Machine.allocate_generic m ~data_length:8 () in
          K.Machine.write_word m copy ~offset:0
            (1000 + K.Machine.read_word m msg ~offset:0);
          copy);
    }
  in
  let (module Ports), _ = Interpose.wrap ~hooks (module Interpose.Real) in
  let prt = Ports.create_port m ~message_count:4 () in
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m ~data_length:8 () in
         K.Machine.write_word m o ~offset:0 7;
         Ports.send m ~prt ~msg:o));
  ignore
    (K.Machine.spawn m ~name:"r" (fun () ->
         got := K.Machine.read_word m (Ports.receive m ~prt) ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "receiver sees the transformed message" 1007 !got

let test_interposers_stack () =
  let sys = boot () in
  let m = System.machine sys in
  let (module Audited), counts = Interpose.auditor (module Interpose.Real) in
  let (module Stacked), _ = Interpose.wrap (module Audited) in
  let prt = Stacked.create_port m ~message_count:4 () in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m () in
         Stacked.send m ~prt ~msg:o));
  ignore
    (K.Machine.spawn m ~name:"r" (fun () -> ignore (Stacked.receive m ~prt)));
  let _ = System.run sys in
  Alcotest.(check (pair int int)) "inner auditor saw traffic" (1, 1) (counts ())

(* ---------------- Levels discipline ---------------- *)

let test_levels_roundtrip () =
  List.iter
    (fun (l, n) ->
      Alcotest.(check int) "to_int" n (Levels.to_int l);
      Alcotest.(check string) "of_int . to_int" (Levels.to_string l)
        (Levels.to_string (Levels.of_int n)))
    [ (Levels.Level1, 1); (Levels.Level2, 2); (Levels.Level3, 3); (Levels.User, 4) ]

let test_levels_fault_rules () =
  let timeout = Fault.Protocol "timeout waiting for device" in
  let bounds = Fault.Bounds { part = "data"; offset = 1; length = 0 } in
  Alcotest.(check bool) "L1 never faults" false (Levels.may_fault Levels.Level1 timeout);
  Alcotest.(check bool) "L2 timeout ok" true (Levels.may_fault Levels.Level2 timeout);
  Alcotest.(check bool) "L2 bounds not ok" false (Levels.may_fault Levels.Level2 bounds);
  Alcotest.(check bool) "L3 anything" true (Levels.may_fault Levels.Level3 bounds);
  Alcotest.(check bool) "user anything" true (Levels.may_fault Levels.User bounds)

let test_levels_async_boundary () =
  Alcotest.(check bool) "2->3 async" true
    (Levels.must_be_asynchronous ~src:Levels.Level2 ~dst:Levels.Level3);
  Alcotest.(check bool) "3->2 async" true
    (Levels.must_be_asynchronous ~src:Levels.Level3 ~dst:Levels.Level2);
  Alcotest.(check bool) "1->2 may be sync" false
    (Levels.must_be_asynchronous ~src:Levels.Level1 ~dst:Levels.Level2);
  Alcotest.(check bool) "user->user may be sync" false
    (Levels.must_be_asynchronous ~src:Levels.User ~dst:Levels.User)

let test_levels_no_upward_reply_dependency () =
  Alcotest.(check bool) "2 must not await 3" false
    (Levels.may_await_reply ~src:Levels.Level2 ~dst:Levels.Level3);
  Alcotest.(check bool) "3 may await 4" true
    (Levels.may_await_reply ~src:Levels.Level3 ~dst:Levels.User)

let test_levels_spawn_panic_rule () =
  let m = mk () in
  ignore
    (Levels.spawn m ~level:Levels.Level2 ~name:"sys2" (fun () ->
         Fault.raise_fault (Fault.Bounds { part = "data"; offset = 0; length = 0 })));
  Alcotest.(check bool) "level-2 fault panics the machine" true
    (match K.Machine.run m with
    | _ -> false
    | exception K.Machine.Kernel_panic _ -> true)

let test_levels_async_notify () =
  let m = mk () in
  let port = K.Machine.create_port m ~capacity:1 ~discipline:K.Port.Fifo () in
  let results = ref [] in
  ignore
    (Levels.spawn m ~level:Levels.Level2 ~name:"notifier" (fun () ->
         let msg = K.Machine.allocate_generic m () in
         (* First fits; second must be refused, never blocked on. *)
         results := Levels.async_notify m ~src:Levels.Level2 ~port ~msg :: !results;
         results := Levels.async_notify m ~src:Levels.Level2 ~port ~msg :: !results));
  let r = K.Machine.run m in
  Alcotest.(check (list bool)) "non-blocking posts" [ true; false ] (List.rev !results);
  Alcotest.(check (list string)) "notifier never blocked" [] r.K.Machine.deadlocked

let test_levels_sync_call_guard () =
  let sys = boot () in
  let m = System.machine sys in
  let e = Ada_tasks.create_entry m ~name:"service" () in
  let refused = ref false in
  ignore
    (Levels.spawn m ~level:Levels.Level2 ~name:"caller" (fun () ->
         let x = K.Machine.allocate_generic m () in
         match
           Levels.sync_call m ~src:Levels.Level2 ~dst:Levels.Level3 ~entry:e
             ~parameter:x
         with
        | _ -> ()
        | exception Levels.Discipline_violation _ -> refused := true));
  let _ = System.run sys in
  Alcotest.(check bool) "upward sync call refused" true !refused

let suite =
  [
    ("context create/destroy", `Quick, test_context_create_destroy);
    ("context double destroy", `Quick, test_context_double_destroy);
    ("context locals level rule", `Quick, test_context_locals_level_rule);
    ("call_in_context nesting", `Quick, test_call_in_context_nesting);
    ("call_in_context cleans up", `Quick, test_call_in_context_cleans_up);
    ("call_in_context outside process", `Quick, test_call_in_context_outside_process);
    ("current context", `Quick, test_current_context);
    ("fault port delivery", `Quick, test_fault_port_delivery);
    ("fault port multiple", `Quick, test_fault_port_multiple);
    ("fault port requires port", `Quick, test_fault_port_requires_port);
    ("rendezvous roundtrip", `Quick, test_rendezvous_roundtrip);
    ("rendezvous caller blocks until reply", `Quick,
     test_rendezvous_caller_blocks_until_reply);
    ("rendezvous fifo service", `Quick, test_rendezvous_fifo_service);
    ("try_accept else branch", `Quick, test_try_accept_else_branch);
    ("select two entries", `Quick, test_select_two_entries);
    ("select timeout", `Quick, test_select_timeout);
    ("interposer transparent", `Quick, test_interposer_transparent);
    ("interposer censors", `Quick, test_interposer_censors);
    ("interposer receive hook transforms", `Quick,
     test_interposer_receive_hook_transforms);
    ("interposers stack", `Quick, test_interposers_stack);
    ("levels roundtrip", `Quick, test_levels_roundtrip);
    ("levels fault rules", `Quick, test_levels_fault_rules);
    ("levels async boundary", `Quick, test_levels_async_boundary);
    ("levels no upward reply dependency", `Quick,
     test_levels_no_upward_reply_dependency);
    ("levels spawn panic rule", `Quick, test_levels_spawn_panic_rule);
    ("levels async notify", `Quick, test_levels_async_notify);
    ("levels sync call guard", `Quick, test_levels_sync_call_guard);
  ]
