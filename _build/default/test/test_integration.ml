(* Full-system integration: boot the richest configuration (multiprocessor,
   fair-share scheduling, swapping memory manager, GC daemon, devices) and
   run a combined workload, then assert global invariants across every
   subsystem at once. *)

open I432
open Imax
module K = I432_kernel

let rich_config =
  {
    System.default_config with
    System.processors = 3;
    memory_manager = System.Swapping_lru;
    heap_bytes = 64 * 1024;
    scheduling = Scheduler.Fair_share;
    run_gc_daemon = true;
    gc_config =
      {
        I432_gc.Collector.default_config with
        I432_gc.Collector.idle_sleep_ns = 500_000;
      };
  }

let test_everything_at_once () =
  let sys = System.boot ~config:rich_config () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let sched = System.scheduler sys in
  let table = K.Machine.table m in

  (* Devices: a tape farm whose drives will be leaked and recovered. *)
  let farm = Device_io.create_tape_farm m ~drives:4 in

  (* IPC fabric: a work port and an Ada entry. *)
  let work = Untyped_ports.create_port m ~message_count:8 () in
  let entry = Ada_tasks.create_entry m ~name:"service" () in

  (* Users under fair-share accounting. *)
  let alice = Scheduler.add_group sched "alice" in
  let bob = Scheduler.add_group sched "bob" in

  let produced = ref 0 and consumed = ref 0 and served = ref 0 in

  (* Producer (alice): allocates from the selected memory manager and
     sends through the port. *)
  let producer =
    Process_manager.create_process pm ~name:"producer" ~priority:12 (fun () ->
        for i = 1 to 30 do
          let o =
            System.mm_allocate sys ~data_length:128 ~access_length:0
              ~otype:Obj_type.Generic
          in
          System.mm_touch sys o;
          K.Machine.write_word m o ~offset:0 i;
          Untyped_ports.send m ~prt:work ~msg:o;
          incr produced
        done)
  in
  Scheduler.enroll sched alice producer;

  (* Consumer (bob): receives, computes, frees explicitly half the time so
     the GC daemon has the other half to find. *)
  let consumer =
    Process_manager.create_process pm ~name:"consumer" ~priority:4 (fun () ->
        for i = 1 to 30 do
          let msg = Untyped_ports.receive m ~prt:work in
          K.Machine.compute m 8;
          consumed := !consumed + K.Machine.read_word m msg ~offset:0;
          if i mod 2 = 0 then System.mm_free sys msg
        done)
  in
  Scheduler.enroll sched bob consumer;

  (* A rendezvous server plus a client making entry calls. *)
  ignore
    (Process_manager.create_process pm ~name:"server" (fun () ->
         for _ = 1 to 10 do
           Ada_tasks.accept entry ~body:(fun p ->
               incr served;
               p)
         done));
  ignore
    (Process_manager.create_process pm ~name:"rpc-client" (fun () ->
         let x = K.Machine.allocate_generic m ~data_length:8 () in
         for _ = 1 to 10 do
           ignore (Ada_tasks.call entry ~parameter:x)
         done));

  (* A careless tape user, and a recovery process that runs afterwards. *)
  ignore
    (Process_manager.create_process pm ~name:"tape-user" (fun () ->
         match Device_io.acquire_drive farm with
         | Some h ->
           let (module T) = Device_io.device_of farm h in
           T.write "nightly";
           K.Machine.compute m 40
         | None -> ()));

  let report1 = System.run sys in
  Alcotest.(check (list string)) "no deadlock" [] report1.K.Machine.deadlocked;
  Alcotest.(check int) "all produced" 30 !produced;
  Alcotest.(check int) "payload conserved" (30 * 31 / 2) !consumed;
  Alcotest.(check int) "all rendezvous served" 10 !served;
  Alcotest.(check int) "machine panic-free faults" 0 report1.K.Machine.faulted;

  (* Recovery pass: one explicit GC cycle then drain the farm's filter. *)
  let collector = Option.get (System.collector sys) in
  let recovered = ref 0 in
  ignore
    (Process_manager.create_process pm ~name:"janitor" (fun () ->
         ignore (I432_gc.Collector.cycle collector);
         recovered := Device_io.recover_lost_drives farm;
         ignore (Process_manager.recover_lost_processes pm)));
  let _ = System.run sys in
  Alcotest.(check int) "lost drive recovered" 1 !recovered;
  Alcotest.(check int) "full pool" 4 (Device_io.free_drive_count farm);

  (* Global snapshot invariants. *)
  let snap = K.Snapshot.capture m in
  Alcotest.(check int) "three processors" 3 (List.length snap.K.Snapshot.processors);
  Alcotest.(check bool) "every processor was used" true
    (List.for_all
       (fun c -> c.K.Snapshot.c_busy_ns > 0)
       snap.K.Snapshot.processors);
  Alcotest.(check bool) "GC daemon reclaimed garbage" true
    ((I432_gc.Collector.stats collector).I432_gc.Collector.swept > 0);
  Alcotest.(check bool) "swapper exercised" true
    ((System.mm_stats sys).Memory_manager.swap_outs >= 0);
  Alcotest.(check bool) "collector marked live objects" true
    ((I432_gc.Collector.stats collector).I432_gc.Collector.marked > 0);
  (* The capability system never fabricated descriptors: every live object
     is within table capacity. *)
  Alcotest.(check bool) "table consistent" true
    (snap.K.Snapshot.objects_live <= snap.K.Snapshot.table_capacity);
  ignore table

let test_rerun_determinism_rich_config () =
  (* The whole rich system, run twice, must produce identical traces. *)
  let run () =
    let sys = System.boot ~config:rich_config () in
    let m = System.machine sys in
    let pm = System.process_manager sys in
    let port = Untyped_ports.create_port m ~message_count:4 () in
    let acc = ref 0 in
    for i = 1 to 4 do
      ignore
        (Process_manager.create_process pm ~name:(Printf.sprintf "w%d" i)
           (fun () ->
             for j = 1 to 10 do
               let o = K.Machine.allocate_generic m ~data_length:16 () in
               K.Machine.write_word m o ~offset:0 (i * j);
               Untyped_ports.send m ~prt:port ~msg:o
             done))
    done;
    ignore
      (Process_manager.create_process pm ~name:"sink" (fun () ->
           for _ = 1 to 40 do
             let msg = Untyped_ports.receive m ~prt:port in
             acc := (!acc * 17) + K.Machine.read_word m msg ~offset:0
           done));
    let r = System.run sys in
    (!acc, r.K.Machine.elapsed_ns, r.K.Machine.dispatches)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_snapshot_renders () =
  let sys = System.boot () in
  let m = System.machine sys in
  ignore
    (K.Machine.spawn m ~name:"worker" (fun () -> K.Machine.compute m 100));
  let _ = System.run sys in
  let snap = K.Snapshot.capture m in
  let text = K.Snapshot.render snap in
  Alcotest.(check bool) "mentions the worker" true
    (let contains s sub =
       let n = String.length s and m' = String.length sub in
       let rec go i = i + m' <= n && (String.sub s i m' = sub || go (i + 1)) in
       go 0
     in
     contains text "worker" && contains text "cpu0")

let suite =
  [
    ("everything at once", `Quick, test_everything_at_once);
    ("rerun determinism rich config", `Quick, test_rerun_determinism_rich_config);
    ("snapshot renders", `Quick, test_snapshot_renders);
  ]
