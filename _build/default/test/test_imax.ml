(* Tests for the iMAX layer: untyped/typed ports (Figures 1-2), the basic
   process manager (nested stop/start over trees, including a qcheck storm),
   schedulers, both memory managers, device-independent I/O, and object
   filing. *)

open I432
open Imax
module K = I432_kernel

let boot ?(processors = 1) ?(scheduling = Scheduler.Null)
    ?(memory_manager = System.Non_swapping) ?(heap_bytes = 1 lsl 20) () =
  System.boot
    ~config:
      {
        System.default_config with
        System.processors;
        scheduling;
        memory_manager;
        heap_bytes;
      }
    ()

(* ---------------- Untyped ports (Figure 1) ---------------- *)

let test_untyped_roundtrip () =
  let sys = boot () in
  let m = System.machine sys in
  let prt = Untyped_ports.create_port m ~message_count:4 () in
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m () in
         K.Machine.write_word m o ~offset:0 99;
         Untyped_ports.send m ~prt ~msg:o));
  ignore
    (K.Machine.spawn m ~name:"r" (fun () ->
         let msg = Untyped_ports.receive m ~prt in
         got := K.Machine.read_word m msg ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "payload" 99 !got

let test_untyped_message_count_bounds () =
  let sys = boot () in
  let m = System.machine sys in
  Alcotest.(check bool) "zero rejected" true
    (match Untyped_ports.create_port m ~message_count:0 () with
    | _ -> false
    | exception Fault.Fault _ -> true);
  Alcotest.(check bool) "too large rejected" true
    (match
       Untyped_ports.create_port m
         ~message_count:(Untyped_ports.max_msg_cnt + 1)
         ()
     with
    | _ -> false
    | exception Fault.Fault _ -> true)

let test_untyped_send_only_view () =
  let sys = boot () in
  let m = System.machine sys in
  let prt = Untyped_ports.create_port m () in
  let tx = Untyped_ports.send_only prt in
  let rx = Untyped_ports.receive_only prt in
  ignore
    (K.Machine.spawn m ~name:"cannot-receive" (fun () ->
         ignore (Untyped_ports.receive m ~prt:tx)));
  let r1 = System.run sys in
  Alcotest.(check int) "receive via tx faults" 1 r1.K.Machine.faulted;
  ignore
    (K.Machine.spawn m ~name:"cannot-send" (fun () ->
         let o = K.Machine.allocate_generic m () in
         Untyped_ports.send m ~prt:rx ~msg:o));
  let r2 = System.run sys in
  Alcotest.(check int) "send via rx faults" 2 (r1.K.Machine.faulted + r2.K.Machine.faulted - 1)

(* ---------------- Typed ports (Figure 2) ---------------- *)

module Int_message = struct
  (* A user message type with its own 432 representation: an object holding
     one word.  The conversions are this instance's unchecked_conversions. *)
  type t = Access.t

  let to_access t = t
  let of_access a = a
end

module Int_ports = Typed_ports.Make (Int_message)

let test_typed_roundtrip () =
  let sys = boot () in
  let m = System.machine sys in
  let prt = Int_ports.create m ~message_count:4 () in
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"s" (fun () ->
         let o = K.Machine.allocate_generic m () in
         K.Machine.write_word m o ~offset:0 123;
         Int_ports.send m ~prt ~msg:o));
  ignore
    (K.Machine.spawn m ~name:"r" (fun () ->
         let msg = Int_ports.receive m ~prt in
         got := K.Machine.read_word m msg ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "payload" 123 !got

let test_typed_identical_cost_to_untyped () =
  (* The paper's zero-overhead claim: the generated operations are identical
     to the untyped ones, so virtual cost per message must be equal. *)
  let run_untyped () =
    let sys = boot () in
    let m = System.machine sys in
    let prt = Untyped_ports.create_port m ~message_count:8 () in
    let sender =
      K.Machine.spawn m ~name:"s" (fun () ->
          for _ = 1 to 50 do
            let o = K.Machine.allocate_generic m () in
            Untyped_ports.send m ~prt ~msg:o
          done)
    in
    ignore
      (K.Machine.spawn m ~name:"r" (fun () ->
           for _ = 1 to 50 do
             ignore (Untyped_ports.receive m ~prt)
           done));
    let _ = System.run sys in
    (K.Machine.process_state m sender).K.Process.cpu_ns
  in
  let run_typed () =
    let sys = boot () in
    let m = System.machine sys in
    let prt = Int_ports.create m ~message_count:8 () in
    let sender =
      K.Machine.spawn m ~name:"s" (fun () ->
          for _ = 1 to 50 do
            let o = K.Machine.allocate_generic m () in
            Int_ports.send m ~prt ~msg:o
          done)
    in
    ignore
      (K.Machine.spawn m ~name:"r" (fun () ->
           for _ = 1 to 50 do
             ignore (Int_ports.receive m ~prt)
           done));
    let _ = System.run sys in
    (K.Machine.process_state m sender).K.Process.cpu_ns
  in
  Alcotest.(check int) "identical virtual cost" (run_untyped ()) (run_typed ())

let test_checked_ports_enforce_type () =
  let sys = boot () in
  let m = System.machine sys in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let td = Type_def.create table sro ~name:"msg_t" in
  let module Checked =
    Typed_ports.Make_checked (struct
      let machine = m
      let typedef = td
    end)
  in
  let prt = Checked.create m ~message_count:4 () in
  let ok = ref false in
  ignore
    (K.Machine.spawn m ~name:"good" (fun () ->
         let inst =
           Type_def.create_instance table td sro ~data_length:8 ~access_length:0
         in
         Checked.send m ~prt ~msg:inst;
         ok := Checked.receive m ~prt |> fun _ -> true));
  let r1 = System.run sys in
  Alcotest.(check int) "sealed message accepted" 0 r1.K.Machine.faulted;
  Alcotest.(check bool) "roundtrip" true !ok;
  ignore
    (K.Machine.spawn m ~name:"bad" (fun () ->
         let plain = K.Machine.allocate_generic m () in
         Checked.send m ~prt ~msg:plain));
  let r2 = System.run sys in
  Alcotest.(check int) "unsealed message faults" 1 r2.K.Machine.faulted

(* ---------------- Process manager ---------------- *)

let test_pm_tree_stop_start () =
  let sys = boot () in
  let pm = System.process_manager sys in
  let hits = ref [] in
  let parent =
    Process_manager.create_process pm ~name:"parent" (fun () ->
        hits := "parent" :: !hits)
  in
  let child =
    Process_manager.create_process pm ~parent ~name:"child" (fun () ->
        hits := "child" :: !hits)
  in
  ignore child;
  Process_manager.stop pm parent;
  let _ = System.run sys in
  Alcotest.(check (list string)) "nothing ran while stopped" [] !hits;
  Process_manager.start pm parent;
  let _ = System.run sys in
  Alcotest.(check int) "both ran after start" 2 (List.length !hits)

let test_pm_nested_counts () =
  let sys = boot () in
  let pm = System.process_manager sys in
  let p = Process_manager.create_process pm ~name:"p" (fun () -> ()) in
  Process_manager.stop pm p;
  Process_manager.stop pm p;
  Alcotest.(check int) "count 2" 2 (Process_manager.stop_count pm p);
  Process_manager.start pm p;
  Alcotest.(check bool) "still stopped" false (Process_manager.is_runnable pm p);
  Process_manager.start pm p;
  Alcotest.(check bool) "runnable" true (Process_manager.is_runnable pm p)

let test_pm_unbalanced_start_faults () =
  let sys = boot () in
  let pm = System.process_manager sys in
  let p = Process_manager.create_process pm ~name:"p" (fun () -> ()) in
  Alcotest.(check bool) "start without stop faults" true
    (match Process_manager.start pm p with
    | () -> false
    | exception Fault.Fault (Fault.Protocol _) -> true)

let test_pm_stop_subtree_only () =
  let sys = boot () in
  let pm = System.process_manager sys in
  let hits = ref [] in
  let parent =
    Process_manager.create_process pm ~name:"parent" (fun () ->
        hits := "parent" :: !hits)
  in
  let child =
    Process_manager.create_process pm ~parent ~name:"child" (fun () ->
        hits := "child" :: !hits)
  in
  (* Stopping the child subtree leaves the parent runnable. *)
  Process_manager.stop pm child;
  let _ = System.run sys in
  Alcotest.(check (list string)) "parent ran" [ "parent" ] !hits

let test_pm_recover_lost_processes () =
  let sys = boot () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  ignore (Process_manager.create_process pm ~name:"ephemeral" (fun () -> ()));
  let _ = System.run sys in
  let c = I432_gc.Collector.create m in
  let recovered = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"janitor" (fun () ->
         ignore (I432_gc.Collector.cycle c);
         recovered := Process_manager.recover_lost_processes pm));
  let _ = System.run sys in
  Alcotest.(check int) "one corpse recovered" 1 !recovered

(* qcheck: a random storm of stop/start pairs over a random tree keeps the
   invariant "runnable iff stop_count = 0", and counts never go negative. *)
let prop_stop_start_storm =
  QCheck2.Test.make ~name:"nested stop/start invariant under storms" ~count:50
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 1 60) (pair bool (int_range 0 5))))
    (fun (n_procs, storm) ->
      let sys = boot () in
      let pm = System.process_manager sys in
      let procs =
        Array.init n_procs (fun i ->
            let parent = if i = 0 then None else Some (Random.self_init (); i) in
            ignore parent;
            Process_manager.create_process pm
              ~name:(Printf.sprintf "p%d" i)
              (fun () -> ()))
      in
      (* Build a chain: p0 <- p1 <- ... (parents must exist first). *)
      let outstanding = Array.make n_procs 0 in
      List.iter
        (fun (is_stop, idx) ->
          let idx = idx mod n_procs in
          if is_stop then begin
            Process_manager.stop pm procs.(idx);
            outstanding.(idx) <- outstanding.(idx) + 1
          end
          else if outstanding.(idx) > 0 then begin
            Process_manager.start pm procs.(idx);
            outstanding.(idx) <- outstanding.(idx) - 1
          end)
        storm;
      let ok = ref true in
      Array.iteri
        (fun i p ->
          let count = Process_manager.stop_count pm p in
          if count <> outstanding.(i) then ok := false;
          if Process_manager.is_runnable pm p <> (count = 0) then ok := false)
        procs;
      !ok)

(* ---------------- Schedulers ---------------- *)

let test_fair_share_beats_null () =
  let run_policy policy =
    let sys = boot ~scheduling:policy () in
    let m = System.machine sys in
    let pm = System.process_manager sys in
    let sched = System.scheduler sys in
    let users =
      List.map
        (fun (name, prio) ->
          let g = Scheduler.add_group sched name in
          let p =
            Process_manager.create_process pm ~name ~priority:prio (fun () ->
                for _ = 1 to 200 do
                  K.Machine.compute m 10;
                  K.Machine.yield m
                done)
          in
          Scheduler.enroll sched g p;
          p)
        [ ("greedy", 14); ("meek", 2) ]
    in
    let _ = System.run sys ~max_ns:15_000_000 in
    List.map
      (fun p -> float_of_int (K.Machine.process_state m p).K.Process.cpu_ns)
      users
  in
  let null = I432_util.Stats.jain_fairness (Array.of_list (run_policy Scheduler.Null)) in
  let fair =
    I432_util.Stats.jain_fairness (Array.of_list (run_policy Scheduler.Fair_share))
  in
  Alcotest.(check bool)
    (Printf.sprintf "fair %.3f > null %.3f" fair null)
    true (fair > null)

let test_round_robin_equalizes () =
  let sys = boot ~scheduling:Scheduler.Round_robin () in
  let m = System.machine sys in
  let pm = System.process_manager sys in
  let sched = System.scheduler sys in
  let g = Scheduler.add_group sched "all" in
  let ps =
    List.map
      (fun (name, prio) ->
        let p =
          Process_manager.create_process pm ~name ~priority:prio (fun () ->
              for _ = 1 to 50 do
                K.Machine.compute m 10;
                K.Machine.yield m
              done)
        in
        Scheduler.enroll sched g p;
        p)
      [ ("a", 14); ("b", 2) ]
  in
  let _ = System.run sys in
  (* Round-robin enrollment flattened priorities; both finish. *)
  List.iter
    (fun p ->
      Alcotest.(check int) "priority flattened" 8
        (K.Machine.process_state m p).K.Process.priority)
    ps

(* ---------------- Memory managers ---------------- *)

let test_mm_common_interface_nonswapping () =
  let sys = boot ~memory_manager:System.Non_swapping () in
  Alcotest.(check string) "selected" "non-swapping" (System.mm_name sys);
  let a = System.mm_allocate sys ~data_length:64 ~access_length:0
      ~otype:Obj_type.Generic
  in
  System.mm_touch sys a;
  System.mm_free sys a;
  let st = System.mm_stats sys in
  Alcotest.(check int) "one allocation" 1 st.Memory_manager.allocations;
  Alcotest.(check int) "one free" 1 st.Memory_manager.frees

let test_mm_nonswapping_exhausts () =
  let sys = boot ~memory_manager:System.Non_swapping ~heap_bytes:4096 () in
  Alcotest.(check bool) "exhaustion faults" true
    (match
       List.init 200 (fun _ ->
           System.mm_allocate sys ~data_length:1024 ~access_length:0
             ~otype:Obj_type.Generic)
     with
    | _ -> false
    | exception Fault.Fault (Fault.Storage_exhausted _) -> true)

let test_mm_swapping_survives_overcommit () =
  let sys = boot ~memory_manager:System.Swapping_lru ~heap_bytes:8192 () in
  (* 32 KB of working set on an 8 KB heap: must succeed by swapping. *)
  let objs =
    List.init 32 (fun _ ->
        System.mm_allocate sys ~data_length:1024 ~access_length:0
          ~otype:Obj_type.Generic)
  in
  let st = System.mm_stats sys in
  Alcotest.(check int) "all allocations succeeded" 32 st.Memory_manager.allocations;
  Alcotest.(check bool) "swapped out" true (st.Memory_manager.swap_outs > 0);
  ignore objs

let test_mm_swapping_preserves_content () =
  let sys = boot ~memory_manager:System.Swapping_lru ~heap_bytes:4096 () in
  let m = System.machine sys in
  let first =
    System.mm_allocate sys ~data_length:1024 ~access_length:0
      ~otype:Obj_type.Generic
  in
  ignore
    (K.Machine.spawn m ~name:"writer" (fun () ->
         K.Machine.write_word m first ~offset:0 424242));
  let _ = System.run sys in
  (* Force eviction of [first]. *)
  let _rest =
    List.init 8 (fun _ ->
        System.mm_allocate sys ~data_length:1024 ~access_length:0
          ~otype:Obj_type.Generic)
  in
  let table = K.Machine.table m in
  let e = Object_table.entry_of_access table first in
  Alcotest.(check bool) "was swapped out" true e.Object_table.swapped_out;
  (* Touch to bring it back and verify content. *)
  System.mm_touch sys first;
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"reader" (fun () ->
         got := K.Machine.read_word m first ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "content preserved across swap" 424242 !got

let test_mm_swapping_faults_without_touch () =
  let sys = boot ~memory_manager:System.Swapping_lru ~heap_bytes:4096 () in
  let m = System.machine sys in
  let first =
    System.mm_allocate sys ~data_length:1024 ~access_length:0
      ~otype:Obj_type.Generic
  in
  let _rest =
    List.init 8 (fun _ ->
        System.mm_allocate sys ~data_length:1024 ~access_length:0
          ~otype:Obj_type.Generic)
  in
  ignore
    (K.Machine.spawn m ~name:"reader" (fun () ->
         ignore (K.Machine.read_word m first ~offset:0)));
  let r = System.run sys in
  Alcotest.(check int) "absent segment faults" 1 r.K.Machine.faulted

let test_mm_fifo_policy_selectable () =
  let sys = boot ~memory_manager:System.Swapping_fifo () in
  Alcotest.(check string) "selected" "swapping/fifo" (System.mm_name sys)

(* ---------------- Device I/O ---------------- *)

let test_device_common_interface () =
  let (module T), feed, drain = Device_io.make_loopback_terminal ~name:"tty0" () in
  feed [ "hello"; "world" ];
  Alcotest.(check (option string)) "read 1" (Some "hello") (T.read ());
  Alcotest.(check (option string)) "read 2" (Some "world") (T.read ());
  Alcotest.(check (option string)) "eof" None (T.read ());
  T.write "out";
  Alcotest.(check (list string)) "drained" [ "out" ] (drain ())

let test_device_closed_rejects () =
  let dev = Device_io.make_terminal ~name:"tty1" () in
  let (module T) = dev in
  T.close ();
  Alcotest.(check bool) "closed" false (T.is_open ());
  Alcotest.(check bool) "write raises" true
    (match T.write "x" with
    | () -> false
    | exception Device_io.Device_error _ -> true)

let test_disk_blocks () =
  let (module D) = Device_io.make_disk ~name:"dk0" ~blocks:8 ~block_size:64 () in
  let b = Bytes.make 64 'x' in
  D.write_block 3 b;
  Alcotest.(check bytes) "block back" b (D.read_block 3);
  Alcotest.(check bool) "out of range" true
    (match D.read_block 8 with
    | _ -> false
    | exception Device_io.Device_error _ -> true)

let test_disk_record_subset () =
  (* The device-independent subset works on a disk too (§6.3: any device
     provides the common interface as a subset). *)
  let (module D) = Device_io.make_disk ~name:"dk1" ~blocks:4 ~block_size:32 () in
  (* Downcast a block device to the common device-independent subset. *)
  let common = (module D : Device_io.DEVICE) in
  let (module C) = common in
  C.write "alpha";
  C.write "beta";
  Alcotest.(check int) "still a 4-block disk" 4 (D.block_count ());
  Alcotest.(check string) "same underlying device" D.name C.name

let test_tape_rewind_and_class_ops () =
  let (module T) = Device_io.make_tape ~name:"mt0" ~capacity:16 () in
  T.write "r1";
  T.write "r2";
  Alcotest.(check bool) "at end" true (T.at_end ());
  T.rewind ();
  Alcotest.(check int) "rewound" 0 (T.position ());
  Alcotest.(check (option string)) "replay" (Some "r1") (T.read ())

let test_tape_farm_acquire_release () =
  let sys = boot () in
  let m = System.machine sys in
  let farm = Device_io.create_tape_farm m ~drives:2 in
  let h1 = Option.get (Device_io.acquire_drive farm) in
  let h2 = Option.get (Device_io.acquire_drive farm) in
  Alcotest.(check bool) "pool empty" true (Device_io.acquire_drive farm = None);
  Device_io.release_drive farm h1;
  Device_io.release_drive farm h2;
  Alcotest.(check int) "pool refilled" 2 (Device_io.free_drive_count farm)

let test_tape_farm_rejects_forged_handle () =
  let sys = boot () in
  let m = System.machine sys in
  let farm = Device_io.create_tape_farm m ~drives:1 in
  let forged = K.Machine.allocate_generic m () in
  Alcotest.(check bool) "forged handle rejected" true
    (match Device_io.device_of farm forged with
    | _ -> false
    | exception Fault.Fault (Fault.Type_mismatch _) -> true)

let test_tape_farm_recovers_lost_drives () =
  let sys = boot () in
  let m = System.machine sys in
  let farm = Device_io.create_tape_farm m ~drives:3 in
  ignore
    (K.Machine.spawn m ~name:"careless" (fun () ->
         match Device_io.acquire_drive farm with
         | Some h ->
           let (module T) = Device_io.device_of farm h in
           T.write "data"
         | None -> ()));
  let _ = System.run sys in
  Alcotest.(check int) "one drive lost" 2 (Device_io.free_drive_count farm);
  let c = I432_gc.Collector.create m in
  let n = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"recovery" (fun () ->
         ignore (I432_gc.Collector.cycle c);
         n := Device_io.recover_lost_drives farm));
  let _ = System.run sys in
  Alcotest.(check int) "recovered" 1 !n;
  Alcotest.(check int) "pool restored" 3 (Device_io.free_drive_count farm)

(* ---------------- Object filing ---------------- *)

let test_filing_preserves_data () =
  let sys = boot () in
  let m = System.machine sys in
  let filing = Object_filing.create m in
  let a = K.Machine.allocate_generic m ~data_length:32 () in
  ignore
    (K.Machine.spawn m ~name:"writer" (fun () ->
         K.Machine.write_word m a ~offset:0 31415;
         Object_filing.store filing ~key:"pi" a));
  let _ = System.run sys in
  let b = Object_filing.retrieve filing ~key:"pi" () in
  let got = ref 0 in
  ignore
    (K.Machine.spawn m ~name:"reader" (fun () ->
         got := K.Machine.read_word m b ~offset:0));
  let _ = System.run sys in
  Alcotest.(check int) "data preserved" 31415 !got

let test_filing_preserves_type_identity () =
  let sys = boot () in
  let m = System.machine sys in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let filing = Object_filing.create m in
  let td = Type_def.create table sro ~name:"record_t" in
  let inst = Type_def.create_instance table td sro ~data_length:16 ~access_length:0 in
  ignore
    (K.Machine.spawn m ~name:"w" (fun () ->
         Object_filing.store filing ~key:"rec" inst));
  let _ = System.run sys in
  let expected = Obj_type.Custom (Type_def.id table td) in
  Alcotest.(check (option string)) "filed type"
    (Some (Obj_type.to_string expected))
    (Option.map Obj_type.to_string (Object_filing.filed_type filing ~key:"rec"));
  let back = Object_filing.retrieve_as filing ~key:"rec" ~expected () in
  Alcotest.(check bool) "sealed on retrieval" true
    (Obj_type.equal (Segment.otype table back) expected);
  Alcotest.(check bool) "type manager accepts it" true
    (Type_def.is_instance table td back)

let test_filing_type_assertion_faults () =
  let sys = boot () in
  let m = System.machine sys in
  let filing = Object_filing.create m in
  let a = K.Machine.allocate_generic m ~data_length:8 () in
  ignore
    (K.Machine.spawn m ~name:"w" (fun () ->
         Object_filing.store filing ~key:"plain" a));
  let _ = System.run sys in
  Alcotest.(check bool) "wrong assertion faults" true
    (match
       Object_filing.retrieve_as filing ~key:"plain" ~expected:Obj_type.Port ()
     with
    | _ -> false
    | exception Fault.Fault (Fault.Type_mismatch _) -> true)

let test_filing_composite_graph () =
  let sys = boot () in
  let m = System.machine sys in
  let table = K.Machine.table m in
  let filing = Object_filing.create m in
  (* root -> a, b; a -> b (sharing); b -> root (cycle). *)
  let root = K.Machine.allocate_generic m ~data_length:8 ~access_length:2 () in
  let a = K.Machine.allocate_generic m ~data_length:8 ~access_length:1 () in
  let b = K.Machine.allocate_generic m ~data_length:8 ~access_length:1 () in
  ignore
    (K.Machine.spawn m ~name:"builder" (fun () ->
         K.Machine.write_word m root ~offset:0 1;
         K.Machine.write_word m a ~offset:0 2;
         K.Machine.write_word m b ~offset:0 3;
         Segment.store_access table root ~slot:0 (Some a);
         Segment.store_access table root ~slot:1 (Some b);
         Segment.store_access table a ~slot:0 (Some b);
         Segment.store_access table b ~slot:0 (Some root);
         ignore (Object_filing.store_graph filing ~key:"g" root)));
  let _ = System.run sys in
  Alcotest.(check (option int)) "three nodes filed" (Some 3)
    (Object_filing.graph_size filing ~key:"g");
  (* Retrieve and verify isomorphism. *)
  let root' = Object_filing.retrieve_graph filing ~key:"g" () in
  let got = ref [] in
  ignore
    (K.Machine.spawn m ~name:"checker" (fun () ->
         let a' = Option.get (Segment.load_access table root' ~slot:0) in
         let b' = Option.get (Segment.load_access table root' ~slot:1) in
         let shared = Option.get (Segment.load_access table a' ~slot:0) in
         let back = Option.get (Segment.load_access table b' ~slot:0) in
         got :=
           [
             K.Machine.read_word m root' ~offset:0;
             K.Machine.read_word m a' ~offset:0;
             K.Machine.read_word m b' ~offset:0;
             (if Access.index shared = Access.index b' then 1 else 0);
             (if Access.index back = Access.index root' then 1 else 0);
             (if Access.index root' <> Access.index root then 1 else 0);
           ]));
  let _ = System.run sys in
  Alcotest.(check (list int)) "payloads, sharing, cycle, freshness"
    [ 1; 2; 3; 1; 1; 1 ] !got

let test_filing_composite_preserves_types () =
  let sys = boot () in
  let m = System.machine sys in
  let table = K.Machine.table m in
  let sro = K.Machine.global_sro m in
  let filing = Object_filing.create m in
  let td = Type_def.create table sro ~name:"leaf_t" in
  let root = K.Machine.allocate_generic m ~access_length:1 () in
  let leaf = Type_def.create_instance table td sro ~data_length:8 ~access_length:0 in
  ignore
    (K.Machine.spawn m ~name:"builder" (fun () ->
         Segment.store_access table root ~slot:0 (Some leaf);
         ignore (Object_filing.store_graph filing ~key:"typed" root)));
  let _ = System.run sys in
  let root' = Object_filing.retrieve_graph filing ~key:"typed" () in
  let leaf' = Option.get (Segment.load_access table root' ~slot:0) in
  Alcotest.(check bool) "leaf type preserved through filing" true
    (Type_def.is_instance table td leaf')

let test_filing_missing_key () =
  let sys = boot () in
  let m = System.machine sys in
  let filing = Object_filing.create m in
  Alcotest.(check bool) "not filed" true
    (match Object_filing.retrieve filing ~key:"absent" () with
    | _ -> false
    | exception Object_filing.Not_filed "absent" -> true)

let suite =
  [
    ("untyped roundtrip", `Quick, test_untyped_roundtrip);
    ("untyped message count bounds", `Quick, test_untyped_message_count_bounds);
    ("untyped send-only view", `Quick, test_untyped_send_only_view);
    ("typed roundtrip", `Quick, test_typed_roundtrip);
    ("typed identical cost to untyped", `Quick, test_typed_identical_cost_to_untyped);
    ("checked ports enforce type", `Quick, test_checked_ports_enforce_type);
    ("pm tree stop/start", `Quick, test_pm_tree_stop_start);
    ("pm nested counts", `Quick, test_pm_nested_counts);
    ("pm unbalanced start faults", `Quick, test_pm_unbalanced_start_faults);
    ("pm stop subtree only", `Quick, test_pm_stop_subtree_only);
    ("pm recover lost processes", `Quick, test_pm_recover_lost_processes);
    QCheck_alcotest.to_alcotest prop_stop_start_storm;
    ("fair share beats null", `Quick, test_fair_share_beats_null);
    ("round robin equalizes", `Quick, test_round_robin_equalizes);
    ("mm common interface nonswapping", `Quick, test_mm_common_interface_nonswapping);
    ("mm nonswapping exhausts", `Quick, test_mm_nonswapping_exhausts);
    ("mm swapping survives overcommit", `Quick, test_mm_swapping_survives_overcommit);
    ("mm swapping preserves content", `Quick, test_mm_swapping_preserves_content);
    ("mm swapping faults without touch", `Quick, test_mm_swapping_faults_without_touch);
    ("mm fifo policy selectable", `Quick, test_mm_fifo_policy_selectable);
    ("device common interface", `Quick, test_device_common_interface);
    ("device closed rejects", `Quick, test_device_closed_rejects);
    ("disk blocks", `Quick, test_disk_blocks);
    ("disk record subset", `Quick, test_disk_record_subset);
    ("tape rewind and class ops", `Quick, test_tape_rewind_and_class_ops);
    ("tape farm acquire/release", `Quick, test_tape_farm_acquire_release);
    ("tape farm rejects forged handle", `Quick, test_tape_farm_rejects_forged_handle);
    ("tape farm recovers lost drives", `Quick, test_tape_farm_recovers_lost_drives);
    ("filing composite graph", `Quick, test_filing_composite_graph);
    ("filing composite preserves types", `Quick,
     test_filing_composite_preserves_types);
    ("filing preserves data", `Quick, test_filing_preserves_data);
    ("filing preserves type identity", `Quick, test_filing_preserves_type_identity);
    ("filing type assertion faults", `Quick, test_filing_type_assertion_faults);
    ("filing missing key", `Quick, test_filing_missing_key);
  ]
