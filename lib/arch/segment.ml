(* Checked segment access: every data or access-part operation goes through
   an access descriptor and is validated for rights, bounds, type, level,
   and presence (swapped-out segments fault so the swapping memory manager
   can intervene, paper §6.2). *)

let need_read table access =
  let e = Object_table.entry_of_access table access in
  if not (Rights.has_read (Access.rights access)) then
    Fault.raise_fault
      (Fault.Rights_violation { needed = "read"; held = Access.rights access });
  if e.Object_table.swapped_out then
    Fault.raise_fault (Fault.Segment_swapped_out e.Object_table.index);
  e

let need_write table access =
  let e = Object_table.entry_of_access table access in
  if not (Rights.has_write (Access.rights access)) then
    Fault.raise_fault
      (Fault.Rights_violation { needed = "write"; held = Access.rights access });
  if e.Object_table.swapped_out then
    Fault.raise_fault (Fault.Segment_swapped_out e.Object_table.index);
  e

let check_data_bounds (e : Object_table.entry) offset len =
  if offset < 0 || len < 0 || offset + len > e.data_length then
    Fault.raise_fault
      (Fault.Bounds { part = "data"; offset; length = e.data_length })

let check_access_bounds (e : Object_table.entry) slot =
  if slot < 0 || slot >= Array.length e.access_part then
    Fault.raise_fault
      (Fault.Bounds
         { part = "access"; offset = slot; length = Array.length e.access_part })

(* Data part *)

let read_u8 table memory access ~offset =
  let e = need_read table access in
  check_data_bounds e offset 1;
  Memory.read_u8 memory (e.base + offset)

let write_u8 table memory access ~offset v =
  let e = need_write table access in
  check_data_bounds e offset 1;
  e.Object_table.dirty <- true;
  Memory.write_u8 memory (e.base + offset) v

let read_u16 table memory access ~offset =
  let e = need_read table access in
  check_data_bounds e offset 2;
  Memory.read_u16 memory (e.base + offset)

let write_u16 table memory access ~offset v =
  let e = need_write table access in
  check_data_bounds e offset 2;
  e.Object_table.dirty <- true;
  Memory.write_u16 memory (e.base + offset) v

let read_i32 table memory access ~offset =
  let e = need_read table access in
  check_data_bounds e offset 4;
  Memory.read_i32 memory (e.base + offset)

let write_i32 table memory access ~offset v =
  let e = need_write table access in
  check_data_bounds e offset 4;
  e.Object_table.dirty <- true;
  Memory.write_i32 memory (e.base + offset) v

let read_bytes table memory access ~offset ~len =
  let e = need_read table access in
  check_data_bounds e offset len;
  Memory.blit_to_bytes memory ~src_addr:(e.base + offset) ~len

let write_bytes table memory access ~offset src =
  let e = need_write table access in
  check_data_bounds e offset (Bytes.length src);
  e.Object_table.dirty <- true;
  Memory.blit_from_bytes memory ~src ~dst_addr:(e.base + offset)

(* Access part *)

let load_access table access ~slot =
  let e = need_read table access in
  check_access_bounds e slot;
  e.access_part.(slot)

(* Storing an access descriptor enforces the level rule of §5 ("an access
   for an object may never be stored into an object with a lower (more
   global) level number") and runs the GC gray-bit barrier of §8.1. *)
let store_access table access ~slot stored =
  let e = need_write table access in
  check_access_bounds e slot;
  (match stored with
  | None -> ()
  | Some a ->
    let target = Object_table.entry_of_access table a in
    if target.Object_table.level > e.Object_table.level then
      Fault.raise_fault
        (Fault.Level_violation
           {
             stored_level = target.Object_table.level;
             target_level = e.Object_table.level;
           });
    Object_table.shade table (Access.index a));
  e.access_part.(slot) <- stored

(* Metadata available to any holder of a descriptor (no rights needed: the
   432 exposes type and length through inspection instructions). *)

let otype table access = (Object_table.entry_of_access table access).otype
let level table access = (Object_table.entry_of_access table access).level

let data_length table access =
  (Object_table.entry_of_access table access).data_length

let access_length table access =
  Array.length (Object_table.entry_of_access table access).access_part

let check_type table access expected =
  let actual = otype table access in
  if not (Obj_type.equal actual expected) then
    Fault.raise_fault (Fault.Type_mismatch { expected; actual })
