(** The global object descriptor table.

    One descriptor per segment: physical base and length of the data part,
    the access part, the object's hardware type, its lifetime level number,
    and the tri-color state used by the parallel garbage collector.

    [payload] is an extensible variant through which the kernel attaches
    interpreted state to system objects without the architecture layer
    depending on the kernel. *)

type color = White | Gray | Black

type payload = ..

type entry = {
  index : int;
  mutable valid : bool;
  mutable otype : Obj_type.t;
  mutable base : int;
  mutable data_length : int;
  mutable access_part : Access.t option array;
  mutable level : int;
  mutable color : color;
  mutable sro : int;
  mutable swapped_out : bool;
  mutable dirty : bool;
  mutable payload : payload option;
}

type t

val create : ?initial_capacity:int -> unit -> t

(** Raises [Fault Invalid_descriptor] for a free or out-of-range index. *)
val lookup : t -> int -> entry

val entry_of_access : t -> Access.t -> entry
val is_valid : t -> int -> bool

(** Low-level descriptor allocation; normally reached through {!Sro.allocate}.
    Data part is limited to 64 KB, per the architecture. *)
val allocate_entry :
  t ->
  otype:Obj_type.t ->
  base:int ->
  data_length:int ->
  access_length:int ->
  level:int ->
  sro:int ->
  entry

val free_entry : t -> int -> unit

(** GC write barrier: shade the object gray if it is white. *)
val shade : t -> int -> unit

(** Number of barrier shadings since creation. *)
val barrier_shades : t -> int

val iter_valid : (entry -> unit) -> t -> unit
val count_valid : t -> int
val capacity : t -> int

(** {1 Per-table kernel counters}

    These live on the table rather than in module globals so independent
    machines — cluster nodes stepped on different OCaml domains — never
    share mutable state.  A fresh table always starts from the same
    values, which checkpoint-by-replay relies on. *)

(** Next Custom type id for {!Type_def} ([0, 1, 2, ...] per table). *)
val fresh_typedef_id : t -> int

(** The destruction-filter port for process objects (paper §8.2), which
    have a hardware type and hence no type-definition object to carry the
    registration. *)
val set_process_filter_port : t -> int option -> unit

val process_filter_port : t -> int option
