(** Protection and resource faults detected by the simulated hardware. *)

type cause =
  | Rights_violation of { needed : string; held : Rights.t }
  | Level_violation of { stored_level : int; target_level : int }
      (** attempt to store a shorter-lived access into a longer-lived object *)
  | Type_mismatch of { expected : Obj_type.t; actual : Obj_type.t }
  | Bounds of { part : string; offset : int; length : int }
  | Invalid_descriptor of int
  | Null_access
  | Storage_exhausted of { requested : int; available : int }
  | Sro_destroyed
  | Segment_swapped_out of int
      (** raised to drive the swapping memory manager (paper §6.2) *)
  | Protocol of string
  | Transient of string
      (** a non-reproducible instruction-level fault, e.g. injected by the
          fault-injection layer; retrying the computation may succeed *)
  | Timeout of { waited_ns : int }
      (** a timed kernel operation exceeded its virtual-time budget *)

exception Fault of cause

val raise_fault : cause -> 'a
val to_string : cause -> string
val pp : Format.formatter -> cause -> unit
