(* The global object descriptor table (paper §2).

   "Access descriptors or capabilities name entries in a global object
   descriptor table.  Each object descriptor in this table describes a
   segment ...  The one object descriptor for a given segment provides the
   physical base address and length of the segment, ... what type of object
   it represents, and includes information needed for virtual memory
   management and parallel garbage collection."

   The data part of a segment lives in Memory; the access part is an array
   of access descriptors held directly in the descriptor entry (on the real
   432 it is memory too, but it is only reachable through checked access
   instructions, so an OCaml array preserves the semantics exactly).

   [payload] attaches kernel-interpreted state to system objects (ports,
   processes, processors, SROs, type definitions) via an extensible
   variant, keeping the architecture layer free of kernel dependencies. *)

type color = White | Gray | Black

type payload = ..

type entry = {
  index : int;
  mutable valid : bool;
  mutable otype : Obj_type.t;
  mutable base : int;  (* physical base address of the data part *)
  mutable data_length : int;
  mutable access_part : Access.t option array;
  mutable level : int;  (* lifetime level number, 0 = global (§5) *)
  mutable color : color;  (* tri-color state for the on-the-fly GC (§8.1) *)
  mutable sro : int;  (* index of the allocating SRO, -1 for primal objects *)
  mutable swapped_out : bool;  (* used by the swapping memory manager (§6.2) *)
  mutable dirty : bool;  (* data part written since the last swap transfer *)
  mutable payload : payload option;
}

type t = {
  mutable entries : entry option array;
  mutable free : int list;  (* recycled descriptor indices (LIFO pool) *)
  mutable next : int;  (* high-water mark *)
  mutable live : int;  (* valid entries, maintained incrementally *)
  mutable barrier_shades : int;  (* gray-bit settings performed (§8.1) *)
  mutable next_typedef_id : int;
      (* Custom type ids handed out by Type_def.create.  Per-table (not a
         module global) so machines on different OCaml domains never share
         a counter: type identity is a per-machine notion, a fresh table
         always numbers its types from 0 (checkpoint replay relies on
         this), and the parallel cluster engine stays bit-identical to the
         sequential one. *)
  mutable process_filter_port : int option;
      (* The destruction-filter port for process objects (paper §8.2).
         Process objects have a hardware type, so there is no
         type-definition object to hang the registration on; it lives
         here, per machine, for the same domain-safety reason. *)
}

let create ?(initial_capacity = 256) () =
  if initial_capacity <= 0 then invalid_arg "Object_table.create";
  {
    entries = Array.make initial_capacity None;
    free = [];
    next = 0;
    live = 0;
    barrier_shades = 0;
    next_typedef_id = 0;
    process_filter_port = None;
  }

let fresh_typedef_id t =
  let id = t.next_typedef_id in
  t.next_typedef_id <- id + 1;
  id

let set_process_filter_port t port = t.process_filter_port <- port
let process_filter_port t = t.process_filter_port

let grow t =
  let n = Array.length t.entries in
  let bigger = Array.make (2 * n) None in
  Array.blit t.entries 0 bigger 0 n;
  t.entries <- bigger

let lookup t index =
  if index < 0 || index >= Array.length t.entries then
    Fault.raise_fault (Fault.Invalid_descriptor index);
  match t.entries.(index) with
  | Some e when e.valid -> e
  | Some _ | None -> Fault.raise_fault (Fault.Invalid_descriptor index)

let entry_of_access t access = lookup t (Access.index access)

let is_valid t index =
  index >= 0
  && index < Array.length t.entries
  && (match t.entries.(index) with Some e -> e.valid | None -> false)

let allocate_entry t ~otype ~base ~data_length ~access_length ~level ~sro =
  if data_length < 0 || data_length > 0x10000 then
    invalid_arg "Object_table: data part exceeds 64K";
  if access_length < 0 || access_length > 0x4000 then
    invalid_arg "Object_table: access part too large";
  let index =
    match t.free with
    | i :: rest ->
      t.free <- rest;
      i
    | [] ->
      if t.next >= Array.length t.entries then grow t;
      let i = t.next in
      t.next <- t.next + 1;
      i
  in
  let e =
    {
      index;
      valid = true;
      otype;
      base;
      data_length;
      access_part = Array.make access_length None;
      level;
      (* Allocate-gray: a fresh object survives the collection cycle in
         progress, giving the mutator time to make it reachable (the
         standard allocate-black discipline for on-the-fly collectors). *)
      color = Gray;
      sro;
      swapped_out = false;
      dirty = false;
      payload = None;
    }
  in
  t.entries.(index) <- Some e;
  t.live <- t.live + 1;
  e

let free_entry t index =
  let e = lookup t index in
  e.valid <- false;
  e.payload <- None;
  e.access_part <- [||];
  t.entries.(index) <- None;
  t.free <- index :: t.free;
  t.live <- t.live - 1

(* The write barrier of the Dijkstra on-the-fly collector: the hardware sets
   the gray bit "whenever access descriptors are moved" (§8.1). *)
let shade t index =
  if is_valid t index then begin
    let e = lookup t index in
    if e.color = White then begin
      e.color <- Gray;
      t.barrier_shades <- t.barrier_shades + 1
    end
  end

let barrier_shades t = t.barrier_shades

let iter_valid f t =
  Array.iter
    (function Some e when e.valid -> f e | Some _ | None -> ())
    t.entries

let count_valid t = t.live

let capacity t = Array.length t.entries
