(* Type-definition objects: the 432's user-defined type facility (paper
   §7.2).  A type manager creates a type-definition object; objects sealed
   with it carry a hardware-checked Custom type "no matter what path [they]
   follow within the 432".  The type-definition object also records the
   type's destruction filter port (paper §8.2), which the garbage collector
   consults when an object of the type becomes garbage.

   Type rights on a type-definition access:
     t1 = may seal objects to this type (create right)
     t2 = may amplify rights on objects of this type (type-manager right)
*)

type state = {
  id : int;
  name : string;
  mutable filter_port : int option;  (* object index of the filter port *)
  mutable sealed_count : int;
}

type Object_table.payload += Typedef_state of state

let state_of table access =
  Segment.check_type table access Obj_type.Type_definition;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Typedef_state s) -> s
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "type-definition object has no state")

(* Create a new type; the returned full-rights access is the type manager's
   privilege and should be confined to the managing package.  Type ids are
   drawn from the table's own counter — per machine, never shared across
   OCaml domains — so type identity is local to a machine; an id carried
   across the wire stays a seal the destination cannot forge or amplify,
   but it does not resolve to the destination's type managers. *)
let create table sro_access ~name =
  let access =
    Sro.allocate table sro_access ~data_length:0 ~access_length:4
      ~otype:Obj_type.Type_definition
  in
  let id = Object_table.fresh_typedef_id table in
  let e = Object_table.entry_of_access table access in
  e.Object_table.payload <-
    Some (Typedef_state { id; name; filter_port = None; sealed_count = 0 });
  access

let id table access = (state_of table access).id
let name table access = (state_of table access).name

(* Seal a generic object so the hardware thereafter recognizes it as an
   instance of this type.  Requires the create right (t1). *)
let seal table typedef ~target =
  if not (Rights.has_type_right (Access.rights typedef) Rights.t1) then
    Fault.raise_fault
      (Fault.Rights_violation
         { needed = "seal (t1)"; held = Access.rights typedef });
  let s = state_of table typedef in
  let te = Object_table.entry_of_access table target in
  (match te.Object_table.otype with
  | Obj_type.Generic -> ()
  | other ->
    Fault.raise_fault
      (Fault.Type_mismatch { expected = Obj_type.Generic; actual = other }));
  te.Object_table.otype <- Obj_type.Custom s.id;
  s.sealed_count <- s.sealed_count + 1

(* Allocate-and-seal in one step, the common idiom of a type manager. *)
let create_instance table typedef sro_access ~data_length ~access_length =
  let instance =
    Sro.allocate table sro_access ~data_length ~access_length
      ~otype:Obj_type.Generic
  in
  seal table typedef ~target:instance;
  instance

(* Check that [access] designates an instance of this type. *)
let check_instance table typedef access =
  let s = state_of table typedef in
  Segment.check_type table access (Obj_type.Custom s.id)

let is_instance table typedef access =
  match check_instance table typedef access with
  | () -> true
  | exception Fault.Fault _ -> false

(* Rights amplification: only the type manager (t2 on the type definition)
   can raise the rights on an instance of its type.  This is how a package
   turns the weak descriptor a client presents back into a working one. *)
let amplify table typedef instance ~rights =
  if not (Rights.has_type_right (Access.rights typedef) Rights.t2) then
    Fault.raise_fault
      (Fault.Rights_violation
         { needed = "amplify (t2)"; held = Access.rights typedef });
  check_instance table typedef instance;
  Access.make ~index:(Access.index instance) ~rights

let sealed_count table access = (state_of table access).sealed_count

(* Destruction-filter plumbing (paper §8.2): the garbage collector looks the
   filter port up by the Custom id of the dying object. *)

let set_filter_port table typedef ~port_index =
  let s = state_of table typedef in
  s.filter_port <- Some port_index

let clear_filter_port table typedef =
  let s = state_of table typedef in
  s.filter_port <- None

let filter_port table typedef = (state_of table typedef).filter_port

(* Find the filter port registered for a Custom type id, scanning the table
   for its type-definition object.  Used by the collector's sweep. *)
let filter_port_for_id table ~id =
  let found = ref None in
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (Typedef_state s) when s.id = id ->
        (match s.filter_port with Some p -> found := Some p | None -> ())
      | Some _ | None -> ())
    table;
  !found
