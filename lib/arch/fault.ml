(* Protection and resource faults detected by the simulated hardware.

   Every runtime check in the architecture raises [Fault]; the kernel turns
   faults in user processes into process termination (or delivery to a fault
   port) and treats faults below system level 3 as fatal (paper §7.3). *)

type cause =
  | Rights_violation of { needed : string; held : Rights.t }
  | Level_violation of { stored_level : int; target_level : int }
  | Type_mismatch of { expected : Obj_type.t; actual : Obj_type.t }
  | Bounds of { part : string; offset : int; length : int }
  | Invalid_descriptor of int
  | Null_access
  | Storage_exhausted of { requested : int; available : int }
  | Sro_destroyed
  | Segment_swapped_out of int
  | Protocol of string
  | Transient of string
  | Timeout of { waited_ns : int }

exception Fault of cause

let raise_fault cause = raise (Fault cause)

let to_string = function
  | Rights_violation { needed; held } ->
    Printf.sprintf "rights violation: needed %s, held %s" needed
      (Rights.to_string held)
  | Level_violation { stored_level; target_level } ->
    Printf.sprintf
      "level violation: storing level-%d access into level-%d object"
      stored_level target_level
  | Type_mismatch { expected; actual } ->
    Printf.sprintf "type mismatch: expected %s, found %s"
      (Obj_type.to_string expected) (Obj_type.to_string actual)
  | Bounds { part; offset; length } ->
    Printf.sprintf "bounds: offset %d beyond %s part of length %d" offset part
      length
  | Invalid_descriptor i -> Printf.sprintf "invalid object descriptor %d" i
  | Null_access -> "null access descriptor"
  | Storage_exhausted { requested; available } ->
    Printf.sprintf "storage exhausted: requested %d bytes, %d available"
      requested available
  | Sro_destroyed -> "storage resource object already destroyed"
  | Segment_swapped_out i -> Printf.sprintf "segment %d is swapped out" i
  | Protocol msg -> "protocol: " ^ msg
  | Transient msg -> "transient fault: " ^ msg
  | Timeout { waited_ns } ->
    Printf.sprintf "timeout after %d ns of virtual time" waited_ns

let pp fmt c = Format.pp_print_string fmt (to_string c)

let () =
  Printexc.register_printer (function
    | Fault c -> Some ("I432.Fault.Fault(" ^ to_string c ^ ")")
    | _ -> None)
