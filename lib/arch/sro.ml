(* Storage resource objects (paper §5).

   An SRO "describes free areas of memory and provides the information
   necessary to allocate both physical and logical address space".  Every
   SRO creates objects at a fixed level number: a level-0 SRO is a *global
   heap*; an SRO whose level corresponds to a call depth is a *local heap*
   whose objects can all be destroyed when the SRO is destroyed, because the
   level rule guarantees no reference has escaped.

   The free store is first-fit with address-ordered coalescing on free,
   held in {!I432_util.Free_store} — an augmented balanced tree whose fit
   query returns exactly what a first-fit scan of a base-sorted list would,
   in O(log regions) instead of O(regions).  Live-object tracking is an
   O(1) index pool (intrusive list + handle table) instead of an O(n)
   filtered list, so release cost no longer grows with heap population.

   The SRO itself is an object in the table (type Storage_resource), so
   access to it is capability-controlled: Rights.t1 on an SRO access is the
   allocate right. *)

open I432_util

type state = {
  self : int;  (* object-table index of this SRO *)
  sro_level : int;  (* level of objects created from this SRO *)
  free_store : Free_store.t;  (* free regions, address-ordered *)
  allocated : int Dlist.t;  (* live object indices, newest first *)
  alloc_nodes : (int, int Dlist.node) Hashtbl.t;  (* index -> list handle *)
  mutable children : int list;  (* child SROs carved from this store (§5) *)
  mutable live : bool;
  mutable alloc_count : int;
  mutable free_bytes : int;
  mutable destroy_count : int;
}

type Object_table.payload += Sro_state of state

let state_of table access =
  Segment.check_type table access Obj_type.Storage_resource;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Sro_state s) -> s
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "SRO object has no SRO state")

let need_alloc_right access =
  if not (Rights.has_type_right (Access.rights access) Rights.t1) then
    Fault.raise_fault
      (Fault.Rights_violation
         { needed = "allocate (t1)"; held = Access.rights access })

(* Create an SRO governing [region] of physical memory, creating objects at
   [level].  [parent_level] is the level of the object holding the new SRO's
   access; the SRO object itself lives at that level. *)
let create table ~level ~base ~length =
  if length < 0 || base < 0 then invalid_arg "Sro.create: region";
  let e =
    Object_table.allocate_entry table ~otype:Obj_type.Storage_resource ~base:0
      ~data_length:0 ~access_length:8 ~level ~sro:(-1)
  in
  let free_store = Free_store.create () in
  Free_store.insert free_store ~base ~length;
  let s =
    {
      self = e.Object_table.index;
      sro_level = level;
      free_store;
      allocated = Dlist.create ();
      alloc_nodes = Hashtbl.create 64;
      children = [];
      live = true;
      alloc_count = 0;
      free_bytes = length;
      destroy_count = 0;
    }
  in
  e.Object_table.payload <- Some (Sro_state s);
  Access.make ~index:e.Object_table.index ~rights:Rights.full

let check_live s = if not s.live then Fault.raise_fault Fault.Sro_destroyed

let total_free s = Free_store.total s.free_store

(* First-fit carve from the free store. *)
let take_region s size =
  match Free_store.take_first_fit s.free_store ~size with
  | Some base -> base
  | None ->
    Fault.raise_fault
      (Fault.Storage_exhausted { requested = size; available = total_free s })

(* Return a region to the store, coalescing with adjacent neighbours. *)
let give_region s ~base ~length = Free_store.insert s.free_store ~base ~length

let track_allocated s index =
  Hashtbl.replace s.alloc_nodes index (Dlist.push_front s.allocated index)

let untrack_allocated s index =
  match Hashtbl.find_opt s.alloc_nodes index with
  | Some node ->
    Dlist.remove s.allocated node;
    Hashtbl.remove s.alloc_nodes index
  | None -> ()

(* The create-object instruction: carve a data part from the free store and
   allocate a descriptor.  Takes ~80 us of virtual time, charged by the
   caller via Timings.allocate_ns. *)
let allocate table access ~data_length ~access_length ~otype =
  need_alloc_right access;
  let s = state_of table access in
  check_live s;
  if data_length < 0 || data_length > 0x10000 then
    invalid_arg "Sro.allocate: data part exceeds 64K";
  let base = if data_length = 0 then 0 else take_region s data_length in
  let e =
    Object_table.allocate_entry table ~otype ~base ~data_length ~access_length
      ~level:s.sro_level ~sro:s.self
  in
  track_allocated s e.Object_table.index;
  s.alloc_count <- s.alloc_count + 1;
  s.free_bytes <- s.free_bytes - data_length;
  Access.make ~index:e.Object_table.index ~rights:Rights.full

(* Return one object's storage to its SRO and invalidate its descriptor.
   Used by the garbage collector's sweep and by explicit destruction. *)
let release table ~sro_state:s ~index =
  let e = Object_table.lookup table index in
  if e.Object_table.sro <> s.self then
    Fault.raise_fault (Fault.Protocol "object released to foreign SRO");
  give_region s ~base:e.Object_table.base ~length:e.Object_table.data_length;
  s.free_bytes <- s.free_bytes + e.Object_table.data_length;
  untrack_allocated s index;
  s.destroy_count <- s.destroy_count + 1;
  Object_table.free_entry table index

let release_by_access table access ~index =
  let s = state_of table access in
  check_live s;
  release table ~sro_state:s ~index

(* Find the SRO state governing an arbitrary object, if its allocating SRO
   is still alive.  Used by the swapper and the collector. *)
let state_of_object table ~index =
  let e = Object_table.lookup table index in
  let sro_index = e.Object_table.sro in
  if sro_index >= 0 && Object_table.is_valid table sro_index then
    match (Object_table.lookup table sro_index).Object_table.payload with
    | Some (Sro_state s) -> Some s
    | Some _ | None -> None
  else None

(* Donate a physical region to the SRO's free store (used by the swapper
   when it reclaims a resident segment's frame). *)
let donate (_ : Object_table.t) ~sro_state:s ~base ~length =
  give_region s ~base ~length;
  s.free_bytes <- s.free_bytes + length

(* Carve a raw region from the free store without creating a descriptor
   (used by the swapper to find a frame for a segment being brought in). *)
let carve (_ : Object_table.t) ~sro_state:s ~size =
  match Free_store.take_first_fit s.free_store ~size with
  | Some base ->
    s.free_bytes <- s.free_bytes - size;
    Some base
  | None -> None

(* Create a child SRO whose store is carved from this SRO's free regions —
   §5's "uniform tree structure encompassing both processes and storage
   resource objects".  Destroying the parent cascades to children. *)
let create_child table access ~level ~bytes =
  let s = state_of table access in
  check_live s;
  need_alloc_right access;
  let base = take_region s bytes in
  s.free_bytes <- s.free_bytes - bytes;
  let child = create table ~level ~base ~length:bytes in
  s.children <- Access.index child :: s.children;
  child

(* Destroy a local heap: bulk-free every object it created (§5: "objects may
   be destroyed whenever their ancestral SRO is destroyed, without leaving
   dangling references"), cascading through child SROs.  Returns how many
   objects were reclaimed across the whole subtree. *)
let rec destroy table access =
  let s = state_of table access in
  check_live s;
  let from_children =
    List.fold_left
      (fun acc child_index ->
        if Object_table.is_valid table child_index then
          acc
          + destroy table (Access.make ~index:child_index ~rights:Rights.full)
        else acc)
      0 s.children
  in
  (* Newest-first, matching descriptor recycling order of the cons-list
     implementation this replaced. *)
  let victims = Dlist.to_list s.allocated in
  List.iter
    (fun index ->
      if Object_table.is_valid table index then begin
        let e = Object_table.lookup table index in
        give_region s ~base:e.Object_table.base
          ~length:e.Object_table.data_length;
        Object_table.free_entry table index
      end)
    victims;
  let n = List.length victims in
  Dlist.clear s.allocated;
  Hashtbl.reset s.alloc_nodes;
  s.children <- [];
  s.live <- false;
  Object_table.free_entry table s.self;
  n + from_children

(* Introspection for the memory managers and benches. *)

let free_bytes table access = total_free (state_of table access)
let level table access = (state_of table access).sro_level
let alloc_count table access = (state_of table access).alloc_count
let destroy_count table access = (state_of table access).destroy_count
let live_objects table access = Dlist.length (state_of table access).allocated
let child_count table access = List.length (state_of table access).children
let allocated_indices table access = Dlist.to_list (state_of table access).allocated
let is_live table access = (state_of table access).live

(* Largest single allocatable block (fragmentation indicator). *)
let largest_free table access = Free_store.largest (state_of table access).free_store

let region_count table access =
  Free_store.region_count (state_of table access).free_store
