(* Resident-set controller (see the .mli for the contract).

   Entries live in one flat int array, [stride] words per object-table
   index — indices are small integers the table hands out densely, so
   the array doubles like the table does and the steady-state
   operations (insert, touch, remove) are a handful of loads and stores
   on a single cache line: no hashing, no allocation.  An entry's
   incarnation is its arrival number (the controller's own monotonic
   counter, exactly as the original manager numbered residents);
   arrival 0 means the slot is empty, and every policy key embeds the
   arrival, so a reused index is distinguishable from the entry that
   used to live there.

   The heap policies (LRU, FIFO, level-aware) use a lazy pairing heap
   that is only maintained when victims are actually requested:

   - [insert] appends the index to a pending buffer (one int) instead
     of pushing a node; [pick] flushes the buffer first, pushing one
     node per still-live incarnation at its *current* key.
   - [touch] that can only raise the entry's key updates the stamp in
     place — the entry's heap node goes stale, and [pick] repairs it
     when it surfaces (discard, push a node with the current key,
     continue).  A touch that would *lower* the key — possible when
     processors with different virtual clocks share an object — pushes
     eagerly, so after a flush the heap always holds at least one node
     at or below every live entry's current key.

   That invariant is what makes the lazy minimum exact: nodes below an
   entry's current key are discarded as stale, so the first surviving
   node is the true minimum — the same victim the original O(n) fold
   selected (keys embed the unique arrival, so the order is total).
   Stale nodes are bounded by periodic rebuild: when the node
   population exceeds twice the live population the heap is rebuilt
   from the entry array — rebuild order cannot matter because pop
   order is determined by the key order alone.  A run that never comes
   under pressure never calls [pick], so it pays for no heap at all.

   The clock policy keeps its own FIFO ring with a per-entry reference
   bit: the hand clears set bits and evicts the first clear one — the
   classic second chance, deterministic because the ring order is
   explicit. *)

(* Entry field offsets within a [stride]-word slot. *)
let stride = 4
let f_arrival = 0  (* 0 = slot empty; doubles as the incarnation *)
let f_bytes = 1
let f_level = 2
let f_touch = 3

(* Pairing heap over (k1, k2, k3) lexicographic minimum; [hi] is the
   object-table index, [ha] the incarnation the stamp was taken from. *)
type node = { k1 : int; k2 : int; k3 : int; hi : int; ha : int }
type heap = Empty | Node of node * heap list

(* Inlined lexicographic <= — the merge comparator runs on every push
   and pop, so no tuple building and no polymorphic compare here. *)
let node_le na nb =
  na.k1 < nb.k1
  || (na.k1 = nb.k1
      && (na.k2 < nb.k2 || (na.k2 = nb.k2 && na.k3 <= nb.k3)))

let h_merge a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node (na, ca), Node (nb, cb) ->
    if node_le na nb then Node (na, b :: ca) else Node (nb, a :: cb)

let h_push h n = h_merge h (Node (n, []))

let rec h_merge_pairs = function
  | [] -> Empty
  | [ h ] -> h
  | a :: b :: rest -> h_merge (h_merge a b) (h_merge_pairs rest)

(* Clock-ring slots carry the incarnation so a reused index reads as
   stale. *)
type ring_slot = { r_idx : int; r_arrival : int }

type t = {
  policy : Policy.t;
  ram_bytes : int option;
  mutable entries : int array;  (* [stride] words per index; see f_* *)
  mutable a_ref : Bytes.t;  (* clock reference bits *)
  mutable live : int;
  mutable heap : heap;
  mutable heap_nodes : int;  (* live + stale nodes currently in [heap] *)
  (* Indices inserted since the last flush; pushed into the heap only
     when a victim is requested. *)
  mutable pend : int array;
  mutable pend_n : int;
  ring : ring_slot Queue.t;  (* clock order; stale slots discarded lazily *)
  mutable arrivals : int;
  mutable resident_bytes : int;
}

let create ~policy ?ram_bytes () =
  (match ram_bytes with
  | Some b when b <= 0 -> invalid_arg "Resident_set.create: ram_bytes <= 0"
  | _ -> ());
  {
    policy;
    ram_bytes;
    entries = Array.make (1024 * stride) 0;
    a_ref = Bytes.make 1024 '\000';
    live = 0;
    heap = Empty;
    heap_nodes = 0;
    pend = Array.make 256 0;
    pend_n = 0;
    ring = Queue.create ();
    arrivals = 0;
    resident_bytes = 0;
  }

let policy t = t.policy
let ram_bytes t = t.ram_bytes
let capacity t = Array.length t.entries / stride

let ensure_capacity t index =
  let n = capacity t in
  if index >= n then begin
    let n' = ref (n * 2) in
    while index >= !n' do
      n' := !n' * 2
    done;
    let grown = Array.make (!n' * stride) 0 in
    Array.blit t.entries 0 grown 0 (n * stride);
    t.entries <- grown;
    let refs = Bytes.make !n' '\000' in
    Bytes.blit t.a_ref 0 refs 0 n;
    t.a_ref <- refs
  end

let present t index =
  index >= 0
  && index < capacity t
  && Array.unsafe_get t.entries (index * stride) <> 0

(* The entry's current key under the policy — a heap node is live iff
   its stamp equals this. *)
let node_of t index =
  let off = index * stride in
  let arrival = t.entries.(off + f_arrival) in
  match t.policy with
  | Policy.Lru ->
    {
      k1 = t.entries.(off + f_touch);
      k2 = arrival;
      k3 = 0;
      hi = index;
      ha = arrival;
    }
  | Policy.Fifo -> { k1 = arrival; k2 = 0; k3 = 0; hi = index; ha = arrival }
  | Policy.Level_aware ->
    {
      k1 = -t.entries.(off + f_level);
      k2 = t.entries.(off + f_touch);
      k3 = arrival;
      hi = index;
      ha = arrival;
    }
  | Policy.Clock ->
    (* unused: the ring orders clock picks *)
    { k1 = 0; k2 = 0; k3 = 0; hi = index; ha = arrival }

let node_current t n =
  let off = n.hi * stride in
  Array.unsafe_get t.entries (off + f_arrival) = n.ha
  &&
  match t.policy with
  | Policy.Lru -> n.k1 = t.entries.(off + f_touch)
  | Policy.Fifo -> true
  | Policy.Level_aware -> n.k2 = t.entries.(off + f_touch)
  | Policy.Clock -> true

let heap_policy t =
  match t.policy with
  | Policy.Lru | Policy.Fifo | Policy.Level_aware -> true
  | Policy.Clock -> false

let heap_add t index =
  t.heap <- h_push t.heap (node_of t index);
  t.heap_nodes <- t.heap_nodes + 1

(* Push the pending admissions at their current keys.  Indices freed
   (or freed and reused) since they were queued are skipped or pushed
   at the new incarnation's key — both harmless: the queue is only a
   promise that the index will be findable, and duplicate current-key
   nodes pop as ordinary stale ones. *)
let flush_pending t =
  for i = 0 to t.pend_n - 1 do
    let index = t.pend.(i) in
    if Array.unsafe_get t.entries (index * stride) <> 0 then heap_add t index
  done;
  t.pend_n <- 0

(* Rebuild from the live entries when stale nodes dominate: pop order
   depends only on the (total) key order, so the array's iteration
   order cannot leak into victim selection. *)
let maybe_rebuild t =
  if t.heap_nodes > 64 && t.heap_nodes > 2 * t.live then begin
    t.heap <- Empty;
    t.heap_nodes <- 0;
    t.pend_n <- 0;
    for index = 0 to capacity t - 1 do
      if Array.unsafe_get t.entries (index * stride) <> 0 then
        heap_add t index
    done
  end

let drop_entry t off =
  t.entries.(off + f_arrival) <- 0;
  t.live <- t.live - 1;
  t.resident_bytes <- t.resident_bytes - t.entries.(off + f_bytes)

let insert t ~index ~bytes ~level ~now =
  if index < 0 then invalid_arg "Resident_set.insert: negative index";
  ensure_capacity t index;
  let off = index * stride in
  (* An object-table index can be reused without the controller hearing
     about the release (the GC frees dead objects behind the manager's
     back); re-admission supersedes any stale entry. *)
  if t.entries.(off + f_arrival) <> 0 then drop_entry t off;
  t.arrivals <- t.arrivals + 1;
  t.entries.(off + f_arrival) <- t.arrivals;
  t.entries.(off + f_bytes) <- bytes;
  t.entries.(off + f_level) <- level;
  t.entries.(off + f_touch) <- now;
  t.live <- t.live + 1;
  t.resident_bytes <- t.resident_bytes + bytes;
  if heap_policy t then begin
    if t.pend_n = Array.length t.pend then
      t.pend <- Array.append t.pend (Array.make (Array.length t.pend) 0);
    t.pend.(t.pend_n) <- index;
    t.pend_n <- t.pend_n + 1
  end
  else begin
    Bytes.unsafe_set t.a_ref index '\000';
    Queue.add { r_idx = index; r_arrival = t.arrivals } t.ring
  end

let touch t ~index ~now =
  if present t index then begin
    let off = index * stride in
    match t.policy with
    | Policy.Clock ->
      t.entries.(off + f_touch) <- now;
      Bytes.unsafe_set t.a_ref index '\001'
    | Policy.Fifo -> t.entries.(off + f_touch) <- now  (* key is static *)
    | Policy.Lru | Policy.Level_aware ->
      (* Deferred restamp: raising the key leaves the old node as a
         stale lower bound for [pick] to repair; lowering it (another
         processor's clock runs behind) must push eagerly or the heap
         would miss the entry's new, smaller key. *)
      if now < t.entries.(off + f_touch) then begin
        t.entries.(off + f_touch) <- now;
        heap_add t index
      end
      else t.entries.(off + f_touch) <- now
  end

let remove t ~index = if present t index then drop_entry t (index * stride)
let mem t ~index = present t index
let count t = t.live
let resident_bytes t = t.resident_bytes

let over_envelope t ~extra =
  match t.ram_bytes with
  | None -> false
  | Some cap -> t.resident_bytes + extra > cap

let pick_heap t ~avoid ~evictable =
  flush_pending t;
  maybe_rebuild t;
  (* Pop minima.  A stale node whose entry is still live is replaced by
     a node with the current key (the deferred restamp above), so every
     live entry stays findable; nodes the filter rejects are set aside
     and re-pushed — the entries remain candidates for later picks, as
     in the original list scan. *)
  let aside = ref [] in
  let rec go () =
    match t.heap with
    | Empty -> None
    | Node (n, children) ->
      t.heap <- h_merge_pairs children;
      t.heap_nodes <- t.heap_nodes - 1;
      let arrival = Array.unsafe_get t.entries ((n.hi * stride) + f_arrival) in
      if arrival = 0 then go ()
      else if not (node_current t n) then begin
        (* An index reused since the stamp was taken is repaired by its
           own pending/flushed node, not by this incarnation's. *)
        if arrival = n.ha then heap_add t n.hi;
        go ()
      end
      else if n.hi = avoid || not (evictable n.hi) then begin
        aside := n :: !aside;
        go ()
      end
      else Some n
  in
  let found = go () in
  List.iter
    (fun n ->
      t.heap <- h_push t.heap n;
      t.heap_nodes <- t.heap_nodes + 1)
    !aside;
  match found with
  | None -> None
  | Some n ->
    (* The caller normally removes the victim next; keep its node so a
       pick the caller abandons leaves the entry selectable. *)
    t.heap <- h_push t.heap n;
    t.heap_nodes <- t.heap_nodes + 1;
    Some n.hi

let pick_clock t ~avoid ~evictable =
  (* Two full passes suffice: the first clears every set reference bit
     the hand crosses, the second must then find a clear one (unless all
     residents are filtered out). *)
  let budget = ref ((2 * Queue.length t.ring) + 1) in
  let rec go () =
    if !budget <= 0 || Queue.is_empty t.ring then None
    else begin
      decr budget;
      let s = Queue.pop t.ring in
      if (not (present t s.r_idx))
         || t.entries.((s.r_idx * stride) + f_arrival) <> s.r_arrival
      then go ()
      else if s.r_idx = avoid || not (evictable s.r_idx) then begin
        Queue.add s t.ring;
        go ()
      end
      else if Bytes.get t.a_ref s.r_idx <> '\000' then begin
        Bytes.unsafe_set t.a_ref s.r_idx '\000';
        Queue.add s t.ring;
        go ()
      end
      else begin
        Queue.add s t.ring;
        Some s.r_idx
      end
    end
  in
  go ()

let pick t ~avoid ~evictable =
  if heap_policy t then pick_heap t ~avoid ~evictable
  else pick_clock t ~avoid ~evictable
