(* Swap devices (see the .mli). *)

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable drops : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

type t = {
  dev_name : string;
  dev_write : index:int -> now_ns:int -> Bytes.t -> unit;
  dev_read : index:int -> Bytes.t option;
  dev_mem : index:int -> bool;
  dev_drop : index:int -> now_ns:int -> unit;
  dev_stats : stats;
}

let make ~name ?mem ~write ~read ~drop () =
  let st =
    { writes = 0; reads = 0; drops = 0; bytes_written = 0; bytes_read = 0 }
  in
  {
    dev_name = name;
    dev_write =
      (fun ~index ~now_ns image ->
        st.writes <- st.writes + 1;
        st.bytes_written <- st.bytes_written + Bytes.length image;
        write ~index ~now_ns image);
    dev_read =
      (fun ~index ->
        match read ~index with
        | Some image as r ->
          st.reads <- st.reads + 1;
          st.bytes_read <- st.bytes_read + Bytes.length image;
          r
        | None -> None);
    (* The probe goes through the raw [read] closure (or a cheaper [mem]
       when the implementation has one), never [dev_read]: presence checks
       are not transfers and must not move the stats. *)
    dev_mem =
      (match mem with
      | Some m -> m
      | None -> fun ~index -> read ~index <> None);
    dev_drop =
      (fun ~index ~now_ns ->
        st.drops <- st.drops + 1;
        drop ~index ~now_ns);
    dev_stats = st;
  }

let write t = t.dev_write
let read t = t.dev_read
let mem t = t.dev_mem
let drop t = t.dev_drop
let name t = t.dev_name
let stats t = t.dev_stats

let in_memory () =
  let backing : (int, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"in-memory"
    ~mem:(fun ~index -> Hashtbl.mem backing index)
    ~write:(fun ~index ~now_ns:_ image -> Hashtbl.replace backing index image)
    ~read:(fun ~index -> Hashtbl.find_opt backing index)
    ~drop:(fun ~index ~now_ns:_ -> Hashtbl.remove backing index)
    ()
