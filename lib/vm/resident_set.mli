(** The resident-set controller: bookkeeping for every segment currently
    occupying a physical frame, an optional RAM envelope, and O(log n)
    victim selection under a pluggable {!Policy}.

    The controller holds no kernel state — the swapping memory manager
    reports insertions, touches, and removals, and asks for victims; the
    caller owns the actual frame movement.  Selection order under [Lru]
    and [Fifo] is exactly the original manager's (least (last_touch,
    arrival) pair; least arrival): keys are unique, so the heap minimum
    equals the old linear fold's minimum on every pick — which is what
    keeps pre-existing swap traces byte-identical — while scaling to
    million-entry resident sets.

    Entries the victim filter rejects (the caller's [evictable] says no,
    or the index equals [avoid]) are retained for later picks, matching
    the original list-based behavior. *)

type t

(** [ram_bytes] is the optional resident-set envelope; [None] means the
    envelope is unbounded and {!over_envelope} is always false. *)
val create : policy:Policy.t -> ?ram_bytes:int -> unit -> t

val policy : t -> Policy.t
val ram_bytes : t -> int option

(** Register a segment that just became resident.  [now] stamps the
    initial recency; arrival order is the controller's own monotonic
    counter, exactly as the original manager numbered residents. *)
val insert : t -> index:int -> bytes:int -> level:int -> now:int -> unit

(** Refresh recency (and the clock reference bit).  No-op for an index
    that is not resident. *)
val touch : t -> index:int -> now:int -> unit

(** Unregister (swap-out or free).  No-op for an unknown index. *)
val remove : t -> index:int -> unit

val mem : t -> index:int -> bool
val count : t -> int

(** Sum of [bytes] over the current residents. *)
val resident_bytes : t -> int

(** True when the envelope is configured and admitting [extra] more
    resident bytes would exceed it. *)
val over_envelope : t -> extra:int -> bool

(** The next victim under the policy, skipping [avoid] and any index the
    caller's [evictable] rejects (both stay registered).  [None] when no
    admissible resident exists. *)
val pick : t -> avoid:int -> evictable:(int -> bool) -> int option
