(* Victim-selection policies (see the .mli for semantics). *)

type t = Lru | Fifo | Clock | Level_aware

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Clock -> "clock"
  | Level_aware -> "level"

let of_string = function
  | "lru" -> Some Lru
  | "fifo" -> Some Fifo
  | "clock" -> Some Clock
  | "level" | "level-aware" -> Some Level_aware
  | _ -> None

let all = [ Lru; Fifo; Clock; Level_aware ]
