(** The swap device: where evicted segment images live while absent.

    A device is a record of closures, so implementations can live above
    this library in the dependency graph — the in-memory table here, the
    store-backed device in [I432_store.Swap_store] (journaled, CRC-framed,
    reclaimed by virtual-time compaction).  [now_ns] carries the faulting
    processor's virtual clock so a persistent device can drive its
    compaction schedule from virtual time, exactly as checkpoint blobs
    do.

    Transfer accounting is centralized in {!make}, so every
    implementation reports the same [stats] shape — the source of the
    swap-device throughput ([swap_tp]) bench key. *)

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable drops : int;
  mutable bytes_written : int;
  mutable bytes_read : int;
}

type t = private {
  dev_name : string;
  dev_write : index:int -> now_ns:int -> Bytes.t -> unit;
      (** Persist the image for [index], superseding any previous one. *)
  dev_read : index:int -> Bytes.t option;
      (** The image last written for [index], if any. *)
  dev_mem : index:int -> bool;
      (** Whether an image is held for [index].  A presence probe, not a
          transfer: it never touches [dev_stats], so the clean-eviction
          check in the swapping manager costs no accounted I/O. *)
  dev_drop : index:int -> now_ns:int -> unit;
      (** Discard [index]'s image (tombstone on a persistent device). *)
  dev_stats : stats;
}

(** Wrap an implementation; the returned closures keep [dev_stats].
    [mem] defaults to probing [read] directly (bypassing the stats). *)
val make :
  name:string ->
  ?mem:(index:int -> bool) ->
  write:(index:int -> now_ns:int -> Bytes.t -> unit) ->
  read:(index:int -> Bytes.t option) ->
  drop:(index:int -> now_ns:int -> unit) ->
  unit ->
  t

val write : t -> index:int -> now_ns:int -> Bytes.t -> unit
val read : t -> index:int -> Bytes.t option
val mem : t -> index:int -> bool
val drop : t -> index:int -> now_ns:int -> unit
val name : t -> string
val stats : t -> stats

(** The hash-table device the original swapping manager embedded — image
    lifetime is the device's lifetime, nothing persists. *)
val in_memory : unit -> t
