(** Victim-selection policies for the resident-set controller.

    [Lru] and [Fifo] reproduce the original swapping memory manager's
    selection order exactly (least-recent touch, oldest arrival breaking
    ties; oldest arrival).  [Clock] is the second-chance variant: a hand
    sweeps the residency ring, clearing reference bits until it finds a
    segment untouched since its last pass.  [Level_aware] prefers
    evicting higher-level (shorter-lived) SRO segments first — paper
    §5/§6: stack-level objects die soonest, so they are the cheapest
    misses — and falls back to LRU order within a level. *)

type t = Lru | Fifo | Clock | Level_aware

val to_string : t -> string
val of_string : string -> t option

(** Every policy, in fixed order (for sweeps and flag enums). *)
val all : t list
