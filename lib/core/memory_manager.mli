(** Memory management via alternate implementations of one specification
    (paper §6.2).

    The common interface is the module type {!S}; the system is configured
    by selecting one implementation (see {!System}).  It covers the three
    allocation mechanisms of §5 — stack (per-level local heaps), global
    heap, and local heap — plus explicit release and the presence [touch]
    the swapping implementation needs. *)

open I432
module K := I432_kernel
module Vm := I432_vm

type stats = {
  mutable allocations : int;
  mutable frees : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable alloc_faults : int;  (** storage exhausted on first attempt *)
}

module type S = sig
  type t

  val name : string
  val create : K.Machine.t -> heap_bytes:int -> t

  val allocate :
    t -> data_length:int -> access_length:int -> otype:Obj_type.t -> Access.t

  val allocate_local :
    t ->
    level:int ->
    data_length:int ->
    access_length:int ->
    otype:Obj_type.t ->
    Access.t

  val free : t -> Access.t -> unit

  (** Bring the segment in (swapping) or just validate (non-swapping). *)
  val touch : t -> Access.t -> unit

  (** The per-implementation management interface the paper allows. *)
  val stats : t -> stats
end

(** The paper's first release: no swapping; exhaustion faults. *)
module Nonswapping : S

(** Victim selection for the swapping implementation, realized by
    {!I432_vm.Resident_set}:
    - [Lru] — least recent (last touch, then admission order);
    - [Fifo_policy] — admission order;
    - [Clock] — second chance over the admission ring;
    - [Level_aware] — highest lifetime level first (shortest-lived SRO
      segments are the cheapest to lose), LRU within a level. *)
type victim_policy = Lru | Fifo_policy | Clock | Level_aware

val policy_name : victim_policy -> string

module type SWAP_CONFIG = sig
  val victim_policy : victim_policy
  val swap_in_ns : int
  val swap_out_ns : int
end

module Default_swap_config : SWAP_CONFIG

(** The swapping interface: {!S} plus the management surface the
    virtual-memory tier adds. *)
module type SWAPPING = sig
  include S

  (** [create_with] configures what [create] defaults: the victim
      [policy], a resident-set RAM envelope in bytes (evictions keep the
      sum of resident segment bytes at or under it), and the swap
      [device] absent segments live on.

      Attaching a device is the observability switch, mirroring
      [Store.attach]: only then are the [swap.ins]/[swap.outs]/
      [swap.faults]/[swap.bytes_in]/[swap.bytes_out] counters created and
      the [Swap_out]/[Swap_in]/[Swap_fault] events emitted.  [create]
      (no device, no envelope) embeds a private in-memory device and
      stays byte-identical to the pre-vm-tier manager. *)
  val create_with :
    ?policy:victim_policy ->
    ?ram_bytes:int ->
    ?device:Vm.Swap_device.t ->
    K.Machine.t ->
    heap_bytes:int ->
    t

  val device : t -> Vm.Swap_device.t
  val policy : t -> victim_policy
  val ram_bytes : t -> int option
  val resident_bytes : t -> int
  val resident_count : t -> int
end

(** The second release: segments move to a swap device under pressure
    and return on [touch]; direct access to an absent segment faults with
    [Segment_swapped_out]. *)
module Make_swapping (_ : SWAP_CONFIG) : SWAPPING

module Swapping : SWAPPING
module Swapping_fifo : SWAPPING
module Swapping_clock : SWAPPING
module Swapping_level : SWAPPING
