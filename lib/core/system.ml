(* System configuration and boot (paper §3, §6).

   "support for a minimum range of application, configurability are the most
   important iMAX goals ...  iMAX uses two complementary approaches:
   selection of needed packages and alternate implementations of standard
   specifications."

   A configuration selects: the number of processors, which memory-manager
   implementation satisfies the common specification (§6.2), which
   scheduling policy is layered on the basic process manager (§6.1), and
   whether the garbage-collector daemon runs (§8.1).  Boot instantiates
   exactly the selected packages — there is no central registry of optional
   services. *)

module K = I432_kernel

type memory_choice =
  | Non_swapping
  | Swapping_lru
  | Swapping_fifo
  | Swapping_clock
  | Swapping_level

type config = {
  processors : int;
  memory_bytes : int;
  heap_bytes : int;  (* managed heap carved for the memory manager *)
  memory_manager : memory_choice;
  swap_ram_bytes : int option;  (* resident-set envelope for swapping mms *)
  swap_device : I432_vm.Swap_device.t option;  (* attach = observe *)
  scheduling : Scheduler.policy;
  run_gc_daemon : bool;
  gc_config : I432_gc.Collector.config;
  bus_alpha_per_mille : int;
  timings : I432.Timings.t;
  trace_level : I432_obs.Tracer.level;
  trace_capacity : int;
}

let default_config =
  {
    processors = 1;
    memory_bytes = 1 lsl 22;
    heap_bytes = 1 lsl 20;
    memory_manager = Non_swapping;
    swap_ram_bytes = None;
    swap_device = None;
    scheduling = Scheduler.Null;
    run_gc_daemon = false;
    gc_config = I432_gc.Collector.default_config;
    bus_alpha_per_mille = 20;
    timings = I432.Timings.default;
    trace_level = I432_obs.Tracer.Off;
    trace_capacity = I432_obs.Tracer.default_capacity;
  }

(* A booted system: the machine plus the packages the configuration
   selected.  The memory manager is a first-class module packaged with its
   state — the "package as type" extension of §6.3. *)

type packed_mm = Packed : (module Memory_manager.S with type t = 'a) * 'a -> packed_mm

type packed_swapping =
  | Packed_swapping :
      (module Memory_manager.SWAPPING with type t = 'a) * 'a
      -> packed_swapping

type t = {
  machine : K.Machine.t;
  process_manager : Process_manager.t;
  scheduler : Scheduler.t;
  memory : packed_mm;
  swapping : packed_swapping option;
  collector : I432_gc.Collector.t option;
  config : config;
}

let boot ?(config = default_config) () =
  let machine =
    K.Machine.create
      ~config:
        {
          K.Machine.processors = config.processors;
          memory_bytes = config.memory_bytes;
          timings = config.timings;
          bus_alpha_per_mille = config.bus_alpha_per_mille;
          global_heap_bytes = config.memory_bytes - 4096;
          trace_level = config.trace_level;
          trace_capacity = config.trace_capacity;
        }
      ()
  in
  let process_manager = Process_manager.create machine in
  let scheduler = Scheduler.create machine process_manager config.scheduling in
  (match config.scheduling with
  | Scheduler.Fair_share -> ignore (Scheduler.spawn_daemon scheduler)
  | Scheduler.Null | Scheduler.Round_robin -> ());
  let boot_swapping (type a)
      (module M : Memory_manager.SWAPPING with type t = a) =
    let mm =
      M.create_with ?ram_bytes:config.swap_ram_bytes
        ?device:config.swap_device machine ~heap_bytes:config.heap_bytes
    in
    (Packed ((module M), mm), Some (Packed_swapping ((module M), mm)))
  in
  let memory, swapping =
    match config.memory_manager with
    | Non_swapping ->
      let mm =
        Memory_manager.Nonswapping.create machine ~heap_bytes:config.heap_bytes
      in
      (Packed ((module Memory_manager.Nonswapping), mm), None)
    | Swapping_lru -> boot_swapping (module Memory_manager.Swapping)
    | Swapping_fifo -> boot_swapping (module Memory_manager.Swapping_fifo)
    | Swapping_clock -> boot_swapping (module Memory_manager.Swapping_clock)
    | Swapping_level -> boot_swapping (module Memory_manager.Swapping_level)
  in
  let collector =
    if config.run_gc_daemon then begin
      let c = I432_gc.Collector.create ~config:config.gc_config machine in
      ignore (I432_gc.Collector.spawn_daemon c);
      (* A configured collector doubles as the kernel's reclaim hook: a
         bounded allocation retry (Machine.allocate_retry) runs a
         synchronous collection cycle between attempts. *)
      K.Machine.set_reclaim_hook machine
        (Some (fun () -> I432_gc.Collector.cycle c));
      Some c
    end
    else None
  in
  { machine; process_manager; scheduler; memory; swapping; collector; config }

let machine t = t.machine
let process_manager t = t.process_manager
let scheduler t = t.scheduler
let collector t = t.collector

(* Allocate through whichever memory-manager implementation was selected;
   callers cannot tell which is running (§6.2). *)
let mm_allocate t ~data_length ~access_length ~otype =
  let (Packed ((module M), mm)) = t.memory in
  M.allocate mm ~data_length ~access_length ~otype

let mm_free t access =
  let (Packed ((module M), mm)) = t.memory in
  M.free mm access

let mm_touch t access =
  let (Packed ((module M), mm)) = t.memory in
  M.touch mm access

let mm_stats t =
  let (Packed ((module M), mm)) = t.memory in
  M.stats mm

let mm_name t =
  let (Packed ((module M), _)) = t.memory in
  M.name

(* The swapping management interface, when a swapping implementation was
   selected (None under Non_swapping). *)

let mm_resident_bytes t =
  Option.map
    (fun (Packed_swapping ((module M), mm)) -> M.resident_bytes mm)
    t.swapping

let mm_resident_count t =
  Option.map
    (fun (Packed_swapping ((module M), mm)) -> M.resident_count mm)
    t.swapping

let mm_device t =
  Option.map (fun (Packed_swapping ((module M), mm)) -> M.device mm) t.swapping

let memory_choice_to_string = function
  | Non_swapping -> "non-swapping"
  | Swapping_lru -> "swapping/lru"
  | Swapping_fifo -> "swapping/fifo"
  | Swapping_clock -> "swapping/clock"
  | Swapping_level -> "swapping/level"

(* Run to completion and report. *)
let run ?max_ns ?max_steps t = K.Machine.run ?max_ns ?max_steps t.machine
