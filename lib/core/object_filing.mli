(** Object filing: type-preserving passive storage (paper §7.2).

    A filed object's data image and hardware type identity are captured
    together; retrieval reconstructs the object with its type intact, so a
    sealed instance comes back sealed and a wrong type assertion faults.
    Composite filing captures the reachable graph (cycles and sharing
    included) and rebuilds it isomorphic. *)

open I432
module K := I432_kernel

type t

exception Not_filed of string

val create : K.Machine.t -> t

(** File one object's data image and type under [key]. *)
val store : t -> key:string -> Access.t -> unit

(** Recreate a filed object (allocated from [sro], default global heap). *)
val retrieve : t -> ?sro:Access.t -> key:string -> unit -> Access.t

(** Retrieve with a hardware type assertion; wrong type faults. *)
val retrieve_as :
  t -> ?sro:Access.t -> key:string -> expected:Obj_type.t -> unit -> Access.t

(** {1 Composite filing and the wire codec}

    [capture]/[reconstruct] serialize the reachable graph into a
    machine-independent value and rebuild it isomorphic (same shapes,
    types, data images, rights, sharing, and cycles) on any machine's
    heap.  The filing store uses them locally; the virtual interconnect
    uses them as its marshalling format, capturing on the sending node
    and reconstructing on the receiving one. *)

(** A captured composite: serial 0 is the root. *)
type wire

(** Capture everything reachable from the root through access parts.
    [mask] (default {!I432.Rights.full}) is intersected into the root's
    rights and every edge's rights, so an exported descriptor can never
    arrive amplified.  Serials follow discovery order, so identical
    graphs capture to identical wires. *)
val capture : K.Machine.t -> ?mask:Rights.t -> Access.t -> wire

(** Rebuild a captured graph on [machine]'s heap (allocated from [sro],
    default that machine's global heap).  Returns the new root, carrying
    the captured (masked) root rights. *)
val reconstruct : K.Machine.t -> ?sro:Access.t -> wire -> Access.t

(** Number of objects in the captured graph. *)
val wire_nodes : wire -> int

(** Deterministic serialized-size model (for link bandwidth accounting):
    16 bytes per node header, the data image, 12 bytes per edge. *)
val wire_bytes : wire -> int

(** {1 Binary wire codec}

    The persistent encoding used by the filing store's journal
    (lib/store).  [encode_wire] is deterministic — the same wire always
    yields the same bytes — so same-seed runs journal identical records.
    [decode_wire] validates everything (version, type tags, edge targets
    and slots, exact length) and raises {!Corrupt_wire} rather than
    returning a malformed graph. *)

exception Corrupt_wire of string

val encode_wire : wire -> Bytes.t
val decode_wire : Bytes.t -> wire

(** Structural equality of captured graphs (serials, types, images,
    access lengths, edges, rights — everything the codec round-trips). *)
val wire_equal : wire -> wire -> bool

(** File everything reachable from the root through access parts.
    Returns the number of objects filed. *)
val store_graph : t -> key:string -> Access.t -> int

(** Rebuild a filed graph isomorphic (fresh objects, same shapes, types,
    data, sharing, and cycles).  Returns the new root. *)
val retrieve_graph : t -> ?sro:Access.t -> key:string -> unit -> Access.t

val graph_size : t -> key:string -> int option

(** {1 Introspection} *)

val filed_type : t -> key:string -> Obj_type.t option
val mem : t -> key:string -> bool
val remove : t -> key:string -> unit
val count : t -> int
val stores : t -> int
val retrievals : t -> int
