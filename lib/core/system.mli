(** System configuration and boot (paper §3, §6).

    A configuration selects the processor count, which memory-manager
    implementation satisfies the common specification, which scheduling
    policy layers on the basic process manager, and whether the collector
    daemon runs.  Boot instantiates exactly the selected packages. *)

open I432
module K := I432_kernel

type memory_choice =
  | Non_swapping
  | Swapping_lru
  | Swapping_fifo
  | Swapping_clock
  | Swapping_level

type config = {
  processors : int;
  memory_bytes : int;
  heap_bytes : int;  (** heap carved for the selected memory manager *)
  memory_manager : memory_choice;
  swap_ram_bytes : int option;
      (** resident-set RAM envelope for the swapping managers; [None]
          (the default) means pressure-driven eviction only *)
  swap_device : I432_vm.Swap_device.t option;
      (** swap device for the swapping managers; attaching one turns on
          the swap.* counters and Swap_* events (default [None]: a
          private in-memory device, unobserved) *)
  scheduling : Scheduler.policy;
  run_gc_daemon : bool;
  gc_config : I432_gc.Collector.config;
  bus_alpha_per_mille : int;
  timings : Timings.t;
  trace_level : I432_obs.Tracer.level;
  trace_capacity : int;  (** event-ring slots per processor *)
}

val default_config : config

type t

val boot : ?config:config -> unit -> t
val machine : t -> K.Machine.t
val process_manager : t -> Process_manager.t
val scheduler : t -> Scheduler.t
val collector : t -> I432_gc.Collector.t option

(** {1 The selected memory manager, behind the common interface} *)

val mm_allocate :
  t -> data_length:int -> access_length:int -> otype:Obj_type.t -> Access.t

val mm_free : t -> Access.t -> unit
val mm_touch : t -> Access.t -> unit
val mm_stats : t -> Memory_manager.stats
val mm_name : t -> string

(** {1 The swapping management interface}

    [None] when the selected implementation does not swap. *)

val mm_resident_bytes : t -> int option
val mm_resident_count : t -> int option
val mm_device : t -> I432_vm.Swap_device.t option
val memory_choice_to_string : memory_choice -> string

(** Run the machine to completion (or a bound). *)
val run : ?max_ns:int -> ?max_steps:int -> t -> K.Machine.run_report
