(* Memory management via alternate implementations (paper §6.2).

   "Virtually all processes make use of memory management facilities via a
   standard interface that permits allocation of new objects.  Few processes
   depend upon whether the underlying implementation includes swapping or
   not.  A single Ada specification defines the common interface. ...  Both
   a swapping and a non-swapping implementation meet this specification but
   are optimized internally to the level of function they provide.  Each may
   provide an additional management interface."

   The common interface is the module type S below; the system is configured
   by picking one first-class module (see {!System}).  The interface covers
   the three allocation mechanisms of §5: stack allocation (per-call local
   heaps), global heap allocation, and local heap allocation.

   The swapping implementation is built on the virtual-memory tier
   (lib/vm): a {!I432_vm.Resident_set} controller owns victim selection
   and the optional RAM envelope, and a {!I432_vm.Swap_device} holds the
   evicted segment images.  With no device configured the manager embeds
   an in-memory device and emits no events and no counters — exactly the
   original behavior, byte for byte.  Attaching a device (the explicit
   act, mirroring Store.attach) turns on the swap.* counters and the
   Swap_out/Swap_in/Swap_fault events. *)

open I432
module K = I432_kernel
module Obs = I432_obs
module Vm = I432_vm

type stats = {
  mutable allocations : int;
  mutable frees : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable alloc_faults : int;  (* storage exhausted on first attempt *)
}

let fresh_stats () =
  { allocations = 0; frees = 0; swap_ins = 0; swap_outs = 0; alloc_faults = 0 }

module type S = sig
  type t

  val name : string
  val create : K.Machine.t -> heap_bytes:int -> t

  (** Global heap allocation: the object lives at level 0 until
      unreachable. *)
  val allocate :
    t -> data_length:int -> access_length:int -> otype:Obj_type.t -> Access.t

  (** Local heap allocation at a lifetime level (a new SRO per level). *)
  val allocate_local :
    t ->
    level:int ->
    data_length:int ->
    access_length:int ->
    otype:Obj_type.t ->
    Access.t

  (** Explicit release (garbage collection frees the rest). *)
  val free : t -> Access.t -> unit

  (** Touch an object before direct data access: the swapping implementation
      brings the segment in; the non-swapping one checks validity only. *)
  val touch : t -> Access.t -> unit

  (** The common interface ends here; [stats] is the per-implementation
      management interface the paper allows. *)
  val stats : t -> stats
end

(* Shared plumbing: per-level local SROs and descriptor release. *)

let release_to_owner table index st =
  match Sro.state_of_object table ~index with
  | Some s ->
    Sro.release table ~sro_state:s ~index;
    st.frees <- st.frees + 1
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Non-swapping implementation (the paper's first release)             *)
(* ------------------------------------------------------------------ *)

module Nonswapping : S = struct
  type t = {
    machine : K.Machine.t;
    heap : Access.t;  (* level-0 SRO *)
    mutable locals : (int * Access.t) list;  (* level -> SRO *)
    st : stats;
  }

  let name = "non-swapping"

  let create machine ~heap_bytes =
    let heap = K.Machine.create_local_sro machine ~level:0 ~bytes:heap_bytes in
    { machine; heap; locals = []; st = fresh_stats () }

  let allocate t ~data_length ~access_length ~otype =
    match
      K.Machine.allocate t.machine t.heap ~data_length ~access_length ~otype
    with
    | a ->
      t.st.allocations <- t.st.allocations + 1;
      a
    | exception Fault.Fault (Fault.Storage_exhausted _ as cause) ->
      t.st.alloc_faults <- t.st.alloc_faults + 1;
      Fault.raise_fault cause

  let local_sro t ~level =
    match List.assoc_opt level t.locals with
    | Some sro when Sro.is_live (K.Machine.table t.machine) sro -> sro
    | Some _ | None ->
      let sro =
        K.Machine.create_local_sro t.machine ~level ~bytes:(64 * 1024)
      in
      t.locals <- (level, sro) :: List.remove_assoc level t.locals;
      sro

  let allocate_local t ~level ~data_length ~access_length ~otype =
    let sro = local_sro t ~level in
    let a = K.Machine.allocate t.machine sro ~data_length ~access_length ~otype in
    t.st.allocations <- t.st.allocations + 1;
    a

  let free t access =
    release_to_owner (K.Machine.table t.machine) (Access.index access) t.st

  let touch t access =
    (* Validity check only: a non-swapping system never has absent
       segments. *)
    ignore (Object_table.entry_of_access (K.Machine.table t.machine) access)

  let stats t = t.st
end

(* ------------------------------------------------------------------ *)
(* Swapping implementation (the paper's second release)                *)
(* ------------------------------------------------------------------ *)

type victim_policy = Lru | Fifo_policy | Clock | Level_aware

let policy_name = function
  | Lru -> "lru"
  | Fifo_policy -> "fifo"
  | Clock -> "clock"
  | Level_aware -> "level"

let vm_policy = function
  | Lru -> Vm.Policy.Lru
  | Fifo_policy -> Vm.Policy.Fifo
  | Clock -> Vm.Policy.Clock
  | Level_aware -> Vm.Policy.Level_aware

module type SWAP_CONFIG = sig
  val victim_policy : victim_policy
  val swap_in_ns : int
  val swap_out_ns : int
end

module Default_swap_config = struct
  let victim_policy = Lru
  let swap_in_ns = 400_000  (* ~0.4 ms: a fast backing store *)
  let swap_out_ns = 400_000
end

module type SWAPPING = sig
  include S

  (** The additional management interface (§6.2): configure the victim
      policy, a resident-set RAM envelope, and a swap device.  [create]
      is [create_with] with the functor's policy, no envelope, and an
      embedded in-memory device — and, crucially, no observability: only
      an explicitly attached device turns on swap.* counters and the
      Swap_out/Swap_in/Swap_fault events, so a system without one is
      byte-identical to the pre-vm-tier manager. *)
  val create_with :
    ?policy:victim_policy ->
    ?ram_bytes:int ->
    ?device:Vm.Swap_device.t ->
    K.Machine.t ->
    heap_bytes:int ->
    t

  val device : t -> Vm.Swap_device.t
  val policy : t -> victim_policy
  val ram_bytes : t -> int option
  val resident_bytes : t -> int
  val resident_count : t -> int
end

module Make_swapping (C : SWAP_CONFIG) : SWAPPING = struct
  (* swap.* counters, created only when a device is attached. *)
  type observed = {
    o_ins : Obs.Metrics.counter;
    o_outs : Obs.Metrics.counter;
    o_faults : Obs.Metrics.counter;
    o_bytes_in : Obs.Metrics.counter;
    o_bytes_out : Obs.Metrics.counter;
  }

  type t = {
    machine : K.Machine.t;
    heap : Access.t;
    mutable locals : (int * Access.t) list;
    rset : Vm.Resident_set.t;
    dev : Vm.Swap_device.t;
    pol : victim_policy;
    obs : observed option;
    st : stats;
  }

  let name = "swapping/" ^ policy_name C.victim_policy

  let create_with ?policy ?ram_bytes ?device machine ~heap_bytes =
    let pol = Option.value policy ~default:C.victim_policy in
    let dev, obs =
      match device with
      | Some d ->
        let metrics = K.Machine.metrics machine in
        let c = Obs.Metrics.counter metrics in
        ( d,
          Some
            {
              o_ins = c "swap.ins";
              o_outs = c "swap.outs";
              o_faults = c "swap.faults";
              o_bytes_in = c "swap.bytes_in";
              o_bytes_out = c "swap.bytes_out";
            } )
      | None -> (Vm.Swap_device.in_memory (), None)
    in
    let heap = K.Machine.create_local_sro machine ~level:0 ~bytes:heap_bytes in
    {
      machine;
      heap;
      locals = [];
      rset = Vm.Resident_set.create ~policy:(vm_policy pol) ?ram_bytes ();
      dev;
      pol;
      obs;
      st = fresh_stats ();
    }

  let create machine ~heap_bytes = create_with machine ~heap_bytes

  let device t = t.dev
  let policy t = t.pol
  let ram_bytes t = Vm.Resident_set.ram_bytes t.rset
  let resident_bytes t = Vm.Resident_set.resident_bytes t.rset
  let resident_count t = Vm.Resident_set.count t.rset

  let note_resident t index =
    let table = K.Machine.table t.machine in
    let e = Object_table.lookup table index in
    Vm.Resident_set.insert t.rset ~index ~bytes:e.Object_table.data_length
      ~level:e.Object_table.level
      ~now:(K.Machine.now t.machine)

  (* A victim must be resident, valid, non-system, and non-empty — the
     same candidate filter the original linear scan applied. *)
  let evictable t index =
    let table = K.Machine.table t.machine in
    Object_table.is_valid table index
    &&
    let e = Object_table.lookup table index in
    (not e.Object_table.swapped_out)
    && (not (Obj_type.is_system e.Object_table.otype))
    && e.Object_table.data_length > 0

  let pick_victim t ~avoid =
    Vm.Resident_set.pick t.rset ~avoid ~evictable:(evictable t)

  (* Swap one segment out: save its data image on the device, mark the
     descriptor absent, and return its frame to the owning SRO's free
     store.

     A clean victim — not written since its last device transfer, with
     its image still retained on the device — skips the write and its
     charge entirely: the retained image is already current.  Only an
     attached device retains images across swap-in (see [swap_in]), so
     the embedded manager never takes this path and stays byte-identical
     to the pre-dirty-bit behavior. *)
  let swap_out t index =
    let table = K.Machine.table t.machine in
    let memory = K.Machine.memory t.machine in
    let e = Object_table.lookup table index in
    let clean =
      (not e.Object_table.dirty) && Vm.Swap_device.mem t.dev ~index
    in
    if not clean then begin
      let image =
        Memory.blit_to_bytes memory ~src_addr:e.Object_table.base
          ~len:e.Object_table.data_length
      in
      Vm.Swap_device.write t.dev ~index ~now_ns:(K.Machine.now t.machine) image
    end;
    (match Sro.state_of_object table ~index with
    | Some s ->
      Sro.donate table ~sro_state:s ~base:e.Object_table.base
        ~length:e.Object_table.data_length
    | None -> ());
    e.Object_table.swapped_out <- true;
    e.Object_table.dirty <- false;
    Vm.Resident_set.remove t.rset ~index;
    if not clean then K.Machine.charge t.machine C.swap_out_ns;
    t.st.swap_outs <- t.st.swap_outs + 1;
    match t.obs with
    | Some o ->
      Obs.Metrics.incr o.o_outs;
      if clean then
        Obs.Metrics.incr
          (Obs.Metrics.counter
             (K.Machine.metrics t.machine)
             "swap.clean_evictions")
      else Obs.Metrics.incr ~by:e.Object_table.data_length o.o_bytes_out;
      K.Machine.emit_event t.machine ~name:(policy_name t.pol) ~a:index
        ~b:e.Object_table.data_length Obs.Event.Swap_out
    | None -> ()

  (* Evict until [sro_state] can supply [size] bytes, or no victims remain. *)
  let rec make_room t ~sro_state ~size ~avoid =
    let table = K.Machine.table t.machine in
    match Sro.carve table ~sro_state ~size with
    | Some base -> Some base
    | None -> (
      match pick_victim t ~avoid with
      | None -> None
      | Some victim ->
        swap_out t victim;
        make_room t ~sro_state ~size ~avoid)

  (* The RAM envelope: after a segment becomes resident, evict until the
     resident set fits again.  Without [ram_bytes] this is free —
     [over_envelope] is constantly false — which is what keeps the
     no-envelope manager's eviction schedule (and therefore every
     pre-existing trace) unchanged. *)
  let rec enforce_envelope t ~avoid =
    if Vm.Resident_set.over_envelope t.rset ~extra:0 then
      match pick_victim t ~avoid with
      | None -> ()  (* nothing evictable; the heap SRO still bounds us *)
      | Some victim ->
        swap_out t victim;
        enforce_envelope t ~avoid

  (* Bring a swapped-out segment back, evicting residents as needed. *)
  let swap_in t index =
    let table = K.Machine.table t.machine in
    let memory = K.Machine.memory t.machine in
    let e = Object_table.lookup table index in
    if e.Object_table.swapped_out then begin
      let size = e.Object_table.data_length in
      match Sro.state_of_object table ~index with
      | None -> Fault.raise_fault Fault.Sro_destroyed
      | Some s -> (
        match make_room t ~sro_state:s ~size ~avoid:index with
        | None ->
          Fault.raise_fault
            (Fault.Storage_exhausted { requested = size; available = 0 })
        | Some base ->
          (match Vm.Swap_device.read t.dev ~index with
          | Some image ->
            Memory.blit_from_bytes memory ~src:image ~dst_addr:base
          | None -> Memory.fill memory ~addr:base ~len:size ~byte:'\000');
          (* An attached device retains the image so an unmodified
             segment can be re-evicted without a write; the embedded
             device keeps the original drop-on-swap-in lifetime. *)
          if t.obs = None then
            Vm.Swap_device.drop t.dev ~index ~now_ns:(K.Machine.now t.machine);
          e.Object_table.base <- base;
          e.Object_table.swapped_out <- false;
          e.Object_table.dirty <- false;
          note_resident t index;
          K.Machine.charge t.machine C.swap_in_ns;
          t.st.swap_ins <- t.st.swap_ins + 1;
          (match t.obs with
          | Some o ->
            Obs.Metrics.incr o.o_ins;
            Obs.Metrics.incr ~by:size o.o_bytes_in;
            K.Machine.emit_event t.machine
              ~name:(Vm.Swap_device.name t.dev)
              ~a:index ~b:size Obs.Event.Swap_in
          | None -> ());
          enforce_envelope t ~avoid:index)
    end

  (* A recycled descriptor index must not inherit a stale retained image:
     the object that owned the index before may have been reclaimed by GC
     sweep or SRO destruction, which bypass [free].  Checked on every
     allocation because those are exactly the points where an index comes
     back into use as a potential victim. *)
  let invalidate_stale_image t index =
    if t.obs <> None && Vm.Swap_device.mem t.dev ~index then
      Vm.Swap_device.drop t.dev ~index ~now_ns:(K.Machine.now t.machine)

  let allocate_with_pressure t sro ~data_length ~access_length ~otype =
    match
      K.Machine.allocate t.machine sro ~data_length ~access_length ~otype
    with
    | a ->
      t.st.allocations <- t.st.allocations + 1;
      invalidate_stale_image t (Access.index a);
      note_resident t (Access.index a);
      enforce_envelope t ~avoid:(Access.index a);
      a
    | exception Fault.Fault (Fault.Storage_exhausted _) -> (
      t.st.alloc_faults <- t.st.alloc_faults + 1;
      let table = K.Machine.table t.machine in
      let s = Sro.state_of table sro in
      match make_room t ~sro_state:s ~size:data_length ~avoid:(-1) with
      | None ->
        Fault.raise_fault
          (Fault.Storage_exhausted { requested = data_length; available = 0 })
      | Some base ->
        (* Return the carved frame and let the allocator place the new
           object there. *)
        Sro.donate table ~sro_state:s ~base ~length:data_length;
        let a =
          K.Machine.allocate t.machine sro ~data_length ~access_length ~otype
        in
        t.st.allocations <- t.st.allocations + 1;
        invalidate_stale_image t (Access.index a);
        note_resident t (Access.index a);
        enforce_envelope t ~avoid:(Access.index a);
        a)

  let allocate t ~data_length ~access_length ~otype =
    allocate_with_pressure t t.heap ~data_length ~access_length ~otype

  let local_sro t ~level =
    match List.assoc_opt level t.locals with
    | Some sro when Sro.is_live (K.Machine.table t.machine) sro -> sro
    | Some _ | None ->
      let sro =
        K.Machine.create_local_sro t.machine ~level ~bytes:(64 * 1024)
      in
      t.locals <- (level, sro) :: List.remove_assoc level t.locals;
      sro

  let allocate_local t ~level ~data_length ~access_length ~otype =
    let sro = local_sro t ~level in
    allocate_with_pressure t sro ~data_length ~access_length ~otype

  let free t access =
    let table = K.Machine.table t.machine in
    let e = Object_table.entry_of_access table access in
    Vm.Resident_set.remove t.rset ~index:e.Object_table.index;
    if e.Object_table.swapped_out then begin
      (* The segment is absent, so its image is on the device; release
         the image, and with no physical frame to return, make the
         release a descriptor-only operation. *)
      Vm.Swap_device.drop t.dev ~index:e.Object_table.index
        ~now_ns:(K.Machine.now t.machine);
      e.Object_table.data_length <- 0;
      e.Object_table.swapped_out <- false
    end
    else
      (* Resident, but an attached device may still retain the image
         kept across swap-in; the index is about to be recycled, so the
         image must not outlive the object. *)
      invalidate_stale_image t e.Object_table.index;
    release_to_owner table e.Object_table.index t.st

  let touch t access =
    let table = K.Machine.table t.machine in
    let e = Object_table.entry_of_access table access in
    if e.Object_table.swapped_out then begin
      (match t.obs with
      | Some o ->
        Obs.Metrics.incr o.o_faults;
        K.Machine.emit_event t.machine ~a:e.Object_table.index
          ~b:e.Object_table.data_length Obs.Event.Swap_fault
      | None -> ());
      swap_in t e.Object_table.index
    end;
    Vm.Resident_set.touch t.rset ~index:e.Object_table.index
      ~now:(K.Machine.now t.machine)

  let stats t = t.st
end

module Swapping = Make_swapping (Default_swap_config)

module Swapping_fifo = Make_swapping (struct
  let victim_policy = Fifo_policy
  let swap_in_ns = Default_swap_config.swap_in_ns
  let swap_out_ns = Default_swap_config.swap_out_ns
end)

module Swapping_clock = Make_swapping (struct
  let victim_policy = Clock
  let swap_in_ns = Default_swap_config.swap_in_ns
  let swap_out_ns = Default_swap_config.swap_out_ns
end)

module Swapping_level = Make_swapping (struct
  let victim_policy = Level_aware
  let swap_in_ns = Default_swap_config.swap_in_ns
  let swap_out_ns = Default_swap_config.swap_out_ns
end)
