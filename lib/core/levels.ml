(* The internal level discipline of iMAX (paper §7.3).

   "The implementation of iMAX defines a set of levels which dictate what
   operations are permitted to processes at that level.  Processes below
   level 3 of the system ... are in general not permitted to fault.
   Processes at level 2 are actually permitted a limited set of timeout
   faults while those at level 1 are not permitted even these.  To avoid
   dependency couplings, all communications between levels 2 and 3 of the
   system must be asynchronous and upward communication must never depend
   upon a reply."

   Levels are orthogonal to abstractions: a single abstraction may span
   several levels.  The kernel enforces the fault rule (Machine panics when
   a process below level 3 faults); this module provides the level
   vocabulary, the communication-legality checks, and the asynchronous
   notification primitive that is the only legal upward channel from
   level 2. *)

open I432
module K = I432_kernel

type level =
  | Level1  (* innermost: no faults at all, not even timeouts *)
  | Level2  (* limited timeout faults; upward communication asynchronous *)
  | Level3  (* may fault; full services *)
  | User  (* ordinary application processes (level 4 and above) *)

let to_int = function Level1 -> 1 | Level2 -> 2 | Level3 -> 3 | User -> 4

let of_int = function
  | 1 -> Level1
  | 2 -> Level2
  | 3 -> Level3
  | n when n >= 4 -> User
  | n -> invalid_arg (Printf.sprintf "Levels.of_int: %d" n)

let to_string = function
  | Level1 -> "level-1"
  | Level2 -> "level-2"
  | Level3 -> "level-3"
  | User -> "user"

(* May a process at [level] fault with [cause]?  Level 2 is allowed only
   timeouts; level 1 nothing; level 3 and users anything. *)
let may_fault level cause =
  match level with
  | Level3 | User -> true
  | Level1 -> false
  | Level2 -> (
    match cause with
    | Fault.Protocol msg ->
      (* The "limited set of timeout faults". *)
      String.length msg >= 7 && String.sub msg 0 7 = "timeout"
    | Fault.Timeout _ -> true
    | Fault.Rights_violation _ | Fault.Level_violation _
    | Fault.Type_mismatch _ | Fault.Bounds _ | Fault.Invalid_descriptor _
    | Fault.Null_access | Fault.Storage_exhausted _ | Fault.Sro_destroyed
    | Fault.Segment_swapped_out _ | Fault.Transient _ -> false)

(* Is a communication from [src] to [dst] required to be asynchronous?
   The 2<->3 boundary is; everything else may be synchronous. *)
let must_be_asynchronous ~src ~dst =
  let s = to_int src and d = to_int dst in
  (s = 2 && d >= 3) || (s >= 3 && d = 2)

(* May [src] block waiting for a reply from [dst]?  "Upward communication
   must never depend upon a reply": level 2 must not wait on level 3. *)
let may_await_reply ~src ~dst =
  not (to_int src = 2 && to_int dst >= 3)

exception Discipline_violation of string

(* Spawn a process pinned to an iMAX level.  The kernel's panic rule uses
   the numeric level. *)
let spawn machine ~level ?(priority = 8) ?daemon ~name body =
  K.Machine.spawn machine ~system_level:(to_int level) ~priority ?daemon ~name
    body

(* The only legal upward channel from level 2: a non-blocking post that
   neither waits for space nor for a reply.  Returns whether the
   notification was accepted. *)
let async_notify machine ~src ~port ~msg =
  if to_int src = 2 then K.Machine.cond_send machine ~port ~msg
  else begin
    K.Machine.send machine ~port ~msg;
    true
  end

(* A guarded synchronous call helper for intra-level services: refuses the
   call shapes the discipline forbids instead of deadlocking the system. *)
let sync_call machine ~src ~dst ~entry ~parameter =
  if not (may_await_reply ~src ~dst) then
    raise
      (Discipline_violation
         (Printf.sprintf "%s may not await a reply from %s" (to_string src)
            (to_string dst)))
  else begin
    ignore machine;
    Ada_tasks.call entry ~parameter
  end
