(* The basic process manager (paper §6.1).

   It "completes the model of processes embedded in the hardware" without
   arbitrating the processor resource: dispatching parameters pass through
   to the hardware, and resource policy is layered on top by a scheduler
   package (see {!Scheduler}).

   Stop/start semantics: "Each process has a count of the number of stops or
   starts outstanding against it which determines if it is currently
   running.  Since starts and stops apply to entire trees, a user wishing to
   control a computation need not be aware of the internal structure of that
   process."  A process is in the dispatching mix iff its stop count is
   zero; the kernel is told only about 0<->1 transitions, and the scheduler
   port is notified so a policy module can track the mix without tracking
   the tree (the counts are "maintained by the basic process manager").

   The manager also registers the process destruction filter so that lost
   process objects are recovered (§8.2: the first release of iMAX "uses this
   facility only to recover lost process objects"). *)

open I432
module K = I432_kernel

type node = {
  access : Access.t;
  node_name : string;
  parent : int option;  (* object index of parent process *)
  mutable children : int list;
  mutable stop_count : int;
  mutable live : bool;
}

(* Restart-on-fault supervision (DESIGN.md §8): when a supervised process
   faults, the manager spawns a fresh incarnation of the same body after an
   exponentially growing virtual-time backoff, until the restart budget is
   spent.  This is iMAX's "sending them back to software" fault path closed
   into a loop: the corpse still goes to the fault port; the computation
   continues under a new process object. *)
type restart_policy = {
  max_restarts : int;  (* total restarts allowed over the body's lifetime *)
  backoff_ns : int;  (* virtual-time delay before the first restart *)
}

let default_policy = { max_restarts = 3; backoff_ns = 1_000_000 }

type supervision = {
  policy : restart_policy;
  sup_body : unit -> unit;
  sup_name : string;
  sup_priority : int;
  sup_level : int;
  sup_parent : int option;
  mutable restarts : int;
  mutable next_backoff_ns : int;
  mutable incarnations : int list;  (* process indices, newest first *)
}

type t = {
  machine : K.Machine.t;
  mutable nodes : (int * node) list;  (* keyed by process object index *)
  recovery_port : Access.t;  (* destruction filter for process objects *)
  mutable recovered : int;
  mutable supervised : supervision list;
  restarts_ctr : I432_obs.Metrics.counter;
}

let find t index = List.assoc_opt index t.nodes

let register_node t ~access ~name ~parent_index =
  let index = Access.index access in
  (match parent_index with
  | Some pi -> (
    match find t pi with
    | Some pn -> pn.children <- index :: pn.children
    | None -> Fault.raise_fault (Fault.Protocol "parent process not managed"))
  | None -> ());
  let node =
    {
      access;
      node_name = name;
      parent = parent_index;
      children = [];
      stop_count = 0;
      live = true;
    }
  in
  t.nodes <- (index, node) :: t.nodes;
  node

(* Fault hook: restart the supervised incarnation that just died, if its
   budget allows.  Unsupervised processes are untouched. *)
let handle_fault t (proc : K.Process.t) (_ : Fault.cause) =
  match
    List.find_opt
      (fun s ->
        match s.incarnations with i :: _ -> i = proc.K.Process.index | [] -> false)
      t.supervised
  with
  | None -> ()
  | Some s ->
    if s.restarts < s.policy.max_restarts then begin
      s.restarts <- s.restarts + 1;
      (match find t proc.K.Process.index with
      | Some n -> n.live <- false
      | None -> ());
      let access =
        K.Machine.spawn t.machine ~priority:s.sup_priority
          ~system_level:s.sup_level ~name:s.sup_name
          ~start_after:s.next_backoff_ns s.sup_body
      in
      s.next_backoff_ns <- s.next_backoff_ns * 2;
      s.incarnations <- Access.index access :: s.incarnations;
      ignore (register_node t ~access ~name:s.sup_name ~parent_index:s.sup_parent);
      I432_obs.Metrics.incr t.restarts_ctr;
      K.Machine.emit_event t.machine ~name:s.sup_name ~a:(Access.index access)
        ~b:s.restarts I432_obs.Event.Proc_restarted
    end

let create machine =
  let recovery_port =
    K.Machine.create_port machine ~capacity:256 ~discipline:K.Port.Fifo ()
  in
  I432_gc.Destruction_filter.register_process_filter (K.Machine.table machine)
    recovery_port;
  let t =
    {
      machine;
      nodes = [];
      recovery_port;
      recovered = 0;
      supervised = [];
      restarts_ctr =
        I432_obs.Metrics.counter (K.Machine.metrics machine) "proc.restarts";
    }
  in
  K.Machine.set_fault_hook machine (Some (fun proc cause -> handle_fault t proc cause));
  t

let node_of_access t access =
  match find t (Access.index access) with
  | Some n -> n
  | None -> Fault.raise_fault (Fault.Protocol "process not managed")

(* Create a managed process, optionally as the child of another managed
   process (the Ada task model: a process's lifetime nests in its
   parent's). *)
let create_process t ?parent ?(priority = 8) ?(system_level = 4) ~name body =
  let access =
    K.Machine.spawn t.machine ~priority ~system_level ~name body
  in
  let parent_index = Option.map (fun a -> Access.index a) parent in
  ignore (register_node t ~access ~name ~parent_index);
  access

(* Create a managed process with a restart-on-fault policy.  The returned
   access names the first incarnation; {!current_incarnation} follows the
   replacement chain after restarts. *)
let create_supervised t ?parent ?(priority = 8) ?(system_level = 4)
    ?(policy = default_policy) ~name body =
  if policy.max_restarts < 0 || policy.backoff_ns < 0 then
    invalid_arg "Process_manager.create_supervised: policy";
  let access = create_process t ?parent ~priority ~system_level ~name body in
  let parent_index = Option.map (fun a -> Access.index a) parent in
  t.supervised <-
    {
      policy;
      sup_body = body;
      sup_name = name;
      sup_priority = priority;
      sup_level = system_level;
      sup_parent = parent_index;
      restarts = 0;
      next_backoff_ns = policy.backoff_ns;
      incarnations = [ Access.index access ];
    }
    :: t.supervised;
  access

let find_supervision t access =
  let index = Access.index access in
  List.find_opt (fun s -> List.mem index s.incarnations) t.supervised

let restart_count t access =
  match find_supervision t access with Some s -> s.restarts | None -> 0

let current_incarnation t access =
  match find_supervision t access with
  | Some s -> (
    match s.incarnations with
    | i :: _ -> (
      match find t i with Some n -> n.access | None -> access)
    | [] -> access)
  | None -> access

(* Apply [f] over the whole tree rooted at [node], prefix order. *)
let rec iter_tree t node f =
  f node;
  List.iter
    (fun ci -> match find t ci with Some c -> iter_tree t c f | None -> ())
    node.children

(* Stop the entire computation rooted at [access]: increment every count;
   processes crossing 0 -> 1 leave the dispatching mix. *)
let stop t access =
  let root = node_of_access t access in
  iter_tree t root (fun n ->
      n.stop_count <- n.stop_count + 1;
      if n.stop_count = 1 then K.Machine.set_stopped t.machine n.access true)

(* Start: decrement every count; 1 -> 0 re-enters the mix.  Starts without a
   matching stop are a protocol fault, keeping the nesting discipline. *)
let start t access =
  let root = node_of_access t access in
  iter_tree t root (fun n ->
      if n.stop_count <= 0 then
        Fault.raise_fault (Fault.Protocol "start without outstanding stop");
      n.stop_count <- n.stop_count - 1;
      if n.stop_count = 0 then K.Machine.set_stopped t.machine n.access false)

let stop_count t access = (node_of_access t access).stop_count
let is_runnable t access = (node_of_access t access).stop_count = 0

let children t access =
  List.filter_map (fun i -> find t i) (node_of_access t access).children

(* Dispatching parameters pass straight through to the hardware ("the null
   policy simply passes through the dispatching parameters"). *)
let set_priority t access priority =
  K.Machine.set_priority t.machine access priority

let set_scheduler_port t access port =
  K.Machine.set_scheduler_port t.machine access port

(* Drain the process destruction filter: recover lost process objects,
   releasing their table entries.  Must run inside a process body.  Returns
   the number recovered. *)
let recover_lost_processes t =
  let corpses =
    I432_gc.Destruction_filter.drain t.machine ~port:t.recovery_port
      ~finalize:(fun corpse ->
        let index = Access.index corpse in
        (match find t index with
        | Some n -> n.live <- false
        | None -> ());
        let table = K.Machine.table t.machine in
        let e = Object_table.lookup table index in
        if Object_table.is_valid table e.Object_table.sro then
          let sro_entry = Object_table.lookup table e.Object_table.sro in
          match sro_entry.Object_table.payload with
          | Some (Sro.Sro_state s) ->
            Sro.release table ~sro_state:s ~index
          | Some _ | None -> ())
  in
  let n = List.length corpses in
  t.recovered <- t.recovered + n;
  n

let recovered t = t.recovered
let recovery_port t = t.recovery_port
let managed_count t = List.length t.nodes
