(** The basic process manager (paper §6.1).

    Completes the hardware process model without arbitrating the processor:
    dispatching parameters pass through, and policy modules layer on top
    (see {!Scheduler}).  Maintains the process tree and the nested
    stop/start counts — a process is in the dispatching mix iff its count
    is zero; only 0<->1 transitions reach the kernel.  Also registers the
    destruction filter that recovers lost process objects. *)

open I432
module K := I432_kernel

type node
type t

(** Restart-on-fault supervision policy: a faulted supervised process is
    respawned after [backoff_ns] of virtual time (doubled per restart),
    at most [max_restarts] times over the body's lifetime. *)
type restart_policy = { max_restarts : int; backoff_ns : int }

(** 3 restarts, 1 ms initial backoff. *)
val default_policy : restart_policy

(** Creating a manager installs the machine's fault hook (see
    {!K.Machine.set_fault_hook}); unsupervised processes are unaffected. *)
val create : K.Machine.t -> t

(** Create a managed process, optionally as the child of another managed
    process (lifetimes nest as in the Ada task model). *)
val create_process :
  t ->
  ?parent:Access.t ->
  ?priority:int ->
  ?system_level:int ->
  name:string ->
  (unit -> unit) ->
  Access.t

(** Create a managed process with a restart-on-fault policy: when any
    incarnation faults, a fresh process running the same body is spawned
    after the policy's (exponential, virtual-time) backoff, until the
    budget is spent.  Each restart emits a [Proc_restarted] event and
    bumps the ["proc.restarts"] counter. *)
val create_supervised :
  t ->
  ?parent:Access.t ->
  ?priority:int ->
  ?system_level:int ->
  ?policy:restart_policy ->
  name:string ->
  (unit -> unit) ->
  Access.t

(** Restarts consumed so far by the supervised body owning [access] (any
    incarnation); 0 for unsupervised processes. *)
val restart_count : t -> Access.t -> int

(** The live incarnation of a supervised body ([access] may name any
    earlier incarnation); [access] itself when unsupervised. *)
val current_incarnation : t -> Access.t -> Access.t

(** Stop the whole computation rooted at the process: every tree member's
    count is incremented; 0 -> 1 leaves the dispatching mix. *)
val stop : t -> Access.t -> unit

(** Undo one stop over the tree; 1 -> 0 re-enters the mix.  A start without
    a matching stop raises [Fault (Protocol _)]. *)
val start : t -> Access.t -> unit

val stop_count : t -> Access.t -> int
val is_runnable : t -> Access.t -> bool
val children : t -> Access.t -> node list
val set_priority : t -> Access.t -> int -> unit
val set_scheduler_port : t -> Access.t -> Access.t -> unit

(** Drain the process destruction filter, releasing recovered corpses.
    Must run inside a process body.  Returns the number recovered. *)
val recover_lost_processes : t -> int

val recovered : t -> int
val recovery_port : t -> Access.t
val managed_count : t -> int
