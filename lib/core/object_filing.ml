(* Object filing: type-preserving passive storage (paper §7.2, and the
   companion object-filing paper it cites).

   "By the definition of Ada, if a storage system exists before the
   compilation of a package, then it cannot know of and therefore cannot
   preserve the type of some object that it is asked to store. ...  No
   matter what path a system object follows within the 432, its
   hardware-recognized type identity is guaranteed to be preserved and
   checked, either by the hardware or by object filing."

   This module is the minimal filing system this paper relies on: a passive
   store that checkpoints an object's data image *and* its hardware type,
   and reconstructs the object on retrieval with the type intact — so a
   sealed Custom object comes back sealed, and a retrieval asserting the
   wrong type faults rather than producing an untyped blob. *)

open I432
module K = I432_kernel

type filed = {
  image : Bytes.t;
  filed_type : Obj_type.t;
  filed_level : int;
  access_length : int;
}

(* A wire node is one object of a captured composite: its data image, its
   hardware type, and its outgoing access slots as (slot, target serial,
   rights) triples.  The representation is machine-independent — serials
   replace table indices — so a wire value can cross to another machine's
   heap (the interconnect's marshalling format) as well as sit in the
   filing store. *)
type wire_node = {
  w_image : Bytes.t;
  w_type : Obj_type.t;
  w_access_length : int;
  w_edges : (int * int * Rights.t) list;  (* slot, target serial, rights *)
}

(* serial 0 is the root; [w_root_rights] are the rights the presented root
   descriptor carried (post-mask), restored on reconstruction. *)
type wire = { w_root_rights : Rights.t; w_nodes : wire_node array }

type t = {
  machine : K.Machine.t;
  files : (string, filed) Hashtbl.t;
  graphs : (string, wire) Hashtbl.t;
  mutable stores : int;
  mutable retrievals : int;
}

let create machine =
  {
    machine;
    files = Hashtbl.create 16;
    graphs = Hashtbl.create 16;
    stores = 0;
    retrievals = 0;
  }

(* File an object under [key]: its data image and type identity are
   captured.  Access parts are not filed (a passive store cannot hold live
   capabilities; the real system transitively filed composites, which is
   beyond this paper's scope). *)
let store t ~key access =
  let table = K.Machine.table t.machine in
  let e = Object_table.entry_of_access table access in
  if not (Rights.has_read (Access.rights access)) then
    Fault.raise_fault
      (Fault.Rights_violation { needed = "read"; held = Access.rights access });
  let image =
    K.Machine.read_bytes t.machine access ~offset:0
      ~len:e.Object_table.data_length
  in
  Hashtbl.replace t.files key
    {
      image;
      filed_type = e.Object_table.otype;
      filed_level = e.Object_table.level;
      access_length = Array.length e.Object_table.access_part;
    };
  t.stores <- t.stores + 1

exception Not_filed of string

(* Retrieve a fresh object carrying the filed data and the filed type.  The
   object is allocated from [sro] (default: the global heap). *)
let retrieve t ?sro ~key () =
  let sro = match sro with Some s -> s | None -> K.Machine.global_sro t.machine in
  match Hashtbl.find_opt t.files key with
  | None -> raise (Not_filed key)
  | Some f ->
    let table = K.Machine.table t.machine in
    let access =
      K.Machine.allocate t.machine sro ~data_length:(Bytes.length f.image)
        ~access_length:f.access_length ~otype:Obj_type.Generic
    in
    if Bytes.length f.image > 0 then
      K.Machine.write_bytes t.machine access ~offset:0 f.image;
    (* Restore the hardware type identity. *)
    let e = Object_table.entry_of_access table access in
    e.Object_table.otype <- f.filed_type;
    t.retrievals <- t.retrievals + 1;
    access

(* Retrieve with a type assertion: the typed channel of §7.2. *)
let retrieve_as t ?sro ~key ~expected () =
  let access = retrieve t ?sro ~key () in
  Segment.check_type (K.Machine.table t.machine) access expected;
  access

(* ------------------------------------------------------------------ *)
(* Composite filing                                                    *)
(* ------------------------------------------------------------------ *)

(* A filed composite holds the data images and types of every object
   reachable from the root through access parts, plus the edge structure,
   so the graph (including cycles and sharing) is rebuilt isomorphic on
   retrieval.  This is the slice of the companion filing paper that this
   paper's type-preservation claim needs for composite objects.

   The same capture/reconstruct pair doubles as the interconnect's wire
   codec: capture on the sending node, reconstruct on the receiving one.
   [mask] is intersected into every captured rights set — both the root's
   and every edge's — so a descriptor crossing a machine boundary can
   never arrive holding more authority than the exporter allowed. *)

(* Serialize the reachable graph with a depth-first walk; serials are
   assigned in discovery order so reconstruction is deterministic. *)
let capture machine ?(mask = Rights.full) root =
  let table = K.Machine.table machine in
  let serial_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let acc : (int * wire_node) list ref = ref [] in
  let count = ref 0 in
  let rec walk access =
    let e = Object_table.entry_of_access table access in
    match Hashtbl.find_opt serial_of e.Object_table.index with
    | Some serial -> serial
    | None ->
      let serial = !count in
      incr count;
      Hashtbl.add serial_of e.Object_table.index serial;
      let image =
        K.Machine.read_bytes machine access ~offset:0
          ~len:e.Object_table.data_length
      in
      (* Reserve our slot in discovery order, then fill edges after the
         children are walked (placeholder updated in place). *)
      let edges = ref [] in
      Array.iteri
        (fun slot stored ->
          match stored with
          | Some child ->
            let rights = Rights.restrict (Access.rights child) mask in
            edges := (slot, walk child, rights) :: !edges
          | None -> ())
        e.Object_table.access_part;
      acc :=
        ( serial,
          {
            w_image = image;
            w_type = e.Object_table.otype;
            w_access_length = Array.length e.Object_table.access_part;
            w_edges = List.rev !edges;
          } )
        :: !acc;
      serial
  in
  let root_serial = walk root in
  assert (root_serial = 0);
  let w_nodes = Array.make !count (List.assoc 0 !acc) in
  List.iter (fun (serial, node) -> w_nodes.(serial) <- node) !acc;
  { w_root_rights = Rights.restrict (Access.rights root) mask; w_nodes }

(* Rebuild a captured graph on [machine]'s heap: allocate every node,
   restore images and types, then wire the access parts with the captured
   (masked) rights.  Cycles work because allocation precedes wiring. *)
let reconstruct machine ?sro wire =
  let sro = match sro with Some s -> s | None -> K.Machine.global_sro machine in
  let table = K.Machine.table machine in
  let fresh =
    Array.map
      (fun node ->
        let access =
          K.Machine.allocate machine sro
            ~data_length:(Bytes.length node.w_image)
            ~access_length:node.w_access_length ~otype:Obj_type.Generic
        in
        if Bytes.length node.w_image > 0 then
          K.Machine.write_bytes machine access ~offset:0 node.w_image;
        (Object_table.entry_of_access table access).Object_table.otype <-
          node.w_type;
        access)
      wire.w_nodes
  in
  Array.iteri
    (fun serial node ->
      List.iter
        (fun (slot, target, rights) ->
          Segment.store_access table fresh.(serial) ~slot
            (Some (Access.restrict fresh.(target) rights)))
        node.w_edges)
    wire.w_nodes;
  Access.restrict fresh.(0) wire.w_root_rights

let wire_nodes wire = Array.length wire.w_nodes

(* ------------------------------------------------------------------ *)
(* Binary wire codec                                                   *)
(* ------------------------------------------------------------------ *)

(* The persistent encoding of a wire value, used by the filing store's
   journal (lib/store).  Deterministic: the same wire always encodes to
   the same bytes, because capture assigns serials in discovery order and
   every field below is written in a fixed order.  Little-endian 32-bit
   lengths; one version byte so the format can evolve without silently
   misreading old journals. *)

exception Corrupt_wire of string

let wire_format_version = 1

let rights_to_byte (r : Rights.t) =
  (if r.Rights.read then 1 else 0)
  lor (if r.Rights.write then 2 else 0)
  lor (r.Rights.type_rights lsl 2)

let rights_of_byte b =
  {
    Rights.read = b land 1 <> 0;
    write = b land 2 <> 0;
    type_rights = (b lsr 2) land 7;
  }

let otype_tag = function
  | Obj_type.Generic -> 0
  | Obj_type.Processor -> 1
  | Obj_type.Process -> 2
  | Obj_type.Port -> 3
  | Obj_type.Dispatching_port -> 4
  | Obj_type.Storage_resource -> 5
  | Obj_type.Domain -> 6
  | Obj_type.Context -> 7
  | Obj_type.Type_definition -> 8
  | Obj_type.Custom _ -> 9

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let encode_wire wire =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (Char.chr wire_format_version);
  Buffer.add_char buf (Char.chr (rights_to_byte wire.w_root_rights));
  put_u32 buf (Array.length wire.w_nodes);
  Array.iter
    (fun node ->
      Buffer.add_char buf (Char.chr (otype_tag node.w_type));
      (match node.w_type with
      | Obj_type.Custom id -> put_u32 buf id
      | _ -> ());
      put_u32 buf (Bytes.length node.w_image);
      Buffer.add_bytes buf node.w_image;
      put_u32 buf node.w_access_length;
      put_u32 buf (List.length node.w_edges);
      List.iter
        (fun (slot, target, rights) ->
          put_u32 buf slot;
          put_u32 buf target;
          Buffer.add_char buf (Char.chr (rights_to_byte rights)))
        node.w_edges)
    wire.w_nodes;
  Buffer.to_bytes buf

let decode_wire bytes =
  let pos = ref 0 in
  let len = Bytes.length bytes in
  let need n what =
    if !pos + n > len then
      raise (Corrupt_wire (Printf.sprintf "truncated %s at offset %d" what !pos))
  in
  let u8 what =
    need 1 what;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let u32 what =
    need 4 what;
    let b i = Char.code (Bytes.get bytes (!pos + i)) in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    pos := !pos + 4;
    if v < 0 then raise (Corrupt_wire (Printf.sprintf "negative %s" what));
    v
  in
  let version = u8 "version" in
  if version <> wire_format_version then
    raise (Corrupt_wire (Printf.sprintf "unknown wire version %d" version));
  let root_rights = rights_of_byte (u8 "root rights") in
  let count = u32 "node count" in
  (* Each node costs at least 10 bytes on the wire; an impossible count
     cannot force a huge allocation from a short buffer. *)
  if count > len then raise (Corrupt_wire "node count exceeds buffer");
  let nodes =
    Array.init count (fun _ ->
        let tag = u8 "type tag" in
        let w_type =
          match tag with
          | 0 -> Obj_type.Generic
          | 1 -> Obj_type.Processor
          | 2 -> Obj_type.Process
          | 3 -> Obj_type.Port
          | 4 -> Obj_type.Dispatching_port
          | 5 -> Obj_type.Storage_resource
          | 6 -> Obj_type.Domain
          | 7 -> Obj_type.Context
          | 8 -> Obj_type.Type_definition
          | 9 -> Obj_type.Custom (u32 "custom type id")
          | n -> raise (Corrupt_wire (Printf.sprintf "unknown type tag %d" n))
        in
        let image_len = u32 "image length" in
        need image_len "image";
        let w_image = Bytes.sub bytes !pos image_len in
        pos := !pos + image_len;
        let w_access_length = u32 "access length" in
        let edge_count = u32 "edge count" in
        if edge_count > len then raise (Corrupt_wire "edge count exceeds buffer");
        let edges = ref [] in
        for _ = 1 to edge_count do
          let slot = u32 "edge slot" in
          let target = u32 "edge target" in
          let rights = rights_of_byte (u8 "edge rights") in
          if target >= count then
            raise (Corrupt_wire (Printf.sprintf "edge target %d out of range" target));
          if slot >= w_access_length then
            raise (Corrupt_wire (Printf.sprintf "edge slot %d out of range" slot));
          edges := (slot, target, rights) :: !edges
        done;
        { w_image; w_type; w_access_length; w_edges = List.rev !edges })
  in
  if !pos <> len then raise (Corrupt_wire "trailing bytes after last node");
  if count = 0 then raise (Corrupt_wire "empty wire has no root");
  { w_root_rights = root_rights; w_nodes = nodes }

let wire_equal a b =
  Rights.equal a.w_root_rights b.w_root_rights
  && Array.length a.w_nodes = Array.length b.w_nodes
  && Array.for_all2
       (fun na nb ->
         Bytes.equal na.w_image nb.w_image
         && Obj_type.equal na.w_type nb.w_type
         && na.w_access_length = nb.w_access_length
         && List.length na.w_edges = List.length nb.w_edges
         && List.for_all2
              (fun (s1, t1, r1) (s2, t2, r2) ->
                s1 = s2 && t1 = t2 && Rights.equal r1 r2)
              na.w_edges nb.w_edges)
       a.w_nodes b.w_nodes

(* Deterministic size model for bandwidth accounting: a 16-byte header per
   node, the data image, and 12 bytes per edge (slot + serial + rights). *)
let wire_bytes wire =
  Array.fold_left
    (fun acc node ->
      acc + 16 + Bytes.length node.w_image + (12 * List.length node.w_edges))
    0 wire.w_nodes

let store_graph t ~key root =
  let wire = capture t.machine root in
  Hashtbl.replace t.graphs key wire;
  t.stores <- t.stores + 1;
  wire_nodes wire

let retrieve_graph t ?sro ~key () =
  match Hashtbl.find_opt t.graphs key with
  | None -> raise (Not_filed key)
  | Some wire ->
    let root = reconstruct t.machine ?sro wire in
    t.retrievals <- t.retrievals + 1;
    root

let graph_size t ~key =
  match Hashtbl.find_opt t.graphs key with
  | Some g -> Some (Array.length g.w_nodes)
  | None -> None

let filed_type t ~key =
  match Hashtbl.find_opt t.files key with
  | Some f -> Some f.filed_type
  | None -> None

let mem t ~key = Hashtbl.mem t.files key
let remove t ~key = Hashtbl.remove t.files key
let count t = Hashtbl.length t.files
let stores t = t.stores
let retrievals t = t.retrievals
