(* Deterministic fault injection plans (DESIGN.md §8).

   A plan is data: a seed plus (virtual-time instant, injection) pairs.
   Generation uses only the machine's own Prng, and arming only schedules
   through Machine.schedule_injection, whose firing point in the run loop
   is a deterministic function of virtual time — so a chaos run is
   replayable bit-for-bit from (config, workload, seed). *)

open I432
open I432_util
module K = I432_kernel

type event = { at_ns : int; inj : K.Machine.injection }
type plan = { seed : int; events : event list }

let random ~seed ~horizon_ns ~processors ~count ~cpu_faults =
  if processors < 1 then invalid_arg "Fi.random: processors";
  if horizon_ns < 10 then invalid_arg "Fi.random: horizon_ns";
  if count < 0 || cpu_faults < 0 then invalid_arg "Fi.random: counts";
  let rng = Prng.create ~seed in
  (* Keep the first tenth of the horizon quiet so the workload exists
     before the first fault lands. *)
  let lo = horizon_ns / 10 in
  let instant () = lo + Prng.int rng (horizon_ns - lo) in
  (* Hard faults hit distinct processors and spare at least one, so the
     machine can always degrade to N-1 rather than dying. *)
  let faults = min cpu_faults (processors - 1) in
  let ids = Array.init processors (fun i -> i) in
  Prng.shuffle rng ids;
  let events = ref [] in
  for i = 0 to faults - 1 do
    events :=
      { at_ns = instant (); inj = K.Machine.Inj_cpu_fault ids.(i) } :: !events
  done;
  for _ = 1 to count do
    let inj =
      match Prng.int rng 3 with
      | 0 -> K.Machine.Inj_transient (Prng.int rng processors)
      | 1 -> K.Machine.Inj_alloc_fault (1 + Prng.int rng 3)
      | _ -> K.Machine.Inj_port_delay (1_000 * (1 + Prng.int rng 500))
    in
    events := { at_ns = instant (); inj } :: !events
  done;
  let events =
    List.stable_sort (fun a b -> compare a.at_ns b.at_ns) (List.rev !events)
  in
  { seed; events }

(* Link faults: the same plan-is-data discipline, aimed at the virtual
   interconnect (lib/net).  Fi stays net-agnostic — a link plan is pure
   data; I432_net.Cluster.arm_links interprets it at transmit time, so a
   faulted run replays bit-for-bit from (topology, workload, seed). *)

type link_act =
  | L_drop of int  (* lose the next n frames crossing the link *)
  | L_dup of int  (* deliver the next n frames twice *)
  | L_reorder of int  (* hold back the next n frames one extra hop each *)
  | L_partition of int  (* sever the link for this many virtual ns *)

type link_event = { l_at_ns : int; l_link : int; l_act : link_act }
type link_plan = { l_seed : int; l_events : link_event list }

let random_links ~seed ~horizon_ns ~links ~count ~partitions =
  if links < 1 then invalid_arg "Fi.random_links: links";
  if horizon_ns < 10 then invalid_arg "Fi.random_links: horizon_ns";
  if count < 0 || partitions < 0 then invalid_arg "Fi.random_links: counts";
  let rng = Prng.create ~seed in
  (* Same quiet first tenth as [random]: let traffic exist before the
     first fault lands. *)
  let lo = horizon_ns / 10 in
  let instant () = lo + Prng.int rng (horizon_ns - lo) in
  let events = ref [] in
  for _ = 1 to partitions do
    (* Partitions last between 2% and 20% of the horizon. *)
    let dur = (horizon_ns / 50) + Prng.int rng (horizon_ns * 9 / 50) in
    events :=
      { l_at_ns = instant (); l_link = Prng.int rng links;
        l_act = L_partition dur }
      :: !events
  done;
  for _ = 1 to count do
    let l_act =
      match Prng.int rng 3 with
      | 0 -> L_drop (1 + Prng.int rng 3)
      | 1 -> L_dup (1 + Prng.int rng 2)
      | _ -> L_reorder (1 + Prng.int rng 3)
    in
    events := { l_at_ns = instant (); l_link = Prng.int rng links; l_act }
              :: !events
  done;
  let l_events =
    List.stable_sort (fun a b -> compare a.l_at_ns b.l_at_ns) (List.rev !events)
  in
  { l_seed = seed; l_events }

(* Node faults: whole-machine kill/restart pairs, interpreted by
   I432_net.Cluster.arm_nodes at quantum boundaries.  Like link plans, a
   node plan is pure data — Fi knows nothing about checkpoints; the
   cluster's restore hook supplies the replacement machine. *)

type node_act = N_kill | N_restart
type node_event = { n_at_ns : int; n_node : int; n_act : node_act }
type node_plan = { n_seed : int; n_events : node_event list }

let random_nodes ~seed ~horizon_ns ~nodes ~kills =
  if nodes < 2 then invalid_arg "Fi.random_nodes: nodes";
  if horizon_ns < 10 then invalid_arg "Fi.random_nodes: horizon_ns";
  if kills < 0 then invalid_arg "Fi.random_nodes: kills";
  let rng = Prng.create ~seed in
  (* Same quiet first tenth as [random]: let the workload exist before
     the first node dies. *)
  let lo = horizon_ns / 10 in
  (* Kills hit distinct nodes and spare at least one, so the cluster
     always keeps a survivor to re-home against. *)
  let kills = min kills (nodes - 1) in
  let ids = Array.init nodes (fun i -> i) in
  Prng.shuffle rng ids;
  let events = ref [] in
  for i = 0 to kills - 1 do
    let at = lo + Prng.int rng (horizon_ns - lo) in
    (* Outages last between 2% and 20% of the horizon; every kill is
       paired with a restart so the plan always converges. *)
    let dur = (horizon_ns / 50) + Prng.int rng (horizon_ns * 9 / 50) in
    events :=
      { n_at_ns = at + dur; n_node = ids.(i); n_act = N_restart }
      :: { n_at_ns = at; n_node = ids.(i); n_act = N_kill }
      :: !events
  done;
  let n_events =
    List.stable_sort (fun a b -> compare a.n_at_ns b.n_at_ns) (List.rev !events)
  in
  { n_seed = seed; n_events }

let node_act_to_string = function
  | N_kill -> "kill"
  | N_restart -> "restart"

let node_plan_to_string plan =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "node plan seed=%d (%d events)\n" plan.n_seed
    (List.length plan.n_events);
  List.iter
    (fun e ->
      Printf.bprintf buf "  %9d ns  node %d: %s\n" e.n_at_ns e.n_node
        (node_act_to_string e.n_act))
    plan.n_events;
  Buffer.contents buf

let link_act_to_string = function
  | L_drop n -> Printf.sprintf "drop %d frame%s" n (if n = 1 then "" else "s")
  | L_dup n -> Printf.sprintf "duplicate %d frame%s" n (if n = 1 then "" else "s")
  | L_reorder n ->
    Printf.sprintf "reorder %d frame%s" n (if n = 1 then "" else "s")
  | L_partition ns -> Printf.sprintf "partition for %d ns" ns

let link_plan_to_string plan =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "link plan seed=%d (%d events)\n" plan.l_seed
    (List.length plan.l_events);
  List.iter
    (fun e ->
      Printf.bprintf buf "  %9d ns  link %d: %s\n" e.l_at_ns e.l_link
        (link_act_to_string e.l_act))
    plan.l_events;
  Buffer.contents buf

let arm machine plan =
  List.iter
    (fun e -> K.Machine.schedule_injection machine ~at_ns:e.at_ns e.inj)
    plan.events

let to_string plan =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "plan seed=%d (%d events)\n" plan.seed
    (List.length plan.events);
  List.iter
    (fun e ->
      Printf.bprintf buf "  %9d ns  %s\n" e.at_ns
        (K.Machine.injection_to_string e.inj))
    plan.events;
  Buffer.contents buf

(* Post-run invariants.  Violations accumulate as messages; [] = intact. *)
let check_invariants machine =
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  let table = K.Machine.table machine in
  let processes = K.Machine.all_processes machine in
  (* 1. Once the run loop returns, nothing may still claim a processor. *)
  List.iter
    (fun (p : K.Process.t) ->
      match p.K.Process.status with
      | K.Process.Running ->
        fail "process %s (#%d) still Running after halt" p.K.Process.name
          p.K.Process.index
      | _ -> ())
    processes;
  (* 2. The table's valid count must agree with an iter_valid walk. *)
  let walked = ref 0 in
  Object_table.iter_valid (fun _ -> incr walked) table;
  let counted = Object_table.count_valid table in
  if !walked <> counted then
    fail "object table count_valid %d <> iter_valid walk %d" counted !walked;
  (* 3/4. Port-queue consistency, both directions: blocked processes are
     queued, queued waiters are blocked — a fired timeout must leave no
     dangling entry behind. *)
  let status_of = Hashtbl.create 64 in
  List.iter
    (fun (p : K.Process.t) ->
      Hashtbl.replace status_of p.K.Process.index p.K.Process.status)
    processes;
  let ports = Hashtbl.create 16 in
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (K.Port.Port_state p) -> Hashtbl.replace ports p.K.Port.self p
      | Some _ | None -> ())
    table;
  Hashtbl.iter
    (fun self (p : K.Port.t) ->
      if K.Port.queue_length p > p.K.Port.capacity then
        fail "port #%d holds %d messages over capacity %d" self
          (K.Port.queue_length p) p.K.Port.capacity;
      Queue.iter
        (fun r ->
          match Hashtbl.find_opt status_of r with
          | Some (K.Process.Blocked_receive q) when q = self -> ()
          | _ -> fail "port #%d queues receiver #%d that is not blocked on it"
                   self r)
        p.K.Port.receivers;
      K.Port.iter_senders
        (fun (ws : K.Port.waiting_sender) ->
          match Hashtbl.find_opt status_of ws.K.Port.sender with
          | Some (K.Process.Blocked_send q) when q = self -> ()
          | _ -> fail "port #%d queues sender #%d that is not blocked on it"
                   self ws.K.Port.sender)
        p)
    ports;
  let queued_receiver pi index =
    match Hashtbl.find_opt ports pi with
    | None -> false
    | Some p -> Queue.fold (fun acc r -> acc || r = index) false p.K.Port.receivers
  in
  let queued_sender pi index =
    match Hashtbl.find_opt ports pi with
    | None -> false
    | Some p ->
      let found = ref false in
      K.Port.iter_senders
        (fun ws -> if ws.K.Port.sender = index then found := true)
        p;
      !found
  in
  List.iter
    (fun (p : K.Process.t) ->
      match p.K.Process.status with
      | K.Process.Blocked_receive pi when not (queued_receiver pi p.K.Process.index)
        ->
        fail "process %s (#%d) Blocked_receive on port #%d but not queued"
          p.K.Process.name p.K.Process.index pi
      | K.Process.Blocked_send pi when not (queued_sender pi p.K.Process.index) ->
        fail "process %s (#%d) Blocked_send on port #%d but not queued"
          p.K.Process.name p.K.Process.index pi
      | _ -> ())
    processes;
  List.rev !bad
