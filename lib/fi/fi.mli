(** Deterministic fault injection (DESIGN.md §8).

    A {e plan} is a seed plus a list of injections pinned to virtual-time
    instants.  Arming a plan schedules every injection on the machine;
    because injections fire from the run loop at deterministic points of
    virtual time, any chaos run is replayable bit-for-bit from its seed.

    Nothing here touches wall-clock time or global randomness: plans are
    generated with {!I432_util.Prng} and applied through
    {!I432_kernel.Machine.schedule_injection}. *)

module K := I432_kernel

type event = { at_ns : int; inj : K.Machine.injection }

type plan = { seed : int; events : event list  (** sorted by [at_ns] *) }

(** [random ~seed ~horizon_ns ~processors ~count ~cpu_faults] draws a plan
    of [count] transient/allocation/port-delay injections plus at most
    [cpu_faults] processor hard-faults, all at instants uniform in
    [\[horizon_ns/10, horizon_ns)].  Hard-faulted processor ids are
    distinct and capped at [processors - 1], so at least one GDP always
    survives.  Same arguments, same plan.

    Raises [Invalid_argument] if [processors < 1] or [horizon_ns < 10]. *)
val random :
  seed:int ->
  horizon_ns:int ->
  processors:int ->
  count:int ->
  cpu_faults:int ->
  plan

(** {1 Link faults}

    The same plan-is-data discipline, aimed at the virtual interconnect.
    Fi stays net-agnostic: a link plan is pure data, interpreted at frame
    transmit time by [I432_net.Cluster.arm_links], so a faulted cluster
    run replays bit-for-bit from (topology, workload, seed). *)

type link_act =
  | L_drop of int  (** lose the next n frames crossing the link *)
  | L_dup of int  (** deliver the next n frames twice *)
  | L_reorder of int  (** hold back the next n frames one extra hop each *)
  | L_partition of int  (** sever the link for this many virtual ns *)

type link_event = { l_at_ns : int; l_link : int; l_act : link_act }

type link_plan = {
  l_seed : int;
  l_events : link_event list;  (** sorted by [l_at_ns] *)
}

(** [random_links ~seed ~horizon_ns ~links ~count ~partitions] draws a
    plan of [count] drop/duplicate/reorder bursts plus [partitions]
    partition windows (each lasting 2–20% of the horizon), on links
    uniform in [\[0, links)], at instants uniform in
    [\[horizon_ns/10, horizon_ns)].  Same arguments, same plan.

    Raises [Invalid_argument] if [links < 1] or [horizon_ns < 10]. *)
val random_links :
  seed:int ->
  horizon_ns:int ->
  links:int ->
  count:int ->
  partitions:int ->
  link_plan

val link_act_to_string : link_act -> string

(** Human-readable one-line-per-event rendering. *)
val link_plan_to_string : link_plan -> string

(** {1 Node faults}

    Whole-machine kill/restart pairs, interpreted at quantum boundaries
    by [I432_net.Cluster.arm_nodes].  A node plan is pure data — Fi
    knows nothing about checkpoints; the cluster's restore hook supplies
    the replacement machine at restart time. *)

type node_act =
  | N_kill  (** the node stops executing; its inbound frames drop *)
  | N_restart  (** the node rejoins from its checkpoint image *)

type node_event = { n_at_ns : int; n_node : int; n_act : node_act }

type node_plan = {
  n_seed : int;
  n_events : node_event list;  (** sorted by [n_at_ns] *)
}

(** [random_nodes ~seed ~horizon_ns ~nodes ~kills] draws at most [kills]
    kill/restart pairs on distinct nodes (sparing at least one node, so
    the cluster always keeps a survivor), kills at instants uniform in
    [\[horizon_ns/10, horizon_ns)], each paired with a restart 2–20% of
    the horizon later.  Same arguments, same plan.

    Raises [Invalid_argument] if [nodes < 2] or [horizon_ns < 10]. *)
val random_nodes :
  seed:int -> horizon_ns:int -> nodes:int -> kills:int -> node_plan

val node_act_to_string : node_act -> string

(** Human-readable one-line-per-event rendering. *)
val node_plan_to_string : node_plan -> string

(** Schedule every event of the plan on the machine. *)
val arm : K.Machine.t -> plan -> unit

(** Human-readable one-line-per-event rendering. *)
val to_string : plan -> string

(** Post-run consistency check; each violated invariant yields one
    message, so [\[\]] means the machine survived the plan intact:

    - no process is still [Running] once the run loop has returned;
    - the object table's valid-entry count matches an [iter_valid] walk;
    - no port queue exceeds its capacity;
    - every process blocked on a port appears in that port's waiting
      queue, and every waiter recorded by a port is a process blocked on
      that port (timed-out waits must leave no dangling queue entries). *)
val check_invariants : K.Machine.t -> string list
