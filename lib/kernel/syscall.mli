(** The kernel boundary of a simulated process.

    Every potentially blocking 432 instruction is performed as an effect;
    the machine's run loop handles it, charges virtual time, and either
    resumes the process or suspends it. *)

open I432

type op =
  | Send of { port : Access.t; msg : Access.t }
      (** blocks while the port's message queue is full *)
  | Receive of { port : Access.t }  (** blocks while no message is available *)
  | Cond_send of { port : Access.t; msg : Access.t }
      (** never blocks; reports acceptance *)
  | Cond_receive of { port : Access.t }  (** never blocks *)
  | Delay of int  (** sleep for the given virtual nanoseconds *)
  | Yield  (** surrender the processor, stay ready *)
  | Preempt  (** involuntary yield injected at time-slice end *)
  | Exit  (** voluntary termination *)
  | Timed_send of { port : Access.t; msg : Access.t; timeout_ns : int }
      (** like [Send], but gives up after [timeout_ns] of virtual time;
          the result reports whether the message was accepted *)
  | Timed_receive of { port : Access.t; timeout_ns : int }
      (** like [Receive], but returns [None] at the deadline *)
  | Txn_try of {
      t_key : int;  (** idempotency key; a key is applied at most once *)
      t_receives : Access.t list;  (** ports to take one message from *)
      t_sends : (Access.t * Access.t) list;  (** (port, msg) to deliver *)
      t_writes : (Access.t * int * int) list;
          (** (object, byte offset, i32 word) data writes *)
    }
      (** one atomic attempt at a multi-port group: validate every staged
          operation in ascending port-id order, then apply all of them at
          one virtual-time instant, or apply none and report the first
          conflicting port.  Never blocks; retry/abort policy lives above
          the kernel ({!I432_txn.Txn}). *)

type result =
  | R_unit
  | R_msg of Access.t
  | R_accepted of bool
  | R_msg_option of Access.t option
  | R_txn of txn_result

and txn_result =
  | Txn_committed of {
      received : Access.t list;  (** receives, in staging order *)
      commit_ns : int;  (** the commit's virtual-time instant *)
      fresh : bool;
          (** [false]: the key had already been applied — receives and
              writes were skipped, sends were re-issued best-effort (the
              reply-cache semantics a retried commit needs) *)
    }
  | Txn_conflict of { port : int; reason : string }
      (** first conflicting port in validation order; [port] is [-1] when
          the conflict is not port-shaped (e.g. a swapped-out write
          target's object index is reported instead) *)

type _ Effect.t += Syscall : op -> result Effect.t

(** Perform one syscall; only meaningful inside a process body running
    under the machine's handler. *)
val perform : op -> result

val op_to_string : op -> string
