(** The kernel boundary of a simulated process.

    Every potentially blocking 432 instruction is performed as an effect;
    the machine's run loop handles it, charges virtual time, and either
    resumes the process or suspends it. *)

open I432

type op =
  | Send of { port : Access.t; msg : Access.t }
      (** blocks while the port's message queue is full *)
  | Receive of { port : Access.t }  (** blocks while no message is available *)
  | Cond_send of { port : Access.t; msg : Access.t }
      (** never blocks; reports acceptance *)
  | Cond_receive of { port : Access.t }  (** never blocks *)
  | Delay of int  (** sleep for the given virtual nanoseconds *)
  | Yield  (** surrender the processor, stay ready *)
  | Preempt  (** involuntary yield injected at time-slice end *)
  | Exit  (** voluntary termination *)
  | Timed_send of { port : Access.t; msg : Access.t; timeout_ns : int }
      (** like [Send], but gives up after [timeout_ns] of virtual time;
          the result reports whether the message was accepted *)
  | Timed_receive of { port : Access.t; timeout_ns : int }
      (** like [Receive], but returns [None] at the deadline *)

type result =
  | R_unit
  | R_msg of Access.t
  | R_accepted of bool
  | R_msg_option of Access.t option

type _ Effect.t += Syscall : op -> result Effect.t

(** Perform one syscall; only meaningful inside a process body running
    under the machine's handler. *)
val perform : op -> result

val op_to_string : op -> string
