(** The simulated 432 system: shared memory, global object table, N general
    data processors, and the hardware dispatching port.

    The run loop is a deterministic discrete-event simulation.  Process
    bodies are ordinary OCaml functions; they invoke the charged instruction
    wrappers below for non-blocking work and the syscall wrappers
    ({!send}, {!receive}, {!delay}, {!yield}) for potentially blocking
    instructions, which suspend the process via an effect. *)

open I432

(** Raised when a process below system level 3 faults (paper §7.3). *)
exception Kernel_panic of string

type config = {
  processors : int;
  memory_bytes : int;
  timings : Timings.t;
  bus_alpha_per_mille : int;  (** bus contention per extra processor *)
  global_heap_bytes : int;  (** size of the boot-time level-0 SRO *)
  trace_level : I432_obs.Tracer.level;
  trace_capacity : int;  (** event-ring slots per processor *)
}

val default_config : config

type run_report = {
  elapsed_ns : int;
  completed : int;
  faulted : int;
  deadlocked : string list;
  dispatches : int;
  preemptions : int;
}

type t

val create : ?config:config -> unit -> t

(** {1 Accessors} *)

val table : t -> Object_table.t
val memory : t -> Memory.t
val timings : t -> Timings.t
val bus : t -> Bus.t

(** The level-0 global heap every process can allocate from (paper §5). *)
val global_sro : t -> Access.t

val processor_count : t -> int

(** {1 Observability} *)

(** The machine's event tracer (one bounded ring per processor). *)
val tracer : t -> I432_obs.Tracer.t

(** The machine's metrics registry (counters, gauges, histograms). *)
val metrics : t -> I432_obs.Metrics.t

(** All retained structured events, in emission order. *)
val events : t -> I432_obs.Event.t list

(** Record a custom event, stamped with the executing processor's id and
    virtual clock.  No-op unless tracing is enabled. *)
val emit_event :
  t ->
  ?name:string ->
  ?detail:string ->
  ?a:int ->
  ?b:int ->
  I432_obs.Event.kind ->
  unit

(** Deprecated compat shim: the seed's unstructured trace lines, rendered
    byte-identically from structured events.  Empty unless the level is
    [Events_and_legacy_lines]. *)
val trace_lines : t -> string list

(** Every fault the machine recorded, in emission order: the first fault
    recorded is the first element.  (Internally the list is accumulated
    newest-first for O(1) prepends and reversed here.) *)
val faults : t -> (string * Fault.cause) list

(** Virtual time: the executing processor's clock, or the maximum clock when
    called outside the run loop. *)
val now : t -> int

(** Charge virtual nanoseconds to the running processor (bus-adjusted).
    No-op outside the run loop. *)
val charge : t -> int -> unit

(** {1 Charged instruction wrappers} *)

val compute : t -> int -> unit
val read_word : t -> Access.t -> offset:int -> int
val write_word : t -> Access.t -> offset:int -> int -> unit
val read_byte : t -> Access.t -> offset:int -> int
val write_byte : t -> Access.t -> offset:int -> int -> unit
val read_bytes : t -> Access.t -> offset:int -> len:int -> Bytes.t
val write_bytes : t -> Access.t -> offset:int -> Bytes.t -> unit
val load_access : t -> Access.t -> slot:int -> Access.t option
val store_access : t -> Access.t -> slot:int -> Access.t option -> unit

(** The create-object instruction: ~80 µs of virtual time. *)
val allocate :
  t ->
  Access.t ->
  data_length:int ->
  access_length:int ->
  otype:Obj_type.t ->
  Access.t

val allocate_generic :
  t -> ?data_length:int -> ?access_length:int -> unit -> Access.t

val release : t -> Access.t -> index:int -> unit

(** Create a local heap (an SRO at the given lifetime level) carved from the
    global heap's store. *)
val create_local_sro : t -> level:int -> bytes:int -> Access.t

(** Destroy a local heap, bulk-reclaiming every object it created.  Returns
    the number of objects reclaimed. *)
val destroy_sro : t -> Access.t -> int

(** Inter-domain call: charges the ~65 µs domain switch (paper §2).  With
    [timeout_ns], a virtual-time watchdog: if the callee consumed more
    than the budget, raises [Fault.Timeout] even though the call
    completed. *)
val domain_call : t -> ?timeout_ns:int -> Access.t -> (unit -> 'a) -> 'a

(** Ordinary activation within the current domain, for comparison. *)
val intra_call : t -> (unit -> 'a) -> 'a

(** Call [f] inside a fresh activation record whose lifetime level is one
    greater than the caller's; the context object is passed in for
    capability locals and destroyed on return.  Must be called from inside
    a process body. *)
val call_in_context : t -> ?slots:int -> (Access.t -> 'a) -> 'a

(** The running process's current activation record, if any. *)
val current_context : t -> Access.t option

(** Route faulted processes' objects to a supervisor port. *)
val set_fault_port : t -> Access.t -> unit

(** {1 Ports} *)

val create_port :
  t ->
  ?sro:Access.t option ->
  capacity:int ->
  discipline:Port.discipline ->
  unit ->
  Access.t

(** (sends, receives, send_blocks, receive_blocks, max_depth,
    mean_queue_wait_ns). *)
val port_stats : t -> Access.t -> int * int * int * int * int * float

(** {1 Processes} *)

(** Create a process and place it in the dispatching mix.  [daemon]
    processes do not keep the machine alive.  [system_level] is the iMAX
    internal level (below 3, faulting panics the machine). *)
val spawn :
  t ->
  ?priority:int ->
  ?daemon:bool ->
  ?system_level:int ->
  ?name:string ->
  ?sro:Access.t ->
  ?start_after:int ->
  (unit -> unit) ->
  Access.t

val process_state : t -> Access.t -> Process.t

(** Kernel half of stop/start: flip the in-dispatching-mix bit and notify
    the scheduler port.  The nested counts live in iMAX's process manager. *)
val set_stopped : t -> Access.t -> bool -> unit

val set_priority : t -> Access.t -> int -> unit
val set_scheduler_port : t -> Access.t -> Access.t -> unit

(** Bind a process to one processor ([None] lifts the binding) — the
    observable equivalent of the 432's partitioned dispatching ports. *)
val set_affinity : t -> Access.t -> int option -> unit

(** {1 GC roots} *)

val add_root : t -> Access.t -> unit
val remove_root : t -> Access.t -> unit
val roots : t -> Access.t list
val all_processes : t -> Process.t list

(** {1 Syscalls (usable only inside a process body)} *)

val send : t -> port:Access.t -> msg:Access.t -> unit
val receive : t -> port:Access.t -> Access.t

(** Like {!send}, but gives up once [timeout_ns] of virtual time has
    passed with the queue still full; reports acceptance.  A budget of 0
    behaves like {!cond_send}. *)
val send_timeout : t -> port:Access.t -> msg:Access.t -> timeout_ns:int -> bool

(** Like {!receive}, but returns [None] once [timeout_ns] of virtual time
    has passed with no message available.  A budget of 0 behaves like
    {!cond_receive}. *)
val receive_timeout : t -> port:Access.t -> timeout_ns:int -> Access.t option

val cond_send : t -> port:Access.t -> msg:Access.t -> bool
val cond_receive : t -> port:Access.t -> Access.t option
val delay : t -> ns:int -> unit
val yield : t -> unit
val exit_process : t -> 'a

(** One atomic attempt at a multi-port transaction group: validate every
    staged receive, send, and data write, then apply all of them at one
    virtual-time instant — or apply none and report the first conflicting
    object in deterministic (ascending index) order.  Never blocks.  A
    nonzero [key] makes the group idempotent: a key that already
    committed skips receives and writes and re-issues the sends
    best-effort ([fresh = false]).  Retry/abort policy lives above the
    kernel ({!I432_txn.Txn}). *)
val txn_try :
  t ->
  key:int ->
  ?receives:Access.t list ->
  ?sends:(Access.t * Access.t) list ->
  ?writes:(Access.t * int * int) list ->
  unit ->
  Syscall.txn_result

(** Idempotency keys of applied transaction groups, ascending.  Part of
    the replayed machine state (checkpoint restores rebuild it). *)
val txn_applied_keys : t -> int list

val txn_key_applied : t -> key:int -> bool

(** {1 Interconnect hooks}

    The kernel surface used by the virtual interconnect ({!I432_net}).  A
    node's NIC pump runs between run-loop slices: it drains surrogate
    ports into frames and lands reconstructed messages in home ports.
    Unreachable without a cluster, so single-machine runs are unchanged. *)

(** Deliver a message into a port from outside the run loop, waking a
    blocked receiver exactly as a local send would.  [false] when the
    queue is full.  [txn] re-tags the message with the committing
    transaction's idempotency key carried by the frame (0 = none). *)
val deliver_external :
  t -> ?txn:int -> port:Access.t -> msg:Access.t -> priority:int -> unit -> bool

(** Withdraw up to [max] queued messages in service order, admitting (and
    readying) blocked senders as space opens.  Returns
    [(msg, priority, enqueued_at, txn)] per message; [txn] is the
    committing transaction's idempotency key (0 = not transactional). *)
val drain_port :
  t -> ?max:int -> port:Access.t -> unit -> (Access.t * int * int * int) list

(** Advance every idle processor's clock to [to_ns] (as idle time), so a
    delivered message cannot be consumed before its frame arrived.  Busy
    processors are untouched. *)
val advance_idle_clocks : t -> to_ns:int -> unit

(** {1 Fault injection and recovery}

    Deterministic chaos: an injection is an action scheduled at a virtual
    instant; the run loop fires due injections on the processor it is
    about to advance, so identical plans replay identically.  All of this
    is inert unless a plan is armed — with no injections scheduled, every
    run is byte-identical to one on a machine without the subsystem. *)

type injection =
  | Inj_cpu_fault of int
      (** hard-fault the GDP with this id: it goes offline forever, its
          running process is requeued, bindings to it are lifted *)
  | Inj_transient of int
      (** the next body instruction charged on this GDP raises a
          [Fault.Transient] fault in the running process *)
  | Inj_alloc_fault of int
      (** force the next n process-context allocations to raise
          [Fault.Storage_exhausted] *)
  | Inj_port_delay of int
      (** charge this many extra virtual ns at the next port syscall *)

val injection_to_string : injection -> string

(** Schedule [injection] to fire at virtual time [at_ns]. *)
val schedule_injection : t -> at_ns:int -> injection -> unit

(** The not-yet-fired injections, in firing order, plus the armed one-shot
    counters ([Inj_alloc_fault]/[Inj_port_delay] that fired but have not
    been consumed).  Folded into checkpoint state images so a restored
    run faces the same remaining chaos. *)
val pending_injections : t -> (int * injection) list

val armed_alloc_faults : t -> int
val armed_port_delay_ns : t -> int

(** Hard-fault a processor immediately (what [Inj_cpu_fault] fires).
    Idempotent; raises [Invalid_argument] for an unknown id. *)
val fail_processor : t -> int -> unit

(** Number of processors still online. *)
val online_processors : t -> int

(** Bounded retry around {!allocate}: on [Storage_exhausted], run the
    reclaim hook (if registered), charge [backoff_ns] of virtual time
    (doubled per attempt, default 100 µs), and retry up to [max_retries]
    times (default 4) before re-raising. *)
val allocate_retry :
  t ->
  Access.t ->
  ?max_retries:int ->
  ?backoff_ns:int ->
  data_length:int ->
  access_length:int ->
  otype:Obj_type.t ->
  unit ->
  Access.t

(** Register the storage-reclaim hook {!allocate_retry} runs between
    attempts (typically a GC cycle); returns objects reclaimed. *)
val set_reclaim_hook : t -> (unit -> int) option -> unit

(** Register a hook called after a fault is recorded in a process the
    machine survives (supervision restart policies hang off this). *)
val set_fault_hook : t -> (Process.t -> Fault.cause -> unit) option -> unit

(** {1 Running} *)

(** Run until no non-daemon process can make progress, or a bound is hit. *)
val run : ?max_ns:int -> ?max_steps:int -> t -> run_report

(** Sum of busy time across processors: the "total processing power"
    delivered. *)
val total_busy_ns : t -> int

val processor_utilizations : t -> float array
