(** Machine introspection from outside the protection boundary.

    A consistent summary of processes, processors, ports, and the object
    table — the simulator's logic-analyzer view, deliberately not an iMAX
    service (inside the capability system there is no central table of all
    processes, §7.1). *)

type process_line = {
  p_name : string;
  p_status : string;
  p_priority : int;
  p_cpu_ns : int;
  p_dispatches : int;
  p_preemptions : int;
  p_messages : int * int;  (** sent, received *)
}

type processor_line = {
  c_id : int;
  c_clock_ns : int;
  c_busy_ns : int;
  c_idle_ns : int;
  c_utilization : float;
  c_dispatches : int;
  c_online : bool;
}

type port_line = {
  q_index : int;
  q_capacity : int;
  q_depth : int;
  q_sends : int;
  q_receives : int;
  q_blocks : int * int;  (** send, receive *)
}

type sro_line = {
  s_index : int;
  s_level : int;
  s_free_bytes : int;
  s_largest_free : int;  (** largest single free region *)
  s_region_count : int;  (** free-list fragmentation *)
  s_live_objects : int;
}

type t = {
  now_ns : int;
  processes : process_line list;
  processors : processor_line list;
  ports : port_line list;
  sros : sro_line list;
  objects_live : int;
  table_capacity : int;
  barrier_shades : int;
  fault_count : int;
  gc_phase : string;  (** "idle", "mark" or "sweep" (metrics gauge) *)
  events_emitted : int;
  events_retained : int;
  events_dropped : int;
}

val capture : Machine.t -> t
val total_cpu_ns : t -> int

(** Multi-line human-readable rendering. *)
val render : t -> string

(** Full deterministic machine image, for checkpoint verification.

    Every piece of kernel state that shapes future execution, rendered in
    a fixed order: per-object descriptors with hex data images and access
    parts, port queues in service order, process records (dispatching
    parameters, statistics, park state), processor clocks, SRO free-store
    shapes, recorded faults, pending injections with armed one-shot
    counters, and trace totals.  Two machines that replayed the same
    history render byte-identical images, so comparing images proves a
    restore reproduced the killed run's state exactly.  OCaml coroutine
    continuations are the one thing a textual image cannot carry — which
    is precisely why checkpoint/restore is replay-based (DESIGN.md §10). *)
val state_image : Machine.t -> string
