(** Process objects: schedulable effect-handler coroutines.

    The kernel keeps one record per process holding its coroutine state,
    dispatching parameters, statistics, and the single in/out-of-mix bit
    that iMAX's basic process manager drives through nested stop/start
    counts. *)

open I432

type status =
  | Created
  | Ready
  | Running
  | Blocked_send of int  (** port object index *)
  | Blocked_receive of int
  | Sleeping
  | Finished
  | Faulted of Fault.cause

type outcome =
  | Completed
  | Raised of exn
  | Pending of Syscall.op * (Syscall.result, outcome) Effect.Deep.continuation

type code =
  | Not_started of (unit -> unit)
  | Suspended of (Syscall.result, outcome) Effect.Deep.continuation
  | Terminated

type t = {
  index : int;  (** object-table index of the process object *)
  name : string;
  daemon : bool;  (** daemons do not keep the machine alive *)
  mutable code : code;
  mutable status : status;
  mutable stopped : bool;  (** out of the dispatching mix *)
  mutable priority : int;
  mutable pending : Syscall.result;  (** delivered at next resume *)
  mutable wake_at : int;
  mutable timeout_at : int option;
      (** virtual-time deadline of the timed blocking operation the process
          is currently parked on, if any *)
  mutable cpu_ns : int;
  mutable slice_used_ns : int;
  mutable last_ready_ns : int;  (** when the process last entered the mix *)
  mutable trace_name_id : int;  (** the tracer's interned id for [name] *)
  mutable system_level : int;  (** iMAX internal level (§7.3); 4 = user *)
  mutable affinity : int option;  (** restrict dispatch to one processor *)
  mutable scheduler_port : int option;
  mutable local_roots : Access.t list;  (** GC shadow stack *)
  mutable call_depth : int;
  mutable contexts : Access.t list;  (** activation-record stack *)
  mutable dispatches : int;
  mutable preemptions : int;
  mutable blocks : int;
  mutable messages_sent : int;
  mutable messages_received : int;
}

type Object_table.payload += Process_state of t

(** Resolve a process object (checked for hardware type). *)
val state_of : Object_table.t -> Access.t -> t

val state_of_index : Object_table.t -> int -> t

(** Advance the coroutine to its next syscall, completion, or exception,
    delivering the pending result. *)
val step : t -> outcome

val is_terminal : t -> bool
val status_to_string : status -> string
