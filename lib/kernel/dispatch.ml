(* Dispatching ports (paper §2): "ready processes are dispatched on
   processors automatically by the hardware via algorithms that involve
   processor, process, and dispatching port objects."

   The ready queue orders by descending process priority, FIFO within a
   priority.  Stopped or otherwise non-ready processes may linger in the
   queue after state changes; the pop operation skips them (they re-enter
   explicitly when restarted).

   Host-cost structure: a pairing heap keyed by (priority desc, seq asc)
   replaces the seed's sorted list, turning O(n) enqueue into O(1) and the
   front pop into O(log n), with service order unchanged bit-for-bit.
   [remove] is lazy: instead of searching the heap it records a kill
   boundary — every entry of that process with a sequence number below the
   boundary is dead and gets discarded when it surfaces at pop.  Live
   membership and queue length are incremental counters, so the O(n)
   [List.length] per enqueue is gone too. *)

open I432_util

type entry = { process : int; priority : int; seq : int }

type t = {
  heap : entry Pqueue.t;
  counts : (int, int) Hashtbl.t;  (* live entries per process *)
  killed : (int, int) Hashtbl.t;  (* process -> kill boundary seq *)
  mutable live : int;  (* total live entries *)
  mutable seq : int;
  mutable enqueues : int;
  mutable dispatches : int;
  mutable max_ready : int;
}

let create () =
  {
    heap = Pqueue.create ();
    counts = Hashtbl.create 64;
    killed = Hashtbl.create 16;
    live = 0;
    seq = 0;
    enqueues = 0;
    dispatches = 0;
    max_ready = 0;
  }

let count t process =
  match Hashtbl.find_opt t.counts process with Some c -> c | None -> 0

let enqueue t ~process ~priority =
  let e = { process; priority; seq = t.seq } in
  t.seq <- t.seq + 1;
  Pqueue.insert t.heap ~priority ~seq:e.seq e;
  Hashtbl.replace t.counts process (count t process + 1);
  t.live <- t.live + 1;
  t.enqueues <- t.enqueues + 1;
  if t.live > t.max_ready then t.max_ready <- t.live

let is_dead t e =
  match Hashtbl.find_opt t.killed e.process with
  | Some boundary -> e.seq < boundary
  | None -> false

(* Pop the first entry accepted by [eligible]; ineligible entries stay.
   Skipped entries are stashed and re-inserted under their original keys,
   which restores their exact service position. *)
let pop t ~eligible =
  let restore stash =
    List.iter
      (fun e -> Pqueue.insert t.heap ~priority:e.priority ~seq:e.seq e)
      stash
  in
  let rec go stash =
    match Pqueue.pop t.heap with
    | None ->
      restore stash;
      None
    | Some e ->
      if is_dead t e then go stash
      else if eligible e.process then begin
        restore stash;
        let c = count t e.process - 1 in
        if c = 0 then Hashtbl.remove t.counts e.process
        else Hashtbl.replace t.counts e.process c;
        t.live <- t.live - 1;
        t.dispatches <- t.dispatches + 1;
        Some e.process
      end
      else go (e :: stash)
  in
  go []

let remove t ~process =
  (match Hashtbl.find_opt t.counts process with
  | Some c ->
    t.live <- t.live - c;
    Hashtbl.remove t.counts process
  | None -> ());
  (* Entries already in the heap all carry seq < t.seq; anything the
     process enqueues later carries seq >= t.seq and survives. *)
  Hashtbl.replace t.killed process t.seq

let mem t ~process = count t process > 0
let length t = t.live
let dispatches_of t = t.dispatches
let enqueues_of t = t.enqueues
let max_ready_of t = t.max_ready
