(* Machine introspection: a consistent summary of the whole system for
   operator tooling and integration tests.

   Note the deliberate contrast with §7.1 of the paper: *inside* the
   capability system there is no central table of all processes, and a
   module only ever reaches the objects it manages.  This module is the
   simulator's debugging view from outside the protection boundary — the
   equivalent of a logic analyzer on the real hardware, not an iMAX
   service. *)

open I432

type process_line = {
  p_name : string;
  p_status : string;
  p_priority : int;
  p_cpu_ns : int;
  p_dispatches : int;
  p_preemptions : int;
  p_messages : int * int;  (* sent, received *)
}

type processor_line = {
  c_id : int;
  c_clock_ns : int;
  c_busy_ns : int;
  c_idle_ns : int;
  c_utilization : float;
  c_dispatches : int;
  c_online : bool;
}

type port_line = {
  q_index : int;
  q_capacity : int;
  q_depth : int;
  q_sends : int;
  q_receives : int;
  q_blocks : int * int;  (* send, receive *)
}

type sro_line = {
  s_index : int;
  s_level : int;
  s_free_bytes : int;
  s_largest_free : int;
  s_region_count : int;
  s_live_objects : int;
}

type t = {
  now_ns : int;
  processes : process_line list;
  processors : processor_line list;
  ports : port_line list;
  sros : sro_line list;
  objects_live : int;
  table_capacity : int;
  barrier_shades : int;
  fault_count : int;
  gc_phase : string;
  events_emitted : int;
  events_retained : int;
  events_dropped : int;
}

(* The collector (a layer above this library) publishes its phase through
   the machine's metrics registry; 0 = idle, 1 = mark, 2 = sweep. *)
let gc_phase_of machine =
  match I432_obs.Metrics.find_gauge (Machine.metrics machine) "gc.phase" with
  | Some g -> (
    match I432_obs.Metrics.gauge_value g with
    | 1 -> "mark"
    | 2 -> "sweep"
    | _ -> "idle")
  | None -> "idle"

let capture machine =
  let table = Machine.table machine in
  let processes =
    List.rev_map
      (fun (p : Process.t) ->
        {
          p_name = p.Process.name;
          p_status = Process.status_to_string p.Process.status;
          p_priority = p.Process.priority;
          p_cpu_ns = p.Process.cpu_ns;
          p_dispatches = p.Process.dispatches;
          p_preemptions = p.Process.preemptions;
          p_messages = (p.Process.messages_sent, p.Process.messages_received);
        })
      (Machine.all_processes machine)
  in
  let ports = ref [] in
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (Port.Port_state p) ->
        ports :=
          {
            q_index = e.Object_table.index;
            q_capacity = p.Port.capacity;
            q_depth = Port.queue_length p;
            q_sends = p.Port.sends;
            q_receives = p.Port.receives;
            q_blocks = (p.Port.send_blocks, p.Port.receive_blocks);
          }
          :: !ports
      | Some _ | None -> ())
    table;
  let sros = ref [] in
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (Sro.Sro_state _) ->
        let access =
          Access.make ~index:e.Object_table.index ~rights:Rights.full
        in
        sros :=
          {
            s_index = e.Object_table.index;
            s_level = Sro.level table access;
            s_free_bytes = Sro.free_bytes table access;
            s_largest_free = Sro.largest_free table access;
            s_region_count = Sro.region_count table access;
            s_live_objects = Sro.live_objects table access;
          }
          :: !sros
      | Some _ | None -> ())
    table;
  let processors = ref [] in
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (Processor.Processor_state c) ->
        processors :=
          {
            c_id = c.Processor.id;
            c_clock_ns = c.Processor.clock_ns;
            c_busy_ns = c.Processor.busy_ns;
            c_idle_ns = c.Processor.idle_ns;
            c_utilization = Processor.utilization c;
            c_dispatches = c.Processor.dispatches;
            c_online = c.Processor.online;
          }
          :: !processors
      | Some _ | None -> ())
    table;
  {
    now_ns = Machine.now machine;
    processes;
    processors = List.sort (fun a b -> compare a.c_id b.c_id) !processors;
    ports = List.sort (fun a b -> compare a.q_index b.q_index) !ports;
    sros = List.sort (fun a b -> compare a.s_index b.s_index) !sros;
    objects_live = Object_table.count_valid table;
    table_capacity = Object_table.capacity table;
    barrier_shades = Object_table.barrier_shades table;
    fault_count = List.length (Machine.faults machine);
    gc_phase = gc_phase_of machine;
    events_emitted = I432_obs.Tracer.emitted (Machine.tracer machine);
    events_retained = I432_obs.Tracer.retained (Machine.tracer machine);
    events_dropped = I432_obs.Tracer.dropped (Machine.tracer machine);
  }

let total_cpu_ns t =
  List.fold_left (fun acc p -> acc + p.p_cpu_ns) 0 t.processes

(* ------------------------------------------------------------------ *)
(* Deterministic full-state image (checkpoint verification)            *)
(* ------------------------------------------------------------------ *)

(* Everything below iterates in index order (the table's iter_valid) or
   queue service order, never hash order, so two machines that replayed
   the same history render byte-identical images.  The image is textual
   on purpose: a mismatch diff names the divergent object instead of
   reducing to "digests differ". *)

let rights_str (r : Rights.t) =
  Printf.sprintf "%c%c%d"
    (if r.Rights.read then 'r' else '-')
    (if r.Rights.write then 'w' else '-')
    r.Rights.type_rights

let access_str a =
  Printf.sprintf "%d:%s" (Access.index a) (rights_str (Access.rights a))

let state_image machine =
  let table = Machine.table machine in
  let mem = Machine.memory machine in
  let buf = Buffer.create 8192 in
  Printf.bprintf buf "state-image/1 now=%d online=%d\n" (Machine.now machine)
    (Machine.online_processors machine);
  Object_table.iter_valid
    (fun e ->
      Printf.bprintf buf "obj %d type=%s len=%d alen=%d level=%d sro=%d%s\n"
        e.Object_table.index
        (Obj_type.to_string e.Object_table.otype)
        e.Object_table.data_length
        (Array.length e.Object_table.access_part)
        e.Object_table.level e.Object_table.sro
        (if e.Object_table.swapped_out then " swapped" else "");
      if e.Object_table.data_length > 0 then begin
        let img =
          Memory.blit_to_bytes mem ~src_addr:e.Object_table.base
            ~len:e.Object_table.data_length
        in
        Buffer.add_string buf " data=";
        Bytes.iter (fun c -> Printf.bprintf buf "%02x" (Char.code c)) img;
        Buffer.add_char buf '\n'
      end;
      Array.iteri
        (fun slot a ->
          match a with
          | None -> ()
          | Some a -> Printf.bprintf buf " ad %d -> %s\n" slot (access_str a))
        e.Object_table.access_part;
      match e.Object_table.payload with
      | Some (Port.Port_state p) ->
        Printf.bprintf buf
          " port %s cap=%d seq=%d sends=%d recvs=%d blocks=%d/%d maxd=%d \
           wait=%d\n"
          (Port.discipline_to_string p.Port.discipline)
          p.Port.capacity p.Port.seq p.Port.sends p.Port.receives
          p.Port.send_blocks p.Port.receive_blocks p.Port.max_depth
          p.Port.total_queue_wait_ns;
        Port.iter_messages
          (fun m ->
            (* The txn suffix appears only for transactional messages, so
               images of runs without transactions are unchanged. *)
            Printf.bprintf buf " msg %s prio=%d seq=%d at=%d%s\n"
              (access_str m.Port.msg) m.Port.msg_priority m.Port.seq
              m.Port.enqueued_at
              (if m.Port.txn <> 0 then Printf.sprintf " txn=%d" m.Port.txn
               else ""))
          p;
        Port.iter_senders
          (fun s ->
            Printf.bprintf buf " sender %d msg=%s prio=%d seq=%d\n"
              s.Port.sender
              (access_str s.Port.sender_msg)
              s.Port.sender_priority s.Port.sender_seq)
          p;
        Queue.iter (Printf.bprintf buf " receiver %d\n") p.Port.receivers
      | Some (Process.Process_state p) ->
        Printf.bprintf buf
          " process %s status=%s%s prio=%d wake=%d tmo=%s cpu=%d slice=%d \
           ready=%d lvl=%d aff=%s sched=%s depth=%d disp=%d pre=%d blk=%d \
           msgs=%d/%d roots=%d ctxs=%d\n"
          p.Process.name
          (Process.status_to_string p.Process.status)
          (if p.Process.stopped then " stopped" else "")
          p.Process.priority p.Process.wake_at
          (match p.Process.timeout_at with
          | None -> "-"
          | Some t -> string_of_int t)
          p.Process.cpu_ns p.Process.slice_used_ns p.Process.last_ready_ns
          p.Process.system_level
          (match p.Process.affinity with
          | None -> "-"
          | Some c -> string_of_int c)
          (match p.Process.scheduler_port with
          | None -> "-"
          | Some i -> string_of_int i)
          p.Process.call_depth p.Process.dispatches p.Process.preemptions
          p.Process.blocks p.Process.messages_sent p.Process.messages_received
          (List.length p.Process.local_roots)
          (List.length p.Process.contexts)
      | Some (Processor.Processor_state c) ->
        Printf.bprintf buf
          " cpu %d clock=%d busy=%d idle=%d disp=%d%s%s cur=%s\n"
          c.Processor.id c.Processor.clock_ns c.Processor.busy_ns
          c.Processor.idle_ns c.Processor.dispatches
          (if c.Processor.online then "" else " offline")
          (if c.Processor.transient_pending then " transient" else "")
          (match c.Processor.current with
          | None -> "-"
          | Some i -> string_of_int i)
      | Some (Sro.Sro_state _) ->
        let access =
          Access.make ~index:e.Object_table.index ~rights:Rights.full
        in
        Printf.bprintf buf " sro level=%d free=%d largest=%d regions=%d live=%d\n"
          (Sro.level table access)
          (Sro.free_bytes table access)
          (Sro.largest_free table access)
          (Sro.region_count table access)
          (Sro.live_objects table access)
      | Some _ | None -> ())
    table;
  List.iter
    (fun (name, cause) ->
      Printf.bprintf buf "fault %s %s\n" name (Fault.to_string cause))
    (Machine.faults machine);
  List.iter
    (fun (at, inj) ->
      Printf.bprintf buf "injection %d %s\n" at
        (Machine.injection_to_string inj))
    (Machine.pending_injections machine);
  if Machine.armed_alloc_faults machine > 0 then
    Printf.bprintf buf "armed alloc-faults=%d\n"
      (Machine.armed_alloc_faults machine);
  if Machine.armed_port_delay_ns machine > 0 then
    Printf.bprintf buf "armed port-delay=%d\n"
      (Machine.armed_port_delay_ns machine);
  (match Machine.txn_applied_keys machine with
  | [] -> ()
  | keys ->
    Printf.bprintf buf "txn applied=%s\n"
      (String.concat "," (List.map string_of_int keys)));
  Printf.bprintf buf "trace emitted=%d retained=%d dropped=%d\n"
    (I432_obs.Tracer.emitted (Machine.tracer machine))
    (I432_obs.Tracer.retained (Machine.tracer machine))
    (I432_obs.Tracer.dropped (Machine.tracer machine));
  Buffer.contents buf

let render t =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "machine at %.3f ms: %d live objects (table cap %d), %d faults\n"
    (float_of_int t.now_ns /. 1e6)
    t.objects_live t.table_capacity t.fault_count;
  Printf.bprintf buf "  gc %s; trace %d emitted, %d retained, %d dropped\n"
    t.gc_phase t.events_emitted t.events_retained t.events_dropped;
  List.iter
    (fun c ->
      (* The " offline" suffix appears only after a hard fault, so renders
         of healthy machines stay byte-identical to the seed. *)
      Printf.bprintf buf
        "  cpu%d: clock %.3f ms, busy %.3f ms, util %.0f%%, %d dispatches%s\n"
        c.c_id
        (float_of_int c.c_clock_ns /. 1e6)
        (float_of_int c.c_busy_ns /. 1e6)
        (100.0 *. c.c_utilization) c.c_dispatches
        (if c.c_online then "" else " offline"))
    t.processors;
  List.iter
    (fun p ->
      Printf.bprintf buf "  process %-16s %-12s prio %2d cpu %.3f ms msgs %d/%d\n"
        p.p_name p.p_status p.p_priority
        (float_of_int p.p_cpu_ns /. 1e6)
        (fst p.p_messages) (snd p.p_messages))
    t.processes;
  List.iter
    (fun q ->
      Printf.bprintf buf "  port #%d depth %d/%d sends %d receives %d blocks %d/%d\n"
        q.q_index q.q_depth q.q_capacity q.q_sends q.q_receives
        (fst q.q_blocks) (snd q.q_blocks))
    t.ports;
  List.iter
    (fun s ->
      Printf.bprintf buf
        "  sro #%d level %d free %d B (largest %d B, %d regions) %d objects\n"
        s.s_index s.s_level s.s_free_bytes s.s_largest_free s.s_region_count
        s.s_live_objects)
    t.sros;
  Buffer.contents buf
