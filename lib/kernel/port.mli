(** Communication port objects: bounded message queues with a queueing
    discipline.  Messages are access descriptors; a full queue blocks the
    sender, an empty one the receiver.

    Type rights on a port access: {!I432.Rights.t1} = send,
    {!I432.Rights.t2} = receive.

    This module holds the pure queue state; the blocking protocol lives in
    the machine's syscall handler.  The queues themselves are host-cost
    structures (ring buffer / pairing heap per discipline) built by
    {!make}; service order is identical to a sorted list. *)

open I432
open I432_util

type discipline = Fifo | Priority

type queued_message = {
  msg : Access.t;
  msg_priority : int;
  seq : int;
  enqueued_at : int;
  txn : int;  (** idempotency key of the committing transaction, 0 = none *)
}

type waiting_sender = {
  sender : int;  (** process object index *)
  sender_msg : Access.t;
  sender_priority : int;
  sender_seq : int;
}

type messages =
  | M_fifo of queued_message Ring_buffer.t
  | M_prio of queued_message Pqueue.t

type senders =
  | S_fifo of waiting_sender Queue.t
  | S_prio of waiting_sender Pqueue.t

type t = {
  self : int;
  capacity : int;
  discipline : discipline;
  messages : messages;
  senders : senders;
  receivers : int Queue.t;
  mutable seq : int;
  mutable sends : int;
  mutable receives : int;
  mutable send_blocks : int;
  mutable receive_blocks : int;
  mutable total_queue_wait_ns : int;
  mutable last_wait_ns : int;  (** queue wait of the last dequeued message *)
  mutable max_depth : int;
}

type Object_table.payload += Port_state of t

(** Fresh port state with empty queues matching [discipline].  Raises
    [Invalid_argument] when [capacity < 1]. *)
val make : self:int -> capacity:int -> discipline:discipline -> t

val state_of : Object_table.t -> Access.t -> t
val state_of_index : Object_table.t -> int -> t

(** Raise [Fault Rights_violation] without the respective type right. *)
val check_send_right : Access.t -> unit

val check_receive_right : Access.t -> unit

val queue_length : t -> int
val is_full : t -> bool
val is_empty : t -> bool
val has_blocked_receiver : t -> bool
val has_blocked_sender : t -> bool

(** Enqueue in service order (FIFO appends; Priority orders by descending
    priority, FIFO within).  [txn] tags the message with the committing
    transaction's idempotency key (0 = not transactional).  Raises
    [Invalid_argument] when full. *)
val enqueue : ?txn:int -> t -> msg:Access.t -> priority:int -> now:int -> unit

val dequeue : t -> now:int -> Access.t option

(** Like {!dequeue} but returns the whole queue record — the interconnect
    layer preserves [msg_priority] across the wire and stamps the outgoing
    frame with [enqueued_at]. *)
val dequeue_entry : t -> now:int -> queued_message option
val pop_receiver : t -> int option
val push_receiver : t -> int -> unit
val pop_sender : t -> waiting_sender option
val push_sender : t -> sender:int -> msg:Access.t -> priority:int -> unit

(** Remove one parked receiver process from the blocked queue, preserving
    everyone else's service order; [true] iff it was found.  O(n); used
    only when a timed receive expires. *)
val remove_receiver : t -> index:int -> bool

(** Remove one parked sender by process index, preserving service order of
    the survivors; returns the removed entry.  O(n); used only when a
    timed send expires. *)
val remove_sender : t -> index:int -> waiting_sender option

(** Visit every queued message once, in unspecified order (collector root
    scan; shading is order-insensitive). *)
val iter_messages : (queued_message -> unit) -> t -> unit

(** Visit every blocked sender once, in unspecified order. *)
val iter_senders : (waiting_sender -> unit) -> t -> unit

val mean_queue_wait_ns : t -> float
val discipline_to_string : discipline -> string
