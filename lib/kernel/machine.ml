(* The simulated 432 system: one shared memory, one global object table, N
   general data processors, and a hardware dispatching port.

   The run loop is a deterministic discrete-event simulation: it always
   advances the processor with the smallest virtual clock (ties broken by
   processor id), resuming that processor's current process until its next
   syscall.  Non-blocking instructions (segment access, allocation, domain
   calls, computation) are charged to the running processor directly by the
   wrapper functions below; potentially blocking instructions arrive here as
   {!Syscall} effects and are implemented against the port and dispatching
   structures.

   All synchronization is explicit, as §3 requires: nothing in the kernel
   assumes a single processor is running. *)

open I432
module Obs = I432_obs

exception Kernel_panic of string

type config = {
  processors : int;
  memory_bytes : int;
  timings : Timings.t;
  bus_alpha_per_mille : int;
  global_heap_bytes : int;  (* size of the boot-time level-0 SRO *)
  trace_level : Obs.Tracer.level;
  trace_capacity : int;  (* event-ring slots per processor *)
}

let default_config =
  {
    processors = 1;
    memory_bytes = 1 lsl 22;
    timings = Timings.default;
    bus_alpha_per_mille = 20;
    global_heap_bytes = (1 lsl 22) - 4096;
    trace_level = Obs.Tracer.Off;
    trace_capacity = Obs.Tracer.default_capacity;
  }

type run_report = {
  elapsed_ns : int;  (* largest processor clock at halt *)
  completed : int;
  faulted : int;
  deadlocked : string list;  (* names of processes still blocked at halt *)
  dispatches : int;
  preemptions : int;
}

(* Deterministic fault injection (DESIGN.md §8).  An injection is an action
   scheduled at a virtual instant; the run loop fires every injection whose
   time has come on the processor it is about to advance, so identical
   plans replay identically.  All of this is off unless a plan is armed:
   the legacy hot paths see one empty-list check per loop iteration. *)
type injection =
  | Inj_cpu_fault of int  (* hard-fault the GDP: it goes offline forever *)
  | Inj_transient of int  (* next body instruction on this GDP faults *)
  | Inj_alloc_fault of int  (* force the next n allocations to fail *)
  | Inj_port_delay of int  (* extra ns charged at the next port syscall *)

let injection_to_string = function
  | Inj_cpu_fault id -> Printf.sprintf "cpu-fault(%d)" id
  | Inj_transient id -> Printf.sprintf "transient(%d)" id
  | Inj_alloc_fault n -> Printf.sprintf "alloc-fault(%d)" n
  | Inj_port_delay ns -> Printf.sprintf "port-delay(%dns)" ns

let injection_arg = function
  | Inj_cpu_fault id | Inj_transient id -> id
  | Inj_alloc_fault n -> n
  | Inj_port_delay ns -> ns

(* Pre-resolved metrics instruments: the hot paths update bare mutable
   fields; the registry is only walked on dump. *)
type monitors = {
  mon_charged_ns : Obs.Metrics.counter;
  mon_spawns : Obs.Metrics.counter;
  mon_dispatches : Obs.Metrics.counter;
  mon_enqueues : Obs.Metrics.counter;
  mon_preemptions : Obs.Metrics.counter;
  mon_sends : Obs.Metrics.counter;
  mon_receives : Obs.Metrics.counter;
  mon_send_blocks : Obs.Metrics.counter;
  mon_receive_blocks : Obs.Metrics.counter;
  mon_allocates : Obs.Metrics.counter;
  mon_releases : Obs.Metrics.counter;
  mon_sro_creates : Obs.Metrics.counter;
  mon_sro_destroys : Obs.Metrics.counter;
  mon_domain_calls : Obs.Metrics.counter;
  mon_faults : Obs.Metrics.counter;
  mon_injections : Obs.Metrics.counter;
  mon_cpu_offline : Obs.Metrics.counter;
  mon_requeues : Obs.Metrics.counter;
  mon_alloc_retries : Obs.Metrics.counter;
  mon_timeouts : Obs.Metrics.counter;
  mon_ready_len : Obs.Metrics.gauge;
  mon_dispatch_latency : Obs.Metrics.histogram;
  mon_port_wait : Obs.Metrics.histogram;
  mon_alloc_size : Obs.Metrics.histogram;
}

type t = {
  table : Object_table.t;
  memory : Memory.t;
  timings : Timings.t;
  bus : Bus.t;
  processors : Processor.t array;
  dispatch : Dispatch.t;
  global_sro : Access.t;
  mutable current : Processor.t option;
  mutable in_body : bool;  (* true while a process body is executing *)
  mutable processes : Process.t list;  (* every process ever created *)
  mutable live_user_processes : int;  (* non-daemon, non-terminal *)
  mutable gc_roots : Access.t list;
  obs : Obs.Tracer.t;
  metrics : Obs.Metrics.t;
  mon : monitors;
  mutable preemptions : int;
  mutable faults : (string * Fault.cause) list;  (* newest first; see [faults] *)
  mutable fault_port : int option;  (* faulted processes are sent here *)
  mutable halted : bool;
  (* Fault injection and recovery state.  All defaults leave every legacy
     path untouched: empty plan, zero counters, no hooks. *)
  mutable injections : (int * int * injection) list;  (* (at_ns, seq, _) sorted *)
  mutable inj_seq : int;
  mutable forced_alloc_faults : int;  (* armed by Inj_alloc_fault *)
  mutable pending_port_delay_ns : int;  (* armed by Inj_port_delay *)
  mutable timed_waiters : int;  (* processes blocked with a deadline *)
  mutable reclaim_hook : (unit -> int) option;  (* allocate_retry's GC *)
  mutable fault_hook : (Process.t -> Fault.cause -> unit) option;
  (* Idempotency keys of applied transaction groups (Txn_try).  Part of
     the machine's replayed state: a checkpoint restore re-executes the
     same commits and rebuilds the same set, so a retried group can never
     double-apply across a crash.  Empty until the first keyed commit. *)
  txn_applied : (int, unit) Hashtbl.t;
  (* Domain id currently inside [run], if any.  A machine is a
     single-domain object: the parallel cluster engine steps each node on
     exactly one domain per round, and this field turns a violated
     partitioning into an immediate failure instead of a data race. *)
  mutable stepper : int option;
}

let make_monitors metrics =
  {
    mon_charged_ns = Obs.Metrics.counter metrics "machine.charged_ns";
    mon_spawns = Obs.Metrics.counter metrics "proc.spawns";
    mon_dispatches = Obs.Metrics.counter metrics "dispatch.dispatches";
    mon_enqueues = Obs.Metrics.counter metrics "dispatch.enqueues";
    mon_preemptions = Obs.Metrics.counter metrics "dispatch.preemptions";
    mon_sends = Obs.Metrics.counter metrics "port.sends";
    mon_receives = Obs.Metrics.counter metrics "port.receives";
    mon_send_blocks = Obs.Metrics.counter metrics "port.send_blocks";
    mon_receive_blocks = Obs.Metrics.counter metrics "port.receive_blocks";
    mon_allocates = Obs.Metrics.counter metrics "sro.allocates";
    mon_releases = Obs.Metrics.counter metrics "sro.releases";
    mon_sro_creates = Obs.Metrics.counter metrics "sro.creates";
    mon_sro_destroys = Obs.Metrics.counter metrics "sro.destroys";
    mon_domain_calls = Obs.Metrics.counter metrics "domain.calls";
    mon_faults = Obs.Metrics.counter metrics "machine.faults";
    mon_injections = Obs.Metrics.counter metrics "fi.injections";
    mon_cpu_offline = Obs.Metrics.counter metrics "fi.cpu_offline";
    mon_requeues = Obs.Metrics.counter metrics "fi.requeues";
    mon_alloc_retries = Obs.Metrics.counter metrics "sro.alloc_retries";
    mon_timeouts = Obs.Metrics.counter metrics "port.timeouts";
    mon_ready_len = Obs.Metrics.gauge metrics "dispatch.ready_len";
    mon_dispatch_latency =
      Obs.Metrics.histogram metrics ~buckets:32 ~lo:0.0 ~hi:3.2e6
        "dispatch.latency_ns";
    mon_port_wait =
      Obs.Metrics.histogram metrics ~buckets:32 ~lo:0.0 ~hi:3.2e6
        "port.wait_ns";
    mon_alloc_size =
      Obs.Metrics.histogram metrics ~buckets:32 ~lo:0.0 ~hi:65536.0
        "alloc.size_bytes";
  }

let create ?(config = default_config) () =
  if config.processors <= 0 then invalid_arg "Machine.create: processors";
  let metrics = Obs.Metrics.create () in
  let table = Object_table.create () in
  let memory = Memory.create ~size_bytes:config.memory_bytes in
  let bus =
    Bus.create ~alpha_per_mille:config.bus_alpha_per_mille
      ~processors:config.processors ()
  in
  let global_sro =
    Sro.create table ~level:0 ~base:4096 ~length:config.global_heap_bytes
  in
  let processors =
    Array.init config.processors (fun id ->
        let e =
          Object_table.allocate_entry table ~otype:Obj_type.Processor ~base:0
            ~data_length:0 ~access_length:4 ~level:0 ~sro:(-1)
        in
        let p = Processor.make ~id ~self:e.Object_table.index in
        e.Object_table.payload <- Some (Processor.Processor_state p);
        p)
  in
  {
    table;
    memory;
    timings = config.timings;
    bus;
    processors;
    dispatch = Dispatch.create ();
    global_sro;
    current = None;
    in_body = false;
    processes = [];
    live_user_processes = 0;
    gc_roots = [];
    obs =
      Obs.Tracer.create ~capacity:config.trace_capacity
        ~level:config.trace_level ~processors:config.processors ();
    metrics;
    mon = make_monitors metrics;
    preemptions = 0;
    faults = [];
    fault_port = None;
    halted = false;
    injections = [];
    inj_seq = 0;
    forced_alloc_faults = 0;
    pending_port_delay_ns = 0;
    timed_waiters = 0;
    reclaim_hook = None;
    fault_hook = None;
    txn_applied = Hashtbl.create 16;
    stepper = None;
  }

let table t = t.table
let memory t = t.memory
let timings t = t.timings
let bus t = t.bus
let global_sro t = t.global_sro
let processor_count t = Array.length t.processors
let tracer t = t.obs
let metrics t = t.metrics
let events t = Obs.Tracer.events t.obs

(* Compat shim: the seed's unstructured trace lines, rendered by the tracer
   at emit time (byte-identical formats, unbounded). *)
let trace_lines t = Obs.Tracer.legacy_lines t.obs

(* Faults in emission order: the list is accumulated newest-first (O(1)
   prepend on the fault path) and reversed here, so the first fault the
   machine recorded is the first element.  This ordering is part of the
   API contract and covered by a regression test. *)
let faults t = List.rev t.faults

let online_processors t =
  Array.fold_left
    (fun acc p -> if p.Processor.online then acc + 1 else acc)
    0 t.processors

let set_reclaim_hook t hook = t.reclaim_hook <- hook
let set_fault_hook t hook = t.fault_hook <- hook

(* Applied transaction keys, ascending (snapshot images and tests). *)
let txn_applied_keys t =
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.txn_applied [])

let txn_key_applied t ~key = Hashtbl.mem t.txn_applied key

(* Virtual time now: the clock of the executing processor, or the max clock
   when called from outside the run loop. *)
let now t =
  match t.current with
  | Some p -> p.Processor.clock_ns
  | None ->
    Array.fold_left (fun acc p -> max acc p.Processor.clock_ns) 0 t.processors

(* Record one structured event, stamped with the executing processor's id
   and virtual clock (or -1 / max clock outside the run loop).  One field
   read when tracing is off; one mask load more when the event's subsystem
   is filtered out — the timestamp ([now t] folds every processor clock
   outside the run loop) and interning are skipped entirely. *)
let emit t ?name ?detail ?a ?b kind =
  if Obs.Tracer.wants t.obs ~kind_code:(Obs.Event.kind_to_int kind) then
    match t.current with
    | Some p ->
      Obs.Tracer.emit t.obs ~ts_ns:p.Processor.clock_ns ~cpu:p.Processor.id
        ?name ?detail ?a ?b kind
    | None -> Obs.Tracer.emit t.obs ~ts_ns:(now t) ~cpu:(-1) ?name ?detail ?a ?b kind

(* Same, on behalf of a known processor (the run loop clears [t.current]
   before it settles a process's outcome). *)
let emit_on t (cpu : Processor.t) ?name ?detail ?a ?b kind =
  if Obs.Tracer.wants t.obs ~kind_code:(Obs.Event.kind_to_int kind) then
    Obs.Tracer.emit t.obs ~ts_ns:cpu.Processor.clock_ns ~cpu:cpu.Processor.id
      ?name ?detail ?a ?b kind

let emit_event = emit

(* The hottest seams bypass [emit]'s option boxing, string interning, and
   kind conversion: kind codes are computed once here, and each process's
   name id is interned once at spawn ([Process.trace_name_id]). *)
let k_ready = Obs.Event.kind_to_int Obs.Event.Ready
let k_yield = Obs.Event.kind_to_int Obs.Event.Yield
let k_preempt = Obs.Event.kind_to_int Obs.Event.Preempt
let k_exit = Obs.Event.kind_to_int Obs.Event.Exit
let k_sleep = Obs.Event.kind_to_int Obs.Event.Sleep
let k_wake = Obs.Event.kind_to_int Obs.Event.Wake
let k_send = Obs.Event.kind_to_int Obs.Event.Send
let k_receive = Obs.Event.kind_to_int Obs.Event.Receive
let k_block_send = Obs.Event.kind_to_int Obs.Event.Block_send
let k_block_receive = Obs.Event.kind_to_int Obs.Event.Block_receive
let k_allocate = Obs.Event.kind_to_int Obs.Event.Allocate
let k_release = Obs.Event.kind_to_int Obs.Event.Release
let k_dispatch = Obs.Event.kind_to_int Obs.Event.Dispatch
let k_finish = Obs.Event.kind_to_int Obs.Event.Finish

let emit_fast t ~name_id ~a ~b kind_code =
  if Obs.Tracer.wants t.obs ~kind_code then
    match t.current with
    | Some p ->
      Obs.Tracer.emit_raw t.obs ~ts_ns:p.Processor.clock_ns
        ~cpu:p.Processor.id ~kind_code ~name_id ~detail_id:0 ~a ~b
    | None ->
      Obs.Tracer.emit_raw t.obs ~ts_ns:(now t) ~cpu:(-1) ~kind_code ~name_id
        ~detail_id:0 ~a ~b

let emit_fast_on t (cpu : Processor.t) ~name_id ~a ~b kind_code =
  if Obs.Tracer.wants t.obs ~kind_code then
    Obs.Tracer.emit_raw t.obs ~ts_ns:cpu.Processor.clock_ns
      ~cpu:cpu.Processor.id ~kind_code ~name_id ~detail_id:0 ~a ~b

(* Charge virtual time for an instruction to the running processor, with bus
   contention applied.  Outside the run loop (boot code) charges are free:
   configuration happens "before the machine starts". *)
let charge t ns =
  match t.current with
  | None -> ()
  | Some p ->
    let eff = Bus.penalize t.bus ns in
    Obs.Metrics.incr ~by:eff t.mon.mon_charged_ns;
    p.Processor.clock_ns <- p.Processor.clock_ns + eff;
    p.Processor.busy_ns <- p.Processor.busy_ns + eff;
    (match p.Processor.current with
    | Some pi ->
      let proc = Process.state_of_index t.table pi in
      proc.Process.cpu_ns <- proc.Process.cpu_ns + eff;
      proc.Process.slice_used_ns <- proc.Process.slice_used_ns + eff;
      (* Injected transient instruction fault: unwinds as the running
         process's own fault, from body context only (like the time-slice
         check below, kernel-side charges must not unwind). *)
      if t.in_body && p.Processor.transient_pending then begin
        p.Processor.transient_pending <- false;
        Fault.raise_fault (Fault.Transient "injected instruction fault")
      end;
      (* Time-slice end (§5): when the slice expires while the body is
         executing, inject an involuntary yield at this instruction
         boundary.  Only from body context — kernel-side charges (dispatch,
         syscall service) must not unwind. *)
      if
        t.in_body
        && proc.Process.slice_used_ns >= t.timings.Timings.time_slice_ns
        && proc.Process.status = Process.Running
      then ignore (Syscall.perform Syscall.Preempt)
    | None -> ())

(* ------------------------------------------------------------------ *)
(* Checked, time-charged instruction wrappers                          *)
(* ------------------------------------------------------------------ *)

let compute t units = charge t (units * t.timings.Timings.compute_unit_ns)

let read_word t access ~offset =
  charge t t.timings.Timings.read_word_ns;
  Segment.read_i32 t.table t.memory access ~offset

let write_word t access ~offset v =
  charge t t.timings.Timings.write_word_ns;
  Segment.write_i32 t.table t.memory access ~offset v

let read_byte t access ~offset =
  charge t t.timings.Timings.read_word_ns;
  Segment.read_u8 t.table t.memory access ~offset

let write_byte t access ~offset v =
  charge t t.timings.Timings.write_word_ns;
  Segment.write_u8 t.table t.memory access ~offset v

let read_bytes t access ~offset ~len =
  charge t (t.timings.Timings.read_word_ns * (1 + (len / 4)));
  Segment.read_bytes t.table t.memory access ~offset ~len

let write_bytes t access ~offset src =
  charge t (t.timings.Timings.write_word_ns * (1 + (Bytes.length src / 4)));
  Segment.write_bytes t.table t.memory access ~offset src

let load_access t access ~slot =
  charge t t.timings.Timings.move_access_ns;
  Segment.load_access t.table access ~slot

let store_access t access ~slot v =
  charge t t.timings.Timings.move_access_ns;
  Segment.store_access t.table access ~slot v

(* The create-object instruction (§5): ~80 us. *)
let allocate t sro ~data_length ~access_length ~otype =
  charge t t.timings.Timings.allocate_ns;
  (* Injected storage exhaustion: only process-context allocations fault
     (boot-time configuration is exempt). *)
  if t.forced_alloc_faults > 0 && t.current <> None then begin
    t.forced_alloc_faults <- t.forced_alloc_faults - 1;
    Fault.raise_fault
      (Fault.Storage_exhausted { requested = data_length; available = 0 })
  end;
  let access = Sro.allocate t.table sro ~data_length ~access_length ~otype in
  Obs.Metrics.incr t.mon.mon_allocates;
  Obs.Metrics.observe t.mon.mon_alloc_size (float_of_int data_length);
  emit_fast t ~name_id:0 ~a:(Access.index access) ~b:data_length k_allocate;
  access

let allocate_generic t ?(data_length = 64) ?(access_length = 4) () =
  allocate t t.global_sro ~data_length ~access_length ~otype:Obj_type.Generic

let release t sro ~index =
  charge t t.timings.Timings.destroy_ns;
  Sro.release_by_access t.table sro ~index;
  Obs.Metrics.incr t.mon.mon_releases;
  emit_fast t ~name_id:0 ~a:index ~b:0 k_release

(* Local heaps (§5): an SRO created at the process's current call depth.
   Carved from the global heap's free store. *)
let create_local_sro t ~level ~bytes =
  charge t t.timings.Timings.allocate_ns;
  (* The new heap's store is carved whole from the global heap's free
     regions (it is address space, not a segment, so the 64K segment limit
     does not apply). *)
  let s = Sro.state_of t.table t.global_sro in
  match Sro.carve t.table ~sro_state:s ~size:bytes with
  | Some base ->
    let sro = Sro.create t.table ~level ~base ~length:bytes in
    Obs.Metrics.incr t.mon.mon_sro_creates;
    emit t ~a:(Access.index sro) ~b:bytes Obs.Event.Sro_create;
    sro
  | None ->
    Fault.raise_fault
      (Fault.Storage_exhausted
         { requested = bytes; available = Sro.free_bytes t.table t.global_sro })

let destroy_sro t sro =
  charge t t.timings.Timings.destroy_ns;
  let index = Access.index sro in
  let reclaimed = Sro.destroy t.table sro in
  Obs.Metrics.incr t.mon.mon_sro_destroys;
  emit t ~a:index ~b:reclaimed Obs.Event.Sro_destroy;
  reclaimed

(* Domain transitions (§2): ~65 us per switch at 8 MHz.  With [timeout_ns]
   the call is supervised by a virtual-time watchdog: if the callee consumed
   more than the budget, the (completed) call still raises [Fault.Timeout] —
   the caller asked for a bounded operation and did not get one. *)
let domain_call t ?timeout_ns domain f =
  let d = Domain.state_of t.table domain in
  let started_at = now t in
  charge t t.timings.Timings.domain_call_ns;
  d.Domain.calls <- d.Domain.calls + 1;
  d.Domain.depth <- d.Domain.depth + 1;
  if d.Domain.depth > d.Domain.max_depth then d.Domain.max_depth <- d.Domain.depth;
  Obs.Metrics.incr t.mon.mon_domain_calls;
  emit t ~detail:d.Domain.domain_name ~a:d.Domain.self Obs.Event.Domain_call;
  let finish () =
    d.Domain.depth <- d.Domain.depth - 1;
    d.Domain.returns <- d.Domain.returns + 1;
    emit t ~detail:d.Domain.domain_name ~a:d.Domain.self Obs.Event.Domain_return;
    charge t t.timings.Timings.domain_return_ns
  in
  match f () with
  | v -> (
    finish ();
    match timeout_ns with
    | Some limit when now t - started_at > limit ->
      Fault.raise_fault (Fault.Timeout { waited_ns = now t - started_at })
    | Some _ | None -> v)
  | exception e ->
    finish ();
    raise e

(* An ordinary activation within the current domain, for comparison. *)
let intra_call t f =
  charge t t.timings.Timings.intra_call_ns;
  let v = f () in
  charge t t.timings.Timings.intra_return_ns;
  v

(* The process currently executing on the charging processor, if any. *)
let running_process t =
  match t.current with
  | Some p -> (
    match p.Processor.current with
    | Some pi -> Some (Process.state_of_index t.table pi)
    | None -> None)
  | None -> None

(* Bounded retry around [allocate]: on [Storage_exhausted], run the
   registered reclaim hook (a GC cycle, when the system wires one), back
   off for [backoff_ns] of virtual time (doubling each attempt), and try
   again.  Re-raises the last fault once the budget is spent. *)
let allocate_retry t sro ?(max_retries = 4) ?(backoff_ns = 100_000)
    ~data_length ~access_length ~otype () =
  let rec go attempt backoff =
    match allocate t sro ~data_length ~access_length ~otype with
    | access -> access
    | exception Fault.Fault (Fault.Storage_exhausted _ as cause) ->
      if attempt > max_retries then Fault.raise_fault cause
      else begin
        Obs.Metrics.incr t.mon.mon_alloc_retries;
        let name =
          match running_process t with
          | Some p -> p.Process.name
          | None -> ""
        in
        emit t ~name ~a:attempt ~b:backoff Obs.Event.Alloc_retry;
        (match t.reclaim_hook with
        | Some reclaim -> ignore (reclaim ())
        | None -> ());
        charge t backoff;
        go (attempt + 1) (backoff * 2)
      end
  in
  go 1 backoff_ns

(* Call [f] inside a fresh activation record (paper §2, §5): the context's
   level is one greater than the caller's, so capabilities for objects
   allocated at this depth cannot leak upward.  The context object is
   passed to [f] for its capability locals and destroyed on return. *)
let call_in_context t ?(slots = 8) f =
  match running_process t with
  | None -> Fault.raise_fault (Fault.Protocol "call_in_context outside a process")
  | Some proc ->
    charge t t.timings.Timings.intra_call_ns;
    let depth = proc.Process.call_depth + 1 in
    let caller =
      match proc.Process.contexts with
      | c :: _ -> Some (Access.index c)
      | [] -> None
    in
    let ctx = Context.create t.table t.global_sro ~depth ~caller ~slots in
    proc.Process.call_depth <- depth;
    proc.Process.contexts <- ctx :: proc.Process.contexts;
    let finish () =
      proc.Process.call_depth <- depth - 1;
      (match proc.Process.contexts with
      | _ :: rest -> proc.Process.contexts <- rest
      | [] -> ());
      Context.destroy t.table ctx;
      charge t t.timings.Timings.intra_return_ns
    in
    (match f ctx with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

(* Current activation record of the running process. *)
let current_context t =
  match running_process t with
  | Some proc -> (
    match proc.Process.contexts with c :: _ -> Some c | [] -> None)
  | None -> None

(* Route faulted processes to a supervisor port (§5). *)
let set_fault_port t port =
  Segment.check_type t.table port Obj_type.Port;
  t.fault_port <- Some (Access.index port)

(* ------------------------------------------------------------------ *)
(* Ports                                                               *)
(* ------------------------------------------------------------------ *)

let create_port t ?(sro = None) ~capacity ~discipline () =
  if capacity < 1 then invalid_arg "Machine.create_port: capacity";
  let sro = match sro with Some s -> s | None -> t.global_sro in
  let access =
    allocate t sro ~data_length:0 ~access_length:capacity ~otype:Obj_type.Port
  in
  let e = Object_table.entry_of_access t.table access in
  e.Object_table.payload <-
    Some
      (Port.Port_state
         (Port.make ~self:e.Object_table.index ~capacity ~discipline));
  access

let port_stats t access =
  let p = Port.state_of t.table access in
  ( p.Port.sends,
    p.Port.receives,
    p.Port.send_blocks,
    p.Port.receive_blocks,
    p.Port.max_depth,
    Port.mean_queue_wait_ns p )

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)
(* ------------------------------------------------------------------ *)

let make_ready t (proc : Process.t) =
  proc.Process.status <- Process.Ready;
  proc.Process.last_ready_ns <- now t;
  Dispatch.enqueue t.dispatch ~process:proc.Process.index
    ~priority:proc.Process.priority;
  Obs.Metrics.incr t.mon.mon_enqueues;
  Obs.Metrics.set t.mon.mon_ready_len (Dispatch.length t.dispatch);
  emit_fast t ~name_id:proc.Process.trace_name_id ~a:proc.Process.index ~b:0
    k_ready

(* Notify the scheduler port that [proc] entered or left the dispatching mix
   (§6.1).  Non-blocking: notifications overflowing the port are dropped. *)
let notify_scheduler t (proc : Process.t) =
  match proc.Process.scheduler_port with
  | None -> ()
  | Some port_index ->
    let p = Port.state_of_index t.table port_index in
    if not (Port.is_full p) then begin
      let msg = Access.make ~index:proc.Process.index ~rights:Rights.read_only in
      Port.enqueue p ~msg ~priority:proc.Process.priority ~now:(now t);
      p.Port.sends <- p.Port.sends + 1
    end

let spawn t ?(priority = 8) ?(daemon = false) ?(system_level = 4)
    ?(name = "process") ?sro ?start_after body =
  let sro = match sro with Some s -> s | None -> t.global_sro in
  let access =
    Sro.allocate t.table sro ~data_length:0 ~access_length:8
      ~otype:Obj_type.Process
  in
  let e = Object_table.entry_of_access t.table access in
  let proc =
    {
      Process.index = e.Object_table.index;
      name;
      daemon;
      code = Process.Not_started body;
      status = Process.Created;
      stopped = false;
      priority;
      pending = Syscall.R_unit;
      wake_at = 0;
      timeout_at = None;
      cpu_ns = 0;
      slice_used_ns = 0;
      last_ready_ns = 0;
      trace_name_id = 0;
      system_level;
      affinity = None;
      scheduler_port = None;
      local_roots = [];
      call_depth = 0;
      contexts = [];
      dispatches = 0;
      preemptions = 0;
      blocks = 0;
      messages_sent = 0;
      messages_received = 0;
    }
  in
  proc.Process.trace_name_id <- Obs.Tracer.string_id t.obs name;
  e.Object_table.payload <- Some (Process.Process_state proc);
  t.processes <- proc :: t.processes;
  if not daemon then t.live_user_processes <- t.live_user_processes + 1;
  Obs.Metrics.incr t.mon.mon_spawns;
  emit t ~name ~a:proc.Process.index Obs.Event.Spawn;
  (match start_after with
  | None -> make_ready t proc
  | Some ns ->
    (* Delayed start (used by supervision backoff): park the fresh process
       as a sleeper; the run loop readies it when the delay elapses. *)
    if ns < 0 then invalid_arg "Machine.spawn: start_after";
    proc.Process.status <- Process.Sleeping;
    proc.Process.wake_at <- now t + ns);
  access

let process_state t access = Process.state_of t.table access

(* Kernel half of stop/start (§6.1): flip the in-mix bit.  iMAX's basic
   process manager keeps the nested counts and calls these on 0<->1
   transitions only. *)
let set_stopped t access stopped =
  let proc = Process.state_of t.table access in
  if proc.Process.stopped <> stopped then begin
    proc.Process.stopped <- stopped;
    if stopped then begin
      (match proc.Process.status with
      | Process.Ready -> Dispatch.remove t.dispatch ~process:proc.Process.index
      | Process.Created | Process.Running | Process.Blocked_send _
      | Process.Blocked_receive _ | Process.Sleeping | Process.Finished
      | Process.Faulted _ -> ());
      emit t ~name:proc.Process.name ~a:proc.Process.index Obs.Event.Stop
    end
    else begin
      (match proc.Process.status with
      | Process.Ready ->
        Dispatch.enqueue t.dispatch ~process:proc.Process.index
          ~priority:proc.Process.priority
      | Process.Created | Process.Running | Process.Blocked_send _
      | Process.Blocked_receive _ | Process.Sleeping | Process.Finished
      | Process.Faulted _ -> ());
      emit t ~name:proc.Process.name ~a:proc.Process.index Obs.Event.Start
    end;
    notify_scheduler t proc
  end

let set_priority t access priority =
  let proc = Process.state_of t.table access in
  proc.Process.priority <- priority;
  (* Re-sort the ready queue if the process is waiting in it. *)
  if Dispatch.mem t.dispatch ~process:proc.Process.index then begin
    Dispatch.remove t.dispatch ~process:proc.Process.index;
    Dispatch.enqueue t.dispatch ~process:proc.Process.index ~priority
  end

let set_scheduler_port t access port =
  let proc = Process.state_of t.table access in
  proc.Process.scheduler_port <- Some (Access.index port)

(* Bind the process to one processor (None lifts the binding).  The 432
   realized processor partitioning with multiple dispatching ports; this is
   the per-process equivalent in this model. *)
let set_affinity t access affinity =
  (match affinity with
  | Some id when id < 0 || id >= Array.length t.processors ->
    invalid_arg "Machine.set_affinity: no such processor"
  | Some _ | None -> ());
  let proc = Process.state_of t.table access in
  proc.Process.affinity <- affinity

(* GC root registration: explicit roots plus per-process shadow stacks. *)

let add_root t access = t.gc_roots <- access :: t.gc_roots

let remove_root t access =
  t.gc_roots <- List.filter (fun a -> not (Access.equal a access)) t.gc_roots

let roots t = t.gc_roots
let all_processes t = t.processes

(* ------------------------------------------------------------------ *)
(* Syscalls performed by process bodies                                *)
(* ------------------------------------------------------------------ *)

let send (_ : t) ~port ~msg =
  match Syscall.perform (Syscall.Send { port; msg }) with
  | Syscall.R_unit -> ()
  | Syscall.R_msg _ | Syscall.R_accepted _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let receive (_ : t) ~port =
  match Syscall.perform (Syscall.Receive { port }) with
  | Syscall.R_msg m -> m
  | Syscall.R_unit | Syscall.R_accepted _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let cond_send (_ : t) ~port ~msg =
  match Syscall.perform (Syscall.Cond_send { port; msg }) with
  | Syscall.R_accepted b -> b
  | Syscall.R_unit | Syscall.R_msg _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let cond_receive (_ : t) ~port =
  match Syscall.perform (Syscall.Cond_receive { port }) with
  | Syscall.R_msg_option m -> m
  | Syscall.R_unit | Syscall.R_msg _ | Syscall.R_accepted _
  | Syscall.R_txn _ ->
    assert false

let send_timeout (_ : t) ~port ~msg ~timeout_ns =
  match Syscall.perform (Syscall.Timed_send { port; msg; timeout_ns }) with
  | Syscall.R_accepted b -> b
  | Syscall.R_unit | Syscall.R_msg _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let receive_timeout (_ : t) ~port ~timeout_ns =
  match Syscall.perform (Syscall.Timed_receive { port; timeout_ns }) with
  | Syscall.R_msg_option m -> m
  | Syscall.R_unit | Syscall.R_msg _ | Syscall.R_accepted _
  | Syscall.R_txn _ ->
    assert false

let delay (_ : t) ~ns =
  match Syscall.perform (Syscall.Delay ns) with
  | Syscall.R_unit -> ()
  | Syscall.R_msg _ | Syscall.R_accepted _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let yield (_ : t) =
  match Syscall.perform Syscall.Yield with
  | Syscall.R_unit -> ()
  | Syscall.R_msg _ | Syscall.R_accepted _ | Syscall.R_msg_option _
  | Syscall.R_txn _ ->
    assert false

let exit_process (_ : t) =
  ignore (Syscall.perform Syscall.Exit);
  assert false

(* One atomic attempt at a multi-port transaction group; never blocks.
   Retry/abort policy lives above the kernel (I432_txn.Txn). *)
let txn_try (_ : t) ~key ?(receives = []) ?(sends = []) ?(writes = []) () =
  match
    Syscall.perform
      (Syscall.Txn_try
         { t_key = key; t_receives = receives; t_sends = sends; t_writes = writes })
  with
  | Syscall.R_txn r -> r
  | Syscall.R_unit | Syscall.R_msg _ | Syscall.R_accepted _
  | Syscall.R_msg_option _ ->
    assert false

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let proc_of t index = Process.state_of_index t.table index

(* Eligibility for dispatch onto [cpu]: in the mix, ready, and (when the
   process carries a processor affinity) bound to this processor.  The 432
   realized such partitioning with multiple dispatching ports; a per-process
   binding is the equivalent observable behaviour in this model. *)
let eligible_for_dispatch t ~cpu index =
  let proc = proc_of t index in
  (not proc.Process.stopped)
  && proc.Process.status = Process.Ready
  &&
  match proc.Process.affinity with
  | None -> true
  | Some id -> id = cpu.Processor.id

(* Deliver a message to a process blocked on receive, making it ready.
   A receiver parked by a timed receive gets the option-shaped result its
   wrapper expects; its deadline is disarmed. *)
let unblock_receiver t (proc : Process.t) msg =
  (match proc.Process.timeout_at with
  | Some _ ->
    proc.Process.timeout_at <- None;
    t.timed_waiters <- t.timed_waiters - 1;
    proc.Process.pending <- Syscall.R_msg_option (Some msg)
  | None -> proc.Process.pending <- Syscall.R_msg msg);
  proc.Process.messages_received <- proc.Process.messages_received + 1;
  Object_table.shade t.table (Access.index msg);
  if proc.Process.stopped then proc.Process.status <- Process.Ready
  else make_ready t proc

(* A blocked sender's message has been accepted; make the sender ready. *)
let unblock_sender t (proc : Process.t) =
  (match proc.Process.timeout_at with
  | Some _ ->
    proc.Process.timeout_at <- None;
    t.timed_waiters <- t.timed_waiters - 1;
    proc.Process.pending <- Syscall.R_accepted true
  | None -> proc.Process.pending <- Syscall.R_unit);
  if proc.Process.stopped then proc.Process.status <- Process.Ready
  else make_ready t proc

(* Injected port-delivery delay: charged once, at the next port syscall.
   One int compare when no injection is armed. *)
let consume_port_delay t =
  if t.pending_port_delay_ns > 0 then begin
    let d = t.pending_port_delay_ns in
    t.pending_port_delay_ns <- 0;
    charge t d
  end

(* ------------------------------------------------------------------ *)
(* Interconnect hooks (lib/net)                                        *)
(* ------------------------------------------------------------------ *)

(* These three entry points are the whole kernel surface the virtual
   interconnect needs: a node's NIC pump runs *between* run-loop slices
   (t.current = None), draining surrogate ports into frames and landing
   reconstructed messages in home ports.  Nothing here is reachable from a
   machine without a cluster around it, so runs without one are untouched. *)

(* Deliver [msg] into [port] from outside the run loop, waking a blocked
   receiver exactly as a local send would.  [false] when the queue is full
   (the NIC keeps the frame in its backlog and retries at the next pump). *)
let deliver_external t ?(txn = 0) ~port ~msg ~priority () =
  let p = Port.state_of t.table port in
  if Port.is_full p then false
  else begin
    Object_table.shade t.table (Access.index msg);
    Port.enqueue p ~txn ~msg ~priority ~now:(now t);
    p.Port.sends <- p.Port.sends + 1;
    Obs.Metrics.incr t.mon.mon_sends;
    (match Port.pop_receiver p with
    | Some r -> (
      match Port.dequeue p ~now:(now t) with
      | Some m ->
        p.Port.receives <- p.Port.receives + 1;
        Obs.Metrics.incr t.mon.mon_receives;
        unblock_receiver t (proc_of t r) m
      | None -> ())
    | None -> ());
    true
  end

(* Withdraw up to [max] queued messages from [port] in service order — the
   NIC acting as the port's receiver.  Blocked senders are admitted (and
   readied) as space opens, exactly as a local receive would admit them.
   Returns [(msg, priority, enqueued_at, txn)] per message; [txn] is the
   committing transaction's idempotency key (0 = not transactional), which
   the interconnect carries across the wire for cluster-level dedup. *)
let drain_port t ?(max = max_int) ~port () =
  let p = Port.state_of t.table port in
  let acc = ref [] in
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ && !count < max do
    match Port.dequeue_entry p ~now:(now t) with
    | Some qm ->
      incr count;
      p.Port.receives <- p.Port.receives + 1;
      Obs.Metrics.incr t.mon.mon_receives;
      (match Port.pop_sender p with
      | Some ws ->
        Port.enqueue p ~msg:ws.Port.sender_msg ~priority:ws.Port.sender_priority
          ~now:(now t);
        unblock_sender t (proc_of t ws.Port.sender)
      | None -> ());
      acc :=
        (qm.Port.msg, qm.Port.msg_priority, qm.Port.enqueued_at, qm.Port.txn)
        :: !acc
    | None -> (
      (* Rendezvous with a sender parked at a full (or zero-space) queue. *)
      match Port.pop_sender p with
      | Some ws ->
        incr count;
        p.Port.receives <- p.Port.receives + 1;
        Obs.Metrics.incr t.mon.mon_receives;
        unblock_sender t (proc_of t ws.Port.sender);
        acc := (ws.Port.sender_msg, ws.Port.sender_priority, now t, 0) :: !acc
      | None -> continue_ := false)
  done;
  List.rev !acc

(* Advance every *idle* processor's clock to [to_ns] (as idle time), so a
   message delivered with a frame-arrival stamp cannot be consumed in its
   own past.  Busy processors keep their own pace — the interconnect never
   rewrites time a processor has already spent. *)
let advance_idle_clocks t ~to_ns =
  Array.iter
    (fun (p : Processor.t) ->
      if
        p.Processor.online && p.Processor.current = None
        && p.Processor.clock_ns < to_ns
      then begin
        p.Processor.idle_ns <- p.Processor.idle_ns + (to_ns - p.Processor.clock_ns);
        p.Processor.clock_ns <- to_ns
      end)
    t.processors

(* Implement one syscall for the process running on [cpu].  Returns [true]
   when the process remains current (result delivered at next step), [false]
   when it was descheduled. *)
let handle_syscall t (cpu : Processor.t) (proc : Process.t) op =
  let tm = t.timings in
  match op with
  | Syscall.Yield ->
    charge t tm.Timings.dispatch_ns;
    emit_fast t ~name_id:proc.Process.trace_name_id ~a:0 ~b:0 k_yield;
    proc.Process.pending <- Syscall.R_unit;
    cpu.Processor.current <- None;
    if proc.Process.stopped then proc.Process.status <- Process.Ready
    else make_ready t proc;
    false
  | Syscall.Preempt ->
    charge t tm.Timings.dispatch_ns;
    proc.Process.pending <- Syscall.R_unit;
    proc.Process.slice_used_ns <- 0;
    proc.Process.preemptions <- proc.Process.preemptions + 1;
    t.preemptions <- t.preemptions + 1;
    Obs.Metrics.incr t.mon.mon_preemptions;
    emit_fast t ~name_id:proc.Process.trace_name_id ~a:0 ~b:0 k_preempt;
    cpu.Processor.current <- None;
    if proc.Process.stopped then proc.Process.status <- Process.Ready
    else make_ready t proc;
    false
  | Syscall.Exit ->
    proc.Process.status <- Process.Finished;
    proc.Process.code <- Process.Terminated;
    emit_fast t ~name_id:proc.Process.trace_name_id ~a:0 ~b:0 k_exit;
    cpu.Processor.current <- None;
    if not proc.Process.daemon then
      t.live_user_processes <- t.live_user_processes - 1;
    false
  | Syscall.Delay ns ->
    if ns < 0 then invalid_arg "delay: negative";
    emit_fast t ~name_id:proc.Process.trace_name_id ~a:ns ~b:0 k_sleep;
    proc.Process.pending <- Syscall.R_unit;
    proc.Process.status <- Process.Sleeping;
    proc.Process.wake_at <- cpu.Processor.clock_ns + ns;
    cpu.Processor.current <- None;
    false
  | Syscall.Send { port; msg } ->
    Port.check_send_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.send_ns;
    consume_port_delay t;
    p.Port.sends <- p.Port.sends + 1;
    proc.Process.messages_sent <- proc.Process.messages_sent + 1;
    Obs.Metrics.incr t.mon.mon_sends;
    emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
      ~b:(Access.index msg) k_send;
    (match Port.pop_receiver p with
    | Some r ->
      (* Hand the message straight to the waiting receiver. *)
      p.Port.receives <- p.Port.receives + 1;
      let rproc = proc_of t r in
      Obs.Metrics.incr t.mon.mon_receives;
      emit_fast t ~name_id:rproc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      unblock_receiver t rproc msg;
      proc.Process.pending <- Syscall.R_unit;
      true
    | None ->
      if not (Port.is_full p) then begin
        Object_table.shade t.table (Access.index msg);
        Port.enqueue p ~msg ~priority:proc.Process.priority
          ~now:cpu.Processor.clock_ns;
        proc.Process.pending <- Syscall.R_unit;
        true
      end
      else begin
        (* Queue full: block the sender at the port (§4). *)
        charge t tm.Timings.block_ns;
        p.Port.send_blocks <- p.Port.send_blocks + 1;
        proc.Process.blocks <- proc.Process.blocks + 1;
        Obs.Metrics.incr t.mon.mon_send_blocks;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self ~b:0
          k_block_send;
        Object_table.shade t.table (Access.index msg);
        Port.push_sender p ~sender:proc.Process.index ~msg
          ~priority:proc.Process.priority;
        proc.Process.status <- Process.Blocked_send p.Port.self;
        cpu.Processor.current <- None;
        false
      end)
  | Syscall.Receive { port } ->
    Port.check_receive_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.receive_ns;
    consume_port_delay t;
    (match Port.dequeue p ~now:cpu.Processor.clock_ns with
    | Some msg ->
      p.Port.receives <- p.Port.receives + 1;
      proc.Process.messages_received <- proc.Process.messages_received + 1;
      Obs.Metrics.incr t.mon.mon_receives;
      Obs.Metrics.observe t.mon.mon_port_wait
        (float_of_int p.Port.last_wait_ns);
      emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      (* Space opened: admit one blocked sender's message. *)
      (match Port.pop_sender p with
      | Some ws ->
        Port.enqueue p ~msg:ws.Port.sender_msg ~priority:ws.Port.sender_priority
          ~now:cpu.Processor.clock_ns;
        unblock_sender t (proc_of t ws.Port.sender)
      | None -> ());
      proc.Process.pending <- Syscall.R_msg msg;
      true
    | None ->
      (match Port.pop_sender p with
      | Some ws ->
        (* Rendezvous with a sender blocked on a zero-space queue. *)
        p.Port.receives <- p.Port.receives + 1;
        proc.Process.messages_received <- proc.Process.messages_received + 1;
        Obs.Metrics.incr t.mon.mon_receives;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
          ~b:(Access.index ws.Port.sender_msg) k_receive;
        unblock_sender t (proc_of t ws.Port.sender);
        proc.Process.pending <- Syscall.R_msg ws.Port.sender_msg;
        true
      | None ->
        charge t tm.Timings.block_ns;
        p.Port.receive_blocks <- p.Port.receive_blocks + 1;
        proc.Process.blocks <- proc.Process.blocks + 1;
        Obs.Metrics.incr t.mon.mon_receive_blocks;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self ~b:0
          k_block_receive;
        Port.push_receiver p proc.Process.index;
        proc.Process.status <- Process.Blocked_receive p.Port.self;
        cpu.Processor.current <- None;
        false))
  | Syscall.Cond_send { port; msg } ->
    Port.check_send_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.send_ns;
    (match Port.pop_receiver p with
    | Some r ->
      p.Port.sends <- p.Port.sends + 1;
      proc.Process.messages_sent <- proc.Process.messages_sent + 1;
      Obs.Metrics.incr t.mon.mon_sends;
      emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_send;
      let rproc = proc_of t r in
      Obs.Metrics.incr t.mon.mon_receives;
      emit_fast t ~name_id:rproc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      unblock_receiver t rproc msg;
      proc.Process.pending <- Syscall.R_accepted true;
      true
    | None ->
      if not (Port.is_full p) then begin
        p.Port.sends <- p.Port.sends + 1;
        proc.Process.messages_sent <- proc.Process.messages_sent + 1;
        Obs.Metrics.incr t.mon.mon_sends;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
          ~b:(Access.index msg) k_send;
        Object_table.shade t.table (Access.index msg);
        Port.enqueue p ~msg ~priority:proc.Process.priority
          ~now:cpu.Processor.clock_ns;
        proc.Process.pending <- Syscall.R_accepted true;
        true
      end
      else begin
        proc.Process.pending <- Syscall.R_accepted false;
        true
      end)
  | Syscall.Cond_receive { port } ->
    Port.check_receive_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.receive_ns;
    (match Port.dequeue p ~now:cpu.Processor.clock_ns with
    | Some msg ->
      p.Port.receives <- p.Port.receives + 1;
      proc.Process.messages_received <- proc.Process.messages_received + 1;
      Obs.Metrics.incr t.mon.mon_receives;
      Obs.Metrics.observe t.mon.mon_port_wait
        (float_of_int p.Port.last_wait_ns);
      emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      (match Port.pop_sender p with
      | Some ws ->
        Port.enqueue p ~msg:ws.Port.sender_msg ~priority:ws.Port.sender_priority
          ~now:cpu.Processor.clock_ns;
        unblock_sender t (proc_of t ws.Port.sender)
      | None -> ());
      proc.Process.pending <- Syscall.R_msg_option (Some msg);
      true
    | None ->
      (match Port.pop_sender p with
      | Some ws ->
        p.Port.receives <- p.Port.receives + 1;
        Obs.Metrics.incr t.mon.mon_receives;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
          ~b:(Access.index ws.Port.sender_msg) k_receive;
        unblock_sender t (proc_of t ws.Port.sender);
        proc.Process.pending <- Syscall.R_msg_option (Some ws.Port.sender_msg);
        true
      | None ->
        proc.Process.pending <- Syscall.R_msg_option None;
        true))
  | Syscall.Timed_send { port; msg; timeout_ns } ->
    (* Like [Send], but with an armed deadline when the queue is full; a
       zero budget degenerates to [Cond_send]'s immediate answer. *)
    Port.check_send_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.send_ns;
    consume_port_delay t;
    (match Port.pop_receiver p with
    | Some r ->
      p.Port.sends <- p.Port.sends + 1;
      proc.Process.messages_sent <- proc.Process.messages_sent + 1;
      Obs.Metrics.incr t.mon.mon_sends;
      emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_send;
      p.Port.receives <- p.Port.receives + 1;
      let rproc = proc_of t r in
      Obs.Metrics.incr t.mon.mon_receives;
      emit_fast t ~name_id:rproc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      unblock_receiver t rproc msg;
      proc.Process.pending <- Syscall.R_accepted true;
      true
    | None ->
      if not (Port.is_full p) then begin
        p.Port.sends <- p.Port.sends + 1;
        proc.Process.messages_sent <- proc.Process.messages_sent + 1;
        Obs.Metrics.incr t.mon.mon_sends;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
          ~b:(Access.index msg) k_send;
        Object_table.shade t.table (Access.index msg);
        Port.enqueue p ~msg ~priority:proc.Process.priority
          ~now:cpu.Processor.clock_ns;
        proc.Process.pending <- Syscall.R_accepted true;
        true
      end
      else if timeout_ns <= 0 then begin
        proc.Process.pending <- Syscall.R_accepted false;
        true
      end
      else begin
        charge t tm.Timings.block_ns;
        p.Port.send_blocks <- p.Port.send_blocks + 1;
        proc.Process.blocks <- proc.Process.blocks + 1;
        Obs.Metrics.incr t.mon.mon_send_blocks;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self ~b:0
          k_block_send;
        Object_table.shade t.table (Access.index msg);
        Port.push_sender p ~sender:proc.Process.index ~msg
          ~priority:proc.Process.priority;
        proc.Process.status <- Process.Blocked_send p.Port.self;
        proc.Process.timeout_at <- Some (cpu.Processor.clock_ns + timeout_ns);
        t.timed_waiters <- t.timed_waiters + 1;
        cpu.Processor.current <- None;
        false
      end)
  | Syscall.Timed_receive { port; timeout_ns } ->
    (* Like [Receive], but the wait is bounded: at the deadline the process
       resumes with [None] and the port's receiver queue is repaired. *)
    Port.check_receive_right port;
    let p = Port.state_of t.table port in
    charge t tm.Timings.receive_ns;
    consume_port_delay t;
    (match Port.dequeue p ~now:cpu.Processor.clock_ns with
    | Some msg ->
      p.Port.receives <- p.Port.receives + 1;
      proc.Process.messages_received <- proc.Process.messages_received + 1;
      Obs.Metrics.incr t.mon.mon_receives;
      Obs.Metrics.observe t.mon.mon_port_wait
        (float_of_int p.Port.last_wait_ns);
      emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
        ~b:(Access.index msg) k_receive;
      (match Port.pop_sender p with
      | Some ws ->
        Port.enqueue p ~msg:ws.Port.sender_msg ~priority:ws.Port.sender_priority
          ~now:cpu.Processor.clock_ns;
        unblock_sender t (proc_of t ws.Port.sender)
      | None -> ());
      proc.Process.pending <- Syscall.R_msg_option (Some msg);
      true
    | None -> (
      match Port.pop_sender p with
      | Some ws ->
        p.Port.receives <- p.Port.receives + 1;
        proc.Process.messages_received <- proc.Process.messages_received + 1;
        Obs.Metrics.incr t.mon.mon_receives;
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
          ~b:(Access.index ws.Port.sender_msg) k_receive;
        unblock_sender t (proc_of t ws.Port.sender);
        proc.Process.pending <- Syscall.R_msg_option (Some ws.Port.sender_msg);
        true
      | None ->
        if timeout_ns <= 0 then begin
          proc.Process.pending <- Syscall.R_msg_option None;
          true
        end
        else begin
          charge t tm.Timings.block_ns;
          p.Port.receive_blocks <- p.Port.receive_blocks + 1;
          proc.Process.blocks <- proc.Process.blocks + 1;
          Obs.Metrics.incr t.mon.mon_receive_blocks;
          emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self ~b:0
            k_block_receive;
          Port.push_receiver p proc.Process.index;
          proc.Process.status <- Process.Blocked_receive p.Port.self;
          proc.Process.timeout_at <- Some (cpu.Processor.clock_ns + timeout_ns);
          t.timed_waiters <- t.timed_waiters + 1;
          cpu.Processor.current <- None;
          false
        end))
  | Syscall.Txn_try { t_key; t_receives; t_sends; t_writes } ->
    (* One atomic attempt at a multi-port group.  The whole syscall is
       serviced with [in_body = false], so nothing can preempt between
       validation and application: a group that validates commits at one
       virtual-time instant.  Never blocks; a conflict leaves every port
       and segment untouched and reports the first offender in
       deterministic (ascending object-index) order. *)
    let nr = List.length t_receives
    and ns = List.length t_sends
    and nw = List.length t_writes in
    (* Conflicts cost the same virtual time as commits, so a retry loop
       above the kernel consumes time and cannot livelock the clock. *)
    charge t
      ((tm.Timings.receive_ns * nr)
      + (tm.Timings.send_ns * ns)
      + (tm.Timings.write_word_ns * nw));
    consume_port_delay t;
    let recv_ports = List.map (fun a -> Port.state_of t.table a) t_receives in
    let send_ports =
      List.map (fun (a, m) -> (Port.state_of t.table a, m)) t_sends
    in
    List.iter Port.check_receive_right t_receives;
    List.iter (fun (a, _) -> Port.check_send_right a) t_sends;
    if t_key <> 0 && Hashtbl.mem t.txn_applied t_key then begin
      (* The key already committed (a retried group, e.g. after a lost
         completion).  Receives and writes must not re-apply; the sends
         are re-issued best-effort — the reply-cache semantics a retrier
         needs to get its completion (or returned tokens) again. *)
      List.iteri
        (fun i ((p : Port.t), msg) ->
          match Port.pop_receiver p with
          | Some r ->
            p.Port.sends <- p.Port.sends + 1;
            p.Port.receives <- p.Port.receives + 1;
            proc.Process.messages_sent <- proc.Process.messages_sent + 1;
            Obs.Metrics.incr t.mon.mon_sends;
            Obs.Metrics.incr t.mon.mon_receives;
            let rproc = proc_of t r in
            emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
              ~b:(Access.index msg) k_send;
            emit_fast t ~name_id:rproc.Process.trace_name_id ~a:p.Port.self
              ~b:(Access.index msg) k_receive;
            unblock_receiver t rproc msg
          | None ->
            if not (Port.is_full p) then begin
              p.Port.sends <- p.Port.sends + 1;
              proc.Process.messages_sent <- proc.Process.messages_sent + 1;
              Obs.Metrics.incr t.mon.mon_sends;
              emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
                ~b:(Access.index msg) k_send;
              Object_table.shade t.table (Access.index msg);
              Port.enqueue p ~txn:(t_key + i) ~msg
                ~priority:proc.Process.priority ~now:cpu.Processor.clock_ns
            end)
        send_ports;
      Obs.Metrics.incr (Obs.Metrics.counter t.metrics "txn.dup_drops");
      emit t ~name:proc.Process.name ~a:t_key ~b:0 Obs.Event.Txn_dup_drop;
      proc.Process.pending <-
        Syscall.R_txn
          (Syscall.Txn_committed
             { received = []; commit_ns = cpu.Processor.clock_ns; fresh = false });
      true
    end
    else begin
      (* Validation, ascending object-index order.  Per port, a group may
         take at most the queued messages ([receives_from] — blocked
         senders do not rendezvous with a transaction) and may add at most
         the space its own receives free up, plus direct handoffs to
         blocked receivers. *)
      let module IM = Map.Make (Int) in
      let bump m idx = IM.update idx (fun n -> Some (Option.value n ~default:0 + 1)) m in
      let recvs_by_port =
        List.fold_left (fun m (p : Port.t) -> bump m p.Port.self) IM.empty recv_ports
      in
      let sends_by_port =
        List.fold_left
          (fun m ((p : Port.t), _) -> bump m p.Port.self)
          IM.empty send_ports
      in
      let port_by_index =
        List.fold_left
          (fun m ((p : Port.t), _) -> IM.add p.Port.self p m)
          (List.fold_left
             (fun m (p : Port.t) -> IM.add p.Port.self p m)
             IM.empty recv_ports)
          send_ports
      in
      let conflict = ref None in
      IM.iter
        (fun idx (p : Port.t) ->
          if !conflict = None then begin
            let wants = Option.value (IM.find_opt idx recvs_by_port) ~default:0 in
            let puts = Option.value (IM.find_opt idx sends_by_port) ~default:0 in
            let queued = Port.queue_length p in
            if wants > queued then conflict := Some (idx, "empty")
            else if
              puts
              > p.Port.capacity - queued + wants
                + Queue.length p.Port.receivers
            then conflict := Some (idx, "full")
          end)
        port_by_index;
      (* Write targets validate after the ports; apply cannot fault. *)
      List.iter
        (fun (a, offset, _) ->
          if !conflict = None then begin
            let e = Object_table.entry_of_access t.table a in
            if not (Rights.has_write (Access.rights a)) then
              conflict := Some (e.Object_table.index, "rights")
            else if e.Object_table.swapped_out then
              conflict := Some (e.Object_table.index, "swapped")
            else if offset < 0 || offset + 4 > e.Object_table.data_length then
              conflict := Some (e.Object_table.index, "bounds")
          end)
        t_writes;
      match !conflict with
      | Some (port, reason) ->
        Obs.Metrics.incr (Obs.Metrics.counter t.metrics "txn.conflicts");
        proc.Process.pending <-
          Syscall.R_txn (Syscall.Txn_conflict { port; reason });
        true
      | None ->
        (* Apply: receives, then writes, then sends, all at this instant.
           Blocked senders are admitted only after the group's own sends
           have claimed their space. *)
        let received =
          List.map
            (fun (p : Port.t) ->
              match Port.dequeue p ~now:cpu.Processor.clock_ns with
              | Some msg ->
                p.Port.receives <- p.Port.receives + 1;
                proc.Process.messages_received <-
                  proc.Process.messages_received + 1;
                Obs.Metrics.incr t.mon.mon_receives;
                Obs.Metrics.observe t.mon.mon_port_wait
                  (float_of_int p.Port.last_wait_ns);
                emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
                  ~b:(Access.index msg) k_receive;
                msg
              | None -> assert false (* validated: queued >= wants *))
            recv_ports
        in
        List.iter
          (fun (a, offset, v) -> Segment.write_i32 t.table t.memory a ~offset v)
          t_writes;
        (* The i-th send of group [k] is tagged [k + i]: each logical
           send gets its own idempotency tag, so cluster-level dedup can
           drop a re-issued copy without confusing two sends of the same
           group bound for one node.  Key allocation (I432_txn.Txn)
           strides keys far enough apart for the offsets. *)
        List.iteri
          (fun i ((p : Port.t), msg) ->
            p.Port.sends <- p.Port.sends + 1;
            proc.Process.messages_sent <- proc.Process.messages_sent + 1;
            Obs.Metrics.incr t.mon.mon_sends;
            emit_fast t ~name_id:proc.Process.trace_name_id ~a:p.Port.self
              ~b:(Access.index msg) k_send;
            match Port.pop_receiver p with
            | Some r ->
              p.Port.receives <- p.Port.receives + 1;
              let rproc = proc_of t r in
              Obs.Metrics.incr t.mon.mon_receives;
              emit_fast t ~name_id:rproc.Process.trace_name_id ~a:p.Port.self
                ~b:(Access.index msg) k_receive;
              unblock_receiver t rproc msg
            | None ->
              Object_table.shade t.table (Access.index msg);
              Port.enqueue p
                ~txn:(if t_key = 0 then 0 else t_key + i)
                ~msg ~priority:proc.Process.priority ~now:cpu.Processor.clock_ns)
          send_ports;
        (* Space the receives freed (net of the group's sends) admits
           blocked senders, in ascending port order. *)
        IM.iter
          (fun _ (p : Port.t) ->
            let continue_ = ref true in
            while !continue_ && not (Port.is_full p) do
              match Port.pop_sender p with
              | Some ws ->
                Port.enqueue p ~msg:ws.Port.sender_msg
                  ~priority:ws.Port.sender_priority ~now:cpu.Processor.clock_ns;
                unblock_sender t (proc_of t ws.Port.sender)
              | None -> continue_ := false
            done)
          port_by_index;
        if t_key <> 0 then Hashtbl.replace t.txn_applied t_key ();
        Obs.Metrics.incr (Obs.Metrics.counter t.metrics "txn.commits");
        emit t ~name:proc.Process.name ~a:t_key ~b:(nr + ns + nw)
          Obs.Event.Txn_commit;
        proc.Process.pending <-
          Syscall.R_txn
            (Syscall.Txn_committed
               {
                 received;
                 commit_ns = cpu.Processor.clock_ns;
                 fresh = true;
               });
        true
    end

(* Record a fault in a user process; faults below system level 3 are fatal
   to the whole machine (§7.3: such processes "are in general not permitted
   to fault").  When a fault port is configured, the process object is sent
   there so a supervisor can inspect the corpse — the hardware "sending
   them back to software when various fault ... conditions arise" (§5). *)
let record_fault t (proc : Process.t) cause =
  t.faults <- (proc.Process.name, cause) :: t.faults;
  Obs.Metrics.incr t.mon.mon_faults;
  emit t ~name:proc.Process.name ~detail:(Fault.to_string cause)
    Obs.Event.Fault;
  proc.Process.status <- Process.Faulted cause;
  proc.Process.code <- Process.Terminated;
  if not proc.Process.daemon then
    t.live_user_processes <- t.live_user_processes - 1;
  if proc.Process.system_level < 3 then
    raise
      (Kernel_panic
         (Printf.sprintf "process %s at system level %d faulted: %s"
            proc.Process.name proc.Process.system_level
            (Fault.to_string cause)));
  (match t.fault_port with
  | None -> ()
  | Some port_index -> (
    match Port.state_of_index t.table port_index with
    | p when not (Port.is_full p) ->
      let corpse =
        Access.make ~index:proc.Process.index ~rights:Rights.read_only
      in
      Port.enqueue p ~msg:corpse ~priority:proc.Process.priority ~now:(now t);
      p.Port.sends <- p.Port.sends + 1;
      (match Port.pop_receiver p with
      | Some r ->
        (match Port.dequeue p ~now:(now t) with
        | Some msg ->
          p.Port.receives <- p.Port.receives + 1;
          unblock_receiver t (proc_of t r) msg
        | None -> ())
      | None -> ())
    | _ -> ()
    | exception Fault.Fault _ -> ()));
  (* Supervision hook (process manager restart policies): runs after the
     corpse is routed, and only for faults the machine survives. *)
  match t.fault_hook with None -> () | Some hook -> hook proc cause

(* Execute one step of the process current on [cpu]. *)
let step_process t (cpu : Processor.t) =
  match cpu.Processor.current with
  | None -> ()
  | Some index ->
    let proc = proc_of t index in
    t.current <- Some cpu;
    t.in_body <- true;
    let outcome = Process.step proc in
    t.in_body <- false;
    t.current <- None;
    (match outcome with
    | Process.Completed ->
      proc.Process.status <- Process.Finished;
      cpu.Processor.current <- None;
      if not proc.Process.daemon then
        t.live_user_processes <- t.live_user_processes - 1;
      emit_fast_on t cpu ~name_id:proc.Process.trace_name_id ~a:0 ~b:0 k_finish
    | Process.Raised (Fault.Fault cause) ->
      cpu.Processor.current <- None;
      record_fault t proc cause
    | Process.Raised e ->
      cpu.Processor.current <- None;
      record_fault t proc (Fault.Protocol (Printexc.to_string e))
    | Process.Pending (op, k) -> (
      proc.Process.code <- Process.Suspended k;
      t.current <- Some cpu;
      (* Faults detected while servicing the syscall (rights, types) are
         the faulting process's own. *)
      match handle_syscall t cpu proc op with
      | still_current ->
        t.current <- None;
        if still_current then ()
        else
          emit_on t cpu ~name:proc.Process.name
            ~detail:(Syscall.op_to_string op) Obs.Event.Deschedule
      | exception Fault.Fault cause ->
        t.current <- None;
        cpu.Processor.current <- None;
        record_fault t proc cause))

(* ------------------------------------------------------------------ *)
(* Processor failure and injection plans                               *)
(* ------------------------------------------------------------------ *)

(* Hard-fault one GDP (paper §6: iMAX "adapts at system initialization to
   the number of processors"; here the set also shrinks at run time).  The
   processor goes offline forever; the process it was running — suspended
   at an instruction boundary with its pending result intact — re-enters
   the dispatching mix, and any processor bindings to the dead GDP are
   lifted: a binding dies with its processor.  The system degrades to N−1
   processors instead of panicking. *)
let fail_processor t id =
  if id < 0 || id >= Array.length t.processors then
    invalid_arg "Machine.fail_processor: no such processor";
  let cpu = t.processors.(id) in
  if cpu.Processor.online then begin
    cpu.Processor.online <- false;
    Obs.Metrics.incr t.mon.mon_cpu_offline;
    emit_on t cpu ~a:id Obs.Event.Cpu_offline;
    (match cpu.Processor.current with
    | Some pi ->
      cpu.Processor.current <- None;
      let proc = proc_of t pi in
      proc.Process.slice_used_ns <- 0;
      proc.Process.affinity <- None;
      Obs.Metrics.incr t.mon.mon_requeues;
      emit_on t cpu ~name:proc.Process.name ~a:pi ~b:id
        Obs.Event.Proc_requeued;
      if proc.Process.stopped then proc.Process.status <- Process.Ready
      else make_ready t proc
    | None -> ());
    List.iter
      (fun (proc : Process.t) ->
        match proc.Process.affinity with
        | Some a when a = id -> proc.Process.affinity <- None
        | Some _ | None -> ())
      t.processes
  end

let schedule_injection t ~at_ns inj =
  if at_ns < 0 then invalid_arg "Machine.schedule_injection: at_ns";
  let seq = t.inj_seq in
  t.inj_seq <- seq + 1;
  let entry = (at_ns, seq, inj) in
  (* Sorted insert by (time, registration order): plans are small and
     armed before the run, so O(n) insertion is irrelevant. *)
  let rec ins = function
    | [] -> [ entry ]
    | ((a, s, _) as hd) :: tl ->
      if at_ns < a || (at_ns = a && seq < s) then entry :: hd :: tl
      else hd :: ins tl
  in
  t.injections <- ins t.injections

let apply_injection t = function
  | Inj_cpu_fault id ->
    if id >= 0 && id < Array.length t.processors then fail_processor t id
  | Inj_transient id ->
    if id >= 0 && id < Array.length t.processors then
      t.processors.(id).Processor.transient_pending <- true
  | Inj_alloc_fault n -> t.forced_alloc_faults <- t.forced_alloc_faults + n
  | Inj_port_delay ns ->
    t.pending_port_delay_ns <- t.pending_port_delay_ns + ns

(* The not-yet-fired part of an armed plan, in firing order.  The
   checkpoint facility folds this (and the armed one-shot counters) into
   the machine's state image so a restored run faces the same remaining
   chaos as the original. *)
let pending_injections t = List.map (fun (at, _, inj) -> (at, inj)) t.injections
let armed_alloc_faults t = t.forced_alloc_faults
let armed_port_delay_ns t = t.pending_port_delay_ns

(* Fire every injection whose instant has been reached by the processor
   the run loop is about to advance.  Events are stamped on that
   processor's clock, in (time, registration) order — deterministic. *)
let fire_injections t (cpu : Processor.t) =
  let rec go () =
    match t.injections with
    | (at, _, inj) :: rest when at <= cpu.Processor.clock_ns ->
      t.injections <- rest;
      t.current <- Some cpu;
      Obs.Metrics.incr t.mon.mon_injections;
      emit t
        ~detail:(injection_to_string inj)
        ~a:(injection_arg inj) Obs.Event.Fi_inject;
      apply_injection t inj;
      t.current <- None;
      go ()
    | _ -> ()
  in
  go ()

(* Fire expired deadlines of timed sends/receives: surgically remove the
   process from the port's blocked queue, deliver the documented
   give-up result, and re-enter the dispatching mix.  Only called when
   [timed_waiters > 0]. *)
let fire_timeouts t ~horizon =
  List.iter
    (fun (proc : Process.t) ->
      match (proc.Process.timeout_at, proc.Process.status) with
      | Some deadline, Process.Blocked_receive pi when deadline <= horizon ->
        let p = Port.state_of_index t.table pi in
        ignore (Port.remove_receiver p ~index:proc.Process.index);
        proc.Process.timeout_at <- None;
        t.timed_waiters <- t.timed_waiters - 1;
        proc.Process.pending <- Syscall.R_msg_option None;
        Obs.Metrics.incr t.mon.mon_timeouts;
        emit t ~name:proc.Process.name ~a:pi ~b:1 Obs.Event.Timeout_fired;
        if proc.Process.stopped then proc.Process.status <- Process.Ready
        else make_ready t proc
      | Some deadline, Process.Blocked_send pi when deadline <= horizon ->
        let p = Port.state_of_index t.table pi in
        (* The parked message is withdrawn with its sender. *)
        ignore (Port.remove_sender p ~index:proc.Process.index);
        proc.Process.timeout_at <- None;
        t.timed_waiters <- t.timed_waiters - 1;
        proc.Process.pending <- Syscall.R_accepted false;
        Obs.Metrics.incr t.mon.mon_timeouts;
        emit t ~name:proc.Process.name ~a:pi ~b:0 Obs.Event.Timeout_fired;
        if proc.Process.stopped then proc.Process.status <- Process.Ready
        else make_ready t proc
      | _ -> ())
    t.processes

(* Wake sleepers whose deadline has passed relative to [horizon]. *)
let wake_sleepers t ~horizon =
  List.iter
    (fun (proc : Process.t) ->
      if proc.Process.status = Process.Sleeping && proc.Process.wake_at <= horizon
      then begin
        emit_fast t ~name_id:proc.Process.trace_name_id ~a:0 ~b:0 k_wake;
        if proc.Process.stopped then proc.Process.status <- Process.Ready
        else make_ready t proc
      end)
    t.processes

(* Earliest future event among sleeping processes and armed deadlines of
   timed waits, if any. *)
let next_wake t =
  List.fold_left
    (fun acc (proc : Process.t) ->
      let candidate =
        match proc.Process.status with
        | Process.Sleeping -> Some proc.Process.wake_at
        | Process.Blocked_send _ | Process.Blocked_receive _ ->
          proc.Process.timeout_at
        | Process.Created | Process.Ready | Process.Running | Process.Finished
        | Process.Faulted _ -> None
      in
      match (candidate, acc) with
      | None, acc -> acc
      | Some w, None -> Some w
      | Some w, Some a -> Some (min w a))
    None t.processes

(* The online processor with the smallest clock (ties by id), or [None]
   when every GDP has hard-faulted. *)
let min_clock_processor t =
  Array.fold_left
    (fun acc p ->
      if not p.Processor.online then acc
      else
        match acc with
        | None -> Some p
        | Some best ->
          if p.Processor.clock_ns < best.Processor.clock_ns then Some p
          else acc)
    None t.processors

(* Is there any process that could still make progress without external
   input?  Daemons alone do not keep the machine running.  A process
   blocked with an armed deadline will resume at the latest when the
   deadline fires, so it still counts. *)
let pending_user_work t =
  List.exists
    (fun (proc : Process.t) ->
      (not proc.Process.daemon)
      &&
      match proc.Process.status with
      | Process.Ready | Process.Running | Process.Sleeping | Process.Created ->
        not proc.Process.stopped || proc.Process.status = Process.Running
      | Process.Blocked_send _ | Process.Blocked_receive _ ->
        proc.Process.timeout_at <> None
      | Process.Finished | Process.Faulted _ -> false)
    t.processes

let runnable_somewhere t =
  Array.exists
    (fun p -> p.Processor.online && p.Processor.current <> None)
    t.processors
  || List.exists
       (fun (proc : Process.t) ->
         proc.Process.status = Process.Ready
         && Array.exists
              (fun cpu ->
                cpu.Processor.online
                && eligible_for_dispatch t ~cpu proc.Process.index)
              t.processors)
       t.processes

let run_loop ?(max_ns = max_int) ?(max_steps = max_int) t =
  t.halted <- false;
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr steps;
    if !steps > max_steps then continue_ := false
    else begin
      match min_clock_processor t with
      | None ->
        (* Every GDP has hard-faulted: nothing can execute. *)
        continue_ := false
      | Some cpu ->
      if cpu.Processor.clock_ns > max_ns then continue_ := false
      else begin
        (* Scheduled injections whose instant this processor has reached
           fire first — one empty-list check when no plan is armed.  The
           injection may take this very processor offline, in which case
           the iteration ends here and the next-smallest clock runs. *)
        if t.injections <> [] then fire_injections t cpu;
        if not cpu.Processor.online then begin
          if not (pending_user_work t) then
            if not (runnable_somewhere t) then continue_ := false
        end
        else begin
        (* Wake (and ready) events are stamped on the waking processor. *)
        t.current <- Some cpu;
        wake_sleepers t ~horizon:cpu.Processor.clock_ns;
        if t.timed_waiters > 0 then
          fire_timeouts t ~horizon:cpu.Processor.clock_ns;
        t.current <- None;
        (match cpu.Processor.current with
        | Some _ -> step_process t cpu
        | None -> (
          match
            Dispatch.pop t.dispatch ~eligible:(eligible_for_dispatch t ~cpu)
          with
          | Some index ->
            let proc = proc_of t index in
            proc.Process.status <- Process.Running;
            proc.Process.slice_used_ns <- 0;
            proc.Process.dispatches <- proc.Process.dispatches + 1;
            cpu.Processor.current <- Some index;
            cpu.Processor.dispatches <- cpu.Processor.dispatches + 1;
            Obs.Metrics.incr t.mon.mon_dispatches;
            Obs.Metrics.observe t.mon.mon_dispatch_latency
              (float_of_int
                 (max 0 (cpu.Processor.clock_ns - proc.Process.last_ready_ns)));
            Obs.Metrics.set t.mon.mon_ready_len (Dispatch.length t.dispatch);
            emit_fast_on t cpu ~name_id:proc.Process.trace_name_id
              ~a:cpu.Processor.id ~b:0 k_dispatch;
            t.current <- Some cpu;
            charge t t.timings.Timings.dispatch_ns;
            t.current <- None
          | None -> (
            (* Idle: advance this processor's clock to the next event
               horizon — another processor's activity or a sleeper's wake
               time.  Clocks of other busy processors may equal ours (we are
               the minimum); stepping just past them lets them run first. *)
            let candidates =
              Array.fold_left
                (fun acc p ->
                  if p.Processor.id <> cpu.Processor.id
                     && p.Processor.current <> None
                  then (p.Processor.clock_ns + 1) :: acc
                  else acc)
                [] t.processors
            in
            let candidates =
              match next_wake t with
              | Some w -> w :: candidates
              | None -> candidates
            in
            (* A ready process bound to another processor is that
               processor's event, not ours: step past it so the owner gets
               the next turn. *)
            let candidates =
              Array.fold_left
                (fun acc cpu2 ->
                  if
                    cpu2.Processor.online
                    && cpu2.Processor.id <> cpu.Processor.id
                    && List.exists
                         (fun (proc : Process.t) ->
                           proc.Process.status = Process.Ready
                           && eligible_for_dispatch t ~cpu:cpu2
                                proc.Process.index)
                         t.processes
                  then (cpu2.Processor.clock_ns + 1) :: acc
                  else acc)
                candidates t.processors
            in
            let future =
              List.filter (fun c -> c > cpu.Processor.clock_ns) candidates
            in
            match future with
            | [] ->
              (* No event can ever reach this processor: the machine is
                 drained (or every remaining process is blocked). *)
              continue_ := false
            | _ :: _ ->
              let target = List.fold_left min max_int future in
              (* Never idle past the caller's horizon: the bound check at
                 the top of the loop must fire at the bound, not at some
                 distant wake time. *)
              let target =
                if max_ns < max_int && target > max_ns then max_ns + 1
                else target
              in
              cpu.Processor.idle_ns <-
                cpu.Processor.idle_ns + (target - cpu.Processor.clock_ns);
              cpu.Processor.clock_ns <- target)));
        (* Halt when no user process can make progress any more. *)
        if not (pending_user_work t) then
          if not (runnable_somewhere t) then continue_ := false
        end
      end
    end
  done;
  t.halted <- true;
  let completed =
    List.length
      (List.filter
         (fun (p : Process.t) -> p.Process.status = Process.Finished)
         t.processes)
  in
  let faulted =
    List.length
      (List.filter
         (fun (p : Process.t) ->
           match p.Process.status with Process.Faulted _ -> true | _ -> false)
         t.processes)
  in
  let deadlocked =
    List.filter_map
      (fun (p : Process.t) ->
        match p.Process.status with
        | Process.Blocked_send _ | Process.Blocked_receive _ ->
          Some p.Process.name
        | _ -> None)
      t.processes
  in
  {
    elapsed_ns = now t;
    completed;
    faulted;
    deadlocked;
    dispatches = Dispatch.dispatches_of t.dispatch;
    preemptions = t.preemptions;
  }

(* Stepping is exclusive: mark the machine (and claim its metrics
   registry) for the calling domain, run, then release.  Two overlapping
   [run] calls from different domains — a broken parallel-engine
   partition — fail loudly here rather than corrupting state. *)
let run ?max_ns ?max_steps t =
  let self = (Stdlib.Domain.self () :> int) in
  (match t.stepper with
  | Some d when d <> self ->
    failwith
      (Printf.sprintf "Machine.run: machine is being stepped by domain %d" d)
  | Some _ | None -> ());
  t.stepper <- Some self;
  Obs.Metrics.claim t.metrics;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.release t.metrics;
      t.stepper <- None)
    (fun () -> run_loop ?max_ns ?max_steps t)

(* Total busy time across processors: the "total processing power" metric of
   the scaling experiment. *)
let total_busy_ns t =
  Array.fold_left (fun acc p -> acc + p.Processor.busy_ns) 0 t.processors

let processor_utilizations t =
  Array.map Processor.utilization t.processors
