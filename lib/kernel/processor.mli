(** Processor objects: each general data processor carries a private
    virtual clock; the run loop always advances the processor with the
    smallest clock, making the multiprocessor interleaving deterministic. *)

open I432

type t = {
  id : int;
  self : int;  (** object-table index of the processor object *)
  mutable clock_ns : int;
  mutable current : int option;  (** running process object index *)
  mutable busy_ns : int;
  mutable idle_ns : int;
  mutable dispatches : int;
  mutable online : bool;
      (** [false] once the GDP has hard-faulted; it never dispatches again *)
  mutable transient_pending : bool;
      (** set by fault injection: the next instruction charged on this
          processor raises a {!I432.Fault.Transient} fault *)
}

type Object_table.payload += Processor_state of t

val make : id:int -> self:int -> t
val is_idle : t -> bool

(** Busy fraction over the life of the run. *)
val utilization : t -> float
