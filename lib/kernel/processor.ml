(* Processor objects.

   Each general data processor has its own virtual clock; the machine's run
   loop always advances the processor with the smallest clock, which makes
   the multiprocessor interleaving deterministic.  Ready processes are bound
   to idle processors by the hardware dispatching algorithm (paper §2). *)

open I432

type t = {
  id : int;
  self : int;  (* object-table index of the processor object *)
  mutable clock_ns : int;
  mutable current : int option;  (* running process object index *)
  mutable busy_ns : int;
  mutable idle_ns : int;
  mutable dispatches : int;
  mutable online : bool;  (* a hard-faulted GDP goes offline forever *)
  mutable transient_pending : bool;  (* next charged instruction faults *)
}

type Object_table.payload += Processor_state of t

let make ~id ~self =
  {
    id;
    self;
    clock_ns = 0;
    current = None;
    busy_ns = 0;
    idle_ns = 0;
    dispatches = 0;
    online = true;
    transient_pending = false;
  }

let is_idle t = t.current = None

(* Utilization over the life of the run. *)
let utilization t =
  let total = t.busy_ns + t.idle_ns in
  if total = 0 then 0.0 else float_of_int t.busy_ns /. float_of_int total
