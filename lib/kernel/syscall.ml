(* The kernel boundary of a simulated process.

   Every potentially blocking 432 instruction is performed as an effect; the
   machine's run loop handles it, charges virtual time, and either resumes
   the process immediately or suspends it (saving the one-shot continuation
   in the process object). *)

open I432

type op =
  | Send of { port : Access.t; msg : Access.t }
      (** blocks while the port's message queue is full *)
  | Receive of { port : Access.t }  (** blocks while no message is available *)
  | Cond_send of { port : Access.t; msg : Access.t }
      (** never blocks; tells whether the message was accepted *)
  | Cond_receive of { port : Access.t }  (** never blocks *)
  | Delay of int  (** sleep for the given virtual nanoseconds *)
  | Yield  (** surrender the processor, stay ready *)
  | Preempt  (** involuntary yield injected at time-slice end *)
  | Exit  (** voluntary termination *)
  | Timed_send of { port : Access.t; msg : Access.t; timeout_ns : int }
      (** like [Send], but gives up after [timeout_ns] of virtual time;
          the result reports whether the message was accepted *)
  | Timed_receive of { port : Access.t; timeout_ns : int }
      (** like [Receive], but returns [None] at the deadline *)

type result =
  | R_unit
  | R_msg of Access.t
  | R_accepted of bool
  | R_msg_option of Access.t option

type _ Effect.t += Syscall : op -> result Effect.t

let perform op = Effect.perform (Syscall op)

let op_to_string = function
  | Send _ -> "send"
  | Receive _ -> "receive"
  | Cond_send _ -> "cond-send"
  | Cond_receive _ -> "cond-receive"
  | Delay ns -> Printf.sprintf "delay(%dns)" ns
  | Yield -> "yield"
  | Preempt -> "preempt"
  | Exit -> "exit"
  | Timed_send { timeout_ns; _ } -> Printf.sprintf "timed-send(%dns)" timeout_ns
  | Timed_receive { timeout_ns; _ } ->
    Printf.sprintf "timed-receive(%dns)" timeout_ns
