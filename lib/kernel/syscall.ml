(* The kernel boundary of a simulated process.

   Every potentially blocking 432 instruction is performed as an effect; the
   machine's run loop handles it, charges virtual time, and either resumes
   the process immediately or suspends it (saving the one-shot continuation
   in the process object). *)

open I432

type op =
  | Send of { port : Access.t; msg : Access.t }
      (** blocks while the port's message queue is full *)
  | Receive of { port : Access.t }  (** blocks while no message is available *)
  | Cond_send of { port : Access.t; msg : Access.t }
      (** never blocks; tells whether the message was accepted *)
  | Cond_receive of { port : Access.t }  (** never blocks *)
  | Delay of int  (** sleep for the given virtual nanoseconds *)
  | Yield  (** surrender the processor, stay ready *)
  | Preempt  (** involuntary yield injected at time-slice end *)
  | Exit  (** voluntary termination *)
  | Timed_send of { port : Access.t; msg : Access.t; timeout_ns : int }
      (** like [Send], but gives up after [timeout_ns] of virtual time;
          the result reports whether the message was accepted *)
  | Timed_receive of { port : Access.t; timeout_ns : int }
      (** like [Receive], but returns [None] at the deadline *)
  | Txn_try of {
      t_key : int;
      t_receives : Access.t list;
      t_sends : (Access.t * Access.t) list;  (** (port, msg) *)
      t_writes : (Access.t * int * int) list;  (** (object, offset, word) *)
    }
      (** one atomic attempt at a multi-port group: validate every staged
          operation, then apply all of them at one virtual-time instant,
          or apply none and report the first conflicting port.  Never
          blocks; retry/abort policy lives above the kernel (lib/txn). *)

type result =
  | R_unit
  | R_msg of Access.t
  | R_accepted of bool
  | R_msg_option of Access.t option
  | R_txn of txn_result

and txn_result =
  | Txn_committed of {
      received : Access.t list;  (** receives, in staging order *)
      commit_ns : int;  (** the commit's virtual-time instant *)
      fresh : bool;  (** false: key already applied, commit skipped *)
    }
  | Txn_conflict of { port : int; reason : string }

type _ Effect.t += Syscall : op -> result Effect.t

let perform op = Effect.perform (Syscall op)

let op_to_string = function
  | Send _ -> "send"
  | Receive _ -> "receive"
  | Cond_send _ -> "cond-send"
  | Cond_receive _ -> "cond-receive"
  | Delay ns -> Printf.sprintf "delay(%dns)" ns
  | Yield -> "yield"
  | Preempt -> "preempt"
  | Exit -> "exit"
  | Timed_send { timeout_ns; _ } -> Printf.sprintf "timed-send(%dns)" timeout_ns
  | Timed_receive { timeout_ns; _ } ->
    Printf.sprintf "timed-receive(%dns)" timeout_ns
  | Txn_try { t_receives; t_sends; t_writes; _ } ->
    Printf.sprintf "txn-try(%dr/%ds/%dw)" (List.length t_receives)
      (List.length t_sends) (List.length t_writes)
