(* Communication port objects (paper §2, §4).

   A port is "a queueing structure for interprocess communications" with a
   bounded message queue and a queueing discipline.  Send and receive are
   single hardware instructions; a full queue blocks the sender, an empty
   one blocks the receiver.  Messages are arbitrary access descriptors.

   Type rights on a port access: t1 = send right, t2 = receive right.

   Host-cost structures (service order is unchanged bit-for-bit):
   - Fifo discipline: ring buffer for messages (capacity is part of the
     port's semantics) and an O(1) queue for blocked senders — replacing
     O(n) list appends;
   - Priority discipline: pairing heaps keyed by (priority desc, seq asc)
     for messages and blocked senders — replacing O(n) sorted inserts.
   Queue depth is an O(1) counter either way, so the depth statistics no
   longer cost a list traversal per operation. *)

open I432
open I432_util

type discipline = Fifo | Priority

type queued_message = {
  msg : Access.t;
  msg_priority : int;
  seq : int;  (* FIFO tiebreak *)
  enqueued_at : int;  (* virtual ns, for latency statistics *)
  txn : int;  (* idempotency key of the committing transaction, 0 = none *)
}

type waiting_sender = {
  sender : int;  (* process object index *)
  sender_msg : Access.t;
  sender_priority : int;
  sender_seq : int;
}

type messages =
  | M_fifo of queued_message Ring_buffer.t
  | M_prio of queued_message Pqueue.t

type senders =
  | S_fifo of waiting_sender Queue.t
  | S_prio of waiting_sender Pqueue.t

type t = {
  self : int;
  capacity : int;
  discipline : discipline;
  messages : messages;
  senders : senders;  (* blocked senders, service order *)
  receivers : int Queue.t;  (* blocked receiver process indices, FIFO *)
  mutable seq : int;
  (* statistics *)
  mutable sends : int;
  mutable receives : int;
  mutable send_blocks : int;
  mutable receive_blocks : int;
  mutable total_queue_wait_ns : int;
  mutable last_wait_ns : int;  (* queue wait of the last dequeued message *)
  mutable max_depth : int;
}

type Object_table.payload += Port_state of t

let make ~self ~capacity ~discipline =
  if capacity < 1 then invalid_arg "Port.make: capacity";
  {
    self;
    capacity;
    discipline;
    messages =
      (match discipline with
      | Fifo -> M_fifo (Ring_buffer.create capacity)
      | Priority -> M_prio (Pqueue.create ()));
    senders =
      (match discipline with
      | Fifo -> S_fifo (Queue.create ())
      | Priority -> S_prio (Pqueue.create ()));
    receivers = Queue.create ();
    seq = 0;
    sends = 0;
    receives = 0;
    send_blocks = 0;
    receive_blocks = 0;
    total_queue_wait_ns = 0;
    last_wait_ns = 0;
    max_depth = 0;
  }

let state_of table access =
  Segment.check_type table access Obj_type.Port;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Port_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "port object has no port state")

let state_of_index table index =
  let e = Object_table.lookup table index in
  match e.Object_table.payload with
  | Some (Port_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "port object has no port state")

let check_send_right access =
  if not (Rights.has_type_right (Access.rights access) Rights.t1) then
    Fault.raise_fault
      (Fault.Rights_violation { needed = "send (t1)"; held = Access.rights access })

let check_receive_right access =
  if not (Rights.has_type_right (Access.rights access) Rights.t2) then
    Fault.raise_fault
      (Fault.Rights_violation
         { needed = "receive (t2)"; held = Access.rights access })

let queue_length t =
  match t.messages with
  | M_fifo rb -> Ring_buffer.length rb
  | M_prio q -> Pqueue.size q

let is_full t = queue_length t >= t.capacity
let is_empty t = queue_length t = 0
let has_blocked_receiver t = not (Queue.is_empty t.receivers)

let has_blocked_sender t =
  match t.senders with
  | S_fifo q -> not (Queue.is_empty q)
  | S_prio q -> not (Pqueue.is_empty q)

let next_seq t =
  let s = t.seq in
  t.seq <- t.seq + 1;
  s

(* Enqueue in service order: FIFO appends; Priority orders by descending
   message priority, FIFO within a priority. *)
let enqueue ?(txn = 0) t ~msg ~priority ~now =
  if is_full t then invalid_arg "Port.enqueue: full";
  let qm =
    { msg; msg_priority = priority; seq = next_seq t; enqueued_at = now; txn }
  in
  (match t.messages with
  | M_fifo rb -> Ring_buffer.push rb qm
  | M_prio q -> Pqueue.insert q ~priority:qm.msg_priority ~seq:qm.seq qm);
  let d = queue_length t in
  if d > t.max_depth then t.max_depth <- d

(* Like [dequeue], but keeps the queue record: the interconnect layer needs
   the message's priority (preserved across the wire) and its enqueue time
   (the virtual instant the frame departs). *)
let dequeue_entry t ~now =
  let front =
    match t.messages with
    | M_fifo rb -> Ring_buffer.pop rb
    | M_prio q -> Pqueue.pop q
  in
  match front with
  | None -> None
  | Some qm ->
    (* Clamp: the receiver's processor clock can trail the sender's. *)
    let wait = max 0 (now - qm.enqueued_at) in
    t.total_queue_wait_ns <- t.total_queue_wait_ns + wait;
    t.last_wait_ns <- wait;
    Some qm

let dequeue t ~now =
  match dequeue_entry t ~now with None -> None | Some qm -> Some qm.msg

let pop_receiver t = Queue.take_opt t.receivers
let push_receiver t index = Queue.push index t.receivers

let pop_sender t =
  match t.senders with
  | S_fifo q -> Queue.take_opt q
  | S_prio q -> Pqueue.pop q

let push_sender t ~sender ~msg ~priority =
  let ws =
    { sender; sender_msg = msg; sender_priority = priority; sender_seq = next_seq t }
  in
  match t.senders with
  | S_fifo q -> Queue.push ws q
  | S_prio q -> Pqueue.insert q ~priority:ws.sender_priority ~seq:ws.sender_seq ws

(* Timeout support: surgically remove one parked process from a blocked
   queue, preserving the service order of everyone else.  These rebuild the
   queue (O(n)); they run only when a timeout actually fires, never on the
   send/receive fast path. *)
let remove_receiver t ~index =
  let found = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun i -> if i = index && not !found then found := true else Queue.push i keep)
    t.receivers;
  if !found then (
    Queue.clear t.receivers;
    Queue.transfer keep t.receivers);
  !found

let remove_sender t ~index =
  let found = ref None in
  (match t.senders with
  | S_fifo q ->
    let keep = Queue.create () in
    Queue.iter
      (fun ws ->
        if ws.sender = index && !found = None then found := Some ws
        else Queue.push ws keep)
      q;
    if !found <> None then (
      Queue.clear q;
      Queue.transfer keep q)
  | S_prio q ->
    (* Drain and reinsert with the original (priority, seq) keys, so the
       survivors keep their exact service order. *)
    let keep = ref [] in
    let rec drain () =
      match Pqueue.pop q with
      | None -> ()
      | Some ws ->
        if ws.sender = index && !found = None then found := Some ws
        else keep := ws :: !keep;
        drain ()
    in
    drain ();
    List.iter
      (fun ws ->
        Pqueue.insert q ~priority:ws.sender_priority ~seq:ws.sender_seq ws)
      !keep);
  !found

(* Root-scan hooks for the collector: visit every queued message / blocked
   sender once, in no particular order (shading is order-insensitive). *)
let iter_messages f t =
  match t.messages with
  | M_fifo rb -> Ring_buffer.iter f rb
  | M_prio q -> Pqueue.iter f q

let iter_senders f t =
  match t.senders with
  | S_fifo q -> Queue.iter f q
  | S_prio q -> Pqueue.iter f q

(* Mean time a message spent queued, in ns. *)
let mean_queue_wait_ns t =
  if t.receives = 0 then 0.0
  else float_of_int t.total_queue_wait_ns /. float_of_int t.receives

let discipline_to_string = function Fifo -> "FIFO" | Priority -> "priority"
