(* Process objects.

   The hardware's process object "contains the information for scheduling
   ... processes, dispatching them on any one of several potentially
   available processors, and sending them back to software when various
   fault or scheduling conditions arise" (paper §5).  The body of a process
   is an OCaml function executed as an effect-handler coroutine: each
   potentially blocking instruction performs a {!Syscall} effect, at which
   point the run loop takes over.

   The [stopped] flag and the scheduler notification port implement the
   kernel half of the basic process manager's contract (§6.1): iMAX keeps
   the nested stop/start counts; the kernel keeps a single in/out-of-mix
   bit and tells the scheduler whenever it flips. *)

open I432

type status =
  | Created  (* not yet in the dispatching mix *)
  | Ready
  | Running
  | Blocked_send of int  (* port object index *)
  | Blocked_receive of int
  | Sleeping
  | Finished
  | Faulted of Fault.cause

type outcome =
  | Completed
  | Raised of exn
  | Pending of Syscall.op * (Syscall.result, outcome) Effect.Deep.continuation

type code =
  | Not_started of (unit -> unit)
  | Suspended of (Syscall.result, outcome) Effect.Deep.continuation
  | Terminated

type t = {
  index : int;  (* object-table index of the process object *)
  name : string;
  daemon : bool;  (* daemons do not keep the machine alive *)
  mutable code : code;
  mutable status : status;
  mutable stopped : bool;  (* out of the dispatching mix (kernel bit) *)
  mutable priority : int;  (* higher runs first *)
  mutable pending : Syscall.result;  (* delivered at next resume *)
  mutable wake_at : int;  (* for Sleeping *)
  mutable timeout_at : int option;  (* deadline for a timed blocking op *)
  mutable cpu_ns : int;  (* total virtual time consumed *)
  mutable slice_used_ns : int;  (* since last dispatch *)
  mutable last_ready_ns : int;  (* when the process last entered the mix *)
  mutable trace_name_id : int;  (* the tracer's interned id for [name] *)
  mutable system_level : int;  (* iMAX internal level (§7.3); 4 = user *)
  mutable affinity : int option;  (* restrict dispatch to one processor *)
  mutable scheduler_port : int option;  (* notified on mix transitions *)
  mutable local_roots : Access.t list;  (* GC shadow stack *)
  mutable call_depth : int;  (* lifetime level of the current context *)
  mutable contexts : Access.t list;  (* activation-record stack, top first *)
  mutable dispatches : int;
  mutable preemptions : int;
  mutable blocks : int;
  mutable messages_sent : int;
  mutable messages_received : int;
}

type Object_table.payload += Process_state of t

let state_of table access =
  Segment.check_type table access Obj_type.Process;
  let e = Object_table.entry_of_access table access in
  match e.Object_table.payload with
  | Some (Process_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "process object has no process state")

let state_of_index table index =
  let e = Object_table.lookup table index in
  match e.Object_table.payload with
  | Some (Process_state p) -> p
  | Some _ | None ->
    Fault.raise_fault (Fault.Protocol "process object has no process state")

(* Run the body until its first syscall, completion, or exception. *)
let start_body body =
  let handler =
    {
      Effect.Deep.retc = (fun () -> Completed);
      exnc = (fun e -> Raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Syscall.Syscall op ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                Pending (op, k))
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

(* Advance the coroutine one step, delivering the pending syscall result. *)
let step t =
  match t.code with
  | Not_started body ->
    t.code <- Terminated;
    (* replaced below if the body suspends *)
    start_body body
  | Suspended k ->
    t.code <- Terminated;
    Effect.Deep.continue k t.pending
  | Terminated ->
    Fault.raise_fault (Fault.Protocol "stepping a terminated process")

let is_terminal t =
  match t.status with
  | Finished | Faulted _ -> true
  | Created | Ready | Running | Blocked_send _ | Blocked_receive _ | Sleeping
    ->
    false

let status_to_string = function
  | Created -> "created"
  | Ready -> "ready"
  | Running -> "running"
  | Blocked_send p -> Printf.sprintf "blocked-send(%d)" p
  | Blocked_receive p -> Printf.sprintf "blocked-receive(%d)" p
  | Sleeping -> "sleeping"
  | Finished -> "finished"
  | Faulted c -> "faulted: " ^ Fault.to_string c
