(** The banking macro scenario (DESIGN.md §15.4): N accounts, each a
    balance segment guarded by a capacity-1 token port, driven by a
    seeded transfer mix where every transfer is an atomic two-token
    acquire (txn1, unkeyed — all-or-nothing, so no deadlock) followed by
    a keyed commit (txn2) that writes both balances, returns both
    tokens, and sends a completion.  Callers check: total balance
    conserved, every non-aborted transfer completed exactly once, and
    tracked-account history replays to the live balance. *)

open I432
module K := I432_kernel
module Net := I432_net
module Fi := I432_fi.Fi
module St := I432_store

val initial_balance : int

type account = private {
  a_bal : Access.t;
  a_port : Access.t;
  a_token : Access.t;
}

type result = {
  transfers : int;  (** requested *)
  committed : int;  (** distinct keyed commits (kernel [txn_applied]) *)
  aborted : int;  (** acquire gave up after retry exhaustion *)
  completions : int;  (** distinct completion keys at the collector *)
  dup_completions : int;  (** duplicates the collector deduped *)
  latencies : int list;  (** request-to-completion ns, arrival order *)
  initial_total : int;
  final_total : int;
  balances : int array;
}

(** Total balance equals the initial total. *)
val conserved : result -> bool

val result_to_string : result -> string

(** Single-machine sweep.  [history_store] tracks every account's
    balance under [acct<i>]; [plan] arms a §8 fault plan before the
    run. *)
val run :
  ?processors:int ->
  ?workers:int ->
  ?pace_ns:int ->
  ?trace:bool ->
  ?history_store:St.Store.t ->
  ?plan:Fi.plan ->
  accounts:int ->
  transfers:int ->
  seed:int ->
  unit ->
  K.Machine.t * History.t option * result

type cluster_run = {
  cluster : Net.Cluster.t;
  bank_node : int;
  audit_node : int;
  report : Net.Cluster.report;
  res : result;
}

(** Two-node variant: node "bank" hosts accounts and tellers, node
    "audit" hosts the collector behind an exported port, so every
    completion crosses the interconnect carrying its per-send
    idempotency tag.  [kill = (kill_ns, restart_ns)] checkpoints at the
    round boundary below [ckpt_ns] (default [kill_ns]) into
    [ckpt_store] (required), kills the bank node, and rejoins it by
    checkpoint replay — re-committed groups re-issue their completion
    sends, and the audit NIC's tag dedup drops any frame that already
    escaped, keeping delivery exactly-once.  Set [ckpt_ns] well below
    [kill_ns] to guarantee escaped frames exist to drop. *)
val run_cluster :
  ?processors:int ->
  ?workers:int ->
  ?pace_ns:int ->
  ?quantum_ns:int ->
  ?engine:Net.Cluster.engine ->
  ?kill:int * int ->
  ?ckpt_ns:int ->
  ?ckpt_store:St.Store.t ->
  ?history_store:St.Store.t ->
  ?link_plan:Fi.link_plan ->
  accounts:int ->
  transfers:int ->
  seed:int ->
  unit ->
  cluster_run
