(* Transactional multi-object send (DESIGN.md §15).

   A group stages receives, sends, and data writes against any number of
   ports and objects; [commit] hands the whole group to the kernel's
   Txn_try syscall, which validates every leg in deterministic (ascending
   object-index) order and applies all of them at one virtual-time
   instant — or applies none and reports the first conflicting object.
   This layer owns policy: bounded retry with doubling virtual-time
   backoff, a compensation hook on abort (the §8 destruction-filter shape
   reused), loud typed abort events, and the idempotency-key discipline
   that makes cluster retries exactly-once.

   Key discipline: keys are allocated on a stride of [key_stride] because
   the kernel tags the i-th send of group [k] with [k + i] — each logical
   send gets a cluster-unique tag the receiving NIC can dedup on after a
   failover replay.  [key ~origin ~seq] packs an origin id and a local
   sequence number so concurrent allocators never collide. *)

module K = I432_kernel
module Obs = I432_obs

let key_stride = 64
let max_seq = 0x100000

let key ~origin ~seq =
  if origin < 0 then invalid_arg "Txn.key: negative origin";
  if seq < 0 || seq >= max_seq then
    invalid_arg (Printf.sprintf "Txn.key: seq %d out of [0, %d)" seq max_seq);
  ((origin * max_seq) + seq + 1) * key_stride

type group = {
  mutable g_receives : I432.Access.t list;  (* reverse staging order *)
  mutable g_sends : (I432.Access.t * I432.Access.t) list;
  mutable g_writes : (I432.Access.t * int * int) list;
}

let group () = { g_receives = []; g_sends = []; g_writes = [] }
let receive g port = g.g_receives <- port :: g.g_receives
let send g ~port ~msg = g.g_sends <- (port, msg) :: g.g_sends

let write g obj ~offset ~word =
  g.g_writes <- (obj, offset, word) :: g.g_writes

type outcome =
  | Committed of {
      received : I432.Access.t list;
      commit_ns : int;
      fresh : bool;
      attempts : int;
    }
  | Aborted of { port : int; reason : string; attempts : int }

let outcome_to_string = function
  | Committed { received; commit_ns; fresh; attempts } ->
    Printf.sprintf "committed %dr at=%d fresh=%b attempts=%d"
      (List.length received) commit_ns fresh attempts
  | Aborted { port; reason; attempts } ->
    Printf.sprintf "aborted obj=%d %s attempts=%d" port reason attempts

let lazy_incr m name = Obs.Metrics.incr (Obs.Metrics.counter m name)

let commit machine ?(key = 0) ?(retries = 8) ?(backoff_ns = 1_000)
    ?compensate ?history g =
  let receives = List.rev g.g_receives in
  let sends = List.rev g.g_sends in
  let writes = List.rev g.g_writes in
  if key <> 0 && key mod key_stride <> 0 then
    invalid_arg "Txn.commit: keys must come from Txn.key (stride-aligned)";
  if key <> 0 && List.length sends > key_stride then
    invalid_arg
      (Printf.sprintf "Txn.commit: a keyed group is limited to %d sends"
         key_stride);
  let metrics = K.Machine.metrics machine in
  let rec attempt n backoff =
    match K.Machine.txn_try machine ~key ~receives ~sends ~writes () with
    | K.Syscall.Txn_committed { received; commit_ns; fresh } ->
      if fresh then (
        match history with
        | Some h -> History.observe h ~commit_ns ~key ~writes
        | None -> ());
      Committed { received; commit_ns; fresh; attempts = n }
    | K.Syscall.Txn_conflict { port; reason } ->
      if n > retries then begin
        lazy_incr metrics "txn.aborts";
        K.Machine.emit_event machine ~detail:reason ~a:key ~b:port
          Obs.Event.Txn_abort;
        (match compensate with Some f -> f () | None -> ());
        Aborted { port; reason; attempts = n }
      end
      else begin
        lazy_incr metrics "txn.retries";
        K.Machine.delay machine ~ns:backoff;
        attempt (n + 1) (backoff * 2)
      end
  in
  attempt 1 backoff_ns
