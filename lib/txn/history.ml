(* Event-sourced per-object history (DESIGN.md §15.3).

   Opt-in: an object only gains a history once [track] is called on it, so
   runs that never create a tracker are byte-identical to the pre-history
   kernel.  Tracking files the object's current data image as a base blob
   (hist/<name>/base) and every subsequent committed transactional write
   appends a numbered record blob (hist/<name>/<seq>) carrying the commit's
   virtual timestamp, its idempotency key, and the (offset, word) pairs it
   applied to that object.

   The store is used write-only: records are appended at commit time and
   never read back by the live run, so a checkpoint replay that re-commits
   the same groups re-puts byte-identical blobs under the same keys — the
   journal converges instead of corrupting.  Audit and replay read the
   blobs back offline ([replay] and [records] take just a store). *)

open I432
module K = I432_kernel
module Obs = I432_obs
module St = I432_store

type tracked = {
  h_name : string;
  h_obj : Access.t;
  h_len : int;  (* data bytes captured in the base image *)
  mutable h_seq : int;  (* last record appended (0 = base only) *)
}

type t = {
  store : St.Store.t;
  machine : K.Machine.t;
  by_index : (int, tracked) Hashtbl.t;
  mutable names : tracked list;  (* reverse tracking order *)
}

let base_key name = Printf.sprintf "hist/%s/base" name
let rec_key name seq = Printf.sprintf "hist/%s/%d" name seq

let create store machine =
  { store; machine; by_index = Hashtbl.create 16; names = [] }

let track t ~name obj =
  let index = Access.index obj in
  if Hashtbl.mem t.by_index index then
    invalid_arg (Printf.sprintf "History.track: object %d already tracked" index);
  let e = Object_table.entry_of_access (K.Machine.table t.machine) obj in
  let len = e.Object_table.data_length in
  let base = K.Machine.read_bytes t.machine obj ~offset:0 ~len in
  St.Store.put_blob t.store ~now_ns:(K.Machine.now t.machine)
    ~key:(base_key name) base;
  let tr = { h_name = name; h_obj = obj; h_len = len; h_seq = 0 } in
  Hashtbl.replace t.by_index index tr;
  t.names <- tr :: t.names

let tracked t = List.rev_map (fun tr -> (tr.h_name, tr.h_obj)) t.names

(* One record blob per (commit, tracked object): a text line
   "<commit_ns> <key> <off>:<word>,<off>:<word>,..." — auditable with any
   pager and trivially parseable. *)
let encode ~commit_ns ~key writes =
  let ws =
    String.concat ","
      (List.map (fun (off, w) -> Printf.sprintf "%d:%d" off w) writes)
  in
  Bytes.of_string (Printf.sprintf "%d %d %s" commit_ns key ws)

let decode b =
  match String.split_on_char ' ' (Bytes.to_string b) with
  | [ ns; key; ws ] ->
    let writes =
      if String.length ws = 0 then []
      else
        List.map
          (fun pair ->
            match String.split_on_char ':' pair with
            | [ off; w ] -> (int_of_string off, int_of_string w)
            | _ -> failwith "History: malformed record")
          (String.split_on_char ',' ws)
    in
    (int_of_string ns, int_of_string key, writes)
  | _ -> failwith "History: malformed record"

let observe t ~commit_ns ~key ~writes =
  (* Group the commit's writes by tracked object, preserving staging
     order within each object (later writes win on replay, matching the
     kernel's apply order). *)
  let per_obj = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (obj, off, word) ->
      let index = Access.index obj in
      match Hashtbl.find_opt t.by_index index with
      | None -> ()
      | Some tr ->
        (match Hashtbl.find_opt per_obj index with
        | None ->
          Hashtbl.replace per_obj index (ref [ (off, word) ]);
          order := (index, tr) :: !order
        | Some l -> l := (off, word) :: !l))
    writes;
  List.iter
    (fun (index, tr) ->
      let ws = List.rev !(Hashtbl.find per_obj index) in
      tr.h_seq <- tr.h_seq + 1;
      St.Store.put_blob t.store ~now_ns:commit_ns
        ~key:(rec_key tr.h_name tr.h_seq)
        (encode ~commit_ns ~key ws);
      (* A checkpoint rejoin replays this history from an earlier frontier,
         and the rolled-back timeline may have filed records at higher
         sequence numbers.  Tombstoning the successor on every append keeps
         [records]' contiguous scan from crossing into that stale tail.
         (Full compaction of orphaned tails is a ROADMAP follow-on.) *)
      let next = rec_key tr.h_name (tr.h_seq + 1) in
      if St.Store.mem t.store ~key:next then St.Store.delete t.store ~key:next;
      K.Machine.emit_event t.machine ~name:tr.h_name ~a:key ~b:tr.h_seq
        Obs.Event.Hist_append)
    (List.rev !order)

let records store ~name =
  let rec go seq acc =
    match St.Store.get_blob store ~key:(rec_key name seq) with
    | None -> List.rev acc
    | Some b -> go (seq + 1) (decode b :: acc)
  in
  go 1 []

let replay store ~name ~to_ns =
  match St.Store.get_blob store ~key:(base_key name) with
  | None -> None
  | Some base ->
    let img = Bytes.copy base in
    List.iter
      (fun (commit_ns, _key, writes) ->
        if commit_ns <= to_ns then
          List.iter
            (fun (off, word) ->
              Bytes.set_int32_le img off (Int32.of_int word))
            writes)
      (records store ~name);
    Some img

let live t ~name =
  let rec find = function
    | [] -> None
    | tr :: rest ->
      if String.equal tr.h_name name then
        Some (K.Machine.read_bytes t.machine tr.h_obj ~offset:0 ~len:tr.h_len)
      else find rest
  in
  find t.names

let verify t ~name =
  match (live t ~name, replay t.store ~name ~to_ns:max_int) with
  | Some l, Some r -> Bytes.equal l r
  | _ -> false
