(* The banking macro scenario (DESIGN.md §15.4, EXPERIMENTS.md).

   N accounts, each a 32-bit balance segment guarded by a capacity-1
   token port; a seeded mix of transfers, each executed as two
   transaction groups:

     txn1 (unkeyed)  atomically receive BOTH account tokens — all or
                     nothing, so two transfers contending for
                     overlapping accounts can never deadlock; retry
                     exhaustion aborts the transfer loudly.
     txn2 (keyed)    atomically write both balances, return both
                     tokens, and send a completion message — guarded by
                     an idempotency key, so a duplicate commit (e.g. a
                     checkpoint replay after a node kill) re-issues the
                     sends without touching balances, and the cluster's
                     per-tag dedup drops any completion frame that
                     already escaped.  If txn2 itself aborts, the
                     compensation hook returns the held tokens.

   Invariant checked by every caller: the sum of balances equals the
   initial total at every quiescent point, every non-aborted transfer
   completes exactly once, and replaying any tracked account's history
   reproduces its live balance byte-for-byte. *)

open I432
open I432_util
module K = I432_kernel
module Net = I432_net
module Obs = I432_obs
module Fi = I432_fi.Fi
module St = I432_store

let initial_balance = 1_000

type account = {
  a_bal : Access.t;  (* 8-byte segment, balance word at offset 0 *)
  a_port : Access.t;  (* capacity-1 token port *)
  a_token : Access.t;  (* the token message priming the port *)
}

type result = {
  transfers : int;  (* requested *)
  committed : int;  (* distinct keyed commits (kernel txn_applied) *)
  aborted : int;  (* acquire gave up after retry exhaustion *)
  completions : int;  (* distinct completion keys at the collector *)
  dup_completions : int;  (* duplicates the collector deduped *)
  latencies : int list;  (* request-to-completion ns, arrival order *)
  initial_total : int;
  final_total : int;
  balances : int array;
}

let conserved r = r.final_total = r.initial_total

let result_to_string r =
  Printf.sprintf
    "transfers=%d committed=%d aborted=%d completions=%d dups=%d total=%d/%d%s"
    r.transfers r.committed r.aborted r.completions r.dup_completions
    r.final_total r.initial_total
    (if conserved r then "" else " VIOLATED")

(* Shared collector state: raw (note, arrival) pairs, newest first.  The
   auditor records with pure OCaml mutation only — no charged instruction
   between the receive and the record — so an armed transient fault can
   kill it between notes but never lose one it consumed.  Parsing happens
   after the run, outside the loop. *)
type collector = { mutable notes : (Access.t * int option) list }

let make_collector () = { notes = [] }

let setup_accounts machine ~accounts =
  Array.init accounts (fun _ ->
      let a_bal = K.Machine.allocate_generic machine ~data_length:8 () in
      K.Machine.write_word machine a_bal ~offset:0 initial_balance;
      let a_port =
        K.Machine.create_port machine ~capacity:1 ~discipline:K.Port.Fifo ()
      in
      let a_token = K.Machine.allocate_generic machine ~data_length:8 () in
      { a_bal; a_port; a_token })

let prime_tokens machine accts =
  Array.iter
    (fun a ->
      let ok =
        K.Machine.deliver_external machine ~port:a.a_port ~msg:a.a_token
          ~priority:0 ()
      in
      assert ok)
    accts

let track_accounts history accts =
  Array.iteri
    (fun i a ->
      History.track history ~name:(Printf.sprintf "acct%d" i) a.a_bal)
    accts

(* One worker's share of the transfer mix.  [done_port] may be a home
   port or a cluster surrogate; the transaction machinery is identical. *)
let worker machine ~accts ~done_port ~origin ~seed ~count ~pace_ns ?history ()
    =
  let rng = Prng.create ~seed:(seed + (origin * 7919)) in
  let n = Array.length accts in
  for t = 0 to count - 1 do
    let src = Prng.int rng n in
    let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
    let a, b = (accts.(src), accts.(dst)) in
    let start_ns = K.Machine.now machine in
    let acquire = Txn.group () in
    Txn.receive acquire a.a_port;
    Txn.receive acquire b.a_port;
    (match Txn.commit machine ~retries:10 ~backoff_ns:2_000 acquire with
    | Txn.Aborted _ -> ()  (* nothing held: all-or-nothing acquire *)
    | Txn.Committed { received; _ } ->
      let tok_a, tok_b =
        match received with [ x; y ] -> (x, y) | _ -> assert false
      in
      let bal_a = K.Machine.read_word machine a.a_bal ~offset:0 in
      let bal_b = K.Machine.read_word machine b.a_bal ~offset:0 in
      let amt = if bal_a <= 0 then 0 else 1 + Prng.int rng (min 100 bal_a) in
      let key = Txn.key ~origin ~seq:t in
      let note = K.Machine.allocate_generic machine ~data_length:8 () in
      K.Machine.write_word machine note ~offset:0 key;
      K.Machine.write_word machine note ~offset:4 start_ns;
      let g = Txn.group () in
      Txn.write g a.a_bal ~offset:0 ~word:(bal_a - amt);
      Txn.write g b.a_bal ~offset:0 ~word:(bal_b + amt);
      Txn.send g ~port:a.a_port ~msg:tok_a;
      Txn.send g ~port:b.a_port ~msg:tok_b;
      Txn.send g ~port:done_port ~msg:note;
      let compensate () =
        (* Undo the acquire so an aborted transfer never wedges the
           accounts: tokens go back, balances were never touched. *)
        ignore (K.Machine.cond_send machine ~port:a.a_port ~msg:tok_a);
        ignore (K.Machine.cond_send machine ~port:b.a_port ~msg:tok_b)
      in
      (match
         Txn.commit machine ~key ~retries:20 ~backoff_ns:4_000 ~compensate
           ?history g
       with
      | Txn.Committed _ -> ()
      | Txn.Aborted _ -> ()));
    if pace_ns > 0 then K.Machine.delay machine ~ns:pace_ns
  done

(* Receive completions until the stream stays quiet. *)
let collect machine ~done_port ~quiet_ns c =
  let quiet = ref 0 in
  while !quiet < 3 do
    match K.Machine.receive_timeout machine ~port:done_port ~timeout_ns:quiet_ns with
    | None -> incr quiet
    | Some note ->
      quiet := 0;
      c.notes <- (note, Some (K.Machine.now machine)) :: c.notes
  done

(* Chaos (a transient or CPU fault) can kill the auditor process itself;
   notes still queued at quiescence were nonetheless delivered exactly
   once, so fold them into the count (with no latency sample) before
   judging the run.  Returns (distinct, dups, latencies). *)
let resolve_completions machine ~done_port c =
  let leftover =
    List.map (fun (note, _, _, _) -> note)
      (K.Machine.drain_port machine ~port:done_port ())
  in
  let seen = Hashtbl.create 64 in
  let dups = ref 0 in
  let lats = ref [] in
  let one note arrival =
    let key = K.Machine.read_word machine note ~offset:0 in
    if Hashtbl.mem seen key then incr dups
    else begin
      Hashtbl.replace seen key ();
      match arrival with
      | None -> ()
      | Some at ->
        lats := (at - K.Machine.read_word machine note ~offset:4) :: !lats
    end
  in
  List.iter (fun (note, at) -> one note at) (List.rev c.notes);
  List.iter (fun note -> one note None) leftover;
  (Hashtbl.length seen, !dups, List.rev !lats)

let gather ~transfers ~bank ~completions:(distinct, dups, lats) ~accts =
  let balances =
    Array.map (fun a -> K.Machine.read_word bank a.a_bal ~offset:0) accts
  in
  {
    transfers;
    committed = List.length (K.Machine.txn_applied_keys bank);
    aborted =
      (match
         Obs.Metrics.find_counter (K.Machine.metrics bank) "txn.aborts"
       with
      | Some ctr -> Obs.Metrics.counter_value ctr
      | None -> 0);
    completions = distinct;
    dup_completions = dups;
    latencies = lats;
    initial_total = Array.length accts * initial_balance;
    final_total = Array.fold_left ( + ) 0 balances;
    balances;
  }

let split_transfers ~transfers ~workers w =
  (transfers / workers) + (if w < transfers mod workers then 1 else 0)

(* ---------------- Single machine ---------------- *)

let run ?(processors = 2) ?(workers = 4) ?(pace_ns = 5_000) ?(trace = true)
    ?history_store ?plan ~accounts ~transfers ~seed () =
  let machine =
    K.Machine.create
      ~config:
        {
          K.Machine.default_config with
          processors;
          trace_level = (if trace then Obs.Tracer.Events else Obs.Tracer.Off);
        }
      ()
  in
  let accts = setup_accounts machine ~accounts in
  prime_tokens machine accts;
  let history =
    match history_store with
    | None -> None
    | Some store ->
      let h = History.create store machine in
      track_accounts h accts;
      Some h
  in
  let done_port =
    K.Machine.create_port machine ~capacity:(transfers + 8)
      ~discipline:K.Port.Fifo ()
  in
  let c = make_collector () in
  for w = 0 to workers - 1 do
    let count = split_transfers ~transfers ~workers w in
    ignore
      (K.Machine.spawn machine
         ~name:(Printf.sprintf "teller%d" w)
         (fun () ->
           worker machine ~accts ~done_port ~origin:w ~seed ~count ~pace_ns
             ?history ()))
  done;
  ignore
    (K.Machine.spawn machine ~name:"auditor" (fun () ->
         collect machine ~done_port ~quiet_ns:500_000 c));
  (match plan with Some p -> Fi.arm machine p | None -> ());
  ignore (K.Machine.run machine);
  let completions = resolve_completions machine ~done_port c in
  (machine, history, gather ~transfers ~bank:machine ~completions ~accts)

(* ---------------- Two-node cluster ---------------- *)

(* Node 0 ("bank") hosts the accounts and tellers; node 1 ("audit")
   hosts the collector behind an exported "done" port, so every
   completion crosses the interconnect carrying its per-send idempotency
   tag.  A kill+rejoin of the bank node rolls uncommitted work back to
   the checkpoint; the replayed tellers re-commit deterministically and
   the audit NIC's tag dedup drops any completion frame that had already
   escaped — the exactly-once seam this scenario exists to prove. *)

type cluster_run = {
  cluster : Net.Cluster.t;
  bank_node : int;
  audit_node : int;
  report : Net.Cluster.report;
  res : result;
}

let run_cluster ?(processors = 1) ?(workers = 4) ?(pace_ns = 20_000)
    ?(quantum_ns = 50_000) ?(engine = Net.Cluster.Seq) ?kill ?ckpt_ns
    ?ckpt_store ?history_store ?link_plan ~accounts ~transfers ~seed () =
  let boot () =
    let cluster = Net.Cluster.create () in
    let config =
      {
        K.Machine.default_config with
        processors;
        trace_level = Obs.Tracer.Events;
      }
    in
    let bank_id, bank = Net.Cluster.boot_node cluster ~name:"bank" ~config () in
    let audit_id, audit =
      Net.Cluster.boot_node cluster ~name:"audit" ~config ()
    in
    ignore (Net.Cluster.connect cluster bank_id audit_id);
    let done_home =
      K.Machine.create_port audit ~capacity:((2 * transfers) + 8)
        ~discipline:K.Port.Fifo ()
    in
    Net.Cluster.export cluster ~node:audit_id ~name:"done" done_home;
    let done_port = Net.Cluster.import cluster ~node:bank_id ~name:"done" in
    let accts = setup_accounts bank ~accounts in
    prime_tokens bank accts;
    let history =
      match history_store with
      | None -> None
      | Some store ->
        let h = History.create store bank in
        track_accounts h accts;
        Some h
    in
    for w = 0 to workers - 1 do
      let count = split_transfers ~transfers ~workers w in
      ignore
        (K.Machine.spawn bank
           ~name:(Printf.sprintf "teller%d" w)
           (fun () ->
             worker bank ~accts ~done_port ~origin:w ~seed ~count ~pace_ns
               ?history ()))
    done;
    let c = make_collector () in
    ignore
      (K.Machine.spawn audit ~name:"auditor" (fun () ->
           collect audit ~done_port:done_home ~quiet_ns:2_000_000 c));
    (match link_plan with Some p -> Net.Cluster.arm_links cluster p | None -> ());
    (cluster, bank_id, audit_id, accts, c, done_home)
  in
  let cluster, bank_id, audit_id, accts, c, done_home = boot () in
  (match kill with
  | None -> ()
  | Some (kill_ns, restart_ns) ->
    let store =
      match ckpt_store with
      | Some s -> s
      | None -> invalid_arg "Banking.run_cluster: kill requires ckpt_store"
    in
    if kill_ns < quantum_ns then
      invalid_arg "Banking.run_cluster: kill instant before the first round";
    (* Advance to the round boundary at or below the checkpoint instant
       (default: the kill itself) and file every node's image; the rejoin
       replays from here.  Checkpointing EARLIER than the kill leaves a
       window of committed-and-pumped completions that the rejoin rolls
       back and re-commits — the configuration that actually exercises
       the audit NIC's transaction-tag dedup. *)
    let ckpt_at = Option.value ckpt_ns ~default:kill_ns in
    if ckpt_at > kill_ns then
      invalid_arg "Banking.run_cluster: checkpoint after the kill";
    let r1 =
      Net.Cluster.run cluster ~engine ~quantum_ns
        ~max_rounds:(ckpt_at / quantum_ns) ()
    in
    ignore
      (St.Checkpoint.save_cluster store ~key:"banking"
         ~rounds:r1.Net.Cluster.rounds ~quantum_ns cluster);
    let plan =
      {
        Fi.n_seed = seed;
        n_events =
          [
            { Fi.n_at_ns = kill_ns; n_node = bank_id; n_act = Fi.N_kill };
            { Fi.n_at_ns = restart_ns; n_node = bank_id; n_act = Fi.N_restart };
          ];
      }
    in
    Net.Cluster.arm_nodes cluster
      ~restore:(fun ~node ~at_ns:_ ->
        St.Checkpoint.restore_node store ~key:"banking" ~node
          ~boot:(fun () ->
            let cl, _, _, _, _, _ = boot () in
            cl))
      plan);
  let report = Net.Cluster.run cluster ~engine ~quantum_ns () in
  (* Re-fetch: a killed bank node's machine was replaced by the replay. *)
  let bank = Net.Cluster.machine cluster bank_id in
  let completions =
    resolve_completions (Net.Cluster.machine cluster audit_id)
      ~done_port:done_home c
  in
  let res = gather ~transfers ~bank ~completions ~accts in
  { cluster; bank_node = bank_id; audit_node = audit_id; report; res }
