(** Transactional multi-object send (DESIGN.md §15).

    Stage receives, sends, and data writes against any number of ports
    and objects, then [commit] the group: the kernel validates every leg
    and applies all of them at one virtual-time instant, or applies none
    and reports the first conflicting object in deterministic (ascending
    index) order.  This layer adds the policy the kernel deliberately
    omits: bounded retry with doubling virtual-time backoff, a
    compensation hook on abort, a loud [Txn_abort] event (a transaction
    never hangs), and idempotency keys that make retries exactly-once
    cluster-wide. *)

module K := I432_kernel

(** Keys are multiples of this stride: the kernel tags the i-th send of
    group [k] with [k + i], so each logical send carries a cluster-unique
    tag the receiving NIC dedups on after a failover replay. *)
val key_stride : int

(** Pack a nonzero, stride-aligned idempotency key from an origin id
    (e.g. a node or worker number) and a per-origin sequence number
    ([0 <= seq < 2^20]).  Distinct (origin, seq) pairs never collide. *)
val key : origin:int -> seq:int -> int

(** A staging buffer; legs commit in staging order. *)
type group

val group : unit -> group

(** Stage an atomic receive from [port]. *)
val receive : group -> I432.Access.t -> unit

(** Stage a send of [msg] to [port] (a home port or a cluster
    surrogate). *)
val send : group -> port:I432.Access.t -> msg:I432.Access.t -> unit

(** Stage a 32-bit data write to [obj] at byte [offset]. *)
val write : group -> I432.Access.t -> offset:int -> word:int -> unit

type outcome =
  | Committed of {
      received : I432.Access.t list;  (** in staging order *)
      commit_ns : int;  (** the commit's virtual-time instant *)
      fresh : bool;  (** [false]: the key had already committed *)
      attempts : int;
    }
  | Aborted of { port : int; reason : string; attempts : int }

val outcome_to_string : outcome -> string

(** Commit the group, retrying conflicts up to [retries] times with a
    doubling virtual-time backoff starting at [backoff_ns].  On
    exhaustion: bumps [txn.aborts], emits a [Txn_abort] event, runs
    [compensate] (the §8 destruction-filter shape, reused as undo), and
    returns [Aborted] — never hangs.  A nonzero [key] (from {!key})
    makes the group idempotent: a duplicate commit skips receives and
    writes, re-issues the sends best-effort, and returns
    [fresh = false].  Fresh commits append their writes to [history]'s
    tracked objects.  Must run inside a process body. *)
val commit :
  K.Machine.t ->
  ?key:int ->
  ?retries:int ->
  ?backoff_ns:int ->
  ?compensate:(unit -> unit) ->
  ?history:History.t ->
  group ->
  outcome
