(** Event-sourced per-object history (DESIGN.md §15.3).

    Opt-in audit trail for transactionally mutated objects: [track] files
    the object's current data image as a base blob
    ([hist/<name>/base]) in the store, and every committed transactional
    write to it afterwards appends a numbered record blob
    ([hist/<name>/<seq>]) carrying the commit's virtual timestamp, its
    idempotency key, and the applied (offset, word) pairs.  A run that
    never creates a tracker produces byte-identical output to the
    pre-history kernel.

    The live run uses the store write-only — records are never read back
    — so a checkpoint replay that re-commits the same groups re-puts
    byte-identical blobs under the same keys.  [replay] and [records]
    audit the blobs offline from just a store. *)

open I432
module K := I432_kernel
module St := I432_store

type t

val create : St.Store.t -> K.Machine.t -> t

(** Start tracking [obj] under [name]: files the base image now.  Raises
    [Invalid_argument] if the object is already tracked. *)
val track : t -> name:string -> Access.t -> unit

(** (name, object) pairs in tracking order. *)
val tracked : t -> (string * Access.t) list

(** Record one committed group's writes: appends one record blob per
    tracked object the group touched (untracked targets are ignored) and
    emits a [Hist_append] event per record.  Called by {!Txn.commit} on
    fresh commits only. *)
val observe :
  t -> commit_ns:int -> key:int -> writes:(Access.t * int * int) list -> unit

(** Decoded records for [name] in append order:
    [(commit_ns, key, (offset, word) list)]. *)
val records : St.Store.t -> name:string -> (int * int * (int * int) list) list

(** Rebuild [name]'s data image by deterministic replay: the base image
    plus every record with [commit_ns <= to_ns], in append order.
    [None] if no history was filed under [name]. *)
val replay : St.Store.t -> name:string -> to_ns:int -> Bytes.t option

(** The tracked object's current data image, read from the live machine. *)
val live : t -> name:string -> Bytes.t option

(** [replay] to the end of history equals the live image byte-for-byte.
    [false] for an unknown name. *)
val verify : t -> name:string -> bool
