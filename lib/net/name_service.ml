(* Cluster-wide port names.

   The name service is deliberately primitive: a flat table from exported
   name to (home node, home port, rights mask, queue capacity).  It is
   cluster metadata, not an object in any node's heap — resolving a name
   never costs virtual time.  Entries are kept sorted by name so every
   enumeration is deterministic. *)

open I432

type entry = {
  e_name : string;
  e_node : int;  (* home node id *)
  e_port : Access.t;  (* the home port, on the home node's machine *)
  e_mask : Rights.t;  (* intersected into every marshalled rights set *)
  e_capacity : int;  (* surrogate queue capacity on importing nodes *)
}

type t = { mutable entries : entry list }  (* sorted by e_name *)

let create () = { entries = [] }

let lookup t name =
  List.find_opt (fun e -> String.equal e.e_name name) t.entries

exception Already_exported of string

let publish t entry =
  if lookup t entry.e_name <> None then raise (Already_exported entry.e_name);
  t.entries <-
    List.sort
      (fun a b -> String.compare a.e_name b.e_name)
      (entry :: t.entries)

let names t = List.map (fun e -> e.e_name) t.entries
let count t = List.length t.entries
