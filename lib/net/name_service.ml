(* Cluster-wide port names.

   The name service is deliberately primitive: a flat table from exported
   name to (home node, home port, rights mask, queue capacity).  It is
   cluster metadata, not an object in any node's heap — resolving a name
   never costs virtual time.  Entries are kept sorted by name so every
   enumeration is deterministic.

   Every mutation bumps the service epoch, and each entry records the
   epoch at which it was (re)published.  A looked-up entry whose e_epoch
   is older than a cached one is stale: the re-home protocol after a
   node restart republishes the node's names under a fresh epoch, and
   survivors compare epochs instead of guessing. *)

open I432

type entry = {
  e_name : string;
  e_node : int;  (* home node id *)
  e_port : Access.t;  (* the home port, on the home node's machine *)
  e_mask : Rights.t;  (* intersected into every marshalled rights set *)
  e_capacity : int;  (* surrogate queue capacity on importing nodes *)
  e_epoch : int;  (* service epoch at which this entry was published *)
}

type t = {
  mutable entries : entry list;  (* sorted by e_name *)
  mutable epoch : int;  (* bumped on every publish/unpublish *)
}

let create () = { entries = []; epoch = 0 }
let epoch t = t.epoch

let lookup t name =
  List.find_opt (fun e -> String.equal e.e_name name) t.entries

exception Already_exported of string
exception Not_published of string

let publish t entry =
  if lookup t entry.e_name <> None then raise (Already_exported entry.e_name);
  t.epoch <- t.epoch + 1;
  t.entries <-
    List.sort
      (fun a b -> String.compare a.e_name b.e_name)
      ({ entry with e_epoch = t.epoch } :: t.entries)

let unpublish t name =
  if lookup t name = None then raise (Not_published name);
  t.epoch <- t.epoch + 1;
  t.entries <- List.filter (fun e -> not (String.equal e.e_name name)) t.entries

let entries t = t.entries
let names t = List.map (fun e -> e.e_name) t.entries
let count t = List.length t.entries
