(* A fork-join pool of OCaml 5 domains for the parallel cluster engine.

   The cluster's conservative rounds need exactly one primitive: "run
   [tasks] independent closures, wait for all of them".  This module
   provides it with [domains - 1] long-lived worker domains plus the
   calling domain, which participates in every batch rather than blocking
   — so [Par 1] degenerates to a plain sequential loop with zero spawns,
   and [Par n] costs n - 1 spawns for the lifetime of the pool, not per
   round.

   Work distribution is index claiming under a mutex: each participant
   repeatedly takes the next unclaimed task index and runs it outside the
   lock.  Tasks are independent by contract (each steps a distinct
   machine), so claim order cannot affect results — which is what keeps
   parallel rounds bit-identical to sequential ones.

   Exceptions: every failure is caught and recorded with its task index;
   after the barrier the failure with the LOWEST index is re-raised on
   the caller's domain.  Lowest-index (not first-observed) keeps the
   reported error deterministic under scheduling noise. *)

(* The kernel models the iMAX *domain of definition* in I432.Domain; the
   OCaml 5 runtime's unit of parallelism is Stdlib.Domain.  This alias
   keeps the two apart everywhere the net library touches real
   parallelism (see DESIGN.md §11). *)
module Odomain = Stdlib.Domain

type batch = {
  fn : int -> unit;
  tasks : int;
  mutable next : int;  (* next unclaimed task index *)
  mutable remaining : int;  (* claimed-or-not tasks still unfinished *)
  mutable failures : (int * exn) list;
}

type t = {
  domains : int;
  lock : Mutex.t;
  work_ready : Condition.t;  (* workers: a new batch (or stop) is posted *)
  batch_done : Condition.t;  (* coordinator: the current batch finished *)
  mutable generation : int;  (* bumped when a batch is posted *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Odomain.t list;
}

let domains t = t.domains

(* Claim and run tasks from [b] until none are left.  Called with [t.lock]
   held; returns with it held. *)
let participate t b =
  while b.next < b.tasks do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock t.lock;
    let failure = try (b.fn i : unit); None with e -> Some e in
    Mutex.lock t.lock;
    (match failure with
    | Some e -> b.failures <- (i, e) :: b.failures
    | None -> ());
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast t.batch_done
  done

let worker_loop t =
  Mutex.lock t.lock;
  (* -1 never matches a real generation, so a worker that starts late
     still joins the batch already in flight. *)
  let seen = ref (-1) in
  while not t.stop do
    (match t.batch with
    | Some b when t.generation <> !seen ->
      seen := t.generation;
      participate t b
    | Some _ | None -> Condition.wait t.work_ready t.lock)
  done;
  Mutex.unlock t.lock

let create ~domains =
  if domains < 1 then invalid_arg "Par_exec.create: domains";
  let t =
    {
      domains;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      generation = 0;
      batch = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Odomain.spawn (fun () -> worker_loop t));
  t

let run t ~tasks fn =
  if tasks < 0 then invalid_arg "Par_exec.run: tasks";
  if tasks > 0 then begin
    let b = { fn; tasks; next = 0; remaining = tasks; failures = [] } in
    Mutex.lock t.lock;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    (* The caller is a participant, not a spectator. *)
    participate t b;
    while b.remaining > 0 do
      Condition.wait t.batch_done t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    match List.sort compare b.failures with
    | (_, e) :: _ -> raise e
    | [] -> ()
  end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  List.iter Odomain.join t.workers;
  t.workers <- []
