(** Interconnect frames: a marshalled message graph or a NIC-level ack.

    Frames carry no live capabilities — an [Access.t] only means something
    within one machine's object table — so message payloads cross as
    {!Imax.Object_filing.wire} values, captured on the sending node and
    reconstructed on the receiving one. *)

type kind =
  | Data of Imax.Object_filing.wire  (** a marshalled message graph *)
  | Ack  (** NIC-level acknowledgement of [seq] on [channel] *)

type t = {
  uid : int;  (** cluster-unique, in creation order *)
  kind : kind;
  src : int;  (** sending node id *)
  dst : int;  (** destination node id *)
  channel : int;  (** import channel the frame belongs to *)
  seq : int;  (** per-channel sequence number ([Ack] acknowledges it) *)
  port_name : string;  (** exported port name, for tracing *)
  priority : int;  (** message priority, preserved across the wire *)
  size_bytes : int;  (** serialized size, for bandwidth accounting *)
  txn : int;
      (** committing transaction's idempotency key (0 = none); carried
          across the wire so the receiving NIC can drop a re-delivered
          keyed frame after node failover *)
}

(** Fixed modelled size of an acknowledgement frame (bytes). *)
val ack_bytes : int

val kind_to_string : kind -> string
val to_string : t -> string
