(** A deterministic cluster of independent machines joined by a virtual
    interconnect.

    Member machines advance under one global virtual clock with
    quantum-based horizon stepping; between slices the NIC pump drains
    exported surrogate ports, marshals messages with
    {!Imax.Object_filing}'s wire codec (rights intersected with the
    export mask), moves frames over {!Link}s (latency, serialization
    delay, armed faults), and lands reconstructed messages in home ports,
    waking blocked receivers exactly as a local send would.

    Reliability is NIC-level ARQ: per-channel sequence numbers, acks on
    first receipt, a dup filter (duplicates are re-acked, never
    re-delivered), and bounded retransmission with a doubling RTO.

    Same topology + same workload + same fault seed => byte-identical
    event streams on every node.  A machine that never joins a cluster is
    untouched: no counters registered, no events emitted. *)

open I432
module K := I432_kernel
module Fi := I432_fi.Fi

type node = private {
  id : int;
  node_name : string;
  machine : K.Machine.t;
  mutable n_alive : bool;
  mutable n_down_since : int;  (** kill instant; [max_int] if never killed *)
  mutable n_up_since : int;  (** restart instant; 0 if never restarted *)
  mutable n_parked : Name_service.entry list;
      (** names withdrawn at kill, republished at restart *)
  m_frames_tx : I432_obs.Metrics.counter;
  m_frames_rx : I432_obs.Metrics.counter;
  m_remote_sends : I432_obs.Metrics.counter;
  m_remote_delivers : I432_obs.Metrics.counter;
  m_retransmits : I432_obs.Metrics.counter;
  m_frames_lost : I432_obs.Metrics.counter;
  m_dead_letters : I432_obs.Metrics.counter;
  m_restarts : I432_obs.Metrics.counter;
}

type pending

(** One import: a surrogate port on [ch_src] standing for the exported
    name whose home port lives on [ch_dst]. *)
type channel = private {
  ch_id : int;
  ch_name : string;
  ch_src : int;
  ch_dst : int;
  ch_link : Link.t;
  ch_surrogate : Access.t;
  ch_surrogate_ad : Access.t;
  ch_home : Access.t;
  ch_mask : Rights.t;
  mutable ch_next_seq : int;
  ch_unacked : (int, pending) Hashtbl.t;
  mutable ch_unacked_n : int;
  ch_seen : (int, unit) Hashtbl.t;
  ch_backlog : (Frame.t * Access.t) Queue.t;
  mutable ch_frames_dead : int;  (** gave up after [max_retries] *)
  mutable ch_dead_letters : int;  (** dead-lettered against a dead node *)
}

type t

(** [window] bounds unacked data frames per channel (backpressure: local
    senders block on the surrogate once the window and its queue fill);
    [max_retries] bounds retransmissions before a frame counts as lost. *)
val create :
  ?window:int ->
  ?max_retries:int ->
  ?default_latency_ns:int ->
  ?default_ns_per_byte:int ->
  unit ->
  t

(** Join an existing machine; returns its node id.  Registers the node's
    net counters in its metrics registry. *)
val add_node : t -> name:string -> K.Machine.t -> int

(** Create a machine and join it. *)
val boot_node : t -> name:string -> ?config:K.Machine.config -> unit -> int * K.Machine.t

(** Link two nodes.  Raises [Invalid_argument] on a self-link or unknown
    node. *)
val connect : t -> ?latency_ns:int -> ?ns_per_byte:int -> int -> int -> Link.t

val node_count : t -> int
val machine : t -> int -> K.Machine.t
val node_name : t -> int -> string
val name_service : t -> Name_service.t
val links : t -> Link.t list
val link_by_id : t -> int -> Link.t option
val channels : t -> channel list

(** Arm a link-fault plan: each event applies to its link the first round
    whose horizon reaches [l_at_ns].  Cumulative with earlier plans. *)
val arm_links : t -> Fi.link_plan -> unit

(** {1 Whole-node failure and rejoin}

    A dead node stops stepping; frames arriving during the outage drop
    on the floor, so their senders retry with the ordinary doubling
    backoff and, after [max_retries], surface a [Frame_dead] plus a
    [Dead_letter] event and counter — a send to a dead node always
    terminates, it never hangs.  Messages already acked into the dead
    node's backlog dead-letter immediately (the ack killed their
    retransmission).  The node's exported names are withdrawn at the
    kill and republished under a bumped {!Name_service} epoch at the
    restart; survivors keep their surrogate descriptors, which stay
    valid because the replacement machine is a checkpoint replay with a
    byte-identical object-table layout.  See DESIGN.md §13. *)

(** Kill [id] at [at_ns] (default: the current horizon).  The victim
    executes exactly up to the kill instant.  Idempotent on a dead
    node. *)
val fail_node : t -> ?at_ns:int -> int -> unit

(** Splice a replacement machine in for dead node [id] at [at_ns]
    (default: the current horizon).  [machine] must be a replay of the
    node's checkpoint (see {!I432_store.Checkpoint.restore_node});
    its clocks are advanced to the restart instant and the node's names
    are republished under a bumped epoch.  Raises [Invalid_argument] if
    the node is alive. *)
val restart_node : t -> ?at_ns:int -> machine:K.Machine.t -> int -> unit

val node_alive : t -> int -> bool

(** Cluster-wide dead-letter count so far. *)
val dead_letters : t -> int

(** Keyed frames dropped by transaction-level dedup: re-issued sends of
    an already-delivered committed group (e.g. after a failover replays
    a commit whose frames had already escaped).  Channel-sequence dup
    drops are counted separately in the {!report}. *)
val txn_dup_drops : t -> int

(** Arm a node-fault plan: kills and restarts fire the first round whose
    horizon reaches their instant, before the round's machine slices.
    [restore] supplies the replacement machine at each restart (typically
    a checkpoint replay); it runs on the calling domain, so plans stay
    deterministic under every engine.  Cumulative with earlier plans. *)
val arm_nodes :
  t -> restore:(node:int -> at_ns:int -> K.Machine.t) -> Fi.node_plan -> unit

exception Not_exported of string
exception No_route of string

(** Publish [port] (which must carry the send right) cluster-wide under
    [name].  [mask] is intersected into every marshalled rights set —
    root and edges — so no descriptor arrives amplified.  [capacity]
    defaults to the home port's.  Raises
    {!Name_service.Already_exported} on a duplicate name. *)
val export :
  t -> node:int -> name:string -> ?mask:Rights.t -> ?capacity:int -> Access.t -> unit

(** Resolve [name] on [node]: installs (or reuses) a local surrogate port
    and returns a send-only descriptor to it, so the existing [send] /
    [send_timeout] / [cond_send] syscalls work unchanged against the
    remote endpoint.  On the home node the name resolves to the home port
    itself (send-only).  Raises {!Not_exported} or {!No_route}. *)
val import : t -> node:int -> name:string -> Access.t

type report = {
  rounds : int;
  horizon_ns : int;
  frames_sent : int;  (** data frames, first transmissions *)
  frames_delivered : int;  (** data frames landed in home ports *)
  frames_lost : int;  (** gave up after [max_retries] *)
  retransmits : int;
  acks : int;
  dup_drops : int;
  dead_letters : int;
      (** frames whose only possible destination was a dead node *)
}

(** How a round's node slices execute.  [Seq] steps nodes in id order on
    the calling domain.  [Par d] steps them on a [d]-domain {!Par_exec}
    pool (the caller participates, so [Par 1] = [Seq] exactly) and runs
    the interconnect pump on the calling domain after the barrier.

    Conservative-round determinism: within a slice machines touch only
    their own state (a remote send just enqueues on a local surrogate),
    and the pump — the only cross-node code — runs single-domain in the
    sequential engine's exact order.  Same seed therefore produces
    byte-identical event streams, metrics, and snapshots under every
    engine.  See DESIGN.md §11. *)
type engine = Seq | Par of int

(** Advance the cluster until every machine is quiescent and no frame is
    in flight, unacked, or backlogged (or [max_rounds] elapses).  Each
    round steps every machine [quantum_ns] of virtual time, then pumps
    the interconnect.

    Resumable: the quantum grid persists across calls, so
    [run ~max_rounds:k] followed by [run ()] (with the same [quantum_ns])
    is equivalent to one uninterrupted [run ()] — the property cluster
    checkpoints rely on.  The engines share one grid: a run may resume
    under a different [engine] than it started with.

    [Par d] creates its domain pool on entry and joins it before
    returning (even on exception). *)
val run : t -> ?engine:engine -> ?quantum_ns:int -> ?max_rounds:int -> unit -> report

val frames_in_flight : t -> int
val total_unacked : t -> int
val total_backlog : t -> int

(** Human-readable nodes / links / channels / names dump. *)
val topology : t -> string

(** Multi-pid Chrome trace of every node's event stream, with cross-node
    frame flow arrows ({!I432_obs.Export.chrome_trace_cluster}). *)
val chrome_trace : t -> I432_obs.Jout.t

val report_to_string : report -> string
