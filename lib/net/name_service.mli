(** Cluster-wide port names: a flat, deterministic registry from exported
    name to (home node, home port, rights mask, queue capacity).  Cluster
    metadata, not a heap object — resolution costs no virtual time. *)

open I432

type entry = {
  e_name : string;
  e_node : int;  (** home node id *)
  e_port : Access.t;  (** the home port, on the home node's machine *)
  e_mask : Rights.t;  (** intersected into every marshalled rights set *)
  e_capacity : int;  (** surrogate queue capacity on importing nodes *)
}

type t

exception Already_exported of string

val create : unit -> t

(** Raises {!Already_exported} on a duplicate name. *)
val publish : t -> entry -> unit

val lookup : t -> string -> entry option

(** Exported names, sorted. *)
val names : t -> string list

val count : t -> int
