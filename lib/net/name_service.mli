(** Cluster-wide port names: a flat, deterministic registry from exported
    name to (home node, home port, rights mask, queue capacity).  Cluster
    metadata, not a heap object — resolution costs no virtual time.

    The registry carries an {e epoch}, bumped on every publish and
    unpublish; each entry records the epoch at which it was published, so
    a consumer holding a cached resolution can tell a stale entry from a
    republished one (the re-home protocol after a node restart). *)

open I432

type entry = {
  e_name : string;
  e_node : int;  (** home node id *)
  e_port : Access.t;  (** the home port, on the home node's machine *)
  e_mask : Rights.t;  (** intersected into every marshalled rights set *)
  e_capacity : int;  (** surrogate queue capacity on importing nodes *)
  e_epoch : int;  (** service epoch at which this entry was published *)
}

type t

exception Already_exported of string
exception Not_published of string

val create : unit -> t

(** Current epoch: 0 at creation, +1 per publish or unpublish. *)
val epoch : t -> int

(** Publishes under the bumped epoch ([e_epoch] in the argument is
    ignored and restamped).  Raises {!Already_exported} on a duplicate
    name. *)
val publish : t -> entry -> unit

(** Withdraw a name and bump the epoch.  Raises {!Not_published} if the
    name is not currently exported. *)
val unpublish : t -> string -> unit

val lookup : t -> string -> entry option

(** All entries, sorted by name. *)
val entries : t -> entry list

(** Exported names, sorted. *)
val names : t -> string list

val count : t -> int
