(* A point-to-point link between two nodes.

   Virtual-time transmission model: a frame departing at [d] with size [s]
   arrives at [d + s * ns_per_byte + latency_ns].  Each direction is a
   serial line — a frame cannot start transmitting before the previous one
   in the same direction finished — so [next_free] per direction carries
   the serialization delay, which is what makes bandwidth observable.

   Fault state is pure data interpreted at transmit time: pending
   drop/duplicate/reorder counters consumed by the next frames crossing
   the link, and one partition window during which every frame is lost.
   All of it is armed from an {!I432_fi.Fi.link_plan}, so a faulted run
   replays bit-for-bit from its seed. *)

module Fi = I432_fi.Fi

type t = {
  id : int;
  node_a : int;
  node_b : int;
  latency_ns : int;
  ns_per_byte : int;
  mutable next_free_ab : int;  (* serialization horizon, a->b direction *)
  mutable next_free_ba : int;
  (* fault state *)
  mutable part_from : int;  (* partition window [part_from, part_until) *)
  mutable part_until : int;
  mutable pending_drop : int;
  mutable pending_dup : int;
  mutable pending_reorder : int;
  (* counters *)
  mutable tx : int;
  mutable rx : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let make ~id ~node_a ~node_b ~latency_ns ~ns_per_byte =
  if latency_ns < 0 || ns_per_byte < 0 then invalid_arg "Link.make: negative";
  {
    id;
    node_a;
    node_b;
    latency_ns;
    ns_per_byte;
    next_free_ab = 0;
    next_free_ba = 0;
    part_from = 0;
    part_until = 0;
    pending_drop = 0;
    pending_dup = 0;
    pending_reorder = 0;
    tx = 0;
    rx = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
  }

let connects t a b = (t.node_a = a && t.node_b = b) || (t.node_a = b && t.node_b = a)
let partitioned_at t ns = ns >= t.part_from && ns < t.part_until

(* Arm one fault act.  Overlapping partitions merge into one window whose
   start is the earliest [at] seen and whose end is the latest deadline. *)
let apply t ~at = function
  | Fi.L_drop n -> t.pending_drop <- t.pending_drop + n
  | Fi.L_dup n -> t.pending_dup <- t.pending_dup + n
  | Fi.L_reorder n -> t.pending_reorder <- t.pending_reorder + n
  | Fi.L_partition dur ->
    if t.part_until <= t.part_from then t.part_from <- at
    else t.part_from <- min t.part_from at;
    t.part_until <- max t.part_until (at + dur)

(* Transmit a frame of [size_bytes] from node [src] no earlier than [now].
   Returns the departure instant and the arrival instants (empty = lost;
   two = duplicated; a reordered frame is held back three extra latencies,
   so a later frame can overtake it). *)
let transmit t ~now ~src ~size_bytes =
  let serialize_ns = size_bytes * t.ns_per_byte in
  let depart, set_free =
    if src = t.node_a then
      (max now t.next_free_ab, fun v -> t.next_free_ab <- v)
    else (max now t.next_free_ba, fun v -> t.next_free_ba <- v)
  in
  set_free (depart + serialize_ns);
  let arrival = depart + serialize_ns + t.latency_ns in
  if partitioned_at t depart then begin
    t.dropped <- t.dropped + 1;
    (depart, [])
  end
  else if t.pending_drop > 0 then begin
    t.pending_drop <- t.pending_drop - 1;
    t.dropped <- t.dropped + 1;
    (depart, [])
  end
  else if t.pending_dup > 0 then begin
    t.pending_dup <- t.pending_dup - 1;
    t.duplicated <- t.duplicated + 1;
    t.tx <- t.tx + 1;
    (depart, [ arrival; arrival + t.latency_ns ])
  end
  else if t.pending_reorder > 0 then begin
    t.pending_reorder <- t.pending_reorder - 1;
    t.reordered <- t.reordered + 1;
    t.tx <- t.tx + 1;
    (depart, [ arrival + (3 * t.latency_ns) ])
  end
  else begin
    t.tx <- t.tx + 1;
    (depart, [ arrival ])
  end

let note_rx t = t.rx <- t.rx + 1

let to_string t =
  Printf.sprintf
    "link %d: node%d <-> node%d latency=%dns %dns/B tx=%d rx=%d drop=%d dup=%d \
     reorder=%d"
    t.id t.node_a t.node_b t.latency_ns t.ns_per_byte t.tx t.rx t.dropped
    t.duplicated t.reordered
