(* Interconnect frames.

   A frame is the unit the virtual interconnect moves between nodes: either
   a marshalled message graph (captured with Object_filing's wire codec on
   the sending node, reconstructed on the receiving one) or a NIC-level
   acknowledgement.  Frames carry no live capabilities — an Access.t is
   meaningful only within one machine's object table — which is exactly why
   the wire codec exists. *)

type kind =
  | Data of Imax.Object_filing.wire  (* a marshalled message graph *)
  | Ack  (* NIC-level acknowledgement of [seq] on [channel] *)

type t = {
  uid : int;  (* cluster-unique, in creation order (tiebreak for arrivals) *)
  kind : kind;
  src : int;  (* sending node id *)
  dst : int;  (* destination node id *)
  channel : int;  (* import channel the frame belongs to *)
  seq : int;  (* per-channel sequence number ([Ack] acknowledges it) *)
  port_name : string;  (* exported port name, for tracing *)
  priority : int;  (* message priority, preserved across the wire *)
  size_bytes : int;  (* serialized size, for link bandwidth accounting *)
  txn : int;  (* committing transaction's idempotency key, 0 = none *)
}

(* Fixed modelled size of an acknowledgement frame. *)
let ack_bytes = 16

let kind_to_string = function Data _ -> "data" | Ack -> "ack"

let to_string f =
  Printf.sprintf "frame#%d %s %s ch=%d seq=%d %d->%d (%dB)" f.uid
    (kind_to_string f.kind) f.port_name f.channel f.seq f.src f.dst
    f.size_bytes
