(** A point-to-point link: per-hop latency, serialization bandwidth, and
    deterministic fault state.

    A frame departing at [d] with size [s] arrives at
    [d + s * ns_per_byte + latency_ns]; each direction is a serial line,
    so back-to-back frames queue behind one another.  Fault acts (armed
    from an {!I432_fi.Fi.link_plan}) are interpreted at transmit time:
    pending drop/duplicate/reorder counters and one partition window. *)

module Fi := I432_fi.Fi

type t = {
  id : int;
  node_a : int;
  node_b : int;
  latency_ns : int;
  ns_per_byte : int;
  mutable next_free_ab : int;
  mutable next_free_ba : int;
  mutable part_from : int;
  mutable part_until : int;
  mutable pending_drop : int;
  mutable pending_dup : int;
  mutable pending_reorder : int;
  mutable tx : int;  (** frames put on the wire (per copy) *)
  mutable rx : int;  (** frames taken off the wire *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
}

(** Raises [Invalid_argument] on negative latency or byte cost. *)
val make :
  id:int -> node_a:int -> node_b:int -> latency_ns:int -> ns_per_byte:int -> t

val connects : t -> int -> int -> bool

(** Is the link severed at this virtual instant? *)
val partitioned_at : t -> int -> bool

(** Arm one fault act at virtual instant [at]. *)
val apply : t -> at:int -> Fi.link_act -> unit

(** [transmit t ~now ~src ~size_bytes] puts a frame on the wire no earlier
    than [now].  Returns [(depart, arrivals)]: no arrivals = lost, two =
    duplicated; a reordered frame is held back three extra latencies so a
    later frame can overtake it. *)
val transmit : t -> now:int -> src:int -> size_bytes:int -> int * int list

val note_rx : t -> unit
val to_string : t -> string
