(** Network-transparent ports: exportable cluster-wide names, local
    surrogate ports on importing nodes.

    Importing installs a local surrogate and returns a send-only
    descriptor, so the existing [send] / [send_timeout] / [cond_send]
    syscalls work unchanged against remote endpoints.  Not transparent by
    design: receive (t2 stays home), level/lifetime rules (stop at the
    node boundary), and object identity (destinations get isomorphic
    copies). *)

open I432

type t = Cluster.t

exception Not_exported of string
exception No_route of string

(** See {!Cluster.export}. *)
val export :
  t -> node:int -> name:string -> ?mask:Rights.t -> ?capacity:int -> Access.t -> unit

(** See {!Cluster.import}. *)
val import : t -> node:int -> name:string -> Access.t

(** Exported names, sorted. *)
val names : t -> string list

(** [(home node, surrogate capacity)] for an exported name. *)
val resolve : t -> string -> (int * int) option
