(* Network-transparent ports (the paper's port model stretched across a
   cluster).

   Exporting gives a port a cluster-wide name; importing installs a local
   *surrogate* port on the importing node and hands back a send-only
   descriptor to it.  Local processes use the ordinary send /
   send_timeout / cond_send syscalls against the surrogate — blocking,
   timeouts, and priority ordering all behave exactly as against a local
   port — while the NIC pump drains it and moves the messages to the home
   port on the owning node.

   What is deliberately NOT transparent (DESIGN.md §9): receiving from a
   surrogate (the t2 right stays behind — service order of a remote queue
   is the home node's business), level/lifetime rules (a marshalled graph
   is reconstructed at the destination's global-heap level; lifetime
   containment stops at the node boundary), and object identity (the
   destination sees an isomorphic copy, not the sender's object). *)

type t = Cluster.t

exception Not_exported = Cluster.Not_exported
exception No_route = Cluster.No_route

let export = Cluster.export
let import = Cluster.import
let names cluster = Name_service.names (Cluster.name_service cluster)

let resolve cluster name =
  match Name_service.lookup (Cluster.name_service cluster) name with
  | None -> None
  | Some e -> Some (e.Name_service.e_node, e.Name_service.e_capacity)
