(* A deterministic cluster of machines joined by a virtual interconnect.

   Each node is an independent Machine.t — its own object table, memory,
   processors, and virtual clock.  The cluster advances them under one
   global virtual clock with quantum-based horizon stepping: every round,
   each machine runs until its clocks pass the shared horizon, then the
   NIC pump moves frames.  The pump

   - drains exported surrogate ports in service order (window-bounded, so
     local senders feel backpressure by blocking on the surrogate),
   - marshals each message with Object_filing's wire codec (types, seals,
     sharing and cycles preserved; rights intersected with the export
     mask, so a descriptor can never arrive amplified),
   - transmits frames over links (latency + serialization delay; the
     armed link-fault plan drops/duplicates/reorders/partitions them),
   - delivers arrivals by reconstructing the graph on the destination
     node's heap and landing it in the home port, waking blocked
     receivers exactly as a local send would.

   Reliability is NIC-level ARQ: per-channel sequence numbers, an ack on
   first receipt, a per-channel dup filter (re-acked, never
   re-delivered), and bounded retransmission with a doubling RTO — so
   every message is delivered at most once despite drops and duplicates,
   and a partitioned channel eventually counts its frames lost rather
   than hanging the pump.  Loss recovery can deliver a later sequence
   number before an earlier one's retransmission lands; restoring
   application order across a lossy link is the application's business
   (on a clean link, delivery follows send order).

   Everything is keyed on virtual time and explicit sequence numbers:
   same topology + same workload + same fault seed => byte-identical
   event streams on every node.  A machine that never joins a cluster is
   untouched — no counters registered, no events emitted. *)

open I432
module K = I432_kernel
module Obs = I432_obs
module U = I432_util
module Fi = I432_fi.Fi
module Filing = Imax.Object_filing

type node = {
  id : int;
  node_name : string;
  machine : K.Machine.t;
  (* Whole-node failure state.  A dead node's machine stops stepping and
     its inbound frames drop; [n_down_since, n_up_since) is the last
     outage window, used to reject arrivals that fall inside it.  A node
     that never died has n_down_since = max_int. *)
  mutable n_alive : bool;
  mutable n_down_since : int;
  mutable n_up_since : int;
  mutable n_parked : Name_service.entry list;
      (* names withdrawn at kill, republished (bumped epoch) at restart *)
  (* Registered only when the node joins, so non-cluster machines keep a
     byte-identical metrics dump. *)
  m_frames_tx : Obs.Metrics.counter;
  m_frames_rx : Obs.Metrics.counter;
  m_remote_sends : Obs.Metrics.counter;
  m_remote_delivers : Obs.Metrics.counter;
  m_retransmits : Obs.Metrics.counter;
  m_frames_lost : Obs.Metrics.counter;
  m_dead_letters : Obs.Metrics.counter;
  m_restarts : Obs.Metrics.counter;
}

type pending = {
  p_frame : Frame.t;
  mutable p_next_retx : int;  (* virtual instant of the next retransmit *)
  mutable p_tries : int;  (* retransmissions so far *)
}

(* One import: a surrogate port on [ch_src] standing for [ch_name], whose
   home is [ch_home] on node [ch_dst], joined by [ch_link]. *)
type channel = {
  ch_id : int;
  ch_name : string;
  ch_src : int;  (* importing node *)
  ch_dst : int;  (* home node *)
  ch_link : Link.t;
  ch_surrogate : Access.t;  (* full-rights AD the NIC drains through *)
  ch_surrogate_ad : Access.t;  (* send-only AD handed to importers *)
  ch_home : Access.t;
  ch_mask : Rights.t;
  mutable ch_next_seq : int;
  ch_unacked : (int, pending) Hashtbl.t;  (* seq -> retransmission state *)
  mutable ch_unacked_n : int;
  ch_seen : (int, unit) Hashtbl.t;  (* destination-side dup filter *)
  ch_backlog : (Frame.t * Access.t) Queue.t;
      (* arrived (and acked) but home port was full; each msg is rooted on
         the destination machine until delivered *)
  mutable ch_frames_dead : int;  (* gave up after max_retries *)
  mutable ch_dead_letters : int;  (* dead-lettered against a dead node *)
}

type t = {
  ns : Name_service.t;
  window : int;  (* max unacked data frames per channel *)
  max_retries : int;
  default_latency_ns : int;
  default_ns_per_byte : int;
  mutable nodes : node array;
  mutable links : Link.t list;  (* in id order *)
  mutable channels : channel list;  (* in import order *)
  in_flight : (int * Frame.t) U.Pqueue.t;  (* keyed (-arrival, uid) *)
  mutable uid : int;
  mutable link_events : Fi.link_event list;  (* pending, sorted by l_at_ns *)
  mutable node_events : Fi.node_event list;  (* pending, sorted by n_at_ns *)
  mutable node_restore : (node:int -> at_ns:int -> K.Machine.t) option;
      (* supplies the replacement machine at restart instants; typically
         a checkpoint replay (Checkpoint.restore_node) *)
  mutable cur_horizon : int;
      (* last horizon reached by [run].  Persisted so a resumed run
         continues the same quantum grid: without it, a kill at a round
         boundary would restart the grid from the max node clock and the
         resumed run's idle-clock advancement would diverge from a
         straight run's. *)
  (* Transaction-level dedup: (dst node, idempotency key) pairs already
     delivered.  Lives on the cluster, not the node record, deliberately:
     a node restart splices in a fresh node record, and the whole point
     is to drop a committed group's re-sent frames after exactly such a
     failover.  A shadow replay rebuilds the same table deterministically. *)
  txn_seen : (int * int, unit) Hashtbl.t;
  mutable txn_dup_drops : int;
  (* cluster-wide statistics *)
  mutable frames_sent : int;  (* data frames, first transmissions *)
  mutable frames_delivered : int;
  mutable frames_lost : int;  (* gave up after max_retries *)
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable dup_drops : int;
  mutable dead_letters : int;  (* frames that could only ever reach a dead node *)
}

let create ?(window = 8) ?(max_retries = 10) ?(default_latency_ns = 250_000)
    ?(default_ns_per_byte = 10) () =
  if window < 1 then invalid_arg "Cluster.create: window";
  if max_retries < 0 then invalid_arg "Cluster.create: max_retries";
  {
    ns = Name_service.create ();
    window;
    max_retries;
    default_latency_ns;
    default_ns_per_byte;
    nodes = [||];
    links = [];
    channels = [];
    in_flight = U.Pqueue.create ();
    uid = 0;
    link_events = [];
    node_events = [];
    node_restore = None;
    cur_horizon = 0;
    txn_seen = Hashtbl.create 64;
    txn_dup_drops = 0;
    frames_sent = 0;
    frames_delivered = 0;
    frames_lost = 0;
    retransmits = 0;
    acks_sent = 0;
    dup_drops = 0;
    dead_letters = 0;
  }

let node_count t = Array.length t.nodes

let node_of t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster: unknown node %d" id);
  t.nodes.(id)

let machine t id = (node_of t id).machine
let node_name t id = (node_of t id).node_name
let name_service t = t.ns

let mk_node ~id ~name ~alive ~down_since ~up_since machine =
  let metrics = K.Machine.metrics machine in
  let c n = Obs.Metrics.counter metrics n in
  {
    id;
    node_name = name;
    machine;
    n_alive = alive;
    n_down_since = down_since;
    n_up_since = up_since;
    n_parked = [];
    m_frames_tx = c "net.frames_tx";
    m_frames_rx = c "net.frames_rx";
    m_remote_sends = c "net.remote_sends";
    m_remote_delivers = c "net.remote_delivers";
    m_retransmits = c "net.retransmits";
    m_frames_lost = c "net.frames_lost";
    m_dead_letters = c "node.dead_letters";
    m_restarts = c "node.restarts";
  }

let add_node t ~name machine =
  let id = Array.length t.nodes in
  let node =
    mk_node ~id ~name ~alive:true ~down_since:max_int ~up_since:0 machine
  in
  t.nodes <- Array.append t.nodes [| node |];
  id

let boot_node t ~name ?config () =
  let machine = K.Machine.create ?config () in
  let id = add_node t ~name machine in
  (id, machine)

let connect t ?latency_ns ?ns_per_byte a b =
  if a = b then invalid_arg "Cluster.connect: self-link";
  ignore (node_of t a);
  ignore (node_of t b);
  let latency_ns =
    match latency_ns with Some l -> l | None -> t.default_latency_ns
  in
  let ns_per_byte =
    match ns_per_byte with Some c -> c | None -> t.default_ns_per_byte
  in
  let id = List.length t.links in
  let link = Link.make ~id ~node_a:a ~node_b:b ~latency_ns ~ns_per_byte in
  t.links <- t.links @ [ link ];
  link

let links t = t.links

let link_between t a b =
  List.find_opt (fun l -> Link.connects l a b) t.links

let link_by_id t id = List.find_opt (fun (l : Link.t) -> l.Link.id = id) t.links

let arm_links t (plan : Fi.link_plan) =
  t.link_events <-
    List.stable_sort
      (fun (a : Fi.link_event) b -> compare a.Fi.l_at_ns b.Fi.l_at_ns)
      (t.link_events @ plan.Fi.l_events)

(* ------------------------------------------------------------------ *)
(* Export / import                                                     *)
(* ------------------------------------------------------------------ *)

let export t ~node ~name ?(mask = Rights.full) ?capacity port =
  let n = node_of t node in
  K.Port.check_send_right port;
  let state = K.Port.state_of (K.Machine.table n.machine) port in
  let capacity =
    match capacity with Some c -> c | None -> state.K.Port.capacity
  in
  Name_service.publish t.ns
    {
      Name_service.e_name = name;
      e_node = node;
      e_port = port;
      e_mask = mask;
      e_capacity = capacity;
      e_epoch = 0;  (* restamped by publish *)
    }

exception Not_exported of string
exception No_route of string

(* The send-only rights importers get: receiving from a surrogate would
   race the NIC drain, so the t2 right stays behind. *)
let surrogate_rights = Rights.remove_type_right Rights.full Rights.t2

let import t ~node ~name =
  match Name_service.lookup t.ns name with
  | None -> raise (Not_exported name)
  | Some e ->
    if e.Name_service.e_node = node then
      (* Importing on the home node: the name resolves to the home port
         itself, send-only like any surrogate AD. *)
      Access.restrict e.Name_service.e_port surrogate_rights
    else (
      match
        List.find_opt
          (fun ch -> ch.ch_src = node && String.equal ch.ch_name name)
          t.channels
      with
      | Some ch -> ch.ch_surrogate_ad
      | None ->
        let link =
          match link_between t node e.Name_service.e_node with
          | Some l -> l
          | None ->
            raise
              (No_route
                 (Printf.sprintf "%s: no link node%d <-> node%d" name node
                    e.Name_service.e_node))
        in
        let importer = node_of t node in
        let home = node_of t e.Name_service.e_node in
        let discipline =
          (K.Port.state_of (K.Machine.table home.machine)
             e.Name_service.e_port)
            .K.Port.discipline
        in
        let surrogate =
          K.Machine.create_port importer.machine
            ~capacity:e.Name_service.e_capacity ~discipline ()
        in
        let ch =
          {
            ch_id = List.length t.channels;
            ch_name = name;
            ch_src = node;
            ch_dst = e.Name_service.e_node;
            ch_link = link;
            ch_surrogate = surrogate;
            ch_surrogate_ad = Access.restrict surrogate surrogate_rights;
            ch_home = e.Name_service.e_port;
            ch_mask = e.Name_service.e_mask;
            ch_next_seq = 0;
            ch_unacked = Hashtbl.create 16;
            ch_unacked_n = 0;
            ch_seen = Hashtbl.create 64;
            ch_backlog = Queue.create ();
            ch_frames_dead = 0;
            ch_dead_letters = 0;
          }
        in
        t.channels <- t.channels @ [ ch ];
        ch.ch_surrogate_ad)

let channels t = t.channels

let channel_by_id t id =
  match List.find_opt (fun ch -> ch.ch_id = id) t.channels with
  | Some ch -> ch
  | None -> invalid_arg (Printf.sprintf "Cluster: unknown channel %d" id)

(* ------------------------------------------------------------------ *)
(* The NIC pump                                                        *)
(* ------------------------------------------------------------------ *)

let emit node ~ts_ns ?name ?detail ?a ?b kind =
  let tr = K.Machine.tracer node.machine in
  if Obs.Tracer.enabled tr then
    Obs.Tracer.emit tr ~ts_ns ~cpu:(-1) ?name ?detail ?a ?b kind

let fresh_uid t =
  let u = t.uid in
  t.uid <- t.uid + 1;
  u

(* Retransmission timeout: four one-way trips of this frame, doubled per
   retry by the caller. *)
let rto link size_bytes =
  4 * (link.Link.latency_ns + (size_bytes * link.Link.ns_per_byte) + 1)

(* Does [n] accept a frame arriving at [arrival]?  Anything landing in
   the node's last outage window is gone — the dead machine cannot have
   received it, and the restarted machine replays from a checkpoint that
   predates it.  Arrivals before the window were received by the old
   incarnation; arrivals after it land on the new one. *)
let node_accepts n ~arrival =
  if n.n_alive then arrival < n.n_down_since || arrival >= n.n_up_since
  else arrival < n.n_down_since

(* A frame whose only possible destination is dead: surfaced as an event
   on the sender plus counters at every level, never a silent stall. *)
let dead_letter t ch (frame : Frame.t) ~now =
  let src = node_of t ch.ch_src in
  emit src ~ts_ns:now ~name:ch.ch_name ~a:ch.ch_id ~b:frame.Frame.seq
    Obs.Event.Dead_letter;
  Obs.Metrics.incr src.m_dead_letters;
  ch.ch_dead_letters <- ch.ch_dead_letters + 1;
  t.dead_letters <- t.dead_letters + 1

(* Put a frame on the wire no earlier than [now]; returns the departure
   instant.  Lost copies still cost a Frame_tx (the NIC did transmit). *)
let send_frame t (frame : Frame.t) ~now =
  let src = node_of t frame.Frame.src in
  let ch = channel_by_id t frame.Frame.channel in
  let depart, arrivals =
    Link.transmit ch.ch_link ~now ~src:frame.Frame.src
      ~size_bytes:frame.Frame.size_bytes
  in
  emit src ~ts_ns:depart ~name:frame.Frame.port_name
    ~detail:(Frame.kind_to_string frame.Frame.kind)
    ~a:frame.Frame.seq ~b:frame.Frame.dst Obs.Event.Frame_tx;
  Obs.Metrics.incr src.m_frames_tx;
  List.iter
    (fun arrival ->
      U.Pqueue.insert t.in_flight ~priority:(-arrival) ~seq:frame.Frame.uid
        (arrival, frame))
    arrivals;
  depart

let send_ack t ch (data : Frame.t) ~now =
  let ack =
    {
      Frame.uid = fresh_uid t;
      kind = Frame.Ack;
      src = ch.ch_dst;
      dst = ch.ch_src;
      channel = ch.ch_id;
      seq = data.Frame.seq;
      port_name = ch.ch_name;
      priority = 0;
      size_bytes = Frame.ack_bytes;
      txn = 0;
    }
  in
  t.acks_sent <- t.acks_sent + 1;
  ignore (send_frame t ack ~now)

(* Drain a surrogate into data frames, at most window - unacked of them.
   Each drained message is marshalled immediately: the frame owns a wire
   image, not a live descriptor, so the source object can be mutated or
   collected afterwards without affecting the bytes in flight. *)
(* A dead source drains nothing (its machine is not running); a dead
   destination does NOT stop the drain — senders keep their ordinary
   window backpressure and each frame either survives to the restarted
   node or dead-letters after bounded retries. *)
let drain_channel t ch =
  let budget = t.window - ch.ch_unacked_n in
  if budget > 0 && (node_of t ch.ch_src).n_alive then begin
    let src = node_of t ch.ch_src in
    let drained =
      K.Machine.drain_port src.machine ~max:budget ~port:ch.ch_surrogate ()
    in
    List.iter
      (fun (msg, priority, enqueued_at, txn) ->
        let wire = Filing.capture src.machine ~mask:ch.ch_mask msg in
        let seq = ch.ch_next_seq in
        ch.ch_next_seq <- ch.ch_next_seq + 1;
        let frame =
          {
            Frame.uid = fresh_uid t;
            kind = Frame.Data wire;
            src = ch.ch_src;
            dst = ch.ch_dst;
            channel = ch.ch_id;
            seq;
            port_name = ch.ch_name;
            priority;
            size_bytes = Filing.wire_bytes wire;
            txn;
          }
        in
        emit src ~ts_ns:enqueued_at ~name:ch.ch_name ~a:ch.ch_id ~b:seq
          Obs.Event.Remote_send;
        Obs.Metrics.incr src.m_remote_sends;
        t.frames_sent <- t.frames_sent + 1;
        let pend = { p_frame = frame; p_next_retx = 0; p_tries = 0 } in
        Hashtbl.replace ch.ch_unacked seq pend;
        ch.ch_unacked_n <- ch.ch_unacked_n + 1;
        let depart = send_frame t frame ~now:enqueued_at in
        pend.p_next_retx <- depart + rto ch.ch_link frame.Frame.size_bytes)
      drained
  end

(* Retransmit every unacked frame whose timer expired; give up (and count
   the frame lost) after [max_retries].  Scans are sorted by sequence
   number so the order never depends on hash-table iteration. *)
let retransmit_due t ~horizon =
  List.iter
    (fun ch ->
      let due =
        Hashtbl.fold
          (fun seq p acc -> if p.p_next_retx <= horizon then (seq, p) :: acc else acc)
          ch.ch_unacked []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let src = node_of t ch.ch_src in
      List.iter
        (fun (seq, p) ->
          if p.p_tries >= t.max_retries then begin
            Hashtbl.remove ch.ch_unacked seq;
            ch.ch_unacked_n <- ch.ch_unacked_n - 1;
            t.frames_lost <- t.frames_lost + 1;
            Obs.Metrics.incr src.m_frames_lost;
            (* Loud, typed give-up: a Frame_dead always; additionally a
               Dead_letter when the reason is a dead destination. *)
            ch.ch_frames_dead <- ch.ch_frames_dead + 1;
            emit src ~ts_ns:p.p_next_retx ~name:ch.ch_name
              ~detail:(Frame.kind_to_string p.p_frame.Frame.kind)
              ~a:seq ~b:ch.ch_dst Obs.Event.Frame_dead;
            if not (node_of t ch.ch_dst).n_alive then
              dead_letter t ch p.p_frame ~now:p.p_next_retx
          end
          else begin
            p.p_tries <- p.p_tries + 1;
            t.retransmits <- t.retransmits + 1;
            Obs.Metrics.incr src.m_retransmits;
            let depart = send_frame t p.p_frame ~now:p.p_next_retx in
            p.p_next_retx <-
              depart
              + (rto ch.ch_link p.p_frame.Frame.size_bytes lsl p.p_tries)
          end)
        due)
    t.channels

let deliver_home t dst ch (frame : Frame.t) msg ~now =
  if
    K.Machine.deliver_external dst.machine ~txn:frame.Frame.txn
      ~port:ch.ch_home ~msg ~priority:frame.Frame.priority ()
  then begin
    emit dst ~ts_ns:now ~name:ch.ch_name ~a:ch.ch_id ~b:frame.Frame.seq
      Obs.Event.Remote_deliver;
    Obs.Metrics.incr dst.m_remote_delivers;
    t.frames_delivered <- t.frames_delivered + 1;
    true
  end
  else false

let handle_arrival t (frame : Frame.t) ~arrival =
  let dst = node_of t frame.Frame.dst in
  let ch = channel_by_id t frame.Frame.channel in
  Link.note_rx ch.ch_link;
  if not (node_accepts dst ~arrival) then ()
    (* Dropped on the floor of a dead node: no rx event, no ack.  A Data
       frame stays unacked on the sender (bounded retries, then
       Frame_dead/Dead_letter); an Ack to a dead sender acks nothing
       because the kill already cleared its unacked table. *)
  else begin
  emit dst ~ts_ns:arrival ~name:frame.Frame.port_name
    ~detail:(Frame.kind_to_string frame.Frame.kind)
    ~a:frame.Frame.seq ~b:frame.Frame.src Obs.Event.Frame_rx;
  Obs.Metrics.incr dst.m_frames_rx;
  match frame.Frame.kind with
  | Frame.Ack -> (
    match Hashtbl.find_opt ch.ch_unacked frame.Frame.seq with
    | Some _ ->
      Hashtbl.remove ch.ch_unacked frame.Frame.seq;
      ch.ch_unacked_n <- ch.ch_unacked_n - 1
    | None -> () (* already acked (dup ack) or given up on *))
  | Frame.Data wire ->
    if Hashtbl.mem ch.ch_seen frame.Frame.seq then begin
      (* Duplicate: re-ack (the first ack may have been lost), never
         re-deliver. *)
      t.dup_drops <- t.dup_drops + 1;
      send_ack t ch frame ~now:arrival
    end
    else begin
      Hashtbl.replace ch.ch_seen frame.Frame.seq ();
      send_ack t ch frame ~now:arrival;
      if
        frame.Frame.txn <> 0
        && Hashtbl.mem t.txn_seen (frame.Frame.dst, frame.Frame.txn)
      then begin
        (* The channel dup filter catches a re-sent frame; this one
           catches a re-committed group: after a failover the restarted
           source re-issues a committed group's sends under fresh
           sequence numbers, so only the idempotency key identifies
           them.  Acked (it did arrive), never delivered. *)
        t.txn_dup_drops <- t.txn_dup_drops + 1;
        Obs.Metrics.incr
          (Obs.Metrics.counter (K.Machine.metrics dst.machine) "txn.dup_drops");
        emit dst ~ts_ns:arrival ~name:ch.ch_name ~a:frame.Frame.txn
          ~b:frame.Frame.src Obs.Event.Txn_dup_drop
      end
      else begin
        if frame.Frame.txn <> 0 then
          Hashtbl.replace t.txn_seen (frame.Frame.dst, frame.Frame.txn) ();
        (* Idle clocks catch up to the frame first, so a blocked receiver
           cannot consume a message before it arrived. *)
        K.Machine.advance_idle_clocks dst.machine ~to_ns:arrival;
        let msg = Filing.reconstruct dst.machine wire in
        if not (deliver_home t dst ch frame msg ~now:arrival) then begin
          (* Home port full: the frame is acked (it did arrive); park the
             reconstructed message, rooted so a collection on the
             destination node cannot reclaim it before delivery. *)
          K.Machine.add_root dst.machine msg;
          Queue.push (frame, msg) ch.ch_backlog
        end
      end
    end
  end

let deliver_due t ~horizon =
  let rec go () =
    match U.Pqueue.peek t.in_flight with
    | Some (arrival, _) when arrival <= horizon ->
      (match U.Pqueue.pop t.in_flight with
      | Some (arrival, frame) -> handle_arrival t frame ~arrival
      | None -> ());
      go ()
    | Some _ | None -> ()
  in
  go ()

(* Backlogged messages retry in arrival order once receivers have made
   space; delivery is stamped with the destination's current clock (the
   instant the port actually accepted it). *)
let retry_backlogs t =
  List.iter
    (fun ch ->
      let dst = node_of t ch.ch_dst in
      let continue_ = ref dst.n_alive in
      while !continue_ && not (Queue.is_empty ch.ch_backlog) do
        let frame, msg = Queue.peek ch.ch_backlog in
        if deliver_home t dst ch frame msg ~now:(K.Machine.now dst.machine)
        then begin
          ignore (Queue.pop ch.ch_backlog);
          K.Machine.remove_root dst.machine msg
        end
        else continue_ := false
      done)
    t.channels

let activate_link_faults t ~horizon =
  let rec go = function
    | (e : Fi.link_event) :: rest when e.Fi.l_at_ns <= horizon ->
      (match link_by_id t e.Fi.l_link with
      | Some l -> Link.apply l ~at:e.Fi.l_at_ns e.Fi.l_act
      | None -> ());
      go rest
    | rest -> t.link_events <- rest
  in
  go t.link_events

(* ------------------------------------------------------------------ *)
(* Whole-node failure and rejoin                                       *)
(* ------------------------------------------------------------------ *)

let kill_now t id ~at =
  let n = node_of t id in
  if n.n_alive then begin
    (* The victim executes up to the instant of death, then never again:
       the kill lands mid-quantum exactly at [at]. *)
    ignore (K.Machine.run ~max_ns:at n.machine);
    emit n ~ts_ns:at ~name:n.node_name ~a:id Obs.Event.Node_kill;
    n.n_alive <- false;
    n.n_down_since <- at;
    (* Withdraw the dead node's names; the restart republishes them
       under a bumped epoch. *)
    let mine =
      List.filter
        (fun (e : Name_service.entry) -> e.Name_service.e_node = id)
        (Name_service.entries t.ns)
    in
    List.iter
      (fun (e : Name_service.entry) ->
        Name_service.unpublish t.ns e.Name_service.e_name)
      mine;
    n.n_parked <- mine;
    List.iter
      (fun ch ->
        if ch.ch_dst = id then
          (* Arrived-but-parked messages owed to the dead node die with
             it: they were acked, so no retransmission will resurrect
             them — surface each as a dead letter on its sender. *)
          while not (Queue.is_empty ch.ch_backlog) do
            let frame, _msg = Queue.pop ch.ch_backlog in
            dead_letter t ch frame ~now:at
          done
        else if ch.ch_src = id then begin
          (* The dead node's own unacked sends stop retrying — the
             checkpoint rollback re-issues that work with fresh
             sequence numbers (ch_next_seq stays monotonic so replayed
             sends never collide with the destination's dup filter). *)
          Hashtbl.reset ch.ch_unacked;
          ch.ch_unacked_n <- 0
        end)
      t.channels
  end

let restart_now t id ~at ~machine =
  let n = node_of t id in
  if n.n_alive then
    invalid_arg (Printf.sprintf "Cluster.restart_node: node %d is alive" id);
  let fresh =
    mk_node ~id ~name:n.node_name ~alive:true ~down_since:n.n_down_since
      ~up_since:at machine
  in
  t.nodes.(id) <- fresh;
  (* The replacement is a checkpoint replay, so its clocks sit at the
     checkpoint instant; idle processors catch up to the restart instant
     before the node steps again. *)
  K.Machine.advance_idle_clocks machine ~to_ns:at;
  (* Re-home: republish the parked names under a bumped epoch.  The
     survivors' surrogate channels keep their descriptors — a replayed
     machine reproduces the object-table layout byte for byte, so every
     cached home-port AD still names the same object on the new
     incarnation. *)
  List.iter (fun e -> Name_service.publish t.ns e) n.n_parked;
  emit fresh ~ts_ns:at ~name:fresh.node_name ~a:id
    ~b:(Name_service.epoch t.ns) Obs.Event.Node_restart;
  Obs.Metrics.incr fresh.m_restarts

let fail_node t ?at_ns id =
  let at = match at_ns with Some a -> a | None -> t.cur_horizon in
  kill_now t id ~at

let restart_node t ?at_ns ~machine id =
  let at = match at_ns with Some a -> a | None -> t.cur_horizon in
  restart_now t id ~at ~machine

let node_alive t id = (node_of t id).n_alive
let dead_letters t = t.dead_letters
let txn_dup_drops t = t.txn_dup_drops

let arm_nodes t ~restore (plan : Fi.node_plan) =
  t.node_restore <- Some restore;
  t.node_events <-
    List.stable_sort
      (fun (a : Fi.node_event) b -> compare a.Fi.n_at_ns b.Fi.n_at_ns)
      (t.node_events @ plan.Fi.n_events)

let activate_node_faults t ~horizon =
  let rec go = function
    | (e : Fi.node_event) :: rest when e.Fi.n_at_ns <= horizon ->
      (match e.Fi.n_act with
      | Fi.N_kill -> kill_now t e.Fi.n_node ~at:e.Fi.n_at_ns
      | Fi.N_restart ->
        if not (node_of t e.Fi.n_node).n_alive then begin
          let machine =
            match t.node_restore with
            | Some f -> f ~node:e.Fi.n_node ~at_ns:e.Fi.n_at_ns
            | None ->
              invalid_arg "Cluster: node plan armed without a restore hook"
          in
          restart_now t e.Fi.n_node ~at:e.Fi.n_at_ns ~machine
        end);
      go rest
    | rest -> t.node_events <- rest
  in
  go t.node_events

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  rounds : int;
  horizon_ns : int;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  retransmits : int;
  acks : int;
  dup_drops : int;
  dead_letters : int;
}

let frames_in_flight t = U.Pqueue.size t.in_flight

let total_unacked t =
  List.fold_left (fun acc ch -> acc + ch.ch_unacked_n) 0 t.channels

let total_backlog t =
  List.fold_left (fun acc ch -> acc + Queue.length ch.ch_backlog) 0 t.channels

let stats_snapshot (t : t) =
  ( t.frames_sent,
    t.frames_delivered,
    t.frames_lost,
    t.retransmits,
    t.acks_sent,
    t.dup_drops,
    t.dead_letters )

(* Engine selection.  [Seq] is the original in-order loop.  [Par d] steps
   the nodes of each round on a [d]-domain {!Par_exec} pool.

   Why this is bit-identical to [Seq]: within a round slice, machines
   interact with nothing outside themselves — a remote send only enqueues
   on a local surrogate port; draining surrogates, moving frames, and
   delivering arrivals all happen in the pump, which runs on the calling
   domain after the barrier, in the exact order the sequential engine
   uses.  Node stepping order therefore cannot influence any observable,
   so running the steps concurrently produces the same event streams,
   metrics, and snapshots byte for byte. *)
type engine = Seq | Par of int

let run_round t pool ~horizon =
  activate_link_faults t ~horizon;
  (* Node faults run on the calling domain before the slice: a kill
     steps its victim to the death instant sequentially, and a restart's
     restore hook may replay a whole shadow cluster. *)
  activate_node_faults t ~horizon;
  (match pool with
  | None ->
    Array.iter
      (fun n ->
        if n.n_alive then ignore (K.Machine.run ~max_ns:horizon n.machine))
      t.nodes
  | Some pool ->
    Par_exec.run pool ~tasks:(Array.length t.nodes) (fun i ->
        let n = t.nodes.(i) in
        if n.n_alive then ignore (K.Machine.run ~max_ns:horizon n.machine)));
  (* Receivers just ran: retry parked messages before draining new
     traffic, so a channel's home-port order follows its seq order. *)
  retry_backlogs t;
  List.iter (fun ch -> drain_channel t ch) t.channels;
  retransmit_due t ~horizon;
  deliver_due t ~horizon

(* A node still owes virtual time when any live non-daemon process could
   run without external input: dispatchable (Created/Ready/Running) or on
   a timer (Sleeping).  Port-blocked processes don't count — they only
   move if a frame arrives, and frames are tracked separately.  Without
   this, one-way traffic can stall the round loop early: the interconnect
   goes silent while a receiver machine still has a backlog to serve, and
   a round whose horizon lands inside a processor's overshoot sees no
   clock movement at all. *)
let local_work t =
  Array.exists
    (fun n ->
      n.n_alive
      && List.exists
        (fun (p : K.Process.t) ->
          (not p.K.Process.daemon)
          && (not p.K.Process.stopped)
          &&
          match p.K.Process.status with
          | K.Process.Created | K.Process.Ready | K.Process.Running
          | K.Process.Sleeping ->
            true
          | K.Process.Blocked_send _ | K.Process.Blocked_receive _
          | K.Process.Finished | K.Process.Faulted _ ->
            false)
        (K.Machine.all_processes n.machine))
    t.nodes

let run_engine t ~pool ~quantum_ns ~max_rounds =
  let rounds = ref 0 in
  (* First call: the grid starts at the highest node clock (nodes may
     have been stepped before the cluster ever ran).  Resumed call: the
     grid continues from the persisted horizon — NOT from the clocks,
     which legitimately overshoot a round's horizon when a processor is
     busy straight through it. *)
  let horizon =
    ref
      (if t.cur_horizon > 0 then t.cur_horizon
       else
         Array.fold_left
           (fun acc n -> max acc (K.Machine.now n.machine))
           0 t.nodes)
  in
  let continue_ = ref (Array.length t.nodes > 0) in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    horizon := !horizon + quantum_ns;
    let nows_before =
      Array.map (fun n -> K.Machine.now n.machine) t.nodes
    in
    let stats_before = stats_snapshot t in
    run_round t pool ~horizon:!horizon;
    let clock_moved = ref false in
    Array.iteri
      (fun i n ->
        if K.Machine.now n.machine <> nows_before.(i) then clock_moved := true)
      t.nodes;
    let moved = stats_before <> stats_snapshot t || !clock_moved
    and pending =
      frames_in_flight t > 0
      || total_unacked t > 0
      || total_backlog t > 0
      || t.node_events <> []
      || local_work t
    in
    if not (moved || pending) then continue_ := false
  done;
  t.cur_horizon <- !horizon;
  {
    rounds = !rounds;
    horizon_ns = !horizon;
    frames_sent = t.frames_sent;
    frames_delivered = t.frames_delivered;
    frames_lost = t.frames_lost;
    retransmits = t.retransmits;
    acks = t.acks_sent;
    dup_drops = t.dup_drops;
    dead_letters = t.dead_letters;
  }

let run t ?(engine = Seq) ?(quantum_ns = 100_000) ?(max_rounds = 100_000) () =
  if quantum_ns < 1 then invalid_arg "Cluster.run: quantum_ns";
  match engine with
  | Seq | Par 1 ->
    (* One domain means no pool: the round loop below already IS the
       sequential engine. *)
    run_engine t ~pool:None ~quantum_ns ~max_rounds
  | Par d ->
    if d < 1 then invalid_arg "Cluster.run: Par domains";
    let pool = Par_exec.create ~domains:d in
    Fun.protect
      ~finally:(fun () -> Par_exec.shutdown pool)
      (fun () -> run_engine t ~pool:(Some pool) ~quantum_ns ~max_rounds)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let topology t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "cluster: %d node(s), %d link(s), %d channel(s)\n"
    (Array.length t.nodes) (List.length t.links) (List.length t.channels);
  Array.iter
    (fun n ->
      Printf.bprintf buf "  node %d %-12s %d processor(s)%s\n" n.id n.node_name
        (K.Machine.processor_count n.machine)
        (if n.n_alive then
           if n.n_up_since > 0 then
             Printf.sprintf " (rejoined at %dns, epoch %d)" n.n_up_since
               (Name_service.epoch t.ns)
           else ""
         else Printf.sprintf " DOWN since %dns" n.n_down_since))
    t.nodes;
  List.iter (fun l -> Printf.bprintf buf "  %s\n" (Link.to_string l)) t.links;
  List.iter
    (fun ch ->
      Printf.bprintf buf
        "  channel %d '%s': node%d -> node%d (link %d) next_seq=%d unacked=%d \
         backlog=%d%s\n"
        ch.ch_id ch.ch_name ch.ch_src ch.ch_dst ch.ch_link.Link.id
        ch.ch_next_seq ch.ch_unacked_n
        (Queue.length ch.ch_backlog)
        (if ch.ch_frames_dead = 0 && ch.ch_dead_letters = 0 then ""
         else
           Printf.sprintf " dead=%d dead_letters=%d" ch.ch_frames_dead
             ch.ch_dead_letters))
    t.channels;
  List.iter
    (fun (e : Name_service.entry) ->
      Printf.bprintf buf "  name '%s' exported (epoch %d)\n"
        e.Name_service.e_name e.Name_service.e_epoch)
    (Name_service.entries t.ns);
  Buffer.contents buf

let chrome_trace t =
  Obs.Export.chrome_trace_cluster
    (Array.to_list
       (Array.map
          (fun n ->
            ( n.node_name,
              K.Machine.processor_count n.machine,
              K.Machine.events n.machine ))
          t.nodes))

let report_to_string r =
  Printf.sprintf
    "rounds=%d horizon=%dns sent=%d delivered=%d lost=%d retx=%d acks=%d \
     dups=%d dead_letters=%d\n"
    r.rounds r.horizon_ns r.frames_sent r.frames_delivered r.frames_lost
    r.retransmits r.acks r.dup_drops r.dead_letters
