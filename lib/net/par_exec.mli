(** A fork-join pool of OCaml 5 domains for the parallel cluster engine.

    One primitive: run [tasks] independent closures and wait for all of
    them.  The pool holds [domains - 1] long-lived worker domains; the
    calling domain participates in every batch, so a 1-domain pool is a
    plain sequential loop with no spawns.

    Tasks must be independent (the cluster engine hands each one a
    distinct machine); the pool makes no ordering promises within a
    batch. *)

(** Alias for {!Stdlib.Domain}, the OCaml 5 unit of parallelism — named
    apart from {!I432.Domain}, the iMAX domain of definition. *)
module Odomain = Stdlib.Domain

type t

(** Raises [Invalid_argument] if [domains < 1].  Spawns [domains - 1]
    workers that live until {!shutdown}. *)
val create : domains:int -> t

val domains : t -> int

(** [run t ~tasks fn] calls [fn i] once for each [0 <= i < tasks], spread
    over the pool, and returns when every call has finished.  If any call
    raised, the exception from the lowest failing index is re-raised
    here (deterministic under scheduling noise). *)
val run : t -> tasks:int -> (int -> unit) -> unit

(** Stop and join the workers.  The pool must not be used afterwards. *)
val shutdown : t -> unit
