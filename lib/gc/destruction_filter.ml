(* Destruction filters (paper §8.2).

   "A type manager can specify to the system via a type definition object
   that it wishes to have an opportunity to see any of its objects as they
   become garbage.  The garbage collector will manufacture an access
   descriptor for such objects and send them to a port defined by the type
   manager."

   For user-defined types the registration lives on the type-definition
   object (Type_def.set_filter_port); this module adds the convenience
   wrapper and the special case the paper mentions for the first release:
   recovering lost *process* objects, which have a hardware type rather than
   a type-definition object. *)

open I432

(* Process objects have no type-definition object to hang a filter on; the
   basic process manager registers its recovery port on the machine's
   object table.  Per-table (not a module global) so cluster nodes stepped
   on different OCaml domains never share the registration — and so two
   machines in one process cannot clobber each other's recovery port. *)
let register_process_filter table port_access =
  Object_table.set_process_filter_port table (Some (Access.index port_access))

let clear_process_filter table = Object_table.set_process_filter_port table None
let process_filter_port table = Object_table.process_filter_port table

(* Register a filter for a user-defined type: garbage of that type will be
   sent to [port] instead of being freed. *)
let register table ~typedef ~port =
  Type_def.set_filter_port table typedef ~port_index:(Access.index port)

let unregister table ~typedef = Type_def.clear_filter_port table typedef

(* A type manager drains its filter port, disassembles each corpse, and
   frees the storage.  Returns the corpses drained this call. *)
let drain machine ~port ~finalize =
  let rec go acc =
    match I432_kernel.Machine.cond_receive machine ~port with
    | Some corpse ->
      finalize corpse;
      go (corpse :: acc)
    | None -> List.rev acc
  in
  go []
