(** Destruction filters: a type manager's chance to disassemble its objects
    as they become garbage (paper §8.2).

    For user-defined types the filter port is recorded on the
    type-definition object; process objects (a hardware type) use the
    dedicated registration, mirroring the paper's first release, which used
    the facility "only to recover lost process objects". *)

open I432

(** Register the port that receives terminated-and-unreferenced process
    objects.  The registration lives on the machine's object table, so
    independent machines (cluster nodes on different OCaml domains) never
    share it. *)
val register_process_filter : Object_table.t -> Access.t -> unit

val clear_process_filter : Object_table.t -> unit
val process_filter_port : Object_table.t -> int option

(** Register a filter port for a user-defined type. *)
val register : Object_table.t -> typedef:Access.t -> port:Access.t -> unit

val unregister : Object_table.t -> typedef:Access.t -> unit

(** Drain every corpse currently queued at [port], calling [finalize] on
    each.  Must be called from inside a process body. *)
val drain :
  I432_kernel.Machine.t -> port:Access.t -> finalize:(Access.t -> unit) -> Access.t list
