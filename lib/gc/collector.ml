(* The iMAX system-wide parallel garbage collector (paper §8.1).

   "iMAX provides a system-wide parallel garbage collector based upon the
   algorithm of Dijkstra et al.  To support this, the 432 hardware
   implements the gray bit of that algorithm, setting it whenever access
   descriptors are moved. ...  The iMAX garbage collector is implemented as
   a daemon process that globally scans the system.  It requires only
   minimal synchronization with the rest of the operating system."

   Mapping onto the simulator:

   - Colors live in the object descriptor ({!Object_table.color}); the
     store-access write barrier shades the moved descriptor's target gray.
   - The collector is a daemon process; each scanned or swept object charges
     virtual time, so mutators running on other processors genuinely overlap
     with collection.
   - Roots are (a) the machine's registered root objects, (b) every live
     process object (its access part and its local-root shadow stack — the
     simulation's stand-in for ADs held in context objects), and (c) every
     message sitting in a port queue or attached to a blocked sender.
   - Only [Generic] and [Custom] objects are collected.  System objects are
     structural (the paper's first release likewise confined collection, and
     recovered only lost process objects — which we route through the
     destruction-filter mechanism, see {!Destruction_filter}).

   Sweep honours destruction filters (§8.2): when a dying object's type has
   a registered filter port, the collector "manufactures an access
   descriptor for such objects and sends them to a port defined by the type
   manager" instead of freeing the storage. *)

open I432

type config = {
  scan_quantum : int;  (* objects marked per collector step *)
  idle_sleep_ns : int;  (* pause between collection cycles *)
  collect_processes : bool;  (* reclaim terminated process objects *)
}

let default_config =
  { scan_quantum = 64; idle_sleep_ns = 2_000_000; collect_processes = true }

type stats = {
  mutable cycles : int;
  mutable marked : int;
  mutable swept : int;
  mutable filtered : int;  (* garbage delivered to destruction filters *)
  mutable processes_recovered : int;
  mutable mark_ns : int;
  mutable sweep_ns : int;
}

type t = {
  machine : I432_kernel.Machine.t;
  config : config;
  stats : stats;
  mutable gray_stack : int list;
}

let create ?(config = default_config) machine =
  {
    machine;
    config;
    stats =
      {
        cycles = 0;
        marked = 0;
        swept = 0;
        filtered = 0;
        processes_recovered = 0;
        mark_ns = 0;
        sweep_ns = 0;
      };
    gray_stack = [];
  }

let stats t = t.stats

let shade t index =
  let table = I432_kernel.Machine.table t.machine in
  if Object_table.is_valid table index then begin
    let e = Object_table.lookup table index in
    if e.Object_table.color = Object_table.White then begin
      e.Object_table.color <- Object_table.Gray;
      t.gray_stack <- index :: t.gray_stack
    end
  end

(* Root scan: registered roots, live processes (access part + shadow
   stacks), and in-flight port messages. *)
let scan_roots t =
  let table = I432_kernel.Machine.table t.machine in
  List.iter (fun a -> shade t (Access.index a)) (I432_kernel.Machine.roots t.machine);
  List.iter
    (fun (proc : I432_kernel.Process.t) ->
      if not (I432_kernel.Process.is_terminal proc) then begin
        shade t proc.I432_kernel.Process.index;
        List.iter
          (fun a -> shade t (Access.index a))
          proc.I432_kernel.Process.local_roots;
        (* A message delivered but not yet consumed by the resuming process
           is reachable from its (virtual) context. *)
        (match proc.I432_kernel.Process.pending with
        | I432_kernel.Syscall.R_msg a
        | I432_kernel.Syscall.R_msg_option (Some a) -> shade t (Access.index a)
        | I432_kernel.Syscall.R_txn
            (I432_kernel.Syscall.Txn_committed { received; _ }) ->
          List.iter (fun a -> shade t (Access.index a)) received
        | I432_kernel.Syscall.R_unit | I432_kernel.Syscall.R_accepted _
        | I432_kernel.Syscall.R_msg_option None
        | I432_kernel.Syscall.R_txn (I432_kernel.Syscall.Txn_conflict _) -> ());
        (* Activation records currently on the process's context stack. *)
        List.iter
          (fun a -> shade t (Access.index a))
          proc.I432_kernel.Process.contexts
      end)
    (I432_kernel.Machine.all_processes t.machine);
  Object_table.iter_valid
    (fun e ->
      match e.Object_table.payload with
      | Some (I432_kernel.Port.Port_state p) ->
        I432_kernel.Port.iter_messages
          (fun qm -> shade t (Access.index qm.I432_kernel.Port.msg))
          p;
        I432_kernel.Port.iter_senders
          (fun ws -> shade t (Access.index ws.I432_kernel.Port.sender_msg))
          p
      | Some _ | None -> ())
    table

(* Mark one object: scan its access part and shade the targets, then
   blacken.  Gray objects added concurrently by the mutator barrier are
   picked up from the table on the next drain pass. *)
let mark_one t index =
  let table = I432_kernel.Machine.table t.machine in
  if Object_table.is_valid table index then begin
    let e = Object_table.lookup table index in
    Array.iter
      (function
        | Some a -> shade t (Access.index a)
        | None -> ())
      e.Object_table.access_part;
    e.Object_table.color <- Object_table.Black;
    t.stats.marked <- t.stats.marked + 1
  end

(* Collect stragglers shaded by the write barrier while our stack was
   empty. *)
let refill_gray t =
  let table = I432_kernel.Machine.table t.machine in
  let found = ref false in
  Object_table.iter_valid
    (fun e ->
      if e.Object_table.color = Object_table.Gray then begin
        t.gray_stack <- e.Object_table.index :: t.gray_stack;
        found := true
      end)
    table;
  !found

let collectable t (e : Object_table.entry) =
  match e.Object_table.otype with
  | Obj_type.Generic | Obj_type.Custom _ -> e.Object_table.sro >= 0
  | Obj_type.Process ->
    t.config.collect_processes && e.Object_table.sro >= 0
    &&
    (match e.Object_table.payload with
    | Some (I432_kernel.Process.Process_state p) -> I432_kernel.Process.is_terminal p
    | Some _ | None -> false)
  | Obj_type.Processor | Obj_type.Port | Obj_type.Dispatching_port
  | Obj_type.Storage_resource | Obj_type.Domain | Obj_type.Context
  | Obj_type.Type_definition -> false

(* Deliver a dying object to its type's destruction filter port, if any.
   Returns true when the object was filtered (and must not be freed). *)
let deliver_to_filter t (e : Object_table.entry) =
  let table = I432_kernel.Machine.table t.machine in
  let filter_port =
    match e.Object_table.otype with
    | Obj_type.Custom id -> Type_def.filter_port_for_id table ~id
    | Obj_type.Process -> Destruction_filter.process_filter_port table
    | Obj_type.Generic | Obj_type.Processor | Obj_type.Port
    | Obj_type.Dispatching_port | Obj_type.Storage_resource | Obj_type.Domain
    | Obj_type.Context | Obj_type.Type_definition -> None
  in
  match filter_port with
  | None -> false
  | Some port_index -> (
    match I432_kernel.Port.state_of_index table port_index with
    | p when not (I432_kernel.Port.is_full p) ->
      (* Manufacture a full-rights access descriptor for the corpse and send
         it to the type manager (§8.2). *)
      let corpse = Access.make ~index:e.Object_table.index ~rights:Rights.full in
      I432_kernel.Port.enqueue p ~msg:corpse ~priority:0 ~now:(I432_kernel.Machine.now t.machine);
      p.I432_kernel.Port.sends <- p.I432_kernel.Port.sends + 1;
      (* The corpse is reachable again: blacken it for this cycle. *)
      e.Object_table.color <- Object_table.Black;
      t.stats.filtered <- t.stats.filtered + 1;
      if Obj_type.equal e.Object_table.otype Obj_type.Process then
        t.stats.processes_recovered <- t.stats.processes_recovered + 1;
      true
    | _ -> false
    | exception Fault.Fault _ -> false)

(* Free a white object back to the SRO that created it. *)
let free_object t (e : Object_table.entry) =
  let table = I432_kernel.Machine.table t.machine in
  if Object_table.is_valid table e.Object_table.sro then begin
    let sro_entry = Object_table.lookup table e.Object_table.sro in
    match sro_entry.Object_table.payload with
    | Some (Sro.Sro_state s) ->
      Sro.release table ~sro_state:s ~index:e.Object_table.index;
      t.stats.swept <- t.stats.swept + 1
    | Some _ | None -> ()
  end

(* One full stop-the-world-free collection cycle, charged step by step so it
   interleaves with mutators in virtual time.  [step] yields the collector
   between quanta (a daemon calling I432_kernel.Machine.yield). *)
let cycle ?(step = fun () -> ()) t =
  let table = I432_kernel.Machine.table t.machine in
  let tm = I432_kernel.Machine.timings t.machine in
  let metrics = I432_kernel.Machine.metrics t.machine in
  (* Snapshot (in i432_kernel, a layer below us) reads the phase back from
     this gauge: 0 = idle, 1 = mark, 2 = sweep. *)
  let phase = I432_obs.Metrics.gauge metrics "gc.phase" in
  let marked0 = t.stats.marked in
  let swept0 = t.stats.swept in
  let filtered0 = t.stats.filtered in
  let t0 = I432_kernel.Machine.now t.machine in
  I432_obs.Metrics.set phase 1;
  I432_kernel.Machine.emit_event t.machine ~name:"gc-daemon"
    I432_obs.Event.Gc_mark_begin;
  (* Whiten the world. *)
  Object_table.iter_valid
    (fun e -> e.Object_table.color <- Object_table.White)
    table;
  t.gray_stack <- [];
  scan_roots t;
  (* Mark until no gray remains, even under concurrent barrier shading. *)
  let continue_marking = ref true in
  while !continue_marking do
    let budget = ref t.config.scan_quantum in
    while !budget > 0 && t.gray_stack <> [] do
      (match t.gray_stack with
      | i :: rest ->
        t.gray_stack <- rest;
        I432_kernel.Machine.charge t.machine tm.Timings.gc_scan_object_ns;
        mark_one t i
      | [] -> ());
      decr budget
    done;
    if t.gray_stack = [] then
      if not (refill_gray t) then continue_marking := false else step ()
    else step ()
  done;
  t.stats.mark_ns <- t.stats.mark_ns + (I432_kernel.Machine.now t.machine - t0);
  I432_kernel.Machine.emit_event t.machine ~name:"gc-daemon"
    ~a:(t.stats.marked - marked0) I432_obs.Event.Gc_mark_end;
  (* Sweep: white collectable objects die (via filter when registered). *)
  let t1 = I432_kernel.Machine.now t.machine in
  I432_obs.Metrics.set phase 2;
  I432_kernel.Machine.emit_event t.machine ~name:"gc-daemon"
    I432_obs.Event.Gc_sweep_begin;
  let victims = ref [] in
  Object_table.iter_valid
    (fun e ->
      if e.Object_table.color = Object_table.White && collectable t e then
        victims := e :: !victims)
    table;
  List.iter
    (fun e ->
      I432_kernel.Machine.charge t.machine tm.Timings.gc_sweep_object_ns;
      if not (deliver_to_filter t e) then free_object t e)
    !victims;
  t.stats.sweep_ns <- t.stats.sweep_ns + (I432_kernel.Machine.now t.machine - t1);
  t.stats.cycles <- t.stats.cycles + 1;
  I432_kernel.Machine.emit_event t.machine ~name:"gc-daemon"
    ~a:(t.stats.swept - swept0) ~b:(t.stats.filtered - filtered0)
    I432_obs.Event.Gc_sweep_end;
  I432_obs.Metrics.set phase 0;
  I432_obs.Metrics.incr (I432_obs.Metrics.counter metrics "gc.cycles");
  I432_obs.Metrics.incr
    ~by:(t.stats.marked - marked0)
    (I432_obs.Metrics.counter metrics "gc.marked");
  I432_obs.Metrics.incr
    ~by:(t.stats.swept - swept0)
    (I432_obs.Metrics.counter metrics "gc.swept");
  I432_obs.Metrics.incr
    ~by:(t.stats.filtered - filtered0)
    (I432_obs.Metrics.counter metrics "gc.filtered");
  List.length !victims

(* The collector daemon body (paper: "implemented as a daemon process that
   globally scans the system").  Spawn with I432_kernel.Machine.spawn ~daemon:true. *)
let daemon_body ?(cycles = max_int) t () =
  let n = ref 0 in
  while !n < cycles do
    incr n;
    let _ = cycle t ~step:(fun () -> I432_kernel.Machine.yield t.machine) in
    I432_kernel.Machine.delay t.machine ~ns:t.config.idle_sleep_ns
  done

let spawn_daemon ?(cycles = max_int) ?(priority = 2) t =
  I432_kernel.Machine.spawn t.machine ~daemon:true ~priority ~system_level:3 ~name:"gc-daemon"
    (daemon_body ~cycles t)
