(* The kernel event tracer.

   Domain safety: a tracer is per-machine instance state — rings, drop
   counters, and the interning memos are all fields of [t], with no module
   globals.  The parallel cluster engine therefore needs no locking here:
   each node's tracer is touched only by the one domain stepping that node
   during a round slice (see Machine.run's stepper assertion), and by the
   coordinator between slices.

   One bounded ring of fixed-shape event records per processor (plus one
   for boot-time/kernel events emitted outside the run loop), so tracing a
   long run costs constant memory: when a ring fills, the oldest event on
   that processor is dropped and a per-ring drop counter is incremented.

   Each ring is one flat, preallocated [int array] holding eight ints per
   event (seq, ts, cpu, a, b, kind code, interned name id, interned detail
   id) rather than a ring of {!Event.t} records: the emit path is the
   kernel's hottest seam and must stay within the bench's < 5% overhead
   budget, which leaves no room for a record plus an option box per event.
   Packing an event into eight adjacent ints makes emission eight
   immediate stores into a single cache line — no allocation, no
   {!caml_modify} write barriers, and no scatter across per-field arrays
   whose lines the kernel's own working set would keep evicting.  The
   string fields are interned to small ids; interning is one
   physical-equality check in the common case, because call sites pass
   the same physical string over and over (a process's name,
   [op_to_string]'s literals), so a one-entry memo per field absorbs
   almost every lookup.  {!Event.t} records are materialized only when a
   reader asks for them.

   At [Events_and_legacy_lines] the tracer also renders the seed's
   unstructured trace lines through {!Event.legacy_line} as events are
   emitted.  The lines live in an unbounded list (exactly like the string
   tracer this replaces), so ring overflow never loses a legacy line and
   the old [trace_lines] output stays byte-identical. *)

type level = Off | Events | Events_and_legacy_lines

let level_to_string = function
  | Off -> "off"
  | Events -> "events"
  | Events_and_legacy_lines -> "events+legacy"

(* Field offsets within a slot. *)
let fields = 8

type ring = {
  r_data : int array;  (* capacity * [fields]: seq ts cpu a b kind name detail *)
  r_cap : int;  (* slots; cached so the emit path never divides *)
  mutable r_head : int;  (* slot index of the oldest event *)
  mutable r_len : int;
}

let ring_create capacity =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity";
  {
    r_data = Array.make (capacity * fields) 0;
    r_cap = capacity;
    r_head = 0;
    r_len = 0;
  }

(* The intern pool.  Id 0 is always "".  [memo_s]/[memo_id] form a small
   associative cache of recently interned strings; the hot path scans it
   with physical comparisons ([==]) and falls back to the hashtable (a
   content hash) only on a miss.  Eight entries cover the working set of
   a trace — the names of the processes currently bouncing between the
   processors plus the handful of syscall/domain literals — so the
   fallback is rare even when consecutive events alternate names. *)
let memo_slots = 8

type interns = {
  ids : (string, int) Hashtbl.t;
  mutable pool : string array;  (* id -> string *)
  mutable used : int;
  memo_s : string array;
  memo_id : int array;
  mutable memo_next : int;  (* round-robin replacement cursor *)
}

type t = {
  level : level;
  rings : ring array;  (* index cpu+1; slot 0 = boot *)
  dropped : int array;  (* per ring *)
  strings : interns;
  (* Per-kind-code enable mask (index = Event.kind_to_int).  All-true by
     default, so unfiltered traces are byte-identical to pre-filter runs.
     Checked before seq assignment, interning and ring stores: a filtered
     subsystem costs one array load per event, nothing else. *)
  mask : bool array;
  mutable emitted : int;  (* total events ever emitted (= next seq) *)
  mutable legacy : string list;  (* newest first, like the seed's buffer *)
}

let interns_create () =
  let ids = Hashtbl.create 64 in
  Hashtbl.add ids "" 0;
  {
    ids;
    pool = Array.make 64 "";
    used = 1;
    (* Every memo slot maps "" -> 0, which is correct, so lookups may
       return any slot without an emptiness check. *)
    memo_s = Array.make memo_slots "";
    memo_id = Array.make memo_slots 0;
    memo_next = 0;
  }

let intern_slow st s =
  let id =
    match Hashtbl.find_opt st.ids s with
    | Some id -> id
    | None ->
      let id = st.used in
      if id = Array.length st.pool then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit st.pool 0 bigger 0 id;
        st.pool <- bigger
      end;
      st.pool.(id) <- s;
      st.used <- id + 1;
      Hashtbl.add st.ids s id;
      id
  in
  st.memo_s.(st.memo_next) <- s;
  st.memo_id.(st.memo_next) <- id;
  st.memo_next <- (st.memo_next + 1) mod memo_slots;
  id

(* Unrolled 8-way scan: a handful of physical compares with no loop
   counter, falling through to the hashtable. *)
let intern st s =
  let m = st.memo_s in
  if Array.unsafe_get m 0 == s then Array.unsafe_get st.memo_id 0
  else if Array.unsafe_get m 1 == s then Array.unsafe_get st.memo_id 1
  else if Array.unsafe_get m 2 == s then Array.unsafe_get st.memo_id 2
  else if Array.unsafe_get m 3 == s then Array.unsafe_get st.memo_id 3
  else if Array.unsafe_get m 4 == s then Array.unsafe_get st.memo_id 4
  else if Array.unsafe_get m 5 == s then Array.unsafe_get st.memo_id 5
  else if Array.unsafe_get m 6 == s then Array.unsafe_get st.memo_id 6
  else if Array.unsafe_get m 7 == s then Array.unsafe_get st.memo_id 7
  else intern_slow st s

let ring_event t r i =
  let base = (r.r_head + i) mod r.r_cap * fields in
  let d = r.r_data in
  {
    Event.seq = d.(base);
    ts_ns = d.(base + 1);
    cpu = d.(base + 2);
    a = d.(base + 3);
    b = d.(base + 4);
    kind = Event.kind_of_int d.(base + 5);
    name = t.strings.pool.(d.(base + 6));
    detail = t.strings.pool.(d.(base + 7));
  }

let default_capacity = 16_384

let create ?(capacity = default_capacity) ~level ~processors () =
  if processors < 0 then invalid_arg "Tracer.create: processors";
  if capacity <= 0 then invalid_arg "Tracer.create: capacity";
  (* An Off tracer never stores an event, so its rings are one-slot
     placeholders: the default configuration pays no ring memory. *)
  let capacity = if level = Off then 1 else capacity in
  {
    level;
    rings = Array.init (processors + 1) (fun _ -> ring_create capacity);
    dropped = Array.make (processors + 1) 0;
    strings = interns_create ();
    mask = Array.make Event.kind_count true;
    emitted = 0;
    legacy = [];
  }

let level t = t.level

(* Pattern matches, not [=]/[<>]: polymorphic compare on the level is a C
   call, which the per-event budget cannot afford. *)
let enabled t = match t.level with Off -> false | _ -> true
let capacity t = t.rings.(0).r_cap
let processors t = Array.length t.rings - 1

(* Subsystem filtering.  [set_filter ~keep:None] restores the default
   (everything traced); [Some subs] keeps only kinds whose
   {!Event.category} is listed.  Unknown names raise, so a typo cannot
   silently discard a whole trace. *)
let set_filter t ~keep =
  match keep with
  | None -> Array.fill t.mask 0 Event.kind_count true
  | Some subs ->
    List.iter
      (fun s ->
        if not (List.mem s Event.subsystems) then
          invalid_arg (Printf.sprintf "Tracer.set_filter: subsystem %S" s))
      subs;
    for code = 0 to Event.kind_count - 1 do
      t.mask.(code) <-
        List.mem (Event.category (Event.kind_of_int code)) subs
    done

(* [wants t ~kind_code] is the cheap pre-flight for instrumentation sites:
   false means the event would be discarded, so the caller can skip
   computing the timestamp and arguments entirely.  [kind_code] must be a
   valid dense code (they are compile-time constants at every call
   site). *)
let wants t ~kind_code =
  match t.level with
  | Off -> false
  | Events | Events_and_legacy_lines -> Array.unsafe_get t.mask kind_code

(* The one physical "" that omitted ?name/?detail default to, so the
   common no-string case is a single pointer compare, not a memo scan. *)
let no_string = ""

(* The raw emit path: level check, slot accounting, eight immediate
   stores.  No optional arguments, no strings — callers on the hottest
   seams pre-intern their ids (a process's name id is interned once at
   spawn) and pass kind codes they computed once at module init. *)
let emit_raw t ~ts_ns ~cpu ~kind_code ~name_id ~detail_id ~a ~b =
  match t.level with
  | Off -> ()
  | (Events | Events_and_legacy_lines) as lvl
    when Array.unsafe_get t.mask kind_code ->
    let record_legacy = match lvl with
      | Events_and_legacy_lines -> true
      | _ -> false
    in
    let seq = t.emitted in
    t.emitted <- seq + 1;
    let idx =
      let i = cpu + 1 in
      if i < 0 || i >= Array.length t.rings then 0 else i
    in
    let r = t.rings.(idx) in
    let cap = r.r_cap in
    let slot =
      if r.r_len = cap then begin
        (* Full: the oldest event's slot is recycled for the newest. *)
        let s = r.r_head in
        r.r_head <- (if s + 1 = cap then 0 else s + 1);
        t.dropped.(idx) <- t.dropped.(idx) + 1;
        s
      end
      else begin
        let s = r.r_head + r.r_len in
        let s = if s >= cap then s - cap else s in
        r.r_len <- r.r_len + 1;
        s
      end
    in
    (* [base .. base+7] < length by construction; unsafe stores keep the
       eight writes — all into one slot, typically one cache line — free
       of bounds checks on the hottest kernel seam. *)
    let base = slot * fields in
    let d = r.r_data in
    Array.unsafe_set d base seq;
    Array.unsafe_set d (base + 1) ts_ns;
    Array.unsafe_set d (base + 2) cpu;
    Array.unsafe_set d (base + 3) a;
    Array.unsafe_set d (base + 4) b;
    Array.unsafe_set d (base + 5) kind_code;
    Array.unsafe_set d (base + 6) name_id;
    Array.unsafe_set d (base + 7) detail_id;
    if record_legacy then begin
      match
        Event.legacy_line
          {
            Event.seq;
            ts_ns;
            cpu;
            kind = Event.kind_of_int kind_code;
            name = t.strings.pool.(name_id);
            detail = t.strings.pool.(detail_id);
            a;
            b;
          }
      with
      | Some line -> t.legacy <- line :: t.legacy
      | None -> ()
    end
  | Events | Events_and_legacy_lines -> ()  (* subsystem filtered out *)

let string_id t s =
  match t.level with Off -> 0 | _ -> intern t.strings s

let emit t ~ts_ns ~cpu ?(name = no_string) ?(detail = no_string) ?(a = 0)
    ?(b = 0) kind =
  match t.level with
  | Off -> ()
  | Events | Events_and_legacy_lines ->
    (* Mask check before interning: a filtered-out subsystem must not pay
       for (or pollute) the intern pool. *)
    let kind_code = Event.kind_to_int kind in
    if Array.unsafe_get t.mask kind_code then begin
      let st = t.strings in
      let name_id = if name == no_string then 0 else intern st name in
      let detail_id = if detail == no_string then 0 else intern st detail in
      emit_raw t ~ts_ns ~cpu ~kind_code ~name_id ~detail_id ~a ~b
    end

(* All retained events in emission order (seq ascending).  Each ring is
   already seq-sorted, so this is a k-way merge. *)
let events t =
  let lists =
    Array.to_list
      (Array.map
         (fun r -> List.init r.r_len (fun i -> ring_event t r i))
         t.rings)
  in
  List.sort
    (fun (x : Event.t) (y : Event.t) -> compare x.Event.seq y.Event.seq)
    (List.concat lists)

let retained t = Array.fold_left (fun acc r -> acc + r.r_len) 0 t.rings
let emitted t = t.emitted
let dropped t = Array.fold_left ( + ) 0 t.dropped

let dropped_on t ~cpu =
  let i = cpu + 1 in
  if i < 0 || i >= Array.length t.dropped then 0 else t.dropped.(i)

let legacy_lines t = List.rev t.legacy

let clear t =
  Array.iter
    (fun r ->
      r.r_head <- 0;
      r.r_len <- 0)
    t.rings;
  Array.fill t.dropped 0 (Array.length t.dropped) 0;
  (* Reset the intern pool so cleared traces do not pin old heap data. *)
  let st = t.strings in
  Hashtbl.reset st.ids;
  Hashtbl.add st.ids "" 0;
  st.pool <- Array.make 64 "";
  st.used <- 1;
  Array.fill st.memo_s 0 memo_slots "";
  Array.fill st.memo_id 0 memo_slots 0;
  st.memo_next <- 0;
  t.emitted <- 0;
  t.legacy <- []
