(** Minimal JSON value and emitter shared by the observability exporters
    and the bench harness.  Non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val write_file : path:string -> t -> unit
