(** Structured kernel event tracer: one bounded ring of {!Event.t} records
    per processor (plus one for boot-time events), drop-oldest on overflow
    with a per-ring drop counter.

    [Off] is free on the hot path (one field read); [Events] records
    structured events only; [Events_and_legacy_lines] additionally renders
    the seed's unstructured trace lines (byte-identical, unbounded, immune
    to ring overflow) for legacy consumers. *)

type level = Off | Events | Events_and_legacy_lines

val level_to_string : level -> string

type t

val default_capacity : int

(** [create ~level ~processors ()] sizes one ring of [capacity] events per
    processor plus one for events emitted outside the run loop. *)
val create : ?capacity:int -> level:level -> processors:int -> unit -> t

val level : t -> level
val enabled : t -> bool
val capacity : t -> int
val processors : t -> int

(** {1 Subsystem filtering}

    [set_filter t ~keep:(Some subs)] drops every event whose
    {!Event.category} is not listed, before any per-event work (no seq,
    no interning, no ring store: a filtered event costs one array load).
    [~keep:None] restores the default — everything traced — under which
    streams are byte-identical to a tracer without filtering.  The filter
    survives {!clear}.  Raises [Invalid_argument] on an unknown subsystem
    name. *)
val set_filter : t -> keep:string list option -> unit

(** [wants t ~kind_code] is false when an event of that kind would be
    discarded (level [Off] or subsystem filtered out) — instrumentation
    sites use it to skip computing timestamps and arguments entirely.
    [kind_code] must be a valid dense code from {!Event.kind_to_int}. *)
val wants : t -> kind_code:int -> bool

(** Record one event.  No-op when the level is [Off].  [cpu] is the
    emitting processor id, or -1 outside the run loop. *)
val emit :
  t ->
  ts_ns:int ->
  cpu:int ->
  ?name:string ->
  ?detail:string ->
  ?a:int ->
  ?b:int ->
  Event.kind ->
  unit

(** Intern a string, returning its id for {!emit_raw} (0 when the level
    is [Off], where ids are never consulted).  Id 0 is always "". *)
val string_id : t -> string -> int

(** The allocation- and lookup-free emit path for the kernel's hottest
    seams: [kind_code] is {!Event.kind_to_int} of the kind (computed once
    by the caller), [name_id]/[detail_id] come from {!string_id}.  No-op
    when the level is [Off]. *)
val emit_raw :
  t ->
  ts_ns:int ->
  cpu:int ->
  kind_code:int ->
  name_id:int ->
  detail_id:int ->
  a:int ->
  b:int ->
  unit

(** All retained events, in emission order. *)
val events : t -> Event.t list

(** Events currently held in the rings. *)
val retained : t -> int

(** Events ever emitted (retained + dropped). *)
val emitted : t -> int

(** Events dropped to ring overflow, total and per processor. *)
val dropped : t -> int

val dropped_on : t -> cpu:int -> int

(** The seed-format trace lines, oldest first.  Empty unless the level is
    [Events_and_legacy_lines]. *)
val legacy_lines : t -> string list

val clear : t -> unit
