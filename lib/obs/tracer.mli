(** Structured kernel event tracer: one bounded ring of {!Event.t} records
    per processor (plus one for boot-time events), drop-oldest on overflow
    with a per-ring drop counter.

    [Off] is free on the hot path (one field read); [Events] records
    structured events only; [Events_and_legacy_lines] additionally renders
    the seed's unstructured trace lines (byte-identical, unbounded, immune
    to ring overflow) for legacy consumers. *)

type level = Off | Events | Events_and_legacy_lines

val level_to_string : level -> string

type t

val default_capacity : int

(** [create ~level ~processors ()] sizes one ring of [capacity] events per
    processor plus one for events emitted outside the run loop. *)
val create : ?capacity:int -> level:level -> processors:int -> unit -> t

val level : t -> level
val enabled : t -> bool
val capacity : t -> int
val processors : t -> int

(** Record one event.  No-op when the level is [Off].  [cpu] is the
    emitting processor id, or -1 outside the run loop. *)
val emit :
  t ->
  ts_ns:int ->
  cpu:int ->
  ?name:string ->
  ?detail:string ->
  ?a:int ->
  ?b:int ->
  Event.kind ->
  unit

(** Intern a string, returning its id for {!emit_raw} (0 when the level
    is [Off], where ids are never consulted).  Id 0 is always "". *)
val string_id : t -> string -> int

(** The allocation- and lookup-free emit path for the kernel's hottest
    seams: [kind_code] is {!Event.kind_to_int} of the kind (computed once
    by the caller), [name_id]/[detail_id] come from {!string_id}.  No-op
    when the level is [Off]. *)
val emit_raw :
  t ->
  ts_ns:int ->
  cpu:int ->
  kind_code:int ->
  name_id:int ->
  detail_id:int ->
  a:int ->
  b:int ->
  unit

(** All retained events, in emission order. *)
val events : t -> Event.t list

(** Events currently held in the rings. *)
val retained : t -> int

(** Events ever emitted (retained + dropped). *)
val emitted : t -> int

(** Events dropped to ring overflow, total and per processor. *)
val dropped : t -> int

val dropped_on : t -> cpu:int -> int

(** The seed-format trace lines, oldest first.  Empty unless the level is
    [Events_and_legacy_lines]. *)
val legacy_lines : t -> string list

val clear : t -> unit
