(* Chrome trace-event exporter.

   Renders an event stream as the Trace Event JSON format understood by
   Perfetto and chrome://tracing:

   - one track (tid) per processor, plus a "boot" track for events emitted
     outside the run loop;
   - duration slices ("B"/"E") covering each residency of a process on a
     processor, opened at Dispatch and closed at the event that takes the
     process off its cpu;
   - instant events ("i") for the remaining kinds, categorized by
     subsystem (proc/dispatch/port/sro/domain/gc/net);
   - flow arrows ("s"/"f") from each port send to the receive that
     consumed the same message, paired in FIFO order per (port, message)
     so re-sent payloads get distinct arrows;
   - async slices ("b"/"e") for the collector's mark and sweep phases,
     which span yields and so cannot nest inside the per-cpu slices.

   A cluster trace ({!chrome_trace_cluster}) renders one pid per node with
   the same per-node treatment, plus cross-node flow arrows pairing each
   frame transmission with the frame arrival on the peer node.

   Timestamps are the simulator's virtual nanoseconds divided by 1000 (the
   format counts microseconds), so traces of identical runs are identical
   files. *)

let us ns = float_of_int ns /. 1000.0

let field_args (e : Event.t) =
  let open Jout in
  List.filter_map
    (fun x -> x)
    [
      Some ("seq", Int e.Event.seq);
      (if e.Event.name = "" then None else Some ("process", Str e.Event.name));
      (if e.Event.detail = "" then None else Some ("detail", Str e.Event.detail));
      (if e.Event.a = 0 then None else Some ("a", Int e.Event.a));
      (if e.Event.b = 0 then None else Some ("b", Int e.Event.b));
    ]

let entry ?(extra = []) ?(args = []) ?(pid = 0) ~name ~cat ~ph ~ts_ns ~tid () =
  let open Jout in
  Obj
    ([
       ("name", Str name);
       ("cat", Str cat);
       ("ph", Str ph);
       ("ts", Float (us ts_ns));
       ("pid", Int pid);
       ("tid", Int tid);
     ]
    @ extra
    @ if args = [] then [] else [ ("args", Obj args) ])

let meta ?(pid = 0) ~name ~tid ~value () =
  let open Jout in
  Obj
    [
      ("name", Str name);
      ("ph", Str "M");
      ("pid", Int pid);
      ("tid", Int tid);
      ("args", Obj [ ("name", Str value) ]);
    ]

(* Walk one node's event stream, emitting its slices, instants, per-node
   flow arrows and GC async slices through [add].  [flow_seq] is shared
   across nodes so flow ids stay globally unique in a cluster trace. *)
let walk_stream ~pid ~processors ~add ~flow_seq events =
  let tid_of cpu = if cpu < 0 || cpu >= processors then processors else cpu in
  let open_slice = Array.make (processors + 1) None in
  let max_ts = ref 0 in
  let close ~tid ~ts_ns =
    match open_slice.(tid) with
    | None -> ()
    | Some name ->
      open_slice.(tid) <- None;
      add ts_ns (entry ~name ~cat:"dispatch" ~ph:"E" ~ts_ns ~tid ~pid ())
  in
  (* Pending sends per (port, message), consumed FIFO by receives. *)
  let pending : (int * int, (int * int) Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (e : Event.t) ->
      let tid = tid_of e.Event.cpu in
      let ts_ns = e.Event.ts_ns in
      if ts_ns > !max_ts then max_ts := ts_ns;
      let instant ?(name = Event.kind_to_string e.Event.kind) () =
        add ts_ns
          (entry ~name ~cat:(Event.category e.Event.kind) ~ph:"i" ~ts_ns ~tid
             ~pid
             ~extra:[ ("s", Jout.Str "t") ]
             ~args:(field_args e) ())
      in
      match e.Event.kind with
      | Event.Dispatch ->
        close ~tid ~ts_ns;
        open_slice.(tid) <- Some e.Event.name;
        add ts_ns
          (entry ~name:e.Event.name ~cat:"dispatch" ~ph:"B" ~ts_ns ~tid ~pid
             ~args:(field_args e) ())
      | Event.Deschedule | Event.Exit | Event.Finish -> close ~tid ~ts_ns
      | Event.Yield | Event.Preempt | Event.Sleep | Event.Fault
      | Event.Block_send | Event.Block_receive ->
        instant ();
        close ~tid ~ts_ns
      | Event.Send ->
        instant ();
        let key = (e.Event.a, e.Event.b) in
        let q =
          match Hashtbl.find_opt pending key with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace pending key q;
            q
        in
        Queue.push (ts_ns, tid) q
      | Event.Receive ->
        instant ();
        (match Hashtbl.find_opt pending (e.Event.a, e.Event.b) with
        | Some q when not (Queue.is_empty q) ->
          let send_ts, send_tid = Queue.pop q in
          let id = !flow_seq in
          incr flow_seq;
          add send_ts
            (entry ~name:"msg" ~cat:"flow" ~ph:"s" ~ts_ns:send_ts ~tid:send_tid
               ~pid
               ~extra:[ ("id", Jout.Int id) ]
               ())
          ;
          add ts_ns
            (entry ~name:"msg" ~cat:"flow" ~ph:"f" ~ts_ns ~tid ~pid
               ~extra:[ ("id", Jout.Int id); ("bp", Jout.Str "e") ]
               ())
        | Some _ | None -> ())
      | Event.Gc_mark_begin ->
        add ts_ns
          (entry ~name:"gc-mark" ~cat:"gc" ~ph:"b" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int 1) ]
             ())
      | Event.Gc_mark_end ->
        add ts_ns
          (entry ~name:"gc-mark" ~cat:"gc" ~ph:"e" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int 1) ]
             ~args:(field_args e) ())
      | Event.Gc_sweep_begin ->
        add ts_ns
          (entry ~name:"gc-sweep" ~cat:"gc" ~ph:"b" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int 2) ]
             ())
      | Event.Gc_sweep_end ->
        add ts_ns
          (entry ~name:"gc-sweep" ~cat:"gc" ~ph:"e" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int 2) ]
             ~args:(field_args e) ())
      | Event.Cpu_offline ->
        (* The processor is gone: mark the moment and close any residency
           slice still open on its track. *)
        instant ();
        close ~tid ~ts_ns
      (* Request spans: one async slice per request id, issue to
         completion.  Async ids only need to be unique per (cat, name), so
         the request id itself is the slice id — ids do not collide with
         the GC slices (cat "gc") or flow arrows. *)
      | Event.Req_issue ->
        add ts_ns
          (entry
             ~name:(if e.Event.detail = "" then "request" else e.Event.detail)
             ~cat:"load" ~ph:"b" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int e.Event.a) ]
             ~args:(field_args e) ())
      | Event.Req_done ->
        add ts_ns
          (entry
             ~name:(if e.Event.detail = "" then "request" else e.Event.detail)
             ~cat:"load" ~ph:"e" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int e.Event.a) ]
             ~args:(field_args e) ())
      (* Fault-in spans: one async slice per swap fault on the faulting
         processor's track, fault to swap-in (the object index is the
         slice id; cat "vm" keeps ids from colliding with request or GC
         slices).  Swap-outs are instants — eviction is synchronous
         inside the faulting charge. *)
      | Event.Swap_fault ->
        instant ();
        add ts_ns
          (entry ~name:"fault-in" ~cat:"vm" ~ph:"b" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int e.Event.a) ]
             ~args:(field_args e) ())
      | Event.Swap_in ->
        add ts_ns
          (entry ~name:"fault-in" ~cat:"vm" ~ph:"e" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int e.Event.a) ]
             ~args:(field_args e) ())
      | Event.Spawn | Event.Ready | Event.Wake | Event.Stop | Event.Start
      | Event.Allocate | Event.Release | Event.Sro_create | Event.Sro_destroy
      | Event.Domain_call | Event.Domain_return | Event.Fi_inject
      | Event.Proc_requeued | Event.Alloc_retry | Event.Timeout_fired
      | Event.Proc_restarted | Event.Remote_send | Event.Remote_deliver
      | Event.Frame_tx | Event.Frame_rx | Event.Journal_append
      | Event.Journal_sync | Event.Store_compact | Event.Ckpt_save
      | Event.Ckpt_restore | Event.Node_kill | Event.Node_restart
      | Event.Frame_dead | Event.Dead_letter | Event.Swap_out
      | Event.Txn_commit | Event.Txn_abort | Event.Txn_dup_drop
      | Event.Hist_append ->
        instant ())
    events;
  (* Close slices still open at the end of the trace. *)
  for tid = 0 to processors do
    close ~tid ~ts_ns:!max_ts
  done

let wrap sorted =
  let open Jout in
  Obj
    [
      ("traceEvents", Arr (List.map snd sorted));
      ("displayTimeUnit", Str "ms");
      ( "otherData",
        Obj
          [
            ("schema", Str "imax432-trace/1");
            ("clock", Str "virtual-ns (8 MHz 432 timings)");
          ] );
    ]

let sort_entries out =
  List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev out)

let chrome_trace ~processors events =
  let out = ref [] in
  (* (sort key ns, json); metadata sorts first. *)
  let add ts_ns j = out := (ts_ns, j) :: !out in
  add (-1) (meta ~name:"process_name" ~tid:0 ~value:"imax432" ());
  for c = 0 to processors - 1 do
    add (-1)
      (meta ~name:"thread_name" ~tid:c ~value:(Printf.sprintf "cpu%d" c) ())
  done;
  add (-1) (meta ~name:"thread_name" ~tid:processors ~value:"boot" ());
  let flow_seq = ref 0 in
  walk_stream ~pid:0 ~processors ~add ~flow_seq events;
  wrap (sort_entries !out)

(* Cluster trace: one pid per node (in list order), each rendered exactly
   like a single-machine trace, plus cross-node flow arrows pairing every
   frame transmission ([Frame_tx], b = destination node) with the arrival
   that consumed it ([Frame_rx], b = source node) — retransmissions and
   duplicated deliveries pair FIFO per (port name, src, dst, seq, kind). *)
let chrome_trace_cluster nodes =
  let out = ref [] in
  let add ts_ns j = out := (ts_ns, j) :: !out in
  List.iteri
    (fun pid (name, processors, _) ->
      add (-1)
        (meta ~pid ~name:"process_name" ~tid:0
           ~value:(Printf.sprintf "node%d %s" pid name)
           ());
      for c = 0 to processors - 1 do
        add (-1)
          (meta ~pid ~name:"thread_name" ~tid:c
             ~value:(Printf.sprintf "cpu%d" c)
             ())
      done;
      add (-1) (meta ~pid ~name:"thread_name" ~tid:processors ~value:"boot" ()))
    nodes;
  let flow_seq = ref 0 in
  List.iteri
    (fun pid (_, processors, events) ->
      walk_stream ~pid ~processors ~add ~flow_seq events)
    nodes;
  (* Cross-node frame arrows: collect transmissions, then consume them with
     arrivals in virtual-time order. *)
  let tx : (string * int * int * int * string, (int * int * int) Queue.t)
      Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun pid (_, processors, events) ->
      let tid_of cpu = if cpu < 0 || cpu >= processors then processors else cpu in
      List.iter
        (fun (e : Event.t) ->
          match e.Event.kind with
          | Event.Frame_tx ->
            let key = (e.Event.name, pid, e.Event.b, e.Event.a, e.Event.detail) in
            let q =
              match Hashtbl.find_opt tx key with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.replace tx key q;
                q
            in
            Queue.push (e.Event.ts_ns, pid, tid_of e.Event.cpu) q
          | _ -> ())
        events)
    nodes;
  let rx = ref [] in
  List.iteri
    (fun pid (_, processors, events) ->
      let tid_of cpu = if cpu < 0 || cpu >= processors then processors else cpu in
      List.iter
        (fun (e : Event.t) ->
          match e.Event.kind with
          | Event.Frame_rx ->
            rx :=
              ( e.Event.ts_ns,
                e.Event.seq,
                (e.Event.name, e.Event.b, pid, e.Event.a, e.Event.detail),
                pid,
                tid_of e.Event.cpu )
              :: !rx
          | _ -> ())
        events)
    nodes;
  let rx = List.sort compare (List.rev !rx) in
  List.iter
    (fun (ts_ns, _, key, pid, tid) ->
      match Hashtbl.find_opt tx key with
      | Some q when not (Queue.is_empty q) ->
        let send_ts, send_pid, send_tid = Queue.pop q in
        let id = !flow_seq in
        incr flow_seq;
        add send_ts
          (entry ~name:"frame" ~cat:"net" ~ph:"s" ~ts_ns:send_ts ~tid:send_tid
             ~pid:send_pid
             ~extra:[ ("id", Jout.Int id) ]
             ());
        add ts_ns
          (entry ~name:"frame" ~cat:"net" ~ph:"f" ~ts_ns ~tid ~pid
             ~extra:[ ("id", Jout.Int id); ("bp", Jout.Str "e") ]
             ())
      | Some _ | None -> ())
    rx;
  wrap (sort_entries !out)
