(** Named metrics registry: counters, gauges, and {!I432_util.Stats}-backed
    histograms.

    Instruments are resolved once (find-or-create by name) and updated
    through bare mutable fields on the hot path.  Dumps are sorted by
    name, so identical runs produce byte-identical JSON. *)

open I432_util

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }
type histogram = { m_name : string; m_hist : Stats.hist }
type log_histogram = { l_name : string; l_hist : Stats.log_hist }

type t

val create : unit -> t

(** Find-or-create by name. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** [buckets]/[lo]/[hi] apply only on first creation of the name. *)
val histogram : t -> ?buckets:int -> ?lo:float -> ?hi:float -> string -> histogram

val observe : histogram -> float -> unit

(** Log-bucketed quantile histogram ({!Stats.log_hist}); the shape
    arguments apply only on first creation of the name.  Defaults span
    10 ns .. 10 s at 16 buckets per decade (~15% relative width) —
    sized for virtual-time request latencies. *)
val log_histogram :
  t -> ?per_decade:int -> ?lo:float -> ?decades:int -> string -> log_histogram

val observe_log : log_histogram -> float -> unit

(** [log_quantile h q] with [q] in [0, 1]. *)
val log_quantile : log_histogram -> float -> float

(** {1 Domain safety}

    A registry has at most one writer at a time.  [claim] records the
    calling domain as the writer and fails if a different domain currently
    holds the claim; [release] clears it.  The parallel cluster engine
    brackets each node's round slice with claim/release, turning a
    partitioning bug into an immediate failure instead of a silent race. *)

val claim : t -> unit
val release : t -> unit

(** Fold [src] into [dst]: counters and gauges add; same-named histograms
    (which must share bucket count and range) add bucket-wise.  Folding
    per-node registries in node order is deterministic. *)
val merge_into : dst:t -> src:t -> unit

val find_counter : t -> string -> counter option
val find_gauge : t -> string -> gauge option
val find_histogram : t -> string -> histogram option
val find_log_histogram : t -> string -> log_histogram option

(** Sorted by name. *)
val counters : t -> counter list

val gauges : t -> gauge list
val histograms : t -> histogram list
val log_histograms : t -> log_histogram list

(** Schema [imax432-metrics/1]: counters, gauges, histograms (with
    underflow/overflow buckets), sorted by name.  A [log_histograms] key
    is appended only when at least one exists, so dumps from runs without
    one are byte-identical to earlier schema emissions. *)
val to_json : t -> Jout.t

(** Human-readable rendering for operator tooling. *)
val render : t -> string
